//===- examples/solve_chc_file.cpp - SMT-LIB2 HORN command-line solver ----===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
// A command-line CHC solver for SMT-LIB2 HORN files (the CHC-COMP exchange
// format restricted to linear integer arithmetic):
//
//   $ ./solve_chc_file file.smt2 [timeout-seconds] [solver]
//
// where solver is one of: la (default), spacer, gpdr, duality,
// interpolation, pie, dig. Prints sat/unsat/unknown plus the witness,
// mirroring `z3 fp.engine=spacer file.smt2` usage.
//
//===----------------------------------------------------------------------===//

#include "baselines/EnumLearner.h"
#include "baselines/PdrSolver.h"
#include "baselines/TemplateLearner.h"
#include "baselines/UnwindSolver.h"
#include "chc/ChcParser.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>

using namespace la;
using namespace la::chc;

static std::unique_ptr<ChcSolverInterface> makeSolver(const std::string &Name,
                                                      double Timeout) {
  if (Name == "spacer" || Name == "gpdr") {
    baselines::PdrOptions Opts;
    Opts.CacheReachable = Name == "spacer";
    Opts.TimeoutSeconds = Timeout;
    return std::make_unique<baselines::PdrSolver>(Opts);
  }
  if (Name == "duality" || Name == "interpolation") {
    baselines::UnwindOptions Opts;
    Opts.SummaryReuse = Name == "duality";
    Opts.TimeoutSeconds = Timeout;
    return std::make_unique<baselines::UnwindSolver>(Opts);
  }
  if (Name == "pie")
    return std::make_unique<solver::DataDrivenChcSolver>(
        baselines::makeEnumSolverOptions(Timeout));
  if (Name == "dig")
    return std::make_unique<solver::DataDrivenChcSolver>(
        baselines::makeTemplateSolverOptions(Timeout));
  solver::DataDrivenOptions Opts;
  Opts.TimeoutSeconds = Timeout;
  Opts.Learn.ModFeatures = {2, 3}; // generic "a priori" mod features
  return std::make_unique<solver::DataDrivenChcSolver>(Opts);
}

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    fprintf(stderr,
            "usage: %s file.smt2 [timeout-seconds] [la|spacer|gpdr|duality|"
            "interpolation|pie|dig]\n",
            Argv[0]);
    return 2;
  }
  std::ifstream In(Argv[1]);
  if (!In) {
    fprintf(stderr, "error: cannot open %s\n", Argv[1]);
    return 2;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  double Timeout = Argc > 2 ? std::atof(Argv[2]) : 60.0;
  std::string SolverName = Argc > 3 ? Argv[3] : "la";

  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult P = parseChcText(Buffer.str(), System);
  if (!P.Ok) {
    fprintf(stderr, "parse error: %s\n", P.Error.c_str());
    return 2;
  }
  fprintf(stderr, "; %zu clauses, %zu predicates, %s, solver=%s\n",
          System.clauses().size(), System.predicates().size(),
          System.isRecursive() ? "recursive" : "non-recursive",
          SolverName.c_str());

  std::unique_ptr<ChcSolverInterface> Solver =
      makeSolver(SolverName, Timeout);
  ChcSolverResult R = Solver->solve(System);
  printf("%s\n", toString(R.Status));
  fprintf(stderr, "; stats: %s\n", R.Stats.summary().c_str());
  if (R.Status == ChcResult::Sat) {
    fprintf(stderr, "; model:\n%s", R.Interp.toString().c_str());
    if (checkInterpretation(System, R.Interp) != ClauseStatus::Valid) {
      fprintf(stderr, "; INTERNAL ERROR: model failed validation\n");
      return 1;
    }
  }
  if (R.Status == ChcResult::Unsat && R.Cex)
    fprintf(stderr, "; %s", R.Cex->toString(System).c_str());
  return 0;
}
