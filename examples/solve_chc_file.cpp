//===- examples/solve_chc_file.cpp - SMT-LIB2 HORN command-line solver ----===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
// A command-line CHC solver for SMT-LIB2 HORN files (the CHC-COMP exchange
// format restricted to linear integer arithmetic):
//
//   $ ./solve_chc_file file.smt2 [timeout-seconds] [engine]
//
// where engine is any registered solver id: la (default), portfolio,
// analysis, spacer, gpdr, duality, interpolation, pie, dig, ... Prints
// sat/unsat/unknown plus the witness, mirroring `z3 fp.engine=spacer
// file.smt2` usage. "portfolio" races the registered engines in parallel
// and reports the first definitive answer.
//
//===----------------------------------------------------------------------===//

#include "baselines/RegisterEngines.h"
#include "solver/SolveFacade.h"

#include <cstdio>
#include <cstdlib>

using namespace la;
using namespace la::chc;

int main(int Argc, char **Argv) {
  // Make the baseline engines (pdr/spacer, unwind/duality, pie, dig, ...)
  // available by name next to the built-in la/analysis/portfolio.
  baselines::registerBuiltinEngines();

  if (Argc < 2) {
    std::string Ids;
    for (const std::string &Id : solver::SolverRegistry::global().ids())
      Ids += (Ids.empty() ? "" : "|") + Id;
    fprintf(stderr, "usage: %s file.smt2 [timeout-seconds] [%s]\n", Argv[0],
            Ids.c_str());
    return 2;
  }
  double Timeout = Argc > 2 ? std::atof(Argv[2]) : 60.0;
  std::string Engine = Argc > 3 ? Argv[3] : "la";

  // The façade owns file I/O, parsing, engine construction (through the
  // registry) and model validation; this driver only picks the engine id.
  solver::SolveOptions Opts;
  Opts.Limits.WallSeconds = Timeout;
  Opts.Engine = Engine;
  Opts.Solver.Learn.ModFeatures = {2, 3}; // generic "a priori" mod features

  solver::SolveResult S = solver::solveFile(Argv[1], Opts);
  if (!S.Ok) {
    fprintf(stderr, "error: %s\n", S.Error.c_str());
    return 2;
  }
  fprintf(stderr, "; %zu clauses, %zu predicates, %s, solver=%s\n", S.Clauses,
          S.Predicates, S.Recursive ? "recursive" : "non-recursive",
          S.SolverName.c_str());
  printf("%s\n", toString(S.Status));
  fprintf(stderr, "; stats: %s\n", S.Solver.summary().c_str());
  for (const analysis::PassStats &Pass : S.AnalysisPasses)
    fprintf(stderr, "; analysis: %s\n", Pass.toString().c_str());
  // Per-lane reports (one line for single-engine runs, one per lane for the
  // portfolio; * winner, ! crashed, ~ cancelled).
  for (const solver::EngineReport &R : S.Engines)
    fprintf(stderr, "; lane %c %-12s %-8s %.3fs%s%s\n",
            R.Winner ? '*' : R.Crashed ? '!' : R.Cancelled ? '~' : ' ',
            R.Lane.c_str(), toString(R.Status), R.Seconds,
            R.Error.empty() ? "" : " error: ", R.Error.c_str());
  if (S.Status == ChcResult::Sat) {
    fprintf(stderr, "; model:\n%s", S.Model.c_str());
    if (!S.ModelValidated) {
      fprintf(stderr, "; INTERNAL ERROR: model failed validation\n");
      return 1;
    }
  }
  if (S.Status == ChcResult::Unsat && !S.Cex.empty())
    fprintf(stderr, "; %s", S.Cex.c_str());
  return 0;
}
