//===- examples/solve_chc_file.cpp - Command-line CHC solver --------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
// The command-line driver over the façade's request API. Solves SMT-LIB2
// HORN files (the CHC-COMP exchange format restricted to linear integer
// arithmetic) and mini-C programs, auto-detecting the format:
//
//   $ ./solve_chc_file file.smt2
//   $ ./solve_chc_file program.c --engine portfolio --budget 30
//   $ ./solve_chc_file input.txt --format smt2 --schedule staged
//
// Flags (the old positional form `file [timeout] [engine]` still works):
//
//   --format auto|smt2|mini-c       input language (default: auto-detect)
//   --engine <id>                   registry engine id: la (default),
//                                   portfolio, analysis, spacer, gpdr, ...
//   --budget <seconds>              wall-clock budget (default 60)
//   --schedule single|race|staged|auto
//                                   engine schedule: `single` runs exactly
//                                   --engine, `race` the full portfolio,
//                                   `staged` the probe -> top-k -> race
//                                   escalation ladder
//   --selector <file>               table-driven selector model for staged
//                                   runs (fit by bench/fit_selector.py)
//
// Prints sat/unsat/unknown plus the witness, mirroring `z3
// fp.engine=spacer file.smt2` usage. "portfolio" races the registered
// engines in parallel and reports the first definitive answer. Flags are
// assembled through `SolveOptionsBuilder`, so contradictions (an explicit
// --engine under --schedule race) are rejected up front with a message
// instead of silently running something else.
//
//===----------------------------------------------------------------------===//

#include "baselines/RegisterEngines.h"
#include "solver/SolveFacade.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace la;
using namespace la::chc;

namespace {

int usage(const char *Prog) {
  std::string Ids;
  for (const solver::EngineId &Id :
       solver::SolverRegistry::global().engineIds())
    Ids += (Ids.empty() ? "" : "|") + Id.str();
  fprintf(stderr,
          "usage: %s <file> [--format auto|smt2|mini-c] [--engine %s]\n"
          "       %*s [--budget seconds] [--schedule single|race|staged|auto]\n"
          "       %*s [--selector model-file]\n"
          "   or: %s <file> [timeout-seconds] [engine]   (legacy form)\n",
          Prog, Ids.c_str(), static_cast<int>(strlen(Prog)), "",
          static_cast<int>(strlen(Prog)), "", Prog);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  // Make the baseline engines (pdr/spacer, unwind/duality, pie, dig, ...)
  // available by name next to the built-in la/analysis/portfolio.
  baselines::registerBuiltinEngines();

  solver::SolveRequest Request;
  solver::SolveOptions Defaults;
  Defaults.Limits.WallSeconds = 60;
  Defaults.Solver.Learn.ModFeatures = {2, 3}; // generic mod features
  solver::SolveOptionsBuilder Builder(std::move(Defaults));

  int Positional = 0;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto FlagValue = [&](const char *Flag) -> const char * {
      if (Arg != Flag)
        return nullptr;
      if (I + 1 >= Argc) {
        fprintf(stderr, "error: %s needs a value\n", Flag);
        exit(2);
      }
      return Argv[++I];
    };
    if (const char *V = FlagValue("--format")) {
      std::optional<solver::SourceFormat> F = solver::parseSourceFormat(V);
      if (!F) {
        fprintf(stderr, "error: unknown format '%s'\n", V);
        return 2;
      }
      Request.Format = *F;
    } else if (const char *V = FlagValue("--engine")) {
      Builder.engine(solver::EngineId(V));
    } else if (const char *V = FlagValue("--budget")) {
      Builder.wallSeconds(std::atof(V));
    } else if (const char *V = FlagValue("--schedule")) {
      std::optional<solver::SchedulePolicy> P = solver::parseSchedulePolicy(V);
      if (!P) {
        fprintf(stderr,
                "error: unknown schedule '%s' (want single, race, staged or "
                "auto)\n",
                V);
        return 2;
      }
      Builder.schedule(*P);
    } else if (const char *V = FlagValue("--selector")) {
      std::string Error;
      std::shared_ptr<solver::TableSelector> Selector =
          solver::TableSelector::loadFile(V, Error);
      if (!Selector) {
        fprintf(stderr, "error: %s\n", Error.c_str());
        return 2;
      }
      Builder.selector(std::move(Selector));
    } else if (Arg.size() >= 2 && Arg[0] == '-' && Arg[1] == '-') {
      fprintf(stderr, "error: unknown flag '%s'\n", Arg.c_str());
      return usage(Argv[0]);
    } else {
      // Legacy positionals: file, then timeout seconds, then engine id.
      if (Positional == 0)
        Request.Path = Arg;
      else if (Positional == 1)
        Builder.wallSeconds(std::atof(Arg.c_str()));
      else if (Positional == 2)
        Builder.engine(solver::EngineId(Arg));
      else
        return usage(Argv[0]);
      ++Positional;
    }
  }
  if (Request.Path.empty())
    return usage(Argv[0]);

  solver::SolveOptionsBuilder::Validated V = Builder.build();
  if (!V.Ok) {
    fprintf(stderr, "error: %s\n", V.Error.c_str());
    return 2;
  }
  Request.Options = std::move(V.Options);

  // The façade owns file I/O, format detection, parsing, engine
  // construction (through the registry) and model validation; this driver
  // only fills in the request.
  solver::SolveResult S = solver::solve(Request);
  if (!S.Ok) {
    fprintf(stderr, "error: %s\n", S.Error.c_str());
    return 2;
  }
  fprintf(stderr, "; %zu clauses, %zu predicates, %s, format=%s, solver=%s\n",
          S.Clauses, S.Predicates, S.Recursive ? "recursive" : "non-recursive",
          solver::toString(S.Format), S.SolverName.c_str());
  printf("%s\n", toString(S.Status));
  fprintf(stderr, "; stats: %s\n", S.Solver.summary().c_str());
  for (const analysis::PassStats &Pass : S.AnalysisPasses)
    fprintf(stderr, "; analysis: %s\n", Pass.toString().c_str());
  // Per-stage records of a staged run (* = the stage produced the verdict).
  for (const solver::StageReport &Stage : S.Stages)
    fprintf(stderr, "; stage %c %-8s budget %.3fs spent %.3fs %s\n",
            Stage.Hit ? '*' : ' ', Stage.Stage.c_str(), Stage.BudgetSeconds,
            Stage.Seconds, toString(Stage.Status));
  // Per-lane reports (one line for single-engine runs, one per lane for the
  // portfolio; * winner, ! crashed, ~ cancelled).
  for (const solver::EngineReport &R : S.Engines)
    fprintf(stderr, "; lane %c %-12s %-8s %.3fs%s%s\n",
            R.Winner ? '*' : R.Crashed ? '!' : R.Cancelled ? '~' : ' ',
            R.Lane.c_str(), toString(R.Status), R.Seconds,
            R.Error.empty() ? "" : " error: ", R.Error.c_str());
  if (S.Status == ChcResult::Sat) {
    fprintf(stderr, "; model:\n%s", S.Model.c_str());
    if (!S.ModelValidated) {
      fprintf(stderr, "; INTERNAL ERROR: model failed validation\n");
      return 1;
    }
  }
  if (S.Status == ChcResult::Unsat && !S.Cex.empty())
    fprintf(stderr, "; %s", S.Cex.c_str());
  return 0;
}
