//===- examples/solve_chc_file.cpp - SMT-LIB2 HORN command-line solver ----===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
// A command-line CHC solver for SMT-LIB2 HORN files (the CHC-COMP exchange
// format restricted to linear integer arithmetic):
//
//   $ ./solve_chc_file file.smt2 [timeout-seconds] [solver]
//
// where solver is one of: la (default), spacer, gpdr, duality,
// interpolation, pie, dig. Prints sat/unsat/unknown plus the witness,
// mirroring `z3 fp.engine=spacer file.smt2` usage.
//
//===----------------------------------------------------------------------===//

#include "baselines/EnumLearner.h"
#include "baselines/PdrSolver.h"
#include "baselines/TemplateLearner.h"
#include "baselines/UnwindSolver.h"
#include "solver/SolveFacade.h"

#include <cstdio>
#include <cstdlib>
#include <memory>

using namespace la;
using namespace la::chc;

static std::unique_ptr<ChcSolverInterface> makeSolver(const std::string &Name,
                                                      double Timeout) {
  if (Name == "spacer" || Name == "gpdr") {
    baselines::PdrOptions Opts;
    Opts.CacheReachable = Name == "spacer";
    Opts.TimeoutSeconds = Timeout;
    return std::make_unique<baselines::PdrSolver>(Opts);
  }
  if (Name == "duality" || Name == "interpolation") {
    baselines::UnwindOptions Opts;
    Opts.SummaryReuse = Name == "duality";
    Opts.TimeoutSeconds = Timeout;
    return std::make_unique<baselines::UnwindSolver>(Opts);
  }
  if (Name == "pie")
    return std::make_unique<solver::DataDrivenChcSolver>(
        baselines::makeEnumSolverOptions(Timeout));
  // "dig"
  return std::make_unique<solver::DataDrivenChcSolver>(
      baselines::makeTemplateSolverOptions(Timeout));
}

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    fprintf(stderr,
            "usage: %s file.smt2 [timeout-seconds] [la|spacer|gpdr|duality|"
            "interpolation|pie|dig]\n",
            Argv[0]);
    return 2;
  }
  double Timeout = Argc > 2 ? std::atof(Argv[2]) : 60.0;
  std::string SolverName = Argc > 3 ? Argv[3] : "la";

  // The façade owns file I/O, parsing, solving and model validation; the
  // factory hook swaps in the baseline solvers without this driver having
  // to repeat any of that wiring.
  solver::SolveOptions Opts;
  Opts.TimeoutSeconds = Timeout;
  Opts.Solver.Learn.ModFeatures = {2, 3}; // generic "a priori" mod features
  if (SolverName != "la")
    Opts.MakeSolver = [&] { return makeSolver(SolverName, Timeout); };

  solver::SolveStats S = solver::solveFile(Argv[1], Opts);
  if (!S.Ok) {
    fprintf(stderr, "error: %s\n", S.Error.c_str());
    return 2;
  }
  fprintf(stderr, "; %zu clauses, %zu predicates, %s, solver=%s\n",
          S.Clauses, S.Predicates,
          S.Recursive ? "recursive" : "non-recursive", S.SolverName.c_str());
  printf("%s\n", toString(S.Status));
  fprintf(stderr, "; stats: %s\n", S.Solver.summary().c_str());
  for (const analysis::PassStats &Pass : S.AnalysisPasses)
    fprintf(stderr, "; analysis: %s\n", Pass.toString().c_str());
  if (S.Status == ChcResult::Sat) {
    fprintf(stderr, "; model:\n%s", S.Model.c_str());
    if (!S.ModelValidated) {
      fprintf(stderr, "; INTERNAL ERROR: model failed validation\n");
      return 1;
    }
  }
  if (S.Status == ChcResult::Unsat && !S.Cex.empty())
    fprintf(stderr, "; %s", S.Cex.c_str());
  return 0;
}
