//===- examples/solve_chc_file.cpp - Command-line CHC solver --------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
// The command-line driver over the façade's request API. Solves SMT-LIB2
// HORN files (the CHC-COMP exchange format restricted to linear integer
// arithmetic) and mini-C programs, auto-detecting the format:
//
//   $ ./solve_chc_file file.smt2
//   $ ./solve_chc_file program.c --engine portfolio --budget 30
//   $ ./solve_chc_file input.txt --format smt2
//
// Flags (the old positional form `file [timeout] [engine]` still works):
//
//   --format auto|smt2|mini-c   input language (default: auto-detect)
//   --engine <id>               registry engine id: la (default),
//                               portfolio, analysis, spacer, gpdr, ...
//   --budget <seconds>          wall-clock budget (default 60)
//
// Prints sat/unsat/unknown plus the witness, mirroring `z3
// fp.engine=spacer file.smt2` usage. "portfolio" races the registered
// engines in parallel and reports the first definitive answer.
//
//===----------------------------------------------------------------------===//

#include "baselines/RegisterEngines.h"
#include "solver/SolveFacade.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace la;
using namespace la::chc;

namespace {

int usage(const char *Prog) {
  std::string Ids;
  for (const std::string &Id : solver::SolverRegistry::global().ids())
    Ids += (Ids.empty() ? "" : "|") + Id;
  fprintf(stderr,
          "usage: %s <file> [--format auto|smt2|mini-c] [--engine %s]\n"
          "       %*s [--budget seconds]\n"
          "   or: %s <file> [timeout-seconds] [engine]   (legacy form)\n",
          Prog, Ids.c_str(), static_cast<int>(strlen(Prog)), "", Prog);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  // Make the baseline engines (pdr/spacer, unwind/duality, pie, dig, ...)
  // available by name next to the built-in la/analysis/portfolio.
  baselines::registerBuiltinEngines();

  solver::SolveRequest Request;
  Request.Options.Limits.WallSeconds = 60;
  Request.Options.Solver.Learn.ModFeatures = {2, 3}; // generic mod features

  int Positional = 0;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto FlagValue = [&](const char *Flag) -> const char * {
      if (Arg != Flag)
        return nullptr;
      if (I + 1 >= Argc) {
        fprintf(stderr, "error: %s needs a value\n", Flag);
        exit(2);
      }
      return Argv[++I];
    };
    if (const char *V = FlagValue("--format")) {
      std::optional<solver::SourceFormat> F = solver::parseSourceFormat(V);
      if (!F) {
        fprintf(stderr, "error: unknown format '%s'\n", V);
        return 2;
      }
      Request.Format = *F;
    } else if (const char *V = FlagValue("--engine")) {
      Request.Options.Engine = V;
    } else if (const char *V = FlagValue("--budget")) {
      Request.Options.Limits.WallSeconds = std::atof(V);
    } else if (Arg.size() >= 2 && Arg[0] == '-' && Arg[1] == '-') {
      fprintf(stderr, "error: unknown flag '%s'\n", Arg.c_str());
      return usage(Argv[0]);
    } else {
      // Legacy positionals: file, then timeout seconds, then engine id.
      if (Positional == 0)
        Request.Path = Arg;
      else if (Positional == 1)
        Request.Options.Limits.WallSeconds = std::atof(Arg.c_str());
      else if (Positional == 2)
        Request.Options.Engine = Arg;
      else
        return usage(Argv[0]);
      ++Positional;
    }
  }
  if (Request.Path.empty())
    return usage(Argv[0]);

  // The façade owns file I/O, format detection, parsing, engine
  // construction (through the registry) and model validation; this driver
  // only fills in the request.
  solver::SolveResult S = solver::solve(Request);
  if (!S.Ok) {
    fprintf(stderr, "error: %s\n", S.Error.c_str());
    return 2;
  }
  fprintf(stderr, "; %zu clauses, %zu predicates, %s, format=%s, solver=%s\n",
          S.Clauses, S.Predicates, S.Recursive ? "recursive" : "non-recursive",
          solver::toString(S.Format), S.SolverName.c_str());
  printf("%s\n", toString(S.Status));
  fprintf(stderr, "; stats: %s\n", S.Solver.summary().c_str());
  for (const analysis::PassStats &Pass : S.AnalysisPasses)
    fprintf(stderr, "; analysis: %s\n", Pass.toString().c_str());
  // Per-lane reports (one line for single-engine runs, one per lane for the
  // portfolio; * winner, ! crashed, ~ cancelled).
  for (const solver::EngineReport &R : S.Engines)
    fprintf(stderr, "; lane %c %-12s %-8s %.3fs%s%s\n",
            R.Winner ? '*' : R.Crashed ? '!' : R.Cancelled ? '~' : ' ',
            R.Lane.c_str(), toString(R.Status), R.Seconds,
            R.Error.empty() ? "" : " error: ", R.Error.c_str());
  if (S.Status == ChcResult::Sat) {
    fprintf(stderr, "; model:\n%s", S.Model.c_str());
    if (!S.ModelValidated) {
      fprintf(stderr, "; INTERNAL ERROR: model failed validation\n");
      return 1;
    }
  }
  if (S.Status == ChcResult::Unsat && !S.Cex.empty())
    fprintf(stderr, "; %s", S.Cex.c_str());
  return 0;
}
