//===- examples/chc_serve.cpp - Solver-as-a-service daemon ----------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
// The solver daemon: a thread pool serving solve requests over a stdin/
// stdout line protocol (see server/Daemon.h for the grammar):
//
//   $ ./chc_serve --workers 8 --queue 64 --budget 30
//       [--isolation process] [--cache-dir /var/tmp/chc-cache]
//   solve job1 benchmarks/counter.smt2 engine=portfolio budget=10
//   metrics
//   shutdown
//
// Responses arrive as jobs finish, tagged with the client-chosen id, so
// many requests can be in flight at once. A full queue answers
// `rejected <id> retry-after=<seconds>` instead of buffering unboundedly.
//
// `--isolation process` forks every engine lane into a hard-killable
// child, so a segfaulting or runaway engine cannot take the daemon down.
// `--cache-dir DIR` persists definitive verdicts (and Valid clause-check
// records) on disk, surviving daemon restarts and crashes.
//
//===----------------------------------------------------------------------===//

#include "baselines/RegisterEngines.h"
#include "server/Daemon.h"
#include "support/FileCache.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>

using namespace la;

int main(int Argc, char **Argv) {
  baselines::registerBuiltinEngines();

  server::DaemonOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    auto FlagValue = [&](const char *Flag) -> const char * {
      if (strcmp(Argv[I], Flag) != 0)
        return nullptr;
      if (I + 1 >= Argc) {
        fprintf(stderr, "error: %s needs a value\n", Flag);
        exit(2);
      }
      return Argv[++I];
    };
    if (const char *V = FlagValue("--workers")) {
      Opts.Service.Workers = static_cast<size_t>(std::atol(V));
    } else if (const char *V = FlagValue("--queue")) {
      Opts.Service.QueueCapacity = static_cast<size_t>(std::atol(V));
    } else if (const char *V = FlagValue("--budget")) {
      Opts.DefaultBudgetSeconds = std::atof(V);
    } else if (const char *V = FlagValue("--cache")) {
      Opts.Service.CacheCapacity = static_cast<size_t>(std::atol(V));
    } else if (const char *V = FlagValue("--isolation")) {
      std::optional<solver::Isolation> Iso = solver::parseIsolation(V);
      if (!Iso) {
        fprintf(stderr,
                "error: unknown isolation '%s' (want thread or process)\n",
                V);
        return 2;
      }
      Opts.DefaultIsolation = *Iso;
    } else if (const char *V = FlagValue("--cache-dir")) {
      FileCache::Options CO;
      CO.Dir = V;
      Opts.Service.DiskCache = std::make_shared<FileCache>(CO);
    } else if (strcmp(Argv[I], "--crash-engines") == 0) {
      // Deliberately misbehaving engines (segfault/abort/spin), for
      // exercising process isolation end to end.
      baselines::registerCrashEngines();
    } else {
      fprintf(stderr,
              "usage: %s [--workers N] [--queue N] [--budget SECONDS] "
              "[--cache N] [--isolation thread|process] [--cache-dir DIR] "
              "[--crash-engines]\n",
              Argv[0]);
      return 2;
    }
  }

  size_t Accepted = server::runDaemon(std::cin, std::cout, Opts);
  fprintf(stderr, "; served %zu requests\n", Accepted);
  return 0;
}
