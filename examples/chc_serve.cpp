//===- examples/chc_serve.cpp - Solver-as-a-service daemon ----------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
// The solver daemon: a thread pool serving solve requests over a stdin/
// stdout line protocol (see server/Daemon.h for the grammar):
//
//   $ ./chc_serve --workers 8 --queue 64 --budget 30
//       [--isolation process] [--cache-dir /var/tmp/chc-cache]
//       [--schedule staged] [--selector model.txt]
//   solve job1 benchmarks/counter.smt2 engine=portfolio budget=10
//   metrics
//   shutdown
//
// Responses arrive as jobs finish, tagged with the client-chosen id, so
// many requests can be in flight at once. A full queue answers
// `rejected <id> retry-after=<seconds>` instead of buffering unboundedly.
//
// `--isolation process` forks every engine lane into a hard-killable
// child, so a segfaulting or runaway engine cannot take the daemon down.
// `--cache-dir DIR` persists definitive verdicts (and Valid clause-check
// records) on disk, surviving daemon restarts and crashes.
// `--schedule staged|race|auto|single` sets the default per-request
// schedule (requests override with `schedule=`); `--selector FILE` loads
// a table-driven engine-selector model fit by `bench/fit_selector.py`.
//
//===----------------------------------------------------------------------===//

#include "baselines/RegisterEngines.h"
#include "server/Daemon.h"
#include "support/FileCache.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>

using namespace la;

int main(int Argc, char **Argv) {
  baselines::registerBuiltinEngines();

  server::DaemonOptions Opts;
  bool CrashEngines = false;
  for (int I = 1; I < Argc; ++I) {
    auto FlagValue = [&](const char *Flag) -> const char * {
      if (strcmp(Argv[I], Flag) != 0)
        return nullptr;
      if (I + 1 >= Argc) {
        fprintf(stderr, "error: %s needs a value\n", Flag);
        exit(2);
      }
      return Argv[++I];
    };
    if (const char *V = FlagValue("--workers")) {
      Opts.Service.Workers = static_cast<size_t>(std::atol(V));
    } else if (const char *V = FlagValue("--queue")) {
      Opts.Service.QueueCapacity = static_cast<size_t>(std::atol(V));
    } else if (const char *V = FlagValue("--budget")) {
      Opts.DefaultBudgetSeconds = std::atof(V);
    } else if (const char *V = FlagValue("--cache")) {
      Opts.Service.CacheCapacity = static_cast<size_t>(std::atol(V));
    } else if (const char *V = FlagValue("--isolation")) {
      std::optional<solver::Isolation> Iso = solver::parseIsolation(V);
      if (!Iso) {
        fprintf(stderr,
                "error: unknown isolation '%s' (want thread or process)\n",
                V);
        return 2;
      }
      Opts.DefaultIsolation = *Iso;
    } else if (const char *V = FlagValue("--cache-dir")) {
      FileCache::Options CO;
      CO.Dir = V;
      Opts.Service.DiskCache = std::make_shared<FileCache>(CO);
    } else if (const char *V = FlagValue("--schedule")) {
      std::optional<solver::SchedulePolicy> P = solver::parseSchedulePolicy(V);
      if (!P) {
        fprintf(stderr,
                "error: unknown schedule '%s' (want single, race, staged or "
                "auto)\n",
                V);
        return 2;
      }
      Opts.DefaultSchedule = *P;
    } else if (const char *V = FlagValue("--selector")) {
      std::string Error;
      std::shared_ptr<solver::TableSelector> Selector =
          solver::TableSelector::loadFile(V, Error);
      if (!Selector) {
        fprintf(stderr, "error: %s\n", Error.c_str());
        return 2;
      }
      Opts.DefaultSelector = std::move(Selector);
    } else if (strcmp(Argv[I], "--crash-engines") == 0) {
      CrashEngines = true;
    } else {
      fprintf(stderr,
              "usage: %s [--workers N] [--queue N] [--budget SECONDS] "
              "[--cache N] [--isolation thread|process] [--cache-dir DIR] "
              "[--schedule single|race|staged|auto] [--selector FILE] "
              "[--crash-engines]\n",
              Argv[0]);
      return 2;
    }
  }
  if (CrashEngines) {
    // Deliberately misbehaving engines (segfault/abort/spin), for
    // exercising process isolation end to end. Same invariant the options
    // builder enforces per request: without process isolation a crashing
    // lane takes the whole daemon down.
    if (Opts.DefaultIsolation != solver::Isolation::Process) {
      fprintf(stderr, "error: --crash-engines requires --isolation process "
                      "(a thread-mode segfault kills the whole daemon)\n");
      return 2;
    }
    baselines::registerCrashEngines();
  }

  size_t Accepted = server::runDaemon(std::cin, std::cout, Opts);
  fprintf(stderr, "; served %zu requests\n", Accepted);
  return 0;
}
