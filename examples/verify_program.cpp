//===- examples/verify_program.cpp - Mini-C front-end pipeline ------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
// The full SeaHorn-style pipeline: mini-C source -> CHC encoding ->
// data-driven solving -> verdict with a checkable witness. Reads a file
// given on the command line, or verifies the paper's programs (a) and (b)
// (Figs. 3 and 4) when run without arguments.
//
//   $ ./verify_program            # run the built-in paper programs
//   $ ./verify_program file.c     # verify a mini-C file
//
//===----------------------------------------------------------------------===//

#include "corpus/Harness.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace la;

static int verify(const std::string &Name, const std::string &Source) {
  printf("=== %s ===\n", Name.c_str());
  TermManager TM;
  chc::ChcSystem System(TM);
  frontend::EncodeResult E = frontend::encodeMiniC(Source, System);
  if (!E.Ok) {
    printf("front-end error: %s\n", E.Error.c_str());
    return 1;
  }
  printf("encoded into %zu clauses over %zu unknown predicate(s); %s\n",
         System.clauses().size(), System.predicates().size(),
         System.isRecursive() ? "recursive" : "non-recursive");

  solver::DataDrivenOptions Opts;
  Opts.Limits.WallSeconds = 120;
  Opts.Learn.ModFeatures = corpus::modFeaturesFor(Source);
  solver::DataDrivenChcSolver Solver(Opts);
  chc::ChcSolverResult R = Solver.solve(System);

  switch (R.Status) {
  case chc::ChcResult::Sat:
    printf("SAFE. invariants:\n%s", R.Interp.toString().c_str());
    if (chc::checkInterpretation(System, R.Interp) !=
        chc::ClauseStatus::Valid) {
      printf("INTERNAL ERROR: invariant failed validation\n");
      return 1;
    }
    break;
  case chc::ChcResult::Unsat:
    printf("UNSAFE.\n");
    if (R.Cex) {
      printf("%s", R.Cex->toString(System).c_str());
      printf("counterexample replay: %s\n",
             chc::validateCounterexample(System, *R.Cex) ? "confirmed"
                                                         : "FAILED");
    }
    break;
  case chc::ChcResult::Unknown:
    printf("UNKNOWN (budget exhausted)\n");
    break;
  }
  printf("time %.3fs, %zu samples, %zu SMT queries\n\n", R.Stats.Seconds,
         R.Stats.Samples, R.Stats.SmtQueries);
  return 0;
}

int main(int Argc, char **Argv) {
  if (Argc > 1) {
    std::ifstream In(Argv[1]);
    if (!In) {
      printf("cannot open %s\n", Argv[1]);
      return 1;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    return verify(Argv[1], Buffer.str());
  }

  // Program (a), Fig. 3: needs an arbitrary boolean combination invariant.
  int Rc = verify("paper Fig. 3, program (a)", R"(int main(){
  int x, y;
  x = 0; y = *;
  while (y != 0) {
    if (y < 0) { x--; y++; }
    else { x++; y--; }
    assert(x != 0);
  }
})");

  // Program (b), Fig. 4, with a relational bound; the paper's exact
  // assertion (i%2 != 0 || x == 2*y) is in the corpus as `paper_fig4_b`
  // and is one of the hardest instances for this reproduction.
  Rc |= verify("paper Fig. 4, program (b), relational bound", R"(int main(){
  int x, y, i, n;
  x = 0; y = 0; i = 0; n = *;
  while (i < n) {
    i++; x++;
    if (i % 2 == 0) { y++; }
  }
  assert(x >= y);
})");

  // An unsafe program, to demonstrate counterexample replay.
  Rc |= verify("unsafe counter", R"(int main(){
  int x = 0;
  while (x < 5) { x = x + 1; }
  assert(x <= 4);
})");
  return Rc;
}
