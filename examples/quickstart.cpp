//===- examples/quickstart.cpp - Build and solve CHCs via the API ---------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
// Quickstart: constructs the CHC system of the paper's Fig. 1 through the
// public API, solves it with the data-driven solver, prints the learned
// invariant and re-validates it. This is the program a new user should read
// first.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "solver/SolveFacade.h"

#include <cstdio>

using namespace la;
using namespace la::chc;

int main() {
  // 1. A term manager owns all formulas.
  TermManager TM;
  ChcSystem System(TM);

  // 2. Declare the unknown predicate p(x, y): the loop invariant.
  const Predicate *P = System.addPredicate("p", 2);

  // 3. Encode the program of Fig. 1:
  //      x = 1; y = 0;
  //      while (*) { x = x + y; y++; }
  //      assert(x >= y);
  const Term *X = TM.mkVar("x"), *Y = TM.mkVar("y");
  const Term *X1 = TM.mkVar("x1"), *Y1 = TM.mkVar("y1");
  const Term *Init =
      TM.mkAnd(TM.mkEq(X, TM.mkIntConst(1)), TM.mkEq(Y, TM.mkIntConst(0)));
  const Term *Step = TM.mkAnd(TM.mkEq(X1, TM.mkAdd(X, Y)),
                              TM.mkEq(Y1, TM.mkAdd(Y, TM.mkIntConst(1))));

  HornClause C1; // init establishes p
  C1.Constraint = Init;
  C1.HeadPred = PredApp{P, {X, Y}};
  System.addClause(std::move(C1));

  HornClause C2; // p is inductive
  C2.Constraint = Step;
  C2.Body.push_back(PredApp{P, {X, Y}});
  C2.HeadPred = PredApp{P, {X1, Y1}};
  System.addClause(std::move(C2));

  HornClause C3; // p implies the assertion
  C3.Constraint = TM.mkTrue();
  C3.Body.push_back(PredApp{P, {X, Y}});
  C3.HeadFormula = TM.mkGe(X, Y);
  System.addClause(std::move(C3));

  printf("CHC system (the paper's Fig. 1):\n%s\n", System.toString().c_str());

  // 4. Solve through the one-call façade: static pre-analysis, the
  //    data-driven CEGAR loop (Algorithms 1-3 of the paper) and independent
  //    clause-by-clause model validation in a single call.
  solver::SolveOptionsBuilder Builder;
  Builder.wallSeconds(60);
  // Typed registry id; schedule(SchedulePolicy::Staged) would run the
  // probe -> top-k -> race ladder instead of one engine.
  Builder.engine(solver::EngineId("la"));
  solver::SolveOptionsBuilder::Validated V = Builder.build();
  if (!V.Ok) {
    printf("options error: %s\n", V.Error.c_str());
    return 1;
  }
  solver::SolveResult Stats = solver::solveSystem(System, V.Options);

  // 5. Inspect the verdict.
  printf("verdict: %s\n", Stats.summary().c_str());
  if (Stats.Status != ChcResult::Sat) {
    printf("unexpected verdict; Fig. 1 is safe\n");
    return 1;
  }
  printf("learned interpretation:\n%s", Stats.Model.c_str());
  printf("samples drawn: %zu, SMT queries: %zu, time: %.3fs\n",
         Stats.Solver.Samples, Stats.Solver.SmtQueries, Stats.Solver.Seconds);
  for (const analysis::PassStats &Pass : Stats.AnalysisPasses)
    printf("analysis: %s\n", Pass.toString().c_str());

  // 6. The façade already re-checked the model clause by clause.
  printf("independent validation: %s\n",
         Stats.ModelValidated ? "VALID" : "INVALID");
  return Stats.ModelValidated ? 0 : 1;
}
