//===- examples/recursive_fibo.cpp - Recursive CHCs and derivations -------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
// The paper's Fig. 5 walk-through: non-linear recursive CHCs for the
// fibonacci function, solved by counterexample-guided sampling (§2.3).
// Shows the safe property (fibo(x) >= x - 1), the harder SV-COMP variant
// (x < 9 || fibo(x) >= 34), and an unsafe variant whose refutation is a
// derivation tree built from the positive-sample forest.
//
//===----------------------------------------------------------------------===//

#include "chc/ChcParser.h"
#include "solver/DataDrivenSolver.h"

#include <cstdio>

using namespace la;
using namespace la::chc;

static const char *fiboSystem(const char *Property) {
  static std::string Text;
  Text = std::string(R"(
(set-logic HORN)
(declare-fun p (Int Int) Bool)
; CHC (5): x < 1 -> fibo(x) = 0
(assert (forall ((x Int) (y Int)) (=> (and (< x 1) (= y 0)) (p x y))))
; CHC (6): fibo(1) = 1
(assert (forall ((x Int) (y Int)) (=> (and (>= x 1) (= x 1) (= y 1)) (p x y))))
; CHC (7): the non-linear recursive case
(assert (forall ((x Int) (y Int) (y1 Int) (y2 Int))
  (=> (and (>= x 1) (distinct x 1) (p (- x 1) y1) (p (- x 2) y2)
           (= y (+ y1 y2)))
      (p x y))))
; CHC (8): the property
)") + Property;
  return Text.c_str();
}

static int solveAndReport(const char *Label, const char *Property,
                          double Timeout) {
  printf("=== %s ===\n", Label);
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult P = parseChcText(fiboSystem(Property), System);
  if (!P.Ok) {
    printf("parse error: %s\n", P.Error.c_str());
    return 1;
  }
  printf("recursive: %s (CHC (7) has two occurrences of p in its body)\n",
         System.isRecursive() ? "yes" : "no");

  solver::DataDrivenOptions Opts;
  Opts.Limits.WallSeconds = Timeout;
  solver::DataDrivenChcSolver Solver(Opts);
  ChcSolverResult R = Solver.solve(System);

  printf("verdict: %s (%.2fs, %zu samples, %zu weakenings)\n",
         toString(R.Status), R.Stats.Seconds, R.Stats.Samples,
         Solver.detailedStats().Weakenings);
  if (R.Status == ChcResult::Sat) {
    printf("summary of fibo learned from data:\n%s",
           R.Interp.toString().c_str());
    printf("validation: %s\n",
           checkInterpretation(System, R.Interp) == ClauseStatus::Valid
               ? "VALID"
               : "INVALID");
  }
  if (R.Status == ChcResult::Unsat && R.Cex) {
    printf("%s", R.Cex->toString(System).c_str());
    printf("derivation replay: %s\n",
           validateCounterexample(System, *R.Cex) ? "confirmed" : "FAILED");
  }
  printf("\n");
  return 0;
}

int main() {
  int Rc = 0;
  // The paper's property: fibo(x) >= x - 1.
  Rc |= solveAndReport("Fig. 5: fibo(x) >= x - 1",
                       "(assert (forall ((x Int) (y Int)) "
                       "(=> (p x y) (>= y (- x 1)))))",
                       120);
  // The SV-COMP variant from §2.3: needs positive samples up to fibo(10).
  Rc |= solveAndReport("SV-COMP variant: x < 9 || fibo(x) >= 34",
                       "(assert (forall ((x Int) (y Int)) "
                       "(=> (p x y) (or (< x 9) (>= y 34)))))",
                       300);
  // An unsafe property: fibo(x) >= x fails at x = 2.
  Rc |= solveAndReport("unsafe variant: fibo(x) >= x",
                       "(assert (forall ((x Int) (y Int)) "
                       "(=> (p x y) (>= y x))))",
                       120);
  return Rc;
}
