# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/logic_test[1]_include.cmake")
include("/root/repo/build/tests/sat_test[1]_include.cmake")
include("/root/repo/build/tests/smt_test[1]_include.cmake")
include("/root/repo/build/tests/chc_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
