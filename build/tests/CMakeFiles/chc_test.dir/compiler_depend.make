# Empty compiler generated dependencies file for chc_test.
# This may be replaced when dependencies are built.
