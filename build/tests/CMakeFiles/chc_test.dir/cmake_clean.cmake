file(REMOVE_RECURSE
  "CMakeFiles/chc_test.dir/ChcTest.cpp.o"
  "CMakeFiles/chc_test.dir/ChcTest.cpp.o.d"
  "chc_test"
  "chc_test.pdb"
  "chc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
