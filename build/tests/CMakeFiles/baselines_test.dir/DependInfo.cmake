
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/BaselinesTest.cpp" "tests/CMakeFiles/baselines_test.dir/BaselinesTest.cpp.o" "gcc" "tests/CMakeFiles/baselines_test.dir/BaselinesTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/la_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/la_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/la_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/la_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/la_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/chc/CMakeFiles/la_chc.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/la_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/la_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/la_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/la_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
