# Empty dependencies file for la_chc.
# This may be replaced when dependencies are built.
