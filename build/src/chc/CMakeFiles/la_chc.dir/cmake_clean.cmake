file(REMOVE_RECURSE
  "CMakeFiles/la_chc.dir/Chc.cpp.o"
  "CMakeFiles/la_chc.dir/Chc.cpp.o.d"
  "CMakeFiles/la_chc.dir/ChcCheck.cpp.o"
  "CMakeFiles/la_chc.dir/ChcCheck.cpp.o.d"
  "CMakeFiles/la_chc.dir/ChcParser.cpp.o"
  "CMakeFiles/la_chc.dir/ChcParser.cpp.o.d"
  "libla_chc.a"
  "libla_chc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_chc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
