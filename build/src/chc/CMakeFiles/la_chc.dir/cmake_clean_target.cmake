file(REMOVE_RECURSE
  "libla_chc.a"
)
