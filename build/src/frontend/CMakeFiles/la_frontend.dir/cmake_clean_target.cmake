file(REMOVE_RECURSE
  "libla_frontend.a"
)
