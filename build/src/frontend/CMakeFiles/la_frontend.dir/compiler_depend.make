# Empty compiler generated dependencies file for la_frontend.
# This may be replaced when dependencies are built.
