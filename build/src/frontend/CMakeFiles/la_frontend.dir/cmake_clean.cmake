file(REMOVE_RECURSE
  "CMakeFiles/la_frontend.dir/Encoder.cpp.o"
  "CMakeFiles/la_frontend.dir/Encoder.cpp.o.d"
  "CMakeFiles/la_frontend.dir/MiniC.cpp.o"
  "CMakeFiles/la_frontend.dir/MiniC.cpp.o.d"
  "libla_frontend.a"
  "libla_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
