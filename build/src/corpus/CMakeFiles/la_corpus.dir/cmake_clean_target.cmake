file(REMOVE_RECURSE
  "libla_corpus.a"
)
