# Empty compiler generated dependencies file for la_corpus.
# This may be replaced when dependencies are built.
