file(REMOVE_RECURSE
  "CMakeFiles/la_corpus.dir/Corpus.cpp.o"
  "CMakeFiles/la_corpus.dir/Corpus.cpp.o.d"
  "CMakeFiles/la_corpus.dir/Generated.cpp.o"
  "CMakeFiles/la_corpus.dir/Generated.cpp.o.d"
  "CMakeFiles/la_corpus.dir/Harness.cpp.o"
  "CMakeFiles/la_corpus.dir/Harness.cpp.o.d"
  "libla_corpus.a"
  "libla_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
