# Empty dependencies file for la_support.
# This may be replaced when dependencies are built.
