file(REMOVE_RECURSE
  "CMakeFiles/la_support.dir/BigInt.cpp.o"
  "CMakeFiles/la_support.dir/BigInt.cpp.o.d"
  "CMakeFiles/la_support.dir/Rational.cpp.o"
  "CMakeFiles/la_support.dir/Rational.cpp.o.d"
  "libla_support.a"
  "libla_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
