file(REMOVE_RECURSE
  "libla_support.a"
)
