
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/DataDrivenSolver.cpp" "src/solver/CMakeFiles/la_solver.dir/DataDrivenSolver.cpp.o" "gcc" "src/solver/CMakeFiles/la_solver.dir/DataDrivenSolver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chc/CMakeFiles/la_chc.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/la_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/la_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/la_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/la_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/la_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
