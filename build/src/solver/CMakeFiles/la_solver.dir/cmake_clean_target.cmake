file(REMOVE_RECURSE
  "libla_solver.a"
)
