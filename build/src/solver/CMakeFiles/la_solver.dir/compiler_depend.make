# Empty compiler generated dependencies file for la_solver.
# This may be replaced when dependencies are built.
