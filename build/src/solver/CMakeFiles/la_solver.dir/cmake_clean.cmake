file(REMOVE_RECURSE
  "CMakeFiles/la_solver.dir/DataDrivenSolver.cpp.o"
  "CMakeFiles/la_solver.dir/DataDrivenSolver.cpp.o.d"
  "libla_solver.a"
  "libla_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
