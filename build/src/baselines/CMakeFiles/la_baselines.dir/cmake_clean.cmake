file(REMOVE_RECURSE
  "CMakeFiles/la_baselines.dir/EnumLearner.cpp.o"
  "CMakeFiles/la_baselines.dir/EnumLearner.cpp.o.d"
  "CMakeFiles/la_baselines.dir/PdrSolver.cpp.o"
  "CMakeFiles/la_baselines.dir/PdrSolver.cpp.o.d"
  "CMakeFiles/la_baselines.dir/TemplateLearner.cpp.o"
  "CMakeFiles/la_baselines.dir/TemplateLearner.cpp.o.d"
  "CMakeFiles/la_baselines.dir/UnwindSolver.cpp.o"
  "CMakeFiles/la_baselines.dir/UnwindSolver.cpp.o.d"
  "libla_baselines.a"
  "libla_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
