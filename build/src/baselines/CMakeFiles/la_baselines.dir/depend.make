# Empty dependencies file for la_baselines.
# This may be replaced when dependencies are built.
