file(REMOVE_RECURSE
  "libla_baselines.a"
)
