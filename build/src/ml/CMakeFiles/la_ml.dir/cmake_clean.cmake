file(REMOVE_RECURSE
  "CMakeFiles/la_ml.dir/DecisionTree.cpp.o"
  "CMakeFiles/la_ml.dir/DecisionTree.cpp.o.d"
  "CMakeFiles/la_ml.dir/Learn.cpp.o"
  "CMakeFiles/la_ml.dir/Learn.cpp.o.d"
  "CMakeFiles/la_ml.dir/LinearArbitrary.cpp.o"
  "CMakeFiles/la_ml.dir/LinearArbitrary.cpp.o.d"
  "CMakeFiles/la_ml.dir/LinearClassifier.cpp.o"
  "CMakeFiles/la_ml.dir/LinearClassifier.cpp.o.d"
  "CMakeFiles/la_ml.dir/Perceptron.cpp.o"
  "CMakeFiles/la_ml.dir/Perceptron.cpp.o.d"
  "CMakeFiles/la_ml.dir/Svm.cpp.o"
  "CMakeFiles/la_ml.dir/Svm.cpp.o.d"
  "libla_ml.a"
  "libla_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
