
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/DecisionTree.cpp" "src/ml/CMakeFiles/la_ml.dir/DecisionTree.cpp.o" "gcc" "src/ml/CMakeFiles/la_ml.dir/DecisionTree.cpp.o.d"
  "/root/repo/src/ml/Learn.cpp" "src/ml/CMakeFiles/la_ml.dir/Learn.cpp.o" "gcc" "src/ml/CMakeFiles/la_ml.dir/Learn.cpp.o.d"
  "/root/repo/src/ml/LinearArbitrary.cpp" "src/ml/CMakeFiles/la_ml.dir/LinearArbitrary.cpp.o" "gcc" "src/ml/CMakeFiles/la_ml.dir/LinearArbitrary.cpp.o.d"
  "/root/repo/src/ml/LinearClassifier.cpp" "src/ml/CMakeFiles/la_ml.dir/LinearClassifier.cpp.o" "gcc" "src/ml/CMakeFiles/la_ml.dir/LinearClassifier.cpp.o.d"
  "/root/repo/src/ml/Perceptron.cpp" "src/ml/CMakeFiles/la_ml.dir/Perceptron.cpp.o" "gcc" "src/ml/CMakeFiles/la_ml.dir/Perceptron.cpp.o.d"
  "/root/repo/src/ml/Svm.cpp" "src/ml/CMakeFiles/la_ml.dir/Svm.cpp.o" "gcc" "src/ml/CMakeFiles/la_ml.dir/Svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/la_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/la_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
