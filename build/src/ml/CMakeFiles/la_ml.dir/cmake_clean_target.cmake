file(REMOVE_RECURSE
  "libla_ml.a"
)
