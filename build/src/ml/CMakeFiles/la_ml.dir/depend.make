# Empty dependencies file for la_ml.
# This may be replaced when dependencies are built.
