file(REMOVE_RECURSE
  "libla_sat.a"
)
