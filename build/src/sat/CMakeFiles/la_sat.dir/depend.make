# Empty dependencies file for la_sat.
# This may be replaced when dependencies are built.
