file(REMOVE_RECURSE
  "CMakeFiles/la_sat.dir/SatSolver.cpp.o"
  "CMakeFiles/la_sat.dir/SatSolver.cpp.o.d"
  "libla_sat.a"
  "libla_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
