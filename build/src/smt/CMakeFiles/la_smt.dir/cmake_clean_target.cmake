file(REMOVE_RECURSE
  "libla_smt.a"
)
