# Empty dependencies file for la_smt.
# This may be replaced when dependencies are built.
