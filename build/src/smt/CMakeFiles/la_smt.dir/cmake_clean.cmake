file(REMOVE_RECURSE
  "CMakeFiles/la_smt.dir/Simplex.cpp.o"
  "CMakeFiles/la_smt.dir/Simplex.cpp.o.d"
  "CMakeFiles/la_smt.dir/SmtSolver.cpp.o"
  "CMakeFiles/la_smt.dir/SmtSolver.cpp.o.d"
  "libla_smt.a"
  "libla_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
