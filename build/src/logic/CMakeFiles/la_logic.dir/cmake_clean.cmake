file(REMOVE_RECURSE
  "CMakeFiles/la_logic.dir/LinearExpr.cpp.o"
  "CMakeFiles/la_logic.dir/LinearExpr.cpp.o.d"
  "CMakeFiles/la_logic.dir/SExpr.cpp.o"
  "CMakeFiles/la_logic.dir/SExpr.cpp.o.d"
  "CMakeFiles/la_logic.dir/Term.cpp.o"
  "CMakeFiles/la_logic.dir/Term.cpp.o.d"
  "libla_logic.a"
  "libla_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
