# Empty compiler generated dependencies file for la_logic.
# This may be replaced when dependencies are built.
