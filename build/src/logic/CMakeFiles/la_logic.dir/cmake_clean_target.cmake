file(REMOVE_RECURSE
  "libla_logic.a"
)
