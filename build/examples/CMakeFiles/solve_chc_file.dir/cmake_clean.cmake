file(REMOVE_RECURSE
  "CMakeFiles/solve_chc_file.dir/solve_chc_file.cpp.o"
  "CMakeFiles/solve_chc_file.dir/solve_chc_file.cpp.o.d"
  "solve_chc_file"
  "solve_chc_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solve_chc_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
