file(REMOVE_RECURSE
  "CMakeFiles/recursive_fibo.dir/recursive_fibo.cpp.o"
  "CMakeFiles/recursive_fibo.dir/recursive_fibo.cpp.o.d"
  "recursive_fibo"
  "recursive_fibo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recursive_fibo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
