# Empty compiler generated dependencies file for recursive_fibo.
# This may be replaced when dependencies are built.
