# Empty dependencies file for verify_program.
# This may be replaced when dependencies are built.
