file(REMOVE_RECURSE
  "CMakeFiles/verify_program.dir/verify_program.cpp.o"
  "CMakeFiles/verify_program.dir/verify_program.cpp.o.d"
  "verify_program"
  "verify_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
