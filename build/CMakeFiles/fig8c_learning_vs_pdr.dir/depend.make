# Empty dependencies file for fig8c_learning_vs_pdr.
# This may be replaced when dependencies are built.
