file(REMOVE_RECURSE
  "CMakeFiles/fig8c_learning_vs_pdr.dir/bench/fig8c_learning_vs_pdr.cpp.o"
  "CMakeFiles/fig8c_learning_vs_pdr.dir/bench/fig8c_learning_vs_pdr.cpp.o.d"
  "bench/fig8c_learning_vs_pdr"
  "bench/fig8c_learning_vs_pdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8c_learning_vs_pdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
