file(REMOVE_RECURSE
  "CMakeFiles/fig8d_learning_vs_interpolation.dir/bench/fig8d_learning_vs_interpolation.cpp.o"
  "CMakeFiles/fig8d_learning_vs_interpolation.dir/bench/fig8d_learning_vs_interpolation.cpp.o.d"
  "bench/fig8d_learning_vs_interpolation"
  "bench/fig8d_learning_vs_interpolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8d_learning_vs_interpolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
