# Empty compiler generated dependencies file for fig8d_learning_vs_interpolation.
# This may be replaced when dependencies are built.
