file(REMOVE_RECURSE
  "CMakeFiles/table1_solver_comparison.dir/bench/table1_solver_comparison.cpp.o"
  "CMakeFiles/table1_solver_comparison.dir/bench/table1_solver_comparison.cpp.o.d"
  "bench/table1_solver_comparison"
  "bench/table1_solver_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_solver_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
