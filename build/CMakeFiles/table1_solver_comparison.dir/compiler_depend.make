# Empty compiler generated dependencies file for table1_solver_comparison.
# This may be replaced when dependencies are built.
