# Empty dependencies file for ablation_learner.
# This may be replaced when dependencies are built.
