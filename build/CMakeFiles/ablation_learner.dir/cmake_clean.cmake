file(REMOVE_RECURSE
  "CMakeFiles/ablation_learner.dir/bench/ablation_learner.cpp.o"
  "CMakeFiles/ablation_learner.dir/bench/ablation_learner.cpp.o.d"
  "bench/ablation_learner"
  "bench/ablation_learner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_learner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
