file(REMOVE_RECURSE
  "CMakeFiles/table3_svcomp_categories.dir/bench/table3_svcomp_categories.cpp.o"
  "CMakeFiles/table3_svcomp_categories.dir/bench/table3_svcomp_categories.cpp.o.d"
  "bench/table3_svcomp_categories"
  "bench/table3_svcomp_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_svcomp_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
