# Empty compiler generated dependencies file for table3_svcomp_categories.
# This may be replaced when dependencies are built.
