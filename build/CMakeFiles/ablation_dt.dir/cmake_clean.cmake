file(REMOVE_RECURSE
  "CMakeFiles/ablation_dt.dir/bench/ablation_dt.cpp.o"
  "CMakeFiles/ablation_dt.dir/bench/ablation_dt.cpp.o.d"
  "bench/ablation_dt"
  "bench/ablation_dt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
