# Empty dependencies file for ablation_dt.
# This may be replaced when dependencies are built.
