file(REMOVE_RECURSE
  "CMakeFiles/table2_program_characteristics.dir/bench/table2_program_characteristics.cpp.o"
  "CMakeFiles/table2_program_characteristics.dir/bench/table2_program_characteristics.cpp.o.d"
  "bench/table2_program_characteristics"
  "bench/table2_program_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_program_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
