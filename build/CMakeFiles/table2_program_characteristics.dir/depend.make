# Empty dependencies file for table2_program_characteristics.
# This may be replaced when dependencies are built.
