# Empty dependencies file for fig8a_learning_vs_enumeration.
# This may be replaced when dependencies are built.
