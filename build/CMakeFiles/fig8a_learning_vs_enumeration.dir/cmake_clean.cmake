file(REMOVE_RECURSE
  "CMakeFiles/fig8a_learning_vs_enumeration.dir/bench/fig8a_learning_vs_enumeration.cpp.o"
  "CMakeFiles/fig8a_learning_vs_enumeration.dir/bench/fig8a_learning_vs_enumeration.cpp.o.d"
  "bench/fig8a_learning_vs_enumeration"
  "bench/fig8a_learning_vs_enumeration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_learning_vs_enumeration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
