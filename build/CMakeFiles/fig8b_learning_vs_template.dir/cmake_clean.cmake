file(REMOVE_RECURSE
  "CMakeFiles/fig8b_learning_vs_template.dir/bench/fig8b_learning_vs_template.cpp.o"
  "CMakeFiles/fig8b_learning_vs_template.dir/bench/fig8b_learning_vs_template.cpp.o.d"
  "bench/fig8b_learning_vs_template"
  "bench/fig8b_learning_vs_template.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_learning_vs_template.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
