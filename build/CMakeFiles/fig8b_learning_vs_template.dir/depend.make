# Empty dependencies file for fig8b_learning_vs_template.
# This may be replaced when dependencies are built.
