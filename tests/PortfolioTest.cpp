//===- tests/PortfolioTest.cpp - Registry + portfolio engine tests --------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/RegisterEngines.h"
#include "chc/ChcParser.h"
#include "corpus/Harness.h"
#include "solver/Portfolio.h"
#include "solver/SolveFacade.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>

using namespace la;
using namespace la::chc;
using namespace la::solver;

namespace {

constexpr const char *SafeCounterText = R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (< n 10) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int)) (=> (inv n) (<= n 10))))
)";

constexpr const char *UnsafeCounterText = R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (< n 10) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int)) (=> (inv n) (<= n 5))))
)";

/// A diverging loop (no finite unrolling refutes or proves the query bound
/// within the budget of these tests): keeps lanes busy until cancelled.
constexpr const char *DivergingText = R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (inv x))))
(assert (forall ((x Int) (x1 Int))
  (=> (and (inv x) (= x1 (+ x 1))) (inv x1))))
(assert (forall ((x Int)) (=> (inv x) (<= x 1000000000))))
)";

void parseInto(const char *Text, ChcSystem &System) {
  ChcParseResult P = parseChcText(Text, System);
  ASSERT_TRUE(P.Ok) << P.Error;
}

/// Stub engine with scripted behavior, for winner-selection and isolation
/// tests that must not depend on real solver timing.
struct StubEngine : ChcSolverInterface {
  enum class Behavior { Sat, Unsat, Unknown, Throw, SleepThenSat, WaitCancel };
  Behavior Mode;
  std::shared_ptr<const CancellationToken> Cancel;
  double SleepSeconds = 0;

  StubEngine(Behavior Mode, std::shared_ptr<const CancellationToken> Cancel,
             double SleepSeconds)
      : Mode(Mode), Cancel(std::move(Cancel)), SleepSeconds(SleepSeconds) {}

  ChcSolverResult solve(const ChcSystem &System) override {
    ChcSolverResult R(System.termManager());
    switch (Mode) {
    case Behavior::Throw:
      throw std::runtime_error("stub blew up");
    case Behavior::SleepThenSat:
      std::this_thread::sleep_for(
          std::chrono::duration<double>(SleepSeconds));
      [[fallthrough]];
    case Behavior::Sat:
      R.Status = ChcResult::Sat;
      // `true` for every predicate is a genuine solution only for systems
      // without query clauses; these tests never validate stub models.
      for (const Predicate *P : System.predicates())
        R.Interp.set(P, System.termManager().mkTrue());
      return R;
    case Behavior::Unsat:
      R.Status = ChcResult::Unsat;
      return R;
    case Behavior::Unknown:
      return R;
    case Behavior::WaitCancel:
      // Cooperative lane: spins until the shared token fires, like a real
      // engine polling at its loop head.
      while (!isCancelled(Cancel))
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return R;
    }
    return R;
  }
  std::string name() const override { return "stub"; }
};

/// A private registry with scripted engines (the registry owns a mutex and
/// cannot move, so stubs are added in place). Lanes receive the shared race
/// token through `EngineOptions::Cancel`, which the factories capture.
void addStubEngines(SolverRegistry &R) {
  auto Stub = [](StubEngine::Behavior Mode, double Sleep = 0) {
    return [Mode, Sleep](const EngineOptions &EO)
               -> std::unique_ptr<ChcSolverInterface> {
      return std::make_unique<StubEngine>(Mode, EO.Cancel, Sleep);
    };
  };
  auto Add = [&R](const char *Id, const char *Description,
                  SolverRegistry::Factory F) {
    EngineInfo Info;
    Info.Id = EngineId(Id);
    Info.Description = Description;
    Info.TypicalCost = CostClass::Cheap;
    R.add(std::move(Info), std::move(F));
  };
  Add("stub-sat", "returns sat", Stub(StubEngine::Behavior::Sat));
  Add("stub-unsat", "returns unsat", Stub(StubEngine::Behavior::Unsat));
  Add("stub-unknown", "returns unknown", Stub(StubEngine::Behavior::Unknown));
  Add("stub-throw", "throws", Stub(StubEngine::Behavior::Throw));
  Add("stub-slow-sat", "sat after 300ms",
      Stub(StubEngine::Behavior::SleepThenSat, 0.3));
  Add("stub-wait", "spins until cancelled",
      Stub(StubEngine::Behavior::WaitCancel));
}

/// Registers the genuine data-driven solver under "la-real" (tests race it
/// against stubs to exercise cancellation and process isolation).
void addRealLaEngine(SolverRegistry &R) {
  EngineInfo Info;
  Info.Id = EngineId("la-real");
  Info.Description = "the real data-driven solver";
  R.add(std::move(Info),
        [](const EngineOptions &EO) -> std::unique_ptr<ChcSolverInterface> {
          DataDrivenOptions Opts = EO.DataDriven;
          Opts.Limits = EO.Limits.resolvedOver(Opts.Limits);
          Opts.Cancel = EO.Cancel;
          return std::make_unique<DataDrivenChcSolver>(std::move(Opts));
        });
}

PortfolioOptions stubPortfolio(const SolverRegistry &R,
                               std::initializer_list<const char *> Engines) {
  PortfolioOptions Opts;
  Opts.Registry = &R;
  for (const char *E : Engines)
    Opts.Lanes.push_back({EngineId(E), E, {}});
  return Opts;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(SolverRegistryTest, BuiltinsAndBaselinesRegistered) {
  SolverRegistry &R = SolverRegistry::global();
  EXPECT_TRUE(R.contains(EngineId("la")));
  EXPECT_TRUE(R.contains(EngineId("analysis")));
  EXPECT_TRUE(R.contains(EngineId("portfolio")));
  EXPECT_TRUE(R.contains(EngineId("staged")));
  baselines::registerBuiltinEngines();
  for (const char *Id :
       {"pdr", "spacer", "gpdr", "unwind", "duality", "interpolation", "pie",
        "dig"})
    EXPECT_TRUE(R.contains(EngineId(Id))) << Id;
  // Idempotent: a second registration call must not fail or duplicate.
  baselines::registerBuiltinEngines();
  std::vector<EngineId> Ids = R.engineIds();
  EXPECT_TRUE(std::is_sorted(Ids.begin(), Ids.end()));
  EXPECT_EQ(std::adjacent_find(Ids.begin(), Ids.end()), Ids.end());
}

TEST(SolverRegistryTest, CapabilityDescriptorsAndSelectableSet) {
  SolverRegistry &R = SolverRegistry::global();
  baselines::registerBuiltinEngines();

  // Capabilities drive the scheduler; spot-check the load-bearing ones.
  std::optional<EngineInfo> Pdr = R.info(EngineId("pdr"));
  ASSERT_TRUE(Pdr.has_value());
  EXPECT_EQ(Pdr->TypicalCost, CostClass::Heavy);
  std::optional<EngineInfo> Portfolio = R.info(EngineId("portfolio"));
  ASSERT_TRUE(Portfolio.has_value());
  EXPECT_TRUE(Portfolio->IsMeta);
  std::optional<EngineInfo> Pie = R.info(EngineId("pie"));
  ASSERT_TRUE(Pie.has_value());
  EXPECT_TRUE(Pie->NeedsAnalysis);
  // An alias shares the target's descriptor.
  std::optional<EngineInfo> Spacer = R.info(EngineId("spacer"));
  ASSERT_TRUE(Spacer.has_value());
  EXPECT_EQ(Spacer->TypicalCost, CostClass::Heavy);
  EXPECT_FALSE(R.info(EngineId("no-such-engine")).has_value());

  // selectable() excludes aliases, meta engines and diagnostic engines.
  std::vector<EngineInfo> Selectable = R.selectable();
  EXPECT_GE(Selectable.size(), 2u);
  for (const EngineInfo &E : Selectable) {
    EXPECT_FALSE(E.IsMeta) << E.Id.str();
    EXPECT_FALSE(E.IsDiagnostic) << E.Id.str();
    EXPECT_NE(E.Id, EngineId("spacer")) << "aliases are not candidates";
    EXPECT_NE(E.Id, EngineId("duality")) << "aliases are not candidates";
  }
}

TEST(SolverRegistryTest, CreateAppliesBudgetAndUnknownIdFails) {
  SolverRegistry &R = SolverRegistry::global();
  EngineOptions EO;
  EO.Limits.WallSeconds = 1;
  std::unique_ptr<ChcSolverInterface> La = R.create(EngineId("la"), EO);
  ASSERT_NE(La, nullptr);
  EXPECT_EQ(La->name(), "LinearArbitrary");
  EXPECT_EQ(R.create(EngineId("no-such-engine"), EO), nullptr);
}

TEST(SolverRegistryTest, FacadeRejectsUnknownEngine) {
  SolveOptions Opts;
  Opts.Engine = EngineId("no-such-engine");
  SolveResult S = solveChcText(SafeCounterText, Opts);
  EXPECT_FALSE(S.Ok);
  EXPECT_NE(S.Error.find("unknown engine"), std::string::npos);
  // The error names the available engines so callers can self-correct.
  EXPECT_NE(S.Error.find("la"), std::string::npos);
  EXPECT_NE(S.Error.find("portfolio"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Winner selection
//===----------------------------------------------------------------------===//

TEST(PortfolioTest, DefinitiveAnswerBeatsUnknown) {
  TermManager TM;
  ChcSystem System(TM);
  parseInto(SafeCounterText, System);
  SolverRegistry R;
  addStubEngines(R);
  PortfolioSolver Solver(
      stubPortfolio(R, {"stub-unknown", "stub-sat", "stub-unknown"}));
  ChcSolverResult Res = Solver.solve(System);
  EXPECT_EQ(Res.Status, ChcResult::Sat);
  ASSERT_EQ(Solver.reports().size(), 3u);
  // Reports sorted by label; exactly one winner, the sat lane.
  size_t Winners = 0;
  for (const EngineReport &Rep : Solver.reports()) {
    if (Rep.Winner) {
      ++Winners;
      EXPECT_EQ(Rep.Engine, "stub-sat");
      EXPECT_EQ(Rep.Status, ChcResult::Sat);
    }
  }
  EXPECT_EQ(Winners, 1u);
}

TEST(PortfolioTest, FirstDefinitiveAnswerWinsAndCancelsSlowLane) {
  TermManager TM;
  ChcSystem System(TM);
  parseInto(UnsafeCounterText, System);
  SolverRegistry R;
  addStubEngines(R);
  // The unsat lane answers immediately; the 300ms sat lane must lose. (Both
  // are definitive: first-wins resolves the race, not a verdict priority.)
  PortfolioSolver Solver(stubPortfolio(R, {"stub-slow-sat", "stub-unsat"}));
  Timer Wall;
  ChcSolverResult Res = Solver.solve(System);
  EXPECT_EQ(Res.Status, ChcResult::Unsat);
  for (const EngineReport &Rep : Solver.reports())
    EXPECT_EQ(Rep.Winner, Rep.Engine == "stub-unsat");
  // The race itself must not wait out the slow lane's full sleep forever;
  // generous bound for loaded CI machines.
  EXPECT_LT(Wall.elapsedSeconds(), 10.0);
}

TEST(PortfolioTest, ReportsSortedByLaneLabel) {
  TermManager TM;
  ChcSystem System(TM);
  parseInto(SafeCounterText, System);
  SolverRegistry R;
  addStubEngines(R);
  PortfolioSolver Solver(stubPortfolio(
      R, {"stub-unknown", "stub-sat", "stub-unsat", "stub-throw"}));
  (void)Solver.solve(System);
  ASSERT_EQ(Solver.reports().size(), 4u);
  for (size_t I = 1; I < Solver.reports().size(); ++I)
    EXPECT_LT(Solver.reports()[I - 1].Lane, Solver.reports()[I].Lane);
}

//===----------------------------------------------------------------------===//
// Isolation and cancellation
//===----------------------------------------------------------------------===//

TEST(PortfolioTest, ThrowingLaneDoesNotSpoilTheRace) {
  TermManager TM;
  ChcSystem System(TM);
  parseInto(SafeCounterText, System);
  // One stub lane throws; the real "la" lane must still solve the system.
  SolverRegistry R;
  addStubEngines(R);
  addRealLaEngine(R);
  PortfolioOptions PO = stubPortfolio(R, {"stub-throw", "la-real"});
  PO.Limits.WallSeconds = 60;
  PortfolioSolver Solver(PO);
  ChcSolverResult Res = Solver.solve(System);
  EXPECT_EQ(Res.Status, ChcResult::Sat);
  // The winner's model lives in the *input* manager and validates there.
  EXPECT_EQ(checkInterpretation(System, Res.Interp), ClauseStatus::Valid);
  ASSERT_EQ(Solver.reports().size(), 2u);
  const EngineReport &Thrown = Solver.reports()[1];
  ASSERT_EQ(Thrown.Engine, "stub-throw");
  EXPECT_TRUE(Thrown.Crashed);
  EXPECT_NE(Thrown.Error.find("stub blew up"), std::string::npos);
  EXPECT_FALSE(Thrown.Winner);
}

TEST(PortfolioTest, UnknownLaneIdIsContainedAsLaneError) {
  TermManager TM;
  ChcSystem System(TM);
  parseInto(SafeCounterText, System);
  SolverRegistry R;
  addStubEngines(R);
  PortfolioOptions PO = stubPortfolio(R, {"no-such-engine", "stub-sat"});
  PortfolioSolver Solver(PO);
  ChcSolverResult Res = Solver.solve(System);
  EXPECT_EQ(Res.Status, ChcResult::Sat);
  const EngineReport &Bad = Solver.reports()[0];
  ASSERT_EQ(Bad.Engine, "no-such-engine");
  EXPECT_TRUE(Bad.Crashed);
  EXPECT_NE(Bad.Error.find("unknown engine id"), std::string::npos);
}

TEST(PortfolioTest, WinnerCancelsCooperativeLanesPromptly) {
  TermManager TM;
  ChcSystem System(TM);
  parseInto(SafeCounterText, System);
  SolverRegistry R;
  addStubEngines(R);
  // The waiting lane only returns once cancelled; the race must finish
  // quickly after the sat lane answers, bounding cancellation latency.
  PortfolioSolver Solver(stubPortfolio(R, {"stub-wait", "stub-sat"}));
  Timer Wall;
  ChcSolverResult Res = Solver.solve(System);
  EXPECT_EQ(Res.Status, ChcResult::Sat);
  EXPECT_LT(Wall.elapsedSeconds(), 5.0);
  for (const EngineReport &Rep : Solver.reports())
    if (Rep.Engine == "stub-wait") {
      EXPECT_TRUE(Rep.Cancelled);
      EXPECT_EQ(Rep.Status, ChcResult::Unknown);
    }
}

TEST(PortfolioTest, CancellationReachesRealEngineInsideSmt) {
  // A real data-driven lane grinding on a diverging system must be torn
  // down by a stub answer: the token is polled inside the CEGAR loop and at
  // every SMT theory check, so the solve returns well before the lane's own
  // wall-clock budget.
  TermManager TM;
  ChcSystem System(TM);
  parseInto(DivergingText, System);
  SolverRegistry R;
  addStubEngines(R);
  addRealLaEngine(R);
  PortfolioOptions PO = stubPortfolio(R, {"la-real", "stub-slow-sat"});
  PO.Limits.WallSeconds = 60; // the budget is NOT what ends this race
  PortfolioSolver Solver(PO);
  Timer Wall;
  ChcSolverResult Res = Solver.solve(System);
  EXPECT_EQ(Res.Status, ChcResult::Sat);
  EXPECT_LT(Wall.elapsedSeconds(), 30.0);
  for (const EngineReport &Rep : Solver.reports()) {
    if (Rep.Engine == "la-real") {
      EXPECT_EQ(Rep.Status, ChcResult::Unknown);
    }
  }
}

TEST(PortfolioTest, GlobalBudgetCancelsEveryLane) {
  TermManager TM;
  ChcSystem System(TM);
  parseInto(SafeCounterText, System);
  SolverRegistry R;
  addStubEngines(R);
  PortfolioOptions PO = stubPortfolio(R, {"stub-wait", "stub-wait-2"});
  PO.Lanes[1].Engine = EngineId("stub-wait");
  PO.Lanes[1].Label = "stub-wait-2";
  PO.Limits.WallSeconds = 0.2;
  PortfolioSolver Solver(PO);
  Timer Wall;
  ChcSolverResult Res = Solver.solve(System);
  EXPECT_EQ(Res.Status, ChcResult::Unknown);
  EXPECT_LT(Wall.elapsedSeconds(), 5.0);
  for (const EngineReport &Rep : Solver.reports())
    EXPECT_TRUE(Rep.Cancelled) << Rep.Lane;
}

//===----------------------------------------------------------------------===//
// Thread-mode lane diagnostics (contained exceptions keep their message)
//===----------------------------------------------------------------------===//

TEST(PortfolioTest, ThreadModeLaneDiagnosticsAreNeverEmpty) {
  TermManager TM;
  ChcSystem System(TM);
  parseInto(SafeCounterText, System);
  SolverRegistry R;
  addStubEngines(R);
  PortfolioSolver Solver(stubPortfolio(R, {"stub-throw", "stub-sat"}));
  ChcSolverResult Res = Solver.solve(System);
  EXPECT_EQ(Res.Status, ChcResult::Sat);
  for (const EngineReport &Rep : Solver.reports()) {
    if (Rep.Engine != "stub-throw")
      continue;
    EXPECT_TRUE(Rep.Crashed);
    // The exception text must be preserved verbatim — an empty or
    // placeholder diagnostic makes crashed lanes undebuggable.
    EXPECT_EQ(Rep.Error, "stub blew up");
    EXPECT_EQ(Rep.Outcome, LaneOutcome::Failed);
  }
}

//===----------------------------------------------------------------------===//
// Process isolation
//===----------------------------------------------------------------------===//

// TSan does not support fork() from a multithreaded process; thread-mode
// isolation is still covered above, and the process paths run in the plain
// and ASan/UBSan jobs.
#if defined(__SANITIZE_THREAD__)
#define LA_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LA_TSAN_ACTIVE 1
#endif
#endif
#ifndef LA_TSAN_ACTIVE
#define LA_TSAN_ACTIVE 0
#endif

#if LA_TSAN_ACTIVE
#define LA_SKIP_UNDER_TSAN() \
  GTEST_SKIP() << "fork() from a multithreaded TSan process is unsupported"
#else
#define LA_SKIP_UNDER_TSAN() (void)0
#endif

// NOTE: crash engines (crash-segv / crash-abort / crash-spin) can only be
// raced under Isolation::Process. In thread mode a segfaulting lane takes
// down the whole process — that is precisely the limitation process
// isolation removes, so there is deliberately no thread-mode crash test.

TEST(ProcessIsolationTest, CrashingLaneLosesAndIsReportedKilled) {
  LA_SKIP_UNDER_TSAN();
  TermManager TM;
  ChcSystem System(TM);
  parseInto(SafeCounterText, System);
  SolverRegistry R;
  addStubEngines(R);
  baselines::registerCrashEngines(R);
  PortfolioOptions PO = stubPortfolio(R, {"crash-segv", "stub-sat"});
  PO.Isolate = Isolation::Process;
  PO.Limits.WallSeconds = 60;
  PortfolioSolver Solver(PO);
  ChcSolverResult Res = Solver.solve(System);
  EXPECT_EQ(Res.Status, ChcResult::Sat);
  ASSERT_EQ(Solver.reports().size(), 2u);
  for (const EngineReport &Rep : Solver.reports()) {
    if (Rep.Engine == "crash-segv") {
      EXPECT_NE(Rep.Outcome, LaneOutcome::Completed) << toString(Rep.Outcome);
      EXPECT_TRUE(Rep.Crashed || Rep.Outcome != LaneOutcome::Completed);
      EXPECT_FALSE(Rep.Error.empty());
      EXPECT_FALSE(Rep.Winner);
    } else {
      EXPECT_TRUE(Rep.Winner);
      EXPECT_EQ(Rep.Status, ChcResult::Sat);
    }
  }
}

TEST(ProcessIsolationTest, AbortAndSpinLanesAreContained) {
  LA_SKIP_UNDER_TSAN();
  TermManager TM;
  ChcSystem System(TM);
  parseInto(UnsafeCounterText, System);
  SolverRegistry R;
  addStubEngines(R);
  baselines::registerCrashEngines(R);
  PortfolioOptions PO =
      stubPortfolio(R, {"crash-abort", "crash-spin", "stub-unsat"});
  PO.Isolate = Isolation::Process;
  PO.Limits.WallSeconds = 60;
  PortfolioSolver Solver(PO);
  Timer Wall;
  ChcSolverResult Res = Solver.solve(System);
  EXPECT_EQ(Res.Status, ChcResult::Unsat);
  // The spinning lane ignores its token entirely; only the process kill
  // ends it, and it must not stall the race.
  EXPECT_LT(Wall.elapsedSeconds(), 30.0);
  for (const EngineReport &Rep : Solver.reports()) {
    if (Rep.Engine == "crash-abort") {
      EXPECT_NE(Rep.Outcome, LaneOutcome::Completed);
      EXPECT_FALSE(Rep.Error.empty());
    }
    if (Rep.Engine == "crash-spin") {
      EXPECT_TRUE(Rep.Outcome == LaneOutcome::Cancelled ||
                  Rep.Outcome == LaneOutcome::TimedOut)
          << toString(Rep.Outcome);
      EXPECT_FALSE(Rep.Winner);
    }
    if (Rep.Engine == "stub-unsat") {
      EXPECT_TRUE(Rep.Winner);
    }
  }
}

TEST(ProcessIsolationTest, RealEngineModelSurvivesThePipe) {
  LA_SKIP_UNDER_TSAN();
  // A real data-driven lane solves in a forked child; its model crosses
  // the pipe as printed formulas and must validate against the parent-side
  // system after rebuilding.
  TermManager TM;
  ChcSystem System(TM);
  parseInto(SafeCounterText, System);
  SolverRegistry R;
  addStubEngines(R);
  addRealLaEngine(R);
  PortfolioOptions PO = stubPortfolio(R, {"la-real"});
  PO.Isolate = Isolation::Process;
  PO.Limits.WallSeconds = 60;
  PortfolioSolver Solver(PO);
  ChcSolverResult Res = Solver.solve(System);
  ASSERT_EQ(Res.Status, ChcResult::Sat);
  EXPECT_EQ(checkInterpretation(System, Res.Interp), ClauseStatus::Valid);
  ASSERT_EQ(Solver.reports().size(), 1u);
  EXPECT_EQ(Solver.reports()[0].Outcome, LaneOutcome::Completed);
}

TEST(ProcessIsolationTest, CounterexampleSurvivesThePipe) {
  LA_SKIP_UNDER_TSAN();
  TermManager TM;
  ChcSystem System(TM);
  parseInto(UnsafeCounterText, System);
  SolverRegistry R;
  addRealLaEngine(R);
  PortfolioOptions PO = stubPortfolio(R, {"la-real"});
  PO.Isolate = Isolation::Process;
  PO.Limits.WallSeconds = 60;
  PortfolioSolver Solver(PO);
  ChcSolverResult Res = Solver.solve(System);
  ASSERT_EQ(Res.Status, ChcResult::Unsat);
  ASSERT_TRUE(Res.Cex.has_value());
}

TEST(ProcessIsolationTest, FacadeSingleEngineProcessMode) {
  LA_SKIP_UNDER_TSAN();
  SolveOptions Opts;
  Opts.Engine = EngineId("la");
  Opts.Isolate = Isolation::Process;
  Opts.Limits.WallSeconds = 60;
  SolveResult S = solveChcText(SafeCounterText, Opts);
  ASSERT_TRUE(S.Ok) << S.Error;
  EXPECT_EQ(S.Status, ChcResult::Sat);
  EXPECT_TRUE(S.ModelValidated);
  ASSERT_EQ(S.Engines.size(), 1u);
  EXPECT_EQ(S.Engines[0].Outcome, LaneOutcome::Completed);
}

TEST(ProcessIsolationTest, FacadeContainsCrashingSingleEngine) {
  LA_SKIP_UNDER_TSAN();
  baselines::registerCrashEngines();
  SolveOptions Opts;
  Opts.Engine = EngineId("crash-segv");
  Opts.Isolate = Isolation::Process;
  Opts.Limits.WallSeconds = 60;
  SolveResult S = solveChcText(SafeCounterText, Opts);
  // The crash is contained: the call returns (no verdict) instead of
  // taking the process down, and the lane report says what happened.
  EXPECT_EQ(S.Status, ChcResult::Unknown);
  ASSERT_EQ(S.Engines.size(), 1u);
  EXPECT_NE(S.Engines[0].Outcome, LaneOutcome::Completed);
  EXPECT_FALSE(S.Engines[0].Error.empty());
  std::string Summary = S.summary();
  EXPECT_NE(Summary.find(toString(S.Engines[0].Outcome)), std::string::npos);
}

TEST(IsolationParseTest, RoundTripAndRejects) {
  EXPECT_EQ(parseIsolation("thread"), Isolation::Thread);
  EXPECT_EQ(parseIsolation("process"), Isolation::Process);
  EXPECT_FALSE(parseIsolation("forked").has_value());
  EXPECT_STREQ(solver::toString(Isolation::Thread), "thread");
  EXPECT_STREQ(solver::toString(Isolation::Process), "process");
}

//===----------------------------------------------------------------------===//
// End-to-end through the façade
//===----------------------------------------------------------------------===//

TEST(PortfolioTest, FacadePortfolioSolvesSafeAndUnsafe) {
  baselines::registerBuiltinEngines();
  SolveOptions Opts;
  Opts.Engine = EngineId("portfolio");
  Opts.Limits.WallSeconds = 30;

  SolveResult Safe = solveChcText(SafeCounterText, Opts);
  ASSERT_TRUE(Safe.Ok) << Safe.Error;
  EXPECT_EQ(Safe.Status, ChcResult::Sat);
  EXPECT_TRUE(Safe.ModelValidated);
  EXPECT_GT(Safe.Engines.size(), 1u);
  // Deterministic rendering: the lane block lists every lane.
  std::string Summary = Safe.summary();
  for (const EngineReport &Rep : Safe.Engines)
    EXPECT_NE(Summary.find(Rep.Lane), std::string::npos) << Rep.Lane;

  SolveResult Unsafe = solveChcText(UnsafeCounterText, Opts);
  ASSERT_TRUE(Unsafe.Ok) << Unsafe.Error;
  EXPECT_EQ(Unsafe.Status, ChcResult::Unsat);
  EXPECT_FALSE(Unsafe.Cex.empty());
}

//===----------------------------------------------------------------------===//
// Corpus differential: portfolio verdicts == single-engine verdicts
//===----------------------------------------------------------------------===//

TEST(PortfolioCorpusTest, VerdictsMatchSingleEngine) {
  baselines::registerBuiltinEngines();
  std::vector<const corpus::BenchmarkProgram *> Programs =
      corpus::category("loop-lit");
  ASSERT_FALSE(Programs.empty());
  const double Timeout = 10;
  for (const corpus::BenchmarkProgram *P : Programs) {
    solver::DataDrivenChcSolver Single(corpus::defaultOptionsFor(*P, Timeout));
    corpus::RunOutcome SingleOut = corpus::runOnProgram(Single, *P);

    PortfolioOptions PO;
    PO.Name = "LA-portfolio";
    PO.Base.DataDriven = corpus::defaultOptionsFor(*P, Timeout);
    PO.Base.Limits.WallSeconds = Timeout;
    PO.Limits.WallSeconds = Timeout;
    PortfolioSolver Portfolio(PO);
    corpus::RunOutcome PortfolioOut = corpus::runOnProgram(Portfolio, *P);

    // The harness validates witnesses and checks ground truth: neither run
    // may be unsound, and definitive verdicts must agree.
    EXPECT_FALSE(SingleOut.Unsound) << P->Name;
    EXPECT_FALSE(PortfolioOut.Unsound) << P->Name;
    if (SingleOut.Status != ChcResult::Unknown &&
        PortfolioOut.Status != ChcResult::Unknown) {
      EXPECT_EQ(SingleOut.Status, PortfolioOut.Status) << P->Name;
    }
  }
}

} // namespace
