//===- tests/ChcTest.cpp - CHC system / checking / parser tests -----------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "chc/ChcCheck.h"
#include "chc/ChcParser.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace la;
using namespace la::chc;

namespace {

/// Builds the CHC system of Fig. 1 in the paper:
///   x = 1 /\ y = 0 -> p(x, y)
///   p(x, y) /\ x' = x + y /\ y' = y + 1 -> p(x', y')
///   p(x, y) /\ x' = x + y /\ y' = y + 1 -> x' >= y'
///   x = 1 /\ y = 0 -> x >= y
class Fig1System : public ::testing::Test {
protected:
  Fig1System() : System(TM) {
    P = System.addPredicate("p", 2);
    X = TM.mkVar("x");
    Y = TM.mkVar("y");
    XP = TM.mkVar("x'");
    YP = TM.mkVar("y'");

    const Term *Init =
        TM.mkAnd(TM.mkEq(X, TM.mkIntConst(1)), TM.mkEq(Y, TM.mkIntConst(0)));
    const Term *Step =
        TM.mkAnd(TM.mkEq(XP, TM.mkAdd(X, Y)),
                 TM.mkEq(YP, TM.mkAdd(Y, TM.mkIntConst(1))));

    HornClause C1;
    C1.Constraint = Init;
    C1.HeadPred = PredApp{P, {X, Y}};
    System.addClause(std::move(C1));

    HornClause C2;
    C2.Constraint = Step;
    C2.Body.push_back(PredApp{P, {X, Y}});
    C2.HeadPred = PredApp{P, {XP, YP}};
    System.addClause(std::move(C2));

    HornClause C3;
    C3.Constraint = Step;
    C3.Body.push_back(PredApp{P, {X, Y}});
    C3.HeadFormula = TM.mkGe(XP, YP);
    System.addClause(std::move(C3));

    HornClause C4;
    C4.Constraint = Init;
    C4.HeadFormula = TM.mkGe(X, Y);
    System.addClause(std::move(C4));
  }

  TermManager TM;
  ChcSystem System;
  const Predicate *P;
  const Term *X, *Y, *XP, *YP;
};

TEST_F(Fig1System, StructureQueries) {
  EXPECT_EQ(System.predicates().size(), 1u);
  EXPECT_TRUE(System.isRecursive());
  ASSERT_EQ(System.recursivePredicates().size(), 1u);
  EXPECT_EQ(System.recursivePredicates()[0], P);
  EXPECT_EQ(System.clausesWithHead(P), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(System.clausesUsing(P), (std::vector<size_t>{1, 2}));
  EXPECT_TRUE(System.clauses()[0].isFact());
  EXPECT_FALSE(System.clauses()[1].isQuery());
  EXPECT_TRUE(System.clauses()[2].isQuery());
}

TEST_F(Fig1System, TrueInterpretationFailsQueryClause) {
  Interpretation A(TM);
  // With p := true, clause 3 is invalid: nothing prevents x' < y'.
  ClauseCheckResult R = checkClause(System, System.clauses()[2], A);
  EXPECT_EQ(R.Status, ClauseStatus::Invalid);
  // The model must witness the violation.
  const HornClause &C = System.clauses()[2];
  EXPECT_FALSE(evalFormula(C.HeadFormula, R.Model));
  EXPECT_TRUE(evalFormula(C.Constraint, R.Model));
}

TEST_F(Fig1System, PaperInvariantIsASolution) {
  // x >= 1 /\ y >= 0 (the invariant from the paper's introduction).
  Interpretation A(TM);
  A.set(P, TM.mkAnd(TM.mkGe(P->Params[0], TM.mkIntConst(1)),
                    TM.mkGe(P->Params[1], TM.mkIntConst(0))));
  EXPECT_EQ(checkInterpretation(System, A), ClauseStatus::Valid);
}

TEST_F(Fig1System, TooWeakAndTooStrongInterpretationsFail) {
  // x >= 0 alone is not inductive enough for the query clause.
  Interpretation Weak(TM);
  Weak.set(P, TM.mkGe(P->Params[0], TM.mkIntConst(0)));
  EXPECT_EQ(checkInterpretation(System, Weak), ClauseStatus::Invalid);
  // x = 1 /\ y = 0 is not inductive (fails the step clause).
  Interpretation Strong(TM);
  Strong.set(P, TM.mkAnd(TM.mkEq(P->Params[0], TM.mkIntConst(1)),
                         TM.mkEq(P->Params[1], TM.mkIntConst(0))));
  ClauseCheckResult R = checkClause(System, System.clauses()[1], Strong);
  EXPECT_EQ(R.Status, ClauseStatus::Invalid);
}

TEST_F(Fig1System, InterpretationInstantiation) {
  Interpretation A(TM);
  A.set(P, TM.mkGe(P->Params[0], P->Params[1]));
  PredApp App{P, {TM.mkIntConst(3), TM.mkIntConst(5)}};
  const Term *Inst = A.instantiate(App);
  EXPECT_EQ(Inst, TM.mkFalse()); // 3 >= 5 folds to false
}

//===----------------------------------------------------------------------===//
// ClauseCheckContext: incremental backend + memo cache
//===----------------------------------------------------------------------===//

TEST_F(Fig1System, ContextAgreesWithOneShotOnAllClauses) {
  // A spread of interpretations: trivial, the paper's solution, too weak,
  // too strong.
  std::vector<Interpretation> Interps;
  Interps.emplace_back(TM); // p := true
  Interps.emplace_back(TM);
  Interps.back().set(P, TM.mkAnd(TM.mkGe(P->Params[0], TM.mkIntConst(1)),
                                 TM.mkGe(P->Params[1], TM.mkIntConst(0))));
  Interps.emplace_back(TM);
  Interps.back().set(P, TM.mkGe(P->Params[0], TM.mkIntConst(0)));
  Interps.emplace_back(TM);
  Interps.back().set(P, TM.mkAnd(TM.mkEq(P->Params[0], TM.mkIntConst(1)),
                                 TM.mkEq(P->Params[1], TM.mkIntConst(0))));

  ClauseCheckContext Checker(System);
  for (const Interpretation &A : Interps) {
    for (size_t CI = 0; CI < System.clauses().size(); ++CI) {
      ClauseCheckResult Inc = Checker.check(CI, A);
      ClauseCheckResult One = checkClause(System, System.clauses()[CI], A);
      EXPECT_EQ(Inc.Status, One.Status) << "clause " << CI;
      if (Inc.Status == ClauseStatus::Invalid) {
        // The incremental model must falsify the clause: body holds, head
        // does not.
        const HornClause &C = System.clauses()[CI];
        EXPECT_TRUE(evalFormula(C.Constraint, Inc.Model)) << "clause " << CI;
        for (const PredApp &App : C.Body)
          EXPECT_TRUE(evalFormula(A.instantiate(App), Inc.Model))
              << "clause " << CI;
        if (C.HeadPred)
          EXPECT_FALSE(evalFormula(A.instantiate(*C.HeadPred), Inc.Model))
              << "clause " << CI;
        else
          EXPECT_FALSE(evalFormula(C.HeadFormula, Inc.Model))
              << "clause " << CI;
      }
    }
  }
  // Clause 3 mentions no predicate, so its key is interpretation-independent
  // and the last three rounds hit the cache; the other three clauses are
  // distinct keys every round. Each clause builds its solver exactly once.
  // Conjunction-headed checks decompose conjunct-by-conjunct: the two
  // two-conjunct interpretations on the two P-headed clauses account for
  // four split checks issuing one extra solver query each.
  const CheckStats &St = Checker.stats();
  EXPECT_EQ(St.CacheHits, 3u);
  EXPECT_EQ(St.CacheMisses, 13u);
  EXPECT_EQ(St.SolverRebuilds, 4u);
  EXPECT_EQ(St.RebuildsAvoided, 9u);
  EXPECT_EQ(St.ConjunctSplits, 4u);
  EXPECT_EQ(St.ChecksIssued, 17u);
}

TEST_F(Fig1System, RepeatedInterpretationHitsCache) {
  Interpretation A(TM);
  A.set(P, TM.mkAnd(TM.mkGe(P->Params[0], TM.mkIntConst(1)),
                    TM.mkGe(P->Params[1], TM.mkIntConst(0))));
  ClauseCheckContext Checker(System);
  EXPECT_EQ(Checker.checkAll(A), ClauseStatus::Valid);
  uint64_t IssuedAfterFirst = Checker.stats().ChecksIssued;
  EXPECT_EQ(Checker.stats().CacheHits, 0u);

  // Same interpretation again: every verdict is served from the cache.
  EXPECT_EQ(Checker.checkAll(A), ClauseStatus::Valid);
  EXPECT_EQ(Checker.stats().ChecksIssued, IssuedAfterFirst);
  EXPECT_EQ(Checker.stats().CacheHits, System.clauses().size());

  // A different interpretation must not be served stale verdicts.
  Interpretation B(TM);
  B.set(P, TM.mkGe(P->Params[0], TM.mkIntConst(0)));
  EXPECT_EQ(Checker.checkAll(B), ClauseStatus::Invalid);
  EXPECT_GT(Checker.stats().ChecksIssued, IssuedAfterFirst);
}

TEST_F(Fig1System, CacheEvictionAtCapacity) {
  // Capacity 2: distinct (clause, interpretation) keys beyond 2 must evict.
  ClauseCheckContext Checker(System, {}, /*CacheCapacity=*/2);
  for (int K = 0; K < 4; ++K) {
    Interpretation A(TM);
    A.set(P, TM.mkGe(P->Params[0], TM.mkIntConst(K)));
    Checker.check(1, A);
  }
  EXPECT_EQ(Checker.stats().CacheEvictions, 2u);
  EXPECT_EQ(Checker.stats().CacheMisses, 4u);
}

TEST_F(Fig1System, CheckAllMatchesCheckInterpretation) {
  std::vector<Interpretation> Interps;
  Interps.emplace_back(TM);
  Interps.emplace_back(TM);
  Interps.back().set(P, TM.mkAnd(TM.mkGe(P->Params[0], TM.mkIntConst(1)),
                                 TM.mkGe(P->Params[1], TM.mkIntConst(0))));
  Interps.emplace_back(TM);
  Interps.back().set(P, TM.mkAnd(TM.mkEq(P->Params[0], TM.mkIntConst(1)),
                                 TM.mkEq(P->Params[1], TM.mkIntConst(0))));
  ClauseCheckContext Checker(System);
  for (const Interpretation &A : Interps)
    EXPECT_EQ(Checker.checkAll(A), checkInterpretation(System, A));
}

TEST_F(Fig1System, CrossCheckModeAgreesUnderEnvToggle) {
  // With LA_CHECK_INCREMENTAL set, every miss replays on the one-shot path
  // and asserts agreement internally; the test exercises that path end to
  // end (a disagreement would abort the process).
  ASSERT_EQ(setenv("LA_CHECK_INCREMENTAL", "1", /*overwrite=*/1), 0);
  {
    ClauseCheckContext Checker(System);
    Interpretation A(TM);
    A.set(P, TM.mkGe(P->Params[0], P->Params[1]));
    Checker.checkAll(A);
    Interpretation B(TM);
    B.set(P, TM.mkAnd(TM.mkGe(P->Params[0], TM.mkIntConst(1)),
                      TM.mkGe(P->Params[1], TM.mkIntConst(0))));
    EXPECT_EQ(Checker.checkAll(B), ClauseStatus::Valid);
  }
  unsetenv("LA_CHECK_INCREMENTAL");
}

//===----------------------------------------------------------------------===//
// Counterexample validation
//===----------------------------------------------------------------------===//

/// An unsafe variant of Fig. 1: assert x > y strictly, falsified at x=1,y=1.
TEST(CounterexampleTest, ValidatesRealDerivation) {
  TermManager TM;
  ChcSystem System(TM);
  const Predicate *P = System.addPredicate("p", 2);
  const Term *X = TM.mkVar("cx"), *Y = TM.mkVar("cy");
  const Term *XP = TM.mkVar("cx'"), *YP = TM.mkVar("cy'");

  HornClause Init;
  Init.Constraint =
      TM.mkAnd(TM.mkEq(X, TM.mkIntConst(1)), TM.mkEq(Y, TM.mkIntConst(0)));
  Init.HeadPred = PredApp{P, {X, Y}};
  System.addClause(std::move(Init));

  HornClause Step;
  Step.Constraint = TM.mkAnd(TM.mkEq(XP, TM.mkAdd(X, Y)),
                             TM.mkEq(YP, TM.mkAdd(Y, TM.mkIntConst(1))));
  Step.Body.push_back(PredApp{P, {X, Y}});
  Step.HeadPred = PredApp{P, {XP, YP}};
  System.addClause(std::move(Step));

  HornClause Query;
  Query.Constraint = TM.mkTrue();
  Query.Body.push_back(PredApp{P, {X, Y}});
  Query.HeadFormula = TM.mkGt(X, Y); // violated at p(1, 1)
  System.addClause(std::move(Query));

  Counterexample Cex;
  Cex.Nodes.push_back({P, {Rational(1), Rational(0)}, 0, {}});
  Cex.Nodes.push_back({P, {Rational(1), Rational(1)}, 1, {0}});
  Cex.QueryClauseIndex = 2;
  Cex.QueryChildren = {1};
  EXPECT_TRUE(validateCounterexample(System, Cex));

  // A corrupted derivation must be rejected.
  Counterexample Bad = Cex;
  Bad.Nodes[1].Args[1] = Rational(7); // p(1,7) is not derivable from p(1,0)
  EXPECT_FALSE(validateCounterexample(System, Bad));

  Counterexample BadQuery = Cex;
  BadQuery.QueryChildren = {0}; // p(1,0) does not violate x > y
  EXPECT_FALSE(validateCounterexample(System, BadQuery));
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(ChcParserTest, ParsesFig1SmtLib) {
  const char *Text = R"(
(set-logic HORN)
(declare-fun p (Int Int) Bool)
(assert (forall ((x Int) (y Int))
  (=> (and (= x 1) (= y 0)) (p x y))))
(assert (forall ((x Int) (y Int) (x1 Int) (y1 Int))
  (=> (and (p x y) (= x1 (+ x y)) (= y1 (+ y 1))) (p x1 y1))))
(assert (forall ((x Int) (y Int) (x1 Int) (y1 Int))
  (=> (and (p x y) (= x1 (+ x y)) (= y1 (+ y 1))) (>= x1 y1))))
(check-sat)
)";
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult R = parseChcText(Text, System);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(System.predicates().size(), 1u);
  ASSERT_EQ(System.clauses().size(), 3u);
  EXPECT_TRUE(System.isRecursive());
  EXPECT_TRUE(System.clauses()[2].isQuery());

  // The paper's invariant solves the parsed system too.
  const Predicate *P = System.findPredicate("p");
  Interpretation A(TM);
  A.set(P, TM.mkAnd(TM.mkGe(P->Params[0], TM.mkIntConst(1)),
                    TM.mkGe(P->Params[1], TM.mkIntConst(0))));
  EXPECT_EQ(checkInterpretation(System, A), ClauseStatus::Valid);
}

TEST(ChcParserTest, RuleQueryStyle) {
  const char *Text = R"(
(declare-rel inv (Int))
(declare-var x Int)
(rule (=> (= x 0) (inv x)))
(rule (=> (and (inv x) (< x 10)) (inv (+ x 1))))
(query inv)
)";
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult R = parseChcText(Text, System);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(System.clauses().size(), 3u);
  EXPECT_TRUE(System.clauses()[2].isQuery());
  EXPECT_EQ(System.clauses()[2].HeadFormula, TM.mkFalse());
}

TEST(ChcParserTest, NegatedBodyQuery) {
  const char *Text = R"(
(declare-fun p (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (p x))))
(assert (forall ((x Int)) (not (and (p x) (> x 5)))))
)";
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult R = parseChcText(Text, System);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(System.clauses().size(), 2u);
  EXPECT_TRUE(System.clauses()[1].isQuery());
  EXPECT_EQ(System.clauses()[1].Body.size(), 1u);
}

TEST(ChcParserTest, ArithmeticOperators) {
  const char *Text = R"(
(declare-fun p (Int Int) Bool)
(assert (forall ((x Int) (y Int))
  (=> (and (= y (* 2 x)) (= (mod y 2) 0) (distinct x y) (<= 0 x y))
      (p x y))))
)";
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult R = parseChcText(Text, System);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(System.clauses().size(), 1u);
  const HornClause &C = System.clauses()[0];
  // distinct x y with y = 2x and x, y >= 0 forces x >= 1 at, e.g., x=1,y=2.
  std::unordered_map<const Term *, Rational> Asg{
      {TM.mkVar("x"), Rational(1)}, {TM.mkVar("y"), Rational(2)}};
  EXPECT_TRUE(evalFormula(C.Constraint, Asg));
  Asg[TM.mkVar("y")] = Rational(1);
  EXPECT_FALSE(evalFormula(C.Constraint, Asg));
}

TEST(ChcParserTest, ErrorDiagnostics) {
  TermManager TM;
  auto Expect = [&](const char *Text, const char *Fragment) {
    ChcSystem System(TM);
    ChcParseResult R = parseChcText(Text, System);
    EXPECT_FALSE(R.Ok) << Text;
    EXPECT_NE(R.Error.find(Fragment), std::string::npos)
        << R.Error << " vs " << Fragment;
  };
  Expect("(declare-fun p (Real) Bool)", "sort Int");
  Expect("(frobnicate)", "unsupported command");
  Expect("(assert (q 1))", "unknown operator or predicate");
  Expect("(declare-fun p (Int) Bool)(assert (p 1 2))", "arity mismatch");
  Expect("(declare-fun p (Int) Bool)(assert (forall ((x Int)) "
         "(=> (or (p x) (> x 0)) false)))",
         "not a Horn clause");
  Expect("(declare-fun p (Int) Bool)(assert (* x y))",
         "non-linear multiplication");
}

TEST(ChcParserTest, NonRecursiveSystemDetected) {
  const char *Text = R"(
(declare-fun a (Int) Bool)
(declare-fun b (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (a x))))
(assert (forall ((x Int)) (=> (a x) (b x))))
(assert (forall ((x Int)) (=> (b x) (>= x 0))))
)";
  TermManager TM;
  ChcSystem System(TM);
  ASSERT_TRUE(parseChcText(Text, System).Ok);
  EXPECT_FALSE(System.isRecursive());
  EXPECT_TRUE(System.recursivePredicates().empty());
}

TEST(ChcParserTest, MutualRecursionDetected) {
  const char *Text = R"(
(declare-fun even (Int) Bool)
(declare-fun odd (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (even x))))
(assert (forall ((x Int)) (=> (even x) (odd (+ x 1)))))
(assert (forall ((x Int)) (=> (odd x) (even (+ x 1)))))
)";
  TermManager TM;
  ChcSystem System(TM);
  ASSERT_TRUE(parseChcText(Text, System).Ok);
  EXPECT_TRUE(System.isRecursive());
  EXPECT_EQ(System.recursivePredicates().size(), 2u);
}

} // namespace
