//===- tests/FrontendTest.cpp - Mini-C parser and encoder tests -----------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Encoder.h"
#include "solver/DataDrivenSolver.h"

#include <gtest/gtest.h>

using namespace la;
using namespace la::chc;
using namespace la::frontend;

namespace {

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(MiniCParserTest, ParsesPaperFig1) {
  ParseResult R = parseMiniC(R"(
// Fig. 1 of the paper
main(){ }
)");
  EXPECT_FALSE(R.Ok); // functions need a type
  R = parseMiniC(R"(
int main(){
  int x, y;
  x = 1; y = 0;
  while (*) {
    x = x + y;
    y++;
  }
  assert(x >= y);
}
)");
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.Prog.Functions.size(), 1u);
  const Function &Main = R.Prog.Functions[0];
  EXPECT_EQ(Main.Name, "main");
  EXPECT_TRUE(Main.Params.empty());
}

TEST(MiniCParserTest, OperatorPrecedence) {
  ParseResult R = parseMiniC("int main(){ int x; x = 1 + 2 * 3 - -4; }");
  ASSERT_TRUE(R.Ok) << R.Error;
  // AST shape: ((1 + (2*3)) - (-4)).
  const Stmt &Body = *R.Prog.Functions[0].Body;
  const Stmt &Assign = *Body.Body[1];
  ASSERT_EQ(Assign.K, Stmt::Kind::Assign);
  EXPECT_EQ(Assign.Value->K, Expr::Kind::Sub);
  EXPECT_EQ(Assign.Value->Args[0]->K, Expr::Kind::Add);
  EXPECT_EQ(Assign.Value->Args[0]->Args[1]->K, Expr::Kind::Mul);
  EXPECT_EQ(Assign.Value->Args[1]->K, Expr::Kind::Neg);
}

TEST(MiniCParserTest, ConditionForms) {
  ParseResult R = parseMiniC(R"(
int main(){
  int x, y;
  if ((x < y && x >= 0) || !(y == 3)) { x = 0; }
  if (*) { y = 0; } else { y = 1; }
  while (x != y) { x++; }
  assert((x + 1) <= y + 2);
}
)");
  ASSERT_TRUE(R.Ok) << R.Error;
}

TEST(MiniCParserTest, CommentsAndIncrements) {
  ParseResult R = parseMiniC(R"(
/* block comment
   spanning lines */
int main(){
  int i = 0; // trailing comment
  i++;
  i--;
}
)");
  ASSERT_TRUE(R.Ok) << R.Error;
}

TEST(MiniCParserTest, ErrorsCarryLineNumbers) {
  ParseResult R = parseMiniC("int main(){\n  x = ;\n}");
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("line 2"), std::string::npos) << R.Error;
  EXPECT_FALSE(parseMiniC("int f(").Ok);
  EXPECT_FALSE(parseMiniC("int main(){ if x } ").Ok);
  EXPECT_FALSE(parseMiniC("int main(){ while (x) ").Ok);
}

//===----------------------------------------------------------------------===//
// Encoder structure
//===----------------------------------------------------------------------===//

TEST(EncoderTest, LoopBecomesPredicate) {
  TermManager TM;
  ChcSystem System(TM);
  EncodeResult R = encodeMiniC(R"(
int main(){
  int x = 0;
  while (x < 10) { x = x + 1; }
  assert(x == 10);
}
)",
                               System);
  ASSERT_TRUE(R.Ok) << R.Error;
  // One preheader and one loop predicate; preheader, entry, inductive and
  // query clauses.
  ASSERT_EQ(System.predicates().size(), 2u);
  EXPECT_NE(System.findPredicate("main!pre!0"), nullptr);
  EXPECT_NE(System.findPredicate("main!loop!0"), nullptr);
  EXPECT_EQ(System.clauses().size(), 4u);
  EXPECT_TRUE(System.isRecursive());
}

TEST(EncoderTest, NestedLoopsStackPredicates) {
  TermManager TM;
  ChcSystem System(TM);
  EncodeResult R = encodeMiniC(R"(
int main(){
  int i = 0, j, s = 0;
  while (i < 5) {
    j = 0;
    while (j < 5) { j = j + 1; s = s + 1; }
    i = i + 1;
  }
  assert(s >= 0);
}
)",
                               System);
  ASSERT_TRUE(R.Ok) << R.Error;
  // Two loops, each with its preheader cut point.
  EXPECT_EQ(System.predicates().size(), 4u);
}

TEST(EncoderTest, FunctionsGetContextAndSummary) {
  TermManager TM;
  ChcSystem System(TM);
  EncodeResult R = encodeMiniC(R"(
int inc(int a) { return a + 1; }
int main(){
  int x = inc(3);
  assert(x == 4);
}
)",
                               System);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_NE(System.findPredicate("ctx!inc"), nullptr);
  EXPECT_NE(System.findPredicate("sum!inc"), nullptr);
  EXPECT_FALSE(System.isRecursive());
}

TEST(EncoderTest, RecursionYieldsRecursiveSystem) {
  TermManager TM;
  ChcSystem System(TM);
  EncodeResult R = encodeMiniC(R"(
int fibo(int x) {
  if (x < 1) { return 0; }
  if (x == 1) { return 1; }
  return fibo(x - 1) + fibo(x - 2);
}
int main(int x){
  assert(fibo(x) >= x - 1);
}
)",
                               System);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(System.isRecursive());
}

TEST(EncoderTest, SemanticErrors) {
  TermManager TM;
  auto Expect = [&](const char *Source, const char *Fragment) {
    ChcSystem System(TM);
    EncodeResult R = encodeMiniC(Source, System);
    EXPECT_FALSE(R.Ok) << Source;
    EXPECT_NE(R.Error.find(Fragment), std::string::npos)
        << R.Error << " vs " << Fragment;
  };
  Expect("int f(){ return 0; }", "no 'main'");
  Expect("int main(){ x = 1; }", "undeclared variable 'x'");
  Expect("int main(){ int x; int x; }", "redeclaration");
  Expect("int main(){ int x = y; }", "undeclared variable 'y'");
  Expect("int main(){ int x = f(1); }", "undefined function");
  Expect("int g(int a){ return a; } int main(){ int x = g(); }",
         "wrong number of arguments");
  // Note: `int x = 2; x * x` is accepted -- constant propagation makes it
  // linear. Only genuinely symbolic products are rejected.
  Expect("int main(){ int x = *; int y = x * x; }", "non-linear");
  Expect("int main(){ int x = 1 % 0; }", "positive constant divisor");
}

//===----------------------------------------------------------------------===//
// End-to-end: the paper's example programs through parse+encode+solve
//===----------------------------------------------------------------------===//

ChcResult verify(const char *Source,
                 solver::DataDrivenOptions Opts = {}) {
  if (Opts.Limits.WallSeconds == 0)
    Opts.Limits.WallSeconds = 90;
  TermManager TM;
  ChcSystem System(TM);
  EncodeResult E = encodeMiniC(Source, System);
  EXPECT_TRUE(E.Ok) << E.Error;
  if (!E.Ok)
    return ChcResult::Unknown;
  solver::DataDrivenChcSolver Solver(Opts);
  ChcSolverResult R = Solver.solve(System);
  if (R.Status == ChcResult::Sat) {
    EXPECT_EQ(checkInterpretation(System, R.Interp), ClauseStatus::Valid)
        << R.Interp.toString();
  }
  if (R.Status == ChcResult::Unsat) {
    EXPECT_TRUE(R.Cex.has_value());
    if (R.Cex)
      EXPECT_TRUE(validateCounterexample(System, *R.Cex));
  }
  return R.Status;
}

/// Paper Fig. 1: the program Spacer diverges on.
TEST(EndToEndTest, PaperFig1) {
  EXPECT_EQ(verify(R"(
int main(){
  int x, y;
  x = 1; y = 0;
  while (*) {
    x = x + y;
    y++;
  }
  assert(x >= y);
}
)"),
            ChcResult::Sat);
}

/// Paper Fig. 3 (program (a)): needs an or-of-and invariant.
TEST(EndToEndTest, PaperFig3ProgramA) {
  EXPECT_EQ(verify(R"(
int main(){
  int x, y;
  x = 0; y = *;
  while (y != 0) {
    if (y < 0) { x--; y++; }
    else { x++; y--; }
    assert(x != 0);
  }
}
)"),
            ChcResult::Sat);
}

/// Paper Fig. 5 (program (c)): recursive fibonacci.
TEST(EndToEndTest, PaperFig5Fibo) {
  EXPECT_EQ(verify(R"(
int fibo(int x) {
  if (x < 1) { return 0; }
  if (x == 1) { return 1; }
  return fibo(x - 1) + fibo(x - 2);
}
int main(int x){
  assert(fibo(x) >= x - 1);
}
)"),
            ChcResult::Sat);
}

/// A buggy program: the unsafe verdict must come with a genuine derivation.
TEST(EndToEndTest, UnsafeCounter) {
  EXPECT_EQ(verify(R"(
int main(){
  int x = 0;
  while (x < 10) { x = x + 1; }
  assert(x <= 9);
}
)"),
            ChcResult::Unsat);
}

/// Assertions inside callees are checked under their calling contexts.
TEST(EndToEndTest, CalleeAssertUsesContext) {
  // Safe: f is only called with positive arguments.
  EXPECT_EQ(verify(R"(
int f(int a){
  assert(a > 0);
  return a;
}
int main(){
  int r = f(5);
  assert(r == 5);
}
)"),
            ChcResult::Sat);
  // Unsafe: called with 0.
  EXPECT_EQ(verify(R"(
int f(int a){
  assert(a > 0);
  return a;
}
int main(){
  int r = f(0);
}
)"),
            ChcResult::Unsat);
}

} // namespace
