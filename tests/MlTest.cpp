//===- tests/MlTest.cpp - Learning toolchain tests ------------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ml/Learn.h"
#include "ml/Perceptron.h"
#include "ml/Svm.h"

#include <gtest/gtest.h>

using namespace la;
using namespace la::ml;

namespace {

Sample mk(std::initializer_list<int64_t> Values) {
  Sample S;
  for (int64_t V : Values)
    S.push_back(Rational(V));
  return S;
}

/// Binds a sample to the variable vector for formula evaluation.
std::unordered_map<const Term *, Rational>
bind(const std::vector<const Term *> &Vars, const Sample &S) {
  std::unordered_map<const Term *, Rational> Asg;
  for (size_t I = 0; I < Vars.size(); ++I)
    Asg.emplace(Vars[I], S[I]);
  return Asg;
}

bool perfect(const Term *F, const std::vector<const Term *> &Vars,
             const Dataset &Data) {
  for (const Sample &S : Data.Pos)
    if (!evalFormula(F, bind(Vars, S)))
      return false;
  for (const Sample &S : Data.Neg)
    if (evalFormula(F, bind(Vars, S)))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Base learners
//===----------------------------------------------------------------------===//

TEST(PerceptronTest, SeparableDataConverges) {
  Dataset Data(2);
  Data.Pos = {mk({2, 0}), mk({3, 1}), mk({4, -1})};
  Data.Neg = {mk({-2, 0}), mk({-3, 1}), mk({-1, -2})};
  Random Rng(1);
  LinearClassifier Phi = PerceptronLearner().learn(Data, Rng);
  EXPECT_EQ(Phi.countCorrect(Data), Data.size());
}

TEST(SvmTest, SeparableDataSeparates) {
  Dataset Data(2);
  Data.Pos = {mk({2, 2}), mk({3, 1}), mk({4, 3})};
  Data.Neg = {mk({-2, -1}), mk({-3, -2}), mk({-1, -3})};
  Random Rng(1);
  LinearClassifier Phi = SvmLearner().learn(Data, Rng);
  EXPECT_FALSE(Phi.isDummy());
  EXPECT_EQ(Phi.countCorrect(Data), Data.size());
}

TEST(SvmTest, SurroundedPositiveMayYieldDummy) {
  // The §5 scenario: a single positive surrounded by negatives on all sides
  // admits no hyperplane separating it; the rounded SVM output may be the
  // dummy classifier -- it must at least fail to be perfect.
  Dataset Data(2);
  Data.Pos = {mk({0, 0})};
  Data.Neg = {mk({1, 0}), mk({-1, 0}), mk({0, 1}), mk({0, -1})};
  Random Rng(7);
  LinearClassifier Phi = SvmLearner().learn(Data, Rng);
  EXPECT_LT(Phi.countCorrect(Data), Data.size());
}

TEST(RationalizeTest, RoundsToSmallIntegers) {
  Dataset Data(2);
  Data.Pos = {mk({1, 1}), mk({2, 2})};
  Data.Neg = {mk({-1, -1}), mk({-2, -2})};
  // w = (0.5004, 0.4996), b ~ 0: expect rounding to x + y >= 0 shape.
  auto Phi = rationalizeHyperplane({0.5004, 0.4996}, 0.001, Data);
  ASSERT_TRUE(Phi.has_value());
  EXPECT_EQ(Phi->W[0], Rational(1));
  EXPECT_EQ(Phi->W[1], Rational(1));
  EXPECT_EQ(Phi->countCorrect(Data), Data.size());
}

TEST(RationalizeTest, ZeroHyperplaneRejected) {
  Dataset Data(1);
  Data.Pos = {mk({1})};
  Data.Neg = {mk({-1})};
  EXPECT_FALSE(rationalizeHyperplane({0.0}, 0.5, Data).has_value());
}

//===----------------------------------------------------------------------===//
// LinearArbitrary (Algorithm 1)
//===----------------------------------------------------------------------===//

class LinearArbitraryTest : public ::testing::Test {
protected:
  TermManager TM;
  std::vector<const Term *> Vars{TM.mkVar("x"), TM.mkVar("y")};
  LinearArbitraryOptions Opts;
};

TEST_F(LinearArbitraryTest, PaperFig6Dataset) {
  // Program (a) of the paper, Fig. 6: positives on the y-axis segment,
  // negatives at (3,-3) and (-3,3). Not linearly separable.
  Dataset Data(2);
  Data.Pos = {mk({0, -2}), mk({0, -1}), mk({0, 0}), mk({0, 1})};
  Data.Neg = {mk({3, -3}), mk({-3, 3})};
  ClassifierResult R = linearArbitrary(TM, Vars, Data, Opts);
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(perfect(R.Formula, Vars, Data));
  EXPECT_GE(R.Atoms.size(), 1u);
}

TEST_F(LinearArbitraryTest, XorPatternSeparated) {
  Dataset Data(2);
  Data.Pos = {mk({0, 0}), mk({5, 5})};
  Data.Neg = {mk({0, 5}), mk({5, 0})};
  ClassifierResult R = linearArbitrary(TM, Vars, Data, Opts);
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(perfect(R.Formula, Vars, Data));
  // XOR needs at least two hyperplanes.
  EXPECT_GE(R.Atoms.size(), 2u);
}

TEST_F(LinearArbitraryTest, PerceptronBackendWorksToo) {
  Dataset Data(2);
  Data.Pos = {mk({0, 0}), mk({5, 5}), mk({1, 1})};
  Data.Neg = {mk({0, 5}), mk({5, 0}), mk({-3, 2})};
  Opts.Learner = LinearArbitraryOptions::BaseLearner::Perceptron;
  ClassifierResult R = linearArbitrary(TM, Vars, Data, Opts);
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(perfect(R.Formula, Vars, Data));
}

TEST_F(LinearArbitraryTest, SinglePointClasses) {
  Dataset Data(2);
  Data.Pos = {mk({1, 2})};
  Data.Neg = {mk({1, 3})};
  ClassifierResult R = linearArbitrary(TM, Vars, Data, Opts);
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(perfect(R.Formula, Vars, Data));
}

TEST_F(LinearArbitraryTest, EmptySidesAreConstants) {
  Dataset OnlyPos(2);
  OnlyPos.Pos = {mk({1, 1})};
  ClassifierResult R1 = linearArbitrary(TM, Vars, OnlyPos, Opts);
  ASSERT_TRUE(R1.Ok);
  EXPECT_EQ(R1.Formula, TM.mkTrue());

  Dataset OnlyNeg(2);
  OnlyNeg.Neg = {mk({1, 1})};
  ClassifierResult R2 = linearArbitrary(TM, Vars, OnlyNeg, Opts);
  ASSERT_TRUE(R2.Ok);
  EXPECT_EQ(R2.Formula, TM.mkFalse());
}

//===----------------------------------------------------------------------===//
// Decision trees
//===----------------------------------------------------------------------===//

TEST(EntropyTest, Values) {
  EXPECT_DOUBLE_EQ(shannonEntropy(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(shannonEntropy(4, 0), 0.0);
  EXPECT_DOUBLE_EQ(shannonEntropy(2, 2), 1.0);
  EXPECT_NEAR(shannonEntropy(1, 3), 0.811278, 1e-5);
  // A clean split of a balanced node gains a full bit.
  EXPECT_DOUBLE_EQ(informationGain(3, 0, 0, 3), 1.0);
  // A useless split gains nothing.
  EXPECT_NEAR(informationGain(1, 1, 1, 1), 0.0, 1e-12);
}

class DecisionTreeTest : public ::testing::Test {
protected:
  TermManager TM;
  std::vector<const Term *> Vars{TM.mkVar("dtx"), TM.mkVar("dty")};
};

TEST_F(DecisionTreeTest, PrefersSimpleFeature) {
  // Separable by x <= 2; a complex feature is also offered.
  Dataset Data(2);
  Data.Pos = {mk({0, 7}), mk({1, -4}), mk({2, 100})};
  Data.Neg = {mk({3, 7}), mk({5, -4}), mk({9, 100})};
  std::vector<Feature> Features{
      Feature::linear({Rational(17), Rational(5)}),
      Feature::linear({Rational(1), Rational(0)}),
  };
  DtResult R = learnDecisionTree(TM, Vars, Data, Features);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.NumInnerNodes, 1u);
  EXPECT_TRUE(perfect(R.Formula, Vars, Data));
  // The simple feature x alone suffices; the formula is exactly x <= 2.
  EXPECT_EQ(R.Formula->toString(), "(<= dtx 2)");
}

TEST_F(DecisionTreeTest, ModFeatureSeparatesParity) {
  Dataset Data(2);
  Data.Pos = {mk({0, 0}), mk({2, 5}), mk({-4, 1}), mk({10, -7})};
  Data.Neg = {mk({1, 0}), mk({3, 5}), mk({-5, 1}), mk({9, -7})};
  std::vector<Feature> Linear{Feature::linear({Rational(1), Rational(0)})};
  // Thresholds on x alone can separate distinct values, but only with a
  // deep interval-carving tree.
  DtResult NoMod = learnDecisionTree(TM, Vars, Data, Linear);
  ASSERT_TRUE(NoMod.Ok);
  EXPECT_GE(NoMod.NumInnerNodes, 3u);
  // The parity feature separates everything in a single decision.
  std::vector<Feature> WithMod = Linear;
  WithMod.push_back(Feature::mod(0, BigInt(2)));
  DtResult R = learnDecisionTree(TM, Vars, Data, WithMod);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.NumInnerNodes, 1u);
  EXPECT_TRUE(perfect(R.Formula, Vars, Data));
}

TEST_F(DecisionTreeTest, DuplicateFeaturesDeduplicated) {
  Dataset Data(2);
  Data.Pos = {mk({0, 0})};
  Data.Neg = {mk({5, 0})};
  // 2x and x and -x normalise to the same feature.
  std::vector<Feature> Features{
      Feature::linear({Rational(2), Rational(0)}),
      Feature::linear({Rational(1), Rational(0)}),
      Feature::linear({Rational(-1), Rational(0)}),
  };
  DtResult R = learnDecisionTree(TM, Vars, Data, Features);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.NumFeaturesUsed, 1u);
}

//===----------------------------------------------------------------------===//
// Learn (Algorithm 2)
//===----------------------------------------------------------------------===//

class LearnTest : public ::testing::Test {
protected:
  TermManager TM;
  std::vector<const Term *> Vars{TM.mkVar("lx"), TM.mkVar("ly")};
  LearnOptions Opts;
};

TEST_F(LearnTest, Fig6EndToEnd) {
  Dataset Data(2);
  Data.Pos = {mk({0, -2}), mk({0, -1}), mk({0, 0}), mk({0, 1})};
  Data.Neg = {mk({3, -3}), mk({-3, 3})};
  LearnResult R = learn(TM, Vars, Data, Opts);
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(perfect(R.Formula, Vars, Data));
}

TEST_F(LearnTest, DtAblationStillClassifies) {
  Dataset Data(2);
  Data.Pos = {mk({0, 0}), mk({5, 5})};
  Data.Neg = {mk({0, 5}), mk({5, 0})};
  Opts.UseDecisionTree = false;
  LearnResult R = learn(TM, Vars, Data, Opts);
  ASSERT_TRUE(R.Ok);
  EXPECT_FALSE(R.UsedDecisionTree);
  EXPECT_TRUE(perfect(R.Formula, Vars, Data));
}

TEST_F(LearnTest, ParityNeedsModFeatures) {
  Dataset Data(2);
  Data.Pos.clear();
  Data.Neg.clear();
  for (int I = -6; I <= 6; ++I)
    (I % 2 == 0 ? Data.Pos : Data.Neg).push_back(mk({I, 0}));
  Opts.ModFeatures = {2};
  LearnResult R = learn(TM, Vars, Data, Opts);
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(perfect(R.Formula, Vars, Data));
}

TEST_F(LearnTest, DegenerateDatasets) {
  Dataset Empty(2);
  LearnResult R0 = learn(TM, Vars, Empty, Opts);
  ASSERT_TRUE(R0.Ok);
  EXPECT_EQ(R0.Formula, TM.mkTrue());

  Dataset OnlyNeg(2);
  OnlyNeg.Neg = {mk({0, 0})};
  LearnResult R1 = learn(TM, Vars, OnlyNeg, Opts);
  ASSERT_TRUE(R1.Ok);
  EXPECT_EQ(R1.Formula, TM.mkFalse());
}

TEST(DnfShapeTest, CountsConjunctsPerDisjunct) {
  TermManager TM;
  const Term *X = TM.mkVar("sx");
  const Term *A = TM.mkLe(X, TM.mkIntConst(0));
  const Term *B = TM.mkGe(X, TM.mkIntConst(-5));
  const Term *C = TM.mkLe(X, TM.mkIntConst(10));
  const Term *F = TM.mkOr(TM.mkAnd(A, B), C);
  EXPECT_EQ(dnfShape(F), (std::vector<size_t>{2, 1}));
  EXPECT_EQ(dnfShape(TM.mkAnd(A, B)), (std::vector<size_t>{2}));
  EXPECT_EQ(dnfShape(A), (std::vector<size_t>{1}));
}

/// Property test: on random contradiction-free datasets, Learn always
/// produces a perfect classifier (Lemma 3.1), with every backend combo.
class LearnPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, bool, bool>> {};

TEST_P(LearnPropertyTest, AlwaysClassifiesPerfectly) {
  auto [Seed, UseSvm, UseDt] = GetParam();
  Random Rng(Seed * 31 + 5);
  TermManager TM;
  std::vector<const Term *> Vars{TM.mkVar("px"), TM.mkVar("py"),
                                 TM.mkVar("pz")};
  Dataset Data(3);
  std::set<std::vector<int64_t>> Used;
  int NumSamples = 4 + static_cast<int>(Rng.nextBounded(24));
  for (int I = 0; I < NumSamples; ++I) {
    std::vector<int64_t> Raw{Rng.nextInRange(-8, 8), Rng.nextInRange(-8, 8),
                             Rng.nextInRange(-8, 8)};
    if (!Used.insert(Raw).second)
      continue; // avoid label contradictions on duplicate points
    Sample S{Rational(Raw[0]), Rational(Raw[1]), Rational(Raw[2])};
    (Rng.nextBounded(2) == 0 ? Data.Pos : Data.Neg).push_back(S);
  }
  LearnOptions Opts;
  Opts.LA.Learner = UseSvm ? LinearArbitraryOptions::BaseLearner::Svm
                           : LinearArbitraryOptions::BaseLearner::Perceptron;
  Opts.UseDecisionTree = UseDt;
  LearnResult R = learn(TM, Vars, Data, Opts);
  ASSERT_TRUE(R.Ok) << "seed " << Seed;
  std::unordered_map<const Term *, Rational> Asg;
  for (const Sample &S : Data.Pos) {
    for (size_t I = 0; I < Vars.size(); ++I)
      Asg[Vars[I]] = S[I];
    EXPECT_TRUE(evalFormula(R.Formula, Asg));
  }
  for (const Sample &S : Data.Neg) {
    for (size_t I = 0; I < Vars.size(); ++I)
      Asg[Vars[I]] = S[I];
    EXPECT_FALSE(evalFormula(R.Formula, Asg));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LearnPropertyTest,
                         ::testing::Combine(::testing::Range(0, 12),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

} // namespace
