//===- tests/SupportTest.cpp - BigInt/Rational/DeltaRational tests --------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"
#include "support/DeltaRational.h"
#include "support/Random.h"
#include "support/Rational.h"

#include <gtest/gtest.h>

using namespace la;

//===----------------------------------------------------------------------===//
// BigInt
//===----------------------------------------------------------------------===//

TEST(BigIntTest, ConstructionAndSign) {
  EXPECT_TRUE(BigInt().isZero());
  EXPECT_EQ(BigInt(0).signum(), 0);
  EXPECT_EQ(BigInt(5).signum(), 1);
  EXPECT_EQ(BigInt(-5).signum(), -1);
  EXPECT_TRUE(BigInt(1).isOne());
  EXPECT_FALSE(BigInt(-1).isOne());
}

TEST(BigIntTest, Int64RoundTrip) {
  for (int64_t V : {int64_t(0), int64_t(1), int64_t(-1), int64_t(42),
                    INT64_MAX, INT64_MIN, INT64_MIN + 1}) {
    BigInt B(V);
    ASSERT_TRUE(B.toInt64().has_value()) << V;
    EXPECT_EQ(*B.toInt64(), V);
  }
}

TEST(BigIntTest, Int64OverflowDetected) {
  BigInt Big = BigInt(INT64_MAX) + BigInt(1);
  EXPECT_FALSE(Big.toInt64().has_value());
  BigInt Min = BigInt(INT64_MIN);
  EXPECT_TRUE(Min.toInt64().has_value());
  EXPECT_FALSE((Min - BigInt(1)).toInt64().has_value());
}

TEST(BigIntTest, StringRoundTrip) {
  const char *Cases[] = {"0", "1", "-1", "12345678901234567890123456789",
                         "-987654321098765432109876543210"};
  for (const char *Text : Cases) {
    auto Parsed = BigInt::fromString(Text);
    ASSERT_TRUE(Parsed.has_value()) << Text;
    EXPECT_EQ(Parsed->toString(), Text);
  }
  EXPECT_FALSE(BigInt::fromString("").has_value());
  EXPECT_FALSE(BigInt::fromString("-").has_value());
  EXPECT_FALSE(BigInt::fromString("12x").has_value());
}

TEST(BigIntTest, AdditionCarriesAcrossLimbs) {
  BigInt A = *BigInt::fromString("18446744073709551615"); // 2^64 - 1
  BigInt B = A + BigInt(1);
  EXPECT_EQ(B.toString(), "18446744073709551616");
  EXPECT_EQ((B - BigInt(1)).toString(), A.toString());
}

TEST(BigIntTest, MultiplicationLarge) {
  BigInt A = *BigInt::fromString("123456789123456789123456789");
  BigInt B = *BigInt::fromString("987654321987654321");
  EXPECT_EQ((A * B).toString(),
            "121932631356500531469135800347203169112635269");
  EXPECT_EQ((A * BigInt(0)).toString(), "0");
  EXPECT_EQ((A * BigInt(-1)).toString(), "-" + A.toString());
}

TEST(BigIntTest, DivModTruncatesTowardZero) {
  auto Check = [](int64_t A, int64_t B) {
    BigInt::DivModResult QR = BigInt(A).divMod(BigInt(B));
    EXPECT_EQ(*QR.Quotient.toInt64(), A / B) << A << "/" << B;
    EXPECT_EQ(*QR.Remainder.toInt64(), A % B) << A << "%" << B;
  };
  Check(7, 2);
  Check(-7, 2);
  Check(7, -2);
  Check(-7, -2);
  Check(0, 5);
  Check(6, 3);
}

TEST(BigIntTest, DivModLargeReconstructs) {
  BigInt A = *BigInt::fromString("340282366920938463463374607431768211457");
  BigInt B = *BigInt::fromString("18446744073709551629");
  BigInt::DivModResult QR = A.divMod(B);
  EXPECT_EQ((QR.Quotient * B + QR.Remainder).toString(), A.toString());
  EXPECT_TRUE(QR.Remainder.abs() < B.abs());
}

TEST(BigIntTest, EuclideanModIsNonNegative) {
  EXPECT_EQ(*BigInt(-7).euclideanMod(BigInt(3)).toInt64(), 2);
  EXPECT_EQ(*BigInt(7).euclideanMod(BigInt(3)).toInt64(), 1);
  EXPECT_EQ(*BigInt(-6).euclideanMod(BigInt(3)).toInt64(), 0);
}

TEST(BigIntTest, Gcd) {
  EXPECT_EQ(*BigInt::gcd(BigInt(12), BigInt(18)).toInt64(), 6);
  EXPECT_EQ(*BigInt::gcd(BigInt(-12), BigInt(18)).toInt64(), 6);
  EXPECT_EQ(*BigInt::gcd(BigInt(0), BigInt(5)).toInt64(), 5);
  EXPECT_EQ(*BigInt::gcd(BigInt(0), BigInt(0)).toInt64(), 0);
}

TEST(BigIntTest, ComparisonTotalOrder) {
  BigInt Values[] = {BigInt(-10), BigInt(-1), BigInt(0), BigInt(1),
                     *BigInt::fromString("99999999999999999999")};
  for (size_t I = 0; I < std::size(Values); ++I)
    for (size_t J = 0; J < std::size(Values); ++J) {
      EXPECT_EQ(Values[I] < Values[J], I < J);
      EXPECT_EQ(Values[I] == Values[J], I == J);
    }
}

/// Property test: ring axioms on pseudo-random 128-bit values.
TEST(BigIntTest, PropertyRingAxioms) {
  Random Rng(7);
  for (int Iter = 0; Iter < 200; ++Iter) {
    BigInt A = BigInt(Rng.nextInRange(-1000000, 1000000)) *
               BigInt(Rng.nextInRange(-1000000, 1000000));
    BigInt B = BigInt(Rng.nextInRange(-1000000, 1000000)) *
               BigInt(Rng.nextInRange(-1000000, 1000000));
    BigInt C(Rng.nextInRange(-1000, 1000));
    EXPECT_EQ((A + B).toString(), (B + A).toString());
    EXPECT_EQ((A * B).toString(), (B * A).toString());
    EXPECT_EQ(((A + B) * C).toString(), (A * C + B * C).toString());
    EXPECT_EQ((A - A).toString(), "0");
    if (!C.isZero()) {
      BigInt::DivModResult QR = A.divMod(C);
      EXPECT_EQ((QR.Quotient * C + QR.Remainder).toString(), A.toString());
      EXPECT_TRUE(QR.Remainder.abs() < C.abs());
    }
  }
}

//===----------------------------------------------------------------------===//
// Rational
//===----------------------------------------------------------------------===//

TEST(RationalTest, NormalizedOnConstruction) {
  Rational R(BigInt(4), BigInt(6));
  EXPECT_EQ(R.toString(), "2/3");
  Rational Neg(BigInt(4), BigInt(-6));
  EXPECT_EQ(Neg.toString(), "-2/3");
  Rational Zero(BigInt(0), BigInt(17));
  EXPECT_EQ(Zero.toString(), "0");
  EXPECT_TRUE(Zero.isInteger());
}

TEST(RationalTest, Arithmetic) {
  Rational Half(BigInt(1), BigInt(2));
  Rational Third(BigInt(1), BigInt(3));
  EXPECT_EQ((Half + Third).toString(), "5/6");
  EXPECT_EQ((Half - Third).toString(), "1/6");
  EXPECT_EQ((Half * Third).toString(), "1/6");
  EXPECT_EQ((Half / Third).toString(), "3/2");
  EXPECT_EQ((-Half).toString(), "-1/2");
  EXPECT_EQ(Half.inverse().toString(), "2");
}

TEST(RationalTest, Comparison) {
  Rational Half(BigInt(1), BigInt(2));
  Rational TwoThirds(BigInt(2), BigInt(3));
  EXPECT_LT(Half, TwoThirds);
  EXPECT_LT(Rational(-1), Half);
  EXPECT_EQ(Rational(2), Rational(BigInt(4), BigInt(2)));
}

TEST(RationalTest, FloorCeil) {
  Rational R(BigInt(7), BigInt(2)); // 3.5
  EXPECT_EQ(*R.floor().toInt64(), 3);
  EXPECT_EQ(*R.ceil().toInt64(), 4);
  Rational N(BigInt(-7), BigInt(2)); // -3.5
  EXPECT_EQ(*N.floor().toInt64(), -4);
  EXPECT_EQ(*N.ceil().toInt64(), -3);
  Rational I(5);
  EXPECT_EQ(*I.floor().toInt64(), 5);
  EXPECT_EQ(*I.ceil().toInt64(), 5);
}

TEST(RationalTest, FromString) {
  EXPECT_EQ(Rational::fromString("3/6")->toString(), "1/2");
  EXPECT_EQ(Rational::fromString("-4")->toString(), "-4");
  EXPECT_FALSE(Rational::fromString("1/0").has_value());
  EXPECT_FALSE(Rational::fromString("a/b").has_value());
}

/// Property test: field axioms on random small fractions.
TEST(RationalTest, PropertyFieldAxioms) {
  Random Rng(11);
  for (int Iter = 0; Iter < 200; ++Iter) {
    Rational A(BigInt(Rng.nextInRange(-50, 50)),
               BigInt(Rng.nextInRange(1, 20)));
    Rational B(BigInt(Rng.nextInRange(-50, 50)),
               BigInt(Rng.nextInRange(1, 20)));
    EXPECT_EQ(A + B, B + A);
    EXPECT_EQ(A * B, B * A);
    EXPECT_EQ(A - A, Rational(0));
    if (!B.isZero()) {
      EXPECT_EQ(A / B * B, A);
    }
    EXPECT_TRUE(A.floor() <= A.ceil());
    EXPECT_TRUE(Rational(A.floor()) <= A && A <= Rational(A.ceil()));
  }
}

//===----------------------------------------------------------------------===//
// DeltaRational
//===----------------------------------------------------------------------===//

TEST(DeltaRationalTest, LexicographicOrder) {
  DeltaRational A(Rational(1));                 // 1
  DeltaRational B(Rational(1), Rational(1));    // 1 + d
  DeltaRational C(Rational(1), Rational(-1));   // 1 - d
  DeltaRational D(Rational(2), Rational(-100)); // 2 - 100d
  EXPECT_LT(C, A);
  EXPECT_LT(A, B);
  EXPECT_LT(B, D);
  EXPECT_EQ(A, DeltaRational(Rational(1), Rational(0)));
}

TEST(DeltaRationalTest, Arithmetic) {
  DeltaRational A(Rational(3), Rational(1));
  DeltaRational B(Rational(1), Rational(-2));
  EXPECT_EQ((A + B).real(), Rational(4));
  EXPECT_EQ((A + B).delta(), Rational(-1));
  EXPECT_EQ((A - B).real(), Rational(2));
  EXPECT_EQ((A - B).delta(), Rational(3));
  DeltaRational Scaled = A * Rational(-2);
  EXPECT_EQ(Scaled.real(), Rational(-6));
  EXPECT_EQ(Scaled.delta(), Rational(-2));
}

//===----------------------------------------------------------------------===//
// Random
//===----------------------------------------------------------------------===//

TEST(RandomTest, DeterministicAndInRange) {
  Random A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  Random C(7);
  for (int I = 0; I < 1000; ++I) {
    int64_t V = C.nextInRange(-3, 9);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 9);
    double D = C.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

//===----------------------------------------------------------------------===//
// ProcessRunner
//===----------------------------------------------------------------------===//

#include "support/ProcessRunner.h"

#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unistd.h>

// TSan does not support fork() from a multithreaded process and aborts the
// run; the process-isolation paths are exercised by the other sanitizer
// jobs and the plain build.
#if defined(__SANITIZE_THREAD__)
#define LA_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LA_TSAN_ACTIVE 1
#endif
#endif
#ifndef LA_TSAN_ACTIVE
#define LA_TSAN_ACTIVE 0
#endif

// ASan intercepts SIGSEGV (the child exits instead of dying on the signal)
// and its shadow memory is incompatible with small RLIMIT_AS caps, so the
// crash/memory classification tests relax or skip under ASan.
#if defined(__SANITIZE_ADDRESS__)
#define LA_ASAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LA_ASAN_ACTIVE 1
#endif
#endif
#ifndef LA_ASAN_ACTIVE
#define LA_ASAN_ACTIVE 0
#endif

#if LA_TSAN_ACTIVE
#define LA_SKIP_UNDER_TSAN() \
  GTEST_SKIP() << "fork() from a multithreaded TSan process is unsupported"
#else
#define LA_SKIP_UNDER_TSAN() (void)0
#endif

TEST(ProcessRunnerTest, CompletedChildReturnsPayload) {
  LA_SKIP_UNDER_TSAN();
  ProcessResult R = runInChildProcess(
      [] { return std::string("hello from the child"); }, ProcessLimits{});
  EXPECT_EQ(R.Outcome, LaneOutcome::Completed) << R.describe();
  EXPECT_EQ(R.Payload, "hello from the child");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_EQ(R.Signal, 0);
}

TEST(ProcessRunnerTest, LargePayloadSurvivesThePipe) {
  LA_SKIP_UNDER_TSAN();
  // Larger than any pipe buffer, so the child blocks writing while the
  // parent drains.
  std::string Big(4 << 20, 'x');
  ProcessResult R = runInChildProcess([&] { return Big; }, ProcessLimits{});
  ASSERT_EQ(R.Outcome, LaneOutcome::Completed) << R.describe();
  EXPECT_EQ(R.Payload, Big);
}

TEST(ProcessRunnerTest, ThrownExceptionIsFailedWithMessage) {
  LA_SKIP_UNDER_TSAN();
  ProcessResult R = runInChildProcess(
      []() -> std::string { throw std::runtime_error("engine exploded"); },
      ProcessLimits{});
  EXPECT_EQ(R.Outcome, LaneOutcome::Failed) << R.describe();
  EXPECT_EQ(R.Payload, "engine exploded");
  EXPECT_EQ(R.ExitCode, 3);
}

TEST(ProcessRunnerTest, SegfaultingChildIsContained) {
  LA_SKIP_UNDER_TSAN();
  ProcessResult R = runInChildProcess(
      []() -> std::string {
        std::raise(SIGSEGV);
        return "unreachable";
      },
      ProcessLimits{});
  // Under ASan the child's SEGV handler exits instead of re-raising, so
  // only assert the lane did not complete normally there.
#if LA_ASAN_ACTIVE
  EXPECT_NE(R.Outcome, LaneOutcome::Completed) << R.describe();
#else
  EXPECT_EQ(R.Outcome, LaneOutcome::Crashed) << R.describe();
  EXPECT_EQ(R.Signal, SIGSEGV);
  EXPECT_NE(R.describe().find("signal"), std::string::npos);
#endif
}

TEST(ProcessRunnerTest, AbortingChildIsContained) {
  LA_SKIP_UNDER_TSAN();
  ProcessResult R = runInChildProcess(
      []() -> std::string {
        std::abort();
      },
      ProcessLimits{});
  EXPECT_NE(R.Outcome, LaneOutcome::Completed) << R.describe();
#if !LA_ASAN_ACTIVE
  EXPECT_EQ(R.Outcome, LaneOutcome::Crashed) << R.describe();
  EXPECT_EQ(R.Signal, SIGABRT);
#endif
}

TEST(ProcessRunnerTest, WallDeadlineKillsSpinningChild) {
  LA_SKIP_UNDER_TSAN();
  ProcessLimits Limits;
  Limits.WallSeconds = 0.2;
  ProcessResult R = runInChildProcess(
      []() -> std::string {
        volatile bool KeepSpinning = true;
        while (KeepSpinning) {
        }
        return std::string();
      },
      Limits);
  EXPECT_EQ(R.Outcome, LaneOutcome::TimedOut) << R.describe();
  EXPECT_GE(R.Seconds, 0.2);
  EXPECT_LT(R.Seconds, 30.0);
}

TEST(ProcessRunnerTest, PreTrippedTokenCancelsImmediately) {
  LA_SKIP_UNDER_TSAN();
  auto Token = std::make_shared<CancellationToken>();
  Token->cancel();
  ProcessResult R = runInChildProcess(
      []() -> std::string {
        volatile bool KeepSpinning = true;
        while (KeepSpinning) {
        }
        return std::string();
      },
      ProcessLimits{}, Token);
  EXPECT_EQ(R.Outcome, LaneOutcome::Cancelled) << R.describe();
}

#if !LA_ASAN_ACTIVE
TEST(ProcessRunnerTest, MemoryLimitContainsAllocation) {
  LA_SKIP_UNDER_TSAN();
  ProcessLimits Limits;
  Limits.MemoryBytes = size_t(64) << 20;
  Limits.WallSeconds = 30;
  ProcessResult R = runInChildProcess(
      []() -> std::string {
        // Touch every page so the allocation is real.
        std::string Huge;
        for (int I = 0; I < 64; ++I)
          Huge.append(size_t(16) << 20, char('a' + I % 26));
        return std::string("allocated ") + std::to_string(Huge.size());
      },
      Limits);
  EXPECT_EQ(R.Outcome, LaneOutcome::MemoryLimit) << R.describe();
}
#endif

TEST(ProcessRunnerTest, OutcomeNamesAreStable) {
  EXPECT_STREQ(toString(LaneOutcome::Completed), "completed");
  EXPECT_STREQ(toString(LaneOutcome::Failed), "failed");
  EXPECT_STREQ(toString(LaneOutcome::Crashed), "crashed");
  EXPECT_STREQ(toString(LaneOutcome::TimedOut), "timed-out");
  EXPECT_STREQ(toString(LaneOutcome::Cancelled), "cancelled");
  EXPECT_STREQ(toString(LaneOutcome::CpuLimit), "cpu-limit");
  EXPECT_STREQ(toString(LaneOutcome::MemoryLimit), "memory-limit");
}

//===----------------------------------------------------------------------===//
// FileCache
//===----------------------------------------------------------------------===//

#include "support/FileCache.h"

namespace {

/// Fresh cache directory per test, removed on destruction.
struct TempCacheDir {
  std::string Path;
  TempCacheDir() {
    char Template[] = "/tmp/la-filecache-test-XXXXXX";
    const char *Made = mkdtemp(Template);
    EXPECT_NE(Made, nullptr);
    Path = Made ? Made : "/tmp/la-filecache-test-fallback";
  }
  ~TempCacheDir() {
    std::string Cmd = "rm -rf '" + Path + "'";
    if (std::system(Cmd.c_str()) != 0) {
    }
  }
};

} // namespace

TEST(FileCacheTest, RoundTripAndPersistence) {
  TempCacheDir Dir;
  FileCache::Options O;
  O.Dir = Dir.Path + "/nested/cache"; // Parents are created on demand.
  std::string Key = "v1|" + FileCache::hashKey("some system") + "|la|b6";
  {
    FileCache Cache(O);
    std::string Value;
    EXPECT_FALSE(Cache.lookup(Key, Value));
    Cache.store(Key, "sat with a model\nline two");
    ASSERT_TRUE(Cache.lookup(Key, Value));
    EXPECT_EQ(Value, "sat with a model\nline two");
    EXPECT_EQ(Cache.stats().Hits, 1u);
    EXPECT_EQ(Cache.stats().Misses, 1u);
    EXPECT_EQ(Cache.stats().Stores, 1u);
  }
  // A second cache over the same directory — a daemon restart — still
  // serves the record.
  FileCache Reopened(O);
  std::string Value;
  ASSERT_TRUE(Reopened.lookup(Key, Value));
  EXPECT_EQ(Value, "sat with a model\nline two");
}

TEST(FileCacheTest, OverwriteReplacesValue) {
  TempCacheDir Dir;
  FileCache Cache({Dir.Path, 0, 0});
  Cache.store("k", "old");
  Cache.store("k", "new");
  std::string Value;
  ASSERT_TRUE(Cache.lookup("k", Value));
  EXPECT_EQ(Value, "new");
}

TEST(FileCacheTest, CorruptRecordsReadAsMisses) {
  TempCacheDir Dir;
  FileCache::Options O;
  O.Dir = Dir.Path;
  FileCache Cache(O);
  Cache.store("the-key", "the-value");

  // Truncate every record in the directory to simulate a crash or disk
  // corruption mid-write.
  std::string Cmd = "for F in '" + Dir.Path +
                    "'/*.rec; do : > \"$F\"; done";
  ASSERT_EQ(std::system(Cmd.c_str()), 0);

  std::string Value;
  EXPECT_FALSE(Cache.lookup("the-key", Value));
  EXPECT_GE(Cache.stats().CorruptDropped, 1u);
  // The corrupt record was unlinked; storing again works.
  Cache.store("the-key", "fresh");
  ASSERT_TRUE(Cache.lookup("the-key", Value));
  EXPECT_EQ(Value, "fresh");
}

TEST(FileCacheTest, GarbageRecordContentIsDropped) {
  TempCacheDir Dir;
  FileCache::Options O;
  O.Dir = Dir.Path;
  FileCache Cache(O);
  Cache.store("a-key", "a-value");
  std::string Cmd = "for F in '" + Dir.Path +
                    "'/*.rec; do printf 'not a record at all' > \"$F\"; done";
  ASSERT_EQ(std::system(Cmd.c_str()), 0);
  std::string Value;
  EXPECT_FALSE(Cache.lookup("a-key", Value));
  EXPECT_GE(Cache.stats().CorruptDropped, 1u);
}

TEST(FileCacheTest, HashCollisionDegradesToMiss) {
  // Different key whose record file would be consulted: simulate by
  // writing key A then looking up a key that maps elsewhere — a lookup of
  // a never-stored key must miss even with records present.
  TempCacheDir Dir;
  FileCache Cache({Dir.Path, 0, 0});
  Cache.store("stored-key", "stored-value");
  std::string Value;
  EXPECT_FALSE(Cache.lookup("never-stored-key", Value));
}

TEST(FileCacheTest, EntryCapEvictsOldestRecords) {
  TempCacheDir Dir;
  FileCache::Options O;
  O.Dir = Dir.Path;
  O.MaxEntries = 8;
  O.MaxBytes = 0;
  FileCache Cache(O);
  for (int I = 0; I < 32; ++I)
    Cache.store("key-" + std::to_string(I), "value-" + std::to_string(I));
  EXPECT_GE(Cache.stats().Evictions, 1u);

  // At most the cap survives on disk (eviction goes to 90% of the cap).
  size_t Survivors = 0;
  std::string Value;
  for (int I = 0; I < 32; ++I)
    if (Cache.lookup("key-" + std::to_string(I), Value))
      ++Survivors;
  EXPECT_LE(Survivors, O.MaxEntries);
  EXPECT_GE(Survivors, 1u);
}

TEST(FileCacheTest, HashKeyIsStableAndCollisionResistant) {
  EXPECT_EQ(FileCache::hashKey("abc"), FileCache::hashKey("abc"));
  EXPECT_NE(FileCache::hashKey("abc"), FileCache::hashKey("abd"));
  EXPECT_EQ(FileCache::hashKey("x").size(), 32u);
  for (char C : FileCache::hashKey("x"))
    EXPECT_TRUE(isxdigit(static_cast<unsigned char>(C)));
}
