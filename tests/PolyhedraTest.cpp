//===- tests/PolyhedraTest.cpp - Template-polyhedra domain tests ----------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the template-polyhedra rung: the LP front end over the exact
/// simplex, the `TemplatePolyhedron` lattice, static template mining, the
/// three-rung verify ladder, cooperative cancellation inside value-internal
/// loops, and the fixpoint-engine corner cases the domain leans on. The
/// corpus differential at the bottom pins that adding rungs to the ladder
/// never loses a static discharge.
///
//===----------------------------------------------------------------------===//

#include "analysis/DomainCancellation.h"
#include "analysis/FixpointEngine.h"
#include "analysis/IntervalAnalysis.h"
#include "analysis/OctagonAnalysis.h"
#include "analysis/PassManager.h"
#include "analysis/TemplateAnalysis.h"
#include "chc/ChcParser.h"
#include "corpus/Harness.h"
#include "smt/LpSolver.h"
#include "solver/DataDrivenSolver.h"

#include <gtest/gtest.h>

using namespace la;
using namespace la::analysis;
using namespace la::chc;

namespace {

const Predicate *findPred(const ChcSystem &System, const std::string &Name) {
  for (const Predicate *P : System.predicates())
    if (P->Name == Name)
      return P;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// LP front end (smt/LpSolver.h over the exact Simplex)
//===----------------------------------------------------------------------===//

TEST(LpSolverTest, FiniteOptimum) {
  smt::LpProblem Lp;
  int X = Lp.addVar();
  int Y = Lp.addVar();
  Lp.addLe({{X, Rational(1)}}, Rational(5));
  Lp.addLe({{Y, Rational(1)}}, Rational(3));
  Lp.addGe({{X, Rational(1)}}, Rational(0));
  Lp.addGe({{Y, Rational(1)}}, Rational(0));
  ASSERT_TRUE(Lp.feasible());

  smt::LpProblem::Optimum O =
      Lp.maximize({{X, Rational(1)}, {Y, Rational(1)}});
  ASSERT_EQ(O.St, smt::LpProblem::Status::Optimal);
  EXPECT_EQ(O.Value.real(), Rational(8));
  EXPECT_TRUE(O.Value.isRational());

  // A joint constraint cuts the same objective down.
  Lp.addLe({{X, Rational(1)}, {Y, Rational(1)}}, Rational(6));
  O = Lp.maximize({{X, Rational(1)}, {Y, Rational(1)}});
  ASSERT_EQ(O.St, smt::LpProblem::Status::Optimal);
  EXPECT_EQ(O.Value.real(), Rational(6));

  // Maximizing the negated direction flips to the lower bound.
  O = Lp.maximize({{X, Rational(-1)}});
  ASSERT_EQ(O.St, smt::LpProblem::Status::Optimal);
  EXPECT_EQ(O.Value.real(), Rational(0));
}

TEST(LpSolverTest, UnboundedObjective) {
  smt::LpProblem Lp;
  int X = Lp.addVar();
  Lp.addGe({{X, Rational(1)}}, Rational(0));
  ASSERT_TRUE(Lp.feasible());
  EXPECT_EQ(Lp.maximize({{X, Rational(1)}}).St,
            smt::LpProblem::Status::Unbounded);
  // The bounded direction of the same problem stays answerable.
  smt::LpProblem::Optimum O = Lp.maximize({{X, Rational(-1)}});
  ASSERT_EQ(O.St, smt::LpProblem::Status::Optimal);
  EXPECT_EQ(O.Value.real(), Rational(0));
}

TEST(LpSolverTest, InfeasibleProblem) {
  smt::LpProblem Lp;
  int X = Lp.addVar();
  Lp.addLe({{X, Rational(1)}}, Rational(0));
  Lp.addGe({{X, Rational(1)}}, Rational(1));
  EXPECT_FALSE(Lp.feasible());
  EXPECT_EQ(Lp.maximize({{X, Rational(1)}}).St,
            smt::LpProblem::Status::Infeasible);
}

TEST(LpSolverTest, StrictBoundGivesDeltaOptimum) {
  smt::LpProblem Lp;
  int X = Lp.addVar();
  Lp.addLt({{X, Rational(1)}}, Rational(5));
  ASSERT_TRUE(Lp.feasible());
  smt::LpProblem::Optimum O = Lp.maximize({{X, Rational(1)}});
  ASSERT_EQ(O.St, smt::LpProblem::Status::Optimal);
  // Supremum 5 - delta: the strict constraint is active at the optimum.
  EXPECT_EQ(O.Value.real(), Rational(5));
  EXPECT_TRUE(O.Value.delta().isNegative());
}

TEST(LpSolverTest, CancelledQueryReportsCancelled) {
  auto Token = std::make_shared<CancellationToken>();
  smt::LpProblem Lp(Token);
  int X = Lp.addVar();
  Lp.addGe({{X, Rational(1)}}, Rational(0));
  ASSERT_TRUE(Lp.feasible());
  Token->cancel();
  EXPECT_EQ(Lp.maximize({{X, Rational(1)}}).St,
            smt::LpProblem::Status::Cancelled);
}

//===----------------------------------------------------------------------===//
// Integer tightening helper
//===----------------------------------------------------------------------===//

TEST(PolyhedronTest, IntegralUpperBound) {
  using la::analysis::integralUpperBound;
  EXPECT_EQ(integralUpperBound(DeltaRational(Rational(5))), Rational(5));
  EXPECT_EQ(integralUpperBound(DeltaRational(Rational(BigInt(7), BigInt(2)))),
            Rational(3));
  EXPECT_EQ(integralUpperBound(
                DeltaRational(Rational(BigInt(-7), BigInt(2)))),
            Rational(-4));
  // Strict bound at an integer: the largest integer strictly below it.
  EXPECT_EQ(integralUpperBound(DeltaRational(Rational(5), Rational(-1))),
            Rational(4));
  // Strict bound at a fraction: floor already is strictly below.
  EXPECT_EQ(integralUpperBound(
                DeltaRational(Rational(BigInt(7), BigInt(2)), Rational(-1))),
            Rational(3));
}

//===----------------------------------------------------------------------===//
// TemplatePolyhedron lattice
//===----------------------------------------------------------------------===//

/// Matrix over (x, y): +-x, +-y, and the mined-shape row x - 2y.
TemplateMatrixRef testMatrix() {
  auto M = std::make_shared<TemplateMatrix>();
  M->Arity = 2;
  M->Rows = {
      {{Rational(1), Rational(0)}},  {{Rational(-1), Rational(0)}},
      {{Rational(0), Rational(1)}},  {{Rational(0), Rational(-1)}},
      {{Rational(1), Rational(-2)}},
  };
  return M;
}

/// 0 <= x <= 5, 0 <= y <= 3 (the relational row left unbounded).
TemplatePolyhedron boxValue(const TemplateMatrixRef &M) {
  TemplatePolyhedron V = TemplatePolyhedron::top(M);
  V.setBound(0, Rational(5));
  V.setBound(1, Rational(0));
  V.setBound(2, Rational(3));
  V.setBound(3, Rational(0));
  return V;
}

TEST(PolyhedronTest, ClosureTightensUnsetRows) {
  TemplateMatrixRef M = testMatrix();
  TemplatePolyhedron V = boxValue(M);
  ASSERT_FALSE(V.isEmpty());
  // max x - 2y over the box is 5 (at x=5, y=0): closure must find it even
  // though the row was never constrained directly.
  EXPECT_EQ(V.boundOfRow(4), OctBound::of(Rational(5)));
  EXPECT_EQ(V.boundOf(0), Interval::range(Rational(0), Rational(5)));
  EXPECT_EQ(V.boundOf(1), Interval::range(Rational(0), Rational(3)));
  EXPECT_EQ(V.relationalRowCount(), 1u);

  EXPECT_TRUE(V.contains({Rational(2), Rational(1)}));
  EXPECT_TRUE(V.contains({Rational(5), Rational(0)}));
  EXPECT_FALSE(V.contains({Rational(6), Rational(0)}));
  EXPECT_FALSE(V.contains({Rational(0), Rational(4)}));
}

TEST(PolyhedronTest, ClosureDetectsEmptiness) {
  TemplateMatrixRef M = testMatrix();
  TemplatePolyhedron V = TemplatePolyhedron::top(M);
  V.setBound(0, Rational(-1)); // x <= -1
  V.setBound(1, Rational(0));  // -x <= 0, i.e. x >= 0
  EXPECT_TRUE(V.isEmpty());
  EXPECT_FALSE(V.contains({Rational(0), Rational(0)}));
}

TEST(PolyhedronTest, LatticeOperationsAgainstPoints) {
  TemplateMatrixRef M = testMatrix();
  TemplatePolyhedron A = boxValue(M);
  TemplatePolyhedron B = TemplatePolyhedron::top(M);
  B.setBound(0, Rational(7)); // 4 <= x <= 7, 1 <= y <= 2
  B.setBound(1, Rational(-4));
  B.setBound(2, Rational(2));
  B.setBound(3, Rational(-1));

  TemplatePolyhedron J = A.join(B);
  // Join is an over-approximation of the union: every point of either
  // operand stays inside.
  for (const auto &P :
       {std::vector<Rational>{Rational(0), Rational(0)},
        std::vector<Rational>{Rational(5), Rational(3)},
        std::vector<Rational>{Rational(7), Rational(1)},
        std::vector<Rational>{Rational(4), Rational(2)}})
    EXPECT_TRUE(J.contains(P));
  // ... and the template bounds are the row-wise max, not coarser.
  EXPECT_EQ(J.boundOf(0), Interval::range(Rational(0), Rational(7)));
  EXPECT_EQ(J.boundOfRow(4), OctBound::of(Rational(5)));
  EXPECT_FALSE(J.contains({Rational(8), Rational(0)}));

  TemplatePolyhedron Meet = A.meet(B);
  // x in [4,5], y in [1,2]: exactly the box intersection.
  EXPECT_TRUE(Meet.contains({Rational(4), Rational(1)}));
  EXPECT_TRUE(Meet.contains({Rational(5), Rational(2)}));
  EXPECT_FALSE(Meet.contains({Rational(3), Rational(1)}));
  EXPECT_FALSE(Meet.isEmpty());

  // Widening drops exactly the rows B grew past A.
  TemplatePolyhedron W = A.widen(J);
  EXPECT_FALSE(W.boundOf(0).hasHi()); // x bound grew 5 -> 7: dropped
  EXPECT_EQ(W.boundOf(0).lo(), Rational(0));  // stable rows stay
  EXPECT_EQ(W.boundOf(1), Interval::range(Rational(0), Rational(3)));
  // Widening over-approximates the second argument: W contains J, and the
  // kept relational row x - 2y <= 5 is now the only rein on large x.
  for (const auto &P :
       {std::vector<Rational>{Rational(0), Rational(0)},
        std::vector<Rational>{Rational(7), Rational(1)},
        std::vector<Rational>{Rational(11), Rational(3)}})
    EXPECT_TRUE(W.contains(P));
  EXPECT_FALSE(W.contains({Rational(12), Rational(3)}));

  EXPECT_TRUE(A == A);
  EXPECT_TRUE(A != B);
  EXPECT_FALSE(A.toString().empty());
}

TEST(PolyhedronTest, EmptyOperandsAreLatticeUnits) {
  TemplateMatrixRef M = testMatrix();
  TemplatePolyhedron A = boxValue(M);
  TemplatePolyhedron Bot = TemplatePolyhedron::bottom(M);
  EXPECT_TRUE(Bot.isEmpty());
  EXPECT_TRUE(A.join(Bot) == A);
  EXPECT_TRUE(Bot.join(A) == A);
  EXPECT_TRUE(A.meet(Bot).isEmpty());
  EXPECT_TRUE(Bot.widen(A) == A);
}

//===----------------------------------------------------------------------===//
// Cooperative cancellation inside value-internal loops
//===----------------------------------------------------------------------===//

TEST(DomainCancellationTest, PolyhedronClosureIsInterruptibleAndResumable) {
  TemplateMatrixRef M = testMatrix();
  auto Token = std::make_shared<CancellationToken>();
  Token->cancel();
  {
    DomainCancelScope Scope(Token);
    ASSERT_TRUE(DomainCancelScope::cancelled());
    TemplatePolyhedron V = boxValue(M);
    // Interrupted closure: the relational row stays at its stored (infinite)
    // bound — a sound over-approximation, not a wrong answer.
    EXPECT_FALSE(V.boundOfRow(4).Finite);
    EXPECT_FALSE(V.isEmpty());
  }
  // Outside the scope the same value closes fully.
  EXPECT_FALSE(DomainCancelScope::cancelled());
  TemplatePolyhedron V = boxValue(M);
  EXPECT_EQ(V.boundOfRow(4), OctBound::of(Rational(5)));
}

TEST(DomainCancellationTest, OctagonClosureIsInterruptibleAndResumable) {
  auto Build = [] {
    Octagon O(2);
    O.addUpper(0, Rational(5)); // x <= 5
    O.addPair(1, false, 0, true, Rational(0)); // y - x <= 0
    return O;
  };
  auto Token = std::make_shared<CancellationToken>();
  Token->cancel();
  {
    DomainCancelScope Scope(Token);
    Octagon O = Build();
    // Interrupted strong closure: the implied bound y <= 5 is not
    // propagated, but nothing is wrong — just less precise.
    EXPECT_FALSE(O.isEmpty());
    EXPECT_FALSE(O.boundOf(1).hasHi());
  }
  Octagon O = Build();
  ASSERT_TRUE(O.boundOf(1).hasHi());
  EXPECT_EQ(O.boundOf(1).hi(), Rational(5));

  // Nested scopes restore the outer token on exit.
  auto Outer = std::make_shared<CancellationToken>();
  DomainCancelScope S1(Outer);
  {
    DomainCancelScope S2(Token);
    EXPECT_TRUE(DomainCancelScope::cancelled());
  }
  EXPECT_EQ(DomainCancelScope::current(), Outer);
  EXPECT_FALSE(DomainCancelScope::cancelled());
}

//===----------------------------------------------------------------------===//
// Template mining and the flagship beyond-octagon invariant
//===----------------------------------------------------------------------===//

/// x starts at 0 and grows by 2 while y grows by 1: the invariant x <= 2y
/// needed by the query has a coefficient no octagon can carry.
constexpr const char *TwoToOneSystem = R"(
(set-logic HORN)
(declare-fun p (Int Int) Bool)
(assert (forall ((x Int) (y Int)) (=> (and (= x 0) (= y 0)) (p x y))))
(assert (forall ((x Int) (y Int) (u Int) (v Int))
  (=> (and (p x y) (= u (+ x 2)) (= v (+ y 1))) (p u v))))
(assert (forall ((x Int) (y Int)) (=> (p x y) (<= x (* 2 y)))))
)";

TEST(TemplateMiningTest, HarvestsQueryGuardRows) {
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult P = parseChcText(TwoToOneSystem, System);
  ASSERT_TRUE(P.Ok) << P.Error;
  const Predicate *Pred = findPred(System, "p");

  AnalysisContext Ctx(System);
  std::vector<TemplateMatrixRef> Matrices =
      mineTemplates(Ctx, Ctx.Opts.Mining);
  ASSERT_EQ(Matrices.size(), System.predicates().size());
  const TemplateMatrix &M = *Matrices[Pred->Index];
  ASSERT_EQ(M.Arity, 2u);
  EXPECT_LE(M.Rows.size(), Ctx.Opts.Mining.MaxTemplatesPerPredicate);

  auto HasRow = [&](std::vector<Rational> Coef) {
    for (const TemplateRow &R : M.Rows)
      if (R.Coef == Coef)
        return true;
    return false;
  };
  // Octagon-shaped defaults.
  EXPECT_TRUE(HasRow({Rational(1), Rational(0)}));
  EXPECT_TRUE(HasRow({Rational(0), Rational(-1)}));
  EXPECT_TRUE(HasRow({Rational(1), Rational(1)}));
  EXPECT_TRUE(HasRow({Rational(1), Rational(-1)}));
  // The query guard x <= 2y projects to the row x - 2y (and its negation):
  // exactly the direction the invariant needs.
  EXPECT_TRUE(HasRow({Rational(1), Rational(-2)}));
  EXPECT_TRUE(HasRow({Rational(-1), Rational(2)}));
}

TEST(TemplateMiningTest, MaskedPredicatesGetEmptyMatrices) {
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult P = parseChcText(TwoToOneSystem, System);
  ASSERT_TRUE(P.Ok) << P.Error;
  const Predicate *Pred = findPred(System, "p");

  AnalysisContext Ctx(System);
  Ctx.fix(Pred, TM.mkTrue());
  std::vector<TemplateMatrixRef> Matrices =
      mineTemplates(Ctx, Ctx.Opts.Mining);
  EXPECT_TRUE(Matrices[Pred->Index]->Rows.empty());
}

TEST(TemplateAnalysisTest, FindsCoefficientTwoInvariant) {
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult P = parseChcText(TwoToOneSystem, System);
  ASSERT_TRUE(P.Ok) << P.Error;
  const Predicate *Pred = findPred(System, "p");

  AnalysisContext Ctx(System);

  // Neither of the lower rungs can express x <= 2y: intervals see both
  // arguments unbounded above, octagons only unit coefficients.
  std::vector<IntervalState> IStates = runIntervalAnalysis(Ctx);
  EXPECT_FALSE(IStates[Pred->Index].Value[0].hasHi());
  std::vector<OctagonState> OStates = runOctagonAnalysis(Ctx);
  Interpretation OctOnly(TM);
  if (const Term *OctInv = octagonInvariant(TM, Pred, OStates[Pred->Index]))
    OctOnly.set(Pred, OctInv);
  else
    OctOnly.set(Pred, TM.mkTrue());
  bool OctagonDischarges = true;
  for (const HornClause &C : System.clauses())
    if (C.isQuery())
      OctagonDischarges &=
          checkClause(System, C, OctOnly).Status == ClauseStatus::Valid;
  EXPECT_FALSE(OctagonDischarges);

  // The polyhedra rung pins the mined direction to x - 2y <= 0.
  std::vector<TemplateMatrixRef> Matrices;
  std::vector<PolyhedraState> States = runTemplateAnalysis(Ctx, &Matrices);
  ASSERT_TRUE(States[Pred->Index].Reachable);
  const TemplatePolyhedron &V = States[Pred->Index].Value;
  const TemplateMatrix &M = *Matrices[Pred->Index];
  bool Found = false;
  for (size_t R = 0; R < M.Rows.size(); ++R)
    if (M.Rows[R].Coef ==
        std::vector<Rational>{Rational(1), Rational(-2)}) {
      ASSERT_TRUE(V.boundOfRow(R).Finite);
      EXPECT_LE(V.boundOfRow(R).B, Rational(0));
      Found = true;
    }
  EXPECT_TRUE(Found);

  // The rendered candidate is inductive as-is.
  const Term *Inv = templateInvariant(TM, Pred, States[Pred->Index]);
  ASSERT_NE(Inv, nullptr);
  Interpretation Interp(TM);
  Interp.set(Pred, Inv);
  for (const HornClause &C : System.clauses())
    EXPECT_EQ(checkClause(System, C, Interp).Status, ClauseStatus::Valid)
        << C.Name;
}

TEST(TemplateAnalysisTest, PipelineDischargesBeyondOctagonQuery) {
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult P = parseChcText(TwoToOneSystem, System);
  ASSERT_TRUE(P.Ok) << P.Error;

  // The pre-polyhedra ladder cannot discharge the query statically.
  AnalysisOptions NoPoly;
  NoPoly.EnablePolyhedra = false;
  AnalysisResult RO = analyzeSystem(System, NoPoly);
  EXPECT_FALSE(RO.ProvedSat);

  // The full ladder does, and reports the polyhedral facts behind it.
  AnalysisResult R = analyzeSystem(System);
  EXPECT_TRUE(R.ProvedSat);
  EXPECT_FALSE(R.Invariants.empty());
  size_t PolyFacts = 0, TemplatesMined = 0;
  for (const PassStats &PS : R.Passes) {
    TemplatesMined += PS.TemplatesMined;
    if (PS.Name == "verify")
      PolyFacts += PS.PolyhedraFacts;
  }
  EXPECT_GT(TemplatesMined, 0u);
  EXPECT_GT(PolyFacts, 0u);
  EXPECT_FALSE(R.PolyRows.empty());

  // End to end: the solver answers Sat with zero CEGAR iterations and a
  // valid interpretation, and surfaces the mining stats.
  solver::DataDrivenChcSolver Solver;
  ChcSolverResult SR = Solver.solve(System);
  EXPECT_EQ(SR.Status, ChcResult::Sat);
  EXPECT_EQ(SR.Stats.Iterations, 0u);
  EXPECT_GT(SR.Stats.TemplatesMined, 0u);
  EXPECT_GT(SR.Stats.PolyhedraFacts, 0u);
  EXPECT_TRUE(Solver.detailedStats().SolvedByAnalysis);
  EXPECT_EQ(checkInterpretation(System, SR.Interp), ClauseStatus::Valid);
  EXPECT_NE(SR.Stats.summary().find("templates"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Fixpoint engine corner cases
//===----------------------------------------------------------------------===//

/// One counting loop 0..3 guarded by n < 3, plus a query using n <= 3.
constexpr const char *CountToThree = R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (< n 3) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int)) (=> (inv n) (<= n 3))))
)";

TEST(FixpointEngineTest, WideningDelayBoundaryIsExclusive) {
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult P = parseChcText(CountToThree, System);
  ASSERT_TRUE(P.Ok) << P.Error;
  const Predicate *Pred = findPred(System, "inv");

  // Reaching the fixpoint takes exactly 3 joins (n = 1, 2, 3 after the
  // fact). With WideningDelay == 3 the engine widens only *past* the delay
  // (Updates > Delay), so the exact bound survives without narrowing.
  AnalysisContext Ctx(System);
  FixpointOptions AtBoundary;
  AtBoundary.WideningDelay = 3;
  AtBoundary.NarrowingPasses = 0;
  std::vector<IntervalState> S =
      runDomainAnalysis(IntervalDomain(), Ctx, AtBoundary);
  ASSERT_TRUE(S[Pred->Index].Reachable);
  EXPECT_EQ(S[Pred->Index].Value[0],
            Interval::range(Rational(0), Rational(3)));

  // One join earlier (Delay == 2) the third join widens: without narrowing
  // the upper bound is gone...
  FixpointOptions BelowBoundary;
  BelowBoundary.WideningDelay = 2;
  BelowBoundary.NarrowingPasses = 0;
  S = runDomainAnalysis(IntervalDomain(), Ctx, BelowBoundary);
  EXPECT_EQ(S[Pred->Index].Value[0].lo(), Rational(0));
  EXPECT_FALSE(S[Pred->Index].Value[0].hasHi());

  // ... and one descending pass recovers it from the loop guard.
  BelowBoundary.NarrowingPasses = 1;
  S = runDomainAnalysis(IntervalDomain(), Ctx, BelowBoundary);
  EXPECT_EQ(S[Pred->Index].Value[0],
            Interval::range(Rational(0), Rational(3)));
}

TEST(FixpointEngineTest, UnreachablePredicateStaysBottom) {
  constexpr const char *Unreachable = R"(
(set-logic HORN)
(declare-fun p (Int) Bool)
(declare-fun q (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (p n))))
(assert (forall ((n Int) (m Int)) (=> (and (q n) (= m (+ n 1))) (q m))))
(assert (forall ((n Int)) (=> (q n) (p n))))
)";
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult P = parseChcText(Unreachable, System);
  ASSERT_TRUE(P.Ok) << P.Error;
  const Predicate *Q = findPred(System, "q");

  // `q` has no fact clause: bottom propagates through its self-loop and it
  // never becomes reachable, in every domain of the ladder.
  AnalysisContext Ctx(System);
  Ctx.Opts.EnableInlining = false;
  Ctx.Opts.EnableSlicing = false;
  EXPECT_FALSE(runIntervalAnalysis(Ctx)[Q->Index].Reachable);
  EXPECT_FALSE(runOctagonAnalysis(Ctx)[Q->Index].Reachable);
  EXPECT_FALSE(runTemplateAnalysis(Ctx)[Q->Index].Reachable);

  // The verify pass turns the bottom state into a verified-false
  // resolution.
  AnalysisOptions Opts;
  Opts.EnableInlining = false;
  Opts.EnableSlicing = false;
  AnalysisResult R = analyzeSystem(System, Opts);
  auto It = R.Fixed.find(Q);
  ASSERT_NE(It, R.Fixed.end());
  EXPECT_TRUE(It->second->isFalse());
}

TEST(FixpointEngineTest, SweepCapTelemetryIsSurfaced) {
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult P = parseChcText(CountToThree, System);
  ASSERT_TRUE(P.Ok) << P.Error;

  // The loop needs several sweeps; a cap of 1 must fire the safety net.
  AnalysisContext Ctx(System);
  FixpointOptions Capped;
  Capped.MaxSweeps = 1;
  FixpointTelemetry Tele;
  runDomainAnalysis(IntervalDomain(), Ctx, Capped, &Tele);
  EXPECT_EQ(Tele.Sweeps, 1u);
  EXPECT_TRUE(Tele.HitSweepCap);

  // Defaults converge and report clean telemetry.
  FixpointTelemetry Clean;
  runDomainAnalysis(IntervalDomain(), Ctx, FixpointOptions(), &Clean);
  EXPECT_FALSE(Clean.HitSweepCap);
  EXPECT_GT(Clean.Sweeps, 1u);

  // And the cap hit reaches the per-pass statistics.
  AnalysisOptions Opts;
  Opts.Intervals.MaxSweeps = 1;
  AnalysisResult R = analyzeSystem(System, Opts);
  bool Reported = false;
  for (const PassStats &PS : R.Passes)
    if (PS.Name == "intervals") {
      EXPECT_TRUE(PS.HitSweepCap);
      EXPECT_EQ(PS.SweepCapHits, 1u);
      Reported = true;
    }
  EXPECT_TRUE(Reported);
  EXPECT_NE(R.report().find("sweep-capped"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Corpus differential: the ladder only ever strengthens
//===----------------------------------------------------------------------===//

TEST(PolyhedraCorpusTest, LadderOnlyStrengthensStaticDischarges) {
  size_t IntervalOnly = 0, WithOctagons = 0, Full = 0, Programs = 0;
  size_t Skipped = 0;
  for (const corpus::BenchmarkProgram &Prog : corpus::allPrograms()) {
    if (!Prog.ExpectedSafe)
      continue; // analysis alone never discharges unsafe programs
    TermManager TM;
    ChcSystem System(TM);
    frontend::EncodeResult E = frontend::encodeMiniC(Prog.Source, System);
    ASSERT_TRUE(E.Ok) << Prog.Name << ": " << E.Error;

    AnalysisOptions A;
    A.EnableOctagons = false;
    A.EnablePolyhedra = false;
    A.TimeoutSeconds = 2;
    AnalysisResult RI = analyzeSystem(System, A);

    AnalysisOptions B;
    B.EnablePolyhedra = false;
    B.TimeoutSeconds = 2;
    AnalysisResult RO = analyzeSystem(System, B);

    AnalysisOptions C;
    C.TimeoutSeconds = 2;
    AnalysisResult RF = analyzeSystem(System, C);

    // A config that ran out of budget mid-pipeline proves nothing about
    // ladder strength (its later rungs ran degraded or not at all), so the
    // differential only counts programs where all three configs converged.
    // The scalability-family programs with hundreds of SSA dimensions per
    // clause land here by design.
    if (RI.TimedOut || RO.TimedOut || RF.TimedOut) {
      ++Skipped;
      continue;
    }
    ++Programs;
    bool I = RI.ProvedSat, O = RO.ProvedSat, F = RF.ProvedSat;

    // Strengthening must be monotone per program: a rung added on top of
    // the ladder can never lose a discharge the shorter ladder had.
    EXPECT_LE(I, O) << Prog.Name;
    EXPECT_LE(O, F) << Prog.Name;
    IntervalOnly += I;
    WithOctagons += O;
    Full += F;

    // Every invariant the full pipeline publishes is inductive (checked
    // against the system the invariants refer to: the inlined clone when
    // the inline pass fired).
    const ChcSystem &Sys = RF.Transformed ? *RF.Transformed : System;
    Interpretation Interp(TM);
    for (const auto &[Pred, Inv] : RF.Fixed)
      Interp.set(Pred, Inv);
    for (const auto &[Pred, Inv] : RF.Invariants)
      Interp.set(Pred, Inv);
    for (const HornClause &Cl : Sys.clauses()) {
      if (!Cl.HeadPred)
        continue;
      EXPECT_EQ(checkClause(Sys, Cl, Interp).Status, ClauseStatus::Valid)
          << Prog.Name << ": " << Cl.Name;
    }
  }
  ASSERT_GT(Programs, 0u);
  printf("static discharges: intervals %zu, +octagons %zu, +polyhedra %zu "
         "of %zu safe programs (%zu budget-skipped)\n",
         IntervalOnly, WithOctagons, Full, Programs, Skipped);
  // The acceptance bar of this PR: the polyhedra rung strictly grows the
  // set of statically discharged programs.
  EXPECT_GT(Full, WithOctagons);
}

} // namespace
