//===- tests/PacksTest.cpp - Variable-pack decomposition tests ------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Covers the pack-decomposition layer (DESIGN.md §13): the interaction-graph
// partition, the pack-size cap boundaries, the PackedOctagon lattice, the
// packed-vs-monolithic differential, cooperative cancellation inside the
// per-pack transfer, the memoized transfer cache, and the `gen_elevator_*`
// scalability regression that motivated the layer.
//
//===----------------------------------------------------------------------===//

#include "analysis/OctagonAnalysis.h"
#include "analysis/PassManager.h"
#include "analysis/VariablePacks.h"
#include "chc/ChcParser.h"
#include "corpus/Corpus.h"
#include "frontend/Encoder.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace la;
using namespace la::analysis;
using namespace la::chc;

namespace {

const Predicate *findPred(const ChcSystem &System, const std::string &Name) {
  for (const Predicate *P : System.predicates())
    if (P->Name == Name)
      return P;
  return nullptr;
}

/// `p(a, b, c, d)` with two independent variable groups: the clauses relate
/// a with b and c with d but never couple the groups, so the decomposition
/// must split the positions into the packs {0,1} and {2,3}.
constexpr const char *TwoGroupSystem = R"(
(set-logic HORN)
(declare-fun p (Int Int Int Int) Bool)
(assert (forall ((a Int) (c Int)) (=> (and (= a 0) (= c 0)) (p a a c c))))
(assert (forall ((a Int) (b Int) (c Int) (d Int) (a1 Int) (c1 Int))
  (=> (and (p a b c d) (= a1 (+ a 1)) (= c1 (+ c 2))) (p a1 b c1 d))))
(assert (forall ((a Int) (b Int) (c Int) (d Int)) (=> (p a b c d) (>= a b))))
)";

/// Same arity, but the query relates a with d, transitively coupling every
/// position into one class.
constexpr const char *CoupledSystem = R"(
(set-logic HORN)
(declare-fun p (Int Int Int Int) Bool)
(assert (forall ((a Int) (c Int)) (=> (and (= a 0) (= c 0)) (p a a c c))))
(assert (forall ((a Int) (b Int) (c Int) (d Int) (a1 Int) (c1 Int))
  (=> (and (p a b c d) (= a1 (+ a 1)) (= c1 (+ c 2))) (p a1 b c1 d))))
(assert (forall ((a Int) (b Int) (c Int) (d Int))
  (=> (and (p a b c d) (>= b d)) (>= a c))))
)";

/// The Fig.-1-shaped loop whose query needs the relational fact y - x <= 0
/// (also used by AnalysisTest); here it drives the packed/monolithic
/// differential and the transfer cache.
constexpr const char *RelationalSystem = R"(
(set-logic HORN)
(declare-fun p (Int Int) Bool)
(assert (forall ((x Int) (y Int)) (=> (= x y) (p x y))))
(assert (forall ((x Int) (y Int) (x1 Int))
  (=> (and (p x y) (= x1 (+ x 1))) (p x1 y))))
(assert (forall ((x Int) (y Int)) (=> (p x y) (>= x y))))
)";

void parse(const char *Text, ChcSystem &System) {
  ChcParseResult P = parseChcText(Text, System);
  ASSERT_TRUE(P.Ok) << P.Error;
}

//===----------------------------------------------------------------------===//
// Pack decomposition shape
//===----------------------------------------------------------------------===//

TEST(PackDecompositionTest, IndependentGroupsSplit) {
  TermManager TM;
  ChcSystem System(TM);
  parse(TwoGroupSystem, System);
  const Predicate *P = findPred(System, "p");
  ASSERT_NE(P, nullptr);

  PackDecomposition D = computePackDecomposition(System, {}, {});
  const PredPacks &Packs = *D.Preds[P->Index];
  ASSERT_EQ(Packs.Arity, 4u);
  EXPECT_EQ(Packs.packCount(), 2u);
  EXPECT_EQ(Packs.PackOf[0], Packs.PackOf[1]);
  EXPECT_EQ(Packs.PackOf[2], Packs.PackOf[3]);
  EXPECT_NE(Packs.PackOf[0], Packs.PackOf[2]);
  // Deterministic layout: packs ordered by smallest member, sorted members.
  EXPECT_EQ(Packs.Packs[0], (std::vector<size_t>{0, 1}));
  EXPECT_EQ(Packs.Packs[1], (std::vector<size_t>{2, 3}));
  EXPECT_EQ(D.LargestPack, 2u);
}

TEST(PackDecompositionTest, QueryCouplingMergesGroups) {
  TermManager TM;
  ChcSystem System(TM);
  parse(CoupledSystem, System);
  const Predicate *P = findPred(System, "p");

  // The query atom `a >= c` (with guard `b >= d`) couples the two groups;
  // query conclusions live in HeadFormula and must shape the packs.
  PackDecomposition D = computePackDecomposition(System, {}, {});
  EXPECT_EQ(D.Preds[P->Index]->packCount(), 1u);
  EXPECT_EQ(D.LargestPack, 4u);
}

TEST(PackDecompositionTest, PackCapBoundaries) {
  TermManager TM;
  ChcSystem System(TM);
  parse(CoupledSystem, System);
  const Predicate *P = findPred(System, "p");

  // Cap 1: every merge would exceed the cap, so all packs stay singletons.
  PackingOptions Tiny;
  Tiny.MaxPackSize = 1;
  PackDecomposition DT = computePackDecomposition(System, {}, Tiny);
  EXPECT_EQ(DT.Preds[P->Index]->packCount(), 4u);
  EXPECT_EQ(DT.LargestPack, 1u);

  // Cap 2 on a fully coupled predicate: merges stop at pairs; no pack may
  // exceed the cap even though the interaction graph is one component.
  PackingOptions Pair;
  Pair.MaxPackSize = 2;
  PackDecomposition DP = computePackDecomposition(System, {}, Pair);
  EXPECT_LE(DP.LargestPack, 2u);
  EXPECT_GE(DP.Preds[P->Index]->packCount(), 2u);

  // A huge cap reproduces the unconstrained decomposition.
  PackingOptions Huge;
  Huge.MaxPackSize = 64;
  PackDecomposition DH = computePackDecomposition(System, {}, Huge);
  EXPECT_EQ(DH.Preds[P->Index]->packCount(), 1u);

  // Packing disabled: one monolithic pack regardless of interaction.
  PackingOptions Off;
  Off.Enable = false;
  PackDecomposition DO = computePackDecomposition(System, {}, Off);
  EXPECT_EQ(DO.Preds[P->Index]->packCount(), 1u);
  EXPECT_EQ(DO.LargestPack, 4u);
}

//===----------------------------------------------------------------------===//
// PackedOctagon lattice
//===----------------------------------------------------------------------===//

TEST(PackedOctagonTest, LatticeOpsArePackWise) {
  std::shared_ptr<const PredPacks> Layout = PredPacks::uniform(4, 2);
  ASSERT_EQ(Layout->packCount(), 2u);

  PackedOctagon Top = PackedOctagon::top(Layout);
  PackedOctagon Bot = PackedOctagon::bottom(Layout);
  EXPECT_TRUE(Top.isTop());
  EXPECT_FALSE(Top.isEmpty());
  EXPECT_TRUE(Bot.isEmpty());
  EXPECT_EQ(Top.join(Bot), Top);
  EXPECT_EQ(Top.meet(Bot), Bot);

  PackedOctagon A = Top;
  A.pack(0).addLower(0, Rational(0));
  A.pack(0).addUpper(0, Rational(5));
  A.pack(0).addPair(0, false, 1, true, Rational(1)); // x0 - x1 <= 1
  A.pack(1).addLower(0, Rational(2));                // global position 2
  EXPECT_EQ(A.boundOf(0), Interval::range(Rational(0), Rational(5)));
  EXPECT_EQ(A.boundOf(2), Interval::atLeast(Rational(2)));
  EXPECT_EQ(A.pairUpper(0, false, 1, true), OctBound::of(Rational(1)));
  // Cross-pack pairs are exactly the information packing gives up.
  EXPECT_EQ(A.pairUpper(0, false, 2, true), OctBound::inf());

  PackedOctagon B = Top;
  B.pack(0).addLower(0, Rational(3));
  B.pack(0).addUpper(0, Rational(9));
  PackedOctagon J = A.join(B);
  EXPECT_EQ(J.boundOf(0), Interval::range(Rational(0), Rational(9)));
  // The join in pack 1 loses A's lower bound (B is top there).
  EXPECT_TRUE(J.boundOf(2).isTop());

  // Widening drops the unstable upper bound but keeps the stable lower one.
  PackedOctagon W = A.widen(J);
  EXPECT_TRUE(W.boundOf(0).hasLo());
  EXPECT_FALSE(W.boundOf(0).hasHi());

  // Two empty values compare equal regardless of which pack collapsed.
  PackedOctagon E1 = Top;
  E1.pack(0).addLower(0, Rational(1));
  E1.pack(0).addUpper(0, Rational(0));
  PackedOctagon E2 = Top;
  E2.pack(1).addLower(1, Rational(4));
  E2.pack(1).addUpper(1, Rational(2));
  EXPECT_TRUE(E1.isEmpty());
  EXPECT_TRUE(E2.isEmpty());
  EXPECT_EQ(E1, E2);
  EXPECT_EQ(E1, Bot);
}

//===----------------------------------------------------------------------===//
// Packed vs monolithic differential
//===----------------------------------------------------------------------===//

TEST(PacksDifferentialTest, StateMatchesMonolithicWithinPacks) {
  TermManager TM;
  ChcSystem System(TM);
  parse(TwoGroupSystem, System);
  const Predicate *P = findPred(System, "p");

  AnalysisOptions Packed;
  AnalysisContext CtxP(System, Packed);
  std::vector<OctagonState> SP = runOctagonAnalysis(CtxP);

  AnalysisOptions Mono;
  Mono.Packs.Enable = false;
  AnalysisContext CtxM(System, Mono);
  std::vector<OctagonState> SM = runOctagonAnalysis(CtxM);

  ASSERT_TRUE(SP[P->Index].Reachable);
  ASSERT_TRUE(SM[P->Index].Reachable);
  const PackedOctagon &OP = SP[P->Index].Value;
  const PackedOctagon &OM = SM[P->Index].Value;

  // Unary bounds agree exactly; pairwise bounds agree within a pack and may
  // only be weaker (never tighter -- that would be unsound) across packs.
  const PredPacks *Layout = OP.layout();
  for (size_t I = 0; I < 4; ++I)
    EXPECT_EQ(OP.boundOf(I), OM.boundOf(I)) << "position " << I;
  for (size_t I = 0; I < 4; ++I)
    for (size_t J = 0; J < 4; ++J) {
      if (I == J)
        continue;
      for (int Signs = 0; Signs < 4; ++Signs) {
        bool NegI = Signs & 1, NegJ = Signs & 2;
        OctBound BP = OP.pairUpper(I, NegI, J, NegJ);
        OctBound BM = OM.pairUpper(I, NegI, J, NegJ);
        if (Layout->PackOf[I] == Layout->PackOf[J])
          EXPECT_EQ(BP, BM) << I << "," << J << " signs " << Signs;
        else
          EXPECT_TRUE(BM <= BP) << I << "," << J << " signs " << Signs;
      }
    }
}

TEST(PacksDifferentialTest, PipelineVerdictMatchesMonolithic) {
  TermManager TM;
  ChcSystem System(TM);
  parse(RelationalSystem, System);

  AnalysisResult RP = analyzeSystem(System);
  AnalysisOptions Mono;
  Mono.Packs.Enable = false;
  AnalysisResult RM = analyzeSystem(System, Mono);

  EXPECT_TRUE(RP.ProvedSat);
  EXPECT_TRUE(RM.ProvedSat);
  EXPECT_GE(RP.relationalFound(), 1u);
  EXPECT_EQ(RP.relationalFound(), RM.relationalFound());
}

//===----------------------------------------------------------------------===//
// Cancellation and the transfer cache
//===----------------------------------------------------------------------===//

TEST(PacksTest, PreTrippedCancellationSkipsMemoization) {
  TermManager TM;
  ChcSystem System(TM);
  parse(RelationalSystem, System);

  AnalysisOptions Opts;
  auto Token = std::make_shared<CancellationToken>();
  Token->cancel();
  Opts.Smt.Cancel = Token;
  AnalysisContext Ctx(System, Opts);
  std::vector<OctagonState> States = runOctagonAnalysis(Ctx);

  // The fixpoint must return promptly and, critically, never memoize a
  // transfer that may have been cut short mid-closure: a truncated octagon
  // replayed later would silently lose precision across the whole run.
  EXPECT_TRUE(Ctx.OctXfer.Map.empty());
  EXPECT_EQ(Ctx.OctXfer.Hits, 0u);
}

TEST(PacksTest, TransferCacheHitsAcrossSweeps) {
  TermManager TM;
  ChcSystem System(TM);
  parse(RelationalSystem, System);

  AnalysisContext Ctx(System);
  std::vector<OctagonState> States = runOctagonAnalysis(Ctx);
  const Predicate *P = findPred(System, "p");
  ASSERT_TRUE(States[P->Index].Reachable);

  // The widening/stabilization sweeps revisit clauses whose inputs did not
  // change; those replays must come from the memo table.
  EXPECT_GT(Ctx.OctXfer.Misses, 0u);
  EXPECT_GT(Ctx.OctXfer.Hits, 0u);
}

//===----------------------------------------------------------------------===//
// gen_elevator scalability regression
//===----------------------------------------------------------------------===//

/// Runs the full pipeline on one generated elevator program. These are the
/// wide-clause programs (hundreds of SSA dimensions in one clause) that a
/// monolithic octagon cannot finish within any of these budgets; the packed
/// domain must produce verified relational facts without tripping the
/// analysis deadline.
AnalysisResult analyzeElevator(const char *Name, double Seconds,
                               ChcSystem &System) {
  const corpus::BenchmarkProgram *Prog = corpus::find(Name);
  EXPECT_NE(Prog, nullptr) << Name;
  frontend::EncodeResult E = frontend::encodeMiniC(Prog->Source, System);
  EXPECT_TRUE(E.Ok) << E.Error;
  AnalysisOptions Opts;
  Opts.TimeoutSeconds = Seconds;
  // Mirror corpus::defaultOptionsFor: the f48 verify pass has one genuinely
  // hard conjunct (the relational fact over the 96-branch Or cascade) that
  // sits near the default 10s per-check budget; give each check half the
  // wall budget so the test probes the packing layer, not SMT jitter.
  Opts.Smt.TimeoutSeconds = std::max(Opts.Smt.TimeoutSeconds, Seconds / 2);
  return analyzeSystem(System, Opts);
}

TEST(ElevatorRegressionTest, F16RelationalFactsWithinBudget) {
  TermManager TM;
  ChcSystem System(TM);
  AnalysisResult R = analyzeElevator("gen_elevator_f16", 30.0, System);
  EXPECT_FALSE(R.TimedOut);
  EXPECT_GE(R.relationalFound(), 1u);
  EXPECT_TRUE(R.ProvedSat);
}

TEST(ElevatorRegressionTest, F48RelationalFactsWithinBudget) {
  TermManager TM;
  ChcSystem System(TM);
  AnalysisResult R = analyzeElevator("gen_elevator_f48", 60.0, System);
  EXPECT_FALSE(R.TimedOut);
  EXPECT_GE(R.relationalFound(), 1u);
}

} // namespace
