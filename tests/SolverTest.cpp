//===- tests/SolverTest.cpp - Data-driven CHC solver tests ----------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "chc/ChcParser.h"
#include "solver/DataDrivenSolver.h"
#include "solver/SolveFacade.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

using namespace la;
using namespace la::chc;
using namespace la::solver;

namespace {

DataDrivenOptions testOptions() {
  DataDrivenOptions Opts;
  Opts.Limits.WallSeconds = 60;
  return Opts;
}

/// Solves the given SMT-LIB2 HORN text and checks the verdict end-to-end:
/// a SAT interpretation must validate every clause; an UNSAT counterexample
/// must replay as a genuine refutation.
ChcResult solveText(const char *Text,
                    DataDrivenOptions Opts = testOptions()) {
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult P = parseChcText(Text, System);
  EXPECT_TRUE(P.Ok) << P.Error;
  DataDrivenChcSolver Solver(Opts);
  ChcSolverResult R = Solver.solve(System);
  if (R.Status == ChcResult::Sat) {
    EXPECT_EQ(checkInterpretation(System, R.Interp), ClauseStatus::Valid)
        << "solver returned a non-solution:\n"
        << R.Interp.toString();
  }
  if (R.Status == ChcResult::Unsat) {
    EXPECT_TRUE(R.Cex.has_value()) << "unsat without counterexample";
    if (R.Cex) {
      EXPECT_TRUE(validateCounterexample(System, *R.Cex))
          << R.Cex->toString(System);
    }
  }
  return R.Status;
}

//===----------------------------------------------------------------------===//
// The paper's running examples
//===----------------------------------------------------------------------===//

/// Fig. 1: Spacer diverges on this one; the data-driven solver should find
/// an invariant such as x >= 1 /\ y >= 0.
TEST(DataDrivenSolverTest, PaperFig1Safe) {
  EXPECT_EQ(solveText(R"(
(set-logic HORN)
(declare-fun p (Int Int) Bool)
(assert (forall ((x Int) (y Int))
  (=> (and (= x 1) (= y 0)) (p x y))))
(assert (forall ((x Int) (y Int) (x1 Int) (y1 Int))
  (=> (and (p x y) (= x1 (+ x y)) (= y1 (+ y 1))) (p x1 y1))))
(assert (forall ((x Int) (y Int) (x1 Int) (y1 Int))
  (=> (and (p x y) (= x1 (+ x y)) (= y1 (+ y 1))) (>= x1 y1))))
(assert (forall ((x Int) (y Int))
  (=> (and (= x 1) (= y 0)) (>= x y))))
)"),
            ChcResult::Sat);
}

/// An unsafe variant of Fig. 1: x > y fails at the first iteration (1, 1).
TEST(DataDrivenSolverTest, Fig1UnsafeVariant) {
  EXPECT_EQ(solveText(R"(
(set-logic HORN)
(declare-fun p (Int Int) Bool)
(assert (forall ((x Int) (y Int))
  (=> (and (= x 1) (= y 0)) (p x y))))
(assert (forall ((x Int) (y Int) (x1 Int) (y1 Int))
  (=> (and (p x y) (= x1 (+ x y)) (= y1 (+ y 1))) (p x1 y1))))
(assert (forall ((x Int) (y Int))
  (=> (p x y) (> x y))))
)"),
            ChcResult::Unsat);
}

/// A simple bounded counter: safe bound 10, unsafe bound 9.
TEST(DataDrivenSolverTest, BoundedCounter) {
  const char *Template = R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (inv x))))
(assert (forall ((x Int) (x1 Int))
  (=> (and (inv x) (< x 10) (= x1 (+ x 1))) (inv x1))))
(assert (forall ((x Int)) (=> (inv x) (<= x %s))))
)";
  char Safe[1024], Unsafe[1024];
  snprintf(Safe, sizeof(Safe), Template, "10");
  snprintf(Unsafe, sizeof(Unsafe), Template, "9");
  EXPECT_EQ(solveText(Safe), ChcResult::Sat);
  EXPECT_EQ(solveText(Unsafe), ChcResult::Unsat);
}

/// Fig. 5 (program (c)): the recursive fibonacci summary with a non-linear
/// clause -- the case ICE-style frameworks cannot express (§2.3).
TEST(DataDrivenSolverTest, PaperFig5FiboSafe) {
  EXPECT_EQ(solveText(R"(
(set-logic HORN)
(declare-fun p (Int Int) Bool)
(assert (forall ((x Int) (y Int))
  (=> (and (< x 1) (= y 0)) (p x y))))
(assert (forall ((x Int) (y Int))
  (=> (and (>= x 1) (= x 1) (= y 1)) (p x y))))
(assert (forall ((x Int) (y Int) (y1 Int) (y2 Int))
  (=> (and (>= x 1) (distinct x 1) (p (- x 1) y1) (p (- x 2) y2)
           (= y (+ y1 y2)))
      (p x y))))
(assert (forall ((x Int) (y Int)) (=> (p x y) (>= y (- x 1)))))
)"),
            ChcResult::Sat);
}

/// Unsafe fibonacci property: fibo(x) >= x fails at x = 2 (fibo(2) = 1);
/// the refutation needs a genuine derivation tree p(0,0), p(1,1) |- p(2,1).
TEST(DataDrivenSolverTest, FiboUnsafeNeedsDerivationTree) {
  EXPECT_EQ(solveText(R"(
(set-logic HORN)
(declare-fun p (Int Int) Bool)
(assert (forall ((x Int) (y Int))
  (=> (and (< x 1) (= y 0)) (p x y))))
(assert (forall ((x Int) (y Int))
  (=> (and (>= x 1) (= x 1) (= y 1)) (p x y))))
(assert (forall ((x Int) (y Int) (y1 Int) (y2 Int))
  (=> (and (>= x 1) (distinct x 1) (p (- x 1) y1) (p (- x 2) y2)
           (= y (+ y1 y2)))
      (p x y))))
(assert (forall ((x Int) (y Int)) (=> (p x y) (>= y x))))
)"),
            ChcResult::Unsat);
}

/// Two chained predicates (no recursion): solved by pure propagation.
TEST(DataDrivenSolverTest, NonRecursiveChain) {
  EXPECT_EQ(solveText(R"(
(set-logic HORN)
(declare-fun a (Int) Bool)
(declare-fun b (Int) Bool)
(assert (forall ((x Int)) (=> (and (>= x 0) (<= x 3)) (a x))))
(assert (forall ((x Int) (y Int)) (=> (and (a x) (= y (+ x 2))) (b y))))
(assert (forall ((y Int)) (=> (b y) (and (>= y 2) (<= y 5)))))
)"),
            ChcResult::Sat);
}

/// A disjunctive invariant: x goes up to 5 then resets to -5 and climbs;
/// the invariant needs the boolean structure LinearArbitrary provides.
TEST(DataDrivenSolverTest, DisjunctiveInvariant) {
  EXPECT_EQ(solveText(R"(
(set-logic HORN)
(declare-fun inv (Int Int) Bool)
(assert (forall ((x Int) (f Int)) (=> (and (= x 0) (= f 0)) (inv x f))))
(assert (forall ((x Int) (f Int) (x1 Int) (f1 Int))
  (=> (and (inv x f) (= f 0) (< x 5) (= x1 (+ x 1)) (= f1 0)) (inv x1 f1))))
(assert (forall ((x Int) (f Int) (x1 Int) (f1 Int))
  (=> (and (inv x f) (= f 0) (>= x 5) (= x1 (- 0 5)) (= f1 1)) (inv x1 f1))))
(assert (forall ((x Int) (f Int) (x1 Int) (f1 Int))
  (=> (and (inv x f) (= f 1) (= x1 (+ x 1)) (< x 0)) (inv x1 f1))))
(assert (forall ((x Int) (f Int)) (=> (inv x f) (<= x 5))))
)"),
            ChcResult::Sat);
}

/// Unknown on an over-tight iteration budget instead of wrong answers.
TEST(DataDrivenSolverTest, BudgetYieldsUnknown) {
  DataDrivenOptions Opts = testOptions();
  Opts.Limits.MaxIterations = 1;
  // The octagon pre-analysis discharges Fig. 1 statically; turn it off so
  // the CEGAR loop actually runs into its one-iteration budget.
  Opts.EnableAnalysis = false;
  EXPECT_EQ(solveText(R"(
(set-logic HORN)
(declare-fun p (Int Int) Bool)
(assert (forall ((x Int) (y Int))
  (=> (and (= x 1) (= y 0)) (p x y))))
(assert (forall ((x Int) (y Int) (x1 Int) (y1 Int))
  (=> (and (p x y) (= x1 (+ x y)) (= y1 (+ y 1))) (p x1 y1))))
(assert (forall ((x Int) (y Int)) (=> (p x y) (>= x y))))
)",
                      Opts),
            ChcResult::Unknown);
}

/// The perceptron backend solves simple systems too.
TEST(DataDrivenSolverTest, PerceptronBackend) {
  DataDrivenOptions Opts = testOptions();
  Opts.Learn.LA.Learner = ml::LinearArbitraryOptions::BaseLearner::Perceptron;
  EXPECT_EQ(solveText(R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (inv x))))
(assert (forall ((x Int) (x1 Int))
  (=> (and (inv x) (< x 5) (= x1 (+ x 1))) (inv x1))))
(assert (forall ((x Int)) (=> (inv x) (>= x 0))))
)",
                      Opts),
            ChcResult::Sat);
}

/// Trivially-safe system: valid with A = true, zero iterations.
TEST(DataDrivenSolverTest, TriviallySafe) {
  TermManager TM;
  ChcSystem System(TM);
  ASSERT_TRUE(parseChcText(R"(
(declare-fun p (Int) Bool)
(assert (forall ((x Int)) (=> (> x 0) (p x))))
(assert (forall ((x Int)) (=> (p x) true)))
)",
                           System)
                  .Ok);
  DataDrivenChcSolver Solver(testOptions());
  ChcSolverResult R = Solver.solve(System);
  EXPECT_EQ(R.Status, ChcResult::Sat);
  EXPECT_EQ(R.Stats.Iterations, 0u);
}

/// Mod features: loop increments by 2, assertion about parity. Requires the
/// "Beyond Polyhedra" features of §3.3.
TEST(DataDrivenSolverTest, ParityInvariantWithModFeatures) {
  DataDrivenOptions Opts = testOptions();
  Opts.Learn.ModFeatures = {2};
  EXPECT_EQ(solveText(R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (inv x))))
(assert (forall ((x Int) (x1 Int))
  (=> (and (inv x) (= x1 (+ x 2))) (inv x1))))
(assert (forall ((x Int)) (=> (inv x) (distinct x 7))))
)",
                      Opts),
            ChcResult::Sat);
}

//===----------------------------------------------------------------------===//
// The one-call façade (examples use nothing else)
//===----------------------------------------------------------------------===//

constexpr const char *BoundedCounterText = R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (< n 10) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int)) (=> (inv n) (<= n 10))))
)";

TEST(SolveFacadeTest, SolvesTextEndToEnd) {
  solver::SolveResult S = solveChcText(BoundedCounterText);
  ASSERT_TRUE(S.Ok) << S.Error;
  EXPECT_EQ(S.Status, ChcResult::Sat);
  EXPECT_EQ(S.Clauses, 3u);
  EXPECT_EQ(S.Predicates, 1u);
  EXPECT_TRUE(S.Recursive);
  EXPECT_FALSE(S.Model.empty());
  EXPECT_TRUE(S.ModelValidated);
  // The bounded counter is discharged by the pre-analysis; the per-pass
  // statistics come back through the façade.
  EXPECT_TRUE(S.SolvedByAnalysis);
  EXPECT_EQ(S.Solver.Iterations, 0u);
  EXPECT_FALSE(S.AnalysisPasses.empty());
  EXPECT_NE(S.summary().find("sat"), std::string::npos);
}

TEST(SolveFacadeTest, ReportsParseAndFileErrors) {
  solver::SolveResult Bad = solveChcText("(assert (not-horn");
  EXPECT_FALSE(Bad.Ok);
  EXPECT_NE(Bad.Error.find("parse error"), std::string::npos);
  EXPECT_EQ(Bad.Status, ChcResult::Unknown);
  EXPECT_NE(Bad.summary().find("error"), std::string::npos);

  solver::SolveResult Missing = solveFile("/nonexistent/path.smt2");
  EXPECT_FALSE(Missing.Ok);
  EXPECT_NE(Missing.Error.find("cannot open"), std::string::npos);
}

TEST(SolveFacadeTest, SolvesFileAndHonorsCustomRegistryEngine) {
  const char *Path = "facade_test_tmp.smt2";
  {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out.good());
    Out << BoundedCounterText;
  }

  solver::SolveResult S = solveFile(Path);
  ASSERT_TRUE(S.Ok) << S.Error;
  EXPECT_EQ(S.Status, ChcResult::Sat);
  EXPECT_TRUE(S.ModelValidated);

  // A custom engine registered under a fresh id swaps in a
  // differently-configured solver; analysis statistics still surface
  // because it is a DataDrivenChcSolver.
  solver::EngineInfo Hooked;
  Hooked.Id = solver::EngineId("hooked-test");
  Hooked.Description = "differently-configured data-driven engine";
  solver::SolverRegistry::global().add(
      std::move(Hooked), [](const solver::EngineOptions &EO) {
        DataDrivenOptions DD = EO.DataDriven;
        DD.Limits = DD.Limits.resolvedOver(EO.Limits);
        DD.Name = "hooked";
        return std::make_unique<DataDrivenChcSolver>(DD);
      });
  SolveOptions Opts;
  Opts.Engine = solver::EngineId("hooked-test");
  solver::SolveResult H = solveFile(Path, Opts);
  ASSERT_TRUE(H.Ok) << H.Error;
  EXPECT_EQ(H.Status, ChcResult::Sat);
  EXPECT_EQ(H.SolverName, "hooked");
  EXPECT_FALSE(H.AnalysisPasses.empty());

  std::remove(Path);
}

TEST(SolveFacadeTest, UnsafeSystemYieldsRenderedCounterexample) {
  solver::SolveResult S = solveChcText(R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (< n 10) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int)) (=> (inv n) (<= n 5))))
)");
  ASSERT_TRUE(S.Ok) << S.Error;
  EXPECT_EQ(S.Status, ChcResult::Unsat);
  EXPECT_FALSE(S.Cex.empty());
  EXPECT_TRUE(S.Model.empty());
}

//===----------------------------------------------------------------------===//
// Format detection
//===----------------------------------------------------------------------===//

TEST(DetectFormatTest, PathExtensionIsConclusive) {
  EXPECT_EQ(detectFormat("bench.smt2", "anything"), SourceFormat::SmtLib2);
  EXPECT_EQ(detectFormat("prog.c", "anything"), SourceFormat::MiniC);
}

TEST(DetectFormatTest, ContentShapeDecidesWhenPathDoesNot) {
  EXPECT_EQ(detectFormat("", "  ; comment\n(set-logic HORN)"),
            SourceFormat::SmtLib2);
  EXPECT_EQ(detectFormat("", "int x;\nassert(x >= 0);"), SourceFormat::MiniC);
  EXPECT_EQ(detectFormat("", "while (x < 10) x = x + 1;"),
            SourceFormat::MiniC);
}

TEST(DetectFormatTest, InconclusiveSniffReturnsAuto) {
  // Neither a leading `(` nor a mini-C keyword: the sniff must say so
  // instead of committing to an arbitrary format.
  EXPECT_EQ(detectFormat("", "garbage that is neither format"),
            SourceFormat::Auto);
  EXPECT_EQ(detectFormat("", ""), SourceFormat::Auto);
  EXPECT_EQ(detectFormat("noext", "x = y"), SourceFormat::Auto);
}

TEST(DetectFormatTest, AutoFallbackDiagnosticNamesBothInterpretations) {
  SolveRequest Request;
  Request.Source = "definitely not a program in either language";
  SolveResult S = solver::solve(Request);
  ASSERT_FALSE(S.Ok);
  // The deterministic fallback tries mini-C first, then SMT-LIB2, and the
  // error names both rejected interpretations so the user can tell which
  // parser said what.
  EXPECT_NE(S.Error.find("cannot determine input format"), std::string::npos)
      << S.Error;
  EXPECT_NE(S.Error.find("not mini-C"), std::string::npos) << S.Error;
  EXPECT_NE(S.Error.find("not SMT-LIB2"), std::string::npos) << S.Error;
}

//===----------------------------------------------------------------------===//
// Result serialization (the persistent-cache record form)
//===----------------------------------------------------------------------===//

TEST(ResultSerializationTest, SatResultRoundTrips) {
  SolveResult S = solveChcText(R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (< n 10) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int)) (=> (inv n) (<= n 10))))
)");
  ASSERT_TRUE(S.Ok) << S.Error;
  ASSERT_EQ(S.Status, ChcResult::Sat);

  std::string Text = serializeResult(S);
  SolveResult R;
  ASSERT_TRUE(deserializeResult(Text, R));
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.Status, S.Status);
  EXPECT_EQ(R.SolverName, S.SolverName);
  EXPECT_EQ(R.Model, S.Model);
  EXPECT_EQ(R.ModelValidated, S.ModelValidated);
  EXPECT_EQ(R.Clauses, S.Clauses);
  EXPECT_EQ(R.Predicates, S.Predicates);
  EXPECT_EQ(R.Recursive, S.Recursive);
  EXPECT_EQ(R.SolvedByAnalysis, S.SolvedByAnalysis);
  ASSERT_EQ(R.Engines.size(), S.Engines.size());
  for (size_t I = 0; I < R.Engines.size(); ++I) {
    EXPECT_EQ(R.Engines[I].Lane, S.Engines[I].Lane);
    EXPECT_EQ(R.Engines[I].Status, S.Engines[I].Status);
    EXPECT_EQ(R.Engines[I].Winner, S.Engines[I].Winner);
  }
}

TEST(ResultSerializationTest, UnsatResultKeepsCounterexample) {
  SolveResult S = solveChcText(R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (< n 10) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int)) (=> (inv n) (<= n 5))))
)");
  ASSERT_TRUE(S.Ok) << S.Error;
  ASSERT_EQ(S.Status, ChcResult::Unsat);
  ASSERT_FALSE(S.Cex.empty());

  SolveResult R;
  ASSERT_TRUE(deserializeResult(serializeResult(S), R));
  EXPECT_EQ(R.Status, ChcResult::Unsat);
  EXPECT_EQ(R.Cex, S.Cex);
}

TEST(ResultSerializationTest, CorruptRecordsAreRejected) {
  SolveResult S = solveChcText(R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int)) (=> (inv n) (<= n 10))))
)");
  ASSERT_TRUE(S.Ok) << S.Error;
  std::string Good = serializeResult(S);

  SolveResult R;
  EXPECT_FALSE(deserializeResult("", R));
  EXPECT_FALSE(deserializeResult("not a record", R));
  EXPECT_FALSE(deserializeResult(Good.substr(0, Good.size() / 2), R));
  EXPECT_FALSE(deserializeResult("garbage\n" + Good, R));
  // The intact record still parses after all those rejections.
  EXPECT_TRUE(deserializeResult(Good, R));
}

} // namespace
