//===- tests/AnalysisTest.cpp - Static pre-analysis layer tests -----------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/DependencyGraph.h"
#include "analysis/PassManager.h"
#include "chc/ChcParser.h"
#include "solver/DataDrivenSolver.h"

#include <gtest/gtest.h>

using namespace la;
using namespace la::analysis;
using namespace la::chc;

namespace {

const Predicate *findPred(const ChcSystem &System, const std::string &Name) {
  for (const Predicate *P : System.predicates())
    if (P->Name == Name)
      return P;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Interval domain
//===----------------------------------------------------------------------===//

TEST(IntervalTest, LatticeBasics) {
  Interval Top = Interval::top();
  Interval Empty = Interval::empty();
  EXPECT_TRUE(Top.isTop());
  EXPECT_TRUE(Empty.isEmpty());
  EXPECT_EQ(Top.join(Empty), Top);
  EXPECT_EQ(Top.meet(Empty), Empty);

  Interval A = Interval::range(Rational(0), Rational(5));
  Interval B = Interval::range(Rational(3), Rational(9));
  EXPECT_EQ(A.join(B), Interval::range(Rational(0), Rational(9)));
  EXPECT_EQ(A.meet(B), Interval::range(Rational(3), Rational(5)));
  EXPECT_TRUE(A.contains(Rational(5)));
  EXPECT_FALSE(A.contains(Rational(6)));

  // Crossed bounds collapse to empty.
  EXPECT_TRUE(Interval::range(Rational(4), Rational(2)).isEmpty());
  EXPECT_TRUE(Interval::atLeast(Rational(7))
                  .meet(Interval::atMost(Rational(3)))
                  .isEmpty());
}

TEST(IntervalTest, Widening) {
  Interval Prev = Interval::range(Rational(0), Rational(3));
  // Stable lower bound is kept; growing upper bound is dropped.
  Interval W = Prev.widen(Interval::range(Rational(0), Rational(4)));
  EXPECT_TRUE(W.hasLo());
  EXPECT_EQ(W.lo(), Rational(0));
  EXPECT_FALSE(W.hasHi());
  // Nothing moved: widening is the identity.
  EXPECT_EQ(Prev.widen(Prev), Prev);
}

TEST(IntervalTest, ArithmeticAndTightening) {
  Interval A = Interval::range(Rational(1), Rational(2));
  Interval B = Interval::range(Rational(10), Rational(20));
  EXPECT_EQ(A + B, Interval::range(Rational(11), Rational(22)));
  EXPECT_EQ(B.scaled(Rational(-1)), Interval::range(Rational(-20), Rational(-10)));

  Interval Frac =
      Interval::range(Rational(BigInt(1), BigInt(2)), Rational(BigInt(7), BigInt(2)));
  EXPECT_EQ(Frac.tightenIntegral(), Interval::range(Rational(1), Rational(3)));
  // A fraction-only interval contains no integer at all.
  EXPECT_TRUE(Interval::range(Rational(BigInt(1), BigInt(3)),
                              Rational(BigInt(2), BigInt(3)))
                  .tightenIntegral()
                  .isEmpty());

  EXPECT_EQ(floorOf(Rational(BigInt(-7), BigInt(2))), Rational(-4));
  EXPECT_EQ(ceilOf(Rational(BigInt(-7), BigInt(2))), Rational(-3));
  EXPECT_EQ(floorOf(Rational(5)), Rational(5));
}

//===----------------------------------------------------------------------===//
// Dependency slicing
//===----------------------------------------------------------------------===//

/// `dead` is defined but never demanded by the query; `orphan` has no fact
/// clause at all. Slicing must resolve the former to true and the latter to
/// false, pruning their clauses.
constexpr const char *SlicingSystem = R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(declare-fun dead (Int) Bool)
(declare-fun orphan (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (< n 10) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int) (a Int))
  (=> (and (inv n) (= a (+ n 5))) (dead a))))
(assert (forall ((b Int)) (=> (and (orphan b) (> b 0)) (orphan b))))
(assert (forall ((n Int) (b Int)) (=> (and (inv n) (orphan b)) (< n b))))
(assert (forall ((n Int)) (=> (inv n) (<= n 10))))
)";

TEST(DependencyGraphTest, ReachabilityQueries) {
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult P = parseChcText(SlicingSystem, System);
  ASSERT_TRUE(P.Ok) << P.Error;

  DependencyGraph G(System, {});
  std::vector<char> Derivable = G.derivableFromFacts();
  std::vector<char> InCone = G.reachesQuery();

  EXPECT_TRUE(Derivable[findPred(System, "inv")->Index]);
  EXPECT_TRUE(Derivable[findPred(System, "dead")->Index]);
  EXPECT_FALSE(Derivable[findPred(System, "orphan")->Index]);

  EXPECT_TRUE(InCone[findPred(System, "inv")->Index]);
  EXPECT_FALSE(InCone[findPred(System, "dead")->Index]);
  EXPECT_TRUE(InCone[findPred(System, "orphan")->Index]);
}

TEST(AnalysisTest, SlicingResolvesAndPrunes) {
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult P = parseChcText(SlicingSystem, System);
  ASSERT_TRUE(P.Ok) << P.Error;

  AnalysisResult R = analyzeSystem(System);

  const Predicate *Dead = findPred(System, "dead");
  const Predicate *Orphan = findPred(System, "orphan");
  ASSERT_TRUE(R.Fixed.count(Dead));
  EXPECT_TRUE(R.Fixed.at(Dead)->isTrue());
  ASSERT_TRUE(R.Fixed.count(Orphan));
  EXPECT_TRUE(R.Fixed.at(Orphan)->isFalse());
  EXPECT_GE(R.clausesPruned(), 2u);
  EXPECT_EQ(R.predicatesResolved(), 2u);

  // No live clause mentions a resolved predicate.
  const auto &Clauses = System.clauses();
  for (size_t I = 0; I < Clauses.size(); ++I) {
    if (!R.LiveClause[I])
      continue;
    EXPECT_TRUE(!Clauses[I].HeadPred || (Clauses[I].HeadPred->Pred != Dead &&
                                         Clauses[I].HeadPred->Pred != Orphan));
    for (const PredApp &App : Clauses[I].Body)
      EXPECT_TRUE(App.Pred != Dead && App.Pred != Orphan);
  }
}

//===----------------------------------------------------------------------===//
// Interval fixpoint
//===----------------------------------------------------------------------===//

/// The classic counting loop: n starts at 0 and increments below the guard
/// n < 10. Widening first overshoots the upper bound; the narrowing passes
/// must recover the exact invariant [0, 10].
TEST(IntervalAnalysisTest, CountingLoopConverges) {
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult P = parseChcText(R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (< n 10) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int)) (=> (inv n) (<= n 10))))
)",
                                  System);
  ASSERT_TRUE(P.Ok) << P.Error;

  std::vector<char> SkipPred(System.predicates().size(), 0);
  std::vector<PredIntervalState> States =
      runIntervalAnalysis(System, {}, SkipPred, {});

  const Predicate *Inv = findPred(System, "inv");
  ASSERT_TRUE(States[Inv->Index].Reachable);
  ASSERT_EQ(States[Inv->Index].Args.size(), 1u);
  EXPECT_EQ(States[Inv->Index].Args[0],
            Interval::range(Rational(0), Rational(10)));
}

/// Without a loop guard the upper bound genuinely diverges: widening must
/// drop it (and narrowing must not resurrect a bound that does not exist),
/// while the stable lower bound survives.
TEST(IntervalAnalysisTest, WideningDropsUnstableBound) {
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult P = parseChcText(R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int)) (=> (inv n) (>= n 0))))
)",
                                  System);
  ASSERT_TRUE(P.Ok) << P.Error;

  std::vector<char> SkipPred(System.predicates().size(), 0);
  std::vector<PredIntervalState> States =
      runIntervalAnalysis(System, {}, SkipPred, {});

  const Predicate *Inv = findPred(System, "inv");
  ASSERT_TRUE(States[Inv->Index].Reachable);
  const Interval &I = States[Inv->Index].Args[0];
  EXPECT_TRUE(I.hasLo());
  EXPECT_EQ(I.lo(), Rational(0));
  EXPECT_FALSE(I.hasHi());
}

//===----------------------------------------------------------------------===//
// Full pipeline: verification, discharge, solver integration
//===----------------------------------------------------------------------===//

/// Every invariant the pipeline emits must already be inductive; this
/// re-proves them independently with chc::checkClause.
TEST(AnalysisTest, EmittedInvariantsAreInductive) {
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult P = parseChcText(SlicingSystem, System);
  ASSERT_TRUE(P.Ok) << P.Error;

  AnalysisResult R = analyzeSystem(System);
  EXPECT_FALSE(R.Invariants.empty());

  Interpretation Interp(TM);
  for (const auto &[Pred, T] : R.Fixed)
    Interp.set(Pred, T);
  for (const auto &[Pred, T] : R.Invariants)
    Interp.set(Pred, T);
  for (const HornClause &C : System.clauses()) {
    if (!C.HeadPred)
      continue;
    EXPECT_EQ(checkClause(System, C, Interp).Status, ClauseStatus::Valid)
        << "non-inductive analysis output on clause " << C.Name;
  }
}

/// The bounded counter is provable by the interval invariant alone: the
/// pipeline discharges the query and the solver returns Sat after zero CEGAR
/// iterations. With analysis off the same system needs real learning work.
TEST(AnalysisTest, BoundedCounterSolvedStatically) {
  constexpr const char *Text = R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (< n 10) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int)) (=> (inv n) (<= n 10))))
)";

  // Analysis on: discharged statically.
  {
    TermManager TM;
    ChcSystem System(TM);
    ChcParseResult P = parseChcText(Text, System);
    ASSERT_TRUE(P.Ok) << P.Error;

    AnalysisResult A = analyzeSystem(System);
    EXPECT_TRUE(A.ProvedSat);
    EXPECT_GE(A.boundsFound(), 2u); // lower and upper bound on n

    solver::DataDrivenChcSolver Solver;
    ChcSolverResult R = Solver.solve(System);
    EXPECT_EQ(R.Status, ChcResult::Sat);
    EXPECT_EQ(R.Stats.Iterations, 0u);
    EXPECT_TRUE(Solver.detailedStats().SolvedByAnalysis);
    EXPECT_EQ(checkInterpretation(System, R.Interp), ClauseStatus::Valid);
  }

  // Analysis off: still Sat, but the CEGAR loop has to do the work.
  {
    TermManager TM;
    ChcSystem System(TM);
    ChcParseResult P = parseChcText(Text, System);
    ASSERT_TRUE(P.Ok) << P.Error;

    solver::DataDrivenOptions Opts;
    Opts.EnableAnalysis = false;
    Opts.TimeoutSeconds = 60;
    solver::DataDrivenChcSolver Solver(Opts);
    ChcSolverResult R = Solver.solve(System);
    EXPECT_EQ(R.Status, ChcResult::Sat);
    EXPECT_GT(R.Stats.Iterations, 0u);
    EXPECT_FALSE(Solver.detailedStats().SolvedByAnalysis);
    EXPECT_EQ(checkInterpretation(System, R.Interp), ClauseStatus::Valid);
  }
}

/// End-to-end agreement on a system the analysis cannot discharge (Fig. 1 of
/// the paper needs the relational invariant x >= y that intervals cannot
/// express): both configurations must agree on Sat.
TEST(AnalysisTest, AnalysisOnOffAgreeOnFig1) {
  constexpr const char *Fig1 = R"(
(set-logic HORN)
(declare-fun p (Int Int) Bool)
(assert (forall ((x Int) (y Int))
  (=> (and (= x 1) (= y 0)) (p x y))))
(assert (forall ((x Int) (y Int) (x1 Int) (y1 Int))
  (=> (and (p x y) (= x1 (+ x y)) (= y1 (+ y 1))) (p x1 y1))))
(assert (forall ((x Int) (y Int)) (=> (p x y) (>= x y))))
)";
  for (bool Enable : {true, false}) {
    TermManager TM;
    ChcSystem System(TM);
    ChcParseResult P = parseChcText(Fig1, System);
    ASSERT_TRUE(P.Ok) << P.Error;

    solver::DataDrivenOptions Opts;
    Opts.EnableAnalysis = Enable;
    Opts.TimeoutSeconds = 60;
    solver::DataDrivenChcSolver Solver(Opts);
    ChcSolverResult R = Solver.solve(System);
    EXPECT_EQ(R.Status, ChcResult::Sat) << "EnableAnalysis=" << Enable;
    EXPECT_EQ(checkInterpretation(System, R.Interp), ClauseStatus::Valid)
        << "EnableAnalysis=" << Enable;
  }
}

/// Unsafe systems must stay Unsat with a replayable counterexample whether
/// or not the pre-analysis runs (its pruning must never hide a refutation).
TEST(AnalysisTest, UnsafeSystemStillRefuted) {
  constexpr const char *Unsafe = R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (< n 10) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int)) (=> (inv n) (<= n 5))))
)";
  for (bool Enable : {true, false}) {
    TermManager TM;
    ChcSystem System(TM);
    ChcParseResult P = parseChcText(Unsafe, System);
    ASSERT_TRUE(P.Ok) << P.Error;

    solver::DataDrivenOptions Opts;
    Opts.EnableAnalysis = Enable;
    Opts.TimeoutSeconds = 60;
    solver::DataDrivenChcSolver Solver(Opts);
    ChcSolverResult R = Solver.solve(System);
    EXPECT_EQ(R.Status, ChcResult::Unsat) << "EnableAnalysis=" << Enable;
    ASSERT_TRUE(R.Cex.has_value());
    EXPECT_TRUE(validateCounterexample(System, *R.Cex));
  }
}

/// The per-pass statistics must cover the whole pipeline and account for the
/// SMT checks spent on verification.
TEST(AnalysisTest, PassStatisticsAreReported) {
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult P = parseChcText(SlicingSystem, System);
  ASSERT_TRUE(P.Ok) << P.Error;

  AnalysisResult R = analyzeSystem(System);
  ASSERT_EQ(R.Passes.size(), 4u);
  EXPECT_EQ(R.Passes[0].Name, "fact-reach");
  EXPECT_EQ(R.Passes[1].Name, "query-cone");
  EXPECT_EQ(R.Passes[2].Name, "intervals");
  EXPECT_EQ(R.Passes[3].Name, "verify");
  EXPECT_GT(R.Passes[2].BoundsFound, 0u);
  EXPECT_GT(R.Passes[3].SmtChecks, 0u);
  EXPECT_GT(R.smtChecks(), 0u);
  EXPECT_FALSE(R.report().empty());

  // Disabling both pass groups yields the trivial result.
  AnalysisOptions Off;
  Off.EnableSlicing = false;
  Off.EnableIntervals = false;
  AnalysisResult Trivial = analyzeSystem(System, Off);
  EXPECT_EQ(Trivial.clausesPruned(), 0u);
  EXPECT_TRUE(Trivial.Fixed.empty());
  EXPECT_TRUE(Trivial.Invariants.empty());
}

} // namespace
