//===- tests/AnalysisTest.cpp - Static pre-analysis layer tests -----------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/DependencyGraph.h"
#include "analysis/InlinePass.h"
#include "analysis/IntervalAnalysis.h"
#include "analysis/Octagon.h"
#include "analysis/OctagonAnalysis.h"
#include "analysis/PassManager.h"
#include "chc/ChcParser.h"
#include "solver/DataDrivenSolver.h"

#include <gtest/gtest.h>

#include <functional>

using namespace la;
using namespace la::analysis;
using namespace la::chc;

namespace {

const Predicate *findPred(const ChcSystem &System, const std::string &Name) {
  for (const Predicate *P : System.predicates())
    if (P->Name == Name)
      return P;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Interval domain
//===----------------------------------------------------------------------===//

TEST(IntervalTest, LatticeBasics) {
  Interval Top = Interval::top();
  Interval Empty = Interval::empty();
  EXPECT_TRUE(Top.isTop());
  EXPECT_TRUE(Empty.isEmpty());
  EXPECT_EQ(Top.join(Empty), Top);
  EXPECT_EQ(Top.meet(Empty), Empty);

  Interval A = Interval::range(Rational(0), Rational(5));
  Interval B = Interval::range(Rational(3), Rational(9));
  EXPECT_EQ(A.join(B), Interval::range(Rational(0), Rational(9)));
  EXPECT_EQ(A.meet(B), Interval::range(Rational(3), Rational(5)));
  EXPECT_TRUE(A.contains(Rational(5)));
  EXPECT_FALSE(A.contains(Rational(6)));

  // Crossed bounds collapse to empty.
  EXPECT_TRUE(Interval::range(Rational(4), Rational(2)).isEmpty());
  EXPECT_TRUE(Interval::atLeast(Rational(7))
                  .meet(Interval::atMost(Rational(3)))
                  .isEmpty());
}

TEST(IntervalTest, Widening) {
  Interval Prev = Interval::range(Rational(0), Rational(3));
  // Stable lower bound is kept; growing upper bound is dropped.
  Interval W = Prev.widen(Interval::range(Rational(0), Rational(4)));
  EXPECT_TRUE(W.hasLo());
  EXPECT_EQ(W.lo(), Rational(0));
  EXPECT_FALSE(W.hasHi());
  // Nothing moved: widening is the identity.
  EXPECT_EQ(Prev.widen(Prev), Prev);
}

TEST(IntervalTest, ArithmeticAndTightening) {
  Interval A = Interval::range(Rational(1), Rational(2));
  Interval B = Interval::range(Rational(10), Rational(20));
  EXPECT_EQ(A + B, Interval::range(Rational(11), Rational(22)));
  EXPECT_EQ(B.scaled(Rational(-1)), Interval::range(Rational(-20), Rational(-10)));

  Interval Frac =
      Interval::range(Rational(BigInt(1), BigInt(2)), Rational(BigInt(7), BigInt(2)));
  EXPECT_EQ(Frac.tightenIntegral(), Interval::range(Rational(1), Rational(3)));
  // A fraction-only interval contains no integer at all.
  EXPECT_TRUE(Interval::range(Rational(BigInt(1), BigInt(3)),
                              Rational(BigInt(2), BigInt(3)))
                  .tightenIntegral()
                  .isEmpty());

  EXPECT_EQ(floorOf(Rational(BigInt(-7), BigInt(2))), Rational(-4));
  EXPECT_EQ(ceilOf(Rational(BigInt(-7), BigInt(2))), Rational(-3));
  EXPECT_EQ(floorOf(Rational(5)), Rational(5));
}

//===----------------------------------------------------------------------===//
// Dependency slicing
//===----------------------------------------------------------------------===//

/// `dead` is defined but never demanded by the query; `orphan` has no fact
/// clause at all. Slicing must resolve the former to true and the latter to
/// false, pruning their clauses.
constexpr const char *SlicingSystem = R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(declare-fun dead (Int) Bool)
(declare-fun orphan (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (< n 10) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int) (a Int))
  (=> (and (inv n) (= a (+ n 5))) (dead a))))
(assert (forall ((b Int)) (=> (and (orphan b) (> b 0)) (orphan b))))
(assert (forall ((n Int) (b Int)) (=> (and (inv n) (orphan b)) (< n b))))
(assert (forall ((n Int)) (=> (inv n) (<= n 10))))
)";

TEST(DependencyGraphTest, ReachabilityQueries) {
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult P = parseChcText(SlicingSystem, System);
  ASSERT_TRUE(P.Ok) << P.Error;

  DependencyGraph G(System, {});
  std::vector<char> Derivable = G.derivableFromFacts();
  std::vector<char> InCone = G.reachesQuery();

  EXPECT_TRUE(Derivable[findPred(System, "inv")->Index]);
  EXPECT_TRUE(Derivable[findPred(System, "dead")->Index]);
  EXPECT_FALSE(Derivable[findPred(System, "orphan")->Index]);

  EXPECT_TRUE(InCone[findPred(System, "inv")->Index]);
  EXPECT_FALSE(InCone[findPred(System, "dead")->Index]);
  EXPECT_TRUE(InCone[findPred(System, "orphan")->Index]);
}

TEST(AnalysisTest, SlicingResolvesAndPrunes) {
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult P = parseChcText(SlicingSystem, System);
  ASSERT_TRUE(P.Ok) << P.Error;

  AnalysisResult R = analyzeSystem(System);

  // The inline pass eliminates `dead` (one definition, no recursion, never
  // in a query body) before slicing even sees it, so every later field
  // refers to the transformed system. `orphan` is self-recursive and must
  // not be inlined; slicing still resolves it to false.
  ASSERT_TRUE(R.Transformed != nullptr);
  ASSERT_TRUE(R.Inline != nullptr);
  const Predicate *Dead = findPred(*R.Transformed, "dead");
  const Predicate *Orphan = findPred(*R.Transformed, "orphan");
  ASSERT_TRUE(Dead && Orphan);
  EXPECT_TRUE(R.Inline->Eliminated[Dead->Index]);
  EXPECT_FALSE(R.Inline->Eliminated[Orphan->Index]);
  EXPECT_FALSE(R.Fixed.count(Dead));
  ASSERT_TRUE(R.Fixed.count(Orphan));
  EXPECT_TRUE(R.Fixed.at(Orphan)->isFalse());
  EXPECT_GE(R.clausesPruned(), 2u);
  EXPECT_EQ(R.predicatesResolved(), 1u);

  // No live clause of the transformed system mentions a resolved or
  // eliminated predicate.
  const auto &Clauses = R.Transformed->clauses();
  for (size_t I = 0; I < Clauses.size(); ++I) {
    if (!R.LiveClause[I])
      continue;
    EXPECT_TRUE(!Clauses[I].HeadPred || (Clauses[I].HeadPred->Pred != Dead &&
                                         Clauses[I].HeadPred->Pred != Orphan));
    for (const PredApp &App : Clauses[I].Body)
      EXPECT_TRUE(App.Pred != Dead && App.Pred != Orphan);
  }
}

//===----------------------------------------------------------------------===//
// Interval fixpoint
//===----------------------------------------------------------------------===//

/// The classic counting loop: n starts at 0 and increments below the guard
/// n < 10. Widening first overshoots the upper bound; the narrowing passes
/// must recover the exact invariant [0, 10].
TEST(IntervalAnalysisTest, CountingLoopConverges) {
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult P = parseChcText(R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (< n 10) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int)) (=> (inv n) (<= n 10))))
)",
                                  System);
  ASSERT_TRUE(P.Ok) << P.Error;

  AnalysisContext Ctx(System);
  std::vector<IntervalState> States = runIntervalAnalysis(Ctx);

  const Predicate *Inv = findPred(System, "inv");
  ASSERT_TRUE(States[Inv->Index].Reachable);
  ASSERT_EQ(States[Inv->Index].Value.size(), 1u);
  EXPECT_EQ(States[Inv->Index].Value[0],
            Interval::range(Rational(0), Rational(10)));
}

/// Without a loop guard the upper bound genuinely diverges: widening must
/// drop it (and narrowing must not resurrect a bound that does not exist),
/// while the stable lower bound survives.
TEST(IntervalAnalysisTest, WideningDropsUnstableBound) {
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult P = parseChcText(R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int)) (=> (inv n) (>= n 0))))
)",
                                  System);
  ASSERT_TRUE(P.Ok) << P.Error;

  AnalysisContext Ctx(System);
  std::vector<IntervalState> States = runIntervalAnalysis(Ctx);

  const Predicate *Inv = findPred(System, "inv");
  ASSERT_TRUE(States[Inv->Index].Reachable);
  const Interval &I = States[Inv->Index].Value[0];
  EXPECT_TRUE(I.hasLo());
  EXPECT_EQ(I.lo(), Rational(0));
  EXPECT_FALSE(I.hasHi());
}

//===----------------------------------------------------------------------===//
// Octagon domain, differential against brute-force enumeration
//===----------------------------------------------------------------------===//

namespace {

/// All integer points of the box [-B, B]^N, as rational coordinate vectors.
std::vector<std::vector<Rational>> boxPoints(size_t N, int B) {
  std::vector<std::vector<Rational>> Points(1);
  for (size_t D = 0; D < N; ++D) {
    std::vector<std::vector<Rational>> Next;
    for (const auto &P : Points)
      for (int V = -B; V <= B; ++V) {
        Next.push_back(P);
        Next.back().push_back(Rational(V));
      }
    Points = std::move(Next);
  }
  return Points;
}

/// Evaluates one canonical octagon constraint at a point.
Rational evalConstraint(const OctConstraint &C,
                        const std::vector<Rational> &P) {
  Rational V = P[C.Var1] * Rational(C.Coef1);
  if (C.Coef2 != 0)
    V = V + P[C.Var2] * Rational(C.Coef2);
  return V;
}

/// Checks every finite canonical constraint of \p O against the enumerated
/// \p Sat points: each must be sound (no point exceeds it) and, when \p
/// ExpectTight, exact (some point attains it). Requires the concretization
/// of \p O to lie strictly inside the enumeration box.
void checkAgainstEnumeration(const Octagon &O,
                             const std::vector<std::vector<Rational>> &Sat,
                             bool ExpectTight) {
  O.forEachConstraint([&](const OctConstraint &C) {
    Rational Max;
    bool Any = false;
    for (const auto &P : Sat) {
      Rational V = evalConstraint(C, P);
      if (!Any || Max < V) {
        Max = V;
        Any = true;
      }
      EXPECT_TRUE(V <= C.Bound) << O.toString();
    }
    ASSERT_TRUE(Any);
    if (ExpectTight) {
      EXPECT_EQ(Max, C.Bound) << "loose bound in " << O.toString();
    }
  });
}

} // namespace

TEST(OctagonTest, ClosureIsTightOnEnumeratedBox) {
  // x in [0, 5], y in [1, 4], x + y <= 7: bounded and strictly inside the
  // enumeration box, so every closed bound must match the enumerated max.
  Octagon O(2);
  O.addLower(0, Rational(0));
  O.addUpper(0, Rational(5));
  O.addLower(1, Rational(1));
  O.addUpper(1, Rational(4));
  O.addPair(0, false, 1, false, Rational(7));

  auto SatPred = [](const std::vector<Rational> &P) {
    return Rational(0) <= P[0] && P[0] <= Rational(5) && Rational(1) <= P[1] &&
           P[1] <= Rational(4) && P[0] + P[1] <= Rational(7);
  };
  std::vector<std::vector<Rational>> Sat;
  for (const auto &P : boxPoints(2, 8)) {
    EXPECT_EQ(O.contains(P), SatPred(P));
    if (SatPred(P))
      Sat.push_back(P);
  }
  ASSERT_FALSE(O.isEmpty());
  checkAgainstEnumeration(O, Sat, /*ExpectTight=*/true);

  EXPECT_EQ(O.boundOf(0), Interval::range(Rational(0), Rational(5)));
  EXPECT_EQ(O.boundOf(1), Interval::range(Rational(1), Rational(4)));
  EXPECT_EQ(O.pairUpper(0, false, 1, false), OctBound::of(Rational(7)));
  // Implied by closure: x - y <= 5 - 1 = 4.
  EXPECT_EQ(O.pairUpper(0, false, 1, true), OctBound::of(Rational(4)));
}

TEST(OctagonTest, IntegerTightening) {
  // Fractional unary bound floors to the next integer.
  Octagon A(1);
  A.addUpper(0, Rational(BigInt(5), BigInt(2))); // x <= 5/2
  Interval IA = A.boundOf(0);
  ASSERT_TRUE(IA.hasHi());
  EXPECT_EQ(IA.hi(), Rational(2));

  // Half-sum strengthening: x + y <= 3 and x - y <= 4 imply 2x <= 7, which
  // tightens to x <= 3 over the integers.
  Octagon B(2);
  B.addPair(0, false, 1, false, Rational(3));
  B.addPair(0, false, 1, true, Rational(4));
  Interval IB = B.boundOf(0);
  ASSERT_TRUE(IB.hasHi());
  EXPECT_EQ(IB.hi(), Rational(3));
  EXPECT_FALSE(IB.hasLo());

  // x in [1/2, 1/2] holds no integer point at all.
  Octagon C(1);
  C.addUpper(0, Rational(BigInt(1), BigInt(2)));
  C.addLower(0, Rational(BigInt(1), BigInt(2)));
  EXPECT_TRUE(C.isEmpty());
}

TEST(OctagonTest, EmptinessDetection) {
  Octagon A(1);
  A.addLower(0, Rational(1));
  A.addUpper(0, Rational(0));
  EXPECT_TRUE(A.isEmpty());

  // x + y <= 1 together with x + y >= 2.
  Octagon B(2);
  B.addPair(0, false, 1, false, Rational(1));
  B.addPair(0, true, 1, true, Rational(-2));
  EXPECT_TRUE(B.isEmpty());

  Octagon C(2);
  C.markEmpty();
  EXPECT_TRUE(C.isEmpty());
  EXPECT_EQ(C, Octagon::bottom(2));

  // Emptiness is absorbing for meet, neutral for join.
  Octagon Box(2);
  Box.addLower(0, Rational(0));
  Box.addUpper(0, Rational(2));
  EXPECT_TRUE(Box.meet(B).isEmpty());
  EXPECT_EQ(Box.join(B), Box);
}

TEST(OctagonTest, JoinIsExactPerConstraint) {
  // Two disjoint boxes; the join's canonical bounds must equal the max of
  // the operands' bounds, i.e. the enumerated max over the union.
  Octagon A(2);
  A.addLower(0, Rational(0));
  A.addUpper(0, Rational(2));
  A.addLower(1, Rational(0));
  A.addUpper(1, Rational(2));

  Octagon B(2);
  B.addLower(0, Rational(4));
  B.addUpper(0, Rational(6));
  B.addLower(1, Rational(1));
  B.addUpper(1, Rational(3));

  Octagon J = A.join(B);
  ASSERT_FALSE(J.isEmpty());

  std::vector<std::vector<Rational>> Union;
  for (const auto &P : boxPoints(2, 7)) {
    bool InEither = A.contains(P) || B.contains(P);
    if (InEither) {
      Union.push_back(P);
      // Join over-approximates the union...
      EXPECT_TRUE(J.contains(P));
    }
  }
  // ...and is exact constraint-by-constraint.
  checkAgainstEnumeration(J, Union, /*ExpectTight=*/true);

  EXPECT_EQ(J.boundOf(0), Interval::range(Rational(0), Rational(6)));
  EXPECT_EQ(J.boundOf(1), Interval::range(Rational(0), Rational(3)));
  // Relational fact the interval join cannot see: x - y <= 5 (attained at
  // (6, 1)), tighter than the unary-implied 6 - 0 = 6.
  EXPECT_EQ(J.pairUpper(0, false, 1, true), OctBound::of(Rational(5)));
}

TEST(OctagonTest, WideningDropsUnstableKeepsStable) {
  Octagon Prev(2);
  Prev.addLower(0, Rational(0));
  Prev.addUpper(0, Rational(3));
  Prev.addLower(1, Rational(0));
  Prev.addUpper(1, Rational(0));
  Prev.addPair(1, false, 0, true, Rational(0)); // y - x <= 0

  Octagon Next(2);
  Next.addLower(0, Rational(0));
  Next.addUpper(0, Rational(4)); // upper bound of x moved
  Next.addLower(1, Rational(0));
  Next.addUpper(1, Rational(0));
  Next.addPair(1, false, 0, true, Rational(0));

  Octagon W = Prev.widen(Prev.join(Next));
  // Widening over-approximates both iterates...
  for (const auto &P : boxPoints(2, 5))
    if (Prev.contains(P) || Next.contains(P)) {
      EXPECT_TRUE(W.contains(P));
    }
  // ...keeps every stable bound and drops the moving one.
  Interval X = W.boundOf(0);
  EXPECT_TRUE(X.hasLo());
  EXPECT_EQ(X.lo(), Rational(0));
  EXPECT_FALSE(X.hasHi());
  EXPECT_EQ(W.boundOf(1), Interval::range(Rational(0), Rational(0)));
  EXPECT_EQ(W.pairUpper(1, false, 0, true), OctBound::of(Rational(0)));

  // Nothing moved: widening is the identity.
  EXPECT_EQ(Prev.widen(Prev), Prev);
}

TEST(OctagonTest, ProjectionKeepsImpliedFacts) {
  // x = y + 1, y in [0, 3], z unconstrained: projecting away z keeps the
  // relation, projecting onto {x} keeps the implied bounds [1, 4].
  Octagon O(3);
  O.addPair(0, false, 1, true, Rational(1));  // x - y <= 1
  O.addPair(1, false, 0, true, Rational(-1)); // y - x <= -1
  O.addLower(1, Rational(0));
  O.addUpper(1, Rational(3));

  Octagon XY = O.project({0, 1});
  EXPECT_EQ(XY.pairUpper(0, false, 1, true), OctBound::of(Rational(1)));
  EXPECT_EQ(XY.pairUpper(1, false, 0, true), OctBound::of(Rational(-1)));
  EXPECT_EQ(XY.boundOf(0), Interval::range(Rational(1), Rational(4)));

  Octagon X = O.project({0});
  EXPECT_EQ(X.numVars(), 1u);
  EXPECT_EQ(X.boundOf(0), Interval::range(Rational(1), Rational(4)));
}

//===----------------------------------------------------------------------===//
// Octagon fixpoint: relational invariants intervals cannot express
//===----------------------------------------------------------------------===//

/// `p(x, y)` starts on the diagonal x = y (unbounded!) and only ever grows
/// x. The query x >= y needs the relational fact y - x <= 0; intervals see
/// no finite bound anywhere, so their invariant is provably trivial.
constexpr const char *RelationalSystem = R"(
(set-logic HORN)
(declare-fun p (Int Int) Bool)
(assert (forall ((x Int) (y Int)) (=> (= x y) (p x y))))
(assert (forall ((x Int) (y Int) (x1 Int))
  (=> (and (p x y) (= x1 (+ x 1))) (p x1 y))))
(assert (forall ((x Int) (y Int)) (=> (p x y) (>= x y))))
)";

TEST(OctagonAnalysisTest, RelationalInvariantBeyondIntervals) {
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult P = parseChcText(RelationalSystem, System);
  ASSERT_TRUE(P.Ok) << P.Error;
  const Predicate *Pred = findPred(System, "p");

  AnalysisContext Ctx(System);

  // The interval domain provably learns nothing here: every argument stays
  // unbounded, the state is top and the rendered invariant empty.
  std::vector<IntervalState> IStates = runIntervalAnalysis(Ctx);
  ASSERT_TRUE(IStates[Pred->Index].Reachable);
  for (const Interval &I : IStates[Pred->Index].Value)
    EXPECT_TRUE(I.isTop());
  EXPECT_EQ(intervalInvariant(TM, Pred, IStates[Pred->Index]), nullptr);

  // The octagon domain keeps the diagonal fact y - x <= 0 through the loop.
  std::vector<OctagonState> OStates = runOctagonAnalysis(Ctx);
  ASSERT_TRUE(OStates[Pred->Index].Reachable);
  const PackedOctagon &O = OStates[Pred->Index].Value;
  EXPECT_EQ(O.pairUpper(1, false, 0, true), OctBound::of(Rational(0)));
  EXPECT_GE(OctagonDomain::relationalFactCount(O), 1u);

  const Term *Inv = octagonInvariant(TM, Pred, OStates[Pred->Index]);
  ASSERT_NE(Inv, nullptr);

  // The emitted candidate is inductive: it survives chc::checkClause.
  Interpretation Interp(TM);
  Interp.set(Pred, Inv);
  for (const HornClause &C : System.clauses())
    EXPECT_EQ(checkClause(System, C, Interp).Status, ClauseStatus::Valid)
        << C.Name;
}

TEST(OctagonAnalysisTest, PipelineDischargesRelationalQuery) {
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult P = parseChcText(RelationalSystem, System);
  ASSERT_TRUE(P.Ok) << P.Error;

  // Interval-only pipeline: no invariant, no discharge.
  AnalysisOptions IntervalOnly;
  IntervalOnly.EnableOctagons = false;
  IntervalOnly.EnablePolyhedra = false;
  AnalysisResult RI = analyzeSystem(System, IntervalOnly);
  EXPECT_FALSE(RI.ProvedSat);
  EXPECT_TRUE(RI.Invariants.empty());
  EXPECT_EQ(RI.relationalFound(), 0u);

  // Full pipeline: the octagon invariant discharges the query statically.
  AnalysisResult R = analyzeSystem(System);
  EXPECT_TRUE(R.ProvedSat);
  EXPECT_FALSE(R.Invariants.empty());
  EXPECT_GE(R.relationalFound(), 1u);

  // End to end: zero CEGAR iterations with the analysis on.
  solver::DataDrivenChcSolver Solver;
  ChcSolverResult SR = Solver.solve(System);
  EXPECT_EQ(SR.Status, ChcResult::Sat);
  EXPECT_EQ(SR.Stats.Iterations, 0u);
  EXPECT_TRUE(Solver.detailedStats().SolvedByAnalysis);
  EXPECT_EQ(checkInterpretation(System, SR.Interp), ClauseStatus::Valid);
}

//===----------------------------------------------------------------------===//
// Full pipeline: verification, discharge, solver integration
//===----------------------------------------------------------------------===//

/// Every invariant the pipeline emits must already be inductive; this
/// re-proves them independently with chc::checkClause.
TEST(AnalysisTest, EmittedInvariantsAreInductive) {
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult P = parseChcText(SlicingSystem, System);
  ASSERT_TRUE(P.Ok) << P.Error;

  AnalysisResult R = analyzeSystem(System);
  EXPECT_FALSE(R.Invariants.empty());

  // The analysis annotates the inlined clone when the inline pass fired.
  const ChcSystem &Analyzed = R.Transformed ? *R.Transformed : System;
  Interpretation Interp(TM);
  for (const auto &[Pred, T] : R.Fixed)
    Interp.set(Pred, T);
  for (const auto &[Pred, T] : R.Invariants)
    Interp.set(Pred, T);
  for (const HornClause &C : Analyzed.clauses()) {
    if (!C.HeadPred)
      continue;
    EXPECT_EQ(checkClause(Analyzed, C, Interp).Status, ClauseStatus::Valid)
        << "non-inductive analysis output on clause " << C.Name;
  }
}

/// The bounded counter is provable by the interval invariant alone: the
/// pipeline discharges the query and the solver returns Sat after zero CEGAR
/// iterations. With analysis off the same system needs real learning work.
TEST(AnalysisTest, BoundedCounterSolvedStatically) {
  constexpr const char *Text = R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (< n 10) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int)) (=> (inv n) (<= n 10))))
)";

  // Analysis on: discharged statically.
  {
    TermManager TM;
    ChcSystem System(TM);
    ChcParseResult P = parseChcText(Text, System);
    ASSERT_TRUE(P.Ok) << P.Error;

    AnalysisResult A = analyzeSystem(System);
    EXPECT_TRUE(A.ProvedSat);
    EXPECT_GE(A.boundsFound(), 2u); // lower and upper bound on n

    solver::DataDrivenChcSolver Solver;
    ChcSolverResult R = Solver.solve(System);
    EXPECT_EQ(R.Status, ChcResult::Sat);
    EXPECT_EQ(R.Stats.Iterations, 0u);
    EXPECT_TRUE(Solver.detailedStats().SolvedByAnalysis);
    EXPECT_EQ(checkInterpretation(System, R.Interp), ClauseStatus::Valid);
  }

  // Analysis off: still Sat, but the CEGAR loop has to do the work.
  {
    TermManager TM;
    ChcSystem System(TM);
    ChcParseResult P = parseChcText(Text, System);
    ASSERT_TRUE(P.Ok) << P.Error;

    solver::DataDrivenOptions Opts;
    Opts.EnableAnalysis = false;
    Opts.Limits.WallSeconds = 60;
    solver::DataDrivenChcSolver Solver(Opts);
    ChcSolverResult R = Solver.solve(System);
    EXPECT_EQ(R.Status, ChcResult::Sat);
    EXPECT_GT(R.Stats.Iterations, 0u);
    EXPECT_FALSE(Solver.detailedStats().SolvedByAnalysis);
    EXPECT_EQ(checkInterpretation(System, R.Interp), ClauseStatus::Valid);
  }
}

/// End-to-end agreement on a system the analysis cannot discharge (Fig. 1 of
/// the paper needs the relational invariant x >= y that intervals cannot
/// express): both configurations must agree on Sat.
TEST(AnalysisTest, AnalysisOnOffAgreeOnFig1) {
  constexpr const char *Fig1 = R"(
(set-logic HORN)
(declare-fun p (Int Int) Bool)
(assert (forall ((x Int) (y Int))
  (=> (and (= x 1) (= y 0)) (p x y))))
(assert (forall ((x Int) (y Int) (x1 Int) (y1 Int))
  (=> (and (p x y) (= x1 (+ x y)) (= y1 (+ y 1))) (p x1 y1))))
(assert (forall ((x Int) (y Int)) (=> (p x y) (>= x y))))
)";
  for (bool Enable : {true, false}) {
    TermManager TM;
    ChcSystem System(TM);
    ChcParseResult P = parseChcText(Fig1, System);
    ASSERT_TRUE(P.Ok) << P.Error;

    solver::DataDrivenOptions Opts;
    Opts.EnableAnalysis = Enable;
    Opts.Limits.WallSeconds = 60;
    solver::DataDrivenChcSolver Solver(Opts);
    ChcSolverResult R = Solver.solve(System);
    EXPECT_EQ(R.Status, ChcResult::Sat) << "EnableAnalysis=" << Enable;
    EXPECT_EQ(checkInterpretation(System, R.Interp), ClauseStatus::Valid)
        << "EnableAnalysis=" << Enable;
  }
}

/// Unsafe systems must stay Unsat with a replayable counterexample whether
/// or not the pre-analysis runs (its pruning must never hide a refutation).
TEST(AnalysisTest, UnsafeSystemStillRefuted) {
  constexpr const char *Unsafe = R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (< n 10) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int)) (=> (inv n) (<= n 5))))
)";
  for (bool Enable : {true, false}) {
    TermManager TM;
    ChcSystem System(TM);
    ChcParseResult P = parseChcText(Unsafe, System);
    ASSERT_TRUE(P.Ok) << P.Error;

    solver::DataDrivenOptions Opts;
    Opts.EnableAnalysis = Enable;
    Opts.Limits.WallSeconds = 60;
    solver::DataDrivenChcSolver Solver(Opts);
    ChcSolverResult R = Solver.solve(System);
    EXPECT_EQ(R.Status, ChcResult::Unsat) << "EnableAnalysis=" << Enable;
    ASSERT_TRUE(R.Cex.has_value());
    EXPECT_TRUE(validateCounterexample(System, *R.Cex));
  }
}

/// The per-pass statistics must cover the whole pipeline and account for the
/// SMT checks spent on verification.
TEST(AnalysisTest, PassStatisticsAreReported) {
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult P = parseChcText(SlicingSystem, System);
  ASSERT_TRUE(P.Ok) << P.Error;

  AnalysisResult R = analyzeSystem(System);
  ASSERT_EQ(R.Passes.size(), 7u);
  EXPECT_EQ(R.Passes[0].Name, "inline");
  EXPECT_EQ(R.Passes[1].Name, "fact-reach");
  EXPECT_EQ(R.Passes[2].Name, "query-cone");
  EXPECT_EQ(R.Passes[3].Name, "intervals");
  EXPECT_EQ(R.Passes[4].Name, "octagons");
  EXPECT_EQ(R.Passes[5].Name, "polyhedra");
  EXPECT_EQ(R.Passes[6].Name, "verify");
  EXPECT_EQ(R.Passes[0].PredicatesInlined, 1u);
  EXPECT_EQ(R.Passes[0].ClausesRemoved, 1u);
  EXPECT_GT(R.Passes[3].BoundsFound, 0u);
  EXPECT_GT(R.Passes[4].BoundsFound, 0u);
  EXPECT_GT(R.Passes[5].TemplatesMined, 0u);
  EXPECT_GT(R.Passes[6].SmtChecks, 0u);
  EXPECT_GT(R.smtChecks(), 0u);
  EXPECT_FALSE(R.report().empty());

  // Disabling every pass group yields the trivial result.
  AnalysisOptions Off;
  Off.EnableInlining = false;
  Off.EnableSlicing = false;
  Off.EnableIntervals = false;
  Off.EnableOctagons = false;
  Off.EnablePolyhedra = false;
  AnalysisResult Trivial = analyzeSystem(System, Off);
  EXPECT_TRUE(Trivial.Transformed == nullptr);
  EXPECT_EQ(Trivial.clausesPruned(), 0u);
  EXPECT_TRUE(Trivial.Fixed.empty());
  EXPECT_TRUE(Trivial.Invariants.empty());
}

} // namespace
