//===- tests/SmtLib2Test.cpp - SMT-LIB2 front end tests -------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
// The strict SMT-LIB2 HORN front end: located diagnostics, the supported
// term fragment (Bool columns, let, ite, div/mod), the Z3 fixedpoint
// dialect, the bundled `.smt2` corpus, and the printer round-trip
// (mini-C corpus -> printed SMT-LIB2 -> reparsed -> identical verdicts).
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "corpus/Smt2Corpus.h"
#include "frontend/Encoder.h"
#include "smtlib2/Parser.h"
#include "smtlib2/Printer.h"
#include "solver/SolveFacade.h"

#include <gtest/gtest.h>

using namespace la;
using namespace la::chc;
using namespace la::smtlib2;

namespace {

ParseResult parseText(const std::string &Text, ChcSystem &System) {
  return parseSmtLib2(Text, System);
}

/// Parses text expected to fail; returns the result for message checks.
ParseResult expectParseError(const std::string &Text) {
  TermManager TM;
  ChcSystem System(TM);
  ParseResult P = parseText(Text, System);
  EXPECT_FALSE(P.Ok) << "expected a parse error for: " << Text;
  return P;
}

//===----------------------------------------------------------------------===//
// Located diagnostics
//===----------------------------------------------------------------------===//

TEST(SmtLib2ParserTest, MalformedSExprHasLocation) {
  ParseResult P = expectParseError("(set-logic HORN)\n(assert (and x");
  EXPECT_NE(P.Message.find("unterminated"), std::string::npos) << P.Message;
  EXPECT_EQ(P.Line, 2u);
  EXPECT_GT(P.Col, 0u);
}

TEST(SmtLib2ParserTest, StrayCloseParenHasLocation) {
  ParseResult P = expectParseError("(set-logic HORN)\n  )");
  EXPECT_NE(P.Message.find("unexpected ')'"), std::string::npos);
  EXPECT_EQ(P.Line, 2u);
  EXPECT_EQ(P.Col, 3u);
}

TEST(SmtLib2ParserTest, UnsupportedLogicIsRejectedWithLocation) {
  ParseResult P = expectParseError("(set-logic LIA)");
  EXPECT_NE(P.Message.find("unsupported logic 'LIA'"), std::string::npos);
  EXPECT_EQ(P.Line, 1u);
}

TEST(SmtLib2ParserTest, UnsupportedSortIsRejected) {
  ParseResult P =
      expectParseError("(set-logic HORN)\n(declare-fun p (Real) Bool)");
  EXPECT_NE(P.Message.find("unsupported sort 'Real'"), std::string::npos);
  EXPECT_EQ(P.Line, 2u);
}

TEST(SmtLib2ParserTest, UnknownSymbolIsRejected) {
  ParseResult P = expectParseError(R"((set-logic HORN)
(declare-fun p (Int) Bool)
(assert (forall ((x Int)) (=> (= y 0) (p x)))))");
  EXPECT_NE(P.Message.find("unknown symbol 'y'"), std::string::npos);
  EXPECT_EQ(P.Line, 3u);
}

TEST(SmtLib2ParserTest, ArityMismatchIsRejected) {
  ParseResult P = expectParseError(R"((set-logic HORN)
(declare-fun p (Int Int) Bool)
(assert (forall ((x Int)) (p x))))");
  EXPECT_NE(P.Message.find("expects 2 arguments, got 1"), std::string::npos);
}

TEST(SmtLib2ParserTest, NonHornHeadIsRejected) {
  ParseResult P = expectParseError(R"((set-logic HORN)
(declare-fun p (Int) Bool)
(declare-fun q (Int) Bool)
(assert (forall ((x Int)) (=> (p x) (or (q x) (= x 0))))))");
  EXPECT_NE(P.Message.find("not a Horn clause"), std::string::npos);
}

TEST(SmtLib2ParserTest, PredicateUnderDisjunctiveBodyIsRejected) {
  ParseResult P = expectParseError(R"((set-logic HORN)
(declare-fun p (Int) Bool)
(declare-fun q (Int) Bool)
(assert (forall ((x Int)) (=> (or (p x) (= x 1)) (q x)))))");
  EXPECT_NE(P.Message.find("not a Horn clause"), std::string::npos);
}

TEST(SmtLib2ParserTest, OverflowingNumeralIsRejected) {
  ParseResult P = expectParseError(R"((set-logic HORN)
(declare-fun p (Int) Bool)
(assert (forall ((x Int)) (=> (= x 99999999999999999999) (p x)))))");
  EXPECT_NE(P.Message.find("64-bit"), std::string::npos);
}

TEST(SmtLib2ParserTest, NonlinearMultiplicationIsRejected) {
  ParseResult P = expectParseError(R"((set-logic HORN)
(declare-fun p (Int Int) Bool)
(assert (forall ((x Int) (y Int)) (=> (= x (* x y)) (p x y)))))");
  EXPECT_NE(P.Message.find("non-linear"), std::string::npos);
}

TEST(SmtLib2ParserTest, DuplicateBinderIsRejected) {
  ParseResult P = expectParseError(R"((set-logic HORN)
(declare-fun p (Int) Bool)
(assert (forall ((x Int) (x Int)) (p x))))");
  EXPECT_NE(P.Message.find("duplicate binder 'x'"), std::string::npos);
}

TEST(SmtLib2ParserTest, ErrorRendersFilenameWhenGiven) {
  ParseResult P = expectParseError("(set-logic LIA)");
  ParseOptions Opts;
  Opts.Filename = "bench.smt2";
  std::string Located = P.error(Opts);
  EXPECT_EQ(Located.rfind("bench.smt2:1:", 0), 0u) << Located;
  EXPECT_EQ(P.error().rfind("line 1", 0), 0u) << P.error();
}

//===----------------------------------------------------------------------===//
// Fragment features
//===----------------------------------------------------------------------===//

TEST(SmtLib2ParserTest, ParsesBoolColumnsLetAndIte) {
  TermManager TM;
  ChcSystem System(TM);
  ParseResult P = parseText(R"((set-logic HORN)
(declare-fun inv (Int Bool) Bool)
(assert (forall ((x Int)) (=> (= x 0) (inv x false))))
(assert (forall ((x Int) (f Bool) (y Int))
  (=> (and (inv x f)
           (let ((step (ite f 2 1))) (= y (+ x step))))
      (inv y (not f)))))
(assert (forall ((x Int) (f Bool)) (=> (inv x f) (>= x 0))))
(check-sat))",
                            System);
  ASSERT_TRUE(P.Ok) << P.error();
  EXPECT_TRUE(P.SawCheckSat);
  EXPECT_TRUE(P.SawLogic);
  EXPECT_EQ(System.predicates().size(), 1u);
  EXPECT_EQ(System.clauses().size(), 3u);
  // The Bool column is 0/1-encoded into the Int-only core language.
  EXPECT_EQ(System.predicates()[0]->arity(), 2u);
}

TEST(SmtLib2ParserTest, LowersDivByConstant) {
  TermManager TM;
  ChcSystem System(TM);
  ParseResult P = parseText(R"((set-logic HORN)
(declare-fun p (Int Int) Bool)
(assert (forall ((a Int) (q Int)) (=> (= q (div a 3)) (p a q)))))",
                            System);
  ASSERT_TRUE(P.Ok) << P.error();
  ASSERT_EQ(System.clauses().size(), 1u);
  // The quotient is a fresh variable defined by a = 3q + (a mod 3).
  std::string Constraint = printTerm(System.clauses()[0].Constraint);
  EXPECT_NE(Constraint.find("(mod "), std::string::npos) << Constraint;
  EXPECT_NE(Constraint.find("div!q"), std::string::npos) << Constraint;
}

TEST(SmtLib2ParserTest, RejectsDivByNonConstant) {
  ParseResult P = expectParseError(R"((set-logic HORN)
(declare-fun p (Int Int) Bool)
(assert (forall ((a Int) (b Int)) (=> (= a (div 10 b)) (p a b)))))");
  EXPECT_NE(P.Message.find("positive constant divisor"), std::string::npos);
}

TEST(SmtLib2ParserTest, ParsesFixedpointDialect) {
  TermManager TM;
  ChcSystem System(TM);
  ParseResult P = parseText(R"(
(declare-rel inv (Int))
(declare-var n Int)
(declare-var m Int)
(rule (=> (= n 0) (inv n)))
(rule (=> (and (inv n) (< n 5) (= m (+ n 1))) (inv m)))
(rule (=> (and (inv n) (> n 5)) false))
(query inv))",
                            System);
  ASSERT_TRUE(P.Ok) << P.error();
  EXPECT_EQ(System.predicates().size(), 1u);
  // Three rules plus the query clause `inv(fresh) -> false`.
  EXPECT_EQ(System.clauses().size(), 4u);
}

TEST(SmtLib2ParserTest, ShadowingBinderIsRenamedApart) {
  TermManager TM;
  ChcSystem System(TM);
  // The global `g` is shadowed by a forall binder of the same name; the
  // clause must quantify over a renamed variable, not capture the global.
  ParseResult P = parseText(R"((set-logic HORN)
(declare-const g Int)
(declare-fun p (Int) Bool)
(assert (forall ((g Int)) (=> (= g 7) (p g)))))",
                            System);
  ASSERT_TRUE(P.Ok) << P.error();
  ASSERT_EQ(System.clauses().size(), 1u);
  const HornClause &C = System.clauses()[0];
  ASSERT_TRUE(C.HeadPred.has_value());
  ASSERT_EQ(C.HeadPred->Args.size(), 1u);
  EXPECT_NE(C.HeadPred->Args[0]->name(), "g");
}

//===----------------------------------------------------------------------===//
// Bundled corpus
//===----------------------------------------------------------------------===//

TEST(Smt2CorpusTest, CoversRequiredShapes) {
  const auto &Benchmarks = corpus::smt2Benchmarks();
  ASSERT_GE(Benchmarks.size(), 6u);
  size_t Safe = 0, Unsafe = 0, MultiPred = 0, Nonlinear = 0;
  for (const corpus::Smt2Benchmark &B : Benchmarks) {
    (B.ExpectedSafe ? Safe : Unsafe)++;
    MultiPred += B.MultiPredicate;
    Nonlinear += B.NonlinearHorn;
  }
  EXPECT_GE(Safe, 1u);
  EXPECT_GE(Unsafe, 1u);
  EXPECT_GE(MultiPred, 1u);
  EXPECT_GE(Nonlinear, 1u);
}

TEST(Smt2CorpusTest, AllBenchmarksSolveWithExpectedVerdicts) {
  solver::SolveOptions Opts;
  Opts.Limits.WallSeconds = 60;
  for (const corpus::Smt2Benchmark &B : corpus::smt2Benchmarks()) {
    solver::SolveResult S = solver::solveFile(B.Path, Opts);
    ASSERT_TRUE(S.Ok) << B.Name << ": " << S.Error;
    EXPECT_EQ(S.Format, solver::SourceFormat::SmtLib2) << B.Name;
    EXPECT_EQ(S.Status,
              B.ExpectedSafe ? ChcResult::Sat : ChcResult::Unsat)
        << B.Name;
    if (S.Status == ChcResult::Sat) {
      EXPECT_TRUE(S.ModelValidated) << B.Name;
    }
  }
}

TEST(Smt2CorpusTest, VerdictsMatchMiniCEquivalents) {
  solver::SolveOptions Opts;
  Opts.Limits.WallSeconds = 60;
  size_t Compared = 0;
  for (const corpus::Smt2Benchmark &B : corpus::smt2Benchmarks()) {
    if (B.MiniCEquivalent.empty())
      continue;
    const corpus::BenchmarkProgram *Prog = corpus::find(B.MiniCEquivalent);
    ASSERT_NE(Prog, nullptr) << B.MiniCEquivalent;
    EXPECT_EQ(Prog->ExpectedSafe, B.ExpectedSafe) << B.Name;

    solver::SolveResult Smt2 = solver::solveFile(B.Path, Opts);
    solver::SolveRequest MiniC;
    MiniC.Source = Prog->Source;
    MiniC.Format = solver::SourceFormat::MiniC;
    MiniC.Options = Opts;
    solver::SolveResult C = solver::solve(MiniC);
    ASSERT_TRUE(Smt2.Ok) << Smt2.Error;
    ASSERT_TRUE(C.Ok) << C.Error;
    EXPECT_EQ(Smt2.Status, C.Status) << B.Name;
    ++Compared;
  }
  EXPECT_GE(Compared, 2u);
}

//===----------------------------------------------------------------------===//
// Printer round-trip
//===----------------------------------------------------------------------===//

TEST(Smt2PrinterTest, RoundTripsMiniCCorpusWithIdenticalVerdicts) {
  // mini-C corpus -> encoded system -> printed SMT-LIB2 -> reparsed ->
  // both solved: the verdicts must agree. Encoder-generated names contain
  // characters outside the SMT-LIB2 simple-symbol alphabet (`#`), so this
  // also exercises |...| quoting.
  const char *Programs[] = {"paper_fig1",    "paper_fig1_unsafe",
                            "lit_cggmp_easy", "pie_abs_value",
                            "dig_affine_line", "mod_even_counter"};
  solver::SolveOptions Opts;
  Opts.Limits.WallSeconds = 60;
  // mod_even_counter needs the divisors of its `%` operations as learner
  // features (the harness normally mines them from the program text).
  Opts.Solver.Learn.ModFeatures = {2, 3};
  for (const char *Name : Programs) {
    const corpus::BenchmarkProgram *Prog = corpus::find(Name);
    ASSERT_NE(Prog, nullptr) << Name;

    TermManager TM;
    ChcSystem Encoded(TM);
    frontend::EncodeResult E = frontend::encodeMiniC(Prog->Source, Encoded);
    ASSERT_TRUE(E.Ok) << Name << ": " << E.Error;

    std::string Printed = printSmtLib2(Encoded);
    EXPECT_NE(Printed.find("(set-logic HORN)"), std::string::npos);
    EXPECT_NE(Printed.find("(check-sat)"), std::string::npos);

    TermManager TM2;
    ChcSystem Reparsed(TM2);
    ParseResult P = parseSmtLib2(Printed, Reparsed);
    ASSERT_TRUE(P.Ok) << Name << ": " << P.error() << "\n" << Printed;
    EXPECT_EQ(Reparsed.clauses().size(), Encoded.clauses().size()) << Name;
    EXPECT_EQ(Reparsed.predicates().size(), Encoded.predicates().size())
        << Name;

    solver::SolveResult Direct = solver::solveSystem(Encoded, Opts);
    solver::SolveResult Round = solver::solveSystem(Reparsed, Opts);
    ASSERT_TRUE(Direct.Ok) << Direct.Error;
    ASSERT_TRUE(Round.Ok) << Round.Error;
    ASSERT_NE(Direct.Status, ChcResult::Unknown) << Name;
    EXPECT_EQ(Direct.Status, Round.Status) << Name;
    EXPECT_EQ(Direct.Status,
              Prog->ExpectedSafe ? ChcResult::Sat : ChcResult::Unsat)
        << Name;
  }
}

TEST(Smt2PrinterTest, QuotesNonSimpleSymbols) {
  TermManager TM;
  ChcSystem System(TM);
  const Predicate *P = System.addPredicate("inv#0", 1);
  HornClause C;
  PredApp App;
  App.Pred = P;
  App.Args.push_back(TM.mkVar("x#y"));
  C.HeadPred = App;
  C.Constraint = TM.mkEq(TM.mkVar("x#y"), TM.mkIntConst(0));
  System.addClause(std::move(C));

  std::string Printed = printSmtLib2(System);
  EXPECT_NE(Printed.find("|inv#0|"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("|x#y|"), std::string::npos) << Printed;

  TermManager TM2;
  ChcSystem Reparsed(TM2);
  ParseResult R = parseSmtLib2(Printed, Reparsed);
  ASSERT_TRUE(R.Ok) << R.error() << "\n" << Printed;
  EXPECT_EQ(Reparsed.predicates().size(), 1u);
  EXPECT_EQ(Reparsed.predicates()[0]->Name, "inv#0");
}

} // namespace
