//===- tests/SmtTest.cpp - Simplex and SmtSolver tests --------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/SmtSolver.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace la;
using namespace la::smt;

namespace {

//===----------------------------------------------------------------------===//
// Simplex
//===----------------------------------------------------------------------===//

TEST(SimplexTest, FeasibleBoxAndDefinedVar) {
  Simplex S;
  Simplex::VarId X = S.addVar();
  Simplex::VarId Y = S.addVar();
  Simplex::VarId Sum = S.addDefinedVar({{X, Rational(1)}, {Y, Rational(1)}});
  Simplex::BoundUndo U1, U2, U3;
  EXPECT_FALSE(S.assertBound(X, true, DeltaRational(Rational(1)), 0, U1));
  EXPECT_FALSE(S.assertBound(Y, true, DeltaRational(Rational(2)), 1, U2));
  EXPECT_FALSE(S.assertBound(Sum, false, DeltaRational(Rational(10)), 2, U3));
  EXPECT_FALSE(S.check().has_value());
  EXPECT_GE(S.value(X), DeltaRational(Rational(1)));
  EXPECT_GE(S.value(Y), DeltaRational(Rational(2)));
  EXPECT_EQ(S.value(Sum), S.value(X) + S.value(Y));
}

TEST(SimplexTest, InfeasibleWithFarkasReasons) {
  // x + y >= 5, x <= 1, y <= 2 is infeasible.
  Simplex S;
  Simplex::VarId X = S.addVar();
  Simplex::VarId Y = S.addVar();
  Simplex::VarId Sum = S.addDefinedVar({{X, Rational(1)}, {Y, Rational(1)}});
  Simplex::BoundUndo U1, U2, U3;
  EXPECT_FALSE(S.assertBound(Sum, true, DeltaRational(Rational(5)), 10, U1));
  EXPECT_FALSE(S.assertBound(X, false, DeltaRational(Rational(1)), 11, U2));
  EXPECT_FALSE(S.assertBound(Y, false, DeltaRational(Rational(2)), 12, U3));
  std::optional<Simplex::Conflict> C = S.check();
  ASSERT_TRUE(C.has_value());
  std::set<int> Reasons;
  for (const auto &[R, Coeff] : C->Reasons) {
    EXPECT_GT(Coeff.signum(), 0);
    Reasons.insert(R);
  }
  EXPECT_EQ(Reasons, (std::set<int>{10, 11, 12}));
}

TEST(SimplexTest, ImmediateBoundClash) {
  Simplex S;
  Simplex::VarId X = S.addVar();
  Simplex::BoundUndo U1, U2;
  EXPECT_FALSE(S.assertBound(X, true, DeltaRational(Rational(3)), 0, U1));
  std::optional<Simplex::Conflict> C =
      S.assertBound(X, false, DeltaRational(Rational(2)), 1, U2);
  ASSERT_TRUE(C.has_value());
  EXPECT_EQ(C->Reasons.size(), 2u);
}

TEST(SimplexTest, BoundRetractionRestoresFeasibility) {
  Simplex S;
  Simplex::VarId X = S.addVar();
  Simplex::VarId Y = S.addVar();
  Simplex::VarId Diff = S.addDefinedVar({{X, Rational(1)}, {Y, Rational(-1)}});
  Simplex::BoundUndo U1, U2, U3;
  EXPECT_FALSE(S.assertBound(Diff, true, DeltaRational(Rational(1)), 0, U1));
  EXPECT_FALSE(S.assertBound(X, false, DeltaRational(Rational(0)), 1, U2));
  EXPECT_FALSE(S.check().has_value());
  // y <= -2 ok; then x >= 5 would clash with x <= 0 -- retract x <= 0 first.
  EXPECT_FALSE(S.assertBound(Y, false, DeltaRational(Rational(-2)), 2, U3));
  EXPECT_FALSE(S.check().has_value());
  S.undoBound(U3);
  S.undoBound(U2);
  Simplex::BoundUndo U4;
  EXPECT_FALSE(S.assertBound(X, true, DeltaRational(Rational(5)), 3, U4));
  EXPECT_FALSE(S.check().has_value());
  EXPECT_GE(S.value(X), DeltaRational(Rational(5)));
}

TEST(SimplexTest, StrictBoundsViaDelta) {
  // x > 0 and x < 1 is satisfiable over the rationals.
  Simplex S;
  Simplex::VarId X = S.addVar();
  Simplex::BoundUndo U1, U2;
  EXPECT_FALSE(S.assertBound(X, true,
                             DeltaRational(Rational(0), Rational(1)), 0, U1));
  EXPECT_FALSE(S.assertBound(X, false,
                             DeltaRational(Rational(1), Rational(-1)), 1, U2));
  EXPECT_FALSE(S.check().has_value());
  // But x > 0 and x < 0 is not.
  Simplex S2;
  Simplex::VarId Z = S2.addVar();
  Simplex::BoundUndo V1, V2;
  EXPECT_FALSE(S2.assertBound(Z, true,
                              DeltaRational(Rational(0), Rational(1)), 0, V1));
  EXPECT_TRUE(S2.assertBound(Z, false,
                             DeltaRational(Rational(0), Rational(-1)), 1, V2)
                  .has_value());
}

//===----------------------------------------------------------------------===//
// SmtSolver basics
//===----------------------------------------------------------------------===//

class SmtTest : public ::testing::Test {
protected:
  TermManager TM;
  const Term *X = TM.mkVar("x");
  const Term *Y = TM.mkVar("y");
  const Term *Z = TM.mkVar("z");

  SmtResult checkOne(const Term *F, SmtSolver *Keep = nullptr) {
    if (Keep) {
      Keep->assertFormula(F);
      return Keep->check();
    }
    SmtSolver S(TM);
    S.assertFormula(F);
    return S.check();
  }
};

TEST_F(SmtTest, TrivialSatUnsat) {
  EXPECT_EQ(checkOne(TM.mkTrue()), SmtResult::Sat);
  EXPECT_EQ(checkOne(TM.mkFalse()), SmtResult::Unsat);
  EXPECT_EQ(checkOne(TM.mkLe(X, TM.mkIntConst(3))), SmtResult::Sat);
  EXPECT_EQ(checkOne(TM.mkAnd(TM.mkLe(X, TM.mkIntConst(1)),
                              TM.mkGe(X, TM.mkIntConst(2)))),
            SmtResult::Unsat);
}

TEST_F(SmtTest, ModelSatisfiesFormula) {
  const Term *F = TM.mkAnd(
      {TM.mkGe(X, TM.mkIntConst(3)), TM.mkLe(TM.mkAdd(X, Y), TM.mkIntConst(5)),
       TM.mkEq(Z, TM.mkAdd(X, TM.mkMul(Rational(2), Y)))});
  SmtSolver S(TM);
  S.assertFormula(F);
  ASSERT_EQ(S.check(), SmtResult::Sat);
  EXPECT_TRUE(evalFormula(F, S.model()));
  EXPECT_EQ(S.evalInModel(TM.mkAdd(X, Y)),
            S.evalInModel(X) + S.evalInModel(Y));
}

TEST_F(SmtTest, DisequalityAndBooleanStructure) {
  // (x = y or x = y + 1) and x != y  ==> x = y + 1.
  const Term *F = TM.mkAnd(
      {TM.mkOr(TM.mkEq(X, Y), TM.mkEq(X, TM.mkAdd(Y, TM.mkIntConst(1)))),
       TM.mkNe(X, Y)});
  SmtSolver S(TM);
  S.assertFormula(F);
  ASSERT_EQ(S.check(), SmtResult::Sat);
  EXPECT_EQ(S.evalInModel(X), S.evalInModel(Y) + Rational(1));
}

TEST_F(SmtTest, IntegralityForcesBranching) {
  // 2x = 2y + 1 has no integer solution (x - y = 1/2).
  const Term *F = TM.mkEq(TM.mkMul(Rational(2), X),
                          TM.mkAdd(TM.mkMul(Rational(2), Y), TM.mkIntConst(1)));
  EXPECT_EQ(checkOne(F), SmtResult::Unsat);
}

TEST_F(SmtTest, IntegralityBranchFindsLatticePoint) {
  // 3x + 3y = 6 with 0 < x < 2 forces x = 1 over the integers.
  const Term *F = TM.mkAnd({TM.mkEq(TM.mkAdd(TM.mkMul(Rational(3), X),
                                             TM.mkMul(Rational(3), Y)),
                                    TM.mkIntConst(6)),
                            TM.mkGt(X, TM.mkIntConst(0)),
                            TM.mkLt(X, TM.mkIntConst(2))});
  SmtSolver S(TM);
  S.assertFormula(F);
  ASSERT_EQ(S.check(), SmtResult::Sat);
  EXPECT_EQ(S.evalInModel(X), Rational(1));
  EXPECT_EQ(S.evalInModel(Y), Rational(1));
}

TEST_F(SmtTest, FractionalVertexRequiresSplit) {
  // x + 2y <= 1, -x + 2y <= 1, 2y >= 1: LP vertex has y = 1/2; the integer
  // solver must branch and discover y >= 1 is forced... which conflicts.
  const Term *TwoY = TM.mkMul(Rational(2), Y);
  const Term *F = TM.mkAnd({TM.mkLe(TM.mkAdd(X, TwoY), TM.mkIntConst(1)),
                            TM.mkLe(TM.mkAdd(TM.mkNeg(X), TwoY),
                                    TM.mkIntConst(1)),
                            TM.mkGe(TwoY, TM.mkIntConst(1))});
  EXPECT_EQ(checkOne(F), SmtResult::Unsat);
}

TEST_F(SmtTest, ModLowering) {
  // x mod 2 = 1 and 4 <= x <= 6 gives x = 5.
  const Term *F = TM.mkAnd({TM.mkEq(TM.mkMod(X, BigInt(2)), TM.mkIntConst(1)),
                            TM.mkGe(X, TM.mkIntConst(4)),
                            TM.mkLe(X, TM.mkIntConst(6))});
  SmtSolver S(TM);
  S.assertFormula(F);
  ASSERT_EQ(S.check(), SmtResult::Sat);
  EXPECT_EQ(S.evalInModel(X), Rational(5));
}

TEST_F(SmtTest, ModContradiction) {
  const Term *F = TM.mkAnd(TM.mkEq(TM.mkMod(X, BigInt(2)), TM.mkIntConst(0)),
                           TM.mkEq(TM.mkMod(X, BigInt(2)), TM.mkIntConst(1)));
  EXPECT_EQ(checkOne(F), SmtResult::Unsat);
}

TEST_F(SmtTest, ModOfNegativeIsEuclidean) {
  // x < 0 and x mod 3 = 2 and x >= -4  ==>  x = -4 (since -4 mod 3 == 2).
  const Term *F = TM.mkAnd({TM.mkLt(X, TM.mkIntConst(0)),
                            TM.mkEq(TM.mkMod(X, BigInt(3)), TM.mkIntConst(2)),
                            TM.mkGe(X, TM.mkIntConst(-4))});
  SmtSolver S(TM);
  S.assertFormula(F);
  ASSERT_EQ(S.check(), SmtResult::Sat);
  // Solutions are x in {-4, -1}; both satisfy Euclidean mod semantics.
  Rational V = S.evalInModel(X);
  EXPECT_TRUE(V == Rational(-4) || V == Rational(-1)) << V.toString();
  EXPECT_EQ(Rational(V.numerator().euclideanMod(BigInt(3))), Rational(2));
}

TEST_F(SmtTest, UnconstrainedVarsGetModelValues) {
  SmtSolver S(TM);
  S.assertFormula(TM.mkLe(X, TM.mkIntConst(0)));
  ASSERT_EQ(S.check(), SmtResult::Sat);
  // y never occurs: evalInModel defaults it to 0.
  EXPECT_EQ(S.evalInModel(Y), Rational(0));
}

TEST_F(SmtTest, LargeCoefficients) {
  // 1000000007*x - 1000000007*y = 1000000007  =>  x - y = 1.
  Rational Big(BigInt(1000000007));
  const Term *F =
      TM.mkEq(TM.mkSub(TM.mkMul(Big, X), TM.mkMul(Big, Y)),
              TM.mkMul(Big, TM.mkIntConst(1)));
  SmtSolver S(TM);
  S.assertFormula(F);
  ASSERT_EQ(S.check(), SmtResult::Sat);
  EXPECT_EQ(S.evalInModel(X) - S.evalInModel(Y), Rational(1));
}

//===----------------------------------------------------------------------===//
// Property test: agreement with brute force over a bounded box
//===----------------------------------------------------------------------===//

class SmtRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SmtRandomTest, AgreesWithBruteForceOnBox) {
  Random Rng(GetParam() * 977 + 13);
  TermManager TM;
  const Term *Vars[3] = {TM.mkVar("a"), TM.mkVar("b"), TM.mkVar("c")};
  const int Lo = -3, Hi = 3;

  // Random atom: c0*a + c1*b + c2*c + k REL 0.
  auto RandomAtom = [&]() -> const Term * {
    std::vector<const Term *> Parts;
    for (const Term *V : Vars)
      Parts.push_back(TM.mkMul(Rational(Rng.nextInRange(-3, 3)), V));
    Parts.push_back(TM.mkIntConst(Rng.nextInRange(-4, 4)));
    const Term *E = TM.mkAdd(std::move(Parts));
    switch (Rng.nextBounded(3)) {
    case 0:
      return TM.mkLe(E, TM.mkIntConst(0));
    case 1:
      return TM.mkLt(E, TM.mkIntConst(0));
    default:
      return TM.mkEq(E, TM.mkIntConst(0));
    }
  };

  // Random boolean structure of depth 2.
  std::function<const Term *(int)> RandomFormula = [&](int Depth) {
    if (Depth == 0)
      return RandomAtom();
    switch (Rng.nextBounded(3)) {
    case 0: {
      return TM.mkAnd(RandomFormula(Depth - 1), RandomFormula(Depth - 1));
    }
    case 1:
      return TM.mkOr(RandomFormula(Depth - 1), RandomFormula(Depth - 1));
    default:
      return TM.mkNot(RandomFormula(Depth - 1));
    }
  };

  const Term *Core = RandomFormula(2);
  std::vector<const Term *> Conj{Core};
  for (const Term *V : Vars) {
    Conj.push_back(TM.mkGe(V, TM.mkIntConst(Lo)));
    Conj.push_back(TM.mkLe(V, TM.mkIntConst(Hi)));
  }
  const Term *F = TM.mkAnd(Conj);

  // Brute force over the box.
  bool BruteSat = false;
  for (int A = Lo; A <= Hi && !BruteSat; ++A)
    for (int B = Lo; B <= Hi && !BruteSat; ++B)
      for (int C = Lo; C <= Hi && !BruteSat; ++C) {
        std::unordered_map<const Term *, Rational> Asg{
            {Vars[0], Rational(A)}, {Vars[1], Rational(B)},
            {Vars[2], Rational(C)}};
        BruteSat = evalFormula(F, Asg);
      }

  SmtSolver S(TM);
  S.assertFormula(F);
  SmtResult R = S.check();
  ASSERT_NE(R, SmtResult::Unknown);
  EXPECT_EQ(R == SmtResult::Sat, BruteSat) << "seed " << GetParam();
  if (R == SmtResult::Sat) {
    EXPECT_TRUE(evalFormula(F, S.model()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmtRandomTest, ::testing::Range(0, 80));

//===----------------------------------------------------------------------===//
// Incremental solving: push / assert / check / pop
//===----------------------------------------------------------------------===//

TEST_F(SmtTest, PushPopSatUnsatSatFlip) {
  SmtSolver S(TM);
  S.assertFormula(TM.mkLe(X, TM.mkIntConst(3)));
  ASSERT_EQ(S.check(), SmtResult::Sat);

  S.push();
  S.assertFormula(TM.mkGe(X, TM.mkIntConst(10))); // clashes with x <= 3
  EXPECT_EQ(S.check(), SmtResult::Unsat);
  S.pop();

  // The scoped assertion is gone; the permanent one remains.
  ASSERT_EQ(S.check(), SmtResult::Sat);
  EXPECT_LE(S.evalInModel(X), Rational(3));

  // And a compatible scoped assertion is honoured.
  S.push();
  S.assertFormula(TM.mkGe(X, TM.mkIntConst(2)));
  ASSERT_EQ(S.check(), SmtResult::Sat);
  EXPECT_GE(S.evalInModel(X), Rational(2));
  EXPECT_LE(S.evalInModel(X), Rational(3));
  S.pop();
}

TEST_F(SmtTest, ReassertingSameAtomInternsOnce) {
  SmtSolver S(TM);
  const Term *Atom = TM.mkGe(TM.mkAdd(X, Y), TM.mkIntConst(4));
  S.assertFormula(Atom);
  ASSERT_EQ(S.check(), SmtResult::Sat);
  uint64_t AtomsAfterFirst = S.stats().NumAtoms;

  // Re-asserting the identical atom in later scopes must reuse the interned
  // encoding: no new theory atoms, no new tableau rows.
  for (int I = 0; I < 5; ++I) {
    S.push();
    S.assertFormula(Atom);
    ASSERT_EQ(S.check(), SmtResult::Sat);
    S.pop();
  }
  EXPECT_EQ(S.stats().NumAtoms, AtomsAfterFirst);
}

TEST_F(SmtTest, NestedScopes) {
  SmtSolver S(TM);
  S.assertFormula(TM.mkGe(X, TM.mkIntConst(0)));
  S.push();
  S.assertFormula(TM.mkLe(X, TM.mkIntConst(5)));
  ASSERT_EQ(S.check(), SmtResult::Sat);
  S.push();
  S.assertFormula(TM.mkGe(X, TM.mkIntConst(6)));
  EXPECT_EQ(S.check(), SmtResult::Unsat);
  S.pop();
  // Inner contradiction retracted; x in [0, 5] again.
  ASSERT_EQ(S.check(), SmtResult::Sat);
  EXPECT_LE(S.evalInModel(X), Rational(5));
  S.pop();
  // x only bounded below now.
  S.push();
  S.assertFormula(TM.mkGe(X, TM.mkIntConst(100)));
  ASSERT_EQ(S.check(), SmtResult::Sat);
  EXPECT_GE(S.evalInModel(X), Rational(100));
  S.pop();
  EXPECT_EQ(S.numScopes(), 0u);
}

TEST_F(SmtTest, PermanentAssertionBetweenScopes) {
  SmtSolver S(TM);
  S.assertFormula(TM.mkGe(X, TM.mkIntConst(0)));
  S.push();
  S.assertFormula(TM.mkLe(X, TM.mkIntConst(10)));
  ASSERT_EQ(S.check(), SmtResult::Sat);
  S.pop();
  // Permanent assertion added after a scope was used and closed.
  S.assertFormula(TM.mkLe(X, TM.mkIntConst(7)));
  ASSERT_EQ(S.check(), SmtResult::Sat);
  EXPECT_LE(S.evalInModel(X), Rational(7));
  S.push();
  S.assertFormula(TM.mkGe(X, TM.mkIntConst(8)));
  EXPECT_EQ(S.check(), SmtResult::Unsat);
  S.pop();
  ASSERT_EQ(S.check(), SmtResult::Sat);
}

TEST_F(SmtTest, ScopedBooleanStructureAndMod) {
  SmtSolver S(TM);
  // Permanent skeleton: x in [0, 10].
  S.assertFormula(TM.mkAnd(TM.mkGe(X, TM.mkIntConst(0)),
                           TM.mkLe(X, TM.mkIntConst(10))));
  S.push();
  // Scoped: x is odd and x >= 9, forcing x = 9.
  S.assertFormula(TM.mkAnd(TM.mkEq(TM.mkMod(X, BigInt(2)), TM.mkIntConst(1)),
                           TM.mkGe(X, TM.mkIntConst(9))));
  ASSERT_EQ(S.check(), SmtResult::Sat);
  EXPECT_EQ(S.evalInModel(X), Rational(9));
  S.pop();
  S.push();
  // Scoped: x even and x >= 10 forces x = 10.
  S.assertFormula(TM.mkAnd(TM.mkEq(TM.mkMod(X, BigInt(2)), TM.mkIntConst(0)),
                           TM.mkGe(X, TM.mkIntConst(10))));
  ASSERT_EQ(S.check(), SmtResult::Sat);
  EXPECT_EQ(S.evalInModel(X), Rational(10));
  S.pop();
}

TEST_F(SmtTest, StatsCountScopesAndChecks) {
  SmtSolver S(TM);
  S.assertFormula(TM.mkLe(X, TM.mkIntConst(1)));
  S.check();
  S.push();
  S.assertFormula(TM.mkGe(X, TM.mkIntConst(0)));
  S.check();
  S.pop();
  SmtSolver::Stats St = S.stats();
  EXPECT_EQ(St.Checks, 2u);
  EXPECT_EQ(St.ScopePushes, 1u);
  EXPECT_EQ(St.ScopePops, 1u);
}

/// Differential property: a persistent incremental solver answering
/// push/assert/check/pop sequences must agree query-for-query with a fresh
/// one-shot solver, on ~200 random formulas over a shared skeleton.
TEST(SmtIncrementalDifferentialTest, AgreesWithOneShot) {
  Random Rng(20260806);
  TermManager TM;
  const Term *Vars[3] = {TM.mkVar("da"), TM.mkVar("db"), TM.mkVar("dc")};

  auto RandomAtom = [&]() -> const Term * {
    std::vector<const Term *> Parts;
    for (const Term *V : Vars)
      Parts.push_back(TM.mkMul(Rational(Rng.nextInRange(-3, 3)), V));
    Parts.push_back(TM.mkIntConst(Rng.nextInRange(-4, 4)));
    const Term *E = TM.mkAdd(std::move(Parts));
    switch (Rng.nextBounded(3)) {
    case 0:
      return TM.mkLe(E, TM.mkIntConst(0));
    case 1:
      return TM.mkLt(E, TM.mkIntConst(0));
    default:
      return TM.mkEq(E, TM.mkIntConst(0));
    }
  };
  std::function<const Term *(int)> RandomFormula = [&](int Depth) {
    if (Depth == 0)
      return RandomAtom();
    switch (Rng.nextBounded(3)) {
    case 0:
      return TM.mkAnd(RandomFormula(Depth - 1), RandomFormula(Depth - 1));
    case 1:
      return TM.mkOr(RandomFormula(Depth - 1), RandomFormula(Depth - 1));
    default:
      return TM.mkNot(RandomFormula(Depth - 1));
    }
  };

  // Shared permanent skeleton, as the CHC checker asserts a clause body once.
  std::vector<const Term *> Box;
  for (const Term *V : Vars) {
    Box.push_back(TM.mkGe(V, TM.mkIntConst(-4)));
    Box.push_back(TM.mkLe(V, TM.mkIntConst(4)));
  }
  const Term *Skeleton = TM.mkAnd(Box);

  SmtSolver Incremental(TM);
  Incremental.assertFormula(Skeleton);

  for (int Query = 0; Query < 200; ++Query) {
    const Term *F = RandomFormula(2);

    Incremental.push();
    Incremental.assertFormula(F);
    SmtResult RInc = Incremental.check();
    if (RInc == SmtResult::Sat) {
      EXPECT_TRUE(evalFormula(TM.mkAnd(Skeleton, F), Incremental.model()))
          << "query " << Query;
    }
    Incremental.pop();

    SmtSolver OneShot(TM);
    OneShot.assertFormula(Skeleton);
    OneShot.assertFormula(F);
    SmtResult ROne = OneShot.check();

    ASSERT_NE(RInc, SmtResult::Unknown) << "query " << Query;
    ASSERT_NE(ROne, SmtResult::Unknown) << "query " << Query;
    EXPECT_EQ(RInc, ROne) << "query " << Query;
  }

  // The skeleton's atoms were interned once; only the per-query formulas
  // contributed new atoms, and scope traffic matches the loop.
  SmtSolver::Stats St = Incremental.stats();
  EXPECT_EQ(St.ScopePushes, 200u);
  EXPECT_EQ(St.ScopePops, 200u);
  EXPECT_EQ(St.Checks, 200u);
}

//===----------------------------------------------------------------------===//
// checkLinearConjunction
//===----------------------------------------------------------------------===//

class ConjunctionTest : public ::testing::Test {
protected:
  TermManager TM;
  const Term *X = TM.mkVar("x");
  const Term *Y = TM.mkVar("y");

  LinearAtom atom(std::vector<std::pair<const Term *, int>> Coeffs, int Const,
                  LinRel Rel) {
    LinearAtom A;
    for (auto &[V, C] : Coeffs)
      A.Expr.addVar(V, Rational(C));
    A.Expr.addConstant(Rational(Const));
    A.Rel = Rel;
    return A;
  }
};

TEST_F(ConjunctionTest, SatGivesModel) {
  std::vector<LinearAtom> Atoms{
      atom({{X, 1}, {Y, 1}}, -3, LinRel::Le),  // x + y <= 3
      atom({{X, -1}}, 1, LinRel::Lt),          // x > 1
      atom({{Y, 1}}, 0, LinRel::Eq),           // y = 0
  };
  ConjunctionResult R = checkLinearConjunction(Atoms);
  ASSERT_TRUE(R.Sat);
  for (const LinearAtom &A : Atoms) {
    EXPECT_TRUE(A.holds(R.Model));
  }
}

TEST_F(ConjunctionTest, UnsatGivesValidFarkasCertificate) {
  std::vector<LinearAtom> Atoms{
      atom({{X, 1}, {Y, 1}}, -1, LinRel::Le),   // x + y <= 1
      atom({{X, -1}}, 1, LinRel::Le),           // x >= 1
      atom({{Y, -1}}, 1, LinRel::Le),           // y >= 1
  };
  ConjunctionResult R = checkLinearConjunction(Atoms);
  ASSERT_FALSE(R.Sat);
  // Verify the certificate: sum coeff_i * Expr_i must be a constant > 0
  // (all variables cancel), as coeff_i * (Expr_i <= 0) sums to 0 < const <= 0.
  LinearExpr Sum;
  bool AnyStrict = false;
  for (size_t I = 0; I < Atoms.size(); ++I) {
    EXPECT_GE(R.FarkasCoeffs[I].signum(), 0);
    if (R.FarkasCoeffs[I].isZero())
      continue;
    Sum = Sum + Atoms[I].Expr.scaled(R.FarkasCoeffs[I]);
    AnyStrict |= Atoms[I].Rel == LinRel::Lt;
  }
  EXPECT_TRUE(Sum.coefficients().empty());
  if (AnyStrict)
    EXPECT_GE(Sum.constant().signum(), 0);
  else
    EXPECT_GT(Sum.constant().signum(), 0);
}

TEST_F(ConjunctionTest, StrictCycleUnsat) {
  // x < y, y < x.
  std::vector<LinearAtom> Atoms{
      atom({{X, 1}, {Y, -1}}, 0, LinRel::Lt),
      atom({{Y, 1}, {X, -1}}, 0, LinRel::Lt),
  };
  ConjunctionResult R = checkLinearConjunction(Atoms);
  EXPECT_FALSE(R.Sat);
}

TEST_F(ConjunctionTest, ConstantFalseAtom) {
  std::vector<LinearAtom> Atoms{atom({}, 1, LinRel::Le)}; // 1 <= 0
  ConjunctionResult R = checkLinearConjunction(Atoms);
  ASSERT_FALSE(R.Sat);
  EXPECT_GT(R.FarkasCoeffs[0].signum(), 0);
}

TEST_F(ConjunctionTest, RationalModelForStrictSystem) {
  // 0 < x and x < 1: needs a fractional model.
  std::vector<LinearAtom> Atoms{
      atom({{X, -1}}, 0, LinRel::Lt), // -x < 0
      atom({{X, 1}}, -1, LinRel::Lt), // x - 1 < 0
  };
  ConjunctionResult R = checkLinearConjunction(Atoms);
  ASSERT_TRUE(R.Sat);
  Rational V = R.Model.at(X);
  EXPECT_GT(V.signum(), 0);
  EXPECT_LT(V, Rational(1));
}

} // namespace

namespace {

/// Regression: this VC (from the paper's Fig. 4 program under a learned
/// candidate invariant) made naive branch-and-bound drift along an
/// unbounded ray of the polyhedron; feasibility diving must solve it fast.
TEST(SmtRegressionTest, BranchAndBoundDoesNotDriftOnFig4Vc) {
  TermManager TM;
  const Term *X = TM.mkVar("rx"), *Y = TM.mkVar("ry"), *I = TM.mkVar("ri"),
             *N = TM.mkVar("rn");
  auto Inv = [&](const Term *V0, const Term *V1, const Term *V2,
                 const Term *V3) {
    return TM.mkLe(TM.mkAdd({V0, TM.mkMul(Rational(-8), V1),
                             TM.mkMul(Rational(3), V2),
                             TM.mkMul(Rational(-6), V3)}),
                   TM.mkIntConst(0));
  };
  const Term *F = TM.mkAnd(
      {Inv(X, Y, I, N), TM.mkGe(I, N),
       TM.mkNot(TM.mkOr(TM.mkNe(TM.mkMod(I, BigInt(2)), TM.mkIntConst(0)),
                        TM.mkEq(X, TM.mkMul(Rational(2), Y))))});
  SmtSolver S(TM);
  S.assertFormula(F);
  ASSERT_EQ(S.check(), SmtResult::Sat);
  // The model must genuinely satisfy the formula.
  EXPECT_TRUE(evalFormula(F, S.model()));
  // Diving should keep the search tiny (hundreds, not tens of thousands).
  EXPECT_LT(S.stats().NumBranchSplits, 100u);
}

/// Regression: congruence conflicts through small-range remainders
/// (r in [1,2] forced to be a multiple of 3) must be refuted by the
/// integer-equation case enumeration, not left to diverge.
TEST(SmtRegressionTest, CongruenceConflictRefuted) {
  TermManager TM;
  const Term *X = TM.mkVar("cx");
  // x = 0 (mod 3) and x = 1 (mod 3) simultaneously.
  const Term *F =
      TM.mkAnd(TM.mkEq(TM.mkMod(X, BigInt(3)), TM.mkIntConst(0)),
               TM.mkEq(TM.mkMod(TM.mkAdd(X, TM.mkIntConst(3)), BigInt(3)),
                       TM.mkIntConst(1)));
  SmtSolver S(TM);
  S.assertFormula(F);
  EXPECT_EQ(S.check(), SmtResult::Unsat);
}

/// Property: after a successful check(), every simplex variable satisfies
/// its asserted bounds, under random bound assertion/retraction traffic.
class SimplexPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplexPropertyTest, ValuesRespectBoundsAfterCheck) {
  Random Rng(GetParam() * 131 + 7);
  Simplex S;
  std::vector<Simplex::VarId> Vars;
  for (int I = 0; I < 6; ++I)
    Vars.push_back(S.addVar());
  // A few random defined sums.
  for (int I = 0; I < 4; ++I) {
    Simplex::VarId A = Vars[Rng.nextBounded(6)];
    Simplex::VarId B = Vars[Rng.nextBounded(6)];
    Vars.push_back(S.addDefinedVar(
        {{A, Rational(Rng.nextInRange(1, 3))},
         {B, Rational(Rng.nextInRange(-3, -1))}}));
  }
  std::vector<Simplex::BoundUndo> Undos;
  bool Feasible = true;
  for (int Step = 0; Step < 60 && Feasible; ++Step) {
    if (!Undos.empty() && Rng.nextBounded(4) == 0) {
      S.undoBound(Undos.back());
      Undos.pop_back();
      continue;
    }
    Simplex::VarId V = Vars[Rng.nextBounded(Vars.size())];
    Simplex::BoundUndo Undo;
    bool IsLower = Rng.nextBounded(2) == 0;
    auto Clash = S.assertBound(
        V, IsLower, DeltaRational(Rational(Rng.nextInRange(-10, 10))),
        Step, Undo);
    Undos.push_back(Undo);
    if (Clash || S.check().has_value()) {
      Feasible = false;
      break;
    }
    // Invariant: the assignment meets every present bound.
    for (Simplex::VarId W = 0; W < S.numVars(); ++W) {
      if (S.lowerBound(W).Present) {
        EXPECT_GE(S.value(W), S.lowerBound(W).Value) << "var " << W;
      }
      if (S.upperBound(W).Present) {
        EXPECT_LE(S.value(W), S.upperBound(W).Value) << "var " << W;
      }
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexPropertyTest, ::testing::Range(0, 25));

} // namespace
