//===- tests/InlineTest.cpp - Clause inlining / pred elimination tests ----===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests of `analysis::inlineSystem` (candidate selection, residual
/// construction, witness back-translation) plus the corpus differential
/// suite: every sampled program must keep its verdict with inlining on and
/// off, and every back-translated model must re-verify clause by clause on
/// the *original* system.
///
//===----------------------------------------------------------------------===//

#include "analysis/InlinePass.h"
#include "chc/ChcParser.h"
#include "corpus/Harness.h"
#include "frontend/Encoder.h"
#include "solver/DataDrivenSolver.h"

#include <gtest/gtest.h>

using namespace la;
using namespace la::analysis;
using namespace la::chc;

namespace {

const Predicate *findPred(const ChcSystem &System, const std::string &Name) {
  for (const Predicate *P : System.predicates())
    if (P->Name == Name)
      return P;
  return nullptr;
}

ChcParseResult parse(const char *Text, ChcSystem &System) {
  return parseChcText(Text, System);
}

/// `mid` and `out` form a chain off the loop invariant; only `mid` may be
/// inlined (`out` sits in the query body).
constexpr const char *ChainSystem = R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(declare-fun mid (Int) Bool)
(declare-fun out (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (< n 10) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int) (a Int)) (=> (and (inv n) (= a (+ n 2))) (mid a))))
(assert (forall ((b Int) (c Int)) (=> (and (mid b) (= c (+ b 3))) (out c))))
(assert (forall ((c Int)) (=> (out c) (<= c 15))))
)";

TEST(InlineTest, SingleDefPredicateIsInlined) {
  TermManager TM;
  ChcSystem System(TM);
  ASSERT_TRUE(parse(ChainSystem, System).Ok);

  InlineResult R = inlineSystem(System);
  ASSERT_TRUE(R.System != nullptr);
  ASSERT_TRUE(R.Map != nullptr);

  const Predicate *Mid = findPred(System, "mid");
  const Predicate *Out = findPred(System, "out");
  EXPECT_TRUE(R.Map->Eliminated[Mid->Index]);
  EXPECT_FALSE(R.Map->Eliminated[Out->Index]); // query-body predicate
  EXPECT_EQ(R.Map->numEliminated(), 1u);
  // mid's defining clause dropped out of the system.
  EXPECT_EQ(R.System->clauses().size(), System.clauses().size() - 1);

  // The recorded definition depends on `inv` only, with a parameter-only
  // residual.
  const InlineDef &D = R.Map->Defs[R.Map->DefOf[Mid->Index]];
  EXPECT_EQ(D.Pred, Mid);
  ASSERT_EQ(D.Deps.size(), 1u);
  EXPECT_EQ(D.Deps[0].Pred->Name, "inv");
  ASSERT_TRUE(D.Residual != nullptr);
  for (const Term *V : TM.collectVars(D.Residual))
    EXPECT_EQ(V, Mid->Params[0]);

  // No transformed clause mentions mid.
  for (const HornClause &C : R.System->clauses()) {
    EXPECT_TRUE(!C.HeadPred || C.HeadPred->Pred->Name != "mid");
    for (const PredApp &App : C.Body)
      EXPECT_NE(App.Pred->Name, "mid");
  }
}

TEST(InlineTest, SelfRecursivePredicateIsNotInlined) {
  TermManager TM;
  ChcSystem System(TM);
  ASSERT_TRUE(parse(R"(
(set-logic HORN)
(declare-fun p (Int) Bool)
(assert (forall ((n Int)) (=> (and (p n) (< n 5)) (p (+ n 1)))))
(assert (forall ((n Int)) (=> (p n) (>= n 0))))
)",
                    System)
                  .Ok);
  InlineResult R = inlineSystem(System);
  EXPECT_TRUE(R.System == nullptr);
  EXPECT_TRUE(R.Map == nullptr);
}

TEST(InlineTest, SingleDefPredicateOnCycleThroughSurvivorIsInlined) {
  TermManager TM;
  ChcSystem System(TM);
  // `odd` has exactly one defining clause and sits on the even/odd cycle,
  // but the cycle runs through `even`, which survives (two defining
  // clauses). Unfolding `odd`'s sole definition at its sole use is plain
  // resolution and stays sound; the collapsed system steps `even` by 2.
  ASSERT_TRUE(parse(R"(
(set-logic HORN)
(declare-fun even (Int) Bool)
(declare-fun odd (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (even n))))
(assert (forall ((n Int)) (=> (even n) (odd (+ n 1)))))
(assert (forall ((n Int)) (=> (odd n) (even (+ n 1)))))
(assert (forall ((n Int)) (=> (even n) (>= n 0))))
)",
                    System)
                  .Ok);
  InlineResult R = inlineSystem(System);
  ASSERT_NE(R.System, nullptr);
  EXPECT_EQ(R.Map->numEliminated(), 1u);
  for (const HornClause &C : R.System->clauses()) {
    EXPECT_TRUE(!C.HeadPred || C.HeadPred->Pred->Name != "odd");
    for (const PredApp &App : C.Body)
      EXPECT_NE(App.Pred->Name, "odd");
  }
}

TEST(InlineTest, MutuallyRecursiveCandidatesAreNotInlined) {
  TermManager TM;
  ChcSystem System(TM);
  // `p` and `q` each have exactly one defining clause and define each
  // other — a cycle entirely within the candidate set admits no
  // processing order, so both must be dropped. `r` is query-anchored.
  ASSERT_TRUE(parse(R"(
(set-logic HORN)
(declare-fun p (Int) Bool)
(declare-fun q (Int) Bool)
(declare-fun r (Int) Bool)
(assert (forall ((n Int)) (=> (and (q n) (< n 10)) (p (+ n 1)))))
(assert (forall ((n Int)) (=> (p n) (q (+ n 1)))))
(assert (forall ((n Int)) (=> (p n) (r n))))
(assert (forall ((n Int)) (=> (r n) (>= n 0))))
)",
                    System)
                  .Ok);
  InlineResult R = inlineSystem(System);
  EXPECT_TRUE(R.System == nullptr);
  EXPECT_TRUE(R.Map == nullptr);
}

TEST(InlineTest, QueryBodyPredicateIsNotInlined) {
  TermManager TM;
  ChcSystem System(TM);
  ASSERT_TRUE(parse(R"(
(set-logic HORN)
(declare-fun p (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (p n))))
(assert (forall ((n Int)) (=> (p n) (>= n 0))))
)",
                    System)
                  .Ok);
  InlineResult R = inlineSystem(System);
  EXPECT_TRUE(R.System == nullptr);
  EXPECT_TRUE(R.Map == nullptr);
}

TEST(InlineTest, MultiDefinitionPredicateIsNotInlined) {
  TermManager TM;
  ChcSystem System(TM);
  // `p` has two defining clauses; `q` is single-definition but appears in
  // the query body. Nothing may be inlined.
  ASSERT_TRUE(parse(R"(
(set-logic HORN)
(declare-fun p (Int) Bool)
(declare-fun q (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (p n))))
(assert (forall ((n Int)) (=> (= n 1) (p n))))
(assert (forall ((n Int)) (=> (p n) (q n))))
(assert (forall ((n Int)) (=> (q n) (>= n 0))))
)",
                    System)
                  .Ok);
  InlineResult R = inlineSystem(System);
  EXPECT_TRUE(R.System == nullptr);
  EXPECT_TRUE(R.Map == nullptr);
}

TEST(InlineTest, FloatingConjunctIsDroppedWhenSatisfiable) {
  TermManager TM;
  ChcSystem System(TM);
  // `k` is not determined by p's parameter, but `k >= 0` is satisfiable on
  // its own, so it factors out of the implicit existential.
  ASSERT_TRUE(parse(R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(declare-fun p (Int) Bool)
(declare-fun q (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (< n 4) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int) (a Int) (k Int))
  (=> (and (inv n) (>= k 0) (= a (+ n 1))) (p a))))
(assert (forall ((b Int)) (=> (p b) (q b))))
(assert (forall ((b Int)) (=> (q b) (<= b 5))))
)",
                    System)
                  .Ok);
  size_t Checks = 0;
  InlineResult R = inlineSystem(System, {}, &Checks);
  ASSERT_TRUE(R.Map != nullptr);
  EXPECT_TRUE(R.Map->Eliminated[findPred(System, "p")->Index]);
  EXPECT_EQ(Checks, 1u); // one satisfiability check for the floating part
}

TEST(InlineTest, UnsatisfiableFloatingConjunctBlocksInlining) {
  TermManager TM;
  ChcSystem System(TM);
  // Dropping `k >= 0 /\ k <= -1` would *weaken* the definition (the body is
  // unsatisfiable), so p must not be inlined.
  ASSERT_TRUE(parse(R"(
(set-logic HORN)
(declare-fun p (Int) Bool)
(declare-fun q (Int) Bool)
(assert (forall ((a Int) (k Int))
  (=> (and (>= k 0) (<= k (- 1)) (= a 0)) (p a))))
(assert (forall ((b Int)) (=> (p b) (q b))))
(assert (forall ((b Int)) (=> (q b) (<= b 5))))
)",
                    System)
                  .Ok);
  InlineResult R = inlineSystem(System);
  if (R.Map) {
    EXPECT_FALSE(R.Map->Eliminated[findPred(System, "p")->Index]);
  }
}

/// Chains collapse transitively: `mid` is inlined into `out`'s definition
/// before `out` itself is considered, so the surviving deps only mention
/// surviving predicates.
TEST(InlineTest, ChainsCollapseTransitively) {
  TermManager TM;
  ChcSystem System(TM);
  ASSERT_TRUE(parse(R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(declare-fun mid (Int) Bool)
(declare-fun out (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (< n 10) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int) (a Int)) (=> (and (inv n) (= a (+ n 2))) (mid a))))
(assert (forall ((b Int) (c Int)) (=> (and (mid b) (= c (+ b 3))) (out c))))
(assert (forall ((d Int) (e Int)) (=> (and (out d) (= e d)) (<= e 15))))
)",
                    System)
                  .Ok);
  InlineResult R = inlineSystem(System);
  ASSERT_TRUE(R.Map != nullptr);
  EXPECT_TRUE(R.Map->Eliminated[findPred(System, "mid")->Index]);
  // `out` is in the query body here, so it survives; its transformed
  // definition must reference `inv` directly.
  EXPECT_FALSE(R.Map->Eliminated[findPred(System, "out")->Index]);
  bool SawInvInOutDef = false;
  for (const HornClause &C : R.System->clauses()) {
    if (!C.HeadPred || C.HeadPred->Pred->Name != "out")
      continue;
    for (const PredApp &App : C.Body) {
      EXPECT_EQ(App.Pred->Name, "inv");
      SawInvInOutDef = true;
    }
  }
  EXPECT_TRUE(SawInvInOutDef);
  // Recorded deps of every definition mention surviving predicates only.
  for (const InlineDef &D : R.Map->Defs)
    for (const PredApp &Dep : D.Deps)
      EXPECT_FALSE(R.Map->Eliminated[Dep.Pred->Index]);
}

TEST(InlineTest, BackTranslatedModelCoversEliminatedPredicates) {
  TermManager TM;
  ChcSystem System(TM);
  ASSERT_TRUE(parse(ChainSystem, System).Ok);

  solver::DataDrivenOptions Opts;
  Opts.Limits.WallSeconds = 60;
  solver::DataDrivenChcSolver Solver(Opts);
  ChcSolverResult R = Solver.solve(System);
  ASSERT_EQ(R.Status, ChcResult::Sat);
  EXPECT_GE(Solver.detailedStats().PredicatesInlined, 1u);

  // The eliminated predicate received a back-translated interpretation and
  // the whole model re-verifies clause by clause on the original system.
  const Predicate *Mid = findPred(System, "mid");
  EXPECT_TRUE(R.Interp.get(Mid) != nullptr);
  ClauseCheckContext Checker(System);
  EXPECT_EQ(Checker.checkAll(R.Interp), ClauseStatus::Valid);
}

TEST(InlineTest, CexBackTranslationRematerializesEliminatedNodes) {
  TermManager TM;
  ChcSystem System(TM);
  // `base` is eliminated but sits on the refutation's derivation path: the
  // back-translated counterexample must re-materialize its node.
  ASSERT_TRUE(parse(R"(
(set-logic HORN)
(declare-fun base (Int) Bool)
(declare-fun inv (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (base n))))
(assert (forall ((n Int) (m Int)) (=> (and (base n) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (< n 3) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int)) (=> (inv n) (<= n 1))))
)",
                    System)
                  .Ok);

  // Sanity: the transformation fires on `base`.
  InlineResult I = inlineSystem(System);
  ASSERT_TRUE(I.Map != nullptr);
  EXPECT_TRUE(I.Map->Eliminated[findPred(System, "base")->Index]);

  solver::DataDrivenOptions Opts;
  Opts.Limits.WallSeconds = 60;
  solver::DataDrivenChcSolver Solver(Opts);
  ChcSolverResult R = Solver.solve(System);
  ASSERT_EQ(R.Status, ChcResult::Unsat);
  ASSERT_TRUE(R.Cex.has_value());
  EXPECT_TRUE(validateCounterexample(System, *R.Cex));
  bool SawBase = false;
  for (const Counterexample::Node &N : R.Cex->Nodes)
    SawBase |= N.Pred->Name == "base";
  EXPECT_TRUE(SawBase);
}

//===----------------------------------------------------------------------===//
// Corpus coverage and differential suite
//===----------------------------------------------------------------------===//

/// The pass must fire broadly: at least 10 bundled corpus programs lose at
/// least one predicate (ISSUE acceptance bar).
TEST(InlineCorpusTest, EliminatesPredicatesAcrossTheCorpus) {
  size_t ProgramsWithElimination = 0;
  for (const corpus::BenchmarkProgram &P : corpus::allPrograms()) {
    TermManager TM;
    ChcSystem System(TM);
    frontend::EncodeResult E = frontend::encodeMiniC(P.Source, System);
    ASSERT_TRUE(E.Ok) << P.Name << ": " << E.Error;
    InlineResult R = inlineSystem(System);
    if (R.Map && R.Map->numEliminated() >= 1) {
      ++ProgramsWithElimination;
      EXPECT_LT(R.System->clauses().size(), System.clauses().size())
          << P.Name;
    }
  }
  EXPECT_GE(ProgramsWithElimination, 10u);
}

/// Differential: sampled programs keep their verdict with inlining on and
/// off; Sat models re-verify clause by clause on the original system and
/// Unsat witnesses replay on it.
TEST(InlineCorpusTest, DifferentialVerdictsAndWitnesses) {
  const char *Sample[] = {
      "paper_fig1",       "paper_fig3_a",       "rec_sum",
      "gen_counter_b5_s1", "gen_counter_b5_s1_bug", "mod_even_counter",
      "lit_updown_unsafe", "gen_relation_a2_b1",
  };
  for (const char *Name : Sample) {
    const corpus::BenchmarkProgram *P = corpus::find(Name);
    ASSERT_NE(P, nullptr) << Name;
    for (bool Inline : {true, false}) {
      TermManager TM;
      ChcSystem System(TM);
      frontend::EncodeResult E = frontend::encodeMiniC(P->Source, System);
      ASSERT_TRUE(E.Ok) << Name << ": " << E.Error;

      solver::DataDrivenOptions Opts = corpus::defaultOptionsFor(*P, 60);
      Opts.Analysis.EnableInlining = Inline;
      solver::DataDrivenChcSolver Solver(Opts);
      ChcSolverResult R = Solver.solve(System);
      EXPECT_EQ(R.Status,
                P->ExpectedSafe ? ChcResult::Sat : ChcResult::Unsat)
          << Name << " inline=" << Inline;
      if (R.Status == ChcResult::Sat) {
        ClauseCheckContext Checker(System);
        EXPECT_EQ(Checker.checkAll(R.Interp), ClauseStatus::Valid)
            << Name << " inline=" << Inline;
      } else if (R.Status == ChcResult::Unsat) {
        ASSERT_TRUE(R.Cex.has_value()) << Name << " inline=" << Inline;
        EXPECT_TRUE(validateCounterexample(System, *R.Cex))
            << Name << " inline=" << Inline;
      }
    }
  }
}

} // namespace
