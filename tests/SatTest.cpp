//===- tests/SatTest.cpp - CDCL SAT solver tests --------------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sat/SatSolver.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace la;
using namespace la::sat;

namespace {

TEST(SatSolverTest, TrivialSat) {
  SatSolver S;
  Var A = S.newVar(), B = S.newVar();
  EXPECT_TRUE(S.addClause({mkLit(A), mkLit(B)}));
  EXPECT_EQ(S.solve(), SatResult::Sat);
  EXPECT_TRUE(S.value(A) == LBool::True || S.value(B) == LBool::True);
}

TEST(SatSolverTest, TrivialUnsat) {
  SatSolver S;
  Var A = S.newVar();
  EXPECT_TRUE(S.addClause({mkLit(A)}));
  EXPECT_FALSE(S.addClause({mkLit(A, true)}));
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(SatSolverTest, UnitPropagationChain) {
  SatSolver S;
  std::vector<Var> Vars;
  for (int I = 0; I < 10; ++I)
    Vars.push_back(S.newVar());
  // v0 and (v_i -> v_{i+1}) forces all true.
  EXPECT_TRUE(S.addClause({mkLit(Vars[0])}));
  for (int I = 0; I + 1 < 10; ++I)
    EXPECT_TRUE(S.addClause({mkLit(Vars[I], true), mkLit(Vars[I + 1])}));
  EXPECT_EQ(S.solve(), SatResult::Sat);
  for (Var V : Vars)
    EXPECT_EQ(S.value(V), LBool::True);
}

TEST(SatSolverTest, TautologyAndDuplicatesIgnored) {
  SatSolver S;
  Var A = S.newVar(), B = S.newVar();
  EXPECT_TRUE(S.addClause({mkLit(A), mkLit(A, true)})); // tautology
  EXPECT_TRUE(S.addClause({mkLit(B), mkLit(B)}));       // duplicate -> unit
  EXPECT_EQ(S.solve(), SatResult::Sat);
  EXPECT_EQ(S.value(B), LBool::True);
}

/// Pigeonhole principle PHP(n+1, n) is unsatisfiable and requires real
/// conflict-driven search, exercising learning and backjumping.
TEST(SatSolverTest, PigeonholeUnsat) {
  const int Holes = 4, Pigeons = 5;
  SatSolver S;
  std::vector<std::vector<Var>> P(Pigeons, std::vector<Var>(Holes));
  for (auto &Row : P)
    for (Var &V : Row)
      V = S.newVar();
  for (int I = 0; I < Pigeons; ++I) {
    std::vector<Lit> AtLeastOne;
    for (int H = 0; H < Holes; ++H)
      AtLeastOne.push_back(mkLit(P[I][H]));
    EXPECT_TRUE(S.addClause(AtLeastOne));
  }
  for (int H = 0; H < Holes; ++H)
    for (int I = 0; I < Pigeons; ++I)
      for (int J = I + 1; J < Pigeons; ++J)
        S.addClause({mkLit(P[I][H], true), mkLit(P[J][H], true)});
  EXPECT_EQ(S.solve(), SatResult::Unsat);
  EXPECT_GT(S.stats().Conflicts, 0u);
}

TEST(SatSolverTest, ConflictBudgetReturnsUnknown) {
  const int Holes = 8, Pigeons = 9;
  SatSolver S;
  std::vector<std::vector<Var>> P(Pigeons, std::vector<Var>(Holes));
  for (auto &Row : P)
    for (Var &V : Row)
      V = S.newVar();
  for (int I = 0; I < Pigeons; ++I) {
    std::vector<Lit> AtLeastOne;
    for (int H = 0; H < Holes; ++H)
      AtLeastOne.push_back(mkLit(P[I][H]));
    S.addClause(AtLeastOne);
  }
  for (int H = 0; H < Holes; ++H)
    for (int I = 0; I < Pigeons; ++I)
      for (int J = I + 1; J < Pigeons; ++J)
        S.addClause({mkLit(P[I][H], true), mkLit(P[J][H], true)});
  EXPECT_EQ(S.solve(/*MaxConflicts=*/5), SatResult::Unknown);
}

/// Brute-force reference check on random 3-CNF instances.
class RandomCnfTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomCnfTest, AgreesWithBruteForce) {
  Random Rng(GetParam());
  const int NumVars = 8;
  const int NumClauses = 3 + static_cast<int>(Rng.nextBounded(40));
  std::vector<std::vector<Lit>> Formula;
  for (int C = 0; C < NumClauses; ++C) {
    std::vector<Lit> Clause;
    for (int K = 0; K < 3; ++K) {
      Var V = static_cast<Var>(Rng.nextBounded(NumVars));
      Clause.push_back(mkLit(V, Rng.nextBounded(2) == 0));
    }
    Formula.push_back(Clause);
  }

  // Brute force.
  bool BruteSat = false;
  for (uint32_t Mask = 0; Mask < (1u << NumVars) && !BruteSat; ++Mask) {
    bool All = true;
    for (const auto &Clause : Formula) {
      bool Any = false;
      for (Lit L : Clause) {
        bool Val = (Mask >> litVar(L)) & 1;
        if (litNegated(L))
          Val = !Val;
        Any |= Val;
      }
      if (!Any) {
        All = false;
        break;
      }
    }
    BruteSat = All;
  }

  SatSolver S;
  for (int I = 0; I < NumVars; ++I)
    S.newVar();
  bool Root = true;
  for (auto &Clause : Formula)
    Root &= S.addClause(Clause);
  SatResult R = Root ? S.solve() : SatResult::Unsat;
  EXPECT_EQ(R == SatResult::Sat, BruteSat) << "seed " << GetParam();
  if (R == SatResult::Sat) {
    // The reported model must satisfy every clause.
    for (const auto &Clause : Formula) {
      bool Any = false;
      for (Lit L : Clause)
        Any |= S.valueLit(L) == LBool::True;
      EXPECT_TRUE(Any);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCnfTest, ::testing::Range(0, 60));

/// A theory client that forbids a fixed pair of variables both being true,
/// exercising theory-conflict handling.
class PairVetoTheory : public TheoryClient {
public:
  PairVetoTheory(Var A, Var B) : A(A), B(B) {}

  void onAssert(Lit L) override { Assigned.push_back(L); }
  void onBacktrack(size_t NewSize) override { Assigned.resize(NewSize); }

  CheckResult check(bool) override {
    CheckResult R;
    bool ATrue = false, BTrue = false;
    for (Lit L : Assigned) {
      if (L == mkLit(A))
        ATrue = true;
      if (L == mkLit(B))
        BTrue = true;
    }
    if (ATrue && BTrue) {
      R.Consistent = false;
      R.Conflict = {mkLit(A, true), mkLit(B, true)};
    }
    return R;
  }

private:
  Var A, B;
  std::vector<Lit> Assigned;
};

TEST(SatSolverTest, TheoryConflictIsRespected) {
  // a, and (a -> b) boolean-wise, but theory forbids {a, b} => unsat.
  PairVetoTheory *Theory = nullptr;
  {
    static PairVetoTheory T(0, 1);
    Theory = &T;
  }
  SatSolver S(Theory);
  Var A = S.newVar(), B = S.newVar();
  ASSERT_EQ(A, 0);
  ASSERT_EQ(B, 1);
  S.addClause({mkLit(A)});
  S.addClause({mkLit(A, true), mkLit(B)});
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(SatSolverTest, TheoryAllowsOtherModels) {
  static PairVetoTheory Theory(0, 1);
  SatSolver S(&Theory);
  Var A = S.newVar(), B = S.newVar();
  S.addClause({mkLit(A), mkLit(B)});
  EXPECT_EQ(S.solve(), SatResult::Sat);
  EXPECT_FALSE(S.value(A) == LBool::True && S.value(B) == LBool::True);
}

} // namespace
