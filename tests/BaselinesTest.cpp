//===- tests/BaselinesTest.cpp - Baseline solver tests --------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/EnumLearner.h"
#include "baselines/PdrSolver.h"
#include "baselines/TemplateLearner.h"
#include "baselines/UnwindSolver.h"
#include "chc/ChcParser.h"

#include <gtest/gtest.h>

using namespace la;
using namespace la::baselines;
using namespace la::chc;

namespace {

const char *SafeCounter = R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (inv x))))
(assert (forall ((x Int) (x1 Int))
  (=> (and (inv x) (< x 10) (= x1 (+ x 1))) (inv x1))))
(assert (forall ((x Int)) (=> (inv x) (<= x 10))))
)";

const char *UnsafeCounter = R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (inv x))))
(assert (forall ((x Int) (x1 Int))
  (=> (and (inv x) (< x 10) (= x1 (+ x 1))) (inv x1))))
(assert (forall ((x Int)) (=> (inv x) (<= x 9))))
)";

const char *FiboUnsafe = R"(
(set-logic HORN)
(declare-fun p (Int Int) Bool)
(assert (forall ((x Int) (y Int)) (=> (and (< x 1) (= y 0)) (p x y))))
(assert (forall ((x Int) (y Int)) (=> (and (>= x 1) (= x 1) (= y 1)) (p x y))))
(assert (forall ((x Int) (y Int) (y1 Int) (y2 Int))
  (=> (and (>= x 1) (distinct x 1) (p (- x 1) y1) (p (- x 2) y2)
           (= y (+ y1 y2)))
      (p x y))))
(assert (forall ((x Int) (y Int)) (=> (p x y) (>= y x))))
)";

/// Disjunctive system: x counts 0..5 then flag flips; a conjunctive-only
/// learner cannot express the invariant.
const char *Disjunctive = R"(
(set-logic HORN)
(declare-fun inv (Int Int) Bool)
(assert (forall ((x Int) (f Int)) (=> (and (= x 0) (= f 0)) (inv x f))))
(assert (forall ((x Int) (f Int) (x1 Int) (f1 Int))
  (=> (and (inv x f) (= f 0) (< x 5) (= x1 (+ x 1)) (= f1 0)) (inv x1 f1))))
(assert (forall ((x Int) (f Int) (x1 Int) (f1 Int))
  (=> (and (inv x f) (= f 0) (>= x 5) (= x1 (- 0 5)) (= f1 1)) (inv x1 f1))))
(assert (forall ((x Int) (f Int)) (=> (inv x f) (<= x 5))))
)";

/// Runs a solver and checks the verdict's witness end-to-end.
ChcResult runSolver(ChcSolverInterface &Solver, const char *Text) {
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult P = parseChcText(Text, System);
  EXPECT_TRUE(P.Ok) << P.Error;
  ChcSolverResult R = Solver.solve(System);
  if (R.Status == ChcResult::Sat) {
    EXPECT_EQ(checkInterpretation(System, R.Interp), ClauseStatus::Valid)
        << Solver.name() << " returned a non-solution:\n"
        << R.Interp.toString();
  }
  if (R.Status == ChcResult::Unsat && R.Cex) {
    EXPECT_TRUE(validateCounterexample(System, *R.Cex))
        << Solver.name() << ":\n"
        << R.Cex->toString(System);
  }
  return R.Status;
}

PdrOptions pdrOptions() {
  PdrOptions Opts;
  Opts.Limits.WallSeconds = 30;
  return Opts;
}

UnwindOptions unwindOptions(bool SummaryReuse) {
  UnwindOptions Opts;
  Opts.SummaryReuse = SummaryReuse;
  Opts.Limits.WallSeconds = 30;
  return Opts;
}

//===----------------------------------------------------------------------===//
// PDR
//===----------------------------------------------------------------------===//

TEST(PdrSolverTest, SafeCounter) {
  PdrSolver Solver(pdrOptions());
  EXPECT_EQ(runSolver(Solver, SafeCounter), ChcResult::Sat);
}

TEST(PdrSolverTest, UnsafeCounterWithDerivation) {
  PdrSolver Solver(pdrOptions());
  EXPECT_EQ(runSolver(Solver, UnsafeCounter), ChcResult::Unsat);
}

TEST(PdrSolverTest, RecursiveUnsafe) {
  PdrSolver Solver(pdrOptions());
  EXPECT_EQ(runSolver(Solver, FiboUnsafe), ChcResult::Unsat);
}

TEST(PdrSolverTest, GpdrConfigAlsoSolves) {
  PdrOptions Opts = pdrOptions();
  Opts.CacheReachable = false;
  PdrSolver Solver(Opts);
  EXPECT_EQ(Solver.name(), "gpdr");
  EXPECT_EQ(runSolver(Solver, SafeCounter), ChcResult::Sat);
  EXPECT_EQ(runSolver(Solver, UnsafeCounter), ChcResult::Unsat);
}

TEST(PdrSolverTest, NeverUnsound) {
  // Whatever the verdict on harder systems, witnesses must validate (the
  // runSolver helper enforces it); Unknown is acceptable.
  PdrOptions Opts = pdrOptions();
  Opts.Limits.WallSeconds = 5;
  PdrSolver Solver(Opts);
  (void)runSolver(Solver, Disjunctive);
}

//===----------------------------------------------------------------------===//
// Unwinding / interpolation
//===----------------------------------------------------------------------===//

TEST(UnwindSolverTest, SafeCounterByInterpolation) {
  UnwindSolver Solver(unwindOptions(true));
  EXPECT_EQ(runSolver(Solver, SafeCounter), ChcResult::Sat);
}

TEST(UnwindSolverTest, PathByPathConfig) {
  UnwindSolver Solver(unwindOptions(false));
  EXPECT_EQ(Solver.name(), "interpolation");
  EXPECT_EQ(runSolver(Solver, SafeCounter), ChcResult::Sat);
}

TEST(UnwindSolverTest, UnsafeCounterByBmc) {
  UnwindSolver Solver(unwindOptions(true));
  EXPECT_EQ(runSolver(Solver, UnsafeCounter), ChcResult::Unsat);
}

TEST(UnwindSolverTest, RecursiveUnsafeByBmc) {
  UnwindSolver Solver(unwindOptions(true));
  EXPECT_EQ(runSolver(Solver, FiboUnsafe), ChcResult::Unsat);
}

TEST(UnwindSolverTest, RecursiveSafeIsUnknown) {
  // Non-linear safe systems exceed the interpolation fragment: the solver
  // must give up rather than guess.
  UnwindOptions Opts = unwindOptions(true);
  Opts.Limits.WallSeconds = 5;
  Opts.MaxBmcDepth = 6;
  UnwindSolver Solver(Opts);
  const char *FiboSafe = R"(
(set-logic HORN)
(declare-fun p (Int Int) Bool)
(assert (forall ((x Int) (y Int)) (=> (and (< x 1) (= y 0)) (p x y))))
(assert (forall ((x Int) (y Int)) (=> (and (>= x 1) (= x 1) (= y 1)) (p x y))))
(assert (forall ((x Int) (y Int) (y1 Int) (y2 Int))
  (=> (and (>= x 1) (distinct x 1) (p (- x 1) y1) (p (- x 2) y2)
           (= y (+ y1 y2)))
      (p x y))))
(assert (forall ((x Int) (y Int)) (=> (p x y) (>= y (- x 1)))))
)";
  EXPECT_EQ(runSolver(Solver, FiboSafe), ChcResult::Unknown);
}

//===----------------------------------------------------------------------===//
// Enumerative (PIE) and template (DIG) learners
//===----------------------------------------------------------------------===//

TEST(EnumLearnerTest, LearnsOctagonSeparator) {
  TermManager TM;
  std::vector<const Term *> Vars{TM.mkVar("ex"), TM.mkVar("ey")};
  ml::Dataset Data(2);
  Data.Pos = {{Rational(0), Rational(0)}, {Rational(1), Rational(1)}};
  Data.Neg = {{Rational(5), Rational(0)}, {Rational(0), Rational(5)}};
  ml::LearnResult R = enumLearn(TM, Vars, Data, EnumLearnerOptions{});
  ASSERT_TRUE(R.Ok);
  std::unordered_map<const Term *, Rational> Asg{{Vars[0], Rational(0)},
                                                 {Vars[1], Rational(0)}};
  EXPECT_TRUE(evalFormula(R.Formula, Asg));
  Asg[Vars[0]] = Rational(5);
  EXPECT_FALSE(evalFormula(R.Formula, Asg));
}

TEST(EnumLearnerTest, SolvesSimpleSystem) {
  solver::DataDrivenChcSolver Solver(makeEnumSolverOptions(30));
  EXPECT_EQ(Solver.name(), "pie-enum");
  EXPECT_EQ(runSolver(Solver, SafeCounter), ChcResult::Sat);
}

TEST(TemplateLearnerTest, NullspaceFindsEqualities) {
  // Samples on the line y = 2x + 1.
  std::vector<ml::Sample> Samples{{Rational(0), Rational(1)},
                                  {Rational(1), Rational(3)},
                                  {Rational(2), Rational(5)}};
  auto Basis = sampleNullspace(Samples, 2);
  ASSERT_EQ(Basis.size(), 1u);
  // w . (x, y) + b = 0 must be a multiple of 2x - y + 1 = 0.
  const auto &W = Basis[0];
  EXPECT_EQ(W[0], W[1] * Rational(-2));
  EXPECT_EQ(W[2], -W[1]);
  // And it must vanish on every sample.
  for (const auto &S : Samples)
    EXPECT_TRUE((W[0] * S[0] + W[1] * S[1] + W[2]).isZero());
}

TEST(TemplateLearnerTest, ConjunctiveSeparation) {
  TermManager TM;
  std::vector<const Term *> Vars{TM.mkVar("tx"), TM.mkVar("ty")};
  ml::Dataset Data(2);
  Data.Pos = {{Rational(0), Rational(1)}, {Rational(1), Rational(3)}};
  Data.Neg = {{Rational(0), Rational(0)}, {Rational(4), Rational(9)}};
  ml::LearnResult R = templateLearn(TM, Vars, Data);
  ASSERT_TRUE(R.Ok);
  std::unordered_map<const Term *, Rational> Asg{{Vars[0], Rational(1)},
                                                 {Vars[1], Rational(3)}};
  EXPECT_TRUE(evalFormula(R.Formula, Asg));
  Asg[Vars[1]] = Rational(0);
  Asg[Vars[0]] = Rational(0);
  EXPECT_FALSE(evalFormula(R.Formula, Asg));
}

TEST(TemplateLearnerTest, FailsOnDisjunctiveData) {
  TermManager TM;
  std::vector<const Term *> Vars{TM.mkVar("dx"), TM.mkVar("dy")};
  ml::Dataset Data(2);
  // XOR-ish: the negative (3,3) is inside every octagon hull of the
  // positives, so no conjunction of octagon bounds can exclude it.
  Data.Pos = {{Rational(0), Rational(0)}, {Rational(6), Rational(6)},
              {Rational(0), Rational(6)}, {Rational(6), Rational(0)}};
  Data.Neg = {{Rational(3), Rational(3)}};
  ml::LearnResult R = templateLearn(TM, Vars, Data);
  EXPECT_FALSE(R.Ok);
}

TEST(TemplateLearnerTest, SolverSolvesConjunctiveFailsDisjunctive) {
  solver::DataDrivenChcSolver Solver(makeTemplateSolverOptions(20));
  EXPECT_EQ(Solver.name(), "dig-template");
  EXPECT_EQ(runSolver(Solver, SafeCounter), ChcResult::Sat);
  // A genuinely disjunctive invariant ({-1, 1} cannot be described by a
  // conjunction of octagon constraints excluding 0) defeats the
  // conjunctive-only learner but not LinearArbitrary.
  const char *TrulyDisjunctive = R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((x Int)) (=> (= x 1) (inv x))))
(assert (forall ((x Int)) (=> (= x (- 0 1)) (inv x))))
(assert (forall ((x Int)) (=> (inv x) (distinct x 0))))
)";
  EXPECT_EQ(runSolver(Solver, TrulyDisjunctive), ChcResult::Unknown);
  solver::DataDrivenOptions LaOpts;
  LaOpts.Limits.WallSeconds = 20;
  solver::DataDrivenChcSolver La(LaOpts);
  EXPECT_EQ(runSolver(La, TrulyDisjunctive), ChcResult::Sat);
}

} // namespace

#include "corpus/Harness.h"

namespace {

/// Cross-solver agreement: on corpus programs, any two definite verdicts
/// must agree with each other and with the ground truth (the harness also
/// validates every witness). Unknown is always acceptable.
class CrossSolverTest : public ::testing::TestWithParam<const char *> {};

TEST_P(CrossSolverTest, DefiniteVerdictsAgree) {
  const corpus::BenchmarkProgram *P = corpus::find(GetParam());
  ASSERT_NE(P, nullptr) << GetParam();

  std::vector<std::unique_ptr<ChcSolverInterface>> Solvers;
  Solvers.push_back(std::make_unique<solver::DataDrivenChcSolver>(
      corpus::defaultOptionsFor(*P, 20)));
  {
    PdrOptions Opts;
    Opts.Limits.WallSeconds = 10;
    Opts.Smt.TimeoutSeconds = 5;
    Solvers.push_back(std::make_unique<PdrSolver>(Opts));
  }
  {
    UnwindOptions Opts;
    Opts.Limits.WallSeconds = 10;
    Opts.Smt.TimeoutSeconds = 5;
    Solvers.push_back(std::make_unique<UnwindSolver>(Opts));
  }
  for (auto &Solver : Solvers) {
    corpus::RunOutcome Out = corpus::runOnProgram(*Solver, *P);
    EXPECT_FALSE(Out.Unsound)
        << Solver->name() << " disagrees with ground truth on " << P->Name
        << " (verdict " << chc::toString(Out.Status) << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CrossSolverTest,
    ::testing::Values("paper_fig1", "paper_fig1_unsafe", "gen_counter_b5_s1",
                      "gen_counter_b5_s1_bug", "rec_sum_unsafe",
                      "lit_updown", "gen_systemc_s3", "gen_product_bug"));

} // namespace
