//===- tests/ServerTest.cpp - Solver service and daemon tests -------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
// The solver-as-a-service layer: concurrent submits, queue-full
// backpressure, budget expiry while queued, cancellation, graceful
// shutdown, the memo cache, the metrics report, and the daemon's line
// protocol over stringstreams.
//
//===----------------------------------------------------------------------===//

#include "server/Daemon.h"
#include "server/SolverService.h"

#include "baselines/RegisterEngines.h"
#include "corpus/Smt2Corpus.h"
#include "support/FileCache.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>

using namespace la;
using namespace la::chc;
using namespace la::server;

namespace {

constexpr const char *SafeCounterText = R"((set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (< n 10) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int)) (=> (inv n) (<= n 10))))
)";

constexpr const char *UnsafeCounterText = R"((set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (< n 10) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int)) (=> (inv n) (<= n 5))))
)";

/// An engine that sleeps through its whole wall budget (polling its
/// cancellation token) and reports Unknown: a deterministic stand-in for a
/// long-running solve in queue/backpressure/cancellation tests.
class SleepySolver : public ChcSolverInterface {
public:
  SleepySolver(Budget Limits, std::shared_ptr<const CancellationToken> Tok)
      : Limits(Limits), Tok(std::move(Tok)) {}

  ChcSolverResult solve(const ChcSystem &System) override {
    auto End = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(
                       Limits.WallSeconds > 0 ? Limits.WallSeconds : 0.2));
    while (std::chrono::steady_clock::now() < End && !isCancelled(Tok))
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return ChcSolverResult(System.termManager());
  }
  std::string name() const override { return "sleepy"; }

private:
  Budget Limits;
  std::shared_ptr<const CancellationToken> Tok;
};

void registerSleepyEngine() {
  // `add` is idempotent: repeated registration across tests is a no-op.
  solver::EngineInfo Info;
  Info.Id = solver::EngineId("sleepy-test");
  Info.Description = "sleeps through its budget (test engine)";
  solver::SolverRegistry::global().add(
      std::move(Info), [](const solver::EngineOptions &EO) {
        return std::make_unique<SleepySolver>(EO.Limits, EO.Cancel);
      });
}

solver::SolveRequest inlineRequest(const char *Source, double Budget,
                                   const std::string &Engine = "la") {
  solver::SolveRequest R;
  R.Source = Source;
  R.Format = solver::SourceFormat::SmtLib2;
  R.Options.Engine = solver::EngineId(Engine);
  R.Options.Limits.WallSeconds = Budget;
  return R;
}

/// Spins until \p Pred holds or ~2s pass; returns its final value.
template <typename Fn> bool eventually(Fn Pred) {
  for (int I = 0; I < 1000; ++I) {
    if (Pred())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return Pred();
}

/// Fresh cache directory per test, removed on destruction.
struct TempCacheDir {
  std::string Path;
  TempCacheDir() {
    char Template[] = "/tmp/la-server-cache-XXXXXX";
    const char *Made = mkdtemp(Template);
    EXPECT_NE(Made, nullptr);
    Path = Made ? Made : "/tmp/la-server-cache-fallback";
  }
  ~TempCacheDir() {
    std::string Cmd = "rm -rf '" + Path + "'";
    if (std::system(Cmd.c_str()) != 0) {
    }
  }
};

// fork() from a multithreaded TSan process is unsupported; the
// process-isolation daemon tests run in the plain and ASan/UBSan jobs.
#if defined(__SANITIZE_THREAD__)
#define LA_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LA_TSAN_ACTIVE 1
#endif
#endif
#ifndef LA_TSAN_ACTIVE
#define LA_TSAN_ACTIVE 0
#endif

//===----------------------------------------------------------------------===//
// SolverService
//===----------------------------------------------------------------------===//

TEST(SolverServiceTest, SustainsConcurrentRequests) {
  ServiceOptions Opts;
  Opts.Workers = 8;
  Opts.CacheCapacity = 0; // Every request must really run.
  SolverService Service(Opts);

  // 12 concurrent requests, alternating sat and unsat.
  std::vector<Ticket> Tickets;
  for (int I = 0; I < 12; ++I)
    Tickets.push_back(Service.submit(
        inlineRequest(I % 2 ? UnsafeCounterText : SafeCounterText, 60)));

  for (size_t I = 0; I < Tickets.size(); ++I) {
    ASSERT_EQ(Tickets[I].Status, SubmitStatus::Accepted) << I;
    JobResult R = Tickets[I].Result.get();
    ASSERT_TRUE(R.Result.Ok) << R.Result.Error;
    EXPECT_EQ(R.Result.Status, I % 2 ? ChcResult::Unsat : ChcResult::Sat)
        << I;
    EXPECT_FALSE(R.CacheHit);
  }

  ServiceMetrics M = Service.metrics();
  EXPECT_EQ(M.Submitted, 12u);
  EXPECT_EQ(M.Completed, 12u);
  EXPECT_EQ(M.SolvedSat, 6u);
  EXPECT_EQ(M.SolvedUnsat, 6u);
  EXPECT_EQ(M.Rejected, 0u);
  EXPECT_GT(M.SolvedPerSecond, 0.0);
  ASSERT_EQ(M.EngineWins.size(), 1u);
  EXPECT_EQ(M.EngineWins[0].first, "la");
  EXPECT_EQ(M.EngineWins[0].second, 12u);
}

TEST(SolverServiceTest, FullQueueRejectsWithRetryAfter) {
  registerSleepyEngine();
  ServiceOptions Opts;
  Opts.Workers = 1;
  Opts.QueueCapacity = 1;
  Opts.CacheCapacity = 0;
  SolverService Service(Opts);

  // Occupy the only worker with a sleepy job...
  Ticket Running =
      Service.submit(inlineRequest(SafeCounterText, 2.0, "sleepy-test"));
  ASSERT_EQ(Running.Status, SubmitStatus::Accepted);
  ASSERT_TRUE(eventually([&] { return Service.metrics().InFlight == 1; }));

  // ...fill the queue...
  Ticket Queued =
      Service.submit(inlineRequest(SafeCounterText, 2.0, "sleepy-test"));
  ASSERT_EQ(Queued.Status, SubmitStatus::Accepted);

  // ...and watch backpressure: the next submit is rejected, not buffered.
  Ticket Rejected = Service.submit(inlineRequest(SafeCounterText, 2.0));
  EXPECT_EQ(Rejected.Status, SubmitStatus::QueueFull);
  EXPECT_GT(Rejected.RetryAfterSeconds, 0.0);
  EXPECT_EQ(Service.metrics().Rejected, 1u);

  // Cancel everything so teardown is fast.
  EXPECT_TRUE(Service.cancel(Running.Id));
  EXPECT_TRUE(Service.cancel(Queued.Id));
  Service.shutdown(true);
}

TEST(SolverServiceTest, BudgetExpiresWhileQueued) {
  registerSleepyEngine();
  ServiceOptions Opts;
  Opts.Workers = 1;
  Opts.CacheCapacity = 0;
  SolverService Service(Opts);

  // The worker is busy for ~0.5s; the queued job only has a 0.05s budget,
  // so it must complete as expired without ever running an engine.
  Ticket Running =
      Service.submit(inlineRequest(SafeCounterText, 0.5, "sleepy-test"));
  ASSERT_EQ(Running.Status, SubmitStatus::Accepted);
  Ticket Starved = Service.submit(inlineRequest(SafeCounterText, 0.05));
  ASSERT_EQ(Starved.Status, SubmitStatus::Accepted);

  JobResult R = Starved.Result.get();
  EXPECT_TRUE(R.ExpiredInQueue);
  EXPECT_FALSE(R.Result.Ok);
  EXPECT_NE(R.Result.Error.find("budget expired"), std::string::npos);
  EXPECT_GE(R.QueueSeconds, 0.05);

  (void)Running.Result.get();
  ServiceMetrics M = Service.metrics();
  EXPECT_EQ(M.ExpiredInQueue, 1u);
}

TEST(SolverServiceTest, CancelsQueuedAndRunningJobs) {
  registerSleepyEngine();
  ServiceOptions Opts;
  Opts.Workers = 1;
  Opts.CacheCapacity = 0;
  SolverService Service(Opts);

  Ticket Running =
      Service.submit(inlineRequest(SafeCounterText, 5.0, "sleepy-test"));
  ASSERT_TRUE(eventually([&] { return Service.metrics().InFlight == 1; }));
  Ticket Queued =
      Service.submit(inlineRequest(SafeCounterText, 5.0, "sleepy-test"));

  // A queued job completes as cancelled immediately.
  EXPECT_TRUE(Service.cancel(Queued.Id));
  JobResult QR = Queued.Result.get();
  EXPECT_FALSE(QR.Result.Ok);
  EXPECT_NE(QR.Result.Error.find("cancelled"), std::string::npos);

  // A running job stops at its next cancellation poll (the sleepy engine
  // polls every 2ms), far sooner than its 5s budget.
  EXPECT_TRUE(Service.cancel(Running.Id));
  JobResult RR = Running.Result.get();
  EXPECT_LT(RR.RunSeconds, 4.0);

  // Unknown ids are reported as not live.
  EXPECT_FALSE(Service.cancel(99999));
}

TEST(SolverServiceTest, GracefulShutdownDrainsQueuedWork) {
  ServiceOptions Opts;
  Opts.Workers = 2;
  Opts.CacheCapacity = 0;
  SolverService Service(Opts);

  std::vector<Ticket> Tickets;
  for (int I = 0; I < 6; ++I)
    Tickets.push_back(Service.submit(inlineRequest(SafeCounterText, 60)));
  Service.shutdown(/*Drain=*/true);

  for (Ticket &T : Tickets) {
    ASSERT_EQ(T.Status, SubmitStatus::Accepted);
    JobResult R = T.Result.get();
    ASSERT_TRUE(R.Result.Ok) << R.Result.Error;
    EXPECT_EQ(R.Result.Status, ChcResult::Sat);
  }
  EXPECT_EQ(Service.metrics().Completed, 6u);

  // After shutdown the service refuses new work.
  Ticket Late = Service.submit(inlineRequest(SafeCounterText, 60));
  EXPECT_EQ(Late.Status, SubmitStatus::ShuttingDown);
}

TEST(SolverServiceTest, MemoCacheServesRepeatedRequests) {
  ServiceOptions Opts;
  Opts.Workers = 2;
  Opts.CacheCapacity = 16;
  SolverService Service(Opts);

  JobResult First =
      Service.submit(inlineRequest(SafeCounterText, 60)).Result.get();
  ASSERT_TRUE(First.Result.Ok) << First.Result.Error;
  EXPECT_FALSE(First.CacheHit);

  Ticket Again = Service.submit(inlineRequest(SafeCounterText, 60));
  ASSERT_EQ(Again.Status, SubmitStatus::Accepted);
  JobResult Second = Again.Result.get();
  EXPECT_TRUE(Second.CacheHit);
  EXPECT_EQ(Second.Result.Status, ChcResult::Sat);
  EXPECT_EQ(Second.RunSeconds, 0.0);

  // A different budget is a different request: no false sharing.
  JobResult Third =
      Service.submit(inlineRequest(SafeCounterText, 59)).Result.get();
  EXPECT_FALSE(Third.CacheHit);

  ServiceMetrics M = Service.metrics();
  EXPECT_EQ(M.CacheHits, 1u);
  EXPECT_EQ(M.CacheMisses, 2u);
}

TEST(SolverServiceTest, MetricsRenderReportAndJson) {
  ServiceOptions Opts;
  Opts.Workers = 1;
  SolverService Service(Opts);
  (void)Service.submit(inlineRequest(SafeCounterText, 60)).Result.get();

  ServiceMetrics M = Service.metrics();
  std::string Report = M.report();
  EXPECT_NE(Report.find("solved/s"), std::string::npos) << Report;
  EXPECT_NE(Report.find("queue 0/"), std::string::npos) << Report;
  EXPECT_NE(Report.find("engine wins: la 1"), std::string::npos) << Report;

  std::string Json = M.json();
  EXPECT_NE(Json.find("\"solved_per_second\":"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"engine_wins\":{\"la\":1}"), std::string::npos)
      << Json;
}

TEST(SolverServiceTest, RetryAfterHonoursConfigurableFloorOnColdStart) {
  registerSleepyEngine();
  ServiceOptions Opts;
  Opts.Workers = 1;
  Opts.QueueCapacity = 1;
  Opts.CacheCapacity = 0;
  Opts.RetryFloorSeconds = 2.5;
  SolverService Service(Opts);

  // Nothing has completed yet, so the run-time EWMA has no samples — this
  // is exactly the cold start where the retry hint used to degenerate.
  Ticket Running =
      Service.submit(inlineRequest(SafeCounterText, 2.0, "sleepy-test"));
  ASSERT_EQ(Running.Status, SubmitStatus::Accepted);
  ASSERT_TRUE(eventually([&] { return Service.metrics().InFlight == 1; }));
  Ticket Queued =
      Service.submit(inlineRequest(SafeCounterText, 2.0, "sleepy-test"));
  ASSERT_EQ(Queued.Status, SubmitStatus::Accepted);

  Ticket Rejected = Service.submit(inlineRequest(SafeCounterText, 2.0));
  ASSERT_EQ(Rejected.Status, SubmitStatus::QueueFull);
  EXPECT_GE(Rejected.RetryAfterSeconds, 2.5);

  EXPECT_TRUE(Service.cancel(Running.Id));
  EXPECT_TRUE(Service.cancel(Queued.Id));
  Service.shutdown(true);
}

TEST(SolverServiceTest, NonPositiveRetryFloorFallsBackToDefault) {
  registerSleepyEngine();
  ServiceOptions Opts;
  Opts.Workers = 1;
  Opts.QueueCapacity = 1;
  Opts.CacheCapacity = 0;
  Opts.RetryFloorSeconds = 0; // Misconfiguration must not reintroduce 0.
  SolverService Service(Opts);

  Ticket Running =
      Service.submit(inlineRequest(SafeCounterText, 2.0, "sleepy-test"));
  ASSERT_EQ(Running.Status, SubmitStatus::Accepted);
  ASSERT_TRUE(eventually([&] { return Service.metrics().InFlight == 1; }));
  Ticket Queued =
      Service.submit(inlineRequest(SafeCounterText, 2.0, "sleepy-test"));
  ASSERT_EQ(Queued.Status, SubmitStatus::Accepted);

  Ticket Rejected = Service.submit(inlineRequest(SafeCounterText, 2.0));
  ASSERT_EQ(Rejected.Status, SubmitStatus::QueueFull);
  EXPECT_GT(Rejected.RetryAfterSeconds, 0.0);

  EXPECT_TRUE(Service.cancel(Running.Id));
  EXPECT_TRUE(Service.cancel(Queued.Id));
  Service.shutdown(true);
}

TEST(SolverServiceTest, DiskCacheSurvivesServiceRestart) {
  TempCacheDir Dir;
  FileCache::Options CO;
  CO.Dir = Dir.Path;

  // First service: solves for real and persists the verdict on disk. The
  // memo cache is off so only the disk tier can answer later.
  {
    ServiceOptions Opts;
    Opts.Workers = 1;
    Opts.CacheCapacity = 0;
    Opts.DiskCache = std::make_shared<FileCache>(CO);
    SolverService Service(Opts);
    JobResult R =
        Service.submit(inlineRequest(SafeCounterText, 60)).Result.get();
    ASSERT_TRUE(R.Result.Ok) << R.Result.Error;
    EXPECT_EQ(R.Result.Status, ChcResult::Sat);
    EXPECT_FALSE(R.Result.FromDiskCache);
    EXPECT_GE(Service.metrics().DiskStores, 1u);
  }

  // Second service over the same directory — a daemon restart: the verdict
  // comes back from disk without running an engine.
  {
    ServiceOptions Opts;
    Opts.Workers = 1;
    Opts.CacheCapacity = 0;
    Opts.DiskCache = std::make_shared<FileCache>(CO);
    SolverService Service(Opts);
    JobResult R =
        Service.submit(inlineRequest(SafeCounterText, 60)).Result.get();
    ASSERT_TRUE(R.Result.Ok) << R.Result.Error;
    EXPECT_EQ(R.Result.Status, ChcResult::Sat);
    EXPECT_TRUE(R.Result.FromDiskCache);
    ServiceMetrics M = Service.metrics();
    EXPECT_EQ(M.DiskCacheServed, 1u);
    EXPECT_GE(M.DiskHits, 1u);
    // The new counters render in both report formats.
    EXPECT_NE(M.report().find("disk cache:"), std::string::npos);
    EXPECT_NE(M.json().find("\"disk_cache_served\":1"), std::string::npos);
  }
}

//===----------------------------------------------------------------------===//
// Daemon line protocol
//===----------------------------------------------------------------------===//

TEST(DaemonTest, ServesLineProtocolEndToEnd) {
  const corpus::Smt2Benchmark *Safe = corpus::findSmt2("fig1_safe");
  const corpus::Smt2Benchmark *Unsafe = corpus::findSmt2("fig1_unsafe");
  ASSERT_NE(Safe, nullptr);
  ASSERT_NE(Unsafe, nullptr);

  std::string Script;
  Script += "solve a " + Safe->Path + " budget=60\n";
  Script += "solve b " + Unsafe->Path + " budget=60 engine=la\n";
  Script += "solve-inline c budget=60\n";
  Script += SafeCounterText;
  Script += ".\n";
  Script += "solve d /nonexistent/missing.smt2\n";
  Script += "solve e " + Safe->Path + " budjet=5\n";
  Script += "frobnicate\n";
  Script += "metrics\n";
  Script += "shutdown\n";

  std::istringstream In(Script);
  std::ostringstream Out;
  DaemonOptions Opts;
  Opts.Service.Workers = 4;
  size_t Accepted = runDaemon(In, Out, Opts);
  EXPECT_EQ(Accepted, 4u); // a, b, c, d (e has a bad option, rejected).

  std::string Text = Out.str();
  EXPECT_NE(Text.find("ok a sat"), std::string::npos) << Text;
  EXPECT_NE(Text.find("ok b unsat"), std::string::npos) << Text;
  EXPECT_NE(Text.find("ok c sat"), std::string::npos) << Text;
  EXPECT_NE(Text.find("error d cannot open"), std::string::npos) << Text;
  EXPECT_NE(Text.find("error e unknown option 'budjet'"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("error ? unknown command 'frobnicate'"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("metrics {"), std::string::npos) << Text;
  // The final line is the shutdown acknowledgement, after the drain.
  EXPECT_NE(Text.find("bye\n"), std::string::npos) << Text;
  EXPECT_EQ(Text.rfind("bye\n"), Text.size() - 4) << Text;
}

TEST(DaemonTest, ReportsBackpressureOverProtocol) {
  registerSleepyEngine();
  const corpus::Smt2Benchmark *Safe = corpus::findSmt2("counter_safe");
  ASSERT_NE(Safe, nullptr);

  std::string Script;
  // Six back-to-back 1s sleepy jobs against workers=1/queue=1: at most one
  // runs and one waits at any instant, so several submissions in this
  // burst must bounce with a retry hint (which ones depends on worker
  // timing; that at least one bounces does not).
  for (int I = 1; I <= 6; ++I)
    Script += "solve r" + std::to_string(I) + " " + Safe->Path +
              " engine=sleepy-test budget=1\n";
  Script += "shutdown\n";

  std::istringstream In(Script);
  std::ostringstream Out;
  DaemonOptions Opts;
  Opts.Service.Workers = 1;
  Opts.Service.QueueCapacity = 1;
  Opts.Service.CacheCapacity = 0;
  runDaemon(In, Out, Opts);

  std::string Text = Out.str();
  EXPECT_NE(Text.find("retry-after="), std::string::npos) << Text;
  EXPECT_NE(Text.find("rejected r"), std::string::npos) << Text;
  // The first job is always accepted (the queue starts empty) and drains
  // to an Unknown verdict before `bye`.
  EXPECT_NE(Text.find("ok r1 unknown"), std::string::npos) << Text;
  EXPECT_EQ(Text.rfind("bye\n"), Text.size() - 4) << Text;
}

TEST(DaemonTest, RejectsUnknownIsolationValue) {
  std::string Script;
  Script += "solve-inline a isolation=bogus\n";
  Script += SafeCounterText;
  Script += ".\n";
  Script += "shutdown\n";
  std::istringstream In(Script);
  std::ostringstream Out;
  runDaemon(In, Out, DaemonOptions{});
  EXPECT_NE(Out.str().find("error a unknown isolation 'bogus'"),
            std::string::npos)
      << Out.str();
}

TEST(DaemonTest, SurvivesCrashingEngineUnderProcessIsolation) {
#if LA_TSAN_ACTIVE
  GTEST_SKIP() << "fork() from a multithreaded TSan process is unsupported";
#endif
  // The heart of the crash-proof-daemon story: a request that picks a
  // segfaulting engine under process isolation must not take the daemon
  // down — the lane is killed in its own child, the job completes (no
  // verdict), and subsequent requests are served normally. There is
  // deliberately no thread-mode variant: in thread mode the same engine
  // would segfault the daemon itself, which is the documented limitation
  // process isolation exists to remove.
  baselines::registerCrashEngines();

  std::string Script;
  Script += "solve-inline a engine=crash-segv isolation=process budget=30\n";
  Script += SafeCounterText;
  Script += ".\n";
  Script += "solve-inline b engine=crash-abort isolation=process budget=30\n";
  Script += SafeCounterText;
  Script += ".\n";
  Script += "solve-inline c isolation=process budget=60\n";
  Script += SafeCounterText;
  Script += ".\n";
  Script += "solve-inline d budget=60\n"; // Thread mode still works.
  Script += UnsafeCounterText;
  Script += ".\n";
  Script += "shutdown\n";

  std::istringstream In(Script);
  std::ostringstream Out;
  DaemonOptions Opts;
  Opts.Service.Workers = 2;
  Opts.Service.CacheCapacity = 0;
  size_t Accepted = runDaemon(In, Out, Opts);
  EXPECT_EQ(Accepted, 4u);

  std::string Text = Out.str();
  // Crash lanes come back as unknown verdicts, not as daemon death.
  EXPECT_NE(Text.find("ok a unknown"), std::string::npos) << Text;
  EXPECT_NE(Text.find("ok b unknown"), std::string::npos) << Text;
  EXPECT_NE(Text.find("ok c sat"), std::string::npos) << Text;
  EXPECT_NE(Text.find("ok d unsat"), std::string::npos) << Text;
  EXPECT_EQ(Text.rfind("bye\n"), Text.size() - 4) << Text;
}

TEST(DaemonTest, DiskCacheServesSecondDaemonRun) {
  TempCacheDir Dir;
  FileCache::Options CO;
  CO.Dir = Dir.Path;

  auto RunOnce = [&] {
    std::string Script;
    Script += "solve-inline a budget=60\n";
    Script += SafeCounterText;
    Script += ".\n";
    Script += "shutdown\n";
    std::istringstream In(Script);
    std::ostringstream Out;
    DaemonOptions Opts;
    Opts.Service.Workers = 1;
    Opts.Service.CacheCapacity = 0; // Only the disk tier may answer.
    Opts.Service.DiskCache = std::make_shared<FileCache>(CO);
    runDaemon(In, Out, Opts);
    return Out.str();
  };

  std::string First = RunOnce();
  EXPECT_NE(First.find("ok a sat"), std::string::npos) << First;
  EXPECT_NE(First.find("disk=0"), std::string::npos) << First;

  // Same request against a fresh daemon over the same cache directory:
  // answered from the persistent cache, flagged in the response line.
  std::string Second = RunOnce();
  EXPECT_NE(Second.find("ok a sat"), std::string::npos) << Second;
  EXPECT_NE(Second.find("cached=1 disk=1"), std::string::npos) << Second;
}

} // namespace
