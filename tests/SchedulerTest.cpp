//===- tests/SchedulerTest.cpp - Feature/selector/staged-schedule tests ---===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/RegisterEngines.h"
#include "chc/ChcParser.h"
#include "corpus/Harness.h"
#include "corpus/Smt2Corpus.h"
#include "frontend/Encoder.h"
#include "smtlib2/Parser.h"
#include "solver/DataDrivenSolver.h"
#include "solver/SolveFacade.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace la;
using namespace la::chc;
using namespace la::solver;

namespace {

constexpr const char *SafeCounterText = R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (< n 10) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int)) (=> (inv n) (<= n 10))))
)";

constexpr const char *UnsafeCounterText = R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (< n 10) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int)) (=> (inv n) (<= n 5))))
)";

/// No finite unrolling settles the query bound within these tests' budgets:
/// drives the staged solver through every stage to the escalation race.
constexpr const char *DivergingText = R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (inv x))))
(assert (forall ((x Int) (x1 Int))
  (=> (and (inv x) (= x1 (+ x 1))) (inv x1))))
(assert (forall ((x Int)) (=> (inv x) (<= x 1000000000))))
)";

void parseInto(const char *Text, ChcSystem &System) {
  ChcParseResult P = parseChcText(Text, System);
  ASSERT_TRUE(P.Ok) << P.Error;
}

EngineInfo info(const char *Id, CostClass Cost, bool SupportsNonlinear = true,
                bool NeedsAnalysis = false, bool Deterministic = true) {
  EngineInfo E;
  E.Id = EngineId(Id);
  E.Description = Id;
  E.TypicalCost = Cost;
  E.SupportsNonlinear = SupportsNonlinear;
  E.NeedsAnalysis = NeedsAnalysis;
  E.Deterministic = Deterministic;
  return E;
}

//===----------------------------------------------------------------------===//
// Schedule policy parsing
//===----------------------------------------------------------------------===//

TEST(SchedulePolicyTest, ParseAndRenderRoundTrip) {
  for (SchedulePolicy P : {SchedulePolicy::Single, SchedulePolicy::Race,
                           SchedulePolicy::Staged, SchedulePolicy::Auto})
    EXPECT_EQ(parseSchedulePolicy(toString(P)), P);
  EXPECT_FALSE(parseSchedulePolicy("ladder").has_value());
  EXPECT_FALSE(parseSchedulePolicy("").has_value());
}

//===----------------------------------------------------------------------===//
// Problem features
//===----------------------------------------------------------------------===//

TEST(ProblemFeaturesTest, GoldenCounterSystem) {
  TermManager TM;
  ChcSystem System(TM);
  parseInto(SafeCounterText, System);
  ProblemFeatures F = ProblemFeatures::fromSystem(System);
  EXPECT_EQ(F.Predicates, 1);
  EXPECT_EQ(F.Clauses, 3);
  EXPECT_EQ(F.Queries, 1);
  EXPECT_EQ(F.Facts, 1);
  EXPECT_EQ(F.MaxArity, 1);
  EXPECT_EQ(F.TotalArgs, 1);
  EXPECT_EQ(F.MaxBodyApps, 1);
  EXPECT_EQ(F.NonlinearClauses, 0);
  EXPECT_EQ(F.Recursive, 1);
  EXPECT_EQ(F.RecursivePreds, 1);
  EXPECT_EQ(F.HaveAnalysis, 0);

  // names() and values() are the offline-fitting contract: same length,
  // and toString renders every name.
  EXPECT_EQ(ProblemFeatures::names().size(), F.values().size());
  std::string Rendered = F.toString();
  for (const std::string &Name : ProblemFeatures::names())
    EXPECT_NE(Rendered.find(Name + "="), std::string::npos) << Name;
  EXPECT_NE(Rendered.find("clauses=3"), std::string::npos);
}

TEST(ProblemFeaturesTest, Smt2CorpusGoldenShape) {
  // Every bundled exchange-format benchmark must extract coherent features,
  // and the nonlinearity flag must agree with the corpus registry.
  for (const corpus::Smt2Benchmark &B : corpus::smt2Benchmarks()) {
    std::ifstream In(B.Path);
    ASSERT_TRUE(In.good()) << B.Path;
    std::ostringstream Text;
    Text << In.rdbuf();
    TermManager TM;
    ChcSystem System(TM);
    smtlib2::ParseResult P = smtlib2::parseSmtLib2(Text.str(), System);
    ASSERT_TRUE(P.Ok) << B.Name << ": " << P.Message;
    ProblemFeatures F = ProblemFeatures::fromSystem(System);
    EXPECT_GE(F.Predicates, 1) << B.Name;
    EXPECT_GE(F.Clauses, 2) << B.Name;
    EXPECT_GE(F.Queries, 1) << B.Name;
    EXPECT_EQ(F.NonlinearClauses > 0, B.NonlinearHorn) << B.Name;
    EXPECT_EQ(F.Predicates > 1, B.MultiPredicate) << B.Name;
  }
}

TEST(ProblemFeaturesTest, StructuralFeaturesStableUnderInlining) {
  // The structural half is extracted from the *input* system; running the
  // pre-analysis (which inlines predicates and rewrites clauses internally)
  // must not change it — only the analysis half may light up.
  std::vector<const corpus::BenchmarkProgram *> Programs =
      corpus::category("loop-lit");
  ASSERT_FALSE(Programs.empty());
  size_t AnalysisRan = 0;
  for (const corpus::BenchmarkProgram *P : Programs) {
    TermManager TM;
    ChcSystem System(TM);
    frontend::EncodeResult E = frontend::encodeMiniC(P->Source, System);
    ASSERT_TRUE(E.Ok) << P->Name << ": " << E.Error;
    ProblemFeatures Before = ProblemFeatures::fromSystem(System);

    DataDrivenOptions DO = corpus::defaultOptionsFor(*P, /*Timeout=*/10);
    DO.AnalysisOnly = true;
    DO.EnableAnalysis = true;
    DataDrivenChcSolver Prober(DO);
    (void)Prober.solve(System);

    ProblemFeatures After = ProblemFeatures::fromSystem(System);
    EXPECT_EQ(Before.values(), After.values()) << P->Name;

    After.addAnalysis(Prober.analysisResult());
    EXPECT_EQ(After.HaveAnalysis, 1) << P->Name;
    if (After.PredicatesInlined > 0)
      ++AnalysisRan;
    // Static features survive the analysis merge untouched.
    EXPECT_EQ(After.Predicates, Before.Predicates) << P->Name;
    EXPECT_EQ(After.Clauses, Before.Clauses) << P->Name;
    EXPECT_EQ(After.Recursive, Before.Recursive) << P->Name;
  }
  // At least one loop-lit program must actually exercise the inliner, or
  // the stability claim above is vacuous.
  EXPECT_GE(AnalysisRan, 1u);
}

//===----------------------------------------------------------------------===//
// Rule selector
//===----------------------------------------------------------------------===//

TEST(RuleSelectorTest, FiltersNonlinearIncapableEngines) {
  RuleSelector S;
  ProblemFeatures F;
  F.NonlinearClauses = 2;
  std::vector<RankedEngine> Ranked =
      S.rank(F, {info("linear-only", CostClass::Cheap,
                      /*SupportsNonlinear=*/false),
                 info("full", CostClass::Heavy)});
  ASSERT_EQ(Ranked.size(), 1u);
  EXPECT_EQ(Ranked[0].Id, EngineId("full"));
}

TEST(RuleSelectorTest, AnalysisConsumersBoostOnlyWhenProbeHelped) {
  RuleSelector S;
  std::vector<EngineInfo> Candidates = {
      info("learner", CostClass::Heavy, true, /*NeedsAnalysis=*/true),
      info("pdr-like", CostClass::Heavy)};

  ProblemFeatures NoFacts;
  NoFacts.Recursive = 1;
  NoFacts.HaveAnalysis = 1;
  std::vector<RankedEngine> Cold = S.rank(NoFacts, Candidates);
  ASSERT_EQ(Cold.size(), 2u);

  ProblemFeatures Helped = NoFacts;
  Helped.BoundsFound = 4;
  std::vector<RankedEngine> Warm = S.rank(Helped, Candidates);
  ASSERT_EQ(Warm.size(), 2u);
  // With analysis facts on the table the analysis-consuming engine must
  // strictly gain on the symbolic one.
  auto ScoreOf = [](const std::vector<RankedEngine> &R, const char *Id) {
    for (const RankedEngine &E : R)
      if (E.Id == EngineId(Id))
        return E.Score;
    return -1.0;
  };
  EXPECT_GT(ScoreOf(Warm, "learner") - ScoreOf(Cold, "learner"), 1.0);
  EXPECT_EQ(ScoreOf(Warm, "pdr-like"), ScoreOf(Cold, "pdr-like"));
  EXPECT_EQ(Warm[0].Id, EngineId("learner"));
}

TEST(RuleSelectorTest, CheapEnginesLeadOnEqualFooting) {
  RuleSelector S;
  ProblemFeatures F;
  F.Recursive = 1;
  std::vector<RankedEngine> Ranked =
      S.rank(F, {info("heavy", CostClass::Heavy),
                 info("cheap", CostClass::Cheap),
                 info("moderate", CostClass::Moderate)});
  ASSERT_EQ(Ranked.size(), 3u);
  EXPECT_EQ(Ranked[0].Id, EngineId("cheap"));
  EXPECT_EQ(Ranked[2].Id, EngineId("heavy"));
}

//===----------------------------------------------------------------------===//
// Table selector
//===----------------------------------------------------------------------===//

TEST(TableSelectorTest, ParseRoundTripAndScoring) {
  std::string Text = "selector 1\n"
                     "features 2 clauses recursive\n"
                     "engine la 0.5 0.25 -1\n"
                     "engine pdr 1 0 0\n"
                     "end\n";
  TableSelector S;
  std::string Error;
  ASSERT_TRUE(TableSelector::parse(Text, S, Error)) << Error;

  ProblemFeatures F;
  F.Clauses = 4;
  F.Recursive = 1;
  // la: 0.5 + 0.25*4 - 1*1 = 0.5; pdr: 1.
  EXPECT_DOUBLE_EQ(S.score(EngineId("la"), F).value(), 0.5);
  EXPECT_DOUBLE_EQ(S.score(EngineId("pdr"), F).value(), 1.0);
  EXPECT_FALSE(S.score(EngineId("unwind"), F).has_value());

  std::vector<RankedEngine> Ranked =
      S.rank(F, {info("la", CostClass::Moderate),
                 info("pdr", CostClass::Heavy),
                 info("unmodeled", CostClass::Cheap)});
  ASSERT_EQ(Ranked.size(), 3u);
  EXPECT_EQ(Ranked[0].Id, EngineId("pdr"));
  EXPECT_EQ(Ranked[1].Id, EngineId("la"));
  // Unmodeled engines rank after every modeled one.
  EXPECT_EQ(Ranked[2].Id, EngineId("unmodeled"));
  EXPECT_LT(Ranked[2].Score, -1e8);
}

TEST(TableSelectorTest, UnknownFeatureNamesAreIgnored) {
  // A model fit by a newer build may name features this build lacks; they
  // must weigh zero instead of failing the load.
  std::string Text = "selector 1\n"
                     "features 2 clauses not_a_feature_yet\n"
                     "engine la 1 2 100\n"
                     "end\n";
  TableSelector S;
  std::string Error;
  ASSERT_TRUE(TableSelector::parse(Text, S, Error)) << Error;
  ProblemFeatures F;
  F.Clauses = 3;
  EXPECT_DOUBLE_EQ(S.score(EngineId("la"), F).value(), 7.0);
}

TEST(TableSelectorTest, RejectsMalformedModels) {
  TableSelector S;
  std::string Error;
  EXPECT_FALSE(TableSelector::parse("selector 2\nend\n", S, Error));
  EXPECT_NE(Error.find("selector 1"), std::string::npos);
  EXPECT_FALSE(TableSelector::parse("selector 1\nfeatures 1 clauses\n"
                                    "engine la 1\nend\n",
                                    S, Error));
  EXPECT_NE(Error.find("truncated weight"), std::string::npos);
  EXPECT_FALSE(TableSelector::parse("selector 1\nfeatures 1 clauses\n"
                                    "engine la 1 2\n",
                                    S, Error));
  EXPECT_NE(Error.find("end"), std::string::npos);
  EXPECT_FALSE(
      TableSelector::loadFile("/nonexistent/selector.model", Error));
  EXPECT_NE(Error.find("cannot open"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// SolveOptionsBuilder validation
//===----------------------------------------------------------------------===//

TEST(SolveOptionsBuilderTest, DefaultsValidate) {
  SolveOptionsBuilder::Validated V = SolveOptionsBuilder().build();
  ASSERT_TRUE(V.Ok) << V.Error;
  EXPECT_EQ(V.Options.Engine, EngineId("la"));
  EXPECT_EQ(V.Options.Schedule.Policy, SchedulePolicy::Single);
}

TEST(SolveOptionsBuilderTest, RejectsBadBudgetAndTopK) {
  SolveOptionsBuilder::Validated Neg =
      SolveOptionsBuilder().wallSeconds(-5).build();
  EXPECT_FALSE(Neg.Ok);
  EXPECT_NE(Neg.Error.find("budget"), std::string::npos);

  SolveOptionsBuilder::Validated ZeroK =
      SolveOptionsBuilder().schedule(SchedulePolicy::Staged).topK(0).build();
  EXPECT_FALSE(ZeroK.Ok);
}

TEST(SolveOptionsBuilderTest, CrashEnginesRequireProcessIsolation) {
  SolveOptionsBuilder::Validated Thread =
      SolveOptionsBuilder().allowCrashEngines().build();
  ASSERT_FALSE(Thread.Ok);
  EXPECT_NE(Thread.Error.find("process isolation"), std::string::npos);

  SolveOptionsBuilder::Validated Process = SolveOptionsBuilder()
                                               .allowCrashEngines()
                                               .isolation(Isolation::Process)
                                               .build();
  EXPECT_TRUE(Process.Ok) << Process.Error;
}

TEST(SolveOptionsBuilderTest, ExplicitEngineConflictsWithPortfolioPolicy) {
  SolveOptionsBuilder::Validated Conflict = SolveOptionsBuilder()
                                                .engine(EngineId("pdr"))
                                                .schedule(SchedulePolicy::Race)
                                                .build();
  ASSERT_FALSE(Conflict.Ok);
  EXPECT_NE(Conflict.Error.find("engine"), std::string::npos);

  // An explicit engine under the (default or explicit) Single policy is the
  // legacy path and stays fine.
  EXPECT_TRUE(SolveOptionsBuilder().engine(EngineId("pdr")).build().Ok);
  EXPECT_TRUE(SolveOptionsBuilder()
                  .engine(EngineId("pdr"))
                  .schedule(SchedulePolicy::Single)
                  .build()
                  .Ok);
  // Schedule-only requests never conflict.
  EXPECT_TRUE(
      SolveOptionsBuilder().schedule(SchedulePolicy::Staged).build().Ok);
}

//===----------------------------------------------------------------------===//
// Staged solving
//===----------------------------------------------------------------------===//

TEST(StagedSolverTest, SolvesSafeSystemAndKeepsLaneTimeline) {
  baselines::registerBuiltinEngines();
  TermManager TM;
  ChcSystem System(TM);
  parseInto(SafeCounterText, System);

  PortfolioOptions PO;
  PO.Limits.WallSeconds = 60;
  ScheduleOptions SO;
  SO.Policy = SchedulePolicy::Staged;
  StagedSolver Solver(SO, PO);
  ChcSolverResult Res = Solver.solve(System);
  EXPECT_EQ(Res.Status, ChcResult::Sat);

  // The probe stage always runs first and the feature vector is complete.
  ASSERT_FALSE(Solver.stages().empty());
  EXPECT_EQ(Solver.stages().front().Stage, "probe");
  EXPECT_EQ(Solver.features().Clauses, 3);
  EXPECT_EQ(Solver.features().HaveAnalysis, 1);

  // Reports carry stage-prefixed labels and a global start-order index
  // consistent with their position; timestamps sit on one clock.
  ASSERT_FALSE(Solver.reports().empty());
  for (size_t I = 0; I < Solver.reports().size(); ++I) {
    const EngineReport &R = Solver.reports()[I];
    EXPECT_EQ(R.LaneIndex, I) << R.Lane;
    EXPECT_TRUE(R.Lane.find("probe:") == 0 || R.Lane.find("top:") == 0 ||
                R.Lane.find("race:") == 0)
        << R.Lane;
    EXPECT_LE(R.QueuedSeconds, R.StartSeconds) << R.Lane;
    EXPECT_LE(R.StartSeconds, R.StopSeconds) << R.Lane;
  }
  // Exactly one stage hit, and it is the one carrying the verdict.
  size_t Hits = 0;
  for (const StageReport &S : Solver.stages())
    Hits += S.Hit;
  EXPECT_EQ(Hits, 1u);
  EXPECT_EQ(Solver.stages().back().Status, ChcResult::Sat);
}

TEST(StagedSolverTest, EscalatesToRaceWhenEarlierStagesSayUnknown) {
  baselines::registerBuiltinEngines();
  TermManager TM;
  ChcSystem System(TM);
  parseInto(DivergingText, System);

  PortfolioOptions PO;
  PO.Limits.WallSeconds = 3;
  ScheduleOptions SO;
  SO.Policy = SchedulePolicy::Staged;
  SO.TopK = 1;
  StagedSolver Solver(SO, PO);
  ChcSolverResult Res = Solver.solve(System);
  EXPECT_EQ(Res.Status, ChcResult::Unknown);
  EXPECT_TRUE(Solver.escalated());
  EXPECT_FALSE(Solver.solvedByProbe());
  ASSERT_GE(Solver.stages().size(), 3u);
  EXPECT_EQ(Solver.stages().back().Stage, "race");
  for (const StageReport &S : Solver.stages())
    EXPECT_FALSE(S.Hit) << S.Stage;
}

TEST(StagedSolverTest, SelectorTopKCapsTheSelectedStage) {
  baselines::registerBuiltinEngines();
  TermManager TM;
  ChcSystem System(TM);
  parseInto(DivergingText, System);

  PortfolioOptions PO;
  PO.Limits.WallSeconds = 2;
  ScheduleOptions SO;
  SO.Policy = SchedulePolicy::Staged;
  SO.TopK = 2;
  StagedSolver Solver(SO, PO);
  (void)Solver.solve(System);
  ASSERT_GE(Solver.stages().size(), 2u);
  const StageReport &TopK = Solver.stages()[1];
  EXPECT_EQ(TopK.Stage, "top-k");
  EXPECT_LE(TopK.Engines.size(), 2u);
  EXPECT_GE(TopK.Engines.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Façade integration: differential parity and serialization
//===----------------------------------------------------------------------===//

TEST(StagedFacadeTest, StagedMatchesRaceVerdicts) {
  baselines::registerBuiltinEngines();
  for (const char *Text : {SafeCounterText, UnsafeCounterText}) {
    SolveOptionsBuilder RaceB;
    RaceB.schedule(SchedulePolicy::Race).wallSeconds(30);
    SolveOptionsBuilder::Validated Race = RaceB.build();
    ASSERT_TRUE(Race.Ok) << Race.Error;
    SolveResult R = solveChcText(Text, Race.Options);
    ASSERT_TRUE(R.Ok) << R.Error;
    ASSERT_NE(R.Status, ChcResult::Unknown);
    EXPECT_TRUE(R.Stages.empty());

    SolveOptionsBuilder StagedB;
    StagedB.schedule(SchedulePolicy::Staged).wallSeconds(30);
    SolveOptionsBuilder::Validated Staged = StagedB.build();
    ASSERT_TRUE(Staged.Ok) << Staged.Error;
    SolveResult S = solveChcText(Text, Staged.Options);
    ASSERT_TRUE(S.Ok) << S.Error;
    // Parity: staged ends in the same full race with the remaining budget,
    // so it must match every definitive race verdict.
    EXPECT_EQ(S.Status, R.Status);
    ASSERT_FALSE(S.Stages.empty());
    EXPECT_EQ(S.SolverName, "staged");
    // The summary renders the stage ladder.
    EXPECT_NE(S.summary().find("stages:"), std::string::npos);
  }
}

TEST(StagedFacadeTest, AutoPolicyPicksStagedWithChoices) {
  baselines::registerBuiltinEngines();
  SolveOptionsBuilder B;
  B.schedule(SchedulePolicy::Auto).wallSeconds(30);
  SolveOptionsBuilder::Validated V = B.build();
  ASSERT_TRUE(V.Ok) << V.Error;
  SolveResult S = solveChcText(SafeCounterText, V.Options);
  ASSERT_TRUE(S.Ok) << S.Error;
  EXPECT_EQ(S.Status, ChcResult::Sat);
  // The baselines are registered, so auto must resolve to staged.
  EXPECT_FALSE(S.Stages.empty());
}

TEST(StagedFacadeTest, SerializationV2RoundTripsStages) {
  baselines::registerBuiltinEngines();
  SolveOptionsBuilder B;
  B.schedule(SchedulePolicy::Staged).wallSeconds(30);
  SolveOptionsBuilder::Validated V = B.build();
  ASSERT_TRUE(V.Ok) << V.Error;
  SolveResult S = solveChcText(SafeCounterText, V.Options);
  ASSERT_TRUE(S.Ok) << S.Error;
  ASSERT_EQ(S.Status, ChcResult::Sat);
  ASSERT_FALSE(S.Stages.empty());

  SolveResult R;
  ASSERT_TRUE(deserializeResult(serializeResult(S), R));
  EXPECT_EQ(R.Status, S.Status);
  EXPECT_EQ(R.Escalated, S.Escalated);
  ASSERT_EQ(R.Stages.size(), S.Stages.size());
  for (size_t I = 0; I < R.Stages.size(); ++I) {
    EXPECT_EQ(R.Stages[I].Stage, S.Stages[I].Stage);
    EXPECT_EQ(R.Stages[I].Engines, S.Stages[I].Engines);
    EXPECT_EQ(R.Stages[I].Hit, S.Stages[I].Hit);
    EXPECT_EQ(R.Stages[I].Status, S.Stages[I].Status);
  }
  ASSERT_EQ(R.Engines.size(), S.Engines.size());
  for (size_t I = 0; I < R.Engines.size(); ++I) {
    EXPECT_EQ(R.Engines[I].Lane, S.Engines[I].Lane);
    EXPECT_EQ(R.Engines[I].LaneIndex, S.Engines[I].LaneIndex);
  }

  // Old-format records must read as cache misses, not as corrupt data.
  std::string V1 = serializeResult(S);
  V1.replace(V1.find("la-solve 2"), 10, "la-solve 1");
  SolveResult Stale;
  EXPECT_FALSE(deserializeResult(V1, Stale));
}

} // namespace
