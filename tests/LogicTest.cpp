//===- tests/LogicTest.cpp - Term / LinearExpr / SExpr tests --------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "logic/LinearExpr.h"
#include "logic/SExpr.h"
#include "logic/Term.h"

#include <gtest/gtest.h>

using namespace la;

namespace {

class TermTest : public ::testing::Test {
protected:
  TermManager TM;
  const Term *X = TM.mkVar("x");
  const Term *Y = TM.mkVar("y");
};

TEST_F(TermTest, HashConsingGivesPointerEquality) {
  EXPECT_EQ(TM.mkVar("x"), X);
  EXPECT_EQ(TM.mkIntConst(3), TM.mkIntConst(3));
  EXPECT_EQ(TM.mkAdd(X, Y), TM.mkAdd(X, Y));
  EXPECT_NE(TM.mkAdd(X, Y), TM.mkAdd(Y, X)); // order is significant
  EXPECT_EQ(TM.mkLe(X, Y), TM.mkLe(X, Y));
}

TEST_F(TermTest, ConstantFolding) {
  EXPECT_EQ(TM.mkAdd(TM.mkIntConst(2), TM.mkIntConst(3)), TM.mkIntConst(5));
  EXPECT_EQ(TM.mkMul(Rational(0), X), TM.mkIntConst(0));
  EXPECT_EQ(TM.mkMul(Rational(1), X), X);
  EXPECT_EQ(TM.mkLe(TM.mkIntConst(1), TM.mkIntConst(2)), TM.mkTrue());
  EXPECT_EQ(TM.mkLt(TM.mkIntConst(2), TM.mkIntConst(2)), TM.mkFalse());
  EXPECT_EQ(TM.mkEq(X, X), TM.mkTrue());
}

TEST_F(TermTest, BooleanSimplification) {
  const Term *A = TM.mkLe(X, Y);
  EXPECT_EQ(TM.mkAnd(A, TM.mkTrue()), A);
  EXPECT_EQ(TM.mkAnd(A, TM.mkFalse()), TM.mkFalse());
  EXPECT_EQ(TM.mkOr(A, TM.mkFalse()), A);
  EXPECT_EQ(TM.mkOr(A, TM.mkTrue()), TM.mkTrue());
  EXPECT_EQ(TM.mkNot(TM.mkNot(A)), A);
  // Nested conjunctions flatten.
  const Term *B = TM.mkLt(Y, X);
  const Term *Nested = TM.mkAnd(TM.mkAnd(A, B), A);
  EXPECT_EQ(Nested->kind(), TermKind::And);
  EXPECT_EQ(Nested->numOperands(), 3u);
}

TEST_F(TermTest, MulDistributesOverAdd) {
  const Term *T = TM.mkMul(Rational(2), TM.mkAdd(X, TM.mkIntConst(3)));
  // 2*(x+3) = (+ (* 2 x) 6)
  std::optional<LinearExpr> E = LinearExpr::fromTerm(T);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->coefficient(X), Rational(2));
  EXPECT_EQ(E->constant(), Rational(6));
}

TEST_F(TermTest, FreshVarsAreDistinct) {
  const Term *A = TM.mkFreshVar("tmp");
  const Term *B = TM.mkFreshVar("tmp");
  EXPECT_NE(A, B);
  EXPECT_NE(A->name(), B->name());
}

TEST_F(TermTest, Substitution) {
  // (x + 2y <= 5)[x := y+1]  ==>  y+1+2y <= 5
  const Term *F =
      TM.mkLe(TM.mkAdd(X, TM.mkMul(Rational(2), Y)), TM.mkIntConst(5));
  std::unordered_map<const Term *, const Term *> Map{
      {X, TM.mkAdd(Y, TM.mkIntConst(1))}};
  const Term *G = TM.substitute(F, Map);
  std::unordered_map<const Term *, Rational> Asg{{Y, Rational(1)}};
  EXPECT_TRUE(evalFormula(G, Asg));  // 1+1+2 = 4 <= 5
  Asg[Y] = Rational(2);
  EXPECT_FALSE(evalFormula(G, Asg)); // 2+1+4 = 7 > 5
}

TEST_F(TermTest, EvaluationMatchesSemantics) {
  std::unordered_map<const Term *, Rational> Asg{{X, Rational(3)},
                                                 {Y, Rational(-2)}};
  EXPECT_EQ(evalTerm(TM.mkAdd(X, Y), Asg), Rational(1));
  EXPECT_EQ(evalTerm(TM.mkMul(Rational(-4), Y), Asg), Rational(8));
  EXPECT_TRUE(evalFormula(TM.mkLt(Y, X), Asg));
  EXPECT_FALSE(evalFormula(TM.mkEq(X, Y), Asg));
  EXPECT_TRUE(evalFormula(TM.mkNe(X, Y), Asg));
  EXPECT_TRUE(evalFormula(TM.mkImplies(TM.mkFalse(), TM.mkEq(X, Y)), Asg));
  // Euclidean mod: (-2) mod 3 == 1.
  EXPECT_EQ(evalTerm(TM.mkMod(Y, BigInt(3)), Asg), Rational(1));
  EXPECT_EQ(evalTerm(TM.mkMod(X, BigInt(2)), Asg), Rational(1));
}

TEST_F(TermTest, CollectVarsInOrder) {
  const Term *F = TM.mkLe(TM.mkAdd(Y, X), TM.mkAdd(X, TM.mkIntConst(1)));
  std::vector<const Term *> Vars = TM.collectVars(F);
  ASSERT_EQ(Vars.size(), 2u);
  EXPECT_EQ(Vars[0], Y);
  EXPECT_EQ(Vars[1], X);
}

TEST_F(TermTest, ContainsPredApp) {
  const Term *P = TM.mkPredApp("p", {X, Y});
  EXPECT_TRUE(TermManager::containsPredApp(TM.mkAnd(P, TM.mkLe(X, Y))));
  EXPECT_FALSE(TermManager::containsPredApp(TM.mkLe(X, Y)));
}

TEST_F(TermTest, Printing) {
  EXPECT_EQ(TM.mkIntConst(-3)->toString(), "(- 3)");
  EXPECT_EQ(TM.mkPredApp("inv", {X, Y})->toString(), "(inv x y)");
  EXPECT_EQ(TM.mkLe(X, TM.mkIntConst(0))->toString(), "(<= x 0)");
}

//===----------------------------------------------------------------------===//
// LinearExpr / LinearAtom
//===----------------------------------------------------------------------===//

TEST_F(TermTest, LinearExprCancellation) {
  LinearExpr E;
  E.addVar(X, Rational(2));
  E.addVar(X, Rational(-2));
  EXPECT_TRUE(E.isConstant());
  E.addVar(Y, Rational(1));
  LinearExpr D = E - E;
  EXPECT_TRUE(D.isConstant());
  EXPECT_TRUE(D.constant().isZero());
}

TEST_F(TermTest, LinearExprFromTermRejectsMod) {
  const Term *M = TM.mkMod(X, BigInt(2));
  EXPECT_FALSE(LinearExpr::fromTerm(M).has_value());
  EXPECT_FALSE(LinearExpr::fromTerm(TM.mkAdd(X, M)).has_value());
}

TEST_F(TermTest, NormalizeIntegral) {
  LinearExpr E;
  E.addVar(X, Rational(BigInt(1), BigInt(2)));
  E.addVar(Y, Rational(BigInt(3), BigInt(4)));
  E.addConstant(Rational(BigInt(-5), BigInt(2)));
  E.normalizeIntegral();
  EXPECT_EQ(E.coefficient(X), Rational(2));
  EXPECT_EQ(E.coefficient(Y), Rational(3));
  EXPECT_EQ(E.constant(), Rational(-10));

  LinearExpr G;
  G.addVar(X, Rational(4));
  G.addConstant(Rational(6));
  G.normalizeIntegral();
  EXPECT_EQ(G.coefficient(X), Rational(2));
  EXPECT_EQ(G.constant(), Rational(3));
}

TEST_F(TermTest, LinearAtomFromTermAndNegation) {
  // x + 2 <= y  ==>  x - y + 2 <= 0
  const Term *F = TM.mkLe(TM.mkAdd(X, TM.mkIntConst(2)), Y);
  std::optional<LinearAtom> Atom = LinearAtom::fromTerm(F);
  ASSERT_TRUE(Atom.has_value());
  EXPECT_EQ(Atom->Rel, LinRel::Le);
  EXPECT_EQ(Atom->Expr.coefficient(X), Rational(1));
  EXPECT_EQ(Atom->Expr.coefficient(Y), Rational(-1));
  EXPECT_EQ(Atom->Expr.constant(), Rational(2));

  LinearAtom Neg = Atom->negated();
  EXPECT_EQ(Neg.Rel, LinRel::Lt);
  EXPECT_EQ(Neg.Expr.coefficient(X), Rational(-1));

  std::unordered_map<const Term *, Rational> Asg{{X, Rational(0)},
                                                 {Y, Rational(2)}};
  EXPECT_TRUE(Atom->holds(Asg));
  EXPECT_FALSE(Neg.holds(Asg));
  Asg[Y] = Rational(1);
  EXPECT_FALSE(Atom->holds(Asg));
  EXPECT_TRUE(Neg.holds(Asg));
}

TEST_F(TermTest, LinearAtomToTermRoundTrip) {
  LinearAtom Atom;
  Atom.Expr.addVar(X, Rational(BigInt(1), BigInt(3)));
  Atom.Expr.addConstant(Rational(BigInt(-2), BigInt(3)));
  Atom.Rel = LinRel::Le;
  const Term *T = Atom.toTerm(TM); // x - 2 <= 0
  std::unordered_map<const Term *, Rational> Asg{{X, Rational(2)}};
  EXPECT_TRUE(evalFormula(T, Asg));
  Asg[X] = Rational(3);
  EXPECT_FALSE(evalFormula(T, Asg));
}

//===----------------------------------------------------------------------===//
// SExpr
//===----------------------------------------------------------------------===//

TEST(SExprTest, ParsesAtomsAndLists) {
  SExprParseResult R = parseSExprs("(declare-fun p (Int Int) Bool)\n(foo)");
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.TopLevel.size(), 2u);
  EXPECT_TRUE(R.TopLevel[0].isCall("declare-fun"));
  EXPECT_EQ(R.TopLevel[0].Items.size(), 4u);
  EXPECT_TRUE(R.TopLevel[0].Items[1].isAtom("p"));
  EXPECT_EQ(R.TopLevel[0].toString(), "(declare-fun p (Int Int) Bool)");
}

TEST(SExprTest, CommentsAndQuotedSymbols) {
  SExprParseResult R = parseSExprs("; header\n(assert |weird name|) ; tail\n");
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.TopLevel.size(), 1u);
  EXPECT_TRUE(R.TopLevel[0].Items[1].isAtom("weird name"));
}

TEST(SExprTest, ReportsErrorsWithLines) {
  SExprParseResult Unterminated = parseSExprs("(a (b c)\n");
  EXPECT_FALSE(Unterminated.Ok);
  EXPECT_NE(Unterminated.Error.find("line"), std::string::npos);
  EXPECT_FALSE(parseSExprs(")").Ok);
  EXPECT_FALSE(parseSExprs("(|x").Ok);
}

TEST(SExprTest, TracksLineNumbers) {
  SExprParseResult R = parseSExprs("(a)\n(b)\n(c)");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.TopLevel[0].Line, 1u);
  EXPECT_EQ(R.TopLevel[1].Line, 2u);
  EXPECT_EQ(R.TopLevel[2].Line, 3u);
}

} // namespace
