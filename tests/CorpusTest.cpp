//===- tests/CorpusTest.cpp - Benchmark corpus sanity tests ---------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Harness.h"
#include "frontend/Encoder.h"
#include "solver/DataDrivenSolver.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

using namespace la;
using namespace la::corpus;

namespace {

TEST(CorpusTest, IsReasonablySized) {
  EXPECT_GE(allPrograms().size(), 100u);
  size_t Safe = 0, Unsafe = 0;
  for (const BenchmarkProgram &P : allPrograms())
    (P.ExpectedSafe ? Safe : Unsafe)++;
  EXPECT_GE(Safe, 60u);
  EXPECT_GE(Unsafe, 15u);
}

TEST(CorpusTest, NamesAreUnique) {
  std::set<std::string> Names;
  for (const BenchmarkProgram &P : allPrograms())
    EXPECT_TRUE(Names.insert(P.Name).second) << "duplicate: " << P.Name;
}

TEST(CorpusTest, CategoriesCoverThePaperExperiments) {
  std::vector<std::string> Cats = categories();
  for (const char *Needed :
       {"pie-suite", "dig-suite", "loop-lit", "loop-invgen", "recursive",
        "product-lines", "systemc"})
    EXPECT_NE(std::find(Cats.begin(), Cats.end(), Needed), Cats.end())
        << "missing category " << Needed;
  EXPECT_GE(category("recursive").size(), 10u);
  EXPECT_GE(category("pie-suite").size(), 10u);
}

TEST(CorpusTest, LookupWorks) {
  ASSERT_NE(find("paper_fig1"), nullptr);
  EXPECT_TRUE(find("paper_fig1")->ExpectedSafe);
  EXPECT_EQ(find("no_such_program"), nullptr);
}

/// Every corpus program must parse and encode into a well-formed CHC system
/// with at least one query clause.
TEST(CorpusTest, EveryProgramEncodes) {
  for (const BenchmarkProgram &P : allPrograms()) {
    TermManager TM;
    chc::ChcSystem System(TM);
    frontend::EncodeResult R = frontend::encodeMiniC(P.Source, System);
    ASSERT_TRUE(R.Ok) << P.Name << ": " << R.Error;
    bool HasQuery = false;
    for (const chc::HornClause &C : System.clauses())
      HasQuery |= C.isQuery();
    EXPECT_TRUE(HasQuery) << P.Name << " encodes without any assertion";
  }
}

/// Ground-truth spot check: a stratified sample of the corpus must solve to
/// its expected verdict with the paper's solver (this is the slowest test in
/// the suite and acts as the end-to-end regression net).
TEST(CorpusTest, SampleSolvesToExpectedVerdict) {
  const char *Sample[] = {
      "paper_fig1",         "paper_fig3_a",     "paper_fig5_fibo",
      "paper_fig5_fibo_unsafe", "rec_sum",      "rec_hanoi",
      "gen_counter_b5_s1",  "gen_counter_b5_s1_bug",
      "gen_relation_a2_b1", "gen_twophase_p4",  "gen_parity_s2_a1",
      "gen_systemc_s3",     "gen_product_f4",   "gen_multiloop_k2",
      "gen_unbounded_s0",   "gen_unbounded_bug", "mod_even_counter",
      "dig_conserved_sum",  "lit_updown_unsafe",
  };
  for (const char *Name : Sample) {
    const BenchmarkProgram *P = find(Name);
    ASSERT_NE(P, nullptr) << Name;
    solver::DataDrivenChcSolver Solver(defaultOptionsFor(*P, 60));
    RunOutcome Out = runOnProgram(Solver, *P);
    EXPECT_TRUE(Out.Solved) << Name << " status=" << chc::toString(Out.Status);
    EXPECT_FALSE(Out.Unsound) << Name;
  }
}

/// Differential net for the incremental backend: with LA_CHECK_INCREMENTAL
/// set, every non-cached clause check inside the solve is replayed on the
/// one-shot SMT path and asserted to agree (Invalid models are re-evaluated
/// on the clause). Any divergence aborts the test binary. The sample spans
/// safe, unsafe, recursive and mod-heavy programs.
TEST(CorpusTest, IncrementalCheckerAgreesWithOneShotOnBundledPrograms) {
  const char *Sample[] = {
      "paper_fig1",   "paper_fig3_a",        "rec_sum",
      "mod_even_counter", "gen_counter_b5_s1", "gen_counter_b5_s1_bug",
      "gen_relation_a2_b1", "lit_updown_unsafe",
  };
  ASSERT_EQ(setenv("LA_CHECK_INCREMENTAL", "1", /*overwrite=*/1), 0);
  for (const char *Name : Sample) {
    const BenchmarkProgram *P = find(Name);
    ASSERT_NE(P, nullptr) << Name;
    solver::DataDrivenChcSolver Solver(defaultOptionsFor(*P, 30));
    RunOutcome Out = runOnProgram(Solver, *P);
    EXPECT_TRUE(Out.Solved) << Name << " status=" << chc::toString(Out.Status);
    EXPECT_FALSE(Out.Unsound) << Name;
  }
  unsetenv("LA_CHECK_INCREMENTAL");
}

TEST(HarnessTest, ModFeatureExtraction) {
  EXPECT_EQ(modFeaturesFor("x % 2 == 0 && y%3 != 1"),
            (std::vector<int64_t>{2, 3}));
  EXPECT_TRUE(modFeaturesFor("x + y * 3").empty());
  EXPECT_EQ(modFeaturesFor("a % 2 + b % 2"), (std::vector<int64_t>{2}));
}

} // namespace
