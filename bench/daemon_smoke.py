#!/usr/bin/env python3
"""Smoke test for the chc_serve daemon.

Starts the daemon and drives it over stdin/stdout in two waves:

  wave 1: one solve request per bundled .smt2 benchmark, submitted
          back-to-back so >= 8 are in flight concurrently;
  wave 2: the same requests again, after wave 1 completed, which must all
          be answered from the memo cache.

Asserts every verdict matches the benchmark's expected safety (file names
end in _safe/_unsafe), that the metrics report carries queue depth and a
solved/s figure, and that `shutdown` answers `bye` with exit code 0.

With a cache directory as third argument, additionally runs the corpus
through two *separate* daemon processes sharing that `--cache-dir` and
asserts the second run answers >= 90% of the verdicts from the persistent
disk cache (`disk=1` in the response line) — the restart-survival story.

Usage: daemon_smoke.py <chc_serve-binary> <smt2-corpus-dir> [cache-dir]
"""

import glob
import json
import os
import subprocess
import sys
import threading


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


class Daemon:
    def __init__(self, binary, extra_args=()):
        self.proc = subprocess.Popen(
            [binary, "--workers", "8", "--budget", "120", *extra_args],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True)
        self.watchdog = threading.Timer(300, self.proc.kill)
        self.watchdog.start()

    def send(self, line):
        self.proc.stdin.write(line + "\n")
        self.proc.stdin.flush()

    def read_until(self, count=None, sentinel=None):
        """Collects response lines until `count` completions (ok/error/
        rejected/expired) arrive, or a line starting with `sentinel`."""
        got = []
        while True:
            line = self.proc.stdout.readline()
            if not line:
                fail(f"daemon closed stdout early; got so far: {got}")
            line = line.strip()
            if not line:
                continue
            got.append(line)
            if sentinel is not None and line.startswith(sentinel):
                return got
            if count is not None and len(got) == count:
                return got

    def finish(self):
        self.send("shutdown")
        tail = self.read_until(sentinel="bye")
        self.proc.stdin.close()
        code = self.proc.wait()
        self.watchdog.cancel()
        if code != 0:
            fail(f"daemon exited {code}")
        return tail


def check_wave(lines, expected, want_cached):
    verdicts, cached = {}, {}
    for line in lines:
        words = line.split()
        if words[0] != "ok":
            fail(f"unexpected response: {line}")
        verdicts[words[1]] = words[2]
        cached[words[1]] = "cached=1" in words
    missing = sorted(set(expected) - set(verdicts))
    if missing:
        fail(f"no response for: {missing}")
    for rid, safe in sorted(expected.items()):
        want = "sat" if safe else "unsat"
        if verdicts[rid] != want:
            fail(f"{rid}: got {verdicts[rid]}, want {want}")
        if want_cached and not cached[rid]:
            fail(f"{rid}: expected a cache hit on the repeat request")


def run_disk_cache_check(binary, benchmarks, cache_dir):
    """Two daemon processes sharing --cache-dir: run 2 must serve >= 90%
    of the verdicts from the persistent cache."""
    disk_served = 0
    for run in (1, 2):
        daemon = Daemon(binary, ("--cache-dir", cache_dir, "--cache", "0"))
        expected = {}
        for path in benchmarks:
            stem = os.path.splitext(os.path.basename(path))[0]
            rid = f"{stem}@disk{run}"
            expected[rid] = not stem.endswith("_unsafe")
            daemon.send(f"solve {rid} {path} budget=60")
        lines = daemon.read_until(count=len(expected))
        check_wave(lines, expected, want_cached=False)
        if run == 2:
            disk_served = sum(1 for line in lines if "disk=1" in line.split())
        daemon.finish()
    need = 0.9 * len(benchmarks)
    if disk_served < need:
        fail(f"second daemon run served only {disk_served}/{len(benchmarks)} "
             f"verdicts from the persistent cache (need >= {need:.0f})")
    return disk_served


def main():
    if len(sys.argv) not in (3, 4):
        fail(f"usage: {sys.argv[0]} <chc_serve-binary> <smt2-corpus-dir> "
             f"[cache-dir]")
    binary, corpus = sys.argv[1], sys.argv[2]
    cache_dir = sys.argv[3] if len(sys.argv) == 4 else None

    benchmarks = sorted(glob.glob(os.path.join(corpus, "*.smt2")))
    if len(benchmarks) < 8:
        fail(f"expected at least 8 .smt2 benchmarks in {corpus}, "
             f"found {len(benchmarks)}")

    daemon = Daemon(binary)
    for wave in (1, 2):
        expected = {}
        for path in benchmarks:
            stem = os.path.splitext(os.path.basename(path))[0]
            rid = f"{stem}@{wave}"
            expected[rid] = not stem.endswith("_unsafe")
            daemon.send(f"solve {rid} {path} budget=60")
        check_wave(daemon.read_until(count=len(expected)), expected,
                   want_cached=(wave == 2))

    daemon.send("metrics")
    metrics_line = daemon.read_until(sentinel="metrics ")[-1]
    metrics = json.loads(metrics_line.split(" ", 1)[1])
    for key in ("queue_depth", "solved_per_second", "submitted",
                "cache_hits", "engine_wins"):
        if key not in metrics:
            fail(f"metrics response lacks '{key}': {metrics}")
    if metrics["submitted"] < 2 * len(benchmarks):
        fail(f"metrics submitted={metrics['submitted']} too low")
    if metrics["cache_hits"] < len(benchmarks):
        fail(f"metrics cache_hits={metrics['cache_hits']} too low")

    daemon.finish()
    print(f"OK: {2 * len(benchmarks)} requests over 8 workers, "
          f"{metrics['cache_hits']} cache hits, "
          f"{metrics['solved_per_second']:.2f} solved/s reported")

    if cache_dir:
        disk_served = run_disk_cache_check(binary, benchmarks, cache_dir)
        print(f"OK: persistent cache served {disk_served}/{len(benchmarks)} "
              f"verdicts across a daemon restart")


if __name__ == "__main__":
    main()
