//===- bench/ablation_dt.cpp ------------------------------------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
// Reproduces the decision-tree ablation of §6: running the whole evaluation
// with DT learning disabled (raw LinearArbitrary classifiers as invariant
// candidates). The paper reports that convergence collapses -- "most of the
// benchmarks could not be verified within the timeout range".
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace la;
using namespace la::bench;

int main() {
  printf("== Ablation: decision-tree layer on/off ==\n");
  printf("PAPER: without DT generalisation the convergence rate decreases\n"
         "PAPER: significantly; most benchmarks are not verified in time.\n\n");

  std::vector<const corpus::BenchmarkProgram *> Programs =
      suite({"loop-lit", "loop-invgen", "pie-suite", "dig-suite",
             "recursive"});
  double Timeout = benchTimeout();

  SuiteResult With = runSuite(linearArbitraryFactory(), Programs, Timeout);
  SuiteResult Without = runSuite(noDtFactory(), Programs, Timeout);

  printSummary(Programs.size(), With);
  printSummary(Programs.size(), Without);

  // Where does the ablation hurt? Iteration and sample blow-ups.
  size_t LostPrograms = 0;
  double IterRatioSum = 0;
  size_t Compared = 0;
  for (size_t I = 0; I < Programs.size(); ++I) {
    if (With.Outcomes[I].Solved && !Without.Outcomes[I].Solved)
      ++LostPrograms;
    if (With.Outcomes[I].Solved && Without.Outcomes[I].Solved &&
        With.Outcomes[I].Stats.Iterations > 0) {
      IterRatioSum +=
          static_cast<double>(Without.Outcomes[I].Stats.Iterations) /
          With.Outcomes[I].Stats.Iterations;
      ++Compared;
    }
  }
  printf("MEASURED: programs solved only with the DT layer: %zu\n",
         LostPrograms);
  if (Compared)
    printf("MEASURED: mean CEGAR-iteration blow-up without DT on commonly "
           "solved programs: %.2fx\n",
           IterRatioSum / Compared);
  return 0;
}
