#!/usr/bin/env python3
"""Fits the table-driven engine-selector model from BENCH_table1.json.

The bench harness (`table1_solver_comparison`) writes, per program, the
scheduler's static `ProblemFeatures` vector (`program_features`) and, per
engine row, the outcome of every program (`solvers[].programs[]`). This
script joins the two and fits one ridge-regression model per engine
predicting a solve-quality score:

    y = 1 / (1 + seconds)   if the engine solved the program
    y = 0                   otherwise

so a higher predicted score means "this engine tends to answer this kind of
problem, quickly". The result is written in the `selector 1` text format
parsed by `solver::TableSelector::parse`:

    selector 1
    features <n> <name>...
    engine <id> <bias> <weight>...
    end

and is loaded at runtime with `solve_chc_file --selector FILE` or
`chc_serve --selector FILE`.

Only the plain baseline rows are fit; the LA-* ablation variants and the
portfolio row do not correspond to registry engines a scheduler could pick.
Everything here is stdlib-only (the fit is a tiny dense linear solve).

Usage: fit_selector.py <BENCH_table1.json> <output-model-file>
"""

import json
import sys

# Bench row label -> registry engine id. The bench labels engines by the
# paper's names; the registry uses the implementation names.
LABEL_TO_ENGINE = {
    "gpdr": "gpdr",
    "spacer": "pdr",
    "duality": "unwind",
    "LinearArbitrary": "la",
}

RIDGE_LAMBDA = 0.1


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def solve_linear(a, b):
    """Solves a x = b by Gaussian elimination with partial pivoting."""
    n = len(b)
    m = [row[:] + [b[i]] for i, row in enumerate(a)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(m[r][col]))
        if abs(m[pivot][col]) < 1e-12:
            fail(f"singular normal matrix at column {col}")
        m[col], m[pivot] = m[pivot], m[col]
        for row in range(n):
            if row == col:
                continue
            factor = m[row][col] / m[col][col]
            for k in range(col, n + 1):
                m[row][k] -= factor * m[col][k]
    return [m[i][n] / m[i][i] for i in range(n)]


def fit_ridge(xs, ys):
    """Returns [bias, w_1, ..., w_d] minimising ||y - Xw||^2 + lam ||w||^2
    (bias unregularised)."""
    d = len(xs[0]) + 1
    rows = [[1.0] + x for x in xs]
    a = [[sum(r[i] * r[j] for r in rows) for j in range(d)] for i in range(d)]
    for i in range(1, d):
        a[i][i] += RIDGE_LAMBDA
    b = [sum(r[i] * y for r, y in zip(rows, ys)) for i in range(d)]
    return solve_linear(a, b)


def main():
    if len(sys.argv) != 3:
        fail(f"usage: {sys.argv[0]} <BENCH_table1.json> <output-model-file>")
    with open(sys.argv[1]) as f:
        table = json.load(f)

    feature_rows = table.get("program_features")
    if not feature_rows:
        fail("BENCH_table1.json has no program_features array")
    # Feature names in bench emission order (matches ProblemFeatures::names()
    # for the static prefix; analysis-time features are absent here and
    # weigh zero at runtime, which the parser's by-name join tolerates).
    names = [k for k in feature_rows[0] if k != "name"]
    if not names:
        fail("program_features rows carry no feature values")
    features = {
        row["name"]: [float(row.get(n, 0.0)) for n in names]
        for row in feature_rows
    }

    models = {}
    for solver_row in table.get("solvers", []):
        engine = LABEL_TO_ENGINE.get(solver_row.get("name"))
        if engine is None:
            continue  # LA-* ablations, LA-portfolio: not registry engines.
        xs, ys = [], []
        for prog in solver_row.get("programs", []):
            x = features.get(prog["name"])
            if x is None:
                continue
            xs.append(x)
            ys.append(1.0 / (1.0 + float(prog["seconds"]))
                      if prog.get("solved") else 0.0)
        if len(xs) <= len(names):
            # Under-determined even with the ridge term (smoke runs keep
            # only a couple of programs); skip rather than fit noise. The
            # runtime falls back to the rule baseline for unmodeled engines.
            print(f"note: skipping '{engine}' ({len(xs)} rows for "
                  f"{len(names)} features)")
            continue
        models[engine] = fit_ridge(xs, ys)

    with open(sys.argv[2], "w") as out:
        out.write("selector 1\n")
        out.write(f"features {len(names)} {' '.join(names)}\n")
        for engine in sorted(models):
            weights = " ".join(f"{w:.9g}" for w in models[engine])
            out.write(f"engine {engine} {weights}\n")
        out.write("end\n")
    print(f"OK: fit {len(models)} engine model(s) "
          f"({', '.join(sorted(models)) or 'none'}) over {len(names)} "
          f"features -> {sys.argv[2]}")


if __name__ == "__main__":
    main()
