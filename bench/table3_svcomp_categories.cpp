//===- bench/table3_svcomp_categories.cpp -----------------------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
// Reproduces the per-category SV-COMP tables of §6: UAutomizer-style
// interpolation versus LinearArbitrary on each corpus category, including
// the scalability categories (our Product-lines / Systemc analogues).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace la;
using namespace la::bench;

int main() {
  printf("== Table 3: per-category comparison (UAutomizer vs ours) ==\n");
  printf("PAPER: loop-lit/loop-invgen/recursive: 126/135 vs 111/135.\n"
         "PAPER: NTDriver 9 vs 7 (of 10) | Product 589 vs 357 (of 597) |\n"
         "PAPER: Psyco 6 vs 8 (of 10)    | Systemc 40 vs 31 (of 62)\n\n");

  double Timeout = benchTimeout();
  printf("%-16s %7s %18s %18s\n", "category", "#progs", "interpolation",
         "LinearArbitrary");
  for (const std::string &Cat : corpus::categories()) {
    std::vector<const corpus::BenchmarkProgram *> Programs =
        corpus::category(Cat);
    SuiteResult Itp =
        runSuite(unwindFactory(/*SummaryReuse=*/false), Programs, Timeout);
    SuiteResult Ours = runSuite(linearArbitraryFactory(), Programs, Timeout);
    printf("%-16s %7zu %12zu (%4.1fs) %12zu (%4.1fs)%s\n", Cat.c_str(),
           Programs.size(), Itp.Solved, Itp.TotalSeconds, Ours.Solved,
           Ours.TotalSeconds,
           (Itp.Unsound || Ours.Unsound) ? "  UNSOUND RESULTS PRESENT" : "");
  }
  return 0;
}
