#!/usr/bin/env python3
"""Gate BENCH_table1.json against a checked-in solved_by_analysis baseline.

Usage: check_table1_baseline.py RESULTS.json BASELINE.json

`solved_by_analysis` counts programs discharged entirely by the static
pre-analysis ladder (no CEGAR iterations), which makes it insensitive to
runner speed -- unlike `solved`, which moves with the wall-clock timeout.
The job fails when any solver row present in the baseline regresses below
its recorded floor, and prints a reminder when a row has improved enough
that the floor should be raised.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as fp:
        results = json.load(fp)
    with open(sys.argv[2]) as fp:
        baseline = json.load(fp)

    measured = {s["name"]: s["solved_by_analysis"]
                for s in results["solvers"]}
    failures = []
    for name, floor in baseline["solved_by_analysis"].items():
        got = measured.get(name)
        if got is None:
            failures.append(f"{name}: missing from results (baseline {floor})")
        elif got < floor:
            failures.append(f"{name}: solved_by_analysis {got} < baseline {floor}")
        else:
            print(f"OK   {name}: solved_by_analysis {got} (baseline {floor})")
            if got > floor:
                print(f"     note: {name} beats its floor; consider raising "
                      f"the baseline to {got}")

    if failures:
        for line in failures:
            print(f"FAIL {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
