//===- bench/micro_components.cpp --------------------------------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
// google-benchmark microbenchmarks for the substrate components: exact
// arithmetic, simplex, the SMT solver, the learners and the decision tree.
// These support the evaluation (no paper counterpart): they document where
// the verification time goes.
//
//===----------------------------------------------------------------------===//

#include "analysis/Octagon.h"
#include "analysis/PassManager.h"
#include "analysis/VariablePacks.h"
#include "chc/ChcParser.h"
#include "ml/Learn.h"
#include "ml/Svm.h"
#include "smt/SmtSolver.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

using namespace la;

static void BM_BigIntMulDiv(benchmark::State &State) {
  BigInt A = *BigInt::fromString("123456789123456789123456789123456789");
  BigInt B = *BigInt::fromString("987654321987654321");
  for (auto _ : State) {
    BigInt C = A * B;
    benchmark::DoNotOptimize(C.divMod(B));
  }
}
BENCHMARK(BM_BigIntMulDiv);

static void BM_RationalArithmetic(benchmark::State &State) {
  Rational A(BigInt(355), BigInt(113));
  Rational B(BigInt(-22), BigInt(7));
  for (auto _ : State) {
    Rational C = A * B + A - B;
    benchmark::DoNotOptimize(C / A);
  }
}
BENCHMARK(BM_RationalArithmetic);

/// Simplex feasibility on a random bounded system of the size a CHC VC has.
static void BM_SimplexCheck(benchmark::State &State) {
  const int NumVars = static_cast<int>(State.range(0));
  for (auto _ : State) {
    Random Rng(42);
    smt::Simplex Splx;
    std::vector<smt::Simplex::VarId> Vars;
    for (int I = 0; I < NumVars; ++I)
      Vars.push_back(Splx.addVar());
    // Random difference constraints.
    for (int I = 0; I < NumVars * 2; ++I) {
      smt::Simplex::VarId A = Vars[Rng.nextBounded(Vars.size())];
      smt::Simplex::VarId B = Vars[Rng.nextBounded(Vars.size())];
      if (A == B)
        continue;
      smt::Simplex::VarId S =
          Splx.addDefinedVar({{A, Rational(1)}, {B, Rational(-1)}});
      smt::Simplex::BoundUndo Undo;
      (void)Splx.assertBound(S, false,
                             DeltaRational(Rational(Rng.nextInRange(0, 10))),
                             I, Undo);
    }
    benchmark::DoNotOptimize(Splx.check());
  }
}
BENCHMARK(BM_SimplexCheck)->Arg(8)->Arg(32);

/// A full SMT check of a Fig.1-style verification condition.
static void BM_SmtVerificationCondition(benchmark::State &State) {
  for (auto _ : State) {
    TermManager TM;
    const Term *X = TM.mkVar("x"), *Y = TM.mkVar("y");
    const Term *X2 = TM.mkVar("x2"), *Y2 = TM.mkVar("y2");
    const Term *Inv = TM.mkAnd(TM.mkGe(X, TM.mkIntConst(1)),
                               TM.mkGe(Y, TM.mkIntConst(0)));
    const Term *InvPost = TM.mkAnd(TM.mkGe(X2, TM.mkIntConst(1)),
                                   TM.mkGe(Y2, TM.mkIntConst(0)));
    smt::SmtSolver Solver(TM);
    Solver.assertFormula(TM.mkAnd(
        {Inv, TM.mkEq(X2, TM.mkAdd(X, Y)),
         TM.mkEq(Y2, TM.mkAdd(Y, TM.mkIntConst(1))), TM.mkNot(InvPost)}));
    benchmark::DoNotOptimize(Solver.check());
  }
}
BENCHMARK(BM_SmtVerificationCondition);

/// The CEGAR-shaped workload of the incremental backend: one clause skeleton
/// checked against a chain of candidate invariants. Arg(0) = one-shot (fresh
/// solver per candidate, the pre-incremental behaviour), Arg(1) = incremental
/// (persistent solver, push/assert/check/pop per candidate). The `pivots`
/// counter exposes the simplex work: the incremental arm sets up the skeleton
/// tableau once and keeps its bounds, so it must pivot far less.
static void BM_IncrementalVsOneShot(benchmark::State &State) {
  const bool Incremental = State.range(0) != 0;
  const int NumCandidates = 24;
  for (auto _ : State) {
    TermManager TM;
    const Term *X = TM.mkVar("x"), *Y = TM.mkVar("y");
    const Term *X2 = TM.mkVar("x2"), *Y2 = TM.mkVar("y2");
    // Step clause body of Fig. 1: x' = x + y, y' = y + 1.
    const Term *Skeleton =
        TM.mkAnd(TM.mkEq(X2, TM.mkAdd(X, Y)),
                 TM.mkEq(Y2, TM.mkAdd(Y, TM.mkIntConst(1))));
    // Candidate K: x >= 1 /\ y >= 0 /\ x + K >= K*y (a strengthening chain
    // like the learner's successive half-space refinements).
    auto Candidate = [&](int K, const Term *A, const Term *B) {
      return TM.mkAnd({TM.mkGe(A, TM.mkIntConst(1)),
                       TM.mkGe(B, TM.mkIntConst(0)),
                       TM.mkGe(TM.mkAdd(A, TM.mkIntConst(K)),
                               TM.mkMul(Rational(K), B))});
    };
    uint64_t Pivots = 0;
    if (Incremental) {
      smt::SmtSolver S(TM);
      S.assertFormula(Skeleton);
      for (int K = 0; K < NumCandidates; ++K) {
        S.push();
        S.assertFormula(TM.mkAnd(Candidate(K, X, Y),
                                 TM.mkNot(Candidate(K, X2, Y2))));
        benchmark::DoNotOptimize(S.check());
        S.pop();
      }
      Pivots = S.stats().SimplexStats.Pivots;
    } else {
      for (int K = 0; K < NumCandidates; ++K) {
        smt::SmtSolver S(TM);
        S.assertFormula(Skeleton);
        S.assertFormula(TM.mkAnd(Candidate(K, X, Y),
                                 TM.mkNot(Candidate(K, X2, Y2))));
        benchmark::DoNotOptimize(S.check());
        Pivots += S.stats().SimplexStats.Pivots;
      }
    }
    State.counters["pivots"] = static_cast<double>(Pivots);
  }
}
BENCHMARK(BM_IncrementalVsOneShot)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("incremental");

/// The full static pre-analysis pipeline (slicing + interval fixpoint +
/// invariant verification) on a system with a bounded counting loop, a
/// predicate outside the query cone, and a predicate unreachable from facts.
static void BM_AnalysisPipeline(benchmark::State &State) {
  const std::string Text = R"(
(set-logic HORN)
(declare-fun inv (Int) Bool)
(declare-fun dead (Int) Bool)
(declare-fun orphan (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (< n 10) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int) (a Int))
  (=> (and (inv n) (= a (+ n 5))) (dead a))))
(assert (forall ((b Int)) (=> (and (orphan b) (> b 0)) (orphan b))))
(assert (forall ((n Int)) (=> (inv n) (<= n 10))))
)";
  for (auto _ : State) {
    TermManager TM;
    chc::ChcSystem System(TM);
    chc::ChcParseResult P = chc::parseChcText(Text, System);
    if (!P.Ok)
      State.SkipWithError("parse failure in BM_AnalysisPipeline");
    analysis::AnalysisResult R = analysis::analyzeSystem(System);
    benchmark::DoNotOptimize(R);
    State.counters["pruned"] = static_cast<double>(R.clausesPruned());
    State.counters["resolved"] = static_cast<double>(R.predicatesResolved());
    State.counters["bounds"] = static_cast<double>(R.boundsFound());
    State.counters["proved_sat"] = R.ProvedSat ? 1 : 0;
  }
}
BENCHMARK(BM_AnalysisPipeline);

/// Strong closure of one octagon DBM, the inner loop of the relational
/// analysis pass: Arg = number of variables (a 2n x 2n matrix of exact
/// rationals). The octagon carries a random mix of unary and pairwise
/// constraints plus one infeasible-free chain so closure does real work.
static void BM_OctagonClosure(benchmark::State &State) {
  const size_t NumVars = static_cast<size_t>(State.range(0));
  for (auto _ : State) {
    Random Rng(17);
    analysis::Octagon O(NumVars);
    for (size_t I = 0; I < NumVars; ++I) {
      O.addLower(I, Rational(Rng.nextInRange(-20, 0)));
      O.addUpper(I, Rational(Rng.nextInRange(1, 20)));
    }
    for (size_t I = 0; I + 1 < NumVars; ++I)
      O.addPair(I, false, I + 1, true, Rational(Rng.nextInRange(0, 5)));
    // boundOf forces the strong closure (Floyd-Warshall, strengthening,
    // integer tightening).
    benchmark::DoNotOptimize(O.boundOf(NumVars - 1));
    State.counters["empty"] = O.isEmpty() ? 1 : 0;
  }
}
BENCHMARK(BM_OctagonClosure)->Arg(4)->Arg(16);

/// Pack-decomposed vs monolithic strong closure at the same total dimension
/// count: Arg0 = total variables, Arg1 = pack size (0 = one monolithic
/// DBM). The constraint mix mirrors BM_OctagonClosure with pair chains kept
/// within packs, so the packed shape carries the same per-pack facts while
/// replacing one O((2n)^3) closure by n/p closures of O((2p)^3) — the
/// wide-clause win of the pack decomposition (DESIGN.md §13).
static void BM_PackedVsMonolithicClosure(benchmark::State &State) {
  const size_t NumVars = static_cast<size_t>(State.range(0));
  const size_t PackSize = static_cast<size_t>(State.range(1));
  std::shared_ptr<const analysis::PredPacks> Layout =
      PackSize == 0 ? analysis::PredPacks::monolithic(NumVars)
                    : analysis::PredPacks::uniform(NumVars, PackSize);
  for (auto _ : State) {
    Random Rng(17);
    analysis::PackedOctagon V = analysis::PackedOctagon::top(Layout);
    for (size_t K = 0; K < V.packCount(); ++K) {
      analysis::Octagon &O = V.pack(K);
      for (size_t I = 0; I < O.numVars(); ++I) {
        O.addLower(I, Rational(Rng.nextInRange(-20, 0)));
        O.addUpper(I, Rational(Rng.nextInRange(1, 20)));
      }
      for (size_t I = 0; I + 1 < O.numVars(); ++I)
        O.addPair(I, false, I + 1, true, Rational(Rng.nextInRange(0, 5)));
    }
    // boundOf forces the strong closure of the owning pack; sweeping every
    // position closes all packs (the monolithic layout closes everything on
    // the first query).
    for (size_t J = 0; J < NumVars; ++J)
      benchmark::DoNotOptimize(V.boundOf(J));
    State.counters["packs"] = static_cast<double>(V.packCount());
  }
}
BENCHMARK(BM_PackedVsMonolithicClosure)
    ->Args({120, 0})
    ->Args({120, 8})
    ->Unit(benchmark::kMillisecond);

static ml::Dataset randomDataset(int NumSamples, int Dim, uint64_t Seed) {
  Random Rng(Seed);
  ml::Dataset Data(Dim);
  for (int I = 0; I < NumSamples; ++I) {
    ml::Sample S;
    int64_t Sum = 0;
    for (int D = 0; D < Dim; ++D) {
      int64_t V = Rng.nextInRange(-20, 20);
      Sum += V;
      S.push_back(Rational(V));
    }
    // Mostly linearly separable labels with some noise.
    bool Positive = Sum + Rng.nextInRange(-4, 4) >= 0;
    (Positive ? Data.Pos : Data.Neg).push_back(std::move(S));
  }
  return Data;
}

static void BM_SvmTraining(benchmark::State &State) {
  ml::Dataset Data = randomDataset(static_cast<int>(State.range(0)), 4, 7);
  for (auto _ : State) {
    Random Rng(13);
    benchmark::DoNotOptimize(ml::SvmLearner().learn(Data, Rng));
  }
}
BENCHMARK(BM_SvmTraining)->Arg(50)->Arg(200);

static void BM_LearnToolchain(benchmark::State &State) {
  ml::Dataset Data = randomDataset(static_cast<int>(State.range(0)), 4, 11);
  for (auto _ : State) {
    TermManager TM;
    std::vector<const Term *> Vars{TM.mkVar("a"), TM.mkVar("b"),
                                   TM.mkVar("c"), TM.mkVar("d")};
    ml::LearnOptions Opts;
    benchmark::DoNotOptimize(ml::learn(TM, Vars, Data, Opts));
  }
}
BENCHMARK(BM_LearnToolchain)->Arg(40)->Arg(120);

BENCHMARK_MAIN();
