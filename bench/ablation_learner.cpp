//===- bench/ablation_learner.cpp --------------------------------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
// Design-choice ablations called out in DESIGN.md: the base linear learner
// (SVM vs Perceptron, §3.1/§5), the SVM C parameter (§3.1: small C prefers
// wide margins / generalisation), and the predefined mod features (§3.3).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace la;
using namespace la::bench;

namespace {

SolverFactory configured(const char *Name,
                         std::function<void(solver::DataDrivenOptions &)> Fn) {
  std::string Label = Name;
  return [Fn, Label](const corpus::BenchmarkProgram &P, double Timeout) {
    solver::DataDrivenOptions Opts = corpus::defaultOptionsFor(P, Timeout);
    Opts.Name = Label;
    Fn(Opts);
    return std::make_unique<solver::DataDrivenChcSolver>(Opts);
  };
}

} // namespace

int main() {
  printf("== Ablation: base learner / SVM C / mod features ==\n");
  printf("PAPER: SVM and Perceptron are interchangeable LinearClassify\n"
         "PAPER: backends (§3.1); small C favours generalisation; mod\n"
         "PAPER: features unlock 'beyond Polyhedra' invariants (§3.3).\n\n");

  std::vector<const corpus::BenchmarkProgram *> Programs =
      suite({"loop-lit", "loop-invgen", "pie-suite", "dig-suite"});
  double Timeout = benchTimeout();

  struct Config {
    const char *Label;
    SolverFactory Factory;
  };
  Config Configs[] = {
      {"svm-C1", configured("svm-C1", [](solver::DataDrivenOptions &) {})},
      {"svm-C0.1", configured("svm-C0.1", [](solver::DataDrivenOptions &O) {
         O.Learn.LA.SvmC = 0.1;
       })},
      {"svm-C100", configured("svm-C100", [](solver::DataDrivenOptions &O) {
         O.Learn.LA.SvmC = 100;
       })},
      {"perceptron", configured("perceptron",
                                [](solver::DataDrivenOptions &O) {
                                  O.Learn.LA.Learner = ml::
                                      LinearArbitraryOptions::BaseLearner::
                                          Perceptron;
                                })},
      {"no-mod-features",
       configured("no-mod-features", [](solver::DataDrivenOptions &O) {
         O.Learn.ModFeatures.clear();
       })},
  };

  for (const Config &C : Configs) {
    SuiteResult R = runSuite(C.Factory, Programs, Timeout);
    printf("MEASURED: %-16s solved %3zu / %zu   (%.1fs total)\n", C.Label,
           R.Solved, Programs.size(), R.TotalSeconds);
  }

  // Mod features matter exactly on the parity programs.
  std::vector<const corpus::BenchmarkProgram *> Parity;
  for (const corpus::BenchmarkProgram &P : corpus::allPrograms())
    if (P.Name.find("parity") != std::string::npos ||
        P.Name.find("mod_") == 0)
      Parity.push_back(&P);
  SuiteResult WithMods = runSuite(linearArbitraryFactory(), Parity, Timeout);
  SuiteResult NoMods = runSuite(
      configured("no-mods", [](solver::DataDrivenOptions &O) {
        O.Learn.ModFeatures.clear();
      }),
      Parity, Timeout);
  printf("\nMEASURED: parity/mod programs: with mod features %zu/%zu, "
         "without %zu/%zu\n",
         WithMods.Solved, Parity.size(), NoMods.Solved, Parity.size());
  return 0;
}
