# Benchmark binaries. Included from the top-level CMakeLists (not via
# add_subdirectory) so that build/bench/ contains exactly the executables,
# which the evaluation loop `for b in build/bench/*; do $b; done` runs.

function(la_add_bench name)
  add_executable(${name} bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE la_corpus la_baselines)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/bench)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

la_add_bench(fig8a_learning_vs_enumeration)
la_add_bench(fig8b_learning_vs_template)
la_add_bench(fig8c_learning_vs_pdr)
la_add_bench(fig8d_learning_vs_interpolation)
la_add_bench(table1_solver_comparison)
la_add_bench(table2_program_characteristics)
la_add_bench(table3_svcomp_categories)
la_add_bench(ablation_dt)
la_add_bench(ablation_learner)

add_executable(micro_components bench/micro_components.cpp)
target_link_libraries(micro_components PRIVATE la_analysis la_ml la_smt benchmark::benchmark)
set_target_properties(micro_components PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
