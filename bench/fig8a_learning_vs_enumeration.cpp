//===- bench/fig8a_learning_vs_enumeration.cpp ----------------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
// Reproduces Fig. 8(a) of the paper: learned feature predicates
// (LinearArbitrary) versus syntax-guided enumeration (the PIE-style
// baseline) on the PIE-suite programs, reporting per-program inference +
// verification time.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace la;
using namespace la::bench;

int main() {
  printf("== Fig. 8(a): Learning vs Enumeration ==\n");
  printf("PAPER: on the 82-program PIE suite, solution time is roughly an\n"
         "PAPER: order of magnitude faster with LinearArbitrary; PIE times\n"
         "PAPER: out on multi-loop nondeterministic programs (31.c, 33.c).\n\n");

  std::vector<const corpus::BenchmarkProgram *> Programs =
      suite({"pie-suite", "loop-lit", "loop-invgen"});
  double Timeout = benchTimeout();

  SuiteResult Ours = runSuite(linearArbitraryFactory(), Programs, Timeout);
  SuiteResult Enum = runSuite(enumFactory(), Programs, Timeout);

  printScatter(Programs, Ours, Enum);
  printf("\n");
  printSummary(Programs.size(), Ours);
  printSummary(Programs.size(), Enum);

  // The paper's shape: points under the diagonal (we are faster) dominate.
  size_t Faster = 0, BothSolved = 0;
  double SpeedupSum = 0;
  for (size_t I = 0; I < Programs.size(); ++I) {
    if (!Ours.Outcomes[I].Solved || !Enum.Outcomes[I].Solved)
      continue;
    ++BothSolved;
    Faster += Ours.Outcomes[I].Seconds <= Enum.Outcomes[I].Seconds;
    SpeedupSum += Enum.Outcomes[I].Seconds /
                  std::max(1e-4, Ours.Outcomes[I].Seconds);
  }
  printf("MEASURED: both solved %zu; LinearArbitrary at least as fast on "
         "%zu; mean speedup %.1fx\n",
         BothSolved, Faster,
         BothSolved ? SpeedupSum / BothSolved : 0.0);
  printf("MEASURED: LinearArbitrary-only solves: %zu, enumeration-only: %zu\n",
         [&] {
           size_t N = 0;
           for (size_t I = 0; I < Programs.size(); ++I)
             N += Ours.Outcomes[I].Solved && !Enum.Outcomes[I].Solved;
           return N;
         }(),
         [&] {
           size_t N = 0;
           for (size_t I = 0; I < Programs.size(); ++I)
             N += !Ours.Outcomes[I].Solved && Enum.Outcomes[I].Solved;
           return N;
         }());
  return 0;
}
