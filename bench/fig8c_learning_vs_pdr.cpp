//===- bench/fig8c_learning_vs_pdr.cpp -------------------------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
// Reproduces Fig. 8(c) of the paper: LinearArbitrary versus the
// Spacer-style PDR baseline on the full loop + recursive suite. The paper's
// shape: Spacer is faster on the programs it terminates on but verifies
// fewer programs overall (303 vs 368 of 381), diverging on
// counterexample-generalisation traps like Fig. 1.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace la;
using namespace la::bench;

int main() {
  printf("== Fig. 8(c): Learning vs PDR (Spacer-style) ==\n");
  printf("PAPER: Spacer is generally faster when it terminates but solves\n"
         "PAPER: 303/381 against LinearArbitrary's 368/381; it diverges on\n"
         "PAPER: programs like Fig. 1 where cex-driven lemmas fail to\n"
         "PAPER: generalise.\n\n");

  std::vector<const corpus::BenchmarkProgram *> Programs =
      suite({"loop-lit", "loop-invgen", "pie-suite", "dig-suite",
             "recursive"});
  double Timeout = benchTimeout();

  SuiteResult Ours = runSuite(linearArbitraryFactory(), Programs, Timeout);
  SuiteResult Pdr = runSuite(pdrFactory(/*CacheReachable=*/true), Programs,
                             Timeout);

  printScatter(Programs, Ours, Pdr);
  printf("\n");
  printSummary(Programs.size(), Ours);
  printSummary(Programs.size(), Pdr);

  double OursTime = 0, PdrTime = 0;
  size_t Both = 0;
  for (size_t I = 0; I < Programs.size(); ++I) {
    if (!Ours.Outcomes[I].Solved || !Pdr.Outcomes[I].Solved)
      continue;
    ++Both;
    OursTime += Ours.Outcomes[I].Seconds;
    PdrTime += Pdr.Outcomes[I].Seconds;
  }
  printf("MEASURED: on the %zu commonly solved programs, PDR used %.1fs vs "
         "our %.1fs (PDR faster is the expected shape)\n",
         Both, PdrTime, OursTime);
  const corpus::BenchmarkProgram *Fig1 = corpus::find("paper_fig1");
  for (size_t I = 0; I < Programs.size(); ++I)
    if (Programs[I] == Fig1)
      printf("MEASURED: paper_fig1 (the Spacer-divergence example): ours=%s "
             "pdr=%s\n",
             chc::toString(Ours.Outcomes[I].Status),
             chc::toString(Pdr.Outcomes[I].Status));
  return 0;
}
