//===- bench/fig8b_learning_vs_template.cpp --------------------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
// Reproduces Fig. 8(b) of the paper: LinearArbitrary versus template-based
// invariant inference (the DIG-style baseline) on programs where linear
// invariants suffice, including the disjunctive programs (04.c/10.c shapes)
// that defeat conjunctive-only templates.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace la;
using namespace la::bench;

int main() {
  printf("== Fig. 8(b): Learning vs Template ==\n");
  printf("PAPER: DIG solves conjunctive equality benchmarks quickly but\n"
         "PAPER: times out whenever the invariant needs disjunctions\n"
         "PAPER: (e.g. 04.c, 10.c: #A = '1, 1' and '7, 8').\n\n");

  std::vector<const corpus::BenchmarkProgram *> Programs =
      suite({"dig-suite", "pie-suite"});
  double Timeout = benchTimeout();

  SuiteResult Ours = runSuite(linearArbitraryFactory(), Programs, Timeout);
  SuiteResult Tmpl = runSuite(templateFactory(), Programs, Timeout);

  printScatter(Programs, Ours, Tmpl);
  printf("\n");
  printSummary(Programs.size(), Ours);
  printSummary(Programs.size(), Tmpl);

  // Characterisation table of the disjunctive programs (paper's 04.c/10.c).
  printf("\nprogram characteristics (our solver):\n");
  printf("%-28s %4s %4s %4s %5s %-10s %8s\n", "program", "#C", "#P", "#V",
         "#S", "#A", "T");
  for (size_t I = 0; I < Programs.size(); ++I) {
    const corpus::RunOutcome &Out = Ours.Outcomes[I];
    if (Programs[I]->Name.find("disjunctive") == std::string::npos &&
        Programs[I]->Name.find("twophase") == std::string::npos)
      continue;
    printf("%-28s %4zu %4zu %4zu %5zu %-10s %7.2fs\n",
           Programs[I]->Name.c_str(), Out.NumClauses, Out.NumPredicates,
           Out.NumVariables, Out.Stats.Samples,
           Out.InvariantShape.empty() ? "-" : Out.InvariantShape.c_str(),
           Out.Seconds);
  }

  size_t DisjunctiveOursOnly = 0;
  for (size_t I = 0; I < Programs.size(); ++I)
    DisjunctiveOursOnly +=
        Ours.Outcomes[I].Solved && !Tmpl.Outcomes[I].Solved;
  printf("\nMEASURED: programs only LinearArbitrary solves (template lacks "
         "disjunction): %zu\n",
         DisjunctiveOursOnly);
  return 0;
}
