#!/usr/bin/env python3
"""Crash-injection smoke test for the chc_serve daemon.

Starts the daemon with `--isolation process --crash-engines` and throws
deliberately misbehaving engines at it:

  * crash-segv  — raises SIGSEGV inside the solve,
  * crash-abort — calls abort() inside the solve,
  * crash-spin  — spins forever, ignoring its cancellation token.

Every crash request must come back as a completed job (unknown verdict),
the daemon must keep serving normal solves afterwards, the metrics query
must still answer, and `shutdown` must answer `bye` with exit code 0. Any
daemon death fails the test — that is exactly what process isolation is
supposed to prevent.

Usage: crash_smoke.py <chc_serve-binary> <smt2-corpus-dir>
"""

import glob
import json
import os
import subprocess
import sys
import threading

SAFE_INLINE = """(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (< n 10) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int)) (=> (inv n) (<= n 10))))"""


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 3:
        fail(f"usage: {sys.argv[0]} <chc_serve-binary> <smt2-corpus-dir>")
    binary, corpus = sys.argv[1], sys.argv[2]

    benchmarks = sorted(glob.glob(os.path.join(corpus, "*.smt2")))
    if not benchmarks:
        fail(f"no .smt2 benchmarks in {corpus}")

    proc = subprocess.Popen(
        [binary, "--workers", "4", "--budget", "60",
         "--isolation", "process", "--crash-engines"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True)
    watchdog = threading.Timer(300, proc.kill)
    watchdog.start()

    def send(line):
        proc.stdin.write(line + "\n")
        proc.stdin.flush()

    def send_inline(rid, options):
        send(f"solve-inline {rid} {options}")
        for line in SAFE_INLINE.splitlines():
            send(line)
        send(".")

    def read_until(count=None, sentinel=None):
        got = []
        while True:
            line = proc.stdout.readline()
            if not line:
                fail(f"daemon died (closed stdout); got so far: {got}")
            line = line.strip()
            if not line:
                continue
            got.append(line)
            if sentinel is not None and line.startswith(sentinel):
                return got
            if count is not None and len(got) == count:
                return got

    # Wave 1: crash engines under process isolation. The spin engine
    # ignores cancellation, so give it a short budget — the process kill
    # at the wall deadline is what ends it.
    send_inline("segv", "engine=crash-segv budget=30")
    send_inline("abort", "engine=crash-abort budget=30")
    send_inline("spin", "engine=crash-spin budget=5")
    responses = {w[1]: w for w in
                 (line.split() for line in read_until(count=3))}
    for rid in ("segv", "abort", "spin"):
        if rid not in responses:
            fail(f"no response for crash request '{rid}': {responses}")
        if responses[rid][0] != "ok" or responses[rid][2] != "unknown":
            fail(f"crash request '{rid}' should complete with an unknown "
                 f"verdict, got: {' '.join(responses[rid])}")

    # Wave 2: the daemon still solves real benchmarks correctly.
    expected = {}
    for path in benchmarks:
        stem = os.path.splitext(os.path.basename(path))[0]
        expected[stem] = "unsat" if stem.endswith("_unsafe") else "sat"
        send(f"solve {stem} {path} budget=60")
    for line in read_until(count=len(expected)):
        words = line.split()
        if words[0] != "ok":
            fail(f"post-crash solve failed: {line}")
        if words[2] != expected[words[1]]:
            fail(f"{words[1]}: got {words[2]}, want {expected[words[1]]}")

    # Metrics still answer and count every completion.
    send("metrics")
    metrics_line = read_until(sentinel="metrics ")[-1]
    metrics = json.loads(metrics_line.split(" ", 1)[1])
    want_completed = 3 + len(benchmarks)
    if metrics["completed"] < want_completed:
        fail(f"metrics completed={metrics['completed']}, "
             f"want >= {want_completed}")

    send("shutdown")
    read_until(sentinel="bye")
    proc.stdin.close()
    code = proc.wait()
    watchdog.cancel()
    if code != 0:
        fail(f"daemon exited {code}")
    print(f"OK: daemon survived segv/abort/spin engines and still solved "
          f"{len(benchmarks)} benchmarks")


if __name__ == "__main__":
    main()
