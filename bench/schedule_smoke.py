#!/usr/bin/env python3
"""Smoke test for staged budget scheduling.

Runs every bundled .smt2 benchmark twice through solve_chc_file — once with
`--schedule race` (the full portfolio) and once with `--schedule staged`
(probe -> top-k -> race escalation) — and asserts the scheduling headline:

  * verdict parity: staged reaches a definitive verdict on every file race
    does, and the verdicts agree (staged escalates to the same race with
    the remaining budget, so it can only answer later, never less);
  * core-seconds: summed per-lane engine seconds across the corpus drop by
    at least LA_SCHEDULE_RATIO (default 2.0) — the probe and top-k stages
    answer most files without ever starting the full race's lane fleet.

With --serve <chc_serve-binary> it additionally drives the daemon under
`--schedule staged` and asserts the metrics JSON reports the stage-hit /
escalation counters for the submitted jobs.

Core-seconds are parsed from solve_chc_file's stderr lane report lines
(`; lane <mark> <label> <status> <seconds>s`), which cover every stage lane
of a staged run and every portfolio lane of a race.

Usage: schedule_smoke.py <solve_chc_file-binary> <smt2-corpus-dir>
                         [--selector FILE] [--serve <chc_serve-binary>]
"""

import glob
import json
import os
import re
import subprocess
import sys
import threading

LANE_SECONDS = re.compile(r"^; lane .* (\d+(?:\.\d+)?)s")


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_solver(binary, path, schedule, budget, selector):
    cmd = [binary, path, "--schedule", schedule, "--budget", str(budget)]
    if selector and schedule == "staged":
        cmd += ["--selector", selector]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=600)
    if proc.returncode != 0:
        fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
    verdict = proc.stdout.strip().splitlines()[-1]
    core_seconds = sum(
        float(m.group(1))
        for line in proc.stderr.splitlines()
        if (m := LANE_SECONDS.match(line)))
    return verdict, core_seconds


def check_daemon_metrics(serve_binary, benchmarks):
    """One daemon run under --schedule staged: every response must carry
    the stages= suffix and the metrics counters must account for every
    job (metrics is requested after all completions, before shutdown)."""
    proc = subprocess.Popen(
        [serve_binary, "--workers", "4", "--budget", "60",
         "--schedule", "staged", "--cache", "0"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True)
    watchdog = threading.Timer(300, proc.kill)
    watchdog.start()
    responses, metrics = [], None
    try:
        for path in benchmarks:
            stem = os.path.splitext(os.path.basename(path))[0]
            proc.stdin.write(f"solve {stem} {path}\n")
        proc.stdin.flush()
        for line in proc.stdout:
            responses.append(line.strip())
            if len(responses) == len(benchmarks):
                break
        proc.stdin.write("metrics\n")
        proc.stdin.flush()
        for line in proc.stdout:
            line = line.strip()
            if line.startswith("metrics "):
                metrics = json.loads(line.split(" ", 1)[1])
                break
        proc.stdin.write("shutdown\n")
        proc.stdin.flush()
    finally:
        watchdog.cancel()
        proc.stdin.close()
        proc.wait()

    bad = [r for r in responses if not r.startswith("ok ")]
    if bad:
        fail(f"daemon returned non-ok responses: {bad}")
    staged = [r for r in responses if "stages=" in r]
    if len(staged) != len(benchmarks):
        fail(f"only {len(staged)}/{len(benchmarks)} daemon responses carry "
             f"stages= under --schedule staged: {responses}")
    if metrics is None:
        fail("daemon never answered the metrics request")
    for key in ("stage_hits", "escalations"):
        if key not in metrics:
            fail(f"metrics response lacks '{key}': {metrics}")
    accounted = metrics["stage_hits"] + metrics["escalations"]
    if accounted != len(benchmarks):
        fail(f"stage_hits={metrics['stage_hits']} + "
             f"escalations={metrics['escalations']} != "
             f"{len(benchmarks)} staged jobs")
    return metrics


def main():
    args = sys.argv[1:]
    selector = serve_binary = None
    if "--selector" in args:
        i = args.index("--selector")
        selector = args[i + 1]
        del args[i:i + 2]
    if "--serve" in args:
        i = args.index("--serve")
        serve_binary = args[i + 1]
        del args[i:i + 2]
    if len(args) != 2:
        fail(f"usage: {sys.argv[0]} <solve_chc_file-binary> "
             f"<smt2-corpus-dir> [--selector FILE] [--serve BINARY]")
    binary, corpus = args
    budget = float(os.environ.get("LA_SCHEDULE_BUDGET", "10"))
    ratio_floor = float(os.environ.get("LA_SCHEDULE_RATIO", "2.0"))

    benchmarks = sorted(glob.glob(os.path.join(corpus, "*.smt2")))
    if len(benchmarks) < 4:
        fail(f"expected at least 4 .smt2 benchmarks in {corpus}, "
             f"found {len(benchmarks)}")

    race_core = staged_core = 0.0
    race_solved = staged_solved = 0
    for path in benchmarks:
        name = os.path.basename(path)
        race_verdict, race_s = run_solver(binary, path, "race", budget, None)
        staged_verdict, staged_s = run_solver(binary, path, "staged", budget,
                                              selector)
        race_core += race_s
        staged_core += staged_s
        race_solved += race_verdict in ("sat", "unsat")
        staged_solved += staged_verdict in ("sat", "unsat")
        # Parity: staged ends in the same full race with the remaining
        # budget, so a definitive race verdict must be matched.
        if race_verdict != "unknown" and staged_verdict != race_verdict:
            fail(f"{name}: race says {race_verdict}, "
                 f"staged says {staged_verdict}")
        print(f"  {name}: race {race_verdict} ({race_s:.3f} core-s), "
              f"staged {staged_verdict} ({staged_s:.3f} core-s)")

    if staged_solved < race_solved:
        fail(f"staged solved {staged_solved} < race {race_solved}")
    if staged_core <= 0:
        fail("staged runs reported no lane seconds (stderr format drift?)")
    ratio = race_core / staged_core
    if ratio < ratio_floor:
        fail(f"staged core-seconds reduction {ratio:.2f}x below the "
             f"{ratio_floor:.1f}x floor (race {race_core:.3f}s vs staged "
             f"{staged_core:.3f}s)")
    print(f"OK: parity on {len(benchmarks)} benchmarks "
          f"({staged_solved} solved), core-seconds {race_core:.3f}s -> "
          f"{staged_core:.3f}s ({ratio:.2f}x >= {ratio_floor:.1f}x)")

    if serve_binary:
        metrics = check_daemon_metrics(serve_binary, benchmarks)
        print(f"OK: daemon reported stage_hits={metrics['stage_hits']} "
              f"escalations={metrics['escalations']} over "
              f"{len(benchmarks)} staged jobs")


if __name__ == "__main__":
    main()
