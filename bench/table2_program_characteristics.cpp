//===- bench/table2_program_characteristics.cpp ----------------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
// Reproduces the program-characterisation tables of §6: the PIE-timeout
// rows (31.c, 33.c), the DIG-timeout rows (04.c, 10.c) and the scalability
// rows (sfifo, acclrm, elevator, parport) -- for our corpus analogues --
// reporting #L, #C, #P, #V, #S, #A and the solve time of the data-driven
// solver.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace la;
using namespace la::bench;

int main() {
  printf("== Table 2: program characteristics (#L #C #P #V #S #A T) ==\n");
  printf("PAPER: 31.c: #C 11, #P 5, #V 49, #S 281, #A '8,7', 14s\n"
         "PAPER: 33.c: #C 18, #P 6, #V 101, #S 662, #A '5', 13s\n"
         "PAPER: 04.c: #C 8, #P 4, #V 19, #S 27, #A '1,1', 0.4s\n"
         "PAPER: 10.c: #C 9, #P 4, #V 42, #S 22, #A '7,8', 0.4s\n"
         "PAPER: sfifo 309L 350s | acclrm 842L 15s | elevator 3405L 18s |\n"
         "PAPER: parport 10012L 13s (large programs, few samples needed)\n\n");

  const char *Selected[] = {
      // 31.c / 33.c analogues: multiple loops, multiple predicates.
      "gen_multiloop_k3", "gen_multiloop_k5", "invgen_phase_split",
      // 04.c / 10.c analogues: disjunctive linear invariants.
      "dig_disjunctive_04", "dig_disjunctive_10", "gen_twophase_p9",
      // scalability analogues: large generated programs.
      "gen_product_f12", "gen_product_f32", "gen_systemc_s8",
      "gen_systemc_s12",
      // the paper's own examples.
      "paper_fig1", "paper_fig3_a", "paper_fig5_fibo", "fibo_sv_34",
      "rec_hanoi", "rec_mccarthy91",
  };
  double Timeout = benchTimeout(20.0);

  printf("%-24s %6s %4s %4s %5s %6s %-12s %9s\n", "program", "#L", "#C",
         "#P", "#V", "#S", "#A", "T");
  for (const char *Name : Selected) {
    const corpus::BenchmarkProgram *P = corpus::find(Name);
    if (!P) {
      printf("%-24s (missing from corpus)\n", Name);
      continue;
    }
    solver::DataDrivenChcSolver Solver(corpus::defaultOptionsFor(*P, Timeout));
    corpus::RunOutcome Out = corpus::runOnProgram(Solver, *P);
    printf("%-24s %6zu %4zu %4zu %5zu %6zu %-12s %8.2fs %s\n", Name, P->Lines,
           Out.NumClauses, Out.NumPredicates, Out.NumVariables,
           Out.Stats.Samples,
           Out.InvariantShape.empty() ? "-" : Out.InvariantShape.c_str(),
           Out.Seconds, Out.Solved ? "" : chc::toString(Out.Status));
  }
  return 0;
}
