//===- bench/table1_solver_comparison.cpp -----------------------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
// Reproduces the solver-count table of §6:
//
//   #Total  #GPDR  #Spacer  #Duality  #LinearArbitrary
//   381     300    303      309       368
//
// over this repository's corpus. The absolute counts differ (our corpus is
// smaller), but the ordering -- LinearArbitrary ahead, Duality slightly
// ahead of Spacer/GPDR -- is the shape under reproduction.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace la;
using namespace la::bench;

int main() {
  printf("== Table 1: verified benchmarks per CHC solver ==\n");
  printf("PAPER: #Total 381 | GPDR 300 | Spacer 303 | Duality 309 | "
         "LinearArbitrary 368\n\n");

  std::vector<const corpus::BenchmarkProgram *> Programs =
      suite({"loop-lit", "loop-invgen", "pie-suite", "dig-suite",
             "recursive"});
  double Timeout = benchTimeout();

  struct Row {
    const char *Label;
    SolverFactory Factory;
  };
  Row Rows[] = {
      {"gpdr", pdrFactory(/*CacheReachable=*/false)},
      {"spacer", pdrFactory(/*CacheReachable=*/true)},
      {"duality", unwindFactory(/*SummaryReuse=*/true)},
      {"LinearArbitrary", linearArbitraryFactory()},
  };

  printf("MEASURED: #Total %zu\n", Programs.size());
  std::vector<SuiteResult> Results;
  for (const Row &R : Rows) {
    SuiteResult Result = runSuite(R.Factory, Programs, Timeout);
    printf("MEASURED: %-18s solved %3zu / %zu   (%.1fs total%s)\n", R.Label,
           Result.Solved, Programs.size(), Result.TotalSeconds,
           Result.Unsound ? ", UNSOUND RESULTS PRESENT" : "");
    Results.push_back(std::move(Result));
  }
  printf("\n== Static pre-analysis impact (per pass, summed over suite) ==\n");
  for (const SuiteResult &R : Results)
    printAnalysisReport(R);
  return 0;
}
