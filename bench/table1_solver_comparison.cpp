//===- bench/table1_solver_comparison.cpp -----------------------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
// Reproduces the solver-count table of §6:
//
//   #Total  #GPDR  #Spacer  #Duality  #LinearArbitrary
//   381     300    303      309       368
//
// over this repository's corpus. The absolute counts differ (our corpus is
// smaller), but the ordering -- LinearArbitrary ahead, Duality slightly
// ahead of Spacer/GPDR -- is the shape under reproduction.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "solver/Scheduler.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>

using namespace la;
using namespace la::bench;

namespace {

double cacheHitRate(const chc::CheckStats &C) {
  uint64_t Lookups = C.CacheHits + C.CacheMisses;
  return Lookups ? static_cast<double>(C.CacheHits) / Lookups : 0.0;
}

/// Emits the machine-readable companion of the printed table: per program
/// and solver the wall-clock, the SMT checks actually issued by the
/// incremental backend, and its cache hit rate. CI uploads this file as an
/// artifact so backend regressions show up as a diff in review.
void writeJson(const char *Path,
               const std::vector<const corpus::BenchmarkProgram *> &Programs,
               const std::vector<SuiteResult> &Results,
               double BestSingleSeconds) {
  std::ofstream Out(Path);
  if (!Out) {
    fprintf(stderr, "warning: cannot write %s\n", Path);
    return;
  }
  // The headline the polyhedra rung is accountable for: how many extra
  // programs the full ladder discharges statically over the pre-polyhedra
  // (intervals + octagons) ladder.
  long SolvedByAnalysisDelta = 0;
  {
    const SuiteResult *Full = nullptr, *OctOnly = nullptr;
    for (const SuiteResult &R : Results) {
      if (R.SolverName == "LinearArbitrary")
        Full = &R;
      if (R.SolverName == "LA-octagons")
        OctOnly = &R;
    }
    if (Full && OctOnly)
      SolvedByAnalysisDelta = static_cast<long>(Full->SolvedByAnalysis) -
                              static_cast<long>(OctOnly->SolvedByAnalysis);
  }
  Out << "{\n  \"solved_by_analysis_delta\": " << SolvedByAnalysisDelta
      << ",\n";
  // Static problem features per program (the scheduler's ProblemFeatures
  // vector, extracted from the encoded system without running anything).
  // bench/fit_selector.py joins these rows with the per-solver outcomes
  // below to fit the table-driven engine-selector model offline.
  Out << "  \"program_features\": [\n";
  for (size_t I = 0; I < Programs.size(); ++I) {
    TermManager TM;
    chc::ChcSystem System(TM);
    frontend::EncodeResult E = frontend::encodeMiniC(Programs[I]->Source,
                                                     System);
    Out << "    {\"name\": \"" << Programs[I]->Name << "\"";
    if (E.Ok) {
      solver::ProblemFeatures F = solver::ProblemFeatures::fromSystem(System);
      std::vector<double> Values = F.values();
      const std::vector<std::string> &Names =
          solver::ProblemFeatures::names();
      for (size_t J = 0; J < Names.size(); ++J)
        Out << ", \"" << Names[J] << "\": " << Values[J];
    }
    Out << "}" << (I + 1 < Programs.size() ? "," : "") << "\n";
  }
  Out << "  ],\n  \"solvers\": [\n";
  for (size_t S = 0; S < Results.size(); ++S) {
    const SuiteResult &R = Results[S];
    chc::CheckStats Total;
    size_t TotalIterations = 0;
    size_t PredicatesInlined = 0, ClausesRemoved = 0;
    size_t TemplatesMined = 0, PolyhedraFacts = 0, SweepCapHits = 0;
    for (const analysis::PassStats &PS : R.AnalysisPasses) {
      PredicatesInlined += PS.PredicatesInlined;
      ClausesRemoved += PS.ClausesRemoved;
      TemplatesMined += PS.TemplatesMined;
      SweepCapHits += PS.SweepCapHits;
      if (PS.Name == "verify")
        PolyhedraFacts += PS.PolyhedraFacts;
    }
    Out << "    {\n      \"name\": \"" << R.SolverName << "\",\n"
        << "      \"solved\": " << R.Solved << ",\n"
        << "      \"solved_by_analysis\": " << R.SolvedByAnalysis << ",\n"
        << "      \"predicates_inlined\": " << PredicatesInlined << ",\n"
        << "      \"clauses_removed\": " << ClausesRemoved << ",\n"
        << "      \"templates_mined\": " << TemplatesMined << ",\n"
        << "      \"polyhedra_facts\": " << PolyhedraFacts << ",\n"
        << "      \"sweep_cap_hits\": " << SweepCapHits << ",\n"
        << "      \"total_seconds\": " << R.TotalSeconds << ",\n";
    // Per-pass wall clock and hot-path counters (transfer cache, LP
    // pivots, pack shapes), merged over the suite: the smoke job diffs
    // these to catch silent slowdowns of a single pass.
    Out << "      \"passes\": [\n";
    for (size_t PI = 0; PI < R.AnalysisPasses.size(); ++PI) {
      const analysis::PassStats &PS = R.AnalysisPasses[PI];
      Out << "        {\"name\": \"" << PS.Name
          << "\", \"millis\": " << PS.Seconds * 1000.0
          << ", \"xfer_cache_hits\": " << PS.XferCacheHits
          << ", \"xfer_cache_misses\": " << PS.XferCacheMisses
          << ", \"lp_pivots\": " << PS.LpPivots
          << ", \"packs_built\": " << PS.PacksBuilt
          << ", \"largest_pack\": " << PS.LargestPack << "}"
          << (PI + 1 < R.AnalysisPasses.size() ? "," : "") << "\n";
    }
    Out << "      ],\n";
    if (R.SolverName == "LA-portfolio")
      Out << "      \"best_single_seconds\": " << BestSingleSeconds << ",\n";
    Out << "      \"programs\": [\n";
    for (size_t I = 0; I < R.Outcomes.size(); ++I) {
      const corpus::RunOutcome &O = R.Outcomes[I];
      Total.merge(O.Stats.Check);
      TotalIterations += O.Stats.Iterations;
      Out << "        {\"name\": \"" << Programs[I]->Name
          << "\", \"status\": \"" << chc::toString(O.Status)
          << "\", \"solved\": " << (O.Solved ? "true" : "false")
          << ", \"seconds\": " << O.Seconds
          << ", \"iterations\": " << O.Stats.Iterations
          << ", \"solved_by_analysis\": "
          << (O.SolvedByAnalysis ? "true" : "false")
          << ", \"smt_checks\": " << O.Stats.Check.ChecksIssued
          << ", \"cache_hits\": " << O.Stats.Check.CacheHits
          << ", \"cache_hit_rate\": " << cacheHitRate(O.Stats.Check)
          << ", \"scope_pushes\": " << O.Stats.Check.ScopePushes
          << ", \"rebuilds_avoided\": " << O.Stats.Check.RebuildsAvoided
          << ", \"disk_hits\": " << O.Stats.Check.DiskHits
          << ", \"disk_misses\": " << O.Stats.Check.DiskMisses
          << "}" << (I + 1 < R.Outcomes.size() ? "," : "") << "\n";
    }
    Out << "      ],\n"
        << "      \"iterations\": " << TotalIterations << ",\n"
        << "      \"smt_checks\": " << Total.ChecksIssued << ",\n"
        << "      \"cache_hit_rate\": " << cacheHitRate(Total) << ",\n"
        << "      \"disk_hits\": " << Total.DiskHits << ",\n"
        << "      \"disk_misses\": " << Total.DiskMisses << ",\n"
        << "      \"disk_stores\": " << Total.DiskStores << "\n"
        << "    }" << (S + 1 < Results.size() ? "," : "") << "\n";
  }
  Out << "  ]\n}\n";
  printf("\nwrote %s\n", Path);
}

} // namespace

int main() {
  printf("== Table 1: verified benchmarks per CHC solver ==\n");
  printf("PAPER: #Total 381 | GPDR 300 | Spacer 303 | Duality 309 | "
         "LinearArbitrary 368\n\n");

  std::vector<const corpus::BenchmarkProgram *> Programs =
      suite({"loop-lit", "loop-invgen", "pie-suite", "dig-suite",
             "recursive"});
  double Timeout = benchTimeout();

  // Smoke mode (LA_BENCH_SMOKE=N): keep every N-th program and only the
  // analysis-bearing solver rows, so CI can afford the run on every push
  // while still gating on `solved_by_analysis`.
  size_t SmokeStride = 0;
  if (const char *Env = std::getenv("LA_BENCH_SMOKE"))
    SmokeStride = std::max<long>(1, std::atol(Env));
  if (SmokeStride > 1) {
    std::vector<const corpus::BenchmarkProgram *> Subset;
    for (size_t I = 0; I < Programs.size(); I += SmokeStride)
      Subset.push_back(Programs[I]);
    Programs = std::move(Subset);
  }

  struct Row {
    const char *Label;
    SolverFactory Factory;
  };
  std::vector<Row> Rows;
  if (SmokeStride == 0) {
    Rows.push_back({"gpdr", pdrFactory(/*CacheReachable=*/false)});
    Rows.push_back({"spacer", pdrFactory(/*CacheReachable=*/true)});
    Rows.push_back({"duality", unwindFactory(/*SummaryReuse=*/true)});
    Rows.push_back({"LA-inline", linearArbitraryInlineOnlyFactory()});
    Rows.push_back({"LA-intervals", linearArbitraryIntervalOnlyFactory()});
  }
  Rows.push_back({"LA-octagons", linearArbitraryOctagonOnlyFactory()});
  if (SmokeStride == 0)
    Rows.push_back({"LA-polyhedra", linearArbitraryPolyhedraFactory()});
  Rows.push_back({"LinearArbitrary", linearArbitraryFactory()});
  if (SmokeStride == 0)
    Rows.push_back({"LA-portfolio", portfolioFactory()});

  printf("MEASURED: #Total %zu\n", Programs.size());
  std::vector<SuiteResult> Results;
  for (const Row &R : Rows) {
    SuiteResult Result = runSuite(R.Factory, Programs, Timeout);
    printf("MEASURED: %-18s solved %3zu / %zu   (%.1fs total%s)\n", R.Label,
           Result.Solved, Programs.size(), Result.TotalSeconds,
           Result.Unsound ? ", UNSOUND RESULTS PRESENT" : "");
    Results.push_back(std::move(Result));
  }

  // Portfolio headline: wall clock against the best single engine. The
  // portfolio burns more CPU but should match or beat the best lane on
  // solved count while staying in the same wall-clock ballpark.
  double BestSingleSeconds = 0;
  if (SmokeStride == 0) {
    const SuiteResult &Portfolio = Results.back();
    const char *BestSingle = "";
    size_t BestSolved = 0;
    for (size_t I = 0; I + 1 < Results.size(); ++I) {
      if (Results[I].Solved > BestSolved ||
          (Results[I].Solved == BestSolved &&
           Results[I].TotalSeconds < BestSingleSeconds)) {
        BestSolved = Results[I].Solved;
        BestSingleSeconds = Results[I].TotalSeconds;
        BestSingle = Rows[I].Label;
      }
    }
    printf("\nPORTFOLIO: solved %zu vs best single engine %s %zu "
           "(wall %.1fs vs %.1fs)\n",
           Portfolio.Solved, BestSingle, BestSolved, Portfolio.TotalSeconds,
           BestSingleSeconds);
  }

  printf("\n== Static pre-analysis impact (per pass, summed over suite) ==\n");
  for (const SuiteResult &R : Results)
    printAnalysisReport(R);
  writeJson("BENCH_table1.json", Programs, Results, BestSingleSeconds);
  return 0;
}
