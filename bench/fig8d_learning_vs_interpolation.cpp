//===- bench/fig8d_learning_vs_interpolation.cpp ---------------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
// Reproduces Fig. 8(d) and the SV-COMP characterisation table of §6:
// LinearArbitrary versus the interpolation-based verifier (UAutomizer-style
// unwinding baseline) on the loop-lit / loop-invgen / recursive categories.
// The paper: 126/135 solved vs UAutomizer's 111, with the recursive
// programs (Prime, EvenOdd, recHanoi3, Fib2calls) defeating interpolation.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace la;
using namespace la::bench;

int main() {
  printf("== Fig. 8(d): Learning vs Interpolation (UAutomizer-style) ==\n");
  printf("PAPER: 126/135 solved vs 111/135; recursive programs with nested\n"
         "PAPER: recursion / mod reasoning (Prime 18s, EvenOdd 105s,\n"
         "PAPER: recHanoi3 0.4s, Fib2calls 168s) time out under\n"
         "PAPER: interpolation but are solved by learning.\n\n");

  std::vector<const corpus::BenchmarkProgram *> Programs =
      suite({"loop-lit", "loop-invgen", "recursive"});
  double Timeout = benchTimeout();

  SuiteResult Ours = runSuite(linearArbitraryFactory(), Programs, Timeout);
  SuiteResult Itp = runSuite(unwindFactory(/*SummaryReuse=*/false), Programs,
                             Timeout);

  printScatter(Programs, Ours, Itp);
  printf("\n");
  printSummary(Programs.size(), Ours);
  printSummary(Programs.size(), Itp);

  // Hard-program characterisation table (the paper's Prime/EvenOdd rows).
  printf("\nhard programs solved by learning (our solver):\n");
  printf("%-28s %4s %4s %4s %5s %-14s %8s %s\n", "program", "#C", "#P", "#V",
         "#S", "#A", "T", "interp?");
  for (size_t I = 0; I < Programs.size(); ++I) {
    if (Programs[I]->Category != "recursive" || !Ours.Outcomes[I].Solved)
      continue;
    const corpus::RunOutcome &Out = Ours.Outcomes[I];
    printf("%-28s %4zu %4zu %4zu %5zu %-14s %7.2fs %s\n",
           Programs[I]->Name.c_str(), Out.NumClauses, Out.NumPredicates,
           Out.NumVariables, Out.Stats.Samples,
           Out.InvariantShape.empty() ? "-" : Out.InvariantShape.c_str(),
           Out.Seconds, chc::toString(Itp.Outcomes[I].Status));
  }
  return 0;
}
