//===- bench/BenchUtil.h - Shared benchmark-harness plumbing ----*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-table/per-figure benchmark binaries: suite
/// selection, per-program timeouts (override with the LA_BENCH_TIMEOUT
/// environment variable, in seconds), scatter and summary printing. Every
/// binary prints PAPER reference lines next to MEASURED lines so
/// EXPERIMENTS.md can be cross-checked by re-running the harness.
///
//===----------------------------------------------------------------------===//

#ifndef LA_BENCH_BENCHUTIL_H
#define LA_BENCH_BENCHUTIL_H

#include "baselines/EnumLearner.h"
#include "baselines/PdrSolver.h"
#include "baselines/RegisterEngines.h"
#include "baselines/TemplateLearner.h"
#include "baselines/UnwindSolver.h"
#include "corpus/Harness.h"
#include "solver/Portfolio.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>

namespace la::bench {

/// Per-program wall-clock budget in seconds.
inline double benchTimeout(double Default = 3.0) {
  if (const char *Env = std::getenv("LA_BENCH_TIMEOUT"))
    return std::atof(Env);
  return Default;
}

/// A solver factory: fresh solver per program (they keep per-run state).
using SolverFactory =
    std::function<std::unique_ptr<chc::ChcSolverInterface>(
        const corpus::BenchmarkProgram &, double TimeoutSeconds)>;

inline SolverFactory linearArbitraryFactory() {
  return [](const corpus::BenchmarkProgram &P, double Timeout) {
    return std::make_unique<solver::DataDrivenChcSolver>(
        corpus::defaultOptionsFor(P, Timeout));
  };
}

/// The data-driven solver with only the system-rewriting passes (inlining +
/// slicing) enabled: isolates what predicate elimination buys the CEGAR
/// loop before any abstract-domain seeding.
inline SolverFactory linearArbitraryInlineOnlyFactory() {
  return [](const corpus::BenchmarkProgram &P, double Timeout) {
    solver::DataDrivenOptions Opts = corpus::defaultOptionsFor(P, Timeout);
    Opts.Analysis.EnableIntervals = false;
    Opts.Analysis.EnableOctagons = false;
    Opts.Analysis.EnablePolyhedra = false;
    Opts.Name = "LA-inline";
    return std::make_unique<solver::DataDrivenChcSolver>(Opts);
  };
}

/// The data-driven solver with only the interval rung of the domain ladder:
/// isolates what the relational domains buy (static discharges, CEGAR
/// iterations saved).
inline SolverFactory linearArbitraryIntervalOnlyFactory() {
  return [](const corpus::BenchmarkProgram &P, double Timeout) {
    solver::DataDrivenOptions Opts = corpus::defaultOptionsFor(P, Timeout);
    Opts.Analysis.EnableOctagons = false;
    Opts.Analysis.EnablePolyhedra = false;
    Opts.Name = "LA-intervals";
    return std::make_unique<solver::DataDrivenChcSolver>(Opts);
  };
}

/// Intervals + octagons, polyhedra off: the pre-polyhedra ladder, the
/// baseline the `solved_by_analysis` delta in BENCH_table1.json compares
/// against.
inline SolverFactory linearArbitraryOctagonOnlyFactory() {
  return [](const corpus::BenchmarkProgram &P, double Timeout) {
    solver::DataDrivenOptions Opts = corpus::defaultOptionsFor(P, Timeout);
    Opts.Analysis.EnablePolyhedra = false;
    Opts.Name = "LA-octagons";
    return std::make_unique<solver::DataDrivenChcSolver>(Opts);
  };
}

/// Intervals + template polyhedra, octagons off: isolates what the mined
/// templates buy beyond the octagon shapes.
inline SolverFactory linearArbitraryPolyhedraFactory() {
  return [](const corpus::BenchmarkProgram &P, double Timeout) {
    solver::DataDrivenOptions Opts = corpus::defaultOptionsFor(P, Timeout);
    Opts.Analysis.EnableOctagons = false;
    Opts.Name = "LA-polyhedra";
    return std::make_unique<solver::DataDrivenChcSolver>(Opts);
  };
}

inline SolverFactory noDtFactory() {
  return [](const corpus::BenchmarkProgram &P, double Timeout) {
    solver::DataDrivenOptions Opts = corpus::defaultOptionsFor(P, Timeout);
    Opts.Learn.UseDecisionTree = false;
    Opts.Name = "LinearArbitrary-noDT";
    return std::make_unique<solver::DataDrivenChcSolver>(Opts);
  };
}

inline SolverFactory enumFactory() {
  return [](const corpus::BenchmarkProgram &, double Timeout) {
    return std::make_unique<solver::DataDrivenChcSolver>(
        baselines::makeEnumSolverOptions(Timeout));
  };
}

inline SolverFactory templateFactory() {
  return [](const corpus::BenchmarkProgram &, double Timeout) {
    return std::make_unique<solver::DataDrivenChcSolver>(
        baselines::makeTemplateSolverOptions(Timeout));
  };
}

inline SolverFactory pdrFactory(bool CacheReachable) {
  return [CacheReachable](const corpus::BenchmarkProgram &, double Timeout) {
    baselines::PdrOptions Opts;
    Opts.CacheReachable = CacheReachable;
    Opts.Limits.WallSeconds = Timeout;
    Opts.Smt.TimeoutSeconds = Timeout / 2;
    return std::make_unique<baselines::PdrSolver>(Opts);
  };
}

inline SolverFactory unwindFactory(bool SummaryReuse) {
  return [SummaryReuse](const corpus::BenchmarkProgram &, double Timeout) {
    baselines::UnwindOptions Opts;
    Opts.SummaryReuse = SummaryReuse;
    Opts.Limits.WallSeconds = Timeout;
    Opts.Smt.TimeoutSeconds = Timeout / 2;
    return std::make_unique<baselines::UnwindSolver>(Opts);
  };
}

/// The parallel portfolio over the registered engines, racing data-driven,
/// analysis-only, PDR and unwinding lanes with a shared global budget.
inline SolverFactory portfolioFactory() {
  baselines::registerBuiltinEngines();
  return [](const corpus::BenchmarkProgram &P, double Timeout) {
    solver::PortfolioOptions Opts;
    Opts.Name = "LA-portfolio";
    Opts.Base.DataDriven = corpus::defaultOptionsFor(P, Timeout);
    Opts.Base.Smt.TimeoutSeconds = Timeout / 2;
    Opts.Base.Limits.WallSeconds = Timeout;
    Opts.Limits.WallSeconds = Timeout;
    return std::make_unique<solver::PortfolioSolver>(Opts);
  };
}

/// Result of running one suite under one solver.
struct SuiteResult {
  std::string SolverName;
  std::vector<corpus::RunOutcome> Outcomes; ///< parallel to the program list
  size_t Solved = 0;
  size_t Unsound = 0;
  double TotalSeconds = 0;
  /// Pre-analysis statistics merged per pass name across all programs.
  std::vector<analysis::PassStats> AnalysisPasses;
  /// Programs discharged by the pre-analysis alone (0 CEGAR iterations).
  size_t SolvedByAnalysis = 0;
};

inline SuiteResult
runSuite(const SolverFactory &Factory,
         const std::vector<const corpus::BenchmarkProgram *> &Programs,
         double Timeout) {
  SuiteResult Result;
  for (const corpus::BenchmarkProgram *P : Programs) {
    std::unique_ptr<chc::ChcSolverInterface> Solver = Factory(*P, Timeout);
    if (Result.SolverName.empty())
      Result.SolverName = Solver->name();
    corpus::RunOutcome Out = corpus::runOnProgram(*Solver, *P);
    Result.Solved += Out.Solved;
    Result.Unsound += Out.Unsound;
    Result.TotalSeconds += Out.Seconds;
    Result.SolvedByAnalysis += Out.SolvedByAnalysis;
    for (const analysis::PassStats &PS : Out.AnalysisPasses) {
      auto It = std::find_if(
          Result.AnalysisPasses.begin(), Result.AnalysisPasses.end(),
          [&](const analysis::PassStats &S) { return S.Name == PS.Name; });
      if (It == Result.AnalysisPasses.end())
        Result.AnalysisPasses.push_back(PS);
      else
        It->merge(PS);
    }
    Result.Outcomes.push_back(std::move(Out));
  }
  return Result;
}

/// Prints the merged per-pass statistics of the static pre-analysis pipeline
/// for one suite run (no output when the solver ran without analysis).
inline void printAnalysisReport(const SuiteResult &R) {
  if (R.AnalysisPasses.empty())
    return;
  printf("ANALYSIS: %-18s (%zu program(s) discharged statically)\n",
         R.SolverName.c_str(), R.SolvedByAnalysis);
  for (const analysis::PassStats &PS : R.AnalysisPasses)
    printf("  %s\n", PS.toString().c_str());
}

/// Prints the scatter rows for a two-solver comparison figure.
inline void
printScatter(const std::vector<const corpus::BenchmarkProgram *> &Programs,
             const SuiteResult &Ours, const SuiteResult &Theirs) {
  printf("%-28s %10s %10s   %-8s %-8s\n", "program", Ours.SolverName.c_str(),
         Theirs.SolverName.c_str(), "verdict", "verdict");
  for (size_t I = 0; I < Programs.size(); ++I) {
    const corpus::RunOutcome &A = Ours.Outcomes[I];
    const corpus::RunOutcome &B = Theirs.Outcomes[I];
    printf("%-28s %9.3fs %9.3fs   %-8s %-8s\n", Programs[I]->Name.c_str(),
           A.Seconds, B.Seconds, chc::toString(A.Status),
           chc::toString(B.Status));
  }
}

inline void printSummary(size_t Total, const SuiteResult &R) {
  printf("MEASURED: %-18s solved %zu / %zu  (total %.1fs%s)\n",
         R.SolverName.c_str(), R.Solved, Total, R.TotalSeconds,
         R.Unsound ? ", UNSOUND RESULTS PRESENT" : "");
}

/// Concatenates corpus categories into one suite.
inline std::vector<const corpus::BenchmarkProgram *>
suite(std::initializer_list<const char *> Categories) {
  std::vector<const corpus::BenchmarkProgram *> Programs;
  for (const char *Cat : Categories)
    for (const corpus::BenchmarkProgram *P : corpus::category(Cat))
      Programs.push_back(P);
  return Programs;
}

} // namespace la::bench

#endif // LA_BENCH_BENCHUTIL_H
