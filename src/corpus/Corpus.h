//===- corpus/Corpus.h - Benchmark program corpus ---------------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark corpus standing in for the paper's evaluation suites
/// (§6): hand-written versions of every program the paper discusses
/// (Figs. 1/3/4/5, the SV-COMP recursive programs, the PIE/DIG suites'
/// representative shapes) plus parameterised generated families modelled on
/// the SV-COMP categories (loop-*, recursive-*, Product-lines, Systemc).
///
/// Categories (mapping to the paper's experiments):
///   * "pie-suite"       -- Fig. 8(a): loop programs with boolean structure
///   * "dig-suite"       -- Fig. 8(b): linear-invariant programs
///   * "loop-lit"        -- Fig. 8(d)/8(c): literature loop programs
///   * "loop-invgen"     -- Fig. 8(d)/8(c): InvGen-style loops
///   * "recursive"       -- Fig. 8(c)/(d): recursive functions
///   * "product-lines"   -- §6 scalability: many-branch generated programs
///   * "systemc"         -- §6 scalability: state-machine generated programs
///
//===----------------------------------------------------------------------===//

#ifndef LA_CORPUS_CORPUS_H
#define LA_CORPUS_CORPUS_H

#include <string>
#include <vector>

namespace la::corpus {

/// One benchmark program.
struct BenchmarkProgram {
  std::string Name;
  std::string Category;
  std::string Source;     ///< mini-C text
  bool ExpectedSafe;      ///< ground-truth verdict
  size_t Lines = 0;       ///< #L: source line count
};

/// The full corpus (built once, cached).
const std::vector<BenchmarkProgram> &allPrograms();

/// Programs of one category, in corpus order.
std::vector<const BenchmarkProgram *> category(const std::string &Name);

/// Distinct category names, in corpus order.
std::vector<std::string> categories();

/// Finds a program by name (null when absent).
const BenchmarkProgram *find(const std::string &Name);

} // namespace la::corpus

#endif // LA_CORPUS_CORPUS_H
