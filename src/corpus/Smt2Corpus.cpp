//===- corpus/Smt2Corpus.cpp - Bundled SMT-LIB2 HORN benchmarks -----------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Smt2Corpus.h"

#ifndef LA_SMT2_CORPUS_DIR
#error "LA_SMT2_CORPUS_DIR must point at src/corpus/smt2 (set by CMake)"
#endif

using namespace la::corpus;

const std::vector<Smt2Benchmark> &la::corpus::smt2Benchmarks() {
  static const std::vector<Smt2Benchmark> Benchmarks = [] {
    std::vector<Smt2Benchmark> Out;
    auto Add = [&Out](const char *Name, bool Safe, const char *MiniC,
                      bool MultiPred, bool Nonlinear) {
      Smt2Benchmark B;
      B.Name = Name;
      B.Path = std::string(LA_SMT2_CORPUS_DIR) + "/" + Name + ".smt2";
      B.ExpectedSafe = Safe;
      B.MiniCEquivalent = MiniC;
      B.MultiPredicate = MultiPred;
      B.NonlinearHorn = Nonlinear;
      Out.push_back(std::move(B));
    };
    Add("fig1_safe", true, "paper_fig1", false, false);
    Add("fig1_unsafe", false, "paper_fig1_unsafe", false, false);
    Add("counter_safe", true, "", false, false);
    Add("two_phase_safe", true, "", true, false);
    Add("multi_pred_unsafe", false, "", true, false);
    Add("nonlinear_horn_safe", true, "", false, true);
    Add("nonlinear_horn_unsafe", false, "", false, true);
    Add("bool_flag_safe", true, "", false, false);
    Add("let_ite_safe", true, "", false, false);
    return Out;
  }();
  return Benchmarks;
}

const Smt2Benchmark *la::corpus::findSmt2(const std::string &Name) {
  for (const Smt2Benchmark &B : smt2Benchmarks())
    if (B.Name == Name)
      return &B;
  return nullptr;
}
