//===- corpus/Corpus.cpp - Benchmark program corpus ------------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

#include <algorithm>
#include <map>

using namespace la;
using namespace la::corpus;

namespace la::corpus {
// Defined in Generated.cpp: the parameterised program families.
void appendGeneratedPrograms(std::vector<BenchmarkProgram> &Out);
} // namespace la::corpus

namespace {

size_t countLines(const std::string &Source) {
  return static_cast<size_t>(std::count(Source.begin(), Source.end(), '\n')) +
         1;
}

void add(std::vector<BenchmarkProgram> &Out, std::string Name,
         std::string Category, bool Safe, std::string Source) {
  BenchmarkProgram P;
  P.Name = std::move(Name);
  P.Category = std::move(Category);
  P.Source = std::move(Source);
  P.ExpectedSafe = Safe;
  P.Lines = countLines(P.Source);
  Out.push_back(std::move(P));
}

/// The hand-written programs, including every example the paper names.
void appendHandWritten(std::vector<BenchmarkProgram> &Out) {
  // --- The paper's running examples -------------------------------------

  // Fig. 1: Spacer diverges, the data-driven solver finds x>=1 /\ y>=0.
  add(Out, "paper_fig1", "loop-lit", true, R"(int main(){
  int x, y;
  x = 1; y = 0;
  while (*) {
    x = x + y;
    y++;
  }
  assert(x >= y);
})");
  add(Out, "paper_fig1_unsafe", "loop-lit", false, R"(int main(){
  int x, y;
  x = 1; y = 0;
  while (*) {
    x = x + y;
    y++;
  }
  assert(x > y);
})");

  // Fig. 3 (program (a)): needs an or-of-and invariant.
  add(Out, "paper_fig3_a", "pie-suite", true, R"(int main(){
  int x, y;
  x = 0; y = *;
  while (y != 0) {
    if (y < 0) { x--; y++; }
    else { x++; y--; }
    assert(x != 0);
  }
})");

  // Fig. 4 (program (b)): parity-dependent relational invariant.
  add(Out, "paper_fig4_b", "loop-lit", true, R"(int main(){
  int x, y, i, n;
  x = 0; y = 0; i = 0; n = *;
  while (i < n) {
    i++; x++;
    if (i % 2 == 0) { y++; }
  }
  assert(i % 2 != 0 || x == 2 * y);
})");

  // Fig. 5 (program (c)): recursive fibonacci, fibo(x) >= x - 1.
  add(Out, "paper_fig5_fibo", "recursive", true, R"(int fibo(int x) {
  if (x < 1) { return 0; }
  if (x == 1) { return 1; }
  return fibo(x - 1) + fibo(x - 2);
}
int main(int x){
  assert(fibo(x) >= x - 1);
})");
  add(Out, "paper_fig5_fibo_unsafe", "recursive", false, R"(int fibo(int x) {
  if (x < 1) { return 0; }
  if (x == 1) { return 1; }
  return fibo(x - 1) + fibo(x - 2);
}
int main(int x){
  assert(fibo(x) >= x);
})");

  // §2.3: the SV-COMP assertion variant (x < 9 || fibo(x) >= 34).
  add(Out, "fibo_sv_34", "recursive", true, R"(int fibo(int x) {
  if (x < 1) { return 0; }
  if (x == 1) { return 1; }
  return fibo(x - 1) + fibo(x - 2);
}
int main(int x){
  assert(x < 9 || fibo(x) >= 34);
})");

  // --- Recursive programs in the paper's tables -------------------------

  // recHanoi3 analogue: moves(n) = 2*moves(n-1) + 1 >= n.
  add(Out, "rec_hanoi", "recursive", true, R"(int hanoi(int n) {
  if (n <= 0) { return 0; }
  return 2 * hanoi(n - 1) + 1;
}
int main(int n){
  assert(hanoi(n) >= n);
})");
  add(Out, "rec_hanoi_unsafe", "recursive", false, R"(int hanoi(int n) {
  if (n <= 0) { return 0; }
  return 2 * hanoi(n - 1) + 1;
}
int main(int n){
  assume(n >= 2);
  assert(hanoi(n) <= n + 1);
})");

  // EvenOdd analogue: mutual recursion deciding parity.
  add(Out, "rec_even_odd", "recursive", true, R"(int isOdd(int n) {
  if (n == 0) { return 0; }
  return isEven(n - 1);
}
int isEven(int n) {
  if (n == 0) { return 1; }
  return isOdd(n - 1);
}
int main(int n){
  assume(n >= 0);
  int e = isEven(n);
  assert(e == 0 || e == 1);
})");

  // Fib2calls analogue: two entry points into the same recursion.
  add(Out, "rec_fib2calls", "recursive", true, R"(int fibo(int x) {
  if (x < 1) { return 0; }
  if (x == 1) { return 1; }
  return fibo(x - 1) + fibo(x - 2);
}
int main(int x){
  int a = fibo(x);
  int b = fibo(x + 1);
  assert(b >= a);
})");

  // Recursive sum: sum(n) >= n for n >= 0.
  add(Out, "rec_sum", "recursive", true, R"(int sum(int n) {
  if (n <= 0) { return 0; }
  return n + sum(n - 1);
}
int main(int n){
  assert(sum(n) >= n);
})");
  add(Out, "rec_sum_unsafe", "recursive", false, R"(int sum(int n) {
  if (n <= 0) { return 0; }
  return n + sum(n - 1);
}
int main(int n){
  assume(n >= 3);
  assert(sum(n) <= n);
})");

  // McCarthy 91 (classic recursive benchmark).
  add(Out, "rec_mccarthy91", "recursive", true, R"(int mc(int x) {
  if (x > 100) { return x - 10; }
  return mc(mc(x + 11));
}
int main(int n){
  assume(n <= 100);
  int r = mc(n);
  assert(r == 91);
})");

  // Ackermann-lite: bounded double recursion with a monotonicity property.
  add(Out, "rec_double", "recursive", true, R"(int g(int n) {
  if (n <= 0) { return 0; }
  return g(n - 1) + 1;
}
int main(int n){
  int r = g(g(n));
  assert(r >= 0);
})");

  // --- loop-lit: literature loop programs --------------------------------

  add(Out, "lit_cggmp_easy", "loop-lit", true, R"(int main(){
  int i = 1, j = 10;
  while (j >= i) {
    i = i + 2;
    j = j - 1;
  }
  assert(j == 6);
})");

  add(Out, "lit_gsv_bounds", "loop-lit", true, R"(int main(){
  int x = -50;
  int y = *;
  assume(y > 0 && y < 1000);
  while (x < 0) {
    x = x + y;
    y++;
  }
  assert(y > 0);
})");

  add(Out, "lit_half_sum", "loop-lit", true, R"(int main(){
  int n = *, i = 0, k = 0;
  assume(n >= 0);
  while (i < 2 * n) {
    k = k + 1;
    i = i + 2;
  }
  assert(k >= n);
})");

  add(Out, "lit_updown", "loop-lit", true, R"(int main(){
  int n = *, x = 0;
  assume(n >= 0);
  while (x < n) { x++; }
  while (x > 0) { x--; }
  assert(x == 0);
})");

  add(Out, "lit_updown_unsafe", "loop-lit", false, R"(int main(){
  int n = *, x = 0;
  assume(n >= 1);
  while (x < n) { x++; }
  while (x > 0) { x--; }
  assert(x == 1);
})");

  add(Out, "lit_parity_skip", "loop-lit", true, R"(int main(){
  int x = 0;
  while (*) {
    x = x + 2;
  }
  assert(x != 5);
})");

  // --- loop-invgen: InvGen-style loops ------------------------------------

  add(Out, "invgen_two_counters", "loop-invgen", true, R"(int main(){
  int i = 0, j = 0, n = *;
  assume(n >= 0);
  while (i < n) {
    i++;
    j = j + 2;
  }
  assert(j == 2 * i);
})");

  add(Out, "invgen_three_vars", "loop-invgen", true, R"(int main(){
  int x = 0, y = 0, z = 0;
  while (*) {
    x++; y = y + 2; z = z + 3;
  }
  assert(z == x + y);
})");

  add(Out, "invgen_guard_sum", "loop-invgen", true, R"(int main(){
  int i = 0, sum = 0, n = *;
  assume(n >= 0 && n <= 100);
  while (i < n) {
    sum = sum + i;
    i++;
  }
  assert(sum >= 0);
})");

  add(Out, "invgen_phase_split", "pie-suite", true, R"(int main(){
  int x = 0, phase = 0;
  while (*) {
    if (phase == 0) {
      x++;
      if (x >= 10) { phase = 1; }
    } else {
      x--;
      if (x <= 0) { phase = 0; }
    }
  }
  assert(x >= 0 && x <= 10);
})");

  add(Out, "invgen_interleaved", "loop-invgen", true, R"(int main(){
  int x = 0, y = 0;
  while (*) {
    if (*) { x++; y++; }
    else { x--; y--; }
    assume(x >= 0);
  }
  assert(x == y);
})");

  // --- pie-suite: boolean-structured invariants ---------------------------

  add(Out, "pie_abs_value", "pie-suite", true, R"(int main(){
  int x = *, y;
  if (x < 0) { y = -x; } else { y = x; }
  assert(y >= 0 && (y == x || y == -x));
})");

  add(Out, "pie_sign_product", "pie-suite", true, R"(int main(){
  int x = *, s;
  if (x > 0) { s = 1; }
  else { if (x < 0) { s = -1; } else { s = 0; } }
  while (*) {
    x = x + s;
    if (x == 0) { s = 0; }
  }
  assert(s >= -1 && s <= 1);
})");

  add(Out, "pie_split_range", "pie-suite", true, R"(int main(){
  int x = *;
  assume(x >= -100 && x <= 100);
  int seen = 0;
  while (x != 0) {
    if (x > 0) { x--; }
    else { x++; }
    seen = 1;
  }
  assert(x == 0 || seen == 0);
})");

  add(Out, "pie_alternate", "pie-suite", true, R"(int main(){
  int x = 1;
  while (*) {
    x = -x;
  }
  assert(x == 1 || x == -1);
})");

  add(Out, "pie_alternate_unsafe", "pie-suite", false, R"(int main(){
  int x = 1;
  while (*) {
    x = -x;
  }
  assert(x == 1);
})");

  add(Out, "pie_saw_tooth", "pie-suite", true, R"(int main(){
  int x = 0, d = 1;
  while (*) {
    x = x + d;
    if (x == 3) { d = -1; }
    if (x == 0) { d = 1; }
  }
  assert(x >= 0 && x <= 3);
})");

  // --- dig-suite: linear equality/inequality invariants -------------------

  add(Out, "dig_affine_line", "dig-suite", true, R"(int main(){
  int x = 0, y = 1;
  while (*) {
    x = x + 1;
    y = y + 3;
  }
  assert(y == 3 * x + 1);
})");

  add(Out, "dig_conserved_sum", "dig-suite", true, R"(int main(){
  int a = 10, b = 0;
  while (a > 0) {
    a--;
    b++;
  }
  assert(a + b == 10);
})");

  add(Out, "dig_scaled_pair", "dig-suite", true, R"(int main(){
  int i = 0, x = 0, y = 0;
  while (i < 100) {
    i++;
    x = x + 4;
    y = y + 5;
  }
  assert(5 * x == 4 * y);
})");

  add(Out, "dig_box_bounds", "dig-suite", true, R"(int main(){
  int x = 5;
  while (*) {
    if (x < 10) { x++; }
  }
  assert(x >= 5 && x <= 10);
})");

  add(Out, "dig_disjunctive_04", "dig-suite", true, R"(int main(){
  int x = *;
  int y;
  if (x >= 0) { y = x; } else { y = -x; }
  while (*) { y = y + 1; }
  assert(y >= x);
})");

  add(Out, "dig_disjunctive_10", "dig-suite", true, R"(int main(){
  int x = 0, flag = *;
  if (flag >= 1) { x = 100; } else { x = -100; }
  while (*) {
    if (x > 0) { x++; }
    if (x < 0) { x--; }
  }
  assert(x >= 100 || x <= -100);
})");

  // --- mod-dependent programs (Beyond Polyhedra, §3.3) --------------------

  add(Out, "mod_even_counter", "loop-lit", true, R"(int main(){
  int x = 0;
  while (*) { x = x + 2; }
  assert(x % 2 == 0);
})");

  add(Out, "mod_cycle3", "loop-lit", true, R"(int main(){
  int x = 0;
  while (*) { x = x + 3; }
  assert(x % 3 != 1 && x % 3 != 2);
})");
}

} // namespace

const std::vector<BenchmarkProgram> &corpus::allPrograms() {
  static const std::vector<BenchmarkProgram> All = [] {
    std::vector<BenchmarkProgram> Out;
    appendHandWritten(Out);
    appendGeneratedPrograms(Out);
    return Out;
  }();
  return All;
}

std::vector<const BenchmarkProgram *>
corpus::category(const std::string &Name) {
  std::vector<const BenchmarkProgram *> Result;
  for (const BenchmarkProgram &P : allPrograms())
    if (P.Category == Name)
      Result.push_back(&P);
  return Result;
}

std::vector<std::string> corpus::categories() {
  std::vector<std::string> Result;
  for (const BenchmarkProgram &P : allPrograms())
    if (std::find(Result.begin(), Result.end(), P.Category) == Result.end())
      Result.push_back(P.Category);
  return Result;
}

const BenchmarkProgram *corpus::find(const std::string &Name) {
  for (const BenchmarkProgram &P : allPrograms())
    if (P.Name == Name)
      return &P;
  return nullptr;
}
