//===- corpus/Generated.cpp - Parameterised benchmark families ------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generated program families modelled on the SV-COMP categories used in the
/// paper's evaluation: simple and relational loops (loop-*), bounded
/// recursions (recursive-*), many-branch configuration programs
/// (Product-lines) and state-machine programs (Systemc). Each family is
/// parameterised so the corpus reaches a few hundred instances, like the
/// 381-program suite of §6, with both safe and unsafe members.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

#include <algorithm>

namespace la::corpus {
void appendGeneratedPrograms(std::vector<BenchmarkProgram> &Out);
} // namespace la::corpus

using namespace la::corpus;

namespace {

size_t countLines(const std::string &Source) {
  return static_cast<size_t>(std::count(Source.begin(), Source.end(), '\n')) +
         1;
}

void add(std::vector<BenchmarkProgram> &Out, std::string Name,
         std::string Category, bool Safe, std::string Source) {
  BenchmarkProgram P;
  P.Name = std::move(Name);
  P.Category = std::move(Category);
  P.Source = std::move(Source);
  P.ExpectedSafe = Safe;
  P.Lines = countLines(P.Source);
  Out.push_back(std::move(P));
}

std::string num(int64_t V) { return std::to_string(V); }

/// loop-basic: counter to a bound with varying step; safe asserts x <= bound
/// (rounded up to the step), unsafe asserts one less.
void counterFamily(std::vector<BenchmarkProgram> &Out) {
  for (int Bound : {5, 8, 12, 17, 25, 40}) {
    for (int Step : {1, 2, 3}) {
      int Reach = ((Bound + Step - 1) / Step) * Step; // first value >= bound
      std::string Core = "int main(){\n  int x = 0;\n  while (x < " +
                         num(Bound) + ") { x = x + " + num(Step) +
                         "; }\n  assert(x <= ";
      add(Out, "gen_counter_b" + num(Bound) + "_s" + num(Step), "loop-invgen",
          true, Core + num(Reach) + ");\n}");
      add(Out, "gen_counter_b" + num(Bound) + "_s" + num(Step) + "_bug",
          "loop-invgen", false, Core + num(Reach - 1) + ");\n}");
    }
  }
}

/// loop-relational: y tracks a*x + b through the loop.
void relationFamily(std::vector<BenchmarkProgram> &Out) {
  for (int A : {1, 2, 3, 5}) {
    for (int B : {0, 1, 7}) {
      std::string Core = "int main(){\n  int x = 0, y = " + num(B) +
                         ";\n  while (*) {\n    x = x + 1;\n    y = y + " +
                         num(A) + ";\n  }\n  assert(y == " + num(A) +
                         " * x + " + num(B) + ");\n}";
      add(Out, "gen_relation_a" + num(A) + "_b" + num(B), "dig-suite", true,
          Core);
    }
  }
  for (int A : {2, 4}) {
    std::string Core = "int main(){\n  int x = 0, y = 0;\n  while (*) {\n"
                       "    x = x + 1;\n    y = y + " +
                       num(A) + ";\n  }\n  assert(y == " + num(A) +
                       " * x + 1);\n}";
    add(Out, "gen_relation_a" + num(A) + "_bug", "dig-suite", false, Core);
  }
}

/// loop-disjunctive: a two-phase loop needing an or-invariant (pie-suite).
void twoPhaseFamily(std::vector<BenchmarkProgram> &Out) {
  for (int Peak : {4, 6, 9, 13}) {
    std::string Core =
        "int main(){\n  int x = 0, up = 1;\n  while (*) {\n"
        "    if (up == 1) {\n      x++;\n      if (x >= " +
        num(Peak) +
        ") { up = 0; }\n    } else {\n      x--;\n      if (x <= 0) { up = 1; "
        "}\n    }\n  }\n  assert(x >= 0 && x <= " +
        num(Peak) + ");\n}";
    add(Out, "gen_twophase_p" + num(Peak), "pie-suite", true, Core);
    std::string Bug =
        "int main(){\n  int x = 0, up = 1;\n  while (*) {\n"
        "    if (up == 1) {\n      x++;\n      if (x >= " +
        num(Peak) +
        ") { up = 0; }\n    } else {\n      x--;\n      if (x <= 0) { up = 1; "
        "}\n    }\n  }\n  assert(x < " +
        num(Peak) + ");\n}";
    add(Out, "gen_twophase_p" + num(Peak) + "_bug", "pie-suite", false, Bug);
  }
}

/// Nested loops: rectangular iteration with a running sum.
void nestedFamily(std::vector<BenchmarkProgram> &Out) {
  for (int N : {3, 5, 8}) {
    std::string Core = "int main(){\n  int i = 0, s = 0;\n  while (i < " +
                       num(N) +
                       ") {\n    int j = 0;\n    while (j < " + num(N) +
                       ") {\n      j++;\n      s++;\n    }\n    i++;\n  }\n"
                       "  assert(s >= i);\n}";
    // Each outer iteration adds N >= 1 to s, so s >= i holds.
    add(Out, "gen_nested_n" + num(N), "loop-invgen", true, Core);
  }
  add(Out, "gen_nested_bug", "loop-invgen", false,
      "int main(){\n  int i = 0, s = 0;\n  while (i < 4) {\n"
      "    int j = 0;\n    while (j < 4) {\n      j++;\n      s++;\n    }\n"
      "    i++;\n  }\n  assert(s <= 15);\n}");
}

/// Parity loops exercising the mod features.
void parityFamily(std::vector<BenchmarkProgram> &Out) {
  for (int Step : {2, 3, 4}) {
    for (int Avoid = 1; Avoid < Step; ++Avoid) {
      std::string Core = "int main(){\n  int x = 0;\n  while (*) { x = x + " +
                         num(Step) + "; }\n  assert(x % " + num(Step) +
                         " != " + num(Avoid) + ");\n}";
      add(Out,
          "gen_parity_s" + num(Step) + "_a" + num(Avoid), "loop-lit", true,
          Core);
    }
  }
  add(Out, "gen_parity_bug", "loop-lit", false,
      "int main(){\n  int x = 0;\n  while (*) { x = x + 2; }\n"
      "  assert(x % 4 == 0);\n}");
}

/// recursive-*: linear recursions r(n) = r(n-1) + step.
void recursiveFamily(std::vector<BenchmarkProgram> &Out) {
  for (int Step : {1, 2, 5}) {
    std::string Core = "int r(int n) {\n  if (n <= 0) { return 0; }\n"
                       "  return r(n - 1) + " +
                       num(Step) + ";\n}\nint main(int n){\n  assert(r(n) >= " +
                       (Step == 1 ? std::string("n") : num(Step) + " * n - " +
                                                           num(Step)) +
                       ");\n}";
    add(Out, "gen_rec_step" + num(Step), "recursive", true, Core);
  }
  for (int Step : {1, 3}) {
    std::string Core = "int r(int n) {\n  if (n <= 0) { return 0; }\n"
                       "  return r(n - 1) + " +
                       num(Step) +
                       ";\n}\nint main(int n){\n  assume(n >= 2);\n"
                       "  assert(r(n) < " +
                       num(Step) + " * n);\n}";
    add(Out, "gen_rec_step" + num(Step) + "_bug", "recursive", false, Core);
  }
  // Descending recursion with two base cases.
  for (int Base : {1, 4}) {
    std::string Core =
        "int d(int n) {\n  if (n < " + num(Base) +
        ") { return n; }\n  return d(n - 2);\n}\nint main(int n){\n"
        "  assume(n >= 0);\n  assert(d(n) <= n);\n}";
    add(Out, "gen_rec_down_b" + num(Base), "recursive", true, Core);
  }
}

/// Product-lines style: a chain of nondet feature flags with a feature
/// counter; the assertion bounds the counter. Large but shallow programs.
void productLinesFamily(std::vector<BenchmarkProgram> &Out) {
  for (int Features : {4, 8, 12, 20, 32}) {
    std::string Src = "int main(){\n  int count = 0;\n";
    for (int I = 0; I < Features; ++I) {
      Src += "  int f" + num(I) + " = 0;\n  if (*) { f" + num(I) +
             " = 1; count = count + 1; }\n";
    }
    Src += "  assert(count >= 0 && count <= " + num(Features) + ");\n";
    // Feature interaction: the last two features are mutually exclusive.
    Src += "  if (f" + num(Features - 2) + " == 1 && f" + num(Features - 1) +
           " == 1) {\n    count = count - 1;\n  }\n";
    Src += "  assert(count <= " + num(Features) + ");\n}";
    add(Out, "gen_product_f" + num(Features), "product-lines", true, Src);
  }
  // Unsafe member: claims a tighter bound than the number of features.
  {
    int Features = 6;
    std::string Src = "int main(){\n  int count = 0;\n";
    for (int I = 0; I < Features; ++I)
      Src += "  if (*) { count = count + 1; }\n";
    Src += "  assert(count <= " + num(Features - 1) + ");\n}";
    add(Out, "gen_product_bug", "product-lines", false, Src);
  }
}

/// Systemc style: a cyclic state machine driven nondeterministically with a
/// progress counter; safety bounds the state index.
void systemcFamily(std::vector<BenchmarkProgram> &Out) {
  for (int States : {3, 5, 8, 12}) {
    std::string Src =
        "int main(){\n  int state = 0, ticks = 0;\n  while (*) {\n"
        "    if (state == " +
        num(States - 1) +
        ") { state = 0; }\n    else { state = state + 1; }\n"
        "    ticks = ticks + 1;\n  }\n  assert(state >= 0 && state < " +
        num(States) + ");\n}";
    add(Out, "gen_systemc_s" + num(States), "systemc", true, Src);
  }
  add(Out, "gen_systemc_bug", "systemc", false,
      "int main(){\n  int state = 0;\n  while (*) {\n"
      "    if (state == 4) { state = 0; }\n    else { state = state + 1; }\n"
      "  }\n  assert(state < 4);\n}");
}

/// Sequential multi-loop programs (the 31.c/33.c shape: several loops over
/// shared variables, each with its own unknown predicate).
void multiLoopFamily(std::vector<BenchmarkProgram> &Out) {
  for (int Loops : {2, 3, 4, 5}) {
    std::string Src = "int main(){\n  int x = 0, bound = 0;\n";
    for (int I = 0; I < Loops; ++I) {
      Src += "  bound = bound + " + num(I + 3) + ";\n";
      Src += "  while (x < bound) { x = x + 1; }\n";
    }
    Src += "  assert(x == bound);\n}";
    add(Out, "gen_multiloop_k" + num(Loops), "pie-suite", true, Src);
  }
  add(Out, "gen_multiloop_bug", "pie-suite", false,
      "int main(){\n  int x = 0;\n  while (x < 3) { x = x + 1; }\n"
      "  while (x < 7) { x = x + 2; }\n  assert(x == 8);\n}");
}

/// Loops whose exit depends on a nondeterministic bound (unbounded data).
void unboundedFamily(std::vector<BenchmarkProgram> &Out) {
  for (int Slack : {0, 1, 5}) {
    std::string Src = "int main(){\n  int n = *, i = 0;\n"
                      "  assume(n >= 0);\n  while (i < n) { i++; }\n"
                      "  assert(i <= n + " +
                      num(Slack) + ");\n}";
    add(Out, "gen_unbounded_s" + num(Slack), "loop-invgen", true, Src);
  }
  add(Out, "gen_unbounded_bug", "loop-invgen", false,
      "int main(){\n  int n = *, i = 0;\n  assume(n >= 1);\n"
      "  while (i < n) { i++; }\n  assert(i < n);\n}");
}

} // namespace

namespace {

/// Scalability programs: the paper's sfifo/elevator/parport rows are large
/// (300-10000 LoC) programs whose invariants are nonetheless simple and need
/// few samples. These analogues stretch the front end and the clause counts
/// while keeping small invariants.
void scalabilityFamily(std::vector<BenchmarkProgram> &Out) {
  // "elevator": a request-dispatch state machine with many floors encoded
  // as a cascade of branches inside the main loop.
  for (int Floors : {16, 48}) {
    std::string Src = "int main(){\n  int floor = 0, dir = 1, served = 0;\n"
                      "  while (*) {\n";
    for (int F = 0; F < Floors; ++F) {
      Src += "    if (floor == " + num(F) + " && dir == 1) {\n";
      Src += F + 1 < Floors ? "      floor = " + num(F + 1) + ";\n"
                            : "      dir = -1;\n";
      Src += "      served = served + 1;\n    }\n";
      Src += "    if (floor == " + num(F) + " && dir == -1) {\n";
      Src += F > 0 ? "      floor = " + num(F - 1) + ";\n"
                   : "      dir = 1;\n";
      Src += "    }\n";
    }
    Src += "    assert(floor >= 0 && floor <= " + num(Floors - 1) + ");\n";
    Src += "  }\n  assert(served >= 0);\n}";
    add(Out, "gen_elevator_f" + num(Floors), "systemc", true, Src);
  }

  // "parport": a long straight-line configuration sequence guarded by
  // nondeterministic mode flags, with a simple global invariant.
  for (int Regs : {64, 200}) {
    std::string Src = "int main(){\n  int mode = 0, errors = 0;\n";
    for (int R = 0; R < Regs; ++R) {
      Src += "  int reg" + num(R) + " = 0;\n";
      Src += "  if (*) { reg" + num(R) + " = " + num(R % 7) +
             "; mode = mode + 1; }\n";
      Src += "  if (reg" + num(R) + " > 6) { errors = errors + 1; }\n";
    }
    Src += "  assert(errors == 0);\n";
    Src += "  assert(mode >= 0 && mode <= " + num(Regs) + ");\n}";
    add(Out, "gen_parport_r" + num(Regs), "product-lines", true, Src);
  }

  // "sfifo": a queue simulated by head/tail counters plus a size cache,
  // exercised by a nondeterministic producer/consumer loop.
  for (int Cap : {8, 32}) {
    std::string Src =
        "int main(){\n  int head = 0, tail = 0, size = 0;\n"
        "  while (*) {\n"
        "    if (*) {\n      if (size < " + num(Cap) +
        ") { tail = tail + 1; size = size + 1; }\n    } else {\n"
        "      if (size > 0) { head = head + 1; size = size - 1; }\n    }\n"
        "    assert(size >= 0 && size <= " + num(Cap) + ");\n"
        "    assert(tail - head == size);\n  }\n}";
    add(Out, "gen_sfifo_c" + num(Cap), "systemc", true, Src);
  }
  add(Out, "gen_sfifo_bug", "systemc", false,
      "int main(){\n  int head = 0, tail = 0, size = 0;\n  while (*) {\n"
      "    if (*) { tail = tail + 1; size = size + 1; }\n"
      "    else { if (size > 0) { head = head + 1; size = size - 1; } }\n"
      "    assert(size <= 3);\n  }\n}");
}

} // namespace

void la::corpus::appendGeneratedPrograms(std::vector<BenchmarkProgram> &Out) {
  counterFamily(Out);
  relationFamily(Out);
  twoPhaseFamily(Out);
  nestedFamily(Out);
  parityFamily(Out);
  recursiveFamily(Out);
  productLinesFamily(Out);
  systemcFamily(Out);
  multiLoopFamily(Out);
  unboundedFamily(Out);
  scalabilityFamily(Out);
}
