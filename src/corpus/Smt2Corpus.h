//===- corpus/Smt2Corpus.h - Bundled SMT-LIB2 HORN benchmarks ---*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registry of the CHC-COMP-style `.smt2` benchmarks bundled under
/// `src/corpus/smt2/`. Unlike the mini-C corpus these are files on disk
/// (the exchange format is the point), so each entry carries the absolute
/// path baked in at configure time. Entries that restate a mini-C corpus
/// program name it, so tests can check the two front ends agree.
///
//===----------------------------------------------------------------------===//

#ifndef LA_CORPUS_SMT2CORPUS_H
#define LA_CORPUS_SMT2CORPUS_H

#include <string>
#include <vector>

namespace la::corpus {

/// One bundled `.smt2` benchmark.
struct Smt2Benchmark {
  std::string Name;     ///< File stem, e.g. "fig1_safe".
  std::string Path;     ///< Absolute path into the source tree.
  bool ExpectedSafe;    ///< Ground truth: true = sat, false = unsat.
  /// Name of the mini-C corpus program this file restates ("" when the
  /// shape is not expressible in mini-C, e.g. nonlinear Horn).
  std::string MiniCEquivalent;
  bool MultiPredicate = false;
  bool NonlinearHorn = false; ///< Some clause has >= 2 body applications.
};

/// All bundled benchmarks, in a fixed order.
const std::vector<Smt2Benchmark> &smt2Benchmarks();

/// Finds a benchmark by name (null when absent).
const Smt2Benchmark *findSmt2(const std::string &Name);

} // namespace la::corpus

#endif // LA_CORPUS_SMT2CORPUS_H
