; Nonlinear Horn (two predicate applications in one body): a tree-shaped
; recursion f(n) = f(n-1) + f(n-1) + 1 with f(n<=0) = 0; its result is
; never negative. Expected: sat (safe); f(n,r) -> r >= 0 is inductive.
(set-logic HORN)
(declare-fun f (Int Int) Bool)
(assert (forall ((n Int)) (=> (<= n 0) (f n 0))))
(assert (forall ((n Int) (a Int) (b Int))
  (=> (and (> n 0) (f (- n 1) a) (f (- n 1) b))
      (f n (+ a (+ b 1))))))
(assert (forall ((n Int) (r Int)) (=> (f n r) (>= r 0))))
(check-sat)
