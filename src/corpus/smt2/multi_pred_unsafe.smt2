; The two-phase counter with a wrong assertion: "down" is claimed to stay
; strictly positive, but it counts all the way to 0.
; Multi-predicate benchmark. Expected: unsat (unsafe).
(set-logic HORN)
(declare-fun up (Int) Bool)
(declare-fun down (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (up x))))
(assert (forall ((x Int) (y Int))
  (=> (and (up x) (< x 5) (= y (+ x 1))) (up y))))
(assert (forall ((x Int)) (=> (and (up x) (>= x 5)) (down x))))
(assert (forall ((x Int) (y Int))
  (=> (and (down x) (> x 0) (= y (- x 1))) (down y))))
(assert (forall ((x Int)) (=> (down x) (> x 0))))
(check-sat)
