; Exercises let-bindings and integer ite: a counts up by 2 below 5 and by 1
; above, b counts up by 1, so a >= b is preserved. Expected: sat (safe).
(set-logic HORN)
(declare-fun inv (Int Int) Bool)
(assert (forall ((a Int) (b Int))
  (=> (and (= a 0) (= b 0)) (inv a b))))
(assert (forall ((a Int) (b Int) (a1 Int) (b1 Int))
  (=> (and (inv a b)
           (let ((step (ite (< a 5) 2 1)))
             (and (= a1 (+ a step)) (= b1 (+ b 1)))))
      (inv a1 b1))))
(assert (forall ((a Int) (b Int)) (=> (inv a b) (>= a b))))
(check-sat)
