; A bounded counter: n=0; while (n < 10) n++; assert n <= 10.
; Expected: sat (safe); the invariant 0 <= n <= 10 is inductive.
(set-logic HORN)
(declare-fun inv (Int) Bool)
(assert (forall ((n Int)) (=> (= n 0) (inv n))))
(assert (forall ((n Int) (m Int))
  (=> (and (inv n) (< n 10) (= m (+ n 1))) (inv m))))
(assert (forall ((n Int)) (=> (inv n) (<= n 10))))
(check-sat)
