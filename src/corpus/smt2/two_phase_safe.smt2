; Two-phase counter over two predicates: "up" counts 0..5, control moves to
; "down" at 5, which counts back to 0. Safety: up stays <= 5, down stays >= 0.
; Multi-predicate benchmark. Expected: sat (safe).
(set-logic HORN)
(declare-fun up (Int) Bool)
(declare-fun down (Int) Bool)
(assert (forall ((x Int)) (=> (= x 0) (up x))))
(assert (forall ((x Int) (y Int))
  (=> (and (up x) (< x 5) (= y (+ x 1))) (up y))))
(assert (forall ((x Int)) (=> (and (up x) (>= x 5)) (down x))))
(assert (forall ((x Int) (y Int))
  (=> (and (down x) (> x 0) (= y (- x 1))) (down y))))
(assert (forall ((x Int)) (=> (up x) (<= x 5))))
(assert (forall ((x Int)) (=> (down x) (>= x 0))))
(check-sat)
