; Paper Fig. 1 as CHC-COMP HORN: x=1, y=0; loop { x += y; y++ }; assert x >= y.
; Mini-C equivalent: corpus program "paper_fig1". Expected: sat (safe).
(set-logic HORN)
(declare-fun inv (Int Int) Bool)
(assert (forall ((x Int) (y Int))
  (=> (and (= x 1) (= y 0)) (inv x y))))
(assert (forall ((x Int) (y Int) (x1 Int) (y1 Int))
  (=> (and (inv x y) (= x1 (+ x y)) (= y1 (+ y 1))) (inv x1 y1))))
(assert (forall ((x Int) (y Int))
  (=> (inv x y) (>= x y))))
(check-sat)
