; Nonlinear Horn, unsafe variant: the claim r < n is already refuted by the
; base case f(0, 0). Expected: unsat (unsafe).
(set-logic HORN)
(declare-fun f (Int Int) Bool)
(assert (forall ((n Int)) (=> (<= n 0) (f n 0))))
(assert (forall ((n Int) (a Int) (b Int))
  (=> (and (> n 0) (f (- n 1) a) (f (- n 1) b))
      (f n (+ a (+ b 1))))))
(assert (forall ((n Int) (r Int)) (=> (f n r) (< r n))))
(check-sat)
