; A Bool-sorted predicate argument (CHC-COMP allows Bool columns): a counter
; with a toggling flag. Safety only concerns the counter. Expected: sat.
(set-logic HORN)
(declare-fun inv (Int Bool) Bool)
(assert (forall ((x Int)) (=> (= x 0) (inv x false))))
(assert (forall ((x Int) (flag Bool) (y Int))
  (=> (and (inv x flag) (= y (+ x 1))) (inv y (not flag)))))
(assert (forall ((x Int) (flag Bool)) (=> (inv x flag) (>= x 0))))
(check-sat)
