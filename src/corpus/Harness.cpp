//===- corpus/Harness.cpp - Shared evaluation harness helpers --------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Harness.h"

#include <algorithm>
#include <cctype>
#include <set>

using namespace la;
using namespace la::corpus;

std::vector<int64_t> corpus::modFeaturesFor(const std::string &Source) {
  std::vector<int64_t> Mods;
  for (size_t I = 0; I < Source.size(); ++I) {
    if (Source[I] != '%')
      continue;
    size_t J = I + 1;
    while (J < Source.size() &&
           std::isspace(static_cast<unsigned char>(Source[J])))
      ++J;
    int64_t Value = 0;
    bool Any = false;
    while (J < Source.size() &&
           std::isdigit(static_cast<unsigned char>(Source[J]))) {
      Value = Value * 10 + (Source[J] - '0');
      Any = true;
      ++J;
    }
    if (Any && Value > 1 &&
        std::find(Mods.begin(), Mods.end(), Value) == Mods.end())
      Mods.push_back(Value);
  }
  return Mods;
}

solver::DataDrivenOptions
corpus::defaultOptionsFor(const BenchmarkProgram &Program,
                          double TimeoutSeconds) {
  solver::DataDrivenOptions Opts;
  Opts.Limits.WallSeconds = TimeoutSeconds;
  Opts.Learn.ModFeatures = modFeaturesFor(Program.Source);
  // Let a single SMT check use up to half the overall budget (large
  // programs have few but big verification conditions).
  if (TimeoutSeconds > 0)
    Opts.Smt.TimeoutSeconds =
        std::max(Opts.Smt.TimeoutSeconds, TimeoutSeconds / 2);
  return Opts;
}

RunOutcome corpus::runOnProgram(chc::ChcSolverInterface &Solver,
                                const BenchmarkProgram &Program) {
  RunOutcome Out;
  TermManager TM;
  chc::ChcSystem System(TM);
  frontend::EncodeResult E = frontend::encodeMiniC(Program.Source, System);
  if (!E.Ok)
    return Out; // treated as Unknown; the corpus test guarantees this is dead

  Out.NumClauses = System.clauses().size();
  Out.NumPredicates = System.predicates().size();
  std::set<const Term *> Vars;
  for (const chc::HornClause &C : System.clauses()) {
    for (const Term *V : TM.collectVars(C.Constraint))
      Vars.insert(V);
    for (const chc::PredApp &App : C.Body)
      for (const Term *Arg : App.Args)
        for (const Term *V : TM.collectVars(Arg))
          Vars.insert(V);
  }
  Out.NumVariables = Vars.size();

  chc::ChcSolverResult R = Solver.solve(System);
  Out.Status = R.Status;
  Out.Seconds = R.Stats.Seconds;
  Out.Stats = R.Stats;
  if (const auto *DD = dynamic_cast<const solver::DataDrivenChcSolver *>(&Solver)) {
    Out.AnalysisPasses = DD->analysisResult().Passes;
    Out.SolvedByAnalysis = DD->detailedStats().SolvedByAnalysis;
  }

  if (R.Status == chc::ChcResult::Unknown)
    return Out;
  bool VerdictSafe = R.Status == chc::ChcResult::Sat;
  if (VerdictSafe != Program.ExpectedSafe) {
    Out.Unsound = true;
    return Out;
  }
  // Validate witnesses where available.
  if (R.Status == chc::ChcResult::Sat &&
      chc::checkInterpretation(System, R.Interp) != chc::ClauseStatus::Valid) {
    Out.Unsound = true;
    return Out;
  }
  if (R.Status == chc::ChcResult::Sat) {
    // #A of the most complex invariant: conjuncts per disjunct.
    std::vector<size_t> Best;
    for (const chc::Predicate *P : System.predicates()) {
      std::vector<size_t> Shape = ml::dnfShape(R.Interp.get(P));
      if (Shape.size() > Best.size())
        Best = Shape;
    }
    for (size_t I = 0; I < Best.size(); ++I)
      Out.InvariantShape +=
          (I ? "," : "") + std::to_string(Best[I]);
  }
  if (R.Status == chc::ChcResult::Unsat && R.Cex &&
      !chc::validateCounterexample(System, *R.Cex)) {
    Out.Unsound = true;
    return Out;
  }
  Out.Solved = true;
  return Out;
}
