//===- corpus/Harness.h - Shared evaluation harness helpers -----*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the benchmark binaries: encoding corpus programs,
/// running any solver against a program with a ground-truth check, and the
/// default solver configuration (mod features are chosen from the moduli
/// that actually occur in the program text, the "parameterized a priori"
/// convention of §3.3).
///
//===----------------------------------------------------------------------===//

#ifndef LA_CORPUS_HARNESS_H
#define LA_CORPUS_HARNESS_H

#include "corpus/Corpus.h"
#include "frontend/Encoder.h"
#include "solver/DataDrivenSolver.h"

namespace la::corpus {

/// Moduli of the `%` operations occurring in \p Source (deduplicated).
std::vector<int64_t> modFeaturesFor(const std::string &Source);

/// Default data-driven solver configuration for one benchmark program.
solver::DataDrivenOptions defaultOptionsFor(const BenchmarkProgram &Program,
                                            double TimeoutSeconds);

/// Outcome of one solver-vs-program run.
struct RunOutcome {
  chc::ChcResult Status = chc::ChcResult::Unknown;
  double Seconds = 0;
  /// True when the verdict matches the ground truth (Unknown never does)
  /// and the witness validated.
  bool Solved = false;
  /// True when the verdict contradicts the ground truth or a witness failed
  /// to validate -- this must never happen and the harness reports it loudly.
  bool Unsound = false;
  chc::EngineStats Stats;
  size_t NumClauses = 0;
  size_t NumPredicates = 0;
  size_t NumVariables = 0; ///< #V: distinct variables in the clause system
  /// #A: conjunct counts per disjunct of the most complex learned invariant
  /// (comma separated), as in the paper's benchmark tables. Empty unless Sat.
  std::string InvariantShape;
  /// Per-pass statistics of the static pre-analysis pipeline; empty when the
  /// solver is not the data-driven solver or analysis is disabled.
  std::vector<analysis::PassStats> AnalysisPasses;
  /// True when the pre-analysis discharged the system without any CEGAR
  /// iterations.
  bool SolvedByAnalysis = false;
};

/// Encodes \p Program and runs \p Solver on it, validating the witness.
RunOutcome runOnProgram(chc::ChcSolverInterface &Solver,
                        const BenchmarkProgram &Program);

} // namespace la::corpus

#endif // LA_CORPUS_HARNESS_H
