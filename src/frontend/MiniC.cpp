//===- frontend/MiniC.cpp - Mini-C lexer and parser ------------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/MiniC.h"

#include <cctype>
#include <cstdlib>

using namespace la;
using namespace la::frontend;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

struct Token {
  enum class Kind { Ident, Number, Punct, Eof };
  Kind K = Kind::Eof;
  std::string Text;
  int64_t Value = 0;
  size_t Line = 1;
};

class Lexer {
public:
  explicit Lexer(const std::string &Source) : Source(Source) { advance(); }

  const Token &current() const { return Current; }

  void advance() {
    skipTrivia();
    Current.Line = Line;
    if (Pos >= Source.size()) {
      Current.K = Token::Kind::Eof;
      Current.Text.clear();
      return;
    }
    char C = Source[Pos];
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < Source.size() &&
             (std::isalnum(static_cast<unsigned char>(Source[Pos])) ||
              Source[Pos] == '_'))
        ++Pos;
      Current.K = Token::Kind::Ident;
      Current.Text = Source.substr(Start, Pos - Start);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = Pos;
      while (Pos < Source.size() &&
             std::isdigit(static_cast<unsigned char>(Source[Pos])))
        ++Pos;
      Current.K = Token::Kind::Number;
      Current.Text = Source.substr(Start, Pos - Start);
      Current.Value = std::strtoll(Current.Text.c_str(), nullptr, 10);
      return;
    }
    // Multi-character punctuation first.
    static const char *Two[] = {"==", "!=", "<=", ">=", "&&", "||", "++", "--"};
    for (const char *Op : Two) {
      if (Source.compare(Pos, 2, Op) == 0) {
        Current.K = Token::Kind::Punct;
        Current.Text = Op;
        Pos += 2;
        return;
      }
    }
    Current.K = Token::Kind::Punct;
    Current.Text = std::string(1, C);
    ++Pos;
  }

private:
  void skipTrivia() {
    for (;;) {
      while (Pos < Source.size() &&
             std::isspace(static_cast<unsigned char>(Source[Pos]))) {
        if (Source[Pos] == '\n')
          ++Line;
        ++Pos;
      }
      if (Source.compare(Pos, 2, "//") == 0) {
        while (Pos < Source.size() && Source[Pos] != '\n')
          ++Pos;
        continue;
      }
      if (Source.compare(Pos, 2, "/*") == 0) {
        Pos += 2;
        while (Pos + 1 < Source.size() &&
               !(Source[Pos] == '*' && Source[Pos + 1] == '/')) {
          if (Source[Pos] == '\n')
            ++Line;
          ++Pos;
        }
        Pos = Pos + 2 <= Source.size() ? Pos + 2 : Source.size();
        continue;
      }
      return;
    }
  }

  const std::string &Source;
  size_t Pos = 0;
  size_t Line = 1;
  Token Current;
};

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

class Parser {
public:
  explicit Parser(const std::string &Source) : Lex(Source) {}

  ParseResult run() {
    ParseResult Result;
    while (!Failed && Lex.current().K != Token::Kind::Eof)
      parseFunction(Result.Prog);
    Result.Ok = !Failed;
    Result.Error = ErrorMessage;
    return Result;
  }

private:
  bool fail(const std::string &Message) {
    if (!Failed) {
      Failed = true;
      ErrorMessage =
          "line " + std::to_string(Lex.current().Line) + ": " + Message;
    }
    return false;
  }

  bool isPunct(const char *Text) const {
    return Lex.current().K == Token::Kind::Punct && Lex.current().Text == Text;
  }
  bool isIdent(const char *Text) const {
    return Lex.current().K == Token::Kind::Ident && Lex.current().Text == Text;
  }

  bool expectPunct(const char *Text) {
    if (!isPunct(Text))
      return fail(std::string("expected '") + Text + "', found '" +
                  Lex.current().Text + "'");
    Lex.advance();
    return true;
  }

  bool expectIdent(std::string &Out) {
    if (Lex.current().K != Token::Kind::Ident)
      return fail("expected an identifier, found '" + Lex.current().Text +
                  "'");
    Out = Lex.current().Text;
    Lex.advance();
    return true;
  }

  void parseFunction(Program &Prog) {
    Function F;
    F.Line = Lex.current().Line;
    // Return type: accept "int" or "void".
    if (!isIdent("int") && !isIdent("void")) {
      fail("expected a function definition starting with 'int' or 'void'");
      return;
    }
    Lex.advance();
    if (!expectIdent(F.Name))
      return;
    if (!expectPunct("("))
      return;
    if (!isPunct(")")) {
      for (;;) {
        if (isIdent("int") || isIdent("void"))
          Lex.advance();
        std::string Param;
        if (!expectIdent(Param))
          return;
        F.Params.push_back(Param);
        if (isPunct(",")) {
          Lex.advance();
          continue;
        }
        break;
      }
    }
    if (!expectPunct(")"))
      return;
    F.Body = parseBlock();
    if (Failed)
      return;
    Prog.Functions.push_back(std::move(F));
  }

  StmtPtr parseBlock() {
    auto Block = std::make_unique<Stmt>();
    Block->K = Stmt::Kind::Block;
    Block->Line = Lex.current().Line;
    if (!expectPunct("{"))
      return Block;
    while (!Failed && !isPunct("}")) {
      if (Lex.current().K == Token::Kind::Eof) {
        fail("unterminated block");
        return Block;
      }
      StmtPtr S = parseStmt();
      if (Failed)
        return Block;
      Block->Body.push_back(std::move(S));
    }
    expectPunct("}");
    return Block;
  }

  StmtPtr parseStmt() {
    auto S = std::make_unique<Stmt>();
    S->Line = Lex.current().Line;

    if (isPunct(";")) {
      S->K = Stmt::Kind::Skip;
      Lex.advance();
      return S;
    }
    if (isPunct("{"))
      return parseBlock();

    if (isIdent("int")) {
      // Declarations, possibly multiple: int x = 1, y, z = *;
      Lex.advance();
      auto Block = std::make_unique<Stmt>();
      Block->K = Stmt::Kind::Block;
      Block->Line = S->Line;
      for (;;) {
        auto Decl = std::make_unique<Stmt>();
        Decl->K = Stmt::Kind::Decl;
        Decl->Line = Lex.current().Line;
        if (!expectIdent(Decl->Name))
          return Block;
        if (isPunct("=")) {
          Lex.advance();
          Decl->Value = parseExpr();
          if (Failed)
            return Block;
        }
        Block->Body.push_back(std::move(Decl));
        if (isPunct(",")) {
          Lex.advance();
          continue;
        }
        break;
      }
      expectPunct(";");
      if (Block->Body.size() == 1)
        return std::move(Block->Body[0]);
      return Block;
    }

    if (isIdent("if")) {
      Lex.advance();
      S->K = Stmt::Kind::If;
      if (!expectPunct("("))
        return S;
      S->Condition = parseCond();
      if (Failed || !expectPunct(")"))
        return S;
      S->Body.push_back(parseStmt());
      if (Failed)
        return S;
      if (isIdent("else")) {
        Lex.advance();
        S->Body.push_back(parseStmt());
      }
      return S;
    }

    if (isIdent("while")) {
      Lex.advance();
      S->K = Stmt::Kind::While;
      if (!expectPunct("("))
        return S;
      S->Condition = parseCond();
      if (Failed || !expectPunct(")"))
        return S;
      S->Body.push_back(parseStmt());
      return S;
    }

    if (isIdent("assert") || isIdent("assume")) {
      S->K = isIdent("assert") ? Stmt::Kind::Assert : Stmt::Kind::Assume;
      Lex.advance();
      if (!expectPunct("("))
        return S;
      S->Condition = parseCond();
      if (Failed || !expectPunct(")"))
        return S;
      expectPunct(";");
      return S;
    }

    if (isIdent("return")) {
      Lex.advance();
      S->K = Stmt::Kind::Return;
      if (!isPunct(";")) {
        S->Value = parseExpr();
        if (Failed)
          return S;
      }
      expectPunct(";");
      return S;
    }

    // Assignment: id = expr; also id++/id--.
    if (Lex.current().K == Token::Kind::Ident) {
      S->K = Stmt::Kind::Assign;
      expectIdent(S->Name);
      if (isPunct("++") || isPunct("--")) {
        // x++  ==>  x = x + 1.
        bool Inc = Lex.current().Text == "++";
        Lex.advance();
        auto Var = std::make_unique<Expr>();
        Var->K = Expr::Kind::VarRef;
        Var->Name = S->Name;
        auto One = std::make_unique<Expr>();
        One->K = Expr::Kind::IntLit;
        One->Value = 1;
        auto Op = std::make_unique<Expr>();
        Op->K = Inc ? Expr::Kind::Add : Expr::Kind::Sub;
        Op->Args.push_back(std::move(Var));
        Op->Args.push_back(std::move(One));
        S->Value = std::move(Op);
        expectPunct(";");
        return S;
      }
      if (!expectPunct("="))
        return S;
      S->Value = parseExpr();
      if (Failed)
        return S;
      expectPunct(";");
      return S;
    }

    fail("expected a statement, found '" + Lex.current().Text + "'");
    return S;
  }

  //===--------------------------------------------------------------------===//
  // Conditions (precedence: || < && < ! < comparison)
  //===--------------------------------------------------------------------===//

  CondPtr parseCond() { return parseOr(); }

  CondPtr parseOr() {
    CondPtr Lhs = parseAnd();
    while (!Failed && isPunct("||")) {
      Lex.advance();
      auto Node = std::make_unique<Cond>();
      Node->K = Cond::Kind::Or;
      Node->Line = Lhs->Line;
      Node->Children.push_back(std::move(Lhs));
      Node->Children.push_back(parseAnd());
      Lhs = std::move(Node);
    }
    return Lhs;
  }

  CondPtr parseAnd() {
    CondPtr Lhs = parseNot();
    while (!Failed && isPunct("&&")) {
      Lex.advance();
      auto Node = std::make_unique<Cond>();
      Node->K = Cond::Kind::And;
      Node->Line = Lhs->Line;
      Node->Children.push_back(std::move(Lhs));
      Node->Children.push_back(parseNot());
      Lhs = std::move(Node);
    }
    return Lhs;
  }

  CondPtr parseNot() {
    if (isPunct("!")) {
      size_t Line = Lex.current().Line;
      Lex.advance();
      auto Node = std::make_unique<Cond>();
      Node->K = Cond::Kind::Not;
      Node->Line = Line;
      Node->Children.push_back(parseNot());
      return Node;
    }
    return parseAtomCond();
  }

  CondPtr parseAtomCond() {
    auto Node = std::make_unique<Cond>();
    Node->Line = Lex.current().Line;
    if (isPunct("*")) {
      Lex.advance();
      Node->K = Cond::Kind::Nondet;
      return Node;
    }
    if (isIdent("true") || isIdent("false")) {
      Node->K = Cond::Kind::BoolLit;
      Node->BoolValue = isIdent("true");
      Lex.advance();
      return Node;
    }
    // Parenthesised condition needs lookahead: "(" could also start an
    // arithmetic expression of a comparison. Parse an expression first; if a
    // comparison operator follows, it was the left operand, otherwise we
    // expect the parenthesised form to be a full condition.
    if (isPunct("(")) {
      // Try a full parenthesised condition by scanning for a boolean
      // operator before the matching close paren at depth 1.
      if (parenContainsBoolOp()) {
        Lex.advance();
        Node = parseCond();
        expectPunct(")");
        return Node;
      }
    }
    Node->K = Cond::Kind::Cmp;
    Node->Lhs = parseExpr();
    if (Failed)
      return Node;
    static const char *Ops[] = {"==", "!=", "<=", ">=", "<", ">"};
    for (const char *Op : Ops) {
      if (isPunct(Op)) {
        Node->CmpOp = Op;
        Lex.advance();
        Node->Rhs = parseExpr();
        return Node;
      }
    }
    fail("expected a comparison operator, found '" + Lex.current().Text + "'");
    return Node;
  }

  /// Lookahead: true when the parenthesised group starting at the current
  /// "(" contains a boolean or comparison operator before its matching ")".
  /// Comparisons cannot occur inside arithmetic in this language, so this
  /// exactly distinguishes a parenthesised condition from a parenthesised
  /// arithmetic operand.
  bool parenContainsBoolOp() const {
    Lexer Probe = Lex; // the lexer is a cheap value type; scan a copy
    int Depth = 0;
    for (;;) {
      const Token &T = Probe.current();
      if (T.K == Token::Kind::Eof)
        return false;
      if (T.K == Token::Kind::Punct) {
        if (T.Text == "(") {
          ++Depth;
        } else if (T.Text == ")") {
          if (--Depth == 0)
            return false;
        } else if (T.Text == "&&" || T.Text == "||" || T.Text == "!" ||
                   T.Text == "==" || T.Text == "!=" || T.Text == "<" ||
                   T.Text == "<=" || T.Text == ">" || T.Text == ">=") {
          return true;
        }
      }
      Probe.advance();
    }
  }

  Lexer Lex;
  bool Failed = false;
  std::string ErrorMessage;
  //===--------------------------------------------------------------------===//
  // Expressions (precedence: + - < * % < unary)
  //===--------------------------------------------------------------------===//

  ExprPtr parseExpr() { return parseAddSub(); }

  ExprPtr parseAddSub() {
    ExprPtr Lhs = parseMulMod();
    while (!Failed && (isPunct("+") || isPunct("-"))) {
      bool IsAdd = Lex.current().Text == "+";
      Lex.advance();
      auto Node = std::make_unique<Expr>();
      Node->K = IsAdd ? Expr::Kind::Add : Expr::Kind::Sub;
      Node->Line = Lhs->Line;
      Node->Args.push_back(std::move(Lhs));
      Node->Args.push_back(parseMulMod());
      Lhs = std::move(Node);
    }
    return Lhs;
  }

  ExprPtr parseMulMod() {
    ExprPtr Lhs = parseUnary();
    while (!Failed && (isPunct("*") || isPunct("%"))) {
      bool IsMul = Lex.current().Text == "*";
      Lex.advance();
      auto Node = std::make_unique<Expr>();
      Node->K = IsMul ? Expr::Kind::Mul : Expr::Kind::Mod;
      Node->Line = Lhs->Line;
      Node->Args.push_back(std::move(Lhs));
      Node->Args.push_back(parseUnary());
      Lhs = std::move(Node);
    }
    return Lhs;
  }

  ExprPtr parseUnary() {
    if (isPunct("-")) {
      size_t Line = Lex.current().Line;
      Lex.advance();
      auto Node = std::make_unique<Expr>();
      Node->K = Expr::Kind::Neg;
      Node->Line = Line;
      Node->Args.push_back(parseUnary());
      return Node;
    }
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    auto Node = std::make_unique<Expr>();
    Node->Line = Lex.current().Line;
    if (Lex.current().K == Token::Kind::Number) {
      Node->K = Expr::Kind::IntLit;
      Node->Value = Lex.current().Value;
      Lex.advance();
      return Node;
    }
    if (isPunct("*")) {
      // A bare '*' in expression position is a nondeterministic value, as in
      // the paper's examples (y = *).
      Lex.advance();
      Node->K = Expr::Kind::Nondet;
      return Node;
    }
    if (isPunct("(")) {
      Lex.advance();
      Node = parseExpr();
      expectPunct(")");
      return Node;
    }
    if (Lex.current().K == Token::Kind::Ident) {
      std::string Name = Lex.current().Text;
      Lex.advance();
      if (isPunct("(")) {
        Lex.advance();
        Node->K = Name == "nondet" ? Expr::Kind::Nondet : Expr::Kind::Call;
        Node->Name = Name;
        if (!isPunct(")")) {
          for (;;) {
            Node->Args.push_back(parseExpr());
            if (Failed)
              return Node;
            if (isPunct(",")) {
              Lex.advance();
              continue;
            }
            break;
          }
        }
        expectPunct(")");
        return Node;
      }
      Node->K = Expr::Kind::VarRef;
      Node->Name = Name;
      return Node;
    }
    fail("expected an expression, found '" + Lex.current().Text + "'");
    Node->K = Expr::Kind::IntLit;
    return Node;
  }
};

} // namespace

ParseResult frontend::parseMiniC(const std::string &Source) {
  return Parser(Source).run();
}
