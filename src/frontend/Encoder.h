//===- frontend/Encoder.h - Mini-C to CHC encoding --------------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SeaHorn-style verification-condition generator: encodes a mini-C
/// program into a CHC system whose satisfiability implies program safety.
///
/// Encoding scheme (cutpoints + summaries):
///   * every loop head becomes an unknown predicate over the function's
///     entry parameter values plus the current values of all in-scope
///     variables (so invariants can relate locals to the original inputs),
///     and every loop gets a preheader predicate `f!pre!k` holding the
///     path state that establishes the loop — single-definition and
///     non-recursive by construction, so the pre-analysis inline pass
///     (`analysis/InlinePass.h`) folds it back into the entry clause;
///   * every function f gets a call-context predicate `ctx!f(params)`
///     over-approximating the actual arguments at all call sites, and a
///     summary predicate `sum!f(params, ret)` relating inputs to the return
///     value (recursion yields non-linear recursive CHCs, as in Fig. 5);
///   * `assert(c)` emits a query clause `path -> c`; `assume(c)` constrains
///     the path; nondeterministic values become fresh variables;
///   * if/else joins use disjunctive path constraints when both branches are
///     loop- and clause-free, and a fresh join predicate otherwise.
///
//===----------------------------------------------------------------------===//

#ifndef LA_FRONTEND_ENCODER_H
#define LA_FRONTEND_ENCODER_H

#include "chc/Chc.h"
#include "frontend/MiniC.h"

namespace la::frontend {

/// Result of encoding; on failure Error holds a "line N: ..." diagnostic.
struct EncodeResult {
  bool Ok = false;
  std::string Error;
};

/// Encodes \p Prog into \p Out (which must be an empty system). The program
/// must contain a `main` function; safety of every `assert` (in any function
/// reachable from main) is encoded as query clauses.
EncodeResult encodeProgram(const Program &Prog, chc::ChcSystem &Out);

/// Convenience: parse + encode in one step.
EncodeResult encodeMiniC(const std::string &Source, chc::ChcSystem &Out);

} // namespace la::frontend

#endif // LA_FRONTEND_ENCODER_H
