//===- frontend/MiniC.h - Mini-C language AST and parser --------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small C-like language sufficient for the paper's benchmark programs
/// (Figs. 1/3/4/5 and the SV-COMP-style corpus): integer variables, nested
/// loops, if/else, recursive functions, `assert`, `assume`, nondeterministic
/// values (`nondet()` or `*`), and linear arithmetic plus `% constant`.
///
/// Grammar sketch:
///   program  := function*
///   function := "int" id "(" ["int" id ("," "int" id)*] ")" block
///   stmt     := "int" id ["=" expr] ";" | id "=" expr ";" | block | ";"
///             | "if" "(" cond ")" stmt ["else" stmt]
///             | "while" "(" cond ")" stmt
///             | "assert" "(" cond ")" ";" | "assume" "(" cond ")" ";"
///             | "return" [expr] ";"
///   cond     := or-combination of comparisons, "!", "true", "false", "*"
///   expr     := linear arithmetic over ints, vars, calls, nondet(), "% k"
///
//===----------------------------------------------------------------------===//

#ifndef LA_FRONTEND_MINIC_H
#define LA_FRONTEND_MINIC_H

#include <memory>
#include <string>
#include <vector>

namespace la::frontend {

//===----------------------------------------------------------------------===//
// AST
//===----------------------------------------------------------------------===//

struct Expr;
struct Cond;
struct Stmt;

using ExprPtr = std::unique_ptr<Expr>;
using CondPtr = std::unique_ptr<Cond>;
using StmtPtr = std::unique_ptr<Stmt>;

/// Integer-valued expression.
struct Expr {
  enum class Kind { IntLit, VarRef, Neg, Add, Sub, Mul, Mod, Call, Nondet };
  Kind K;
  int64_t Value = 0;      ///< IntLit; also the constant of Mul/Mod.
  std::string Name;       ///< VarRef / Call.
  std::vector<ExprPtr> Args; ///< operands / call arguments.
  size_t Line = 0;
};

/// Boolean condition.
struct Cond {
  enum class Kind { Cmp, And, Or, Not, BoolLit, Nondet };
  Kind K;
  /// Cmp operator: one of "==", "!=", "<", "<=", ">", ">=".
  std::string CmpOp;
  ExprPtr Lhs, Rhs;      ///< Cmp operands.
  std::vector<CondPtr> Children; ///< And/Or/Not.
  bool BoolValue = false;
  size_t Line = 0;
};

/// Statement.
struct Stmt {
  enum class Kind { Decl, Assign, Block, If, While, Assert, Assume, Return,
                    Skip };
  Kind K;
  std::string Name;        ///< Decl / Assign target.
  ExprPtr Value;           ///< Decl initialiser (may be null) / Assign rhs /
                           ///< Return value (may be null).
  CondPtr Condition;       ///< If / While / Assert / Assume.
  std::vector<StmtPtr> Body; ///< Block statements; If: Body[0]=then,
                             ///< Body[1]=else (optional); While: Body[0].
  size_t Line = 0;
};

/// One function definition.
struct Function {
  std::string Name;
  std::vector<std::string> Params;
  StmtPtr Body; ///< always a Block
  size_t Line = 0;
};

/// A whole program.
struct Program {
  std::vector<Function> Functions;

  const Function *find(const std::string &Name) const {
    for (const Function &F : Functions)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }
};

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

/// Result of parsing; on failure Error holds a "line N: ..." diagnostic.
struct ParseResult {
  bool Ok = false;
  std::string Error;
  Program Prog;
};

/// Parses mini-C source text.
ParseResult parseMiniC(const std::string &Source);

} // namespace la::frontend

#endif // LA_FRONTEND_MINIC_H
