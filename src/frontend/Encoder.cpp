//===- frontend/Encoder.cpp - Mini-C to CHC encoding ----------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Encoder.h"

#include <cassert>
#include <map>
#include <set>

using namespace la;
using namespace la::frontend;
using namespace la::chc;

namespace {

class Encoder {
public:
  Encoder(const Program &Prog, ChcSystem &Out)
      : Prog(Prog), Out(Out), TM(Out.termManager()) {}

  EncodeResult run() {
    EncodeResult Result;
    if (!Prog.find("main")) {
      Result.Error = "program has no 'main' function";
      return Result;
    }
    // Declare context and summary predicates up front so call sites can
    // reference them regardless of definition order.
    for (const Function &F : Prog.Functions) {
      if (Declared.count(F.Name)) {
        Result.Error = "line " + std::to_string(F.Line) +
                       ": duplicate function '" + F.Name + "'";
        return Result;
      }
      Declared.insert(F.Name);
      if (F.Name == "main")
        continue;
      CtxPreds[F.Name] = Out.addPredicate("ctx!" + F.Name, F.Params.size());
      SumPreds[F.Name] = Out.addPredicate("sum!" + F.Name, F.Params.size() + 1);
    }
    for (const Function &F : Prog.Functions) {
      if (!encodeFunction(F)) {
        Result.Error = ErrorMessage;
        return Result;
      }
    }
    Result.Ok = true;
    return Result;
  }

private:
  /// The symbolic state along one encoding path.
  struct EncCtx {
    std::vector<PredApp> Body;
    std::vector<const Term *> Constraints;
    std::map<std::string, const Term *> Vars;
    bool Dead = false;
  };

  bool fail(size_t Line, const std::string &Message) {
    if (ErrorMessage.empty())
      ErrorMessage = "line " + std::to_string(Line) + ": " + Message;
    return false;
  }

  const Term *freshVar(const std::string &Base) {
    return TM.mkFreshVar(CurrentFn->Name + "!" + Base);
  }

  void emitClause(const EncCtx &Ctx, std::optional<PredApp> HeadPred,
                  const Term *HeadFormula, size_t Line) {
    HornClause C;
    C.Body = Ctx.Body;
    C.Constraint = TM.mkAnd(Ctx.Constraints);
    C.HeadPred = std::move(HeadPred);
    C.HeadFormula = HeadFormula;
    C.Name = CurrentFn->Name + ":" + std::to_string(Line);
    Out.addClause(std::move(C));
  }

  /// Cutpoint argument vector: entry parameter values then current values of
  /// the given in-scope variables (declaration order).
  std::vector<const Term *>
  cutpointArgs(const EncCtx &Ctx,
               const std::vector<std::string> &ScopeVars) const {
    std::vector<const Term *> Args = EntryVals;
    for (const std::string &Name : ScopeVars)
      Args.push_back(Ctx.Vars.at(Name));
    return Args;
  }

  //===--------------------------------------------------------------------===//
  // Expressions and conditions
  //===--------------------------------------------------------------------===//

  const Term *encodeExpr(EncCtx &Ctx, const Expr &E) {
    switch (E.K) {
    case Expr::Kind::IntLit:
      return TM.mkIntConst(E.Value);
    case Expr::Kind::VarRef: {
      auto It = Ctx.Vars.find(E.Name);
      if (It == Ctx.Vars.end()) {
        fail(E.Line, "use of undeclared variable '" + E.Name + "'");
        return nullptr;
      }
      return It->second;
    }
    case Expr::Kind::Nondet:
      return freshVar("nd");
    case Expr::Kind::Neg: {
      const Term *A = encodeExpr(Ctx, *E.Args[0]);
      return A ? TM.mkNeg(A) : nullptr;
    }
    case Expr::Kind::Add:
    case Expr::Kind::Sub: {
      const Term *L = encodeExpr(Ctx, *E.Args[0]);
      const Term *R = L ? encodeExpr(Ctx, *E.Args[1]) : nullptr;
      if (!R)
        return nullptr;
      return E.K == Expr::Kind::Add ? TM.mkAdd(L, R) : TM.mkSub(L, R);
    }
    case Expr::Kind::Mul: {
      const Term *L = encodeExpr(Ctx, *E.Args[0]);
      const Term *R = L ? encodeExpr(Ctx, *E.Args[1]) : nullptr;
      if (!R)
        return nullptr;
      if (L->isIntConst())
        return TM.mkMul(L->value(), R);
      if (R->isIntConst())
        return TM.mkMul(R->value(), L);
      fail(E.Line, "non-linear multiplication is not supported");
      return nullptr;
    }
    case Expr::Kind::Mod: {
      const Term *L = encodeExpr(Ctx, *E.Args[0]);
      const Term *R = L ? encodeExpr(Ctx, *E.Args[1]) : nullptr;
      if (!R)
        return nullptr;
      if (!R->isIntConst() || R->value().signum() <= 0) {
        fail(E.Line, "'%' requires a positive constant divisor");
        return nullptr;
      }
      return TM.mkMod(L, R->value().numerator());
    }
    case Expr::Kind::Call:
      return encodeCall(Ctx, E);
    }
    assert(false && "unhandled expression kind");
    return nullptr;
  }

  const Term *encodeCall(EncCtx &Ctx, const Expr &E) {
    const Function *Callee = Prog.find(E.Name);
    if (!Callee)
      return fail(E.Line, "call to undefined function '" + E.Name + "'"),
             nullptr;
    if (Callee->Name == "main")
      return fail(E.Line, "calling 'main' is not supported"), nullptr;
    if (Callee->Params.size() != E.Args.size())
      return fail(E.Line, "wrong number of arguments to '" + E.Name + "'"),
             nullptr;
    std::vector<const Term *> Args;
    for (const ExprPtr &Arg : E.Args) {
      const Term *T = encodeExpr(Ctx, *Arg);
      if (!T)
        return nullptr;
      Args.push_back(T);
    }
    // The call context reaches the callee's entry.
    emitClause(Ctx, PredApp{CtxPreds.at(E.Name), Args}, nullptr, E.Line);
    // The return value is constrained by the summary.
    const Term *Ret = freshVar("ret!" + E.Name);
    std::vector<const Term *> SumArgs = Args;
    SumArgs.push_back(Ret);
    Ctx.Body.push_back(PredApp{SumPreds.at(E.Name), std::move(SumArgs)});
    return Ret;
  }

  const Term *encodeCond(EncCtx &Ctx, const Cond &C) {
    switch (C.K) {
    case Cond::Kind::BoolLit:
      return TM.mkBool(C.BoolValue);
    case Cond::Kind::Nondet:
      // A fresh oracle value: both the condition and its negation are
      // satisfiable, modelling `while(*)` / `if(*)`.
      return TM.mkGe(freshVar("nd"), TM.mkIntConst(1));
    case Cond::Kind::Not: {
      const Term *A = encodeCond(Ctx, *C.Children[0]);
      return A ? TM.mkNot(A) : nullptr;
    }
    case Cond::Kind::And:
    case Cond::Kind::Or: {
      const Term *L = encodeCond(Ctx, *C.Children[0]);
      const Term *R = L ? encodeCond(Ctx, *C.Children[1]) : nullptr;
      if (!R)
        return nullptr;
      return C.K == Cond::Kind::And ? TM.mkAnd(L, R) : TM.mkOr(L, R);
    }
    case Cond::Kind::Cmp: {
      const Term *L = encodeExpr(Ctx, *C.Lhs);
      const Term *R = L ? encodeExpr(Ctx, *C.Rhs) : nullptr;
      if (!R)
        return nullptr;
      if (C.CmpOp == "==")
        return TM.mkEq(L, R);
      if (C.CmpOp == "!=")
        return TM.mkNe(L, R);
      if (C.CmpOp == "<")
        return TM.mkLt(L, R);
      if (C.CmpOp == "<=")
        return TM.mkLe(L, R);
      if (C.CmpOp == ">")
        return TM.mkGt(L, R);
      assert(C.CmpOp == ">=" && "unknown comparison operator");
      return TM.mkGe(L, R);
    }
    }
    assert(false && "unhandled condition kind");
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  bool encodeStmt(EncCtx &Ctx, const Stmt &S) {
    if (Ctx.Dead)
      return true;
    switch (S.K) {
    case Stmt::Kind::Skip:
      return true;
    case Stmt::Kind::Block:
      for (const StmtPtr &Child : S.Body)
        if (!encodeStmt(Ctx, *Child))
          return false;
      return true;
    case Stmt::Kind::Decl: {
      if (Ctx.Vars.count(S.Name))
        return fail(S.Line, "redeclaration of '" + S.Name + "'");
      const Term *Init =
          S.Value ? encodeExpr(Ctx, *S.Value) : freshVar(S.Name);
      if (!Init)
        return false;
      Ctx.Vars[S.Name] = Init;
      Scope.push_back(S.Name);
      return true;
    }
    case Stmt::Kind::Assign: {
      if (!Ctx.Vars.count(S.Name))
        return fail(S.Line, "assignment to undeclared variable '" + S.Name +
                                "'");
      const Term *Value = encodeExpr(Ctx, *S.Value);
      if (!Value)
        return false;
      Ctx.Vars[S.Name] = Value;
      return true;
    }
    case Stmt::Kind::Assume: {
      const Term *C = encodeCond(Ctx, *S.Condition);
      if (!C)
        return false;
      Ctx.Constraints.push_back(C);
      return true;
    }
    case Stmt::Kind::Assert: {
      const Term *C = encodeCond(Ctx, *S.Condition);
      if (!C)
        return false;
      emitClause(Ctx, std::nullopt, C, S.Line);
      // Execution continues only when the assertion held.
      Ctx.Constraints.push_back(C);
      return true;
    }
    case Stmt::Kind::Return: {
      const Term *Value =
          S.Value ? encodeExpr(Ctx, *S.Value) : TM.mkIntConst(0);
      if (!Value)
        return false;
      if (CurrentFn->Name != "main") {
        std::vector<const Term *> Args = EntryVals;
        Args.push_back(Value);
        emitClause(Ctx, PredApp{SumPreds.at(CurrentFn->Name), std::move(Args)},
                   nullptr, S.Line);
      }
      Ctx.Dead = true;
      return true;
    }
    case Stmt::Kind::If:
      return encodeIf(Ctx, S);
    case Stmt::Kind::While:
      return encodeWhile(Ctx, S);
    }
    assert(false && "unhandled statement kind");
    return false;
  }

  bool encodeIf(EncCtx &Ctx, const Stmt &S) {
    const Term *C = encodeCond(Ctx, *S.Condition);
    if (!C)
      return false;
    size_t ClausesBefore = Out.clauses().size();

    // Variables declared inside a branch are scoped to that branch.
    std::vector<std::string> ScopeSnapshot = Scope;
    EncCtx Then = Ctx;
    Then.Constraints.push_back(C);
    if (!encodeStmt(Then, *S.Body[0]))
      return false;
    Scope = ScopeSnapshot;
    EncCtx Else = Ctx;
    Else.Constraints.push_back(TM.mkNot(C));
    if (S.Body.size() > 1 && !encodeStmt(Else, *S.Body[1]))
      return false;
    Scope = ScopeSnapshot;

    if (Then.Dead && Else.Dead) {
      Ctx.Dead = true;
      return true;
    }
    if (Then.Dead) {
      Ctx = std::move(Else);
      return true;
    }
    if (Else.Dead) {
      Ctx = std::move(Then);
      return true;
    }

    // Both branches fall through. If neither added predicate applications or
    // emitted clauses (pure straight-line code), join with a disjunctive
    // constraint; otherwise introduce a join predicate.
    bool Simple = Then.Body.size() == Ctx.Body.size() &&
                  Else.Body.size() == Ctx.Body.size() &&
                  Out.clauses().size() == ClausesBefore;
    if (Simple) {
      std::vector<const Term *> ThenEq, ElseEq;
      for (size_t I = Ctx.Constraints.size(); I < Then.Constraints.size(); ++I)
        ThenEq.push_back(Then.Constraints[I]);
      for (size_t I = Ctx.Constraints.size(); I < Else.Constraints.size(); ++I)
        ElseEq.push_back(Else.Constraints[I]);
      for (const std::string &Name : Scope) {
        const Term *TV = Then.Vars.at(Name);
        const Term *EV = Else.Vars.at(Name);
        if (TV == EV) {
          Ctx.Vars[Name] = TV;
          continue;
        }
        const Term *J = freshVar(Name + "!phi");
        ThenEq.push_back(TM.mkEq(J, TV));
        ElseEq.push_back(TM.mkEq(J, EV));
        Ctx.Vars[Name] = J;
      }
      Ctx.Constraints.push_back(
          TM.mkOr(TM.mkAnd(std::move(ThenEq)), TM.mkAnd(std::move(ElseEq))));
      return true;
    }

    const Predicate *J = Out.addPredicate(
        CurrentFn->Name + "!join!" + std::to_string(JoinCounter++),
        EntryVals.size() + Scope.size());
    emitClause(Then, PredApp{J, cutpointArgs(Then, Scope)}, nullptr, S.Line);
    emitClause(Else, PredApp{J, cutpointArgs(Else, Scope)}, nullptr, S.Line);
    resetAtCutpoint(Ctx, J, "join", Scope);
    return true;
  }

  bool encodeWhile(EncCtx &Ctx, const Stmt &S) {
    // Variables declared inside the body are scoped to one iteration; the
    // cutpoint carries only the variables alive at the loop head.
    std::vector<std::string> ScopeSnapshot = Scope;
    // Preheader cut point: the path establishing the loop gets its own
    // predicate whose only definition is that path and whose only use is
    // the loop-entry clause below (one predicate per basic block, as in
    // SeaHorn-style VC generation). It is single-definition, non-recursive
    // and never in a query body, so the analysis pipeline's inline pass
    // collapses it back into the entry clause before any learning runs.
    const Predicate *Pre = Out.addPredicate(
        CurrentFn->Name + "!pre!" + std::to_string(LoopCounter),
        EntryVals.size() + ScopeSnapshot.size());
    emitClause(Ctx, PredApp{Pre, cutpointArgs(Ctx, ScopeSnapshot)}, nullptr,
               S.Line);
    EncCtx PreCtx;
    resetAtCutpoint(PreCtx, Pre, "pre" + std::to_string(LoopCounter),
                    ScopeSnapshot, /*StableNames=*/true);

    const Predicate *L = Out.addPredicate(
        CurrentFn->Name + "!loop!" + std::to_string(LoopCounter++),
        EntryVals.size() + ScopeSnapshot.size());
    // Entry: the preheader state establishes the invariant.
    emitClause(PreCtx, PredApp{L, cutpointArgs(PreCtx, ScopeSnapshot)},
               nullptr, S.Line);

    // Body: from an arbitrary invariant state satisfying the condition.
    EncCtx BodyCtx;
    resetAtCutpoint(BodyCtx, L, "it", ScopeSnapshot);
    const Term *C = encodeCond(BodyCtx, *S.Condition);
    if (!C)
      return false;
    BodyCtx.Constraints.push_back(C);
    if (!encodeStmt(BodyCtx, *S.Body[0]))
      return false;
    if (!BodyCtx.Dead)
      emitClause(BodyCtx, PredApp{L, cutpointArgs(BodyCtx, ScopeSnapshot)},
                 nullptr, S.Line);

    // Exit: an arbitrary invariant state violating the condition.
    EncCtx ExitCtx;
    resetAtCutpoint(ExitCtx, L, "ex", ScopeSnapshot);
    const Term *CExit = encodeCond(ExitCtx, *S.Condition);
    if (!CExit)
      return false;
    ExitCtx.Constraints.push_back(TM.mkNot(CExit));
    Ctx = std::move(ExitCtx);
    return true;
  }

  /// Starts a fresh path at a cutpoint predicate: fresh variables for every
  /// in-scope variable, the predicate application as the only body atom.
  /// Also restores the scope to the cutpoint's variable set.
  void resetAtCutpoint(EncCtx &Ctx, const Predicate *P, const std::string &Tag,
                       const std::vector<std::string> &ScopeVars,
                       bool StableNames = false) {
    Ctx.Body.clear();
    Ctx.Constraints.clear();
    Ctx.Vars.clear();
    Ctx.Dead = false;
    std::vector<const Term *> Args = EntryVals;
    for (const std::string &Name : ScopeVars) {
      // Stable names bypass the fresh counter: the preheader predicate is
      // folded away by the inline pass, and consuming counter values here
      // would renumber every later `!it`/`!ex` variable, perturbing the
      // post-collapse system for no reason (Tag is unique per cutpoint).
      const Term *V = StableNames
                          ? TM.mkVar(CurrentFn->Name + "!" + Name + "!" + Tag)
                          : freshVar(Name + "!" + Tag);
      Ctx.Vars[Name] = V;
      Args.push_back(V);
    }
    Ctx.Body.push_back(PredApp{P, std::move(Args)});
    Scope = ScopeVars;
  }

  bool encodeFunction(const Function &F) {
    CurrentFn = &F;
    Scope.clear();
    EntryVals.clear();
    LoopCounter = 0;
    JoinCounter = 0;

    EncCtx Ctx;
    for (const std::string &Param : F.Params) {
      if (Ctx.Vars.count(Param))
        return fail(F.Line, "duplicate parameter '" + Param + "'");
      const Term *P0 = freshVar("arg!" + Param);
      EntryVals.push_back(P0);
      Ctx.Vars[Param] = P0;
      Scope.push_back(Param);
    }
    if (F.Name != "main")
      Ctx.Body.push_back(PredApp{CtxPreds.at(F.Name), EntryVals});

    if (!encodeStmt(Ctx, *F.Body))
      return false;
    // Implicit `return 0` at the end of a non-main function.
    if (!Ctx.Dead && F.Name != "main") {
      std::vector<const Term *> Args = EntryVals;
      Args.push_back(TM.mkIntConst(0));
      emitClause(Ctx, PredApp{SumPreds.at(F.Name), std::move(Args)}, nullptr,
                 F.Line);
    }
    return true;
  }

  const Program &Prog;
  ChcSystem &Out;
  TermManager &TM;
  std::string ErrorMessage;
  std::set<std::string> Declared;
  std::map<std::string, const Predicate *> CtxPreds; ///< call-context preds
  std::map<std::string, const Predicate *> SumPreds; ///< summary predicates
  const Function *CurrentFn = nullptr;
  std::vector<std::string> Scope;        ///< in-scope variables, in order
  std::vector<const Term *> EntryVals;   ///< entry values of the parameters
  size_t LoopCounter = 0;
  size_t JoinCounter = 0;
};

} // namespace

EncodeResult frontend::encodeProgram(const Program &Prog, ChcSystem &Out) {
  return Encoder(Prog, Out).run();
}

EncodeResult frontend::encodeMiniC(const std::string &Source, ChcSystem &Out) {
  ParseResult P = parseMiniC(Source);
  if (!P.Ok) {
    EncodeResult R;
    R.Error = P.Error;
    return R;
  }
  return encodeProgram(P.Prog, Out);
}
