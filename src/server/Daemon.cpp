//===- server/Daemon.cpp - Line-protocol solver daemon --------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "server/Daemon.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <unordered_map>

using namespace la;
using namespace la::server;

namespace {

/// Serialises response lines: worker threads push completions while the
/// main thread answers `metrics` and rejections.
class ResponseWriter {
public:
  explicit ResponseWriter(std::ostream &Out) : Out(Out) {}

  void line(const std::string &S) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Out << S << '\n';
    Out.flush();
  }

private:
  std::mutex Mutex;
  std::ostream &Out;
};

/// Renders one completed job as a response line.
std::string renderCompletion(const std::string &ClientId,
                             const JobResult &R) {
  if (R.ExpiredInQueue)
    return "expired " + ClientId;
  if (!R.Result.Ok)
    return "error " + ClientId + " " + R.Result.Error;
  char Buf[256];
  snprintf(Buf, sizeof(Buf),
           " engine=%s format=%s seconds=%.3f queued=%.3f cached=%d "
           "disk=%d validated=%d",
           R.Result.SolverName.empty() ? "?" : R.Result.SolverName.c_str(),
           solver::toString(R.Result.Format), R.RunSeconds, R.QueueSeconds,
           R.CacheHit || R.Result.FromDiskCache ? 1 : 0,
           R.Result.FromDiskCache ? 1 : 0, R.Result.ModelValidated ? 1 : 0);
  std::string Line =
      "ok " + ClientId + " " + chc::toString(R.Result.Status) + Buf;
  if (!R.Result.Stages.empty()) {
    snprintf(Buf, sizeof(Buf), " stages=%zu escalated=%d",
             R.Result.Stages.size(), R.Result.Escalated ? 1 : 0);
    Line += Buf;
  }
  return Line;
}

/// `key=value` request options; unknown keys are an error (a typo like
/// `budjet=5` silently solving with the default budget would be worse).
/// Option values land in the builder (cross-field invariants are checked
/// once by `build()` after the whole line is read), except `format=` which
/// lives on the request itself.
bool applyOption(const std::string &Word, solver::SolveOptionsBuilder &Builder,
                 solver::SolveRequest &Request, std::string &Error) {
  size_t Eq = Word.find('=');
  if (Eq == std::string::npos) {
    Error = "malformed option '" + Word + "' (want key=value)";
    return false;
  }
  std::string Key = Word.substr(0, Eq), Value = Word.substr(Eq + 1);
  if (Key == "engine") {
    Builder.engine(solver::EngineId(Value));
    return true;
  }
  if (Key == "budget") {
    char *End = nullptr;
    double Seconds = std::strtod(Value.c_str(), &End);
    if (End == Value.c_str() || *End != '\0' || Seconds <= 0) {
      Error = "bad budget '" + Value + "'";
      return false;
    }
    Builder.wallSeconds(Seconds);
    return true;
  }
  if (Key == "format") {
    std::optional<solver::SourceFormat> F = solver::parseSourceFormat(Value);
    if (!F) {
      Error = "unknown format '" + Value + "'";
      return false;
    }
    Request.Format = *F;
    return true;
  }
  if (Key == "isolation") {
    std::optional<solver::Isolation> I = solver::parseIsolation(Value);
    if (!I) {
      Error = "unknown isolation '" + Value + "' (want thread or process)";
      return false;
    }
    Builder.isolation(*I);
    return true;
  }
  if (Key == "schedule") {
    std::optional<solver::SchedulePolicy> P =
        solver::parseSchedulePolicy(Value);
    if (!P) {
      Error = "unknown schedule '" + Value +
              "' (want single, race, staged or auto)";
      return false;
    }
    Builder.schedule(*P);
    return true;
  }
  Error = "unknown option '" + Key + "'";
  return false;
}

} // namespace

size_t server::runDaemon(std::istream &In, std::ostream &Out,
                         const DaemonOptions &Opts) {
  ResponseWriter Writer(Out);

  // Service job ids -> client-chosen tokens, for rendering completions.
  std::mutex IdMutex;
  std::unordered_map<uint64_t, std::string> ClientIds;

  ServiceOptions SO = Opts.Service;
  SO.DefaultLimits.WallSeconds = Opts.DefaultBudgetSeconds;
  SO.OnComplete = [&](const JobResult &R) {
    std::string ClientId;
    {
      std::lock_guard<std::mutex> Lock(IdMutex);
      auto It = ClientIds.find(R.Id);
      if (It == ClientIds.end())
        return; // Claimed by the submit path (fast completion race).
      ClientId = It->second;
      ClientIds.erase(It);
    }
    Writer.line(renderCompletion(ClientId, R));
  };
  SolverService Service(SO);

  size_t Accepted = 0;
  std::string Line;
  while (std::getline(In, Line)) {
    std::istringstream Words(Line);
    std::string Command;
    if (!(Words >> Command) || Command[0] == '#')
      continue; // Blank lines and comments.

    if (Command == "shutdown")
      break;

    if (Command == "metrics") {
      Writer.line("metrics " + Service.metrics().json());
      continue;
    }

    if (Command == "cancel") {
      std::string ClientId;
      if (!(Words >> ClientId)) {
        Writer.line("error ? cancel needs an id");
        continue;
      }
      // Ids are client tokens; find the matching live service id.
      uint64_t ServiceId = 0;
      {
        std::lock_guard<std::mutex> Lock(IdMutex);
        for (const auto &[Sid, Cid] : ClientIds)
          if (Cid == ClientId) {
            ServiceId = Sid;
            break;
          }
      }
      if (ServiceId == 0 || !Service.cancel(ServiceId))
        Writer.line("error " + ClientId + " not a live job");
      continue;
    }

    if (Command == "solve" || Command == "solve-inline") {
      std::string ClientId;
      if (!(Words >> ClientId)) {
        Writer.line("error ? " + Command + " needs an id");
        continue;
      }
      solver::SolveRequest Request;
      solver::SolveOptions Defaults;
      Defaults.Isolate = Opts.DefaultIsolation;
      Defaults.Schedule.Policy = Opts.DefaultSchedule;
      Defaults.Schedule.Selector = Opts.DefaultSelector;
      solver::SolveOptionsBuilder Builder(std::move(Defaults));
      std::string OptionError;
      bool OptionsOk = true;
      std::string Word;
      if (Command == "solve") {
        if (!(Words >> Request.Path)) {
          Writer.line("error " + ClientId + " solve needs a path");
          continue;
        }
      }
      while (Words >> Word)
        if (!applyOption(Word, Builder, Request, OptionError)) {
          OptionsOk = false;
          break;
        }
      if (Command == "solve-inline") {
        // Source lines follow, terminated by a lone `.` line. Read them
        // even on an option error so the stream stays in sync.
        std::string Source, SourceLine;
        while (std::getline(In, SourceLine) && SourceLine != ".") {
          Source += SourceLine;
          Source += '\n';
        }
        Request.Source = std::move(Source);
      }
      if (OptionsOk) {
        // Cross-field validation (e.g. engine= vs a portfolio schedule=)
        // happens once the whole option list is known.
        solver::SolveOptionsBuilder::Validated V = Builder.build();
        if (V.Ok)
          Request.Options = std::move(V.Options);
        else {
          OptionsOk = false;
          OptionError = V.Error;
        }
      }
      if (!OptionsOk) {
        Writer.line("error " + ClientId + " " + OptionError);
        continue;
      }

      Ticket T = Service.submit(std::move(Request));
      if (T.Status == SubmitStatus::QueueFull) {
        char Buf[64];
        snprintf(Buf, sizeof(Buf), " retry-after=%.1f", T.RetryAfterSeconds);
        Writer.line("rejected " + ClientId + Buf);
        continue;
      }
      if (T.Status == SubmitStatus::ShuttingDown) {
        Writer.line("error " + ClientId + " shutting down");
        continue;
      }
      ++Accepted;
      // The job may already be done (cache hit, or a worker beat us
      // here); whoever finds the client id in the map renders the
      // response — the map entry is claimed exactly once.
      {
        std::lock_guard<std::mutex> Lock(IdMutex);
        ClientIds[T.Id] = ClientId;
      }
      if (T.Result.wait_for(std::chrono::seconds(0)) ==
          std::future_status::ready) {
        bool Claimed = false;
        {
          std::lock_guard<std::mutex> Lock(IdMutex);
          Claimed = ClientIds.erase(T.Id) > 0;
        }
        if (Claimed)
          Writer.line(renderCompletion(ClientId, T.Result.get()));
      }
      continue;
    }

    Writer.line("error ? unknown command '" + Command + "'");
  }

  Service.shutdown(/*Drain=*/true);
  Writer.line("bye");
  return Accepted;
}
