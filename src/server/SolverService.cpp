//===- server/SolverService.cpp - Solver-as-a-service scheduler -----------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "server/SolverService.h"

#include "support/FileCache.h"

#include <algorithm>
#include <cstdio>

using namespace la;
using namespace la::server;

namespace {
using Clock = std::chrono::steady_clock;

double secondsBetween(Clock::time_point From, Clock::time_point To) {
  return std::chrono::duration<double>(To - From).count();
}
} // namespace

//===----------------------------------------------------------------------===//
// Metrics rendering
//===----------------------------------------------------------------------===//

std::string ServiceMetrics::report() const {
  char Buf[512];
  std::string Out;
  snprintf(Buf, sizeof(Buf),
           "uptime %.1fs  workers %zu  queue %zu/%zu  in-flight %zu\n",
           UptimeSeconds, Workers, QueueDepth, QueueCapacity, InFlight);
  Out += Buf;
  snprintf(Buf, sizeof(Buf),
           "submitted %llu  rejected %llu  completed %llu  solved/s %.2f\n",
           static_cast<unsigned long long>(Submitted),
           static_cast<unsigned long long>(Rejected),
           static_cast<unsigned long long>(Completed), SolvedPerSecond);
  Out += Buf;
  snprintf(Buf, sizeof(Buf),
           "verdicts: sat %llu  unsat %llu  unknown %llu  errors %llu  "
           "expired-in-queue %llu\n",
           static_cast<unsigned long long>(SolvedSat),
           static_cast<unsigned long long>(SolvedUnsat),
           static_cast<unsigned long long>(Unknown),
           static_cast<unsigned long long>(Errors),
           static_cast<unsigned long long>(ExpiredInQueue));
  Out += Buf;
  snprintf(Buf, sizeof(Buf), "schedule: stage-hits %llu  escalations %llu\n",
           static_cast<unsigned long long>(StageHits),
           static_cast<unsigned long long>(Escalations));
  Out += Buf;
  snprintf(Buf, sizeof(Buf), "cache: hits %llu  misses %llu\n",
           static_cast<unsigned long long>(CacheHits),
           static_cast<unsigned long long>(CacheMisses));
  Out += Buf;
  snprintf(Buf, sizeof(Buf),
           "disk cache: served %llu  hits %llu  misses %llu  stores %llu  "
           "evictions %llu  corrupt %llu\n",
           static_cast<unsigned long long>(DiskCacheServed),
           static_cast<unsigned long long>(DiskHits),
           static_cast<unsigned long long>(DiskMisses),
           static_cast<unsigned long long>(DiskStores),
           static_cast<unsigned long long>(DiskEvictions),
           static_cast<unsigned long long>(DiskCorrupt));
  Out += Buf;
  Out += "engine wins:";
  if (EngineWins.empty())
    Out += " (none)";
  for (const auto &[Engine, Wins] : EngineWins) {
    snprintf(Buf, sizeof(Buf), " %s %llu", Engine.c_str(),
             static_cast<unsigned long long>(Wins));
    Out += Buf;
  }
  Out += '\n';
  return Out;
}

std::string ServiceMetrics::json() const {
  char Buf[1024];
  snprintf(Buf, sizeof(Buf),
           "{\"uptime_seconds\":%.3f,\"workers\":%zu,\"queue_depth\":%zu,"
           "\"queue_capacity\":%zu,\"in_flight\":%zu,\"submitted\":%llu,"
           "\"rejected\":%llu,\"completed\":%llu,\"solved_per_second\":%.3f,"
           "\"sat\":%llu,\"unsat\":%llu,\"unknown\":%llu,\"errors\":%llu,"
           "\"expired_in_queue\":%llu,\"stage_hits\":%llu,"
           "\"escalations\":%llu,\"cache_hits\":%llu,"
           "\"cache_misses\":%llu,\"disk_cache_served\":%llu,"
           "\"disk_hits\":%llu,\"disk_misses\":%llu,\"disk_stores\":%llu,"
           "\"disk_evictions\":%llu,\"disk_corrupt\":%llu,\"engine_wins\":{",
           UptimeSeconds, Workers, QueueDepth, QueueCapacity, InFlight,
           static_cast<unsigned long long>(Submitted),
           static_cast<unsigned long long>(Rejected),
           static_cast<unsigned long long>(Completed), SolvedPerSecond,
           static_cast<unsigned long long>(SolvedSat),
           static_cast<unsigned long long>(SolvedUnsat),
           static_cast<unsigned long long>(Unknown),
           static_cast<unsigned long long>(Errors),
           static_cast<unsigned long long>(ExpiredInQueue),
           static_cast<unsigned long long>(StageHits),
           static_cast<unsigned long long>(Escalations),
           static_cast<unsigned long long>(CacheHits),
           static_cast<unsigned long long>(CacheMisses),
           static_cast<unsigned long long>(DiskCacheServed),
           static_cast<unsigned long long>(DiskHits),
           static_cast<unsigned long long>(DiskMisses),
           static_cast<unsigned long long>(DiskStores),
           static_cast<unsigned long long>(DiskEvictions),
           static_cast<unsigned long long>(DiskCorrupt));
  std::string Out = Buf;
  bool First = true;
  for (const auto &[Engine, Wins] : EngineWins) {
    snprintf(Buf, sizeof(Buf), "%s\"%s\":%llu", First ? "" : ",",
             Engine.c_str(), static_cast<unsigned long long>(Wins));
    Out += Buf;
    First = false;
  }
  Out += "}}";
  return Out;
}

//===----------------------------------------------------------------------===//
// SolverService
//===----------------------------------------------------------------------===//

/// One queued unit of work. The service's per-job cancellation token is
/// installed into the request so `cancel(id)` and non-drain shutdown reach
/// the engine's cooperative polls.
struct SolverService::Job {
  uint64_t Id = 0;
  solver::SolveRequest Request;
  std::promise<JobResult> Promise;
  std::shared_ptr<CancellationToken> Cancel;
  Clock::time_point Enqueued;
  bool HasDeadline = false;
  Clock::time_point Deadline;
  std::string CacheKey;
  bool Running = false;
};

SolverService::SolverService(ServiceOptions O) : Opts(std::move(O)) {
  if (Opts.Workers == 0)
    Opts.Workers = 1;
  if (Opts.QueueCapacity == 0)
    Opts.QueueCapacity = 1;
  if (!(Opts.RetryFloorSeconds > 0))
    Opts.RetryFloorSeconds = 0.1;
  Started = Clock::now();
  Workers.reserve(Opts.Workers);
  for (size_t I = 0; I < Opts.Workers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

SolverService::~SolverService() { shutdown(true); }

std::string
SolverService::cacheKey(const solver::SolveRequest &Request) const {
  // Every field that can change the verdict takes part. `\x1f` (unit
  // separator) cannot occur in paths or engine ids we accept.
  std::string Key = Request.Path.empty() ? "s:" + Request.Source
                                         : "p:" + Request.Path;
  Key += '\x1f';
  Key += solver::toString(Request.Format);
  Key += '\x1f';
  Key += Request.Options.Engine.str();
  Key += '\x1f';
  // The schedule policy decides which engines run, so it is part of what a
  // cached verdict answers (top-k width changes the staged ladder).
  Key += solver::toString(Request.Options.Schedule.Policy);
  char Buf[96];
  snprintf(Buf, sizeof(Buf), "\x1f%zu\x1f%.6f\x1f%zu\x1f%d",
           Request.Options.Schedule.TopK,
           Request.Options.Limits.WallSeconds,
           Request.Options.Limits.MaxIterations,
           Request.Options.ValidateModel ? 1 : 0);
  Key += Buf;
  return Key;
}

bool SolverService::cacheLookup(const std::string &Key,
                                solver::SolveResult &Out) {
  auto It = CacheMap.find(Key);
  if (It == CacheMap.end())
    return false;
  CacheList.splice(CacheList.begin(), CacheList, It->second);
  Out = It->second->second;
  return true;
}

void SolverService::cacheStore(const std::string &Key,
                               const solver::SolveResult &R) {
  if (Opts.CacheCapacity == 0)
    return;
  auto It = CacheMap.find(Key);
  if (It != CacheMap.end()) {
    It->second->second = R;
    CacheList.splice(CacheList.begin(), CacheList, It->second);
    return;
  }
  CacheList.emplace_front(Key, R);
  CacheMap[Key] = CacheList.begin();
  while (CacheList.size() > Opts.CacheCapacity) {
    CacheMap.erase(CacheList.back().first);
    CacheList.pop_back();
  }
}

void SolverService::noteCompleted(const JobResult &R,
                                  const std::string &Engine) {
  ++Completed;
  if (R.ExpiredInQueue)
    ++Expired;
  if (!R.Result.Ok) {
    ++ErrorCount;
    return;
  }
  switch (R.Result.Status) {
  case chc::ChcResult::Sat:
    ++SolvedSat;
    break;
  case chc::ChcResult::Unsat:
    ++SolvedUnsat;
    break;
  case chc::ChcResult::Unknown:
    ++UnknownCount;
    break;
  }
  if (R.Result.Status != chc::ChcResult::Unknown && !Engine.empty())
    ++EngineWins[Engine];
  // Staged-schedule accounting: a definitive verdict before the escalation
  // race is a stage hit; entering the race at all is an escalation. Cache
  // hits replay the stored stage records and are deliberately not counted
  // again — these two track actual engine work.
  if (!R.CacheHit && !R.Result.FromDiskCache && !R.Result.Stages.empty()) {
    if (R.Result.Escalated)
      ++Escalations;
    else if (R.Result.Status != chc::ChcResult::Unknown)
      ++StageHits;
  }
}

Ticket SolverService::submit(solver::SolveRequest Request) {
  // The request's budget wins field-by-field over the service default.
  Request.Options.Limits =
      Request.Options.Limits.resolvedOver(Opts.DefaultLimits);
  // Every job shares the service's persistent cache unless the request
  // brought its own.
  if (Opts.DiskCache && !Request.Options.DiskCache)
    Request.Options.DiskCache = Opts.DiskCache;

  Ticket T;
  std::function<void(const JobResult &)> Callback;
  JobResult CachedResult;
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    if (!AcceptingWork) {
      ++Rejected;
      T.Status = SubmitStatus::ShuttingDown;
      return T;
    }

    std::string Key = cacheKey(Request);
    solver::SolveResult Hit;
    if (Opts.CacheCapacity > 0 && cacheLookup(Key, Hit)) {
      ++Submitted;
      ++CacheHits;
      T.Id = NextId++;
      JobResult R;
      R.Id = T.Id;
      R.Result = std::move(Hit);
      R.CacheHit = true;
      noteCompleted(R, "");
      std::promise<JobResult> P;
      T.Result = P.get_future();
      CachedResult = R;
      P.set_value(std::move(R));
      Callback = Opts.OnComplete;
    } else {
      if (Queue.size() >= Opts.QueueCapacity) {
        ++Rejected;
        T.Status = SubmitStatus::QueueFull;
        // Depth times the recent mean solve time, spread over the pool.
        // Before the EWMA has a sample (cold start) the estimate has no
        // basis; the configurable floor keeps it nonzero either way so
        // clients never busy-spin against a full queue.
        double Mean = MeanRunSeconds > 0 ? MeanRunSeconds : 0;
        T.RetryAfterSeconds =
            std::max(Opts.RetryFloorSeconds,
                     Mean * static_cast<double>(Queue.size() + 1) /
                         static_cast<double>(Opts.Workers));
        return T;
      }
      ++Submitted;
      if (Opts.CacheCapacity > 0)
        ++CacheMisses;
      auto J = std::make_shared<Job>();
      J->Id = NextId++;
      J->Request = std::move(Request);
      J->Cancel = std::make_shared<CancellationToken>();
      J->Request.Options.Cancel = J->Cancel;
      J->Enqueued = Clock::now();
      if (J->Request.Options.Limits.WallSeconds > 0) {
        J->HasDeadline = true;
        J->Deadline =
            J->Enqueued + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(
                                  J->Request.Options.Limits.WallSeconds));
      }
      J->CacheKey = std::move(Key);
      T.Id = J->Id;
      T.Result = J->Promise.get_future();
      Live[J->Id] = J;
      Queue.push_back(std::move(J));
      WorkAvailable.notify_one();
      return T;
    }
  }
  // Cache hit: the future is already satisfied; fire the completion
  // callback from the submitting thread, outside the lock.
  if (Callback)
    Callback(CachedResult);
  return T;
}

bool SolverService::cancel(uint64_t Id) {
  std::shared_ptr<Job> Queued;
  std::function<void(const JobResult &)> Callback;
  JobResult Done;
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    auto It = Live.find(Id);
    if (It == Live.end())
      return false;
    std::shared_ptr<Job> J = It->second;
    J->Cancel->cancel();
    if (J->Running)
      return true; // The engine stops at its next poll.
    // Queued: complete it right here instead of waiting for a worker.
    Queue.erase(std::remove(Queue.begin(), Queue.end(), J), Queue.end());
    Live.erase(It);
    Done.Id = J->Id;
    Done.QueueSeconds = secondsBetween(J->Enqueued, Clock::now());
    Done.Result.Error = "cancelled";
    noteCompleted(Done, "");
    Queued = std::move(J);
    Callback = Opts.OnComplete;
  }
  JobResult Copy = Done;
  Queued->Promise.set_value(std::move(Done));
  if (Callback)
    Callback(Copy);
  return true;
}

void SolverService::shutdown(bool Drain) {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    AcceptingWork = false;
    if (!Drain) {
      CancelQueued = true;
      for (auto &[Id, J] : Live)
        J->Cancel->cancel();
    }
    WorkAvailable.notify_all();
  }
  for (std::thread &W : Workers)
    if (W.joinable())
      W.join();
  Workers.clear();
}

void SolverService::workerLoop() {
  std::unique_lock<std::mutex> Lock(Mutex);
  while (true) {
    WorkAvailable.wait(Lock,
                       [&] { return !Queue.empty() || !AcceptingWork; });
    if (Queue.empty()) {
      if (!AcceptingWork)
        return;
      continue;
    }
    std::shared_ptr<Job> J = Queue.front();
    Queue.pop_front();

    Clock::time_point Now = Clock::now();
    JobResult R;
    R.Id = J->Id;
    R.QueueSeconds = secondsBetween(J->Enqueued, Now);

    const bool Cancelled = CancelQueued || J->Cancel->cancelled();
    const bool ExpiredNow = !Cancelled && J->HasDeadline && Now >= J->Deadline;
    if (Cancelled || ExpiredNow) {
      Live.erase(J->Id);
      R.ExpiredInQueue = ExpiredNow;
      R.Result.Error = ExpiredNow ? "budget expired in queue" : "cancelled";
      noteCompleted(R, "");
      Lock.unlock();
      JobResult Copy = R;
      J->Promise.set_value(std::move(R));
      if (Opts.OnComplete)
        Opts.OnComplete(Copy);
      Lock.lock();
      continue;
    }

    ++InFlight;
    J->Running = true;
    // The wall budget covers the whole stay in the service: hand the
    // engine only what is left after the queue wait.
    if (J->HasDeadline)
      J->Request.Options.Limits.WallSeconds =
          std::max(0.01, secondsBetween(Now, J->Deadline));
    Lock.unlock();

    solver::SolveResult S = solver::solve(J->Request);

    Lock.lock();
    --InFlight;
    Live.erase(J->Id);
    R.RunSeconds = secondsBetween(Now, Clock::now());
    R.Result = std::move(S);
    if (R.Result.FromDiskCache)
      ++DiskCacheServed;
    if (R.Result.Ok && R.Result.Status != chc::ChcResult::Unknown)
      cacheStore(J->CacheKey, R.Result);
    MeanRunSeconds = MeanRunSeconds <= 0
                         ? R.RunSeconds
                         : 0.7 * MeanRunSeconds + 0.3 * R.RunSeconds;
    noteCompleted(R, J->Request.Options.Engine.str());
    Lock.unlock();

    JobResult Copy = R;
    J->Promise.set_value(std::move(R));
    if (Opts.OnComplete)
      Opts.OnComplete(Copy);
    Lock.lock();
  }
}

ServiceMetrics SolverService::metrics() const {
  std::unique_lock<std::mutex> Lock(Mutex);
  ServiceMetrics M;
  M.Workers = Opts.Workers;
  M.QueueDepth = Queue.size();
  M.InFlight = InFlight;
  M.QueueCapacity = Opts.QueueCapacity;
  M.Submitted = Submitted;
  M.Rejected = Rejected;
  M.Completed = Completed;
  M.SolvedSat = SolvedSat;
  M.SolvedUnsat = SolvedUnsat;
  M.Unknown = UnknownCount;
  M.Errors = ErrorCount;
  M.ExpiredInQueue = Expired;
  M.StageHits = StageHits;
  M.Escalations = Escalations;
  M.CacheHits = CacheHits;
  M.CacheMisses = CacheMisses;
  M.DiskCacheServed = DiskCacheServed;
  if (Opts.DiskCache) {
    FileCache::Stats DS = Opts.DiskCache->stats();
    M.DiskHits = DS.Hits;
    M.DiskMisses = DS.Misses;
    M.DiskStores = DS.Stores;
    M.DiskEvictions = DS.Evictions;
    M.DiskCorrupt = DS.CorruptDropped;
  }
  M.UptimeSeconds = secondsBetween(Started, Clock::now());
  M.SolvedPerSecond =
      M.UptimeSeconds > 0
          ? static_cast<double>(SolvedSat + SolvedUnsat) / M.UptimeSeconds
          : 0;
  M.EngineWins.assign(EngineWins.begin(), EngineWins.end());
  std::sort(M.EngineWins.begin(), M.EngineWins.end());
  return M;
}
