//===- server/SolverService.h - Solver-as-a-service scheduler ---*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-process solver service: a thread pool draining a bounded job
/// queue of `SolveRequest`s through the façade's `solve()` entry point.
///
/// Contract:
///
///   * `submit` is non-blocking. A full queue is *rejected* with a
///     retry-after estimate (backpressure travels to the client instead of
///     unbounded buffering inside the server);
///   * every job carries its own `Budget`. The wall-clock budget covers the
///     whole stay in the service — a job whose budget expires while still
///     *queued* is completed as expired without ever running;
///   * definitive results (sat/unsat) are memoised in a bounded LRU cache
///     keyed on the full request (source, format, engine, limits), so
///     repeated identical requests — common when a fleet of CI jobs asks
///     about the same benchmark — are answered without a solve;
///   * `shutdown(Drain)` stops intake, then either finishes the queued work
///     or cancels it cooperatively; the destructor drains.
///
/// The service is deliberately transport-free so tests can drive it
/// directly; `server/Daemon.h` wraps it in a line protocol over iostreams.
///
//===----------------------------------------------------------------------===//

#ifndef LA_SERVER_SOLVERSERVICE_H
#define LA_SERVER_SOLVERSERVICE_H

#include "solver/SolveFacade.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace la::server {

/// Verdict of a `submit` call.
enum class SubmitStatus {
  Accepted,     ///< Queued (or answered from cache); the future is live.
  QueueFull,    ///< Backpressure: retry after `RetryAfterSeconds`.
  ShuttingDown, ///< The service no longer accepts work.
};

/// Final outcome of one accepted job.
struct JobResult {
  uint64_t Id = 0;
  solver::SolveResult Result;
  /// The wall budget ran out while the job was still queued; `Result` is
  /// an error ("budget expired in queue") and no engine ever ran.
  bool ExpiredInQueue = false;
  /// Answered from the memo cache without running an engine.
  bool CacheHit = false;
  double QueueSeconds = 0; ///< Time spent waiting for a worker.
  double RunSeconds = 0;   ///< Time inside the façade (0 on cache hit).
};

/// What `submit` hands back immediately.
struct Ticket {
  SubmitStatus Status = SubmitStatus::Accepted;
  uint64_t Id = 0; ///< Service-assigned job id (0 when rejected).
  /// Suggested client back-off when `Status == QueueFull`: queue depth
  /// times the recent mean solve time (EWMA), never below
  /// `ServiceOptions::RetryFloorSeconds` — in particular it is nonzero
  /// even before the EWMA has its first sample (cold start).
  double RetryAfterSeconds = 0;
  /// The job's outcome; valid only when `Status == Accepted`.
  std::future<JobResult> Result;
};

/// Point-in-time counters, all since construction unless noted.
struct ServiceMetrics {
  size_t Workers = 0;
  size_t QueueDepth = 0;    ///< Jobs waiting right now.
  size_t InFlight = 0;      ///< Jobs running right now.
  size_t QueueCapacity = 0;
  uint64_t Submitted = 0;   ///< Accepted jobs (cache hits included).
  uint64_t Rejected = 0;    ///< QueueFull + ShuttingDown rejections.
  uint64_t Completed = 0;   ///< Futures fulfilled, any outcome.
  uint64_t SolvedSat = 0;
  uint64_t SolvedUnsat = 0;
  uint64_t Unknown = 0;     ///< Completed without a definitive verdict.
  uint64_t Errors = 0;      ///< Completed with `!Result.Ok`.
  uint64_t ExpiredInQueue = 0;
  /// Staged-schedule jobs answered before the escalation race (the probe
  /// or the top-k stage hit).
  uint64_t StageHits = 0;
  /// Staged-schedule jobs that fell through to the full escalation race.
  uint64_t Escalations = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0; ///< Lookups that went on to run an engine.
  /// Jobs whose whole result came from the persistent disk cache
  /// (`ServiceOptions::DiskCache`) without running an engine.
  uint64_t DiskCacheServed = 0;
  /// Snapshot of the shared `FileCache` counters (all zero when the
  /// service runs without a disk cache). Hits/misses count both tiers —
  /// whole-request verdicts and clause-check records.
  uint64_t DiskHits = 0;
  uint64_t DiskMisses = 0;
  uint64_t DiskStores = 0;
  uint64_t DiskEvictions = 0;
  uint64_t DiskCorrupt = 0;
  /// Definitive verdicts per second of service uptime.
  double SolvedPerSecond = 0;
  double UptimeSeconds = 0;
  /// Definitive-verdict counts per engine id ("la", "portfolio", ...).
  std::vector<std::pair<std::string, uint64_t>> EngineWins;

  /// Multi-line human-readable report (the daemon's `metrics` reply).
  std::string report() const;
  /// Single-line JSON object with the same fields.
  std::string json() const;
};

/// Configuration of the service.
struct ServiceOptions {
  size_t Workers = 4;
  size_t QueueCapacity = 64;
  /// Overlaid under each request's own limits (request fields win); the
  /// service-level default budget for clients that send none.
  Budget DefaultLimits{60, 0};
  /// Capacity of the definitive-result memo cache (0 disables it).
  size_t CacheCapacity = 128;
  /// Lower bound of the `QueueFull` retry-after estimate. Guards the cold
  /// start: before the EWMA has a sample the estimate would otherwise
  /// degenerate, and a zero retry-after makes clients busy-spin against a
  /// full queue. Non-positive values fall back to 0.1s.
  double RetryFloorSeconds = 0.1;
  /// Persistent on-disk result cache shared by every job: injected into
  /// each request's `SolveOptions::DiskCache` (unless the request already
  /// carries one), so verdicts and clause-check records survive restarts
  /// and crashes of the daemon.
  std::shared_ptr<FileCache> DiskCache;
  /// Invoked on the worker thread after each job completes (after the
  /// future is satisfied). Used by the daemon to push responses.
  std::function<void(const JobResult &)> OnComplete;
};

/// The thread-pool scheduler. All public methods are thread-safe.
class SolverService {
public:
  explicit SolverService(ServiceOptions Opts = {});
  ~SolverService(); ///< Equivalent to `shutdown(true)`.

  SolverService(const SolverService &) = delete;
  SolverService &operator=(const SolverService &) = delete;

  /// Enqueues \p Request. Non-blocking; see `SubmitStatus`.
  Ticket submit(solver::SolveRequest Request);

  /// Cooperatively cancels job \p Id (queued or running). A queued job
  /// completes immediately as cancelled; a running one stops at the
  /// engine's next cancellation poll. Returns false when the id is not
  /// live (unknown or already completed).
  bool cancel(uint64_t Id);

  /// Stops intake. `Drain` finishes queued+running work; otherwise queued
  /// jobs complete as cancelled and running ones are cancelled
  /// cooperatively. Joins the workers; idempotent.
  void shutdown(bool Drain = true);

  ServiceMetrics metrics() const;

private:
  struct Job;

  void workerLoop();
  void noteCompleted(const JobResult &R, const std::string &Engine);
  std::string cacheKey(const solver::SolveRequest &Request) const;
  bool cacheLookup(const std::string &Key, solver::SolveResult &Out);
  void cacheStore(const std::string &Key, const solver::SolveResult &R);

  ServiceOptions Opts;
  mutable std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::deque<std::shared_ptr<Job>> Queue;
  std::unordered_map<uint64_t, std::shared_ptr<Job>> Live;
  std::vector<std::thread> Workers;
  bool AcceptingWork = true;
  bool CancelQueued = false; ///< Set by a non-drain shutdown.
  uint64_t NextId = 1;

  // Metrics state (guarded by Mutex).
  size_t InFlight = 0;
  uint64_t Submitted = 0, Rejected = 0, Completed = 0;
  uint64_t SolvedSat = 0, SolvedUnsat = 0, UnknownCount = 0, ErrorCount = 0;
  uint64_t Expired = 0, CacheHits = 0, CacheMisses = 0;
  uint64_t StageHits = 0, Escalations = 0;
  uint64_t DiskCacheServed = 0;
  std::unordered_map<std::string, uint64_t> EngineWins;
  double MeanRunSeconds = 0; ///< EWMA feeding the retry-after estimate.
  std::chrono::steady_clock::time_point Started;

  // Memo cache (guarded by Mutex): key -> list iterator, list is LRU order.
  std::list<std::pair<std::string, solver::SolveResult>> CacheList;
  std::unordered_map<
      std::string,
      std::list<std::pair<std::string, solver::SolveResult>>::iterator>
      CacheMap;
};

} // namespace la::server

#endif // LA_SERVER_SOLVERSERVICE_H
