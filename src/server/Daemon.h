//===- server/Daemon.h - Line-protocol solver daemon ------------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A transport-agnostic line protocol over a `SolverService`, driven by an
/// istream/ostream pair: the `chc-serve` binary wires it to stdin/stdout,
/// tests wire it to stringstreams.
///
/// Requests, one per line:
///
///   solve <id> <path> [engine=E] [budget=SECONDS] [format=F]
///                     [isolation=thread|process]
///                     [schedule=single|race|staged|auto]
///   solve-inline <id> [engine=E] [budget=SECONDS] [format=F]
///                     [isolation=thread|process]
///                     [schedule=single|race|staged|auto]
///     ...source lines...
///     .
///   cancel <id>
///   metrics
///   shutdown
///
/// `isolation=process` forks the engine (or each portfolio lane) into a
/// hard-killable child process, so a crashing engine cannot take the
/// daemon down; the default comes from `DaemonOptions::DefaultIsolation`.
///
/// `schedule=` picks the per-request engine schedule: `single` runs
/// exactly `engine=E`, `race` the full portfolio, `staged` the
/// probe → top-k → race escalation ladder, `auto` staged when the registry
/// offers a real choice. The default comes from
/// `DaemonOptions::DefaultSchedule`; `engine=` and a portfolio schedule
/// are mutually exclusive (the request is rejected).
///
/// `<id>` is a client-chosen token echoed back in the response, so clients
/// can pipeline requests and match answers arriving out of submission
/// order. Responses, one per line, written as jobs complete:
///
///   ok <id> <sat|unsat|unknown> engine=<name> format=<fmt> seconds=<s>
///      queued=<s> cached=<0|1> disk=<0|1> validated=<0|1>
///      [stages=<n> escalated=<0|1>]
///
/// `cached=1` covers both the in-memory memo cache and the persistent
/// disk cache; `disk=1` singles out answers served from the latter; the
/// `stages=`/`escalated=` pair appears on staged-schedule responses only.
///   rejected <id> retry-after=<seconds>     (backpressure: resubmit later)
///   expired <id>                            (budget ran out in the queue)
///   error <id> <message>
///   metrics <json object>
///   bye                                     (response to shutdown; the
///                                            queue is drained first)
///
//===----------------------------------------------------------------------===//

#ifndef LA_SERVER_DAEMON_H
#define LA_SERVER_DAEMON_H

#include "server/SolverService.h"

#include <iosfwd>

namespace la::server {

/// Configuration of one daemon run.
struct DaemonOptions {
  /// Service sizing and defaults; `Service.OnComplete` is owned by the
  /// daemon and must stay empty.
  ServiceOptions Service;
  /// Budget applied to requests that send no `budget=`; copied into
  /// `Service.DefaultLimits`.
  double DefaultBudgetSeconds = 60;
  /// Isolation applied to requests that send no `isolation=`. Process
  /// mode makes the daemon crash-proof against misbehaving engines at the
  /// cost of a fork per lane.
  solver::Isolation DefaultIsolation = solver::Isolation::Thread;
  /// Schedule policy applied to requests that send no `schedule=`.
  solver::SchedulePolicy DefaultSchedule = solver::SchedulePolicy::Single;
  /// Engine selector used by staged schedules (null picks the built-in
  /// rule baseline). Loaded by `chc_serve --selector FILE` from a model
  /// fit offline by `bench/fit_selector.py`.
  std::shared_ptr<const solver::EngineSelector> DefaultSelector;
};

/// Runs the protocol until `shutdown` or end of input, then drains the
/// service. Responses are interleaved with request reading (jobs complete
/// asynchronously); every response is flushed. Returns the number of
/// `solve`/`solve-inline` requests accepted.
size_t runDaemon(std::istream &In, std::ostream &Out,
                 const DaemonOptions &Opts = {});

} // namespace la::server

#endif // LA_SERVER_DAEMON_H
