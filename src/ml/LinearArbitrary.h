//===- ml/LinearArbitrary.h - Algorithm 1 of the paper ----------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `LinearArbitrary` (paper Algorithm 1): applies a base linear learner
/// recursively to the misclassified halves of the data until every positive
/// sample is separated from every negative sample, yielding an arbitrary
/// boolean combination of half-spaces:
///
///   phi = LinearClassify(S+, S-)
///   if phi misclassifies negatives:  phi := phi /\ LA(S+ok, S-bad)
///   if phi misclassifies positives:  phi := phi \/ LA(S+bad, S-)
///
/// Implementation notes beyond the paper's pseudo-code:
///   * the §5 "dummy classifier" interception retries the learner with a
///     single random opposite sample;
///   * when the learner still cannot make progress, an exact axis split of
///     one positive/negative pair is used, which guarantees termination on
///     contradiction-free data.
///
//===----------------------------------------------------------------------===//

#ifndef LA_ML_LINEARARBITRARY_H
#define LA_ML_LINEARARBITRARY_H

#include "logic/LinearExpr.h"
#include "ml/LinearClassifier.h"

namespace la::ml {

/// Configuration of Algorithm 1.
struct LinearArbitraryOptions {
  enum class BaseLearner { Svm, Perceptron };
  BaseLearner Learner = BaseLearner::Svm;
  /// The SVM C parameter (§3.1): small C prefers wide margins and tolerates
  /// misclassification, which the recursion then repairs.
  double SvmC = 1.0;
  /// Safety valve on base-learner invocations.
  int MaxLearnerCalls = 4096;
  uint64_t Seed = 1;
};

/// Result: a classifier formula over \p Vars plus the feature attributes
/// (one linear expression per learned hyperplane) feeding the decision-tree
/// stage of Algorithm 2.
struct ClassifierResult {
  bool Ok = false;
  const Term *Formula = nullptr;
  std::vector<LinearExpr> Atoms;
  size_t LearnerCalls = 0;
};

/// Runs Algorithm 1 on \p Data; requires Data.hasContradiction() == false.
ClassifierResult linearArbitrary(TermManager &TM,
                                 const std::vector<const Term *> &Vars,
                                 const Dataset &Data,
                                 const LinearArbitraryOptions &Opts);

} // namespace la::ml

#endif // LA_ML_LINEARARBITRARY_H
