//===- ml/Learn.h - Algorithm 2: the layered toolchain ----------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `Learn` (paper Algorithm 2): run LinearArbitrary, harvest its atomic
/// predicates as feature attributes, optionally add predefined features
/// (`v mod m`), and generalise with decision-tree learning. The result is
/// guaranteed (Lemma 3.1) to classify every sample correctly; this module
/// re-validates that property exactly before returning.
///
//===----------------------------------------------------------------------===//

#ifndef LA_ML_LEARN_H
#define LA_ML_LEARN_H

#include "ml/DecisionTree.h"
#include "ml/LinearArbitrary.h"

namespace la::ml {

/// Configuration of the full learning toolchain.
struct LearnOptions {
  LinearArbitraryOptions LA;
  /// Disabling this reproduces the paper's §6 DT ablation: the raw
  /// LinearArbitrary classifier is used as the invariant candidate.
  bool UseDecisionTree = true;
  /// Predefined `v_i mod m` feature moduli ("Beyond Polyhedra", §3.3).
  std::vector<int64_t> ModFeatures;
  /// Also provide unit (octagon-direction) features to the DT stage.
  bool AddUnitFeatures = false;
  /// Externally supplied candidate attributes for the DT stage, e.g. the
  /// bounded argument directions found by the static interval pre-analysis.
  /// Deduplicated against the learned atoms before use.
  std::vector<Feature> ExtraFeatures;
};

/// Result of Algorithm 2.
struct LearnResult {
  bool Ok = false;
  const Term *Formula = nullptr;
  size_t NumHyperplanes = 0;  ///< atoms learned by LinearArbitrary
  size_t NumDtNodes = 0;      ///< inner nodes of the decision tree (0 if off)
  bool UsedDecisionTree = false;
};

/// Runs the toolchain on \p Data over \p Vars. Requires a contradiction-free
/// dataset; the returned formula satisfies Lemma 3.1 (validated exactly).
LearnResult learn(TermManager &TM, const std::vector<const Term *> &Vars,
                  const Dataset &Data, const LearnOptions &Opts);

/// Shape statistics of a (DNF-ish) formula: number of conjuncts in each
/// disjunct, used for the paper's "#A" benchmark columns.
std::vector<size_t> dnfShape(const Term *Formula);

} // namespace la::ml

#endif // LA_ML_LEARN_H
