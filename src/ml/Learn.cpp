//===- ml/Learn.cpp - Algorithm 2: the layered toolchain ------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ml/Learn.h"

#include <cassert>
#include <set>
#include <string>

using namespace la;
using namespace la::ml;

/// Checks Lemma 3.1 exactly: the formula holds on every positive sample and
/// fails on every negative one.
static bool classifiesPerfectly(const Term *Formula,
                                const std::vector<const Term *> &Vars,
                                const Dataset &Data) {
  auto Bind = [&](const Sample &S) {
    std::unordered_map<const Term *, Rational> Asg;
    for (size_t I = 0; I < Vars.size(); ++I)
      Asg.emplace(Vars[I], S[I]);
    return Asg;
  };
  for (const Sample &S : Data.Pos)
    if (!evalFormula(Formula, Bind(S)))
      return false;
  for (const Sample &S : Data.Neg)
    if (evalFormula(Formula, Bind(S)))
      return false;
  return true;
}

LearnResult ml::learn(TermManager &TM, const std::vector<const Term *> &Vars,
                      const Dataset &Data, const LearnOptions &Opts) {
  LearnResult Result;
  assert(!Data.hasContradiction() && "contradictory dataset in Learn");

  // Degenerate cases.
  if (Data.Pos.empty() && Data.Neg.empty()) {
    Result.Ok = true;
    Result.Formula = TM.mkTrue();
    return Result;
  }
  if (Data.Neg.empty()) {
    Result.Ok = true;
    Result.Formula = TM.mkTrue();
    return Result;
  }
  if (Data.Pos.empty()) {
    Result.Ok = true;
    Result.Formula = TM.mkFalse();
    return Result;
  }

  // Line 1: LinearArbitrary.
  ClassifierResult LA = linearArbitrary(TM, Vars, Data, Opts.LA);
  if (!LA.Ok)
    return Result;
  Result.NumHyperplanes = LA.Atoms.size();

  if (!Opts.UseDecisionTree) {
    if (!classifiesPerfectly(LA.Formula, Vars, Data))
      return Result;
    Result.Ok = true;
    Result.Formula = LA.Formula;
    return Result;
  }

  // Line 2: feature attributes = atoms of the LA classifier (coefficients
  // only; thresholds are re-learned by the DT) plus predefined features.
  std::vector<Feature> Features;
  for (const LinearExpr &Atom : LA.Atoms) {
    std::vector<Rational> W(Vars.size(), Rational(0));
    for (const auto &[Var, Coeff] : Atom.coefficients()) {
      for (size_t I = 0; I < Vars.size(); ++I)
        if (Vars[I] == Var)
          W[I] = Coeff;
    }
    Features.push_back(Feature::linear(std::move(W)));
  }
  if (Opts.AddUnitFeatures) {
    for (size_t I = 0; I < Vars.size(); ++I) {
      std::vector<Rational> W(Vars.size(), Rational(0));
      W[I] = Rational(1);
      Features.push_back(Feature::linear(std::move(W)));
    }
  }
  if (!Opts.ExtraFeatures.empty()) {
    std::set<std::string> Seen;
    for (const Feature &F : Features)
      Seen.insert(F.key());
    for (const Feature &F : Opts.ExtraFeatures)
      if (Seen.insert(F.key()).second)
        Features.push_back(F);
  }
  for (int64_t M : Opts.ModFeatures) {
    assert(M > 0 && "mod feature with non-positive modulus");
    for (size_t I = 0; I < Vars.size(); ++I)
      Features.push_back(Feature::mod(I, BigInt(M)));
  }

  // Line 3: decision-tree generalisation.
  DtResult Dt = learnDecisionTree(TM, Vars, Data, Features);
  if (Dt.Ok && classifiesPerfectly(Dt.Formula, Vars, Data)) {
    Result.Ok = true;
    Result.Formula = Dt.Formula;
    Result.NumDtNodes = Dt.NumInnerNodes;
    Result.UsedDecisionTree = true;
    return Result;
  }

  // The DT stage can fail only if the feature set cannot realise the LA
  // split (e.g. thresholds falling between hyperplane offsets); fall back
  // to the raw LinearArbitrary classifier, which separates by construction.
  if (classifiesPerfectly(LA.Formula, Vars, Data)) {
    Result.Ok = true;
    Result.Formula = LA.Formula;
    return Result;
  }
  return Result;
}

std::vector<size_t> ml::dnfShape(const Term *Formula) {
  std::vector<size_t> Shape;
  auto CountConjuncts = [](const Term *T) -> size_t {
    if (T->kind() == TermKind::And)
      return T->numOperands();
    return 1;
  };
  if (Formula->kind() == TermKind::Or) {
    for (const Term *Disjunct : Formula->operands())
      Shape.push_back(CountConjuncts(Disjunct));
  } else {
    Shape.push_back(CountConjuncts(Formula));
  }
  return Shape;
}
