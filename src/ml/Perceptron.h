//===- ml/Perceptron.h - Margin perceptron learner --------------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic (margin) perceptron [Freund-Schapire 1999], one of the two
/// built-in `LinearClassify` implementations (paper §3.1/§5). Updates are
/// integral, so the learned hyperplane needs no rationalisation.
///
//===----------------------------------------------------------------------===//

#ifndef LA_ML_PERCEPTRON_H
#define LA_ML_PERCEPTRON_H

#include "ml/LinearClassifier.h"

namespace la::ml {

/// Perceptron with a fixed epoch budget; returns the best-accuracy weight
/// vector seen (pocket algorithm), which tolerates non-separable data.
class PerceptronLearner : public LinearLearner {
public:
  explicit PerceptronLearner(int MaxEpochs = 64) : MaxEpochs(MaxEpochs) {}

  LinearClassifier learn(const Dataset &Data, Random &Rng) const override;
  std::string name() const override { return "perceptron"; }

private:
  int MaxEpochs;
};

} // namespace la::ml

#endif // LA_ML_PERCEPTRON_H
