//===- ml/Svm.h - Linear soft-margin SVM (SMO) ------------------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A linear soft-margin SVM trained with sequential minimal optimisation
/// (Platt'99), the LIBSVM stand-in used as the default `LinearClassify`
/// (paper §3.1, §6). The C parameter trades margin width for training
/// accuracy exactly as discussed in §3.1; we default it to a small value so
/// large-margin (general) hyperplanes are preferred, accepting
/// misclassification, which LinearArbitrary then repairs.
///
/// The optimiser runs in double precision; the resulting hyperplane is
/// rationalised to small integer coefficients and validated exactly.
///
//===----------------------------------------------------------------------===//

#ifndef LA_ML_SVM_H
#define LA_ML_SVM_H

#include "ml/LinearClassifier.h"

namespace la::ml {

/// Linear SVM learner (SMO).
class SvmLearner : public LinearLearner {
public:
  explicit SvmLearner(double C = 1.0, int MaxPasses = 8, double Tol = 1e-3)
      : C(C), MaxPasses(MaxPasses), Tol(Tol) {}

  LinearClassifier learn(const Dataset &Data, Random &Rng) const override;
  std::string name() const override { return "svm"; }

private:
  double C;
  int MaxPasses;
  double Tol;
};

} // namespace la::ml

#endif // LA_ML_SVM_H
