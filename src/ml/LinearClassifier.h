//===- ml/LinearClassifier.h - Hyperplane classifiers -----------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A linear classifier `w . v + b >= 0` with exact rational weights (paper
/// §3.1), the common output format of the Perceptron and SVM learners, plus
/// the rationalisation pass that turns double-precision hyperplanes into
/// small integer coefficients before exact validation.
///
//===----------------------------------------------------------------------===//

#ifndef LA_ML_LINEARCLASSIFIER_H
#define LA_ML_LINEARCLASSIFIER_H

#include "ml/Dataset.h"
#include "support/Random.h"

#include <optional>

namespace la::ml {

/// Hyperplane classifier: predicts positive iff `W . v + B >= 0`.
struct LinearClassifier {
  std::vector<Rational> W;
  Rational B;

  explicit LinearClassifier(size_t Dim = 0) : W(Dim, Rational(0)) {}

  /// Exact decision function value.
  Rational margin(const Sample &S) const {
    Rational Sum = B;
    for (size_t I = 0; I < W.size(); ++I)
      Sum += W[I] * S[I];
    return Sum;
  }

  bool predicts(const Sample &S) const { return margin(S).signum() >= 0; }

  /// The "dummy classifier" of §5: all weights zero.
  bool isDummy() const {
    for (const Rational &Coeff : W)
      if (!Coeff.isZero())
        return false;
    return true;
  }

  /// Exact accuracy over a dataset.
  size_t countCorrect(const Dataset &Data) const {
    size_t Correct = 0;
    for (const Sample &S : Data.Pos)
      Correct += predicts(S);
    for (const Sample &S : Data.Neg)
      Correct += !predicts(S);
    return Correct;
  }

  std::string toString() const {
    std::string Out;
    for (size_t I = 0; I < W.size(); ++I) {
      if (!Out.empty())
        Out += " + ";
      Out += W[I].toString() + "*v" + std::to_string(I);
    }
    return Out + " + " + B.toString() + " >= 0";
  }
};

/// Rounds a double-precision hyperplane to small integer coefficients,
/// choosing the scale with the best exact accuracy on \p Data (ties break
/// toward smaller coefficients). Returns std::nullopt when every candidate
/// rounds to the dummy classifier.
std::optional<LinearClassifier>
rationalizeHyperplane(const std::vector<double> &W, double B,
                      const Dataset &Data);

/// Interface implemented by the base linear learners (Perceptron, SVM).
class LinearLearner {
public:
  virtual ~LinearLearner() = default;
  /// Learns one hyperplane; may misclassify samples (that is the point of
  /// LinearArbitrary) and may return a dummy classifier on degenerate data.
  virtual LinearClassifier learn(const Dataset &Data, Random &Rng) const = 0;
  virtual std::string name() const = 0;
};

} // namespace la::ml

#endif // LA_ML_LINEARCLASSIFIER_H
