//===- ml/DecisionTree.cpp - Information-gain DT learning -----------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ml/DecisionTree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

using namespace la;
using namespace la::ml;

Feature Feature::linear(std::vector<Rational> W) {
  Feature F;
  F.K = Kind::Linear;
  F.W = std::move(W);
  return F;
}

Feature Feature::mod(size_t VarIndex, BigInt Modulus) {
  Feature F;
  F.K = Kind::Mod;
  F.VarIndex = VarIndex;
  F.Modulus = std::move(Modulus);
  return F;
}

Rational Feature::eval(const Sample &S) const {
  if (K == Kind::Mod) {
    assert(S[VarIndex].isInteger() && "mod feature over fractional value");
    return Rational(S[VarIndex].numerator().euclideanMod(Modulus));
  }
  Rational Sum;
  for (size_t I = 0; I < W.size(); ++I)
    Sum += W[I] * S[I];
  return Sum;
}

const Term *Feature::toTerm(TermManager &TM,
                            const std::vector<const Term *> &Vars) const {
  if (K == Kind::Mod)
    return TM.mkMod(Vars[VarIndex], Modulus);
  std::vector<const Term *> Parts;
  for (size_t I = 0; I < W.size(); ++I)
    if (!W[I].isZero())
      Parts.push_back(TM.mkMul(W[I], Vars[I]));
  return TM.mkAdd(std::move(Parts));
}

std::string Feature::key() const {
  if (K == Kind::Mod)
    return "mod:" + std::to_string(VarIndex) + ":" + Modulus.toString();
  return "lin:" + [this] {
    std::string Out;
    for (const Rational &C : W)
      Out += C.toString() + ",";
    return Out;
  }();
}

double Feature::complexity() const {
  if (K == Kind::Mod)
    return 1.5;
  double Sum = 0;
  for (const Rational &C : W)
    if (!C.isZero())
      Sum += 1.0 + std::fabs(C.toDouble()) * 0.01;
  return Sum;
}

double ml::shannonEntropy(size_t NumPos, size_t NumNeg) {
  size_t Total = NumPos + NumNeg;
  if (Total == 0 || NumPos == 0 || NumNeg == 0)
    return 0.0;
  double P = static_cast<double>(NumPos) / Total;
  double N = static_cast<double>(NumNeg) / Total;
  return -P * std::log2(P) - N * std::log2(N);
}

double ml::informationGain(size_t PosLe, size_t NegLe, size_t PosGt,
                           size_t NegGt) {
  size_t Total = PosLe + NegLe + PosGt + NegGt;
  if (Total == 0)
    return 0.0;
  double Before = shannonEntropy(PosLe + PosGt, NegLe + NegGt);
  double LeWeight = static_cast<double>(PosLe + NegLe) / Total;
  double GtWeight = static_cast<double>(PosGt + NegGt) / Total;
  return Before - LeWeight * shannonEntropy(PosLe, NegLe) -
         GtWeight * shannonEntropy(PosGt, NegGt);
}

namespace {

/// Normalises a linear feature: scales coefficients to coprime integers and
/// flips the sign so the first nonzero coefficient is positive. Returns
/// false for the all-zero feature.
bool normalizeLinearFeature(Feature &F) {
  BigInt Lcm(1);
  for (const Rational &C : F.W) {
    const BigInt &D = C.denominator();
    Lcm = Lcm / BigInt::gcd(Lcm, D) * D;
  }
  BigInt Gcd;
  for (const Rational &C : F.W)
    Gcd = BigInt::gcd(Gcd, (C * Rational(Lcm)).numerator());
  if (Gcd.isZero())
    return false;
  Rational Scale = Rational(Lcm) / Rational(Gcd);
  int LeadSign = 0;
  for (Rational &C : F.W) {
    C *= Scale;
    if (LeadSign == 0)
      LeadSign = C.signum();
  }
  if (LeadSign < 0)
    for (Rational &C : F.W)
      C = -C;
  return true;
}

class TreeBuilder {
public:
  TreeBuilder(TermManager &TM, const std::vector<const Term *> &Vars,
              const std::vector<Feature> &Features)
      : TM(TM), Vars(Vars), Features(Features) {}

  /// Precomputed feature values: Values[f][s] over the concatenated samples.
  void tabulate(const Dataset &Data) {
    AllSamples.clear();
    for (const Sample &S : Data.Pos)
      AllSamples.push_back(&S);
    NumPos = AllSamples.size();
    for (const Sample &S : Data.Neg)
      AllSamples.push_back(&S);
    Values.assign(Features.size(), {});
    for (size_t F = 0; F < Features.size(); ++F) {
      Values[F].reserve(AllSamples.size());
      for (const Sample *S : AllSamples)
        Values[F].push_back(Features[F].eval(*S));
    }
  }

  const Term *build(const std::vector<size_t> &Indices) {
    size_t Pos = 0, Neg = 0;
    for (size_t I : Indices)
      (I < NumPos ? Pos : Neg)++;
    if (Neg == 0)
      return TM.mkTrue();
    if (Pos == 0)
      return TM.mkFalse();

    // Best split across features and thresholds.
    double BestGain = -1.0;
    size_t BestFeature = 0;
    Rational BestThreshold;
    for (size_t F = 0; F < Features.size(); ++F) {
      // Sort node samples by feature value.
      std::vector<size_t> Order = Indices;
      std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
        return Values[F][A] < Values[F][B];
      });
      size_t PosLe = 0, NegLe = 0;
      for (size_t I = 0; I + 1 < Order.size(); ++I) {
        (Order[I] < NumPos ? PosLe : NegLe)++;
        // Candidate threshold only between distinct consecutive values.
        if (Values[F][Order[I]] == Values[F][Order[I + 1]])
          continue;
        double Gain =
            informationGain(PosLe, NegLe, Pos - PosLe, Neg - NegLe);
        if (Gain > BestGain + 1e-12) {
          BestGain = Gain;
          BestFeature = F;
          BestThreshold = Values[F][Order[I]];
        }
      }
    }
    if (BestGain <= 1e-12)
      return nullptr; // features cannot separate this mixed node

    std::vector<size_t> LeftIdx, RightIdx;
    for (size_t I : Indices)
      (Values[BestFeature][I] <= BestThreshold ? LeftIdx : RightIdx)
          .push_back(I);
    assert(!LeftIdx.empty() && !RightIdx.empty() && "degenerate split");

    const Term *Left = build(LeftIdx);
    if (!Left)
      return nullptr;
    const Term *Right = build(RightIdx);
    if (!Right)
      return nullptr;

    ++InnerNodes;
    UsedFeatures.insert(BestFeature);
    // Decision: f <= c. Build with an integral constant.
    assert(BestThreshold.isInteger() &&
           "feature values over integer samples must be integral");
    const Term *FTerm = Features[BestFeature].toTerm(TM, Vars);
    const Term *Cond = TM.mkLe(FTerm, TM.mkIntConst(BestThreshold));
    return TM.mkOr(TM.mkAnd(Cond, Left), TM.mkAnd(TM.mkNot(Cond), Right));
  }

  size_t InnerNodes = 0;
  std::set<size_t> UsedFeatures;

private:
  TermManager &TM;
  const std::vector<const Term *> &Vars;
  const std::vector<Feature> &Features;
  std::vector<const Sample *> AllSamples;
  std::vector<std::vector<Rational>> Values;
  size_t NumPos = 0;
};

} // namespace

DtResult ml::learnDecisionTree(TermManager &TM,
                               const std::vector<const Term *> &Vars,
                               const Dataset &Data,
                               const std::vector<Feature> &FeaturesIn) {
  DtResult Result;
  // Normalise, de-duplicate and order features simplest-first so that ties
  // in information gain favour simple attributes.
  std::vector<Feature> Features;
  std::set<std::string> Seen;
  for (const Feature &F : FeaturesIn) {
    Feature Copy = F;
    if (Copy.K == Feature::Kind::Linear && !normalizeLinearFeature(Copy))
      continue;
    if (Seen.insert(Copy.key()).second)
      Features.push_back(std::move(Copy));
  }
  std::stable_sort(Features.begin(), Features.end(),
                   [](const Feature &A, const Feature &B) {
                     return A.complexity() < B.complexity();
                   });

  TreeBuilder Builder(TM, Vars, Features);
  Builder.tabulate(Data);
  std::vector<size_t> All(Data.size());
  for (size_t I = 0; I < All.size(); ++I)
    All[I] = I;
  const Term *Formula = Builder.build(All);
  if (!Formula)
    return Result;
  Result.Ok = true;
  Result.Formula = Formula;
  Result.NumInnerNodes = Builder.InnerNodes;
  Result.NumFeaturesUsed = Builder.UsedFeatures.size();
  return Result;
}
