//===- ml/Dataset.h - Labeled sample sets for learning ----------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Positive/negative sample sets over a fixed variable vector. Samples come
/// from SMT models (paper §4.2), so their components are integral rationals;
/// the learning code keeps them exact and only converts to doubles inside
/// the SVM optimiser.
///
//===----------------------------------------------------------------------===//

#ifndef LA_ML_DATASET_H
#define LA_ML_DATASET_H

#include "support/Rational.h"

#include <string>
#include <vector>

namespace la::ml {

/// One data point: a value per variable (integral rationals).
using Sample = std::vector<Rational>;

/// Positive and negative samples of one predicate.
struct Dataset {
  size_t Dim = 0;
  std::vector<Sample> Pos;
  std::vector<Sample> Neg;

  explicit Dataset(size_t Dim = 0) : Dim(Dim) {}

  bool empty() const { return Pos.empty() && Neg.empty(); }
  size_t size() const { return Pos.size() + Neg.size(); }

  /// True when some sample carries both labels (unlearnable).
  bool hasContradiction() const {
    for (const Sample &P : Pos)
      for (const Sample &N : Neg)
        if (P == N)
          return true;
    return false;
  }

  std::string toString() const {
    auto Row = [](const Sample &S) {
      std::string Out = "(";
      for (size_t I = 0; I < S.size(); ++I)
        Out += (I ? ", " : "") + S[I].toString();
      return Out + ")";
    };
    std::string Out;
    for (const Sample &S : Pos)
      Out += "+ " + Row(S) + "\n";
    for (const Sample &S : Neg)
      Out += "o " + Row(S) + "\n";
    return Out;
  }
};

} // namespace la::ml

#endif // LA_ML_DATASET_H
