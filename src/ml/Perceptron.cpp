//===- ml/Perceptron.cpp - Margin perceptron learner ----------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ml/Perceptron.h"

using namespace la;
using namespace la::ml;

LinearClassifier PerceptronLearner::learn(const Dataset &Data,
                                          Random &Rng) const {
  const size_t Dim = Data.Dim;
  LinearClassifier Current(Dim);
  LinearClassifier Pocket = Current;
  size_t PocketCorrect = Pocket.countCorrect(Data);

  // Interleave the samples deterministically but in shuffled order.
  struct Labeled {
    const Sample *S;
    int Y;
  };
  std::vector<Labeled> All;
  All.reserve(Data.size());
  for (const Sample &S : Data.Pos)
    All.push_back({&S, 1});
  for (const Sample &S : Data.Neg)
    All.push_back({&S, -1});
  for (size_t I = All.size(); I > 1; --I)
    std::swap(All[I - 1], All[Rng.nextBounded(I)]);

  for (int Epoch = 0; Epoch < MaxEpochs; ++Epoch) {
    bool AnyMistake = false;
    for (const Labeled &L : All) {
      Rational Margin = Current.margin(*L.S);
      bool PredictedPositive = Margin.signum() >= 0;
      if ((L.Y > 0) == PredictedPositive)
        continue;
      AnyMistake = true;
      Rational Y(L.Y);
      for (size_t I = 0; I < Dim; ++I)
        Current.W[I] += Y * (*L.S)[I];
      Current.B += Y;
      size_t Correct = Current.countCorrect(Data);
      if (Correct > PocketCorrect) {
        Pocket = Current;
        PocketCorrect = Correct;
      }
    }
    if (!AnyMistake)
      return Current; // converged: separates the data exactly
  }
  return Pocket;
}
