//===- ml/DecisionTree.h - Information-gain DT learning ---------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C4.5-style decision-tree layer of the toolchain (paper §2.2, §3.3):
/// inner nodes test `f(v) <= c` for a feature attribute f and a threshold c
/// learned from the data by maximising Shannon information gain; leaves are
/// labels. The tree is grown until every leaf is pure (the paper tunes its
/// DT implementation to classify all samples correctly) and converted to a
/// first-order formula as the disjunction over paths to positive leaves.
///
/// Feature attributes are either linear expressions (from LinearArbitrary)
/// or `v_i mod m` for predefined moduli (the "Beyond Polyhedra" features).
///
//===----------------------------------------------------------------------===//

#ifndef LA_ML_DECISIONTREE_H
#define LA_ML_DECISIONTREE_H

#include "logic/Term.h"
#include "ml/Dataset.h"

namespace la::ml {

/// A feature attribute `f(v)` usable at DT inner nodes.
struct Feature {
  enum class Kind { Linear, Mod };
  Kind K = Kind::Linear;
  /// Linear: coefficients over the variable vector (no constant offset; the
  /// threshold absorbs it).
  std::vector<Rational> W;
  /// Mod: `Vars[VarIndex] mod Modulus` (Euclidean).
  size_t VarIndex = 0;
  BigInt Modulus;

  Rational eval(const Sample &S) const;
  /// The attribute as an Int term over \p Vars.
  const Term *toTerm(TermManager &TM,
                     const std::vector<const Term *> &Vars) const;
  /// Canonical key for de-duplication (sign- and scale-normalised).
  std::string key() const;
  /// Crude complexity measure used to order features so that ties in
  /// information gain resolve toward simpler attributes (§2.2).
  double complexity() const;

  static Feature linear(std::vector<Rational> W);
  static Feature mod(size_t VarIndex, BigInt Modulus);
};

/// Result of DT learning.
struct DtResult {
  bool Ok = false;
  const Term *Formula = nullptr;
  size_t NumInnerNodes = 0;
  size_t NumFeaturesUsed = 0;
};

/// Learns a pure decision tree over \p Features; fails (Ok = false) when the
/// features cannot distinguish some mixed-label subset.
DtResult learnDecisionTree(TermManager &TM,
                           const std::vector<const Term *> &Vars,
                           const Dataset &Data,
                           const std::vector<Feature> &Features);

/// Shannon entropy of a (positive, negative) split; 0 for pure/empty sets.
double shannonEntropy(size_t NumPos, size_t NumNeg);

/// Information gain of splitting (Pos,Neg) into "<=" and ">" parts.
double informationGain(size_t PosLe, size_t NegLe, size_t PosGt, size_t NegGt);

} // namespace la::ml

#endif // LA_ML_DECISIONTREE_H
