//===- ml/Svm.cpp - Linear soft-margin SVM (SMO) ---------------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ml/Svm.h"

#include <cmath>

using namespace la;
using namespace la::ml;

LinearClassifier SvmLearner::learn(const Dataset &Data, Random &Rng) const {
  const size_t N = Data.size();
  const size_t Dim = Data.Dim;
  if (N == 0 || Dim == 0)
    return LinearClassifier(Dim);

  // Flatten to doubles with labels +1/-1.
  std::vector<std::vector<double>> X;
  std::vector<double> Y;
  X.reserve(N);
  for (const Sample &S : Data.Pos) {
    std::vector<double> Row;
    for (const Rational &V : S)
      Row.push_back(V.toDouble());
    X.push_back(std::move(Row));
    Y.push_back(1.0);
  }
  for (const Sample &S : Data.Neg) {
    std::vector<double> Row;
    for (const Rational &V : S)
      Row.push_back(V.toDouble());
    X.push_back(std::move(Row));
    Y.push_back(-1.0);
  }

  auto Dot = [&](size_t I, size_t J) {
    double Sum = 0;
    for (size_t K = 0; K < Dim; ++K)
      Sum += X[I][K] * X[J][K];
    return Sum;
  };

  // Simplified SMO (Platt'99 / CS229 variant).
  std::vector<double> Alpha(N, 0.0);
  double B = 0.0;
  auto Predict = [&](size_t I) {
    double Sum = B;
    for (size_t K = 0; K < N; ++K)
      if (Alpha[K] != 0.0)
        Sum += Alpha[K] * Y[K] * Dot(K, I);
    return Sum;
  };

  int Passes = 0;
  int Guard = 0;
  while (Passes < MaxPasses && ++Guard < 200) {
    int Changed = 0;
    for (size_t I = 0; I < N; ++I) {
      double Ei = Predict(I) - Y[I];
      bool ViolatesKkt = (Y[I] * Ei < -Tol && Alpha[I] < C) ||
                         (Y[I] * Ei > Tol && Alpha[I] > 0);
      if (!ViolatesKkt)
        continue;
      size_t J = Rng.nextBounded(N - 1);
      if (J >= I)
        ++J;
      double Ej = Predict(J) - Y[J];
      double AiOld = Alpha[I], AjOld = Alpha[J];
      double L, H;
      if (Y[I] != Y[J]) {
        L = std::max(0.0, AjOld - AiOld);
        H = std::min(C, C + AjOld - AiOld);
      } else {
        L = std::max(0.0, AiOld + AjOld - C);
        H = std::min(C, AiOld + AjOld);
      }
      if (L >= H)
        continue;
      double Eta = 2 * Dot(I, J) - Dot(I, I) - Dot(J, J);
      if (Eta >= 0)
        continue;
      double AjNew = AjOld - Y[J] * (Ei - Ej) / Eta;
      AjNew = std::min(H, std::max(L, AjNew));
      if (std::fabs(AjNew - AjOld) < 1e-7)
        continue;
      double AiNew = AiOld + Y[I] * Y[J] * (AjOld - AjNew);
      Alpha[I] = AiNew;
      Alpha[J] = AjNew;
      double B1 = B - Ei - Y[I] * (AiNew - AiOld) * Dot(I, I) -
                  Y[J] * (AjNew - AjOld) * Dot(I, J);
      double B2 = B - Ej - Y[I] * (AiNew - AiOld) * Dot(I, J) -
                  Y[J] * (AjNew - AjOld) * Dot(J, J);
      if (AiNew > 0 && AiNew < C)
        B = B1;
      else if (AjNew > 0 && AjNew < C)
        B = B2;
      else
        B = (B1 + B2) / 2;
      ++Changed;
    }
    Passes = Changed == 0 ? Passes + 1 : 0;
  }

  // Recover the primal hyperplane w = sum alpha_i y_i x_i.
  std::vector<double> W(Dim, 0.0);
  for (size_t I = 0; I < N; ++I)
    if (Alpha[I] != 0.0)
      for (size_t K = 0; K < Dim; ++K)
        W[K] += Alpha[I] * Y[I] * X[I][K];

  std::optional<LinearClassifier> Exact = rationalizeHyperplane(W, B, Data);
  if (!Exact)
    return LinearClassifier(Dim); // dummy classifier (see paper §5)
  return *Exact;
}
