//===- ml/LinearClassifier.cpp - Hyperplane rationalisation ---------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ml/LinearClassifier.h"

#include <cassert>
#include <cmath>

using namespace la;
using namespace la::ml;

std::optional<LinearClassifier>
ml::rationalizeHyperplane(const std::vector<double> &W, double B,
                          const Dataset &Data) {
  // Normalise so the largest weight magnitude is 1; then try a ladder of
  // integer scales and keep the exactly-most-accurate, smallest candidate.
  double MaxAbs = 0;
  for (double C : W)
    MaxAbs = std::max(MaxAbs, std::fabs(C));
  if (MaxAbs == 0 || !std::isfinite(MaxAbs))
    return std::nullopt;

  static const int Scales[] = {1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32, 64, 100};
  std::optional<LinearClassifier> Best;
  size_t BestCorrect = 0;
  for (int Scale : Scales) {
    LinearClassifier Candidate(W.size());
    bool AllZero = true;
    bool Overflow = false;
    for (size_t I = 0; I < W.size(); ++I) {
      double Scaled = W[I] / MaxAbs * Scale;
      if (std::fabs(Scaled) > 1e15) {
        Overflow = true;
        break;
      }
      int64_t R = static_cast<int64_t>(std::llround(Scaled));
      Candidate.W[I] = Rational(R);
      AllZero &= R == 0;
    }
    if (Overflow || AllZero)
      continue;
    double ScaledB = B / MaxAbs * Scale;
    if (std::fabs(ScaledB) > 1e15)
      continue;
    Candidate.B = Rational(static_cast<int64_t>(std::llround(ScaledB)));

    // Reduce by the gcd of all coefficients for canonical small weights.
    BigInt G = Candidate.B.numerator();
    for (const Rational &C : Candidate.W)
      G = BigInt::gcd(G, C.numerator());
    if (!G.isZero() && !G.isOne()) {
      Rational Inv = Rational(G).inverse();
      for (Rational &C : Candidate.W)
        C *= Inv;
      Candidate.B *= Inv;
    }

    size_t Correct = Candidate.countCorrect(Data);
    if (!Best || Correct > BestCorrect) {
      Best = Candidate;
      BestCorrect = Correct;
    }
    if (BestCorrect == Data.size())
      break; // perfect already; prefer the smallest such scale
  }
  return Best;
}
