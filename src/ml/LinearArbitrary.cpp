//===- ml/LinearArbitrary.cpp - Algorithm 1 of the paper ------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ml/LinearArbitrary.h"

#include "ml/Perceptron.h"
#include "ml/Svm.h"

#include <cassert>
#include <memory>

using namespace la;
using namespace la::ml;

namespace {

/// Recursion context shared across the calls of Algorithm 1.
class Algorithm1 {
public:
  Algorithm1(TermManager &TM, const std::vector<const Term *> &Vars,
             const LinearArbitraryOptions &Opts)
      : TM(TM), Vars(Vars), Opts(Opts), Rng(Opts.Seed) {
    if (Opts.Learner == LinearArbitraryOptions::BaseLearner::Svm)
      Learner = std::make_unique<SvmLearner>(Opts.SvmC);
    else
      Learner = std::make_unique<PerceptronLearner>();
  }

  ClassifierResult run(const Dataset &Data) {
    ClassifierResult Result;
    const Term *Formula = go(Data.Pos, Data.Neg);
    Result.Ok = Formula != nullptr;
    Result.Formula = Formula;
    Result.Atoms = std::move(Atoms);
    Result.LearnerCalls = Calls;
    return Result;
  }

private:
  /// The recursive procedure; returns nullptr on budget exhaustion.
  const Term *go(const std::vector<Sample> &Pos,
                 const std::vector<Sample> &Neg) {
    if (Pos.empty())
      return TM.mkFalse();
    if (Neg.empty())
      return TM.mkTrue();

    std::optional<LinearClassifier> Phi = learnOne(Pos, Neg);
    if (!Phi)
      return nullptr;

    // Exact partition (lines 2-4 of Algorithm 1).
    std::vector<Sample> PosOk, PosBad, NegBad;
    for (const Sample &S : Pos)
      (Phi->predicts(S) ? PosOk : PosBad).push_back(S);
    for (const Sample &S : Neg)
      if (Phi->predicts(S))
        NegBad.push_back(S);

    const Term *Formula = classifierTerm(*Phi);
    if (!NegBad.empty()) {
      const Term *Conj = go(PosOk, NegBad);
      if (!Conj)
        return nullptr;
      Formula = TM.mkAnd(Formula, Conj);
    }
    if (!PosBad.empty()) {
      const Term *Disj = go(PosBad, Neg);
      if (!Disj)
        return nullptr;
      Formula = TM.mkOr(Formula, Disj);
    }
    return Formula;
  }

  /// One LinearClassify call with the §5 dummy interception and an exact
  /// fallback that guarantees progress: the returned classifier correctly
  /// classifies at least one positive and at least one negative sample.
  std::optional<LinearClassifier> learnOne(const std::vector<Sample> &Pos,
                                           const std::vector<Sample> &Neg) {
    Dataset Full(Vars.size());
    Full.Pos = Pos;
    Full.Neg = Neg;

    auto MakesProgress = [&](const LinearClassifier &Phi) {
      bool PosOk = false, NegOk = false;
      for (const Sample &S : Pos)
        PosOk |= Phi.predicts(S);
      for (const Sample &S : Neg)
        NegOk |= !Phi.predicts(S);
      return PosOk && NegOk;
    };

    auto Attempt = [&](const Dataset &Input)
        -> std::optional<LinearClassifier> {
      if (Calls >= Opts.MaxLearnerCalls)
        return std::nullopt;
      ++Calls;
      LinearClassifier Phi = Learner->learn(Input, Rng);
      if (!Phi.isDummy() && MakesProgress(Phi))
        return Phi;
      return std::nullopt;
    };

    if (std::optional<LinearClassifier> Phi = Attempt(Full))
      return Phi;
    if (Calls >= Opts.MaxLearnerCalls)
      return std::nullopt;

    // Dummy interception (§5): retry against a single opposite sample.
    Dataset OneNeg(Vars.size());
    OneNeg.Pos = Pos;
    OneNeg.Neg = {Neg[Rng.nextBounded(Neg.size())]};
    if (std::optional<LinearClassifier> Phi = Attempt(OneNeg))
      return Phi;
    Dataset OnePos(Vars.size());
    OnePos.Pos = {Pos[Rng.nextBounded(Pos.size())]};
    OnePos.Neg = Neg;
    if (std::optional<LinearClassifier> Phi = Attempt(OnePos))
      return Phi;
    if (Calls >= Opts.MaxLearnerCalls)
      return std::nullopt;

    // Exact fallback: split the first positive from the first negative on
    // some coordinate where they differ.
    const Sample &P = Pos.front();
    const Sample &N = Neg.front();
    for (size_t I = 0; I < P.size(); ++I) {
      if (P[I] == N[I])
        continue;
      LinearClassifier Phi(Vars.size());
      // f(v) = s * (2*v_i - p_i - n_i) with s = sign(p_i - n_i):
      // strictly positive at P and strictly negative at N.
      Rational S(P[I] > N[I] ? 1 : -1);
      Phi.W[I] = S * Rational(2);
      Phi.B = S * (-(P[I] + N[I]));
      assert(MakesProgress(Phi) && "fallback split must make progress");
      return Phi;
    }
    assert(false && "contradictory dataset reached LinearArbitrary");
    return std::nullopt;
  }

  /// Builds the atom `W . v + B >= 0` and records its feature attribute.
  const Term *classifierTerm(const LinearClassifier &Phi) {
    LinearExpr F;
    for (size_t I = 0; I < Vars.size(); ++I)
      F.addVar(Vars[I], Phi.W[I]);
    F.addConstant(Phi.B);
    Atoms.push_back(F);
    // f >= 0  <=>  -f <= 0.
    LinearAtom Atom;
    Atom.Expr = F.scaled(Rational(-1));
    Atom.Rel = LinRel::Le;
    return Atom.toTerm(TM);
  }

  TermManager &TM;
  const std::vector<const Term *> &Vars;
  const LinearArbitraryOptions &Opts;
  Random Rng;
  std::unique_ptr<LinearLearner> Learner;
  std::vector<LinearExpr> Atoms;
  int Calls = 0;
};

} // namespace

ClassifierResult ml::linearArbitrary(TermManager &TM,
                                     const std::vector<const Term *> &Vars,
                                     const Dataset &Data,
                                     const LinearArbitraryOptions &Opts) {
  assert(Data.Dim == Vars.size() && "dataset dimension mismatch");
  assert(!Data.hasContradiction() && "contradictory dataset");
  return Algorithm1(TM, Vars, Opts).run(Data);
}
