//===- baselines/RegisterEngines.cpp - Baseline registry hookup -----------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/RegisterEngines.h"
#include "baselines/EnumLearner.h"
#include "baselines/PdrSolver.h"
#include "baselines/TemplateLearner.h"
#include "baselines/UnwindSolver.h"

#include <csignal>
#include <cstdlib>

using namespace la;
using namespace la::baselines;
using solver::CostClass;
using solver::EngineId;
using solver::EngineInfo;
using solver::EngineOptions;
using EnginePtr = std::unique_ptr<la::chc::ChcSolverInterface>;

namespace {

EngineInfo engineInfo(const char *Id, const char *Description,
                      CostClass Cost, bool NeedsAnalysis = false,
                      bool IsDiagnostic = false) {
  EngineInfo Info;
  Info.Id = EngineId(Id);
  Info.Description = Description;
  Info.TypicalCost = Cost;
  Info.NeedsAnalysis = NeedsAnalysis;
  Info.IsDiagnostic = IsDiagnostic;
  return Info;
}

PdrOptions pdrFrom(const EngineOptions &EO, bool CacheReachable) {
  PdrOptions Opts;
  Opts.CacheReachable = CacheReachable;
  Opts.Limits = EO.Limits.resolvedOver(Opts.Limits);
  Opts.Cancel = EO.Cancel;
  Opts.Smt = EO.Smt;
  return Opts;
}

UnwindOptions unwindFrom(const EngineOptions &EO, bool SummaryReuse) {
  UnwindOptions Opts;
  Opts.SummaryReuse = SummaryReuse;
  Opts.Limits = EO.Limits.resolvedOver(Opts.Limits);
  Opts.Cancel = EO.Cancel;
  Opts.Smt = EO.Smt;
  return Opts;
}

/// The PIE/DIG baselines swap the learner inside the shared CEGAR loop, so
/// they build on the caller's data-driven configuration.
solver::DataDrivenOptions learnerSwapFrom(const EngineOptions &EO,
                                          solver::DataDrivenOptions Swapped) {
  Swapped.Smt = EO.DataDriven.Smt;
  Swapped.Analysis = EO.DataDriven.Analysis;
  Swapped.EnableAnalysis = EO.DataDriven.EnableAnalysis;
  Swapped.Limits = EO.Limits.resolvedOver(Swapped.Limits);
  Swapped.Cancel = EO.Cancel;
  return Swapped;
}

/// A deliberately misbehaving engine for isolation tests: segfaults,
/// aborts, or spins forever the moment it is asked to solve.
class CrashSolver : public chc::ChcSolverInterface {
public:
  enum class Mode { Segv, Abort, Spin };

  CrashSolver(Mode M, std::string Name) : M(M), Name(std::move(Name)) {}

  chc::ChcSolverResult solve(const chc::ChcSystem &System) override {
    switch (M) {
    case Mode::Segv:
      std::raise(SIGSEGV);
      break;
    case Mode::Abort:
      std::abort();
    case Mode::Spin: {
      // Spin without ever polling a cancellation token — only an external
      // kill (deadline, rlimit) stops this lane. The volatile read keeps
      // the loop observable (a plain empty loop is UB).
      volatile bool KeepSpinning = true;
      while (KeepSpinning) {
      }
      break;
    }
    }
    // Unreachable unless the raise was blocked; fail loudly either way.
    chc::ChcSolverResult R(System.termManager());
    R.Status = chc::ChcResult::Unknown;
    return R;
  }

  std::string name() const override { return Name; }

private:
  Mode M;
  std::string Name;
};

} // namespace

void baselines::registerBuiltinEngines(solver::SolverRegistry &R) {
  // `add` refuses duplicate ids, so repeated calls are no-ops. The PDR
  // family regularly consumes whole budgets; the unwinding family is fast
  // on non-recursive systems; the learner swaps inherit the data-driven
  // engine's appetite for the pre-analysis.
  R.add(engineInfo("pdr", "Spacer-style PDR with reachable-fact caching",
                   CostClass::Heavy),
        [](const EngineOptions &EO) -> EnginePtr {
          return std::make_unique<PdrSolver>(pdrFrom(EO, true));
        });
  R.addAlias(EngineId("spacer"), EngineId("pdr"));
  R.add(engineInfo("gpdr", "GPDR-style PDR without reachable-fact caching",
                   CostClass::Heavy),
        [](const EngineOptions &EO) -> EnginePtr {
          return std::make_unique<PdrSolver>(pdrFrom(EO, false));
        });
  R.add(engineInfo("unwind", "Duality-style unwinding with summary reuse",
                   CostClass::Moderate),
        [](const EngineOptions &EO) -> EnginePtr {
          return std::make_unique<UnwindSolver>(unwindFrom(EO, true));
        });
  R.addAlias(EngineId("duality"), EngineId("unwind"));
  R.add(engineInfo("interpolation",
                   "UAutomizer-style path-by-path interpolation",
                   CostClass::Moderate),
        [](const EngineOptions &EO) -> EnginePtr {
          return std::make_unique<UnwindSolver>(unwindFrom(EO, false));
        });
  R.add(engineInfo("pie", "CEGAR loop with the PIE-style enumerative learner",
                   CostClass::Heavy, /*NeedsAnalysis=*/true),
        [](const EngineOptions &EO) -> EnginePtr {
          return std::make_unique<solver::DataDrivenChcSolver>(learnerSwapFrom(
              EO, makeEnumSolverOptions(EO.Limits.WallSeconds)));
        });
  R.add(engineInfo("dig", "CEGAR loop with the DIG-style template learner",
                   CostClass::Moderate, /*NeedsAnalysis=*/true),
        [](const EngineOptions &EO) -> EnginePtr {
          return std::make_unique<solver::DataDrivenChcSolver>(learnerSwapFrom(
              EO, makeTemplateSolverOptions(EO.Limits.WallSeconds)));
        });
}

void baselines::registerCrashEngines(solver::SolverRegistry &R) {
  R.add(engineInfo("crash-segv",
                   "isolation test engine: raises SIGSEGV on solve",
                   CostClass::Cheap, false, /*IsDiagnostic=*/true),
        [](const EngineOptions &) -> EnginePtr {
          return std::make_unique<CrashSolver>(CrashSolver::Mode::Segv,
                                               "crash-segv");
        });
  R.add(engineInfo("crash-abort",
                   "isolation test engine: calls abort() on solve",
                   CostClass::Cheap, false, /*IsDiagnostic=*/true),
        [](const EngineOptions &) -> EnginePtr {
          return std::make_unique<CrashSolver>(CrashSolver::Mode::Abort,
                                               "crash-abort");
        });
  R.add(engineInfo("crash-spin",
                   "isolation test engine: spins forever, ignoring "
                   "cancellation",
                   CostClass::Cheap, false, /*IsDiagnostic=*/true),
        [](const EngineOptions &) -> EnginePtr {
          return std::make_unique<CrashSolver>(CrashSolver::Mode::Spin,
                                               "crash-spin");
        });
}
