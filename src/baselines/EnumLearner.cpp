//===- baselines/EnumLearner.cpp - PIE-style enumerative learner ----------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/EnumLearner.h"

#include <algorithm>
#include <set>

using namespace la;
using namespace la::baselines;
using namespace la::ml;

namespace {

/// A candidate atom: a direction vector with a threshold, meaning
/// `dir . v <= C`, plus its truth value on every sample.
struct CandidateAtom {
  std::vector<int> Dir;
  Rational Threshold;
  /// Truth on Pos then Neg samples (bit per sample).
  std::vector<bool> Truth;
};

Rational dot(const std::vector<int> &Dir, const Sample &S) {
  Rational Sum;
  for (size_t I = 0; I < Dir.size(); ++I)
    if (Dir[I] != 0)
      Sum += Rational(Dir[I]) * S[I];
  return Sum;
}

} // namespace

LearnResult baselines::enumLearn(TermManager &TM,
                                 const std::vector<const Term *> &Vars,
                                 const Dataset &Data,
                                 const EnumLearnerOptions &Opts) {
  LearnResult Result;
  if (Data.Neg.empty()) {
    Result.Ok = true;
    Result.Formula = TM.mkTrue();
    return Result;
  }
  if (Data.Pos.empty()) {
    Result.Ok = true;
    Result.Formula = TM.mkFalse();
    return Result;
  }

  const size_t Dim = Data.Dim;
  // Enumerate octagonal directions.
  std::vector<std::vector<int>> Dirs;
  for (size_t I = 0; I < Dim; ++I) {
    std::vector<int> D(Dim, 0);
    D[I] = 1;
    Dirs.push_back(D);
    D[I] = -1;
    Dirs.push_back(D);
  }
  std::vector<int> Slopes{1};
  if (Opts.WideSlopes)
    Slopes = {1, 2};
  for (size_t I = 0; I < Dim; ++I)
    for (size_t J = I + 1; J < Dim; ++J)
      for (int SI : {1, -1})
        for (int SJ : {-1, 1})
          for (int Slope : Slopes) {
            std::vector<int> D(Dim, 0);
            D[I] = SI * Slope;
            D[J] = SJ;
            Dirs.push_back(D);
          }

  // Thresholds from the data: for each direction, the distinct values taken
  // on the samples (this is PIE's "constants from tests" heuristic).
  std::vector<CandidateAtom> Atoms;
  const size_t NumSamples = Data.size();
  for (const std::vector<int> &Dir : Dirs) {
    std::set<Rational> Values;
    auto Collect = [&](const std::vector<Sample> &Set) {
      for (const Sample &S : Set)
        Values.insert(dot(Dir, S));
    };
    Collect(Data.Pos);
    Collect(Data.Neg);
    for (const Rational &C : Values) {
      if (Atoms.size() >= Opts.MaxAtoms)
        break;
      CandidateAtom Atom;
      Atom.Dir = Dir;
      Atom.Threshold = C;
      Atom.Truth.reserve(NumSamples);
      for (const Sample &S : Data.Pos)
        Atom.Truth.push_back(dot(Dir, S) <= C);
      for (const Sample &S : Data.Neg)
        Atom.Truth.push_back(dot(Dir, S) <= C);
      Atoms.push_back(std::move(Atom));
    }
  }

  // Greedy DNF set cover: repeatedly build one conjunction that covers some
  // uncovered positive and excludes every negative.
  const size_t NumPos = Data.Pos.size();
  std::vector<bool> Covered(NumPos, false);
  std::vector<std::vector<size_t>> Disjuncts; // atom indices per conjunction
  for (;;) {
    size_t Seed = NumPos;
    for (size_t I = 0; I < NumPos; ++I)
      if (!Covered[I]) {
        Seed = I;
        break;
      }
    if (Seed == NumPos)
      break; // all positives covered

    // Atoms true at the seed; negatives still passing the conjunction.
    std::vector<size_t> Conj;
    std::vector<bool> NegAlive(Data.Neg.size(), true);
    size_t AliveCount = Data.Neg.size();
    while (AliveCount > 0) {
      // Pick the atom true at the seed that kills the most live negatives.
      size_t Best = Atoms.size();
      size_t BestKills = 0;
      for (size_t A = 0; A < Atoms.size(); ++A) {
        if (!Atoms[A].Truth[Seed])
          continue;
        size_t Kills = 0;
        for (size_t N = 0; N < Data.Neg.size(); ++N)
          if (NegAlive[N] && !Atoms[A].Truth[NumPos + N])
            ++Kills;
        if (Kills > BestKills) {
          BestKills = Kills;
          Best = A;
        }
      }
      if (Best == Atoms.size())
        return Result; // hypothesis space too weak: fail (PIE would widen)
      Conj.push_back(Best);
      for (size_t N = 0; N < Data.Neg.size(); ++N)
        if (NegAlive[N] && !Atoms[Best].Truth[NumPos + N]) {
          NegAlive[N] = false;
          --AliveCount;
        }
    }
    // Mark the positives this conjunction covers.
    for (size_t I = 0; I < NumPos; ++I) {
      if (Covered[I])
        continue;
      bool All = true;
      for (size_t A : Conj)
        All &= Atoms[A].Truth[I];
      Covered[I] = Covered[I] || All;
    }
    Disjuncts.push_back(std::move(Conj));
  }

  // Build the formula.
  std::vector<const Term *> Ors;
  for (const std::vector<size_t> &Conj : Disjuncts) {
    std::vector<const Term *> Ands;
    for (size_t A : Conj) {
      std::vector<const Term *> Parts;
      for (size_t I = 0; I < Dim; ++I)
        if (Atoms[A].Dir[I] != 0)
          Parts.push_back(TM.mkMul(Rational(Atoms[A].Dir[I]), Vars[I]));
      Ands.push_back(
          TM.mkLe(TM.mkAdd(std::move(Parts)), TM.mkIntConst(Atoms[A].Threshold)));
    }
    Ors.push_back(TM.mkAnd(std::move(Ands)));
  }
  Result.Ok = true;
  Result.Formula = TM.mkOr(std::move(Ors));
  return Result;
}

solver::LearnerFn baselines::makeEnumLearner(EnumLearnerOptions Opts) {
  return [Opts](TermManager &TM, const std::vector<const Term *> &Vars,
                const Dataset &Data, uint64_t) {
    return enumLearn(TM, Vars, Data, Opts);
  };
}

solver::DataDrivenOptions baselines::makeEnumSolverOptions(double Timeout) {
  solver::DataDrivenOptions Opts;
  Opts.Limits.WallSeconds = Timeout;
  Opts.Learner = makeEnumLearner();
  Opts.Name = "pie-enum";
  return Opts;
}
