//===- baselines/TemplateLearner.cpp - DIG-style template learner ---------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/TemplateLearner.h"

#include <cassert>

using namespace la;
using namespace la::baselines;
using namespace la::ml;

std::vector<std::vector<Rational>>
baselines::sampleNullspace(const std::vector<Sample> &Samples, size_t Dim) {
  // Rows: one per sample, columns: Dim coefficients + 1 for the bias.
  const size_t Cols = Dim + 1;
  std::vector<std::vector<Rational>> M;
  for (const Sample &S : Samples) {
    std::vector<Rational> Row;
    for (const Rational &V : S)
      Row.push_back(V);
    Row.push_back(Rational(1));
    M.push_back(std::move(Row));
  }

  // Gaussian elimination to reduced row-echelon form (exact rationals).
  std::vector<int> PivotOfCol(Cols, -1);
  size_t Rank = 0;
  for (size_t Col = 0; Col < Cols && Rank < M.size(); ++Col) {
    size_t Pivot = Rank;
    while (Pivot < M.size() && M[Pivot][Col].isZero())
      ++Pivot;
    if (Pivot == M.size())
      continue;
    std::swap(M[Rank], M[Pivot]);
    Rational Inv = M[Rank][Col].inverse();
    for (Rational &V : M[Rank])
      V *= Inv;
    for (size_t R = 0; R < M.size(); ++R) {
      if (R == Rank || M[R][Col].isZero())
        continue;
      Rational F = M[R][Col];
      for (size_t C2 = 0; C2 < Cols; ++C2)
        M[R][C2] -= F * M[Rank][C2];
    }
    PivotOfCol[Col] = static_cast<int>(Rank);
    ++Rank;
  }

  // Free columns induce nullspace basis vectors.
  std::vector<std::vector<Rational>> Basis;
  for (size_t Free = 0; Free < Cols; ++Free) {
    if (PivotOfCol[Free] >= 0)
      continue;
    std::vector<Rational> V(Cols, Rational(0));
    V[Free] = Rational(1);
    for (size_t Col = 0; Col < Cols; ++Col) {
      if (PivotOfCol[Col] < 0)
        continue;
      V[Col] = -M[PivotOfCol[Col]][Free];
    }
    Basis.push_back(std::move(V));
  }
  return Basis;
}

LearnResult baselines::templateLearn(TermManager &TM,
                                     const std::vector<const Term *> &Vars,
                                     const Dataset &Data) {
  LearnResult Result;
  if (Data.Neg.empty()) {
    Result.Ok = true;
    Result.Formula = TM.mkTrue();
    return Result;
  }
  if (Data.Pos.empty()) {
    Result.Ok = true;
    Result.Formula = TM.mkFalse();
    return Result;
  }

  const size_t Dim = Data.Dim;
  std::vector<const Term *> Conjuncts;

  // Template equations: exact nullspace of the positive samples, scaled to
  // integer coefficients.
  for (std::vector<Rational> W : sampleNullspace(Data.Pos, Dim)) {
    BigInt Lcm(1);
    for (const Rational &C : W) {
      const BigInt &D = C.denominator();
      Lcm = Lcm / BigInt::gcd(Lcm, D) * D;
    }
    for (Rational &C : W)
      C *= Rational(Lcm);
    std::vector<const Term *> Parts;
    for (size_t I = 0; I < Dim; ++I)
      if (!W[I].isZero())
        Parts.push_back(TM.mkMul(W[I], Vars[I]));
    if (Parts.empty())
      continue; // 0 = -b has no variables; samples would contradict it
    const Term *Lhs = TM.mkAdd(std::move(Parts));
    Conjuncts.push_back(TM.mkEq(Lhs, TM.mkNeg(TM.mkIntConst(W[Dim]))));
  }

  // Octagonal bounds: dir . v <= max over positives, for all octagon dirs.
  std::vector<std::vector<int>> Dirs;
  for (size_t I = 0; I < Dim; ++I)
    for (int SI : {1, -1}) {
      std::vector<int> D(Dim, 0);
      D[I] = SI;
      Dirs.push_back(D);
      for (size_t J = I + 1; J < Dim; ++J)
        for (int SJ : {1, -1}) {
          std::vector<int> D2(Dim, 0);
          D2[I] = SI;
          D2[J] = SJ;
          Dirs.push_back(D2);
        }
    }
  for (const std::vector<int> &Dir : Dirs) {
    std::optional<Rational> Max;
    for (const Sample &S : Data.Pos) {
      Rational V;
      for (size_t I = 0; I < Dim; ++I)
        if (Dir[I] != 0)
          V += Rational(Dir[I]) * S[I];
      if (!Max || V > *Max)
        Max = V;
    }
    std::vector<const Term *> Parts;
    for (size_t I = 0; I < Dim; ++I)
      if (Dir[I] != 0)
        Parts.push_back(TM.mkMul(Rational(Dir[I]), Vars[I]));
    Conjuncts.push_back(TM.mkLe(TM.mkAdd(std::move(Parts)),
                                TM.mkIntConst(*Max)));
  }

  const Term *Candidate = TM.mkAnd(std::move(Conjuncts));

  // The conjunction holds on every positive by construction; it is a valid
  // hypothesis only if it also excludes every negative (Lemma 3.1). DIG has
  // no disjunction to fall back to, so otherwise the learner fails.
  for (const Sample &S : Data.Neg) {
    std::unordered_map<const Term *, Rational> Asg;
    for (size_t I = 0; I < Dim; ++I)
      Asg.emplace(Vars[I], S[I]);
    if (evalFormula(Candidate, Asg))
      return Result; // not separable conjunctively
  }
  Result.Ok = true;
  Result.Formula = Candidate;
  return Result;
}

solver::LearnerFn baselines::makeTemplateLearner() {
  return [](TermManager &TM, const std::vector<const Term *> &Vars,
            const Dataset &Data, uint64_t) {
    return templateLearn(TM, Vars, Data);
  };
}

solver::DataDrivenOptions baselines::makeTemplateSolverOptions(double Timeout) {
  solver::DataDrivenOptions Opts;
  Opts.Limits.WallSeconds = Timeout;
  Opts.Learner = makeTemplateLearner();
  Opts.Name = "dig-template";
  return Opts;
}
