//===- baselines/EnumLearner.h - PIE-style enumerative learner --*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A syntax-guided, enumeration-based learner standing in for PIE [29] in
/// the Fig. 8(a) comparison. Instead of learning feature predicates with
/// linear classification, it enumerates a hypothesis space of octagonal
/// atoms (+-x, +-x +- y compared against constants drawn from the data) and
/// learns boolean structure by greedy set cover, exactly the
/// enumerate-then-combine loop of syntax-guided data-driven tools. The
/// enumeration cost grows quadratically with dimension, which is what makes
/// it fall behind on the paper's high-dimensional benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef LA_BASELINES_ENUMLEARNER_H
#define LA_BASELINES_ENUMLEARNER_H

#include "solver/DataDrivenSolver.h"

namespace la::baselines {

/// Options for the enumerative learner.
struct EnumLearnerOptions {
  /// Also enumerate 2x +- y style slopes (widens the space, slows search).
  bool WideSlopes = false;
  /// Cap on enumerated atoms per call.
  size_t MaxAtoms = 50000;
};

/// One invocation of the enumerative learner (PIE's feature-learning core).
ml::LearnResult enumLearn(TermManager &TM,
                          const std::vector<const Term *> &Vars,
                          const ml::Dataset &Data,
                          const EnumLearnerOptions &Opts);

/// Adapts the learner to the data-driven CEGAR loop.
solver::LearnerFn makeEnumLearner(EnumLearnerOptions Opts = {});

/// A ready-made "PIE" solver: Algorithm 3 with the enumerative learner.
solver::DataDrivenOptions makeEnumSolverOptions(double TimeoutSeconds);

} // namespace la::baselines

#endif // LA_BASELINES_ENUMLEARNER_H
