//===- baselines/PdrSolver.cpp - GPDR/Spacer-style CHC solver -------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/PdrSolver.h"

#include "analysis/InlinePass.h"
#include "support/Timer.h"

#include <cassert>
#include <functional>
#include <map>

using namespace la;
using namespace la::baselines;
using namespace la::chc;
using smt::SmtResult;
using smt::SmtSolver;

namespace {

/// A ground fact: predicate index + concrete argument values.
using Point = std::vector<Rational>;

std::string pointKey(size_t PredIdx, const Point &P) {
  std::string Key = std::to_string(PredIdx) + ":";
  for (const Rational &V : P)
    Key += V.toString() + ",";
  return Key;
}

class Pdr {
public:
  Pdr(const ChcSystem &System, const PdrOptions &Opts)
      : System(System), TM(System.termManager()), Opts(Opts),
        Clock(Opts.Limits.WallSeconds), Result(TM) {
    Lemmas.resize(System.predicates().size());
  }

  ChcSolverResult run() {
    Timer Total;
    ChcResult Status = mainLoop();
    Result.Status = Status;
    Result.Stats.Seconds = Total.elapsedSeconds();
    if (Status == ChcResult::Sat)
      exportInterpretation();
    if (Status == ChcResult::Unsat)
      exportCounterexample();
    return Result;
  }

private:
  struct Lemma {
    const Term *Formula; ///< over the predicate's parameters
    size_t Level;        ///< holds in frames 0..Level
  };

  struct Derivation {
    size_t ClauseIndex = 0;
    Point Args;
    size_t PredIdx = 0;
    std::vector<std::string> Children; ///< keys of child facts
  };

  enum class BlockResult { Blocked, Reachable, Budget };

  bool outOfBudget() {
    return Clock.expired() || isCancelled(Opts.Cancel) ||
           (Opts.Limits.MaxIterations &&
            Obligations >= Opts.Limits.MaxIterations);
  }

  /// F_k(p): conjunction of lemmas alive at level k (k < 0 yields false).
  const Term *frameFormula(const Predicate *P, int K) const {
    if (K < 0)
      return TM.mkFalse();
    std::vector<const Term *> Parts;
    for (const Lemma &L : Lemmas[P->Index])
      if (L.Level >= static_cast<size_t>(K))
        Parts.push_back(L.Formula);
    return TM.mkAnd(std::move(Parts));
  }

  /// Interpretation view of frame K.
  Interpretation frameInterp(int K) const {
    Interpretation A(TM);
    for (const Predicate *P : System.predicates())
      A.set(P, frameFormula(P, K));
    return A;
  }

  /// Instantiates a frame formula at an application's argument terms.
  const Term *instantiate(const Predicate *P, int K,
                          const std::vector<const Term *> &Args) const {
    const Term *F = frameFormula(P, K);
    std::unordered_map<const Term *, const Term *> Map;
    for (size_t I = 0; I < Args.size(); ++I)
      Map.emplace(P->Params[I], Args[I]);
    return TM.substitute(F, Map);
  }

  /// Conjunction pinning \p Args to \p Values.
  const Term *pin(const std::vector<const Term *> &Args, const Point &Values) {
    std::vector<const Term *> Parts;
    for (size_t I = 0; I < Args.size(); ++I)
      Parts.push_back(TM.mkEq(Args[I], TM.mkIntConst(Values[I])));
    return TM.mkAnd(std::move(Parts));
  }

  /// One SMT query; returns the status and (on Sat) the model.
  SmtResult query(const Term *F,
                  std::unordered_map<const Term *, Rational> *Model) {
    SmtSolver Solver(TM, Opts.Smt);
    Solver.assertFormula(F);
    SmtResult R = Solver.check();
    ++Result.Stats.SmtQueries;
    if (R == SmtResult::Sat && Model)
      *Model = Solver.model();
    return R;
  }

  Point evalArgs(const PredApp &App,
                 const std::unordered_map<const Term *, Rational> &Model) {
    Point P;
    for (const Term *Arg : App.Args)
      P.push_back(evalWithDefaults(Arg, Model));
    ++Result.Stats.Samples;
    return P;
  }

  /// Is the cube (over P's parameters) excluded by every clause with head P
  /// relative to frame K-1 (with ¬cube strengthening recursive bodies)?
  bool cubeBlockedEverywhere(const Predicate *P, const Term *Cube, int K,
                             bool &Unknown) {
    for (size_t CI : System.clausesWithHead(P)) {
      const HornClause &C = System.clauses()[CI];
      std::vector<const Term *> Parts{C.Constraint};
      for (const PredApp &App : C.Body) {
        const Term *F = instantiate(App.Pred, K - 1, App.Args);
        if (App.Pred == P) {
          // Relative induction: assume the cube is already excluded below.
          std::unordered_map<const Term *, const Term *> Map;
          for (size_t I = 0; I < App.Args.size(); ++I)
            Map.emplace(P->Params[I], App.Args[I]);
          F = TM.mkAnd(F, TM.mkNot(TM.substitute(Cube, Map)));
        }
        Parts.push_back(F);
      }
      // Cube on the head arguments.
      std::unordered_map<const Term *, const Term *> Map;
      for (size_t I = 0; I < C.HeadPred->Args.size(); ++I)
        Map.emplace(P->Params[I], C.HeadPred->Args[I]);
      Parts.push_back(TM.substitute(Cube, Map));
      switch (query(TM.mkAnd(std::move(Parts)), nullptr)) {
      case SmtResult::Unsat:
        continue;
      case SmtResult::Sat:
        return false;
      case SmtResult::Unknown:
        Unknown = true;
        return false;
      }
    }
    return true;
  }

  /// Inductive generalisation: start from the point cube and relax each
  /// coordinate (drop, or keep only one bound).
  const Term *generalizeCube(const Predicate *P, const Point &Pt, int K) {
    size_t N = P->arity();
    // Kept[i]: 0 = equality, 1 = only <=, 2 = only >=, 3 = dropped.
    std::vector<int> Kept(N, 0);
    auto BuildCube = [&]() {
      std::vector<const Term *> Parts;
      for (size_t I = 0; I < N; ++I) {
        const Term *C = TM.mkIntConst(Pt[I]);
        switch (Kept[I]) {
        case 0:
          Parts.push_back(TM.mkEq(P->Params[I], C));
          break;
        case 1:
          Parts.push_back(TM.mkLe(P->Params[I], C));
          break;
        case 2:
          Parts.push_back(TM.mkGe(P->Params[I], C));
          break;
        default:
          break;
        }
      }
      return TM.mkAnd(std::move(Parts));
    };
    for (size_t I = 0; I < N; ++I) {
      if (outOfBudget())
        break;
      bool Unknown = false;
      for (int Try : {3, 1, 2}) {
        int Saved = Kept[I];
        Kept[I] = Try;
        const Term *Cube = BuildCube();
        if (Cube->isTrue()) { // dropping everything is never a lemma
          Kept[I] = Saved;
          continue;
        }
        if (cubeBlockedEverywhere(P, Cube, K, Unknown))
          break;
        Kept[I] = Saved;
        if (Unknown)
          break;
      }
      if (Unknown)
        break;
    }
    return BuildCube();
  }

  void addLemma(const Predicate *P, const Term *Cube, size_t Level) {
    Lemmas[P->Index].push_back(Lemma{TM.mkNot(Cube), Level});
  }

  /// Records that \p Pt is concretely derivable via clause \p CI from the
  /// given children.
  void recordReachable(const Predicate *P, const Point &Pt, size_t CI,
                       std::vector<std::string> Children) {
    std::string Key = pointKey(P->Index, Pt);
    if (Reach.count(Key))
      return;
    Derivation D;
    D.ClauseIndex = CI;
    D.Args = Pt;
    D.PredIdx = P->Index;
    D.Children = std::move(Children);
    Reach.emplace(std::move(Key), std::move(D));
  }

  bool isCachedReachable(const Predicate *P, const Point &Pt) const {
    return Opts.CacheReachable && Reach.count(pointKey(P->Index, Pt));
  }

  /// Tries to exclude the fact P(Pt) from frame K; discovers concrete
  /// reachability as a side effect (GPDR-style model-based search).
  BlockResult block(const Predicate *P, const Point &Pt, int K) {
    ++Obligations;
    ++Result.Stats.Iterations;
    if (outOfBudget())
      return BlockResult::Budget;
    if (isCachedReachable(P, Pt))
      return BlockResult::Reachable;

    for (;;) {
      if (outOfBudget())
        return BlockResult::Budget;
      // Find a clause that can produce the point from frame K-1.
      bool AnySat = false;
      for (size_t CI : System.clausesWithHead(P)) {
        const HornClause &C = System.clauses()[CI];
        std::vector<const Term *> Parts{C.Constraint,
                                        pin(C.HeadPred->Args, Pt)};
        for (const PredApp &App : C.Body)
          Parts.push_back(instantiate(App.Pred, K - 1, App.Args));
        std::unordered_map<const Term *, Rational> Model;
        SmtResult R = query(TM.mkAnd(std::move(Parts)), &Model);
        if (R == SmtResult::Unknown)
          return BlockResult::Budget;
        if (R == SmtResult::Unsat)
          continue;
        AnySat = true;
        if (C.Body.empty()) {
          // Directly derivable from a fact clause.
          recordReachable(P, Pt, CI, {});
          return BlockResult::Reachable;
        }
        // Recursive obligations for each body point.
        bool AllReachable = true;
        bool Progress = false;
        std::vector<std::string> ChildKeys;
        for (const PredApp &App : C.Body) {
          Point Child = evalArgs(App, Model);
          ChildKeys.push_back(pointKey(App.Pred->Index, Child));
          if (isCachedReachable(App.Pred, Child))
            continue;
          switch (block(App.Pred, Child, K - 1)) {
          case BlockResult::Reachable:
            continue;
          case BlockResult::Blocked:
            AllReachable = false;
            Progress = true;
            break;
          case BlockResult::Budget:
            return BlockResult::Budget;
          }
          break;
        }
        if (AllReachable) {
          recordReachable(P, Pt, CI, std::move(ChildKeys));
          return BlockResult::Reachable;
        }
        if (Progress)
          break; // frame K-1 is stronger now; retry this point
        // Child neither reachable nor blocked can't happen.
      }
      if (!AnySat) {
        // Every producing clause is excluded: learn a generalised lemma.
        addLemma(P, generalizeCube(P, Pt, K), static_cast<size_t>(K));
        return BlockResult::Blocked;
      }
    }
  }

  /// Pushes lemmas to higher frames; returns the fixpoint level if found.
  std::optional<int> propagate(int N) {
    for (int L = 0; L < N; ++L) {
      for (const Predicate *P : System.predicates()) {
        for (Lemma &Lem : Lemmas[P->Index]) {
          if (Lem.Level != static_cast<size_t>(L))
            continue;
          bool Unknown = false;
          // The lemma's cube is ¬formula.
          const Term *Cube = TM.mkNot(Lem.Formula);
          if (cubeBlockedEverywhere(P, Cube, L + 1, Unknown))
            Lem.Level = L + 1;
          if (outOfBudget())
            return std::nullopt;
        }
      }
      // Fixpoint: no lemma lives exactly at level L => F_L == F_{L+1}.
      bool AnyAtL = false;
      for (const Predicate *P : System.predicates())
        for (const Lemma &Lem : Lemmas[P->Index])
          AnyAtL |= Lem.Level == static_cast<size_t>(L);
      if (!AnyAtL)
        return L + 1;
    }
    return std::nullopt;
  }

  ChcResult mainLoop() {
    for (int N = 0; N <= static_cast<int>(Opts.MaxLevel); ++N) {
      // Block every query violation at this level.
      for (;;) {
        if (outOfBudget())
          return ChcResult::Unknown;
        bool AnyViolation = false;
        for (size_t CI = 0; CI < System.clauses().size(); ++CI) {
          const HornClause &C = System.clauses()[CI];
          if (!C.isQuery())
            continue;
          std::vector<const Term *> Parts{C.Constraint,
                                          TM.mkNot(C.HeadFormula)};
          for (const PredApp &App : C.Body)
            Parts.push_back(instantiate(App.Pred, N, App.Args));
          std::unordered_map<const Term *, Rational> Model;
          SmtResult R = query(TM.mkAnd(std::move(Parts)), &Model);
          if (R == SmtResult::Unknown)
            return ChcResult::Unknown;
          if (R == SmtResult::Unsat)
            continue;
          AnyViolation = true;
          // Check / refute each body point.
          bool AllReachable = true;
          std::vector<std::string> Keys;
          for (const PredApp &App : C.Body) {
            Point Pt = evalArgs(App, Model);
            Keys.push_back(pointKey(App.Pred->Index, Pt));
            if (isCachedReachable(App.Pred, Pt))
              continue;
            BlockResult BR = block(App.Pred, Pt, N);
            if (BR == BlockResult::Budget)
              return ChcResult::Unknown;
            if (BR == BlockResult::Blocked) {
              AllReachable = false;
              break;
            }
          }
          if (AllReachable) {
            CexQueryClause = CI;
            CexQueryKeys = std::move(Keys);
            return ChcResult::Unsat;
          }
          break; // re-scan queries with the strengthened frame
        }
        if (!AnyViolation)
          break;
      }
      // Push lemmas and look for a fixpoint frame.
      std::optional<int> Fixpoint = propagate(N);
      if (outOfBudget())
        return ChcResult::Unknown;
      if (Fixpoint) {
        SolutionLevel = *Fixpoint;
        return ChcResult::Sat;
      }
    }
    return ChcResult::Unknown;
  }

  void exportInterpretation() { Result.Interp = frameInterp(SolutionLevel); }

  void exportCounterexample() {
    Counterexample Cex;
    std::map<std::string, size_t> Emitted;
    std::function<size_t(const std::string &)> Emit =
        [&](const std::string &Key) -> size_t {
      auto Hit = Emitted.find(Key);
      if (Hit != Emitted.end())
        return Hit->second;
      const Derivation &D = Reach.at(Key);
      Counterexample::Node Node;
      Node.Pred = System.predicates()[D.PredIdx];
      Node.Args = D.Args;
      Node.ClauseIndex = D.ClauseIndex;
      for (const std::string &Child : D.Children)
        Node.Children.push_back(Emit(Child));
      Cex.Nodes.push_back(std::move(Node));
      Emitted.emplace(Key, Cex.Nodes.size() - 1);
      return Cex.Nodes.size() - 1;
    };
    Cex.QueryClauseIndex = CexQueryClause;
    for (const std::string &Key : CexQueryKeys)
      Cex.QueryChildren.push_back(Emit(Key));
    Result.Cex = std::move(Cex);
  }

  const ChcSystem &System;
  TermManager &TM;
  const PdrOptions &Opts;
  Deadline Clock;
  ChcSolverResult Result;
  std::vector<std::vector<Lemma>> Lemmas;
  std::map<std::string, Derivation> Reach;
  size_t Obligations = 0;
  int SolutionLevel = 0;
  size_t CexQueryClause = 0;
  std::vector<std::string> CexQueryKeys;
};

} // namespace

ChcSolverResult PdrSolver::solve(const ChcSystem &System) {
  // Every SMT query the frames issue polls the cancellation token.
  if (Opts.Cancel && !Opts.Smt.Cancel)
    Opts.Smt.Cancel = Opts.Cancel;
  // Mirror Spacer/GPDR running on Z3-preprocessed Horn: collapse
  // single-definition predicates before the frames ever see the system,
  // then translate witnesses back so callers always get answers over the
  // input predicates.
  analysis::InlineResult Inl = analysis::inlineSystem(System, Opts.Smt);
  if (!Inl.System)
    return Pdr(System, Opts).run();
  ChcSolverResult R = Pdr(*Inl.System, Opts).run();
  if (R.Status == ChcResult::Sat)
    R.Interp =
        analysis::backTranslateModel(System, *Inl.System, *Inl.Map, R.Interp);
  else if (R.Status == ChcResult::Unsat && R.Cex)
    R.Cex = analysis::backTranslateCex(System, *Inl.System, *Inl.Map, *R.Cex,
                                       Opts.Smt);
  return R;
}
