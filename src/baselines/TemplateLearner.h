//===- baselines/TemplateLearner.h - DIG-style template learner -*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A template-equation learner standing in for DIG [27] in the Fig. 8(b)
/// comparison. From the positive samples it infers
///   * linear equations (the nullspace of the augmented sample matrix,
///     found by exact Gaussian elimination -- DIG's "template equations"),
///   * octagonal bounds (min/max of +-x, +-x +- y over the positives).
/// The result is always a conjunction; when the samples require disjunctive
/// structure, no conjunctive candidate separates them and the learner fails,
/// which is exactly DIG's limitation the paper highlights.
///
//===----------------------------------------------------------------------===//

#ifndef LA_BASELINES_TEMPLATELEARNER_H
#define LA_BASELINES_TEMPLATELEARNER_H

#include "solver/DataDrivenSolver.h"

namespace la::baselines {

/// One invocation of the template learner.
ml::LearnResult templateLearn(TermManager &TM,
                              const std::vector<const Term *> &Vars,
                              const ml::Dataset &Data);

/// Adapts the learner to the data-driven CEGAR loop.
solver::LearnerFn makeTemplateLearner();

/// A ready-made "DIG" solver: Algorithm 3 with the template learner.
solver::DataDrivenOptions makeTemplateSolverOptions(double TimeoutSeconds);

/// Exact nullspace of the matrix whose rows are (sample, 1); each returned
/// vector (w, b) satisfies w . s + b = 0 for every sample. Exposed for
/// testing.
std::vector<std::vector<Rational>>
sampleNullspace(const std::vector<ml::Sample> &Samples, size_t Dim);

} // namespace la::baselines

#endif // LA_BASELINES_TEMPLATELEARNER_H
