//===- baselines/UnwindSolver.h - Unwinding + interpolation -----*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An interpolation-based CHC solver standing in for Duality [24, 25] and
/// UAutomizer [16] in the paper's evaluation (Fig. 8(d), Table 1). It
/// combines
///   * bounded unwinding (BMC) of the clause system into recursion-free SMT
///     formulas, which detects unsatisfiability with a genuine derivation
///     tree, and
///   * trace abstraction for *linear* clause systems: error paths are
///     enumerated, refuted over the rationals, and generalised by sequence
///     interpolants computed from the simplex's Farkas certificates; the
///     disjunction of interpolants at each cut point forms the candidate
///     interpretation, exactly the refinement scheme of interpolation-based
///     verifiers.
///
/// Non-linear systems (recursion with multiple body predicates) only get
/// the BMC half, mirroring the relative weakness of this solver family on
/// the paper's recursive categories.
///
//===----------------------------------------------------------------------===//

#ifndef LA_BASELINES_UNWINDSOLVER_H
#define LA_BASELINES_UNWINDSOLVER_H

#include "chc/SolverTypes.h"
#include "smt/SmtSolver.h"

namespace la::baselines {

/// Configuration of the unwinding baseline.
struct UnwindOptions {
  /// Duality-style summary reuse: before refining with a path, check whether
  /// the current interpolant summaries already cover it. Off = UAutomizer-
  /// style path-by-path refinement.
  bool SummaryReuse = true;
  /// Wall clock plus refinement-step budget (`MaxIterations` 0 = the
  /// structural caps below are the only limits).
  Budget Limits;
  /// Cooperative cancellation, polled at every BMC/refinement loop head.
  std::shared_ptr<const CancellationToken> Cancel;
  size_t MaxBmcDepth = 24;
  size_t MaxBmcNodes = 20000;
  size_t MaxPathLength = 64;
  size_t MaxPathsPerLength = 512;
  size_t MaxDnfAlternatives = 64;
  smt::SmtSolver::Options Smt;
};

/// Unwinding/interpolation baseline solver.
class UnwindSolver : public chc::ChcSolverInterface {
public:
  explicit UnwindSolver(UnwindOptions Opts = {}) : Opts(Opts) {}

  chc::ChcSolverResult solve(const chc::ChcSystem &System) override;
  std::string name() const override {
    return Opts.SummaryReuse ? "duality" : "interpolation";
  }

private:
  UnwindOptions Opts;
};

} // namespace la::baselines

#endif // LA_BASELINES_UNWINDSOLVER_H
