//===- baselines/PdrSolver.h - GPDR/Spacer-style CHC solver -----*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An IC3/PDR-style CHC solver standing in for GPDR [17] and Spacer [19] in
/// the paper's evaluation (Fig. 8(c), Table 1). It maintains per-predicate
/// frames F_0 <= F_1 <= ... of lemma conjunctions over-approximating the
/// facts derivable with bounded-height derivations, blocks model-based
/// proof obligations backwards with inductive generalisation (literal
/// dropping and bound relaxation), and pushes lemmas forward until either a
/// frame becomes a solution or a concrete derivation refutes the system.
///
/// Non-linear clause bodies (recursion) are handled with concrete
/// "must-reach" points, in the spirit of GPDR's model-based derivations.
/// The `spacer` configuration additionally caches reachable facts globally
/// (Spacer's under-approximations); `gpdr` does not.
///
//===----------------------------------------------------------------------===//

#ifndef LA_BASELINES_PDRSOLVER_H
#define LA_BASELINES_PDRSOLVER_H

#include "chc/SolverTypes.h"
#include "smt/SmtSolver.h"

namespace la::baselines {

/// Configuration of the PDR baseline.
struct PdrOptions {
  /// Cache concretely reachable facts across queries (Spacer-style).
  bool CacheReachable = true;
  /// Wall clock plus proof-obligation budget (`MaxIterations` caps the
  /// obligations blocked; 0 falls back to the 100000 default).
  Budget Limits{0, 100000};
  size_t MaxLevel = 64;
  smt::SmtSolver::Options Smt;
  /// Cooperative cancellation, polled per obligation and per SMT check.
  std::shared_ptr<const CancellationToken> Cancel;
};

/// PDR-family baseline solver.
class PdrSolver : public chc::ChcSolverInterface {
public:
  explicit PdrSolver(PdrOptions Opts = {}) : Opts(Opts) {}

  chc::ChcSolverResult solve(const chc::ChcSystem &System) override;
  std::string name() const override {
    return Opts.CacheReachable ? "spacer" : "gpdr";
  }

private:
  PdrOptions Opts;
};

} // namespace la::baselines

#endif // LA_BASELINES_PDRSOLVER_H
