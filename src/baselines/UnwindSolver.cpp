//===- baselines/UnwindSolver.cpp - Unwinding + interpolation -------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/UnwindSolver.h"

#include "analysis/InlinePass.h"
#include "support/Timer.h"

#include <cassert>
#include <deque>
#include <functional>
#include <map>

using namespace la;
using namespace la::baselines;
using namespace la::chc;
using smt::SmtResult;
using smt::SmtSolver;

namespace {

//===----------------------------------------------------------------------===//
// DNF expansion of predicate-free constraints into linear-atom conjunctions
//===----------------------------------------------------------------------===//

/// Expands \p F into a disjunction of LinearAtom conjunctions, up to a cap.
/// Returns false when F contains `mod` or the expansion exceeds the cap.
bool dnfExpand(const Term *F, bool Negated, size_t Cap,
               std::vector<std::vector<LinearAtom>> &Out) {
  switch (F->kind()) {
  case TermKind::BoolConst: {
    bool Value = F->boolValue() != Negated;
    if (Value)
      Out.push_back({});
    return true; // `false` yields an empty disjunction
  }
  case TermKind::Not:
    return dnfExpand(F->operand(0), !Negated, Cap, Out);
  case TermKind::And:
  case TermKind::Or: {
    bool IsProduct = (F->kind() == TermKind::And) != Negated;
    if (!IsProduct) {
      // Union of alternatives.
      for (const Term *Op : F->operands()) {
        if (!dnfExpand(Op, Negated, Cap, Out))
          return false;
        if (Out.size() > Cap)
          return false;
      }
      return true;
    }
    // Cartesian product of alternatives.
    std::vector<std::vector<LinearAtom>> Acc{{}};
    for (const Term *Op : F->operands()) {
      std::vector<std::vector<LinearAtom>> Next;
      std::vector<std::vector<LinearAtom>> OpAlts;
      if (!dnfExpand(Op, Negated, Cap, OpAlts))
        return false;
      for (const auto &Left : Acc)
        for (const auto &Right : OpAlts) {
          Next.push_back(Left);
          Next.back().insert(Next.back().end(), Right.begin(), Right.end());
          if (Next.size() > Cap)
            return false;
        }
      Acc = std::move(Next);
    }
    Out.insert(Out.end(), Acc.begin(), Acc.end());
    return Out.size() <= Cap;
  }
  case TermKind::Le:
  case TermKind::Lt:
  case TermKind::Eq: {
    std::optional<LinearAtom> Atom = LinearAtom::fromTerm(F);
    if (!Atom)
      return false; // mod or other non-linear structure
    if (!Negated) {
      Out.push_back({*Atom});
      return true;
    }
    if (Atom->Rel == LinRel::Eq) {
      // not (e = 0): e < 0 or -e < 0.
      LinearAtom Less;
      Less.Expr = Atom->Expr;
      Less.Rel = LinRel::Lt;
      LinearAtom Greater;
      Greater.Expr = Atom->Expr.scaled(Rational(-1));
      Greater.Rel = LinRel::Lt;
      Out.push_back({Less});
      Out.push_back({Greater});
      return Out.size() <= Cap;
    }
    Out.push_back({Atom->negated()});
    return true;
  }
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// The solver
//===----------------------------------------------------------------------===//

class Unwind {
public:
  Unwind(const ChcSystem &System, const UnwindOptions &Opts)
      : System(System), TM(System.termManager()), Opts(Opts),
        Clock(Opts.Limits.WallSeconds), Result(TM),
        Checker(System, Opts.Smt) {}

  ChcSolverResult run() {
    Timer Total;
    Result.Status = mainLoop();
    Result.Stats.Seconds = Total.elapsedSeconds();
    Result.Stats.Check = Checker.stats();
    return Result;
  }

private:
  /// A node of the BMC expansion.
  struct ExpNode {
    const Predicate *Pred = nullptr;
    std::vector<const Term *> Args; ///< argument value terms
    struct Alt {
      size_t ClauseIndex = 0;
      const Term *Formula = nullptr;
      std::vector<size_t> Children; ///< indices into Nodes
    };
    std::vector<Alt> Alts;
    const Term *Formula = nullptr; ///< Or over alternatives
  };

  bool outOfBudget() {
    return Clock.expired() || isCancelled(Opts.Cancel) ||
           (Opts.Limits.MaxIterations &&
            Result.Stats.Iterations >= Opts.Limits.MaxIterations);
  }

  const Term *freshCopy(const Term *T,
                        std::unordered_map<const Term *, const Term *> &Map) {
    for (const Term *V : TM.collectVars(T))
      if (!Map.count(V))
        Map.emplace(V, TM.mkFreshVar("u!" + V->name()));
    return TM.substitute(T, Map);
  }

  //===--------------------------------------------------------------------===//
  // BMC side
  //===--------------------------------------------------------------------===//

  /// Expands P(Args) into derivations of depth <= Depth; returns the node
  /// index, or nullopt when the node budget is exhausted.
  std::optional<size_t> expand(const Predicate *P,
                               const std::vector<const Term *> &Args,
                               size_t Depth) {
    if (Nodes.size() >= Opts.MaxBmcNodes)
      return std::nullopt;
    size_t Index = Nodes.size();
    Nodes.emplace_back();
    Nodes[Index].Pred = P;
    Nodes[Index].Args = Args;
    std::vector<const Term *> AltFormulas;
    for (size_t CI : System.clausesWithHead(P)) {
      const HornClause &C = System.clauses()[CI];
      if (Depth == 0 && !C.Body.empty())
        continue;
      std::unordered_map<const Term *, const Term *> Rename;
      std::vector<const Term *> Parts{freshCopy(C.Constraint, Rename)};
      for (size_t J = 0; J < Args.size(); ++J)
        Parts.push_back(
            TM.mkEq(freshCopy(C.HeadPred->Args[J], Rename), Args[J]));
      ExpNode::Alt Alt;
      Alt.ClauseIndex = CI;
      bool Ok = true;
      for (const PredApp &App : C.Body) {
        std::vector<const Term *> ChildArgs;
        for (const Term *Arg : App.Args)
          ChildArgs.push_back(freshCopy(Arg, Rename));
        std::optional<size_t> Child = expand(App.Pred, ChildArgs, Depth - 1);
        if (!Child) {
          Ok = false;
          break;
        }
        Alt.Children.push_back(*Child);
        Parts.push_back(Nodes[*Child].Formula);
      }
      if (!Ok)
        return std::nullopt;
      Alt.Formula = TM.mkAnd(std::move(Parts));
      AltFormulas.push_back(Alt.Formula);
      Nodes[Index].Alts.push_back(std::move(Alt));
    }
    Nodes[Index].Formula = TM.mkOr(std::move(AltFormulas));
    return Index;
  }

  /// Replays a satisfying model through the expansion into a refutation.
  size_t emitCexNode(size_t NodeIdx,
                     const std::unordered_map<const Term *, Rational> &Model,
                     Counterexample &Cex) {
    const ExpNode &Node = Nodes[NodeIdx];
    for (const ExpNode::Alt &Alt : Node.Alts) {
      if (evalWithDefaults(Alt.Formula, Model).isZero())
        continue;
      Counterexample::Node Out;
      Out.Pred = Node.Pred;
      for (const Term *Arg : Node.Args)
        Out.Args.push_back(evalWithDefaults(Arg, Model));
      Out.ClauseIndex = Alt.ClauseIndex;
      for (size_t Child : Alt.Children)
        Out.Children.push_back(emitCexNode(Child, Model, Cex));
      Cex.Nodes.push_back(std::move(Out));
      return Cex.Nodes.size() - 1;
    }
    assert(false && "model satisfies no alternative of a satisfied node");
    return 0;
  }

  /// One BMC round at the given depth; returns Unsat on refutation, Sat when
  /// every query is depth-bounded safe, Unknown on budget.
  ChcResult bmcRound(size_t Depth) {
    for (size_t CI = 0; CI < System.clauses().size(); ++CI) {
      const HornClause &C = System.clauses()[CI];
      if (!C.isQuery())
        continue;
      Nodes.clear();
      std::vector<const Term *> Parts{C.Constraint, TM.mkNot(C.HeadFormula)};
      std::vector<size_t> Roots;
      bool Overflow = false;
      for (const PredApp &App : C.Body) {
        std::optional<size_t> Root = expand(App.Pred, App.Args, Depth);
        if (!Root) {
          Overflow = true;
          break;
        }
        Roots.push_back(*Root);
        Parts.push_back(Nodes[*Root].Formula);
      }
      if (Overflow)
        return ChcResult::Unknown;
      SmtSolver Solver(TM, Opts.Smt);
      Solver.assertFormula(TM.mkAnd(std::move(Parts)));
      ++Result.Stats.SmtQueries;
      switch (Solver.check()) {
      case SmtResult::Unsat:
        continue;
      case SmtResult::Unknown:
        return ChcResult::Unknown;
      case SmtResult::Sat: {
        Counterexample Cex;
        Cex.QueryClauseIndex = CI;
        for (size_t Root : Roots)
          Cex.QueryChildren.push_back(emitCexNode(Root, Solver.model(), Cex));
        Result.Cex = std::move(Cex);
        return ChcResult::Unsat;
      }
      }
    }
    return ChcResult::Sat; // depth-bounded safe
  }

  //===--------------------------------------------------------------------===//
  // Interpolation side (linear systems only)
  //===--------------------------------------------------------------------===//

  bool isLinearSystem() const {
    for (const HornClause &C : System.clauses())
      if (C.Body.size() > 1)
        return false;
    return true;
  }

  /// A path: fact clause, then step clauses, ending at a query clause.
  using Path = std::vector<size_t>;

  /// Processes one error path: either records interpolants (infeasible) or
  /// reports a concrete refutation (feasible). Returns Unknown on failure
  /// to expand (mod etc.), Sat to continue, Unsat on refutation.
  ChcResult processPath(const Path &P) {
    // Build the atom sequence per step, over fresh cut variables.
    struct Step {
      std::vector<std::vector<LinearAtom>> ConstraintAlts;
      std::vector<LinearAtom> LinkAtoms; ///< cut-variable bindings
      const Predicate *HeadPred = nullptr;
      std::vector<const Term *> CutVars;
    };
    std::vector<Step> Steps;
    std::vector<const Term *> PrevCut; // cut vars of the previous head

    for (size_t Idx = 0; Idx < P.size(); ++Idx) {
      const HornClause &C = System.clauses()[P[Idx]];
      std::unordered_map<const Term *, const Term *> Rename;
      Step S;
      // Bind the body application to the previous cut variables.
      if (!C.Body.empty()) {
        const PredApp &App = C.Body[0];
        assert(!PrevCut.empty() && "path step without a previous cut");
        for (size_t J = 0; J < App.Args.size(); ++J) {
          const Term *Arg = freshCopy(App.Args[J], Rename);
          LinearAtom Eq;
          std::optional<LinearExpr> L = LinearExpr::fromTerm(Arg);
          std::optional<LinearExpr> R = LinearExpr::fromTerm(PrevCut[J]);
          if (!L || !R)
            return ChcResult::Unknown;
          Eq.Expr = *L - *R;
          Eq.Rel = LinRel::Eq;
          S.LinkAtoms.push_back(std::move(Eq));
        }
      }
      const Term *Constraint = freshCopy(C.Constraint, Rename);
      // The final (query) step also carries the negated property.
      if (C.isQuery())
        Constraint = TM.mkAnd(Constraint,
                              TM.mkNot(freshCopy(C.HeadFormula, Rename)));
      if (!dnfExpand(Constraint, false, Opts.MaxDnfAlternatives,
                     S.ConstraintAlts))
        return ChcResult::Unknown;
      // Fresh cut variables for the head predicate (none for the query).
      if (C.HeadPred) {
        S.HeadPred = C.HeadPred->Pred;
        for (size_t J = 0; J < C.HeadPred->Args.size(); ++J) {
          const Term *Cut = TM.mkFreshVar("cut");
          const Term *Arg = freshCopy(C.HeadPred->Args[J], Rename);
          LinearAtom Eq;
          std::optional<LinearExpr> L = LinearExpr::fromTerm(Arg);
          if (!L)
            return ChcResult::Unknown;
          LinearExpr CutExpr;
          CutExpr.addVar(Cut, Rational(1));
          Eq.Expr = *L - CutExpr;
          Eq.Rel = LinRel::Eq;
          S.LinkAtoms.push_back(std::move(Eq));
          S.CutVars.push_back(Cut);
        }
      }
      PrevCut = S.CutVars;
      Steps.push_back(std::move(S));
    }

    // Enumerate DNF combinations (capped).
    std::vector<size_t> Combo(Steps.size(), 0);
    size_t CombosTried = 0;
    for (;;) {
      if (outOfBudget() || ++CombosTried > Opts.MaxDnfAlternatives * 4)
        return ChcResult::Unknown;
      // Assemble the atom list with prefix boundaries per cut.
      std::vector<LinearAtom> Atoms;
      std::vector<size_t> CutBoundary; // #atoms belonging to steps 0..i
      bool Empty = false;
      for (size_t I = 0; I < Steps.size(); ++I) {
        const Step &S = Steps[I];
        if (S.ConstraintAlts.empty()) {
          Empty = true; // constraint is `false`: combo infeasible trivially
          break;
        }
        Atoms.insert(Atoms.end(), S.LinkAtoms.begin(), S.LinkAtoms.end());
        const std::vector<LinearAtom> &Alt = S.ConstraintAlts[Combo[I]];
        Atoms.insert(Atoms.end(), Alt.begin(), Alt.end());
        CutBoundary.push_back(Atoms.size());
      }
      if (!Empty) {
        smt::ConjunctionResult CR = smt::checkLinearConjunction(Atoms);
        ++Result.Stats.SmtQueries;
        if (CR.Sat) {
          // A rationally feasible error path: fall back to BMC, which will
          // confirm it over the integers (or reject it).
          return ChcResult::Sat;
        }
        // Farkas-based sequence interpolants at every cut.
        for (size_t I = 0; I + 1 < Steps.size(); ++I) {
          const Step &S = Steps[I];
          if (!S.HeadPred)
            continue;
          LinearExpr Sum;
          bool AnyStrict = false;
          for (size_t A = 0; A < CutBoundary[I]; ++A) {
            if (CR.FarkasCoeffs[A].isZero())
              continue;
            Sum = Sum + Atoms[A].Expr.scaled(CR.FarkasCoeffs[A]);
            AnyStrict |= Atoms[A].Rel == LinRel::Lt;
          }
          // The prefix combination mentions only cut variables; rename them
          // to the predicate parameters.
          LinearAtom Itp;
          Itp.Expr = Sum;
          Itp.Rel = AnyStrict ? LinRel::Lt : LinRel::Le;
          const Term *Formula = Itp.toTerm(TM);
          std::unordered_map<const Term *, const Term *> Map;
          for (size_t J = 0; J < S.CutVars.size(); ++J)
            Map.emplace(S.CutVars[J], S.HeadPred->Params[J]);
          Formula = TM.substitute(Formula, Map);
          addSummary(S.HeadPred, Formula);
        }
      }
      // Next combination.
      size_t Pos = 0;
      while (Pos < Steps.size()) {
        if (Steps[Pos].ConstraintAlts.empty())
          return ChcResult::Sat; // a false constraint: path dead entirely
        if (++Combo[Pos] < Steps[Pos].ConstraintAlts.size())
          break;
        Combo[Pos] = 0;
        ++Pos;
      }
      if (Pos == Steps.size())
        return ChcResult::Sat; // all combos processed
    }
  }

  void addSummary(const Predicate *P, const Term *Disjunct) {
    std::vector<const Term *> &Set = Summaries[P];
    for (const Term *Existing : Set)
      if (Existing == Disjunct)
        return;
    Set.push_back(Disjunct);
    ++SummariesAdded;
  }

  Interpretation currentInterpretation() const {
    Interpretation A(TM);
    for (const Predicate *P : System.predicates()) {
      auto It = Summaries.find(P);
      A.set(P, It == Summaries.end() ? TM.mkFalse()
                                     : TM.mkOr(It->second));
    }
    return A;
  }

  /// Abstract coverage check (Duality-style summary reuse): is the path's
  /// violation already excluded by the current summaries?
  bool pathCovered(const Path &P) {
    const HornClause &Query = System.clauses()[P.back()];
    Interpretation A = currentInterpretation();
    std::vector<const Term *> Parts{Query.Constraint,
                                    TM.mkNot(Query.HeadFormula)};
    for (const PredApp &App : Query.Body)
      Parts.push_back(A.instantiate(App));
    SmtSolver Solver(TM, Opts.Smt);
    Solver.assertFormula(TM.mkAnd(std::move(Parts)));
    ++Result.Stats.SmtQueries;
    return Solver.check() == SmtResult::Unsat;
  }

  /// Enumerates error paths in breadth-first order and refines summaries.
  ChcResult interpolationLoop() {
    // Paths to each predicate, grown breadth-first. Summary-reuse coverage
    // is adaptive: when a whole round is covered yet the candidate is still
    // not inductive, coverage skipping is disabled so longer paths can
    // contribute the missing interpolants.
    bool SkipCovered = Opts.SummaryReuse;
    std::map<const Predicate *, std::vector<Path>> PathsTo;
    for (size_t Len = 1; Len <= Opts.MaxPathLength; ++Len) {
      if (outOfBudget())
        return ChcResult::Unknown;
      std::map<const Predicate *, std::vector<Path>> Next;
      for (size_t CI = 0; CI < System.clauses().size(); ++CI) {
        const HornClause &C = System.clauses()[CI];
        if (C.isQuery())
          continue;
        if (C.Body.empty()) {
          if (Len == 1)
            Next[C.HeadPred->Pred].push_back({CI});
          continue;
        }
        for (const Path &Prefix : PathsTo[C.Body[0].Pred]) {
          if (Prefix.size() + 1 != Len)
            continue;
          if (Next[C.HeadPred->Pred].size() >= Opts.MaxPathsPerLength)
            break;
          Path Extended = Prefix;
          Extended.push_back(CI);
          Next[C.HeadPred->Pred].push_back(std::move(Extended));
        }
      }
      // Merge new paths in and process the error extensions.
      bool AnyNew = false;
      SummariesAdded = 0;
      for (auto &[Pred, NewPaths] : Next) {
        for (Path &P : NewPaths) {
          AnyNew = true;
          for (size_t CI = 0; CI < System.clauses().size(); ++CI) {
            const HornClause &C = System.clauses()[CI];
            if (!C.isQuery())
              continue;
            if (!C.Body.empty() && C.Body[0].Pred != Pred)
              continue;
            if (C.Body.empty())
              continue; // body-free queries were checked up front
            Path Error = P;
            Error.push_back(CI);
            if (outOfBudget())
              return ChcResult::Unknown;
            if (SkipCovered && pathCovered(Error))
              continue;
            ChcResult R = processPath(Error);
            if (R == ChcResult::Unsat || R == ChcResult::Unknown)
              return R;
          }
          PathsTo[Pred].push_back(std::move(P));
        }
      }
      // Solution check: are the summaries a model? The incremental backend
      // reuses the per-clause solvers across rounds, and candidate
      // interpretations repeat often enough for the memo cache to pay off.
      Interpretation A = currentInterpretation();
      ++Result.Stats.SmtQueries;
      if (Checker.checkAll(A) == ClauseStatus::Valid) {
        Result.Interp = std::move(A);
        return ChcResult::Sat;
      }
      if (SkipCovered && SummariesAdded == 0)
        SkipCovered = false;
      if (!AnyNew)
        return ChcResult::Unknown; // path space exhausted without a proof
    }
    return ChcResult::Unknown;
  }

  ChcResult mainLoop() {
    // Body-free queries are plain SMT checks.
    for (size_t CI = 0; CI < System.clauses().size(); ++CI) {
      const HornClause &C = System.clauses()[CI];
      if (!C.isQuery() || !C.Body.empty())
        continue;
      SmtSolver Solver(TM, Opts.Smt);
      Solver.assertFormula(
          TM.mkAnd(C.Constraint, TM.mkNot(C.HeadFormula)));
      ++Result.Stats.SmtQueries;
      if (Solver.check() == SmtResult::Sat) {
        Counterexample Cex;
        Cex.QueryClauseIndex = CI;
        Result.Cex = std::move(Cex);
        return ChcResult::Unsat;
      }
    }

    bool TryProof = isLinearSystem();
    // Interleave: BMC at increasing depths; attempt the interpolation proof
    // once early (it subsumes deep unwinding when it succeeds).
    if (TryProof) {
      ChcResult R = interpolationLoop();
      if (R != ChcResult::Unknown)
        return R;
    }
    for (size_t Depth = 0; Depth <= Opts.MaxBmcDepth; ++Depth) {
      if (outOfBudget())
        return ChcResult::Unknown;
      ChcResult R = bmcRound(Depth);
      ++Result.Stats.Iterations;
      if (R == ChcResult::Unsat)
        return R;
      if (R == ChcResult::Unknown)
        return ChcResult::Unknown;
    }
    return ChcResult::Unknown;
  }

  const ChcSystem &System;
  TermManager &TM;
  const UnwindOptions &Opts;
  Deadline Clock;
  ChcSolverResult Result;
  ClauseCheckContext Checker;
  std::vector<ExpNode> Nodes;
  std::map<const Predicate *, std::vector<const Term *>> Summaries;
  size_t SummariesAdded = 0;
};

} // namespace

ChcSolverResult UnwindSolver::solve(const ChcSystem &System) {
  // Every SMT query of the unwinding polls the cancellation token.
  if (Opts.Cancel && !Opts.Smt.Cancel)
    Opts.Smt.Cancel = Opts.Cancel;
  // Same preprocessing as the PDR baseline: Duality and UAutomizer both
  // consume simplified Horn, so the unwinding runs on the inlined system
  // and witnesses are translated back to the input predicates.
  analysis::InlineResult Inl = analysis::inlineSystem(System, Opts.Smt);
  if (!Inl.System)
    return Unwind(System, Opts).run();
  ChcSolverResult R = Unwind(*Inl.System, Opts).run();
  if (R.Status == ChcResult::Sat)
    R.Interp =
        analysis::backTranslateModel(System, *Inl.System, *Inl.Map, R.Interp);
  else if (R.Status == ChcResult::Unsat && R.Cex)
    R.Cex = analysis::backTranslateCex(System, *Inl.System, *Inl.Map, *R.Cex,
                                       Opts.Smt);
  return R;
}
