//===- baselines/RegisterEngines.h - Baseline registry hookup ---*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registers the baseline CHC engines (PDR family, unwinding family, and the
/// PIE/DIG-style learner swaps) with a `SolverRegistry`. Registration is an
/// explicit call — not a static initializer — because the baselines live in
/// a static library and the linker would drop an unreferenced registration
/// object file. The CLI driver, the benches, and the tests call this once at
/// startup; the call is idempotent.
///
//===----------------------------------------------------------------------===//

#ifndef LA_BASELINES_REGISTERENGINES_H
#define LA_BASELINES_REGISTERENGINES_H

#include "solver/SolverRegistry.h"

namespace la::baselines {

/// Adds "pdr" (alias "spacer"), "gpdr", "unwind" (alias "duality"),
/// "interpolation", "pie" and "dig" to \p R. Safe to call repeatedly.
void registerBuiltinEngines(
    solver::SolverRegistry &R = solver::SolverRegistry::global());

} // namespace la::baselines

#endif // LA_BASELINES_REGISTERENGINES_H
