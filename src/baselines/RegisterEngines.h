//===- baselines/RegisterEngines.h - Baseline registry hookup ---*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registers the baseline CHC engines (PDR family, unwinding family, and the
/// PIE/DIG-style learner swaps) with a `SolverRegistry`. Registration is an
/// explicit call — not a static initializer — because the baselines live in
/// a static library and the linker would drop an unreferenced registration
/// object file. The CLI driver, the benches, and the tests call this once at
/// startup; the call is idempotent.
///
//===----------------------------------------------------------------------===//

#ifndef LA_BASELINES_REGISTERENGINES_H
#define LA_BASELINES_REGISTERENGINES_H

#include "solver/SolverRegistry.h"

namespace la::baselines {

/// Adds "pdr" (alias "spacer"), "gpdr", "unwind" (alias "duality"),
/// "interpolation", "pie" and "dig" to \p R. Safe to call repeatedly.
void registerBuiltinEngines(
    solver::SolverRegistry &R = solver::SolverRegistry::global());

/// Adds deliberately misbehaving engines — "crash-segv" (raises SIGSEGV),
/// "crash-abort" (calls `std::abort`), "crash-spin" (spins forever,
/// ignoring its cancellation token) — used to exercise process-level lane
/// isolation: with `Isolation::Process` these take down only their forked
/// child, never the caller. NOT registered by `registerBuiltinEngines`;
/// callers opt in explicitly (tests, `chc_serve --crash-engines`). Safe to
/// call repeatedly.
void registerCrashEngines(
    solver::SolverRegistry &R = solver::SolverRegistry::global());

} // namespace la::baselines

#endif // LA_BASELINES_REGISTERENGINES_H
