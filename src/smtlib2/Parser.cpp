//===- smtlib2/Parser.cpp - Strict SMT-LIB2 HORN front end ----------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smtlib2/Parser.h"

#include "logic/SExpr.h"
#include "support/BigInt.h"

#include <cassert>
#include <cctype>
#include <set>
#include <unordered_map>

using namespace la;
using namespace la::chc;
using namespace la::smtlib2;

std::string ParseResult::error(const ParseOptions &Opts) const {
  if (Ok)
    return "";
  std::string Loc;
  if (!Opts.Filename.empty())
    Loc = Opts.Filename + ":" + std::to_string(Line) + ":" +
          std::to_string(Col);
  else
    Loc = "line " + std::to_string(Line) + ", col " + std::to_string(Col);
  return Loc + ": " + Message;
}

namespace {

/// A sorted value during term conversion. For `S == Int`, `T` is the integer
/// term. For `S == Bool`, `T` is the formula reading and `IntView` (when
/// already available, e.g. for Bool variables and literals) is the 0/1
/// integer rendering used for predicate arguments.
struct Val {
  Sort S = Sort::Int;
  const Term *T = nullptr;
  const Term *IntView = nullptr;
};

/// Translation state for one `parseSmtLib2` call.
class Parser {
public:
  Parser(ChcSystem &Out) : Out(Out), TM(Out.termManager()) {}

  ParseResult run(const std::string &Text) {
    SExprParseResult Parsed = parseSExprs(Text);
    if (!Parsed.Ok) {
      Result.Ok = false;
      Result.Line = Parsed.ErrLine;
      Result.Col = Parsed.ErrCol;
      // Strip the reader's own "line N: " prefix; we relocate precisely.
      std::string Msg = Parsed.Error;
      if (size_t P = Msg.find(": "); P != std::string::npos)
        Msg = Msg.substr(P + 2);
      Result.Message = Msg;
      return Result;
    }
    for (const SExpr &Cmd : Parsed.TopLevel)
      if (!command(Cmd))
        return Result;
    return Result;
  }

private:
  //===--------------------------------------------------------------------===//
  // Diagnostics
  //===--------------------------------------------------------------------===//

  bool error(const SExpr &Where, const std::string &Message) {
    Result.Ok = false;
    Result.Line = Where.Line;
    Result.Col = Where.Col;
    Result.Message = Message;
    return false;
  }

  //===--------------------------------------------------------------------===//
  // Commands
  //===--------------------------------------------------------------------===//

  bool command(const SExpr &Cmd) {
    if (Cmd.IsAtom)
      return error(Cmd, "expected a command list");
    if (Cmd.Items.empty())
      return error(Cmd, "empty command");
    if (!Cmd.Items[0].IsAtom)
      return error(Cmd.Items[0], "command head must be a symbol");
    const std::string &Head = Cmd.Items[0].Atom;
    if (Head == "set-logic")
      return setLogic(Cmd);
    if (Head == "set-info" || Head == "set-option" || Head == "get-model" ||
        Head == "get-info" || Head == "get-proof" || Head == "get-unsat-core" ||
        Head == "echo" || Head == "exit" || Head == "reset" ||
        Head == "push" || Head == "pop")
      return true;
    if (Head == "check-sat") {
      Result.SawCheckSat = true;
      return true;
    }
    if (Head == "declare-fun")
      return declareFun(Cmd);
    if (Head == "declare-const")
      return declareConst(Cmd);
    if (Head == "declare-rel")
      return declareRel(Cmd);
    if (Head == "declare-var")
      return declareVar(Cmd);
    if (Head == "assert" || Head == "rule") {
      if (Cmd.Items.size() != 2)
        return error(Cmd, "'" + Head + "' takes exactly one formula");
      return clause(Cmd.Items[1]);
    }
    if (Head == "query") {
      if (Cmd.Items.size() != 2)
        return error(Cmd, "'query' takes exactly one predicate application");
      return query(Cmd.Items[1]);
    }
    if (Head == "define-fun")
      return error(Cmd, "'define-fun' is not supported (inline the body)");
    return error(Cmd, "unsupported command '" + Head + "'");
  }

  bool setLogic(const SExpr &Cmd) {
    if (Cmd.Items.size() != 2 || !Cmd.Items[1].IsAtom)
      return error(Cmd, "expected (set-logic HORN)");
    if (Result.SawLogic)
      return error(Cmd, "repeated set-logic");
    if (Cmd.Items[1].Atom != "HORN")
      return error(Cmd.Items[1], "unsupported logic '" + Cmd.Items[1].Atom +
                                     "' (only HORN is supported)");
    Result.SawLogic = true;
    return true;
  }

  /// Parses one sort S-expression; only the atoms `Int` and `Bool` are in
  /// the supported fragment.
  bool sort(const SExpr &E, Sort &Out) {
    if (!E.IsAtom)
      return error(E, "unsupported parametric sort '" + E.toString() +
                          "' (only Int and Bool)");
    if (E.Atom == "Int") {
      Out = Sort::Int;
      return true;
    }
    if (E.Atom == "Bool") {
      Out = Sort::Bool;
      return true;
    }
    return error(E,
                 "unsupported sort '" + E.Atom + "' (only Int and Bool)");
  }

  bool checkFreshName(const SExpr &Where, const std::string &Name) {
    if (Preds.count(Name))
      return error(Where, "'" + Name + "' is already a predicate");
    if (Globals.count(Name))
      return error(Where, "'" + Name + "' is already a constant");
    return true;
  }

  bool declarePredicate(const SExpr &Where, const std::string &Name,
                        std::vector<Sort> ArgSorts) {
    if (!checkFreshName(Where, Name))
      return false;
    PredInfo Info;
    Info.ArgSorts = std::move(ArgSorts);
    Info.P = Out.addPredicate(Name, Info.ArgSorts.size());
    Preds.emplace(Name, std::move(Info));
    return true;
  }

  bool declareGlobal(const SExpr &Where, const std::string &Name, Sort S) {
    if (!checkFreshName(Where, Name))
      return false;
    Globals.emplace(Name, makeVar(Name, S));
    return true;
  }

  bool declareFun(const SExpr &Cmd) {
    if (Cmd.Items.size() != 4 || !Cmd.Items[1].IsAtom || Cmd.Items[2].IsAtom)
      return error(Cmd, "expected (declare-fun name (sort*) sort)");
    Sort Codomain;
    if (!sort(Cmd.Items[3], Codomain))
      return false;
    if (Codomain == Sort::Bool) {
      std::vector<Sort> ArgSorts;
      for (const SExpr &S : Cmd.Items[2].Items) {
        Sort A;
        if (!sort(S, A))
          return false;
        ArgSorts.push_back(A);
      }
      return declarePredicate(Cmd.Items[1], Cmd.Items[1].Atom,
                              std::move(ArgSorts));
    }
    // Int codomain: a zero-arity declare-fun is a global constant; true
    // uninterpreted functions are outside the fragment.
    if (!Cmd.Items[2].Items.empty())
      return error(Cmd, "uninterpreted Int functions are not supported");
    return declareGlobal(Cmd.Items[1], Cmd.Items[1].Atom, Sort::Int);
  }

  bool declareConst(const SExpr &Cmd) {
    if (Cmd.Items.size() != 3 || !Cmd.Items[1].IsAtom)
      return error(Cmd, "expected (declare-const name sort)");
    Sort S;
    if (!sort(Cmd.Items[2], S))
      return false;
    return declareGlobal(Cmd.Items[1], Cmd.Items[1].Atom, S);
  }

  bool declareRel(const SExpr &Cmd) {
    if (Cmd.Items.size() != 3 || !Cmd.Items[1].IsAtom || Cmd.Items[2].IsAtom)
      return error(Cmd, "expected (declare-rel name (sort*))");
    std::vector<Sort> ArgSorts;
    for (const SExpr &S : Cmd.Items[2].Items) {
      Sort A;
      if (!sort(S, A))
        return false;
      ArgSorts.push_back(A);
    }
    return declarePredicate(Cmd.Items[1], Cmd.Items[1].Atom,
                            std::move(ArgSorts));
  }

  bool declareVar(const SExpr &Cmd) {
    if (Cmd.Items.size() != 3 || !Cmd.Items[1].IsAtom)
      return error(Cmd, "expected (declare-var name sort)");
    Sort S;
    if (!sort(Cmd.Items[2], S))
      return false;
    return declareGlobal(Cmd.Items[1], Cmd.Items[1].Atom, S);
  }

  //===--------------------------------------------------------------------===//
  // Variables and scopes
  //===--------------------------------------------------------------------===//

  /// Builds the `Val` of a variable named \p Name: Int variables are
  /// themselves; Bool variables are 0/1-encoded Int variables whose formula
  /// reading is `(= v 1)`.
  Val makeVar(const std::string &Name, Sort S) {
    // Reuse the name when free, otherwise rename apart: an inner binder
    // shadowing an outer one (or a global) must not capture it.
    const Term *V = nullptr;
    if (!boundAnywhere(Name))
      V = TM.mkVar(Name);
    else
      V = TM.mkFreshVar(Name);
    if (S == Sort::Int)
      return Val{Sort::Int, V, nullptr};
    return Val{Sort::Bool, TM.mkEq(V, TM.mkIntConst(1)), V};
  }

  bool boundAnywhere(const std::string &Name) const {
    if (Globals.count(Name) || Preds.count(Name))
      return true;
    for (const auto &Scope : Scopes)
      if (Scope.count(Name))
        return true;
    return false;
  }

  const Val *lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It)
      if (auto Found = It->find(Name); Found != It->end())
        return &Found->second;
    if (auto Found = Globals.find(Name); Found != Globals.end())
      return &Found->second;
    return nullptr;
  }

  /// The {0,1} domain constraint of a Bool variable's Int encoding, emitted
  /// into the current clause on first use.
  void ensureBoolDomain(const Term *IntVar) {
    if (!DomainDone.insert(IntVar).second)
      return;
    Sides.push_back(TM.mkOr(TM.mkEq(IntVar, TM.mkIntConst(0)),
                            TM.mkEq(IntVar, TM.mkIntConst(1))));
  }

  /// 0/1 Int rendering of a Bool value, synthesizing a fresh constrained
  /// variable when the value has no direct one (a compound formula).
  const Term *intViewOf(const Val &V) {
    assert(V.S == Sort::Bool);
    if (V.IntView) {
      ensureBoolDomain(V.IntView);
      return V.IntView;
    }
    const Term *B = TM.mkFreshVar("b!arg");
    Sides.push_back(
        TM.mkOr(TM.mkAnd(V.T, TM.mkEq(B, TM.mkIntConst(1))),
                TM.mkAnd(TM.mkNot(V.T), TM.mkEq(B, TM.mkIntConst(0)))));
    return B;
  }

  //===--------------------------------------------------------------------===//
  // Clauses
  //===--------------------------------------------------------------------===//

  /// Strips a chain of top-level binders of kind \p Which, entering their
  /// bindings into a fresh scope (already pushed by the caller).
  const SExpr *stripQuantifiers(const SExpr &F, const char *Which) {
    if (!F.isCall(Which))
      return &F;
    if (F.Items.size() != 3 || F.Items[1].IsAtom) {
      error(F, std::string("malformed '") + Which + "'");
      return nullptr;
    }
    std::set<std::string> Here;
    for (const SExpr &Binding : F.Items[1].Items) {
      if (Binding.IsAtom || Binding.Items.size() != 2 ||
          !Binding.Items[0].IsAtom) {
        error(Binding, "quantifier bindings must be ((name sort) ...)");
        return nullptr;
      }
      const std::string &Name = Binding.Items[0].Atom;
      if (!Here.insert(Name).second) {
        error(Binding.Items[0],
              "duplicate binder '" + Name + "' in one quantifier");
        return nullptr;
      }
      Sort S;
      if (!sort(Binding.Items[1], S))
        return nullptr;
      Scopes.back().insert_or_assign(Name, makeVar(Name, S));
    }
    return stripQuantifiers(F.Items[2], Which);
  }

  /// RAII-free scope bracket: the parser is single-pass, so an explicit
  /// push/pop around each assert keeps binder lifetimes obvious.
  struct ScopeGuard {
    Parser &P;
    explicit ScopeGuard(Parser &P) : P(P) { P.Scopes.emplace_back(); }
    ~ScopeGuard() { P.Scopes.pop_back(); }
  };

  bool clause(const SExpr &FormulaExpr) {
    Sides.clear();
    DomainDone.clear();
    ScopeGuard Scope(*this);

    const SExpr *Core = stripQuantifiers(FormulaExpr, "forall");
    if (!Core)
      return false;

    const SExpr *HeadExpr = nullptr;
    std::vector<const SExpr *> BodyExprs;
    bool NegatedBody = false;
    if (Core->isCall("=>")) {
      if (Core->Items.size() < 3)
        return error(*Core, "'=>' needs at least two operands");
      for (size_t I = 1; I + 1 < Core->Items.size(); ++I)
        BodyExprs.push_back(&Core->Items[I]);
      HeadExpr = &Core->Items.back();
    } else if (Core->isCall("not")) {
      // Query shape: (not body) or (not (exists (...) body)).
      if (Core->Items.size() != 2)
        return error(*Core, "'not' takes one operand");
      const SExpr *Body = stripQuantifiers(Core->Items[1], "exists");
      if (!Body)
        return false;
      BodyExprs.push_back(Body);
      NegatedBody = true;
    } else {
      HeadExpr = Core;
    }

    HornClause C;
    std::vector<const Term *> ConstraintParts;
    if (!BodyExprs.empty()) {
      std::vector<const Term *> Parts;
      for (const SExpr *B : BodyExprs) {
        Val V;
        if (!term(*B, V))
          return false;
        if (V.S != Sort::Bool)
          return error(*B, "clause body must be Bool, got Int");
        Parts.push_back(V.T);
      }
      const Term *Body = TM.mkAnd(std::move(Parts));
      if (!splitBody(*BodyExprs.front(), Body, C.Body, ConstraintParts))
        return false;
    }

    if (NegatedBody) {
      C.HeadFormula = TM.mkFalse();
    } else {
      assert(HeadExpr && "clause without a head");
      Val Head;
      if (!term(*HeadExpr, Head))
        return false;
      if (Head.S != Sort::Bool)
        return error(*HeadExpr, "clause head must be Bool, got Int");
      if (Head.T->kind() == TermKind::PredApp) {
        PredApp App;
        resolveApp(Head.T, App);
        C.HeadPred = std::move(App);
      } else if (TermManager::containsPredApp(Head.T)) {
        return error(*HeadExpr,
                     "head mixes a predicate application with other "
                     "structure (not a Horn clause)");
      } else {
        C.HeadFormula = Head.T;
      }
    }

    for (const Term *Side : Sides)
      ConstraintParts.push_back(Side);
    C.Constraint = TM.mkAnd(std::move(ConstraintParts));
    Out.addClause(std::move(C));
    return true;
  }

  bool query(const SExpr &AppExpr) {
    // (query p) / (query (p x ...)): reachability of p, i.e. the clause
    // `p(fresh...) -> false`.
    const PredInfo *Info = nullptr;
    if (AppExpr.IsAtom) {
      auto It = Preds.find(AppExpr.Atom);
      if (It != Preds.end())
        Info = &It->second;
    } else if (!AppExpr.Items.empty() && AppExpr.Items[0].IsAtom) {
      auto It = Preds.find(AppExpr.Items[0].Atom);
      if (It != Preds.end())
        Info = &It->second;
    }
    if (!Info)
      return error(AppExpr, "query of an undeclared predicate");
    HornClause C;
    PredApp App;
    App.Pred = Info->P;
    for (size_t I = 0; I < Info->P->arity(); ++I)
      App.Args.push_back(TM.mkFreshVar("q!" + Info->P->Name));
    C.Body.push_back(std::move(App));
    C.Constraint = TM.mkTrue();
    C.HeadFormula = TM.mkFalse();
    Out.addClause(std::move(C));
    return true;
  }

  /// Splits a converted clause body into predicate applications and the
  /// predicate-free constraint conjuncts.
  bool splitBody(const SExpr &Where, const Term *Body,
                 std::vector<PredApp> &Apps,
                 std::vector<const Term *> &ConstraintParts) {
    std::vector<const Term *> Conjuncts;
    if (Body->kind() == TermKind::And)
      Conjuncts.assign(Body->operands().begin(), Body->operands().end());
    else
      Conjuncts.push_back(Body);
    for (const Term *Conj : Conjuncts) {
      if (Conj->kind() == TermKind::PredApp) {
        PredApp App;
        resolveApp(Conj, App);
        Apps.push_back(std::move(App));
        continue;
      }
      if (TermManager::containsPredApp(Conj))
        return error(Where, "predicate application under non-conjunctive "
                            "structure (not a Horn clause)");
      ConstraintParts.push_back(Conj);
    }
    return true;
  }

  /// Rebuilds a `chc::PredApp` from a converted PredApp term. The term was
  /// produced by `term()`, so the predicate exists and arities match.
  void resolveApp(const Term *AppTerm, PredApp &App) {
    const Predicate *P = Out.findPredicate(AppTerm->name());
    assert(P && P->arity() == AppTerm->numOperands() &&
           "PredApp term for an unknown predicate");
    App.Pred = P;
    App.Args.assign(AppTerm->operands().begin(), AppTerm->operands().end());
  }

  //===--------------------------------------------------------------------===//
  // Terms
  //===--------------------------------------------------------------------===//

  bool wantInt(const SExpr &Where, const Val &V, const std::string &What) {
    if (V.S == Sort::Int)
      return true;
    return error(Where, What + " expects an Int operand, got Bool");
  }

  bool wantBool(const SExpr &Where, const Val &V, const std::string &What) {
    if (V.S == Sort::Bool)
      return true;
    return error(Where, What + " expects a Bool operand, got Int");
  }

  bool term(const SExpr &E, Val &Out) {
    if (E.IsAtom)
      return atom(E, Out);
    if (E.Items.empty() || !E.Items[0].IsAtom)
      return error(E, "expected an operator application");
    const std::string &Op = E.Items[0].Atom;

    if (Op == "let")
      return letTerm(E, Out);
    if (Op == "!") {
      // (! t :attribute ...) annotation wrapper; attributes are dropped.
      if (E.Items.size() < 2)
        return error(E, "'!' needs an annotated term");
      return term(E.Items[1], Out);
    }
    if (Op == "forall" || Op == "exists")
      return error(E, "quantifiers are only supported at the top of an "
                      "assertion");
    // `(- <numeral>)` is one negative literal, not negation of a constant,
    // so that `(- 9223372036854775808)` (INT64_MIN) stays representable.
    if (Op == "-" && E.Items.size() == 2 && E.Items[1].IsAtom &&
        !E.Items[1].Atom.empty() &&
        std::isdigit(static_cast<unsigned char>(E.Items[1].Atom[0])))
      return parseNumeral(E, "-" + E.Items[1].Atom, Out);
    if (Op == "ite")
      return iteTerm(E, Out);

    std::vector<Val> Args;
    for (size_t I = 1; I < E.Items.size(); ++I) {
      Val V;
      if (!term(E.Items[I], V))
        return false;
      Args.push_back(V);
    }

    auto Quoted = [&] { return "'" + Op + "'"; };
    auto IntArgs = [&](size_t Min) -> bool {
      if (Args.size() < Min)
        return error(E, Quoted() + " needs at least " + std::to_string(Min) +
                            " operands");
      for (size_t I = 0; I < Args.size(); ++I)
        if (!wantInt(E.Items[I + 1], Args[I], Quoted()))
          return false;
      return true;
    };
    auto BoolArgs = [&](size_t Min) -> bool {
      if (Args.size() < Min)
        return error(E, Quoted() + " needs at least " + std::to_string(Min) +
                            " operands");
      for (size_t I = 0; I < Args.size(); ++I)
        if (!wantBool(E.Items[I + 1], Args[I], Quoted()))
          return false;
      return true;
    };
    auto Ints = [&] {
      std::vector<const Term *> Ts;
      for (const Val &V : Args)
        Ts.push_back(V.T);
      return Ts;
    };
    auto Bools = [&] {
      std::vector<const Term *> Ts;
      for (const Val &V : Args)
        Ts.push_back(V.T);
      return Ts;
    };

    if (Op == "+") {
      if (!IntArgs(1))
        return false;
      Out = Val{Sort::Int, TM.mkAdd(Ints()), nullptr};
      return true;
    }
    if (Op == "-") {
      if (!IntArgs(1))
        return false;
      if (Args.size() == 1) {
        Out = Val{Sort::Int, TM.mkNeg(Args[0].T), nullptr};
        return true;
      }
      const Term *Acc = Args[0].T;
      for (size_t I = 1; I < Args.size(); ++I)
        Acc = TM.mkSub(Acc, Args[I].T);
      Out = Val{Sort::Int, Acc, nullptr};
      return true;
    }
    if (Op == "*") {
      // Linear products only: at most one non-constant factor.
      if (!IntArgs(1))
        return false;
      Rational Factor(1);
      const Term *NonConst = nullptr;
      for (size_t I = 0; I < Args.size(); ++I) {
        if (Args[I].T->isIntConst()) {
          Factor *= Args[I].T->value();
          continue;
        }
        if (NonConst)
          return error(E.Items[I + 1],
                       "non-linear multiplication is not supported");
        NonConst = Args[I].T;
      }
      Out = Val{Sort::Int,
                NonConst ? TM.mkMul(Factor, NonConst) : TM.mkIntConst(Factor),
                nullptr};
      return true;
    }
    if (Op == "mod" || Op == "div") {
      if (Args.size() != 2)
        return error(E, Quoted() + " expects 2 operands");
      if (!IntArgs(2))
        return false;
      if (!Args[1].T->isIntConst() || Args[1].T->value().signum() <= 0)
        return error(E.Items[2],
                     Quoted() + " requires a positive constant divisor");
      const Term *Rem = TM.mkMod(Args[0].T, Args[1].T->value().numerator());
      if (Op == "mod") {
        Out = Val{Sort::Int, Rem, nullptr};
        return true;
      }
      // Euclidean division by k, lowered to a fresh quotient variable q
      // defined by the clause-local side constraint a = k*q + (a mod k).
      const Term *Q = TM.mkFreshVar("div!q");
      Sides.push_back(TM.mkEq(
          Args[0].T, TM.mkAdd(TM.mkMul(Args[1].T->value(), Q), Rem)));
      Out = Val{Sort::Int, Q, nullptr};
      return true;
    }
    if (Op == "<=" || Op == "<" || Op == ">=" || Op == ">") {
      if (Args.size() < 2)
        return error(E, Quoted() + " needs at least 2 operands");
      if (!IntArgs(2))
        return false;
      // Chained comparisons: (< a b c) == a<b and b<c.
      std::vector<const Term *> Parts;
      for (size_t I = 0; I + 1 < Args.size(); ++I) {
        const Term *L = Args[I].T, *R = Args[I + 1].T;
        if (Op == "<=")
          Parts.push_back(TM.mkLe(L, R));
        else if (Op == "<")
          Parts.push_back(TM.mkLt(L, R));
        else if (Op == ">=")
          Parts.push_back(TM.mkGe(L, R));
        else
          Parts.push_back(TM.mkGt(L, R));
      }
      Out = Val{Sort::Bool, TM.mkAnd(std::move(Parts)), nullptr};
      return true;
    }
    if (Op == "=" || Op == "distinct") {
      if (Args.size() < 2)
        return error(E, Quoted() + " needs at least 2 operands");
      for (size_t I = 1; I < Args.size(); ++I)
        if (Args[I].S != Args[0].S)
          return error(E.Items[I + 1],
                       Quoted() + " mixes Int and Bool operands");
      if (Op == "distinct" && Args.size() != 2)
        return error(E, "'distinct' with more than 2 operands is not "
                        "supported");
      std::vector<const Term *> Parts;
      for (size_t I = 0; I + 1 < Args.size(); ++I) {
        const Term *L = Args[I].T, *R = Args[I + 1].T;
        const Term *EqPart =
            Args[0].S == Sort::Int
                ? TM.mkEq(L, R)
                : TM.mkOr(TM.mkAnd(L, R), TM.mkAnd(TM.mkNot(L), TM.mkNot(R)));
        Parts.push_back(Op == "=" ? EqPart : TM.mkNot(EqPart));
      }
      Out = Val{Sort::Bool, TM.mkAnd(std::move(Parts)), nullptr};
      return true;
    }
    if (Op == "not") {
      if (Args.size() != 1)
        return error(E, "'not' takes one operand");
      if (!BoolArgs(1))
        return false;
      Out = Val{Sort::Bool, TM.mkNot(Args[0].T), nullptr};
      return true;
    }
    if (Op == "and") {
      if (!BoolArgs(0))
        return false;
      Out = Val{Sort::Bool, TM.mkAnd(Bools()), nullptr};
      return true;
    }
    if (Op == "or") {
      if (!BoolArgs(0))
        return false;
      Out = Val{Sort::Bool, TM.mkOr(Bools()), nullptr};
      return true;
    }
    if (Op == "xor") {
      if (!BoolArgs(2))
        return false;
      const Term *Acc = Args[0].T;
      for (size_t I = 1; I < Args.size(); ++I)
        Acc = TM.mkOr(TM.mkAnd(Acc, TM.mkNot(Args[I].T)),
                      TM.mkAnd(TM.mkNot(Acc), Args[I].T));
      Out = Val{Sort::Bool, Acc, nullptr};
      return true;
    }
    if (Op == "=>") {
      if (!BoolArgs(2))
        return false;
      const Term *Acc = Args.back().T;
      for (size_t I = Args.size() - 1; I-- > 0;)
        Acc = TM.mkImplies(Args[I].T, Acc);
      Out = Val{Sort::Bool, Acc, nullptr};
      return true;
    }

    // Predicate application with per-position sort coercion.
    if (auto It = Preds.find(Op); It != Preds.end()) {
      const PredInfo &Info = It->second;
      if (Info.ArgSorts.size() != Args.size())
        return error(E, "'" + Op + "' expects " +
                            std::to_string(Info.ArgSorts.size()) +
                            " arguments, got " + std::to_string(Args.size()));
      std::vector<const Term *> IntArgsV;
      for (size_t I = 0; I < Args.size(); ++I) {
        if (Info.ArgSorts[I] == Sort::Int) {
          if (!wantInt(E.Items[I + 1], Args[I],
                       "argument " + std::to_string(I + 1) + " of '" + Op +
                           "'"))
            return false;
          IntArgsV.push_back(Args[I].T);
        } else {
          if (!wantBool(E.Items[I + 1], Args[I],
                        "argument " + std::to_string(I + 1) + " of '" + Op +
                            "'"))
            return false;
          IntArgsV.push_back(intViewOf(Args[I]));
        }
      }
      Out = Val{Sort::Bool, TM.mkPredApp(Op, std::move(IntArgsV)), nullptr};
      return true;
    }
    return error(E.Items[0], "unknown function or predicate '" + Op + "'");
  }

  bool letTerm(const SExpr &E, Val &Out) {
    if (E.Items.size() != 3 || E.Items[1].IsAtom)
      return error(E, "expected (let ((name term) ...) body)");
    // Parallel let: right-hand sides are evaluated in the outer scope.
    std::vector<std::pair<std::string, Val>> Bindings;
    for (const SExpr &B : E.Items[1].Items) {
      if (B.IsAtom || B.Items.size() != 2 || !B.Items[0].IsAtom)
        return error(B, "let bindings must be ((name term) ...)");
      Val V;
      if (!term(B.Items[1], V))
        return false;
      Bindings.emplace_back(B.Items[0].Atom, V);
    }
    ScopeGuard Scope(*this);
    for (auto &[Name, V] : Bindings)
      Scopes.back().insert_or_assign(Name, V);
    return term(E.Items[2], Out);
  }

  bool iteTerm(const SExpr &E, Val &Out) {
    if (E.Items.size() != 4)
      return error(E, "'ite' expects 3 operands");
    Val Cond, Then, Else;
    if (!term(E.Items[1], Cond) || !term(E.Items[2], Then) ||
        !term(E.Items[3], Else))
      return false;
    if (!wantBool(E.Items[1], Cond, "'ite' condition"))
      return false;
    if (Then.S != Else.S)
      return error(E, "'ite' branches have different sorts");
    if (Then.S == Sort::Bool) {
      Out = Val{Sort::Bool,
                TM.mkOr(TM.mkAnd(Cond.T, Then.T),
                        TM.mkAnd(TM.mkNot(Cond.T), Else.T)),
                nullptr};
      return true;
    }
    // Int ite, lowered to a fresh variable defined by a side constraint.
    const Term *V = TM.mkFreshVar("ite!v");
    Sides.push_back(TM.mkOr(TM.mkAnd(Cond.T, TM.mkEq(V, Then.T)),
                            TM.mkAnd(TM.mkNot(Cond.T), TM.mkEq(V, Else.T))));
    Out = Val{Sort::Int, V, nullptr};
    return true;
  }

  /// Parses \p A (matching `[+-]?[0-9]+`) into an Int constant. Literals
  /// outside the signed 64-bit range are rejected: downstream consumers
  /// convert through `BigInt::toInt64`.
  bool parseNumeral(const SExpr &E, const std::string &A, Val &Out) {
    std::optional<BigInt> Value =
        BigInt::fromString(A[0] == '+' ? A.substr(1) : A);
    if (!Value)
      return error(E, "malformed numeral '" + A + "'");
    if (!Value->toInt64())
      return error(E, "integer literal '" + A +
                          "' is outside the supported 64-bit range");
    Out = Val{Sort::Int, TM.mkIntConst(Rational(*Value)), nullptr};
    return true;
  }

  /// Classifies one atom as a numeral: 1 = numeral parsed, 0 = not numeric
  /// (a symbol), -1 = malformed/out-of-range (error set).
  int numeralAtom(const SExpr &E, Val &Out) {
    const std::string &A = E.Atom;
    if (A.empty())
      return 0;
    size_t Begin = (A[0] == '-' || A[0] == '+') ? 1 : 0;
    size_t I = Begin;
    while (I < A.size() && std::isdigit(static_cast<unsigned char>(A[I])))
      ++I;
    if (I == Begin)
      return 0;
    if (I != A.size()) {
      error(E, "malformed numeral '" + A + "'");
      return -1;
    }
    return parseNumeral(E, A, Out) ? 1 : -1;
  }

  bool atom(const SExpr &E, Val &Out) {
    const std::string &A = E.Atom;
    if (A == "true") {
      Out = Val{Sort::Bool, TM.mkTrue(), TM.mkIntConst(1)};
      return true;
    }
    if (A == "false") {
      Out = Val{Sort::Bool, TM.mkFalse(), TM.mkIntConst(0)};
      return true;
    }
    if (int Num = numeralAtom(E, Out))
      return Num > 0;
    if (const Val *Bound = lookup(A)) {
      Out = *Bound;
      if (Out.S == Sort::Bool && Out.IntView)
        ensureBoolDomain(Out.IntView);
      return true;
    }
    if (auto It = Preds.find(A); It != Preds.end()) {
      if (!It->second.ArgSorts.empty())
        return error(E, "predicate '" + A + "' used without arguments");
      Out = Val{Sort::Bool, TM.mkPredApp(A, {}), nullptr};
      return true;
    }
    return error(E, "unknown symbol '" + A +
                        "' (declare it or bind it with forall/let)");
  }

  //===--------------------------------------------------------------------===//
  // State
  //===--------------------------------------------------------------------===//

  struct PredInfo {
    const Predicate *P = nullptr;
    std::vector<Sort> ArgSorts;
  };

  ChcSystem &Out;
  TermManager &TM;
  ParseResult Result;
  std::unordered_map<std::string, PredInfo> Preds;
  std::unordered_map<std::string, Val> Globals;
  std::vector<std::unordered_map<std::string, Val>> Scopes;
  /// Clause-local side constraints: Bool variable domains, `ite`/`div`
  /// definitions, Bool-argument encodings. Conjoined into the clause
  /// constraint by `clause()`.
  std::vector<const Term *> Sides;
  std::set<const Term *> DomainDone;
};

} // namespace

ParseResult smtlib2::parseSmtLib2(const std::string &Text, ChcSystem &Out,
                                  const ParseOptions &) {
  return Parser(Out).run(Text);
}
