//===- smtlib2/Printer.cpp - CHC system to SMT-LIB2 HORN text -------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smtlib2/Printer.h"

#include <cctype>

using namespace la;
using namespace la::chc;

namespace {

/// True when \p C may appear in an SMT-LIB simple symbol.
bool isSimpleSymbolChar(char C) {
  if (std::isalnum(static_cast<unsigned char>(C)))
    return true;
  static const char *Extra = "~!@$%^&*_-+=<>.?/";
  for (const char *P = Extra; *P; ++P)
    if (*P == C)
      return true;
  return false;
}

/// Renders \p Name as an SMT-LIB symbol, `|quoting|` it when it falls
/// outside the simple-symbol grammar (the encoder's `x#0` / `f!pre!1`
/// names contain `#`, which must be quoted).
std::string symbol(const std::string &Name) {
  bool Simple = !Name.empty() &&
                !std::isdigit(static_cast<unsigned char>(Name[0]));
  for (char C : Name)
    if (!isSimpleSymbolChar(C))
      Simple = false;
  if (Simple)
    return Name;
  return "|" + Name + "|";
}

const char *kindSymbol(TermKind K) {
  switch (K) {
  case TermKind::Add:
    return "+";
  case TermKind::Le:
    return "<=";
  case TermKind::Lt:
    return "<";
  case TermKind::Eq:
    return "=";
  case TermKind::Not:
    return "not";
  case TermKind::And:
    return "and";
  case TermKind::Or:
    return "or";
  default:
    return "?";
  }
}

std::string renderTerm(const Term *T) {
  switch (T->kind()) {
  case TermKind::IntConst:
    if (T->value().isNegative())
      return "(- " + (-T->value()).toString() + ")";
    return T->value().toString();
  case TermKind::BoolConst:
    return T->boolValue() ? "true" : "false";
  case TermKind::Var:
    return symbol(T->name());
  case TermKind::Mul: {
    std::string Factor = T->value().isNegative()
                             ? "(- " + (-T->value()).toString() + ")"
                             : T->value().toString();
    return "(* " + Factor + " " + renderTerm(T->operand(0)) + ")";
  }
  case TermKind::Mod:
    return "(mod " + renderTerm(T->operand(0)) + " " + T->value().toString() +
           ")";
  case TermKind::PredApp: {
    if (T->numOperands() == 0)
      return symbol(T->name());
    std::string Out = "(";
    Out += symbol(T->name());
    for (const Term *Op : T->operands()) {
      Out += ' ';
      Out += renderTerm(Op);
    }
    Out += ')';
    return Out;
  }
  default: {
    std::string Out = "(";
    Out += kindSymbol(T->kind());
    for (const Term *Op : T->operands()) {
      Out += ' ';
      Out += renderTerm(Op);
    }
    Out += ')';
    return Out;
  }
  }
}

/// Collects the distinct variables of one clause in first-occurrence order
/// (constraint, body applications left to right, then the head).
std::vector<const Term *> clauseVars(const ChcSystem &System,
                                     const HornClause &C) {
  TermManager &TM = System.termManager();
  std::vector<const Term *> Vars;
  auto Merge = [&](const Term *T) {
    for (const Term *V : TM.collectVars(T)) {
      bool Seen = false;
      for (const Term *Have : Vars)
        Seen = Seen || Have == V;
      if (!Seen)
        Vars.push_back(V);
    }
  };
  if (C.Constraint)
    Merge(C.Constraint);
  for (const PredApp &App : C.Body)
    for (const Term *Arg : App.Args)
      Merge(Arg);
  if (C.HeadPred)
    for (const Term *Arg : C.HeadPred->Args)
      Merge(Arg);
  else if (C.HeadFormula)
    Merge(C.HeadFormula);
  return Vars;
}

std::string renderApp(const PredApp &App) {
  if (App.Args.empty())
    return symbol(App.Pred->Name);
  std::string Out = "(";
  Out += symbol(App.Pred->Name);
  for (const Term *Arg : App.Args) {
    Out += ' ';
    Out += renderTerm(Arg);
  }
  Out += ')';
  return Out;
}

} // namespace

std::string smtlib2::printTerm(const Term *T) { return renderTerm(T); }

std::string smtlib2::printSmtLib2(const ChcSystem &System,
                                  const PrintOptions &Opts) {
  std::string Out = "(set-logic HORN)\n";
  for (const Predicate *P : System.predicates()) {
    Out += "(declare-fun " + symbol(P->Name) + " (";
    for (size_t I = 0; I < P->arity(); ++I)
      Out += I == 0 ? "Int" : " Int";
    Out += ") Bool)\n";
  }
  for (const HornClause &C : System.clauses()) {
    if (Opts.ClauseComments && !C.Name.empty())
      Out += "; " + C.Name + "\n";

    std::vector<std::string> BodyParts;
    if (C.Constraint && !C.Constraint->isTrue())
      BodyParts.push_back(renderTerm(C.Constraint));
    for (const PredApp &App : C.Body)
      BodyParts.push_back(renderApp(App));

    std::string Head = C.HeadPred ? renderApp(*C.HeadPred)
                                  : renderTerm(C.HeadFormula);

    std::string Core;
    if (BodyParts.empty()) {
      Core = Head;
    } else {
      std::string Body;
      if (BodyParts.size() == 1) {
        Body = BodyParts[0];
      } else {
        Body = "(and";
        for (const std::string &Part : BodyParts)
          Body += " " + Part;
        Body += ")";
      }
      Core = "(=> " + Body + " " + Head + ")";
    }

    std::vector<const Term *> Vars = clauseVars(System, C);
    if (Vars.empty()) {
      Out += "(assert " + Core + ")\n";
    } else {
      Out += "(assert (forall (";
      for (size_t I = 0; I < Vars.size(); ++I) {
        Out += I == 0 ? "(" : " (";
        Out += symbol(Vars[I]->name());
        Out += Vars[I]->sort() == Sort::Int ? " Int)" : " Bool)";
      }
      Out += ")\n  " + Core + "))\n";
    }
  }
  if (Opts.CheckSat)
    Out += "(check-sat)\n";
  return Out;
}
