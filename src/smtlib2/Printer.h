//===- smtlib2/Printer.h - CHC system to SMT-LIB2 HORN text -----*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a `chc::ChcSystem` as SMT-LIB2 HORN text parseable by
/// `smtlib2::parseSmtLib2` (and by external CHC solvers): `(set-logic
/// HORN)`, one `declare-fun` per predicate, one universally quantified
/// `assert` per clause, `(check-sat)`. Symbols outside the SMT-LIB simple
/// grammar (the encoder's `x#0`, `f!pre!1` names) are `|quoted|`. The
/// round-trip `parse(print(S))` preserves verdicts; the differential test in
/// tests/SmtLib2Test.cpp pins that over the mini-C corpus.
///
//===----------------------------------------------------------------------===//

#ifndef LA_SMTLIB2_PRINTER_H
#define LA_SMTLIB2_PRINTER_H

#include "chc/Chc.h"

#include <string>

namespace la::smtlib2 {

/// Configuration of the printer.
struct PrintOptions {
  /// Emit the trailing `(check-sat)` (CHC-COMP files have one).
  bool CheckSat = true;
  /// Emit clause names as `; <name>` comment lines above their asserts.
  bool ClauseComments = true;
};

/// Renders \p System as SMT-LIB2 HORN text.
std::string printSmtLib2(const chc::ChcSystem &System,
                         const PrintOptions &Opts = {});

/// Renders one term in strict SMT-LIB2 syntax (symbols quoted as needed).
std::string printTerm(const Term *T);

} // namespace la::smtlib2

#endif // LA_SMTLIB2_PRINTER_H
