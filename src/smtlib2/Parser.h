//===- smtlib2/Parser.h - Strict SMT-LIB2 HORN front end --------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SMT-LIB2 (HORN) front end used by the façade, the CLI driver and the
/// solver daemon: a strict, sort-checked translation from the CHC-COMP
/// exchange format into `chc::ChcSystem`, with precise line:column
/// diagnostics. Compared to the legacy `chc::parseChcText` it adds
///
///   * logic gating: `(set-logic L)` with any `L` other than `HORN` is
///     rejected; unsupported sorts (`Real`, arrays, bit-vectors, parametric
///     sorts) are rejected at their source location;
///   * scoping: quantifier and `let` binders shadow correctly, free symbols
///     that were never declared are errors (the legacy parser silently
///     invented variables);
///   * `Bool` alongside `Int`: Bool-sorted binders, constants and predicate
///     arguments are translated into the core integer term language by a
///     0/1 encoding (a Bool value `b` becomes an Int variable constrained
///     to `(or (= b 0) (= b 1))`; its formula reading is `(= b 1)`);
///   * `let` bindings, `(! t :annotations)`, chained comparisons, `xor`,
///     Bool equality, and `ite`/`div` lowered via fresh variables and
///     clause-local side constraints;
///   * the Z3 fixedpoint dialect (`declare-rel` / `declare-var` / `rule` /
///     `query`) accepted in the same run, so one front end serves both
///     styles.
///
/// The grammar subset is documented in DESIGN.md §14.
///
//===----------------------------------------------------------------------===//

#ifndef LA_SMTLIB2_PARSER_H
#define LA_SMTLIB2_PARSER_H

#include "chc/Chc.h"

#include <string>

namespace la::smtlib2 {

/// Configuration of one parse.
struct ParseOptions {
  /// When nonempty, diagnostics are prefixed "<Filename>:line:col: ...";
  /// otherwise "line N, col M: ...".
  std::string Filename;
};

/// Outcome of a parse. On failure `Line`/`Col` locate the offending token
/// and `Message` describes the problem; `error()` renders both.
struct ParseResult {
  bool Ok = true;
  std::string Message;
  size_t Line = 0;
  size_t Col = 0;
  /// True when the input contained `(check-sat)` (CHC-COMP files do).
  bool SawCheckSat = false;
  /// True when the input contained `(set-logic HORN)`.
  bool SawLogic = false;

  /// The located diagnostic ("file.smt2:3:14: unsupported sort 'Real'").
  std::string error(const ParseOptions &Opts = {}) const;
};

/// Parses \p Text into \p Out (which must be an empty system). On error the
/// system may be partially populated and should be discarded.
ParseResult parseSmtLib2(const std::string &Text, chc::ChcSystem &Out,
                         const ParseOptions &Opts = {});

} // namespace la::smtlib2

#endif // LA_SMTLIB2_PARSER_H
