//===- solver/Portfolio.cpp - Parallel portfolio CHC engine ---------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/Portfolio.h"

#include "smtlib2/Parser.h"
#include "smtlib2/Printer.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

using namespace la;
using namespace la::solver;
using namespace la::chc;

const char *solver::toString(Isolation I) {
  return I == Isolation::Process ? "process" : "thread";
}

std::optional<Isolation> solver::parseIsolation(const std::string &Text) {
  if (Text == "thread")
    return Isolation::Thread;
  if (Text == "process")
    return Isolation::Process;
  return std::nullopt;
}

std::vector<PortfolioLane>
PortfolioSolver::defaultLanes(const EngineOptions &Base,
                              const SolverRegistry &R) {
  std::vector<PortfolioLane> Lanes;
  Lanes.push_back({EngineId("la"), "la", Base});
  {
    PortfolioLane Seeded{EngineId("la"), "la-seed2", Base};
    Seeded.Opts.Seed = Base.Seed ? Base.Seed + 1 : 2;
    Lanes.push_back(std::move(Seeded));
  }
  Lanes.push_back({EngineId("analysis"), "analysis", Base});
  // Baseline lanes only when `registerBuiltinEngines()` ran.
  if (R.contains(EngineId("pdr")))
    Lanes.push_back({EngineId("pdr"), "pdr", Base});
  if (R.contains(EngineId("unwind")))
    Lanes.push_back({EngineId("unwind"), "unwind", Base});
  return Lanes;
}

namespace {

//===----------------------------------------------------------------------===//
// Process-mode lane wire format
//
// A forked lane cannot hand back term pointers — they live in the child's
// address space. Instead the child serializes its result to text: verdict,
// display name, stats, the printed interpretation formula per predicate
// (via smtlib2::printTerm, so symbols are quoted canonically), and the
// counterexample as plain numbers. The parent parses this wire form and,
// for a winning sat lane, rebuilds each formula in the input TermManager by
// printing a one-clause synthetic HORN script, parsing it, and substituting
// the head-argument variables with the real predicate parameters.
//===----------------------------------------------------------------------===//

/// Parsed form of a process-mode lane payload.
struct LaneWire {
  ChcResult Status = ChcResult::Unknown;
  std::string Name;
  EngineStats Stats;
  /// Printed interpretation formula per predicate index (sat only).
  std::vector<std::string> Formulas;
  /// Counterexample, if any (unsat only), in index/number form.
  bool HasCex = false;
  size_t QueryClauseIndex = 0;
  std::vector<size_t> QueryChildren;
  struct WireNode {
    size_t PredIndex = 0;
    size_t ClauseIndex = 0;
    std::vector<std::string> Args; ///< rationals, Rational::toString form
    std::vector<size_t> Children;
  };
  std::vector<WireNode> Nodes;
};

void putBlock(std::string &Out, const char *Tag, const std::string &Text) {
  Out += Tag;
  Out += ' ';
  Out += std::to_string(Text.size());
  Out += '\n';
  Out += Text;
  Out += '\n';
}

bool getBlock(std::istream &In, const char *Tag, std::string &Out) {
  std::string Word;
  size_t Len = 0;
  if (!(In >> Word) || Word != Tag || !(In >> Len) || In.get() != '\n')
    return false;
  if (Len > (size_t(1) << 28))
    return false;
  Out.resize(Len);
  if (Len > 0 && !In.read(Out.data(), static_cast<std::streamsize>(Len)))
    return false;
  return In.get() == '\n';
}

/// Child side: the lane result as a self-contained text payload.
std::string serializeLaneResult(const ChcSystem &System,
                                const std::string &Name,
                                const ChcSolverResult &Res) {
  std::string Out = "lane 1\n";
  Out += "status ";
  Out += chc::toString(Res.Status);
  Out += '\n';
  putBlock(Out, "name", Name);
  const EngineStats &S = Res.Stats;
  const CheckStats &C = S.Check;
  char Buf[512];
  snprintf(Buf, sizeof(Buf),
           "stats %zu %zu %zu %.6f %zu %zu %llu %llu %llu %llu %llu %llu "
           "%llu %llu %llu %llu %llu\n",
           S.SmtQueries, S.Samples, S.Iterations, S.Seconds, S.TemplatesMined,
           S.PolyhedraFacts, static_cast<unsigned long long>(C.ChecksIssued),
           static_cast<unsigned long long>(C.CacheHits),
           static_cast<unsigned long long>(C.CacheMisses),
           static_cast<unsigned long long>(C.CacheEvictions),
           static_cast<unsigned long long>(C.ScopePushes),
           static_cast<unsigned long long>(C.SolverRebuilds),
           static_cast<unsigned long long>(C.RebuildsAvoided),
           static_cast<unsigned long long>(C.ConjunctSplits),
           static_cast<unsigned long long>(C.DiskHits),
           static_cast<unsigned long long>(C.DiskMisses),
           static_cast<unsigned long long>(C.DiskStores));
  Out += Buf;
  if (Res.Status == ChcResult::Sat) {
    Out += "model " + std::to_string(System.predicates().size()) + '\n';
    for (const Predicate *P : System.predicates())
      putBlock(Out, "interp", smtlib2::printTerm(Res.Interp.get(P)));
  } else if (Res.Status == ChcResult::Unsat && Res.Cex) {
    Out += "cex 1\n";
    Out += "query " + std::to_string(Res.Cex->QueryClauseIndex) + ' ' +
           std::to_string(Res.Cex->QueryChildren.size());
    for (size_t C2 : Res.Cex->QueryChildren)
      Out += ' ' + std::to_string(C2);
    Out += '\n';
    Out += "nodes " + std::to_string(Res.Cex->Nodes.size()) + '\n';
    for (const Counterexample::Node &N : Res.Cex->Nodes) {
      Out += "node " + std::to_string(N.Pred->Index) + ' ' +
             std::to_string(N.ClauseIndex) + ' ' +
             std::to_string(N.Args.size());
      for (const Rational &A : N.Args)
        Out += ' ' + A.toString();
      Out += ' ' + std::to_string(N.Children.size());
      for (size_t C2 : N.Children)
        Out += ' ' + std::to_string(C2);
      Out += '\n';
    }
  }
  Out += "end\n";
  return Out;
}

/// Parent side: payload text back into LaneWire. Strict — any framing
/// mismatch fails the whole parse and the lane is reported as crashed.
bool parseLaneWire(const std::string &Payload, size_t NumPredicates,
                   LaneWire &W) {
  std::istringstream In(Payload);
  std::string Word;
  int Version = 0;
  if (!(In >> Word >> Version) || Word != "lane" || Version != 1)
    return false;
  if (!(In >> Word) || Word != "status" || !(In >> Word))
    return false;
  if (Word == "sat")
    W.Status = ChcResult::Sat;
  else if (Word == "unsat")
    W.Status = ChcResult::Unsat;
  else if (Word == "unknown")
    W.Status = ChcResult::Unknown;
  else
    return false;
  In.ignore(1, '\n');
  if (!getBlock(In, "name", W.Name))
    return false;
  EngineStats &S = W.Stats;
  CheckStats &C = S.Check;
  if (!(In >> Word) || Word != "stats" ||
      !(In >> S.SmtQueries >> S.Samples >> S.Iterations >> S.Seconds >>
        S.TemplatesMined >> S.PolyhedraFacts >> C.ChecksIssued >>
        C.CacheHits >> C.CacheMisses >> C.CacheEvictions >> C.ScopePushes >>
        C.SolverRebuilds >> C.RebuildsAvoided >> C.ConjunctSplits >>
        C.DiskHits >> C.DiskMisses >> C.DiskStores))
    return false;
  if (!(In >> Word))
    return false;
  if (Word == "model") {
    size_t N = 0;
    if (!(In >> N) || N != NumPredicates || In.get() != '\n')
      return false;
    W.Formulas.resize(N);
    for (size_t I = 0; I != N; ++I)
      if (!getBlock(In, "interp", W.Formulas[I]))
        return false;
    if (!(In >> Word))
      return false;
  } else if (Word == "cex") {
    int Present = 0;
    size_t NChildren = 0;
    if (!(In >> Present) || Present != 1)
      return false;
    W.HasCex = true;
    if (!(In >> Word) || Word != "query" || !(In >> W.QueryClauseIndex) ||
        !(In >> NChildren) || NChildren > (size_t(1) << 20))
      return false;
    W.QueryChildren.resize(NChildren);
    for (size_t &C2 : W.QueryChildren)
      if (!(In >> C2))
        return false;
    size_t NNodes = 0;
    if (!(In >> Word) || Word != "nodes" || !(In >> NNodes) ||
        NNodes > (size_t(1) << 20))
      return false;
    W.Nodes.resize(NNodes);
    for (LaneWire::WireNode &Node : W.Nodes) {
      size_t NArgs = 0;
      size_t NKids = 0;
      if (!(In >> Word) || Word != "node" || !(In >> Node.PredIndex) ||
          !(In >> Node.ClauseIndex) || !(In >> NArgs) ||
          NArgs > (size_t(1) << 20))
        return false;
      Node.Args.resize(NArgs);
      for (std::string &A : Node.Args)
        if (!(In >> A))
          return false;
      if (!(In >> NKids) || NKids > (size_t(1) << 20))
        return false;
      Node.Children.resize(NKids);
      for (size_t &K : Node.Children)
        if (!(In >> K))
          return false;
    }
    if (!(In >> Word))
      return false;
  }
  return Word == "end";
}

/// Rebuilds one predicate's printed interpretation formula as a term over
/// `P->Params` in the input manager. The formula is wrapped into a
/// one-clause HORN script whose binders reuse the predicate's own parameter
/// symbols, parsed with the strict front end, and the parsed head-argument
/// variables are substituted with the real parameters (a no-op when the
/// parser interned the binders onto the existing variables).
const Term *parseInterpFormula(const ChcSystem &System, const Predicate *P,
                               const std::string &Formula,
                               std::string &Error) {
  TermManager &TM = System.termManager();
  std::string Script = "(set-logic HORN)\n(declare-fun |la!interp| (";
  for (size_t J = 0; J != P->arity(); ++J)
    Script += J == 0 ? "Int" : " Int";
  Script += ") Bool)\n(assert (forall (";
  if (P->arity() == 0)
    Script += "(|la!unused| Int)";
  for (const Term *Param : P->Params)
    Script += "(" + smtlib2::printTerm(Param) + " Int)";
  Script += ") (=> " + Formula + " ";
  if (P->arity() == 0) {
    Script += "|la!interp|";
  } else {
    Script += "(|la!interp|";
    for (const Term *Param : P->Params)
      Script += " " + smtlib2::printTerm(Param);
    Script += ")";
  }
  Script += ")))\n(check-sat)\n";

  ChcSystem Tmp(TM);
  smtlib2::ParseResult PR = smtlib2::parseSmtLib2(Script, Tmp);
  if (!PR.Ok) {
    Error = "cannot reparse lane model formula: " + PR.error();
    return nullptr;
  }
  if (Tmp.clauses().size() != 1 || !Tmp.clauses()[0].HeadPred ||
      Tmp.clauses()[0].HeadPred->Args.size() != P->arity()) {
    Error = "lane model formula reparsed into an unexpected clause shape";
    return nullptr;
  }
  const HornClause &Clause = Tmp.clauses()[0];
  std::unordered_map<const Term *, const Term *> Map;
  for (size_t J = 0; J != P->arity(); ++J)
    Map[Clause.HeadPred->Args[J]] = P->Params[J];
  return TM.substitute(Clause.Constraint, Map);
}

/// Reconstitutes the winning process lane's wire result in the input
/// manager. A model that fails to rebuild keeps the verdict but records
/// the reason in the lane report (the façade's validation pass will then
/// flag the default all-true interpretation).
ChcSolverResult rebuildLaneResult(const ChcSystem &System, const LaneWire &W,
                                  EngineReport &Report) {
  ChcSolverResult Out(System.termManager());
  Out.Status = W.Status;
  Out.Stats = W.Stats;
  if (W.Status == ChcResult::Sat &&
      W.Formulas.size() == System.predicates().size()) {
    for (size_t I = 0; I != W.Formulas.size(); ++I) {
      std::string Error;
      const Term *F = parseInterpFormula(System, System.predicates()[I],
                                         W.Formulas[I], Error);
      if (F == nullptr) {
        Report.Error = Error;
        break;
      }
      Out.Interp.set(System.predicates()[I], F);
    }
  } else if (W.Status == ChcResult::Unsat && W.HasCex) {
    Counterexample Cex;
    Cex.QueryClauseIndex = W.QueryClauseIndex;
    Cex.QueryChildren = W.QueryChildren;
    bool Ok = true;
    for (const LaneWire::WireNode &N : W.Nodes) {
      Counterexample::Node Copy;
      if (N.PredIndex >= System.predicates().size()) {
        Ok = false;
        break;
      }
      Copy.Pred = System.predicates()[N.PredIndex];
      Copy.ClauseIndex = N.ClauseIndex;
      for (const std::string &A : N.Args) {
        std::optional<Rational> R = Rational::fromString(A);
        if (!R) {
          Ok = false;
          break;
        }
        Copy.Args.push_back(*R);
      }
      Copy.Children = N.Children;
      if (!Ok)
        break;
      Cex.Nodes.push_back(std::move(Copy));
    }
    if (Ok)
      Out.Cex = std::move(Cex);
    else
      Report.Error = "cannot rebuild lane counterexample";
  }
  return Out;
}

/// Everything one lane owns. Workers only ever touch their own slot; the
/// main thread reads the slots after joining every worker.
struct LaneExec {
  std::unique_ptr<TermManager> TM;
  std::unique_ptr<ChcSystem> Clone;
  std::optional<ChcSolverResult> Result;
  std::optional<LaneWire> Wire; ///< process mode: parsed child payload
  EngineReport Report;
};

/// Runs one lane in a forked child. The engine is created in the parent —
/// `Registry.create` takes locks that must never be acquired in a forked
/// child of a multithreaded process — and the child only calls `solve` over
/// already-owned data.
void runProcessLane(const ChcSystem &System, const SolverRegistry &Registry,
                    const EngineId &Engine, const EngineOptions &EO,
                    const PortfolioOptions &Opts,
                    const std::shared_ptr<CancellationToken> &Token,
                    LaneExec &Exec, bool &Definitive) {
  std::unique_ptr<ChcSolverInterface> Solver;
  EngineOptions ChildEO = EO;
  ChildEO.Cancel = nullptr; // cancellation is delivered as SIGKILL
  try {
    Solver = Registry.create(Engine, ChildEO);
  } catch (const std::exception &E) {
    Exec.Report.Crashed = true;
    Exec.Report.Outcome = LaneOutcome::Failed;
    const char *What = E.what();
    Exec.Report.Error = (What != nullptr && *What != '\0')
                            ? What
                            : "engine construction failed";
    return;
  }
  Exec.Report.Name = Solver->name();

  ProcessLimits PL;
  // The child engine enforces its own soft wall budget and returns Unknown;
  // the parent's hard kill lands one second later, for engines that cannot
  // be trusted to stop on their own.
  if (ChildEO.Limits.WallSeconds > 0)
    PL.WallSeconds = ChildEO.Limits.WallSeconds + 1.0;
  PL.CpuSeconds = Opts.LaneCpuSeconds;
  PL.MemoryBytes = Opts.LaneMemoryBytes;

  ChcSolverInterface *SolverPtr = Solver.get();
  ProcessResult PR = runInChildProcess(
      [SolverPtr, &System]() {
        ChcSolverResult R = SolverPtr->solve(System);
        return serializeLaneResult(System, SolverPtr->name(), R);
      },
      PL, Token);

  Exec.Report.Outcome = PR.Outcome;
  switch (PR.Outcome) {
  case LaneOutcome::Completed: {
    LaneWire W;
    if (parseLaneWire(PR.Payload, System.predicates().size(), W)) {
      Exec.Report.Status = W.Status;
      Exec.Report.Stats = W.Stats;
      if (!W.Name.empty())
        Exec.Report.Name = W.Name;
      Definitive = W.Status != ChcResult::Unknown;
      Exec.Wire = std::move(W);
    } else {
      Exec.Report.Crashed = true;
      Exec.Report.Outcome = LaneOutcome::Crashed;
      Exec.Report.Error = "malformed lane result payload";
    }
    break;
  }
  case LaneOutcome::Failed:
  case LaneOutcome::MemoryLimit:
  case LaneOutcome::Crashed:
  case LaneOutcome::CpuLimit:
    Exec.Report.Crashed = true;
    Exec.Report.Error = PR.describe();
    break;
  case LaneOutcome::TimedOut:
    Exec.Report.Error = PR.describe();
    break;
  case LaneOutcome::Cancelled:
    // Status stays Unknown; the caller derives the Cancelled flag from the
    // (tripped) shared token.
    break;
  }
}

/// Copies the winning lane's result back into the input system's manager.
/// Predicates map by index (cloning preserves declaration order), terms go
/// through `TermManager::import`, counterexample arguments are plain
/// rationals and copy directly.
ChcSolverResult translateBack(const ChcSystem &System, const ChcSystem &Clone,
                              const ChcSolverResult &Res) {
  TermManager &TM = System.termManager();
  ChcSolverResult Out(TM);
  Out.Status = Res.Status;
  Out.Stats = Res.Stats;
  if (Res.Status == ChcResult::Sat) {
    for (size_t I = 0, N = System.predicates().size(); I != N; ++I)
      Out.Interp.set(System.predicates()[I],
                     TM.import(Res.Interp.get(Clone.predicates()[I])));
  } else if (Res.Status == ChcResult::Unsat && Res.Cex) {
    Counterexample Cex;
    Cex.QueryClauseIndex = Res.Cex->QueryClauseIndex;
    Cex.QueryChildren = Res.Cex->QueryChildren;
    for (const Counterexample::Node &N : Res.Cex->Nodes) {
      Counterexample::Node Copy;
      Copy.Pred = System.predicates()[N.Pred->Index];
      Copy.Args = N.Args;
      Copy.ClauseIndex = N.ClauseIndex;
      Copy.Children = N.Children;
      Cex.Nodes.push_back(std::move(Copy));
    }
    Out.Cex = std::move(Cex);
  }
  return Out;
}

} // namespace

ChcSolverResult PortfolioSolver::solve(const ChcSystem &System) {
  Timer Total;
  Reports.clear();
  const SolverRegistry &Registry =
      Opts.Registry ? *Opts.Registry : SolverRegistry::global();
  std::vector<PortfolioLane> Lanes =
      Opts.Lanes.empty() ? defaultLanes(Opts.Base, Registry) : Opts.Lanes;

  ChcSolverResult Final(System.termManager());
  if (Lanes.empty()) {
    Final.Stats.Seconds = Total.elapsedSeconds();
    return Final;
  }

  // The shared race token: tripped by the first definitive answer, by the
  // global budget, or by the caller's external token (relayed below, so
  // lanes only ever poll one token).
  auto Token = std::make_shared<CancellationToken>();
  Budget Limits = Opts.Limits.resolvedOver(Opts.Base.Limits);
  Deadline Global(Limits.WallSeconds);

  std::vector<LaneExec> Execs(Lanes.size());
  std::vector<std::thread> Workers;
  std::atomic<int> WinnerIdx{-1};
  std::mutex Mutex;
  std::condition_variable Cv;
  size_t Running = 0;

  for (size_t I = 0; I != Lanes.size(); ++I) {
    PortfolioLane &Lane = Lanes[I];
    LaneExec &Exec = Execs[I];
    Exec.Report.Lane = Lane.Label.empty() ? Lane.Engine.str() : Lane.Label;
    Exec.Report.Engine = Lane.Engine.str();
    Exec.Report.LaneIndex = I;
    if (!Registry.contains(Lane.Engine)) {
      Exec.Report.Crashed = true;
      Exec.Report.Outcome = LaneOutcome::Failed;
      Exec.Report.Error = "unknown engine id '" + Lane.Engine.str() + "'";
      continue;
    }

    // Lane isolation, thread mode: a private manager plus a deep clone of
    // the system. The clone happens on the main thread, before any worker
    // starts, so the input manager is never touched concurrently. Process
    // mode skips the clone entirely — fork() hands the child a private
    // copy-on-write image of the input system.
    if (Opts.Isolate == Isolation::Thread) {
      Exec.TM = std::make_unique<TermManager>();
      Exec.Clone = std::make_unique<ChcSystem>(*Exec.TM);
      cloneSystem(System, *Exec.Clone);
    }

    EngineOptions EO = Lane.Opts;
    EO.Limits = EO.Limits.resolvedOver(Opts.Base.Limits);
    if (Opts.LaneWallSeconds > 0 &&
        (EO.Limits.WallSeconds <= 0 ||
         EO.Limits.WallSeconds > Opts.LaneWallSeconds))
      EO.Limits.WallSeconds = Opts.LaneWallSeconds;
    EO.Cancel = Token;

    ++Running;
    Exec.Report.QueuedSeconds = Total.elapsedSeconds();
    Workers.emplace_back([this, &System, &Registry, &Exec, &WinnerIdx, &Mutex,
                          &Cv, &Running, &Total, Token, EO = std::move(EO),
                          Engine = Lane.Engine, Idx = static_cast<int>(I)]() {
      Timer LaneClock;
      // `Total` started on the main thread before any worker; its start
      // point is immutable, so reading the race clock here is safe.
      Exec.Report.StartSeconds = Total.elapsedSeconds();
      bool Definitive = false;
      if (Opts.Isolate == Isolation::Process) {
        runProcessLane(System, Registry, Engine, EO, Opts, Token, Exec,
                       Definitive);
      } else {
        try {
          std::unique_ptr<ChcSolverInterface> Solver =
              Registry.create(Engine, EO);
          Exec.Report.Name = Solver->name();
          Exec.Result = Solver->solve(*Exec.Clone);
          Exec.Report.Status = Exec.Result->Status;
          Exec.Report.Stats = Exec.Result->Stats;
          Definitive = Exec.Result->Status != ChcResult::Unknown;
        } catch (const std::exception &E) {
          // Keep the engine's own words: the diagnostic is the only trace
          // of what went wrong that survives into reports and logs.
          Exec.Report.Crashed = true;
          Exec.Report.Outcome = LaneOutcome::Failed;
          const char *What = E.what();
          Exec.Report.Error = (What != nullptr && *What != '\0')
                                  ? What
                                  : "engine threw an exception with no message";
        } catch (...) {
          Exec.Report.Crashed = true;
          Exec.Report.Outcome = LaneOutcome::Failed;
          Exec.Report.Error = "engine threw a non-standard exception";
        }
      }
      Exec.Report.Seconds = LaneClock.elapsedSeconds();
      Exec.Report.StopSeconds = Total.elapsedSeconds();
      Exec.Report.Cancelled = !Exec.Report.Crashed &&
                              Exec.Report.Status == ChcResult::Unknown &&
                              Token->cancelled();
      if (Definitive) {
        // First definitive answer claims the race and stops everyone else;
        // cancelling here (not in the monitor tick) bounds the latency by
        // one SMT propagation round.
        int Expected = -1;
        if (WinnerIdx.compare_exchange_strong(Expected, Idx,
                                              std::memory_order_acq_rel))
          Token->cancel();
      }
      {
        std::lock_guard<std::mutex> Lock(Mutex);
        --Running;
      }
      Cv.notify_all();
    });
  }

  // Race monitor: wake on lane completion or every tick to enforce the
  // global budget and relay the caller's external token.
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    while (Running > 0) {
      Cv.wait_for(Lock, std::chrono::milliseconds(25));
      if (WinnerIdx.load(std::memory_order_acquire) >= 0 ||
          Global.expired() || isCancelled(Opts.Base.Cancel))
        Token->cancel();
    }
  }
  for (std::thread &W : Workers)
    W.join();

  int Winner = WinnerIdx.load(std::memory_order_acquire);
  if (Winner >= 0) {
    LaneExec &Exec = Execs[static_cast<size_t>(Winner)];
    Exec.Report.Winner = true;
    Exec.Report.Cancelled = false;
    if (Opts.Isolate == Isolation::Process)
      Final = rebuildLaneResult(System, *Exec.Wire, Exec.Report);
    else
      Final = translateBack(System, *Exec.Clone, *Exec.Result);
  }
  Final.Stats.Seconds = Total.elapsedSeconds();

  Reports.clear();
  Reports.reserve(Execs.size());
  for (LaneExec &Exec : Execs)
    Reports.push_back(std::move(Exec.Report));
  std::sort(Reports.begin(), Reports.end(),
            [](const EngineReport &A, const EngineReport &B) {
              return A.Lane < B.Lane;
            });
  return Final;
}
