//===- solver/Portfolio.cpp - Parallel portfolio CHC engine ---------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/Portfolio.h"

#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>

using namespace la;
using namespace la::solver;
using namespace la::chc;

std::vector<PortfolioLane>
PortfolioSolver::defaultLanes(const EngineOptions &Base,
                              const SolverRegistry &R) {
  std::vector<PortfolioLane> Lanes;
  Lanes.push_back({"la", "la", Base});
  {
    PortfolioLane Seeded{"la", "la-seed2", Base};
    Seeded.Opts.Seed = Base.Seed ? Base.Seed + 1 : 2;
    Lanes.push_back(std::move(Seeded));
  }
  Lanes.push_back({"analysis", "analysis", Base});
  // Baseline lanes only when `registerBuiltinEngines()` ran.
  if (R.contains("pdr"))
    Lanes.push_back({"pdr", "pdr", Base});
  if (R.contains("unwind"))
    Lanes.push_back({"unwind", "unwind", Base});
  return Lanes;
}

namespace {

/// Everything one lane owns. Workers only ever touch their own slot; the
/// main thread reads the slots after joining every worker.
struct LaneExec {
  std::unique_ptr<TermManager> TM;
  std::unique_ptr<ChcSystem> Clone;
  std::optional<ChcSolverResult> Result;
  EngineReport Report;
};

/// Copies the winning lane's result back into the input system's manager.
/// Predicates map by index (cloning preserves declaration order), terms go
/// through `TermManager::import`, counterexample arguments are plain
/// rationals and copy directly.
ChcSolverResult translateBack(const ChcSystem &System, const ChcSystem &Clone,
                              const ChcSolverResult &Res) {
  TermManager &TM = System.termManager();
  ChcSolverResult Out(TM);
  Out.Status = Res.Status;
  Out.Stats = Res.Stats;
  if (Res.Status == ChcResult::Sat) {
    for (size_t I = 0, N = System.predicates().size(); I != N; ++I)
      Out.Interp.set(System.predicates()[I],
                     TM.import(Res.Interp.get(Clone.predicates()[I])));
  } else if (Res.Status == ChcResult::Unsat && Res.Cex) {
    Counterexample Cex;
    Cex.QueryClauseIndex = Res.Cex->QueryClauseIndex;
    Cex.QueryChildren = Res.Cex->QueryChildren;
    for (const Counterexample::Node &N : Res.Cex->Nodes) {
      Counterexample::Node Copy;
      Copy.Pred = System.predicates()[N.Pred->Index];
      Copy.Args = N.Args;
      Copy.ClauseIndex = N.ClauseIndex;
      Copy.Children = N.Children;
      Cex.Nodes.push_back(std::move(Copy));
    }
    Out.Cex = std::move(Cex);
  }
  return Out;
}

} // namespace

ChcSolverResult PortfolioSolver::solve(const ChcSystem &System) {
  Timer Total;
  Reports.clear();
  const SolverRegistry &Registry =
      Opts.Registry ? *Opts.Registry : SolverRegistry::global();
  std::vector<PortfolioLane> Lanes =
      Opts.Lanes.empty() ? defaultLanes(Opts.Base, Registry) : Opts.Lanes;

  ChcSolverResult Final(System.termManager());
  if (Lanes.empty()) {
    Final.Stats.Seconds = Total.elapsedSeconds();
    return Final;
  }

  // The shared race token: tripped by the first definitive answer, by the
  // global budget, or by the caller's external token (relayed below, so
  // lanes only ever poll one token).
  auto Token = std::make_shared<CancellationToken>();
  Budget Limits = Opts.Limits.resolvedOver(Opts.Base.Limits);
  Deadline Global(Limits.WallSeconds);

  std::vector<LaneExec> Execs(Lanes.size());
  std::vector<std::thread> Workers;
  std::atomic<int> WinnerIdx{-1};
  std::mutex Mutex;
  std::condition_variable Cv;
  size_t Running = 0;

  for (size_t I = 0; I != Lanes.size(); ++I) {
    PortfolioLane &Lane = Lanes[I];
    LaneExec &Exec = Execs[I];
    Exec.Report.Lane = Lane.Label.empty() ? Lane.Engine : Lane.Label;
    Exec.Report.Engine = Lane.Engine;
    if (!Registry.contains(Lane.Engine)) {
      Exec.Report.Crashed = true;
      Exec.Report.Error = "unknown engine id '" + Lane.Engine + "'";
      continue;
    }

    // Lane isolation: a private manager plus a deep clone of the system.
    // The clone happens on the main thread, before any worker starts, so
    // the input manager is never touched concurrently.
    Exec.TM = std::make_unique<TermManager>();
    Exec.Clone = std::make_unique<ChcSystem>(*Exec.TM);
    cloneSystem(System, *Exec.Clone);

    EngineOptions EO = Lane.Opts;
    EO.Limits = EO.Limits.resolvedOver(Opts.Base.Limits);
    if (Opts.LaneWallSeconds > 0 &&
        (EO.Limits.WallSeconds <= 0 ||
         EO.Limits.WallSeconds > Opts.LaneWallSeconds))
      EO.Limits.WallSeconds = Opts.LaneWallSeconds;
    EO.Cancel = Token;

    ++Running;
    Workers.emplace_back([&Registry, &Exec, &WinnerIdx, &Mutex, &Cv, &Running,
                          Token, EO = std::move(EO), Engine = Lane.Engine,
                          Idx = static_cast<int>(I)]() {
      Timer LaneClock;
      bool Definitive = false;
      try {
        std::unique_ptr<ChcSolverInterface> Solver =
            Registry.create(Engine, EO);
        Exec.Report.Name = Solver->name();
        Exec.Result = Solver->solve(*Exec.Clone);
        Exec.Report.Status = Exec.Result->Status;
        Exec.Report.Stats = Exec.Result->Stats;
        Definitive = Exec.Result->Status != ChcResult::Unknown;
      } catch (const std::exception &E) {
        Exec.Report.Crashed = true;
        Exec.Report.Error = E.what();
      } catch (...) {
        Exec.Report.Crashed = true;
        Exec.Report.Error = "non-standard exception";
      }
      Exec.Report.Seconds = LaneClock.elapsedSeconds();
      Exec.Report.Cancelled = !Exec.Report.Crashed &&
                              Exec.Report.Status == ChcResult::Unknown &&
                              Token->cancelled();
      if (Definitive) {
        // First definitive answer claims the race and stops everyone else;
        // cancelling here (not in the monitor tick) bounds the latency by
        // one SMT propagation round.
        int Expected = -1;
        if (WinnerIdx.compare_exchange_strong(Expected, Idx,
                                              std::memory_order_acq_rel))
          Token->cancel();
      }
      {
        std::lock_guard<std::mutex> Lock(Mutex);
        --Running;
      }
      Cv.notify_all();
    });
  }

  // Race monitor: wake on lane completion or every tick to enforce the
  // global budget and relay the caller's external token.
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    while (Running > 0) {
      Cv.wait_for(Lock, std::chrono::milliseconds(25));
      if (WinnerIdx.load(std::memory_order_acquire) >= 0 ||
          Global.expired() || isCancelled(Opts.Base.Cancel))
        Token->cancel();
    }
  }
  for (std::thread &W : Workers)
    W.join();

  int Winner = WinnerIdx.load(std::memory_order_acquire);
  if (Winner >= 0) {
    LaneExec &Exec = Execs[static_cast<size_t>(Winner)];
    Exec.Report.Winner = true;
    Exec.Report.Cancelled = false;
    Final = translateBack(System, *Exec.Clone, *Exec.Result);
  }
  Final.Stats.Seconds = Total.elapsedSeconds();

  Reports.clear();
  Reports.reserve(Execs.size());
  for (LaneExec &Exec : Execs)
    Reports.push_back(std::move(Exec.Report));
  std::sort(Reports.begin(), Reports.end(),
            [](const EngineReport &A, const EngineReport &B) {
              return A.Lane < B.Lane;
            });
  return Final;
}
