//===- solver/SolveFacade.h - One-call CHC solving façade -------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-call entry points `la::solver::solveFile`, `solveChcText` and
/// `solveSystem`: they own the parser, the engine construction through the
/// `SolverRegistry`, and the witness validation that the examples used to
/// duplicate, and return a self-contained `SolveResult` (witnesses rendered
/// to strings, so nothing points into the solve's term manager after it is
/// gone).
///
/// Engines are selected by registry id (`SolveOptions::Engine`): "la"
/// (default), "analysis", "portfolio", or — after
/// `baselines::registerBuiltinEngines()` — "pdr", "unwind" and friends.
///
//===----------------------------------------------------------------------===//

#ifndef LA_SOLVER_SOLVEFACADE_H
#define LA_SOLVER_SOLVEFACADE_H

#include "solver/Portfolio.h"
#include "solver/SolverRegistry.h"

#include <functional>
#include <memory>
#include <string>

namespace la::solver {

/// Configuration of the façade.
struct SolveOptions {
  /// Single budget shared by every engine: wall clock plus main-loop
  /// iteration cap. Nonzero fields override engine defaults
  /// (`Budget::resolvedOver`); `{0, 0}` defers to them entirely.
  Budget Limits{60, 0};
  /// Registry id of the engine to run ("la", "analysis", "portfolio",
  /// "pdr", ...). Unknown ids fail the call with an error listing the
  /// registered ids.
  std::string Engine = "la";
  /// Data-driven engine configuration (analysis options included), the base
  /// of the "la"/"analysis" engines and of every portfolio lane.
  DataDrivenOptions Solver;
  /// Portfolio configuration, consulted only when `Engine == "portfolio"`
  /// (its `Base`/`Limits` are filled in from the fields above).
  PortfolioOptions Portfolio;
  /// Re-check a sat model clause by clause with `chc::checkInterpretation`.
  bool ValidateModel = true;
  /// Cooperative cancellation of the whole call.
  std::shared_ptr<const CancellationToken> Cancel;
  /// Deprecated escape hatch predating the registry: a factory overriding
  /// the engine construction entirely. Still honored for one release;
  /// register an engine and set `Engine` instead.
  [[deprecated("register an engine with SolverRegistry and set Engine "
               "instead")]] std::function<std::unique_ptr<
      chc::ChcSolverInterface>()> MakeSolver;
};

/// Self-contained outcome of one façade call. Term-level facts are rendered
/// to strings because the term manager dies with the call.
struct SolveResult {
  /// False on I/O or parse failure or an unknown engine id; `Error` says
  /// why and `Status` stays Unknown.
  bool Ok = false;
  std::string Error;

  chc::ChcResult Status = chc::ChcResult::Unknown;
  std::string SolverName;
  size_t Clauses = 0;
  size_t Predicates = 0;
  bool Recursive = false;

  /// Rendered interpretation when Status == Sat.
  std::string Model;
  /// True when Status == Sat and the model passed independent re-validation
  /// (always false with `ValidateModel` off).
  bool ModelValidated = false;
  /// Rendered refutation when Status == Unsat and the solver produced one.
  std::string Cex;

  /// Winning engine's bookkeeping (queries, samples, iterations, seconds).
  chc::SolveStats Solver;
  /// Per-engine records, sorted by lane label: one entry per portfolio
  /// lane, or a single synthesized entry for a single-engine run.
  std::vector<EngineReport> Engines;
  /// Static pre-analysis counters, one entry per executed pass (empty when
  /// analysis is off or the engine bypasses it).
  std::vector<analysis::PassStats> AnalysisPasses;
  /// True when the pre-analysis alone discharged every query clause.
  bool SolvedByAnalysis = false;

  /// Compact rendering for drivers: verdict line plus one line per engine
  /// report (`*` winner, `!` crashed, `~` cancelled).
  std::string summary() const;
};

/// Previous name of `SolveResult`, kept for one release of source compat.
using SolveStats [[deprecated("renamed to SolveResult")]] = SolveResult;

/// Solves an already-built system. `System` keeps ownership of its terms;
/// only `SolveResult` escapes.
SolveResult solveSystem(const chc::ChcSystem &System,
                        const SolveOptions &Opts = {});

/// Parses SMT-LIB2 HORN text into a fresh system and solves it.
SolveResult solveChcText(const std::string &Text,
                         const SolveOptions &Opts = {});

/// Reads, parses and solves an SMT-LIB2 HORN file.
SolveResult solveFile(const std::string &Path, const SolveOptions &Opts = {});

} // namespace la::solver

#endif // LA_SOLVER_SOLVEFACADE_H
