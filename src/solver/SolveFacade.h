//===- solver/SolveFacade.h - One-call CHC solving façade -------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one façade every driver goes through — CLI, daemon, benches, tests:
///
///   * `SolveRequest` names the input (inline source or a file path), its
///     format (SMT-LIB2 HORN or mini-C, auto-detected by default), the
///     registry engine id, and the per-request resource limits;
///   * `solve(Request)` reads, parses (through the strict `smtlib2` front
///     end or the mini-C encoder), solves over the `SolverRegistry`, and
///     independently validates the witness;
///   * `SolveResult` is self-contained — witnesses are rendered to strings,
///     so nothing points into the solve's term manager after it is gone.
///
/// `solveFile` / `solveChcText` / `solveSystem` are thin wrappers over the
/// same path for callers that already hold a path, HORN text, or a built
/// system. Engines are selected by registry id (`SolveOptions::Engine`):
/// "la" (default), "analysis", "portfolio", or — after
/// `baselines::registerBuiltinEngines()` — "pdr", "unwind" and friends.
///
/// On top of the single-engine path sits the schedule policy
/// (`SolveOptions::Schedule`): `race` runs the full portfolio, `staged`
/// runs the probe → top-k → race escalation ladder of `StagedSolver`, and
/// `auto` picks staged whenever at least two selectable engines are
/// registered. `SolveOptionsBuilder` is the validated way to assemble all
/// of this — it rejects contradictory combinations (an explicit engine
/// under a portfolio policy, crash engines without process isolation)
/// before any work starts.
///
//===----------------------------------------------------------------------===//

#ifndef LA_SOLVER_SOLVEFACADE_H
#define LA_SOLVER_SOLVEFACADE_H

#include "solver/Scheduler.h"
#include "solver/SolverRegistry.h"

#include <memory>
#include <optional>
#include <string>

namespace la {
class FileCache;
}

namespace la::solver {

/// Input language of a solve request.
enum class SourceFormat {
  Auto,    ///< Detect from the path extension, then the content shape.
  SmtLib2, ///< SMT-LIB2 HORN (CHC-COMP), incl. the Z3 fixedpoint dialect.
  MiniC,   ///< The paper's mini-C language, encoded via `frontend`.
};

const char *toString(SourceFormat F);

/// Parses "auto" / "smt2" / "smtlib2" / "mini-c" / "c" (as accepted by the
/// CLI `--format` flag and the daemon request schema).
std::optional<SourceFormat> parseSourceFormat(const std::string &Name);

/// Configuration of the façade.
struct SolveOptions {
  /// Single budget shared by every engine: wall clock plus main-loop
  /// iteration cap. Nonzero fields override engine defaults
  /// (`Budget::resolvedOver`); `{0, 0}` defers to them entirely.
  Budget Limits{60, 0};
  /// Registry id of the engine to run ("la", "analysis", "portfolio",
  /// "pdr", ...). Unknown ids fail the call with an error listing the
  /// registered ids. Consulted only under the `Single` schedule policy —
  /// `race`/`staged`/`auto` pick their own engines.
  EngineId Engine{"la"};
  /// Schedule policy plus its staged-mode knobs (top-k, budget fractions,
  /// selector). `Single` (the default) preserves the legacy behavior of
  /// running exactly `Engine`.
  ScheduleOptions Schedule;
  /// Data-driven engine configuration (analysis options included), the base
  /// of the "la"/"analysis" engines and of every portfolio lane.
  DataDrivenOptions Solver;
  /// Portfolio configuration, consulted only when `Engine == "portfolio"`
  /// (its `Base`/`Limits` are filled in from the fields above).
  PortfolioOptions Portfolio;
  /// Re-check a sat model clause by clause with `chc::checkInterpretation`.
  bool ValidateModel = true;
  /// Cooperative cancellation of the whole call.
  std::shared_ptr<const CancellationToken> Cancel;
  /// Thread (default) runs engines in-process; Process forks each portfolio
  /// lane — or the single selected engine — into a hard-killable child, so
  /// a segfaulting, aborting, or runaway engine cannot take the caller
  /// down. Per-lane rlimits come from `Portfolio.LaneMemoryBytes` /
  /// `Portfolio.LaneCpuSeconds` (they apply to the single-engine wrapper
  /// too).
  Isolation Isolate = Isolation::Thread;
  /// Disk-backed persistent result cache (shared across requests and
  /// daemon restarts). Two tiers hang off this one object: whole-request
  /// verdicts keyed by a canonical hash of the printed SMT-LIB2 system +
  /// engine + budget bucket (consulted by `solve()` after parsing), and
  /// Valid clause-check verdicts under `ClauseCheckContext`'s memo cache.
  std::shared_ptr<FileCache> DiskCache;
};

/// Validated assembly of `SolveOptions`. The options struct accreted knobs
/// PR by PR — engine id, budget, isolation, schedule, caches — and several
/// combinations are contradictions that used to fail late (or worse,
/// silently run something else). The builder is where those invariants
/// live: `build()` either returns a coherent options blob or names the
/// conflict. Setters follow the fluent pattern so drivers read as the
/// command lines they parse.
class SolveOptionsBuilder {
public:
  SolveOptionsBuilder() = default;
  /// Starts from an existing blob (e.g. a daemon's per-request defaults).
  explicit SolveOptionsBuilder(SolveOptions Base) : Opts(std::move(Base)) {}

  /// Selects a specific engine and forces the `Single` policy with it: an
  /// explicit engine choice and a portfolio policy are contradictory, and
  /// `build()` rejects the combination if `schedule()` says otherwise.
  SolveOptionsBuilder &engine(EngineId Id) {
    Opts.Engine = std::move(Id);
    EngineExplicit = true;
    return *this;
  }
  SolveOptionsBuilder &wallSeconds(double Seconds) {
    Opts.Limits.WallSeconds = Seconds;
    return *this;
  }
  SolveOptionsBuilder &maxIterations(size_t N) {
    Opts.Limits.MaxIterations = N;
    return *this;
  }
  SolveOptionsBuilder &schedule(SchedulePolicy P) {
    Opts.Schedule.Policy = P;
    ScheduleExplicit = true;
    return *this;
  }
  SolveOptionsBuilder &topK(size_t K) {
    Opts.Schedule.TopK = K;
    return *this;
  }
  SolveOptionsBuilder &selector(std::shared_ptr<const EngineSelector> S) {
    Opts.Schedule.Selector = std::move(S);
    return *this;
  }
  SolveOptionsBuilder &isolation(Isolation I) {
    Opts.Isolate = I;
    return *this;
  }
  SolveOptionsBuilder &validateModel(bool V) {
    Opts.ValidateModel = V;
    return *this;
  }
  SolveOptionsBuilder &cancel(std::shared_ptr<const CancellationToken> T) {
    Opts.Cancel = std::move(T);
    return *this;
  }
  SolveOptionsBuilder &diskCache(std::shared_ptr<FileCache> C) {
    Opts.DiskCache = std::move(C);
    return *this;
  }
  /// Declares that deliberately crashing diagnostic engines (crash-*) may
  /// run in this configuration; `build()` then requires process isolation —
  /// a thread-mode segfault takes the whole caller down.
  SolveOptionsBuilder &allowCrashEngines(bool Allow = true) {
    CrashEngines = Allow;
    return *this;
  }

  struct Validated {
    bool Ok = false;
    std::string Error;
    SolveOptions Options;
  };
  /// Checks the cross-field invariants and returns the final blob; on
  /// conflict `Ok` is false and `Error` names the offending combination.
  Validated build() const;

private:
  SolveOptions Opts;
  bool EngineExplicit = false;
  bool ScheduleExplicit = false;
  bool CrashEngines = false;
};

/// One solve request: source + format + engine + limits. This is the
/// request schema shared by the CLI driver, the solver daemon and the
/// benches; engine and limits travel inside `Options`.
struct SolveRequest {
  /// Inline source text, used when `Path` is empty.
  std::string Source;
  /// File to read; when nonempty it wins over `Source` and its name seeds
  /// format detection and diagnostics.
  std::string Path;
  SourceFormat Format = SourceFormat::Auto;
  SolveOptions Options;
};

/// Self-contained outcome of one façade call. Term-level facts are rendered
/// to strings because the term manager dies with the call.
struct SolveResult {
  /// False on I/O or parse failure or an unknown engine id; `Error` says
  /// why and `Status` stays Unknown.
  bool Ok = false;
  std::string Error;

  chc::ChcResult Status = chc::ChcResult::Unknown;
  std::string SolverName;
  /// Input format the request resolved to (never Auto on success).
  SourceFormat Format = SourceFormat::Auto;
  size_t Clauses = 0;
  size_t Predicates = 0;
  bool Recursive = false;

  /// Rendered interpretation when Status == Sat.
  std::string Model;
  /// True when Status == Sat and the model passed independent re-validation
  /// (always false with `ValidateModel` off).
  bool ModelValidated = false;
  /// Rendered refutation when Status == Unsat and the solver produced one.
  std::string Cex;

  /// Winning engine's bookkeeping (queries, samples, iterations, seconds).
  chc::EngineStats Solver;
  /// Per-engine records, sorted by lane label: one entry per portfolio
  /// lane, or a single synthesized entry for a single-engine run.
  std::vector<EngineReport> Engines;
  /// Static pre-analysis counters, one entry per executed pass (empty when
  /// analysis is off or the engine bypasses it).
  std::vector<analysis::PassStats> AnalysisPasses;
  /// True when the pre-analysis alone discharged every query clause.
  bool SolvedByAnalysis = false;
  /// Per-stage records of a staged solve, in execution order (empty for
  /// single-engine and plain-race runs).
  std::vector<StageReport> Stages;
  /// True when a staged solve fell through to the full escalation race.
  bool Escalated = false;
  /// True when the whole result was served from the persistent disk cache
  /// (`SolveOptions::DiskCache`) without running any engine.
  bool FromDiskCache = false;

  /// Compact rendering for drivers: verdict line plus one line per engine
  /// report (`*` winner, `!` crashed, `~` cancelled).
  std::string summary() const;
};

/// Resolves the input language of \p Request without parsing it: the path
/// extension decides when it is conclusive (".smt2" / ".c" / ...), else the
/// content shape (a leading `(` after trivia means SMT-LIB2, a leading
/// mini-C keyword means mini-C). Returns `Auto` when the sniff is
/// inconclusive; `solve()` then falls back deterministically — mini-C
/// first, then SMT-LIB2 — and reports a diagnostic naming both rejected
/// interpretations if neither parses.
SourceFormat detectFormat(const std::string &Path, const std::string &Source);

/// Serializes a successful result to the persistent-cache record form.
std::string serializeResult(const SolveResult &R);
/// Inverse of `serializeResult`; false (and \p R unspecified) on any
/// framing or field mismatch — corrupt records read as cache misses.
bool deserializeResult(const std::string &Text, SolveResult &R);

/// The one entry point: reads (when `Path` is set), detects the format,
/// parses, solves, validates.
SolveResult solve(const SolveRequest &Request);

/// Solves an already-built system. `System` keeps ownership of its terms;
/// only `SolveResult` escapes.
SolveResult solveSystem(const chc::ChcSystem &System,
                        const SolveOptions &Opts = {});

/// Parses SMT-LIB2 HORN text into a fresh system and solves it.
SolveResult solveChcText(const std::string &Text,
                         const SolveOptions &Opts = {});

/// Reads, format-detects (SMT-LIB2 vs mini-C), parses and solves a file.
SolveResult solveFile(const std::string &Path, const SolveOptions &Opts = {});

} // namespace la::solver

#endif // LA_SOLVER_SOLVEFACADE_H
