//===- solver/SolveFacade.h - One-call CHC solving façade -------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-call entry points `la::solver::solveFile`, `solveChcText` and
/// `solveSystem`: they own the parser, the static pre-analysis pipeline and
/// the `DataDrivenChcSolver` wiring that the examples used to duplicate,
/// and return a self-contained `SolveStats` (witnesses rendered to strings,
/// so nothing points into the solve's term manager after it is gone).
///
//===----------------------------------------------------------------------===//

#ifndef LA_SOLVER_SOLVEFACADE_H
#define LA_SOLVER_SOLVEFACADE_H

#include "solver/DataDrivenSolver.h"

#include <functional>
#include <memory>
#include <string>

namespace la::solver {

/// Configuration of the façade.
struct SolveOptions {
  /// Wall-clock budget in seconds (0 = keep `Solver.TimeoutSeconds`).
  double TimeoutSeconds = 60;
  /// Data-driven solver configuration (analysis options included); the
  /// façade copies `TimeoutSeconds` over it when nonzero.
  DataDrivenOptions Solver;
  /// Re-check a sat model clause by clause with `chc::checkInterpretation`.
  bool ValidateModel = true;
  /// Factory overriding the solver construction (the command-line driver
  /// uses this to select baseline solvers without adding a baselines
  /// dependency to this library). When unset, a `DataDrivenChcSolver` over
  /// `Solver` is used.
  std::function<std::unique_ptr<chc::ChcSolverInterface>()> MakeSolver;
};

/// Self-contained outcome of one façade call. Term-level facts are rendered
/// to strings because the term manager dies with the call.
struct SolveStats {
  /// False on I/O or parse failure; `Error` says why and `Status` stays
  /// Unknown.
  bool Ok = false;
  std::string Error;

  chc::ChcResult Status = chc::ChcResult::Unknown;
  std::string SolverName;
  size_t Clauses = 0;
  size_t Predicates = 0;
  bool Recursive = false;

  /// Rendered interpretation when Status == Sat.
  std::string Model;
  /// True when Status == Sat and the model passed independent re-validation
  /// (always false with `ValidateModel` off).
  bool ModelValidated = false;
  /// Rendered refutation when Status == Unsat and the solver produced one.
  std::string Cex;

  /// CEGAR-loop bookkeeping (queries, samples, iterations, seconds).
  chc::SolveStats Solver;
  /// Static pre-analysis counters, one entry per executed pass (empty when
  /// analysis is off or a custom solver ran).
  std::vector<analysis::PassStats> AnalysisPasses;
  /// True when the pre-analysis alone discharged every query clause.
  bool SolvedByAnalysis = false;

  /// Compact one-line rendering for drivers.
  std::string summary() const;
};

/// Solves an already-built system. `System` keeps ownership of its terms;
/// only `SolveStats` escapes.
SolveStats solveSystem(const chc::ChcSystem &System,
                       const SolveOptions &Opts = {});

/// Parses SMT-LIB2 HORN text into a fresh system and solves it.
SolveStats solveChcText(const std::string &Text,
                        const SolveOptions &Opts = {});

/// Reads, parses and solves an SMT-LIB2 HORN file.
SolveStats solveFile(const std::string &Path, const SolveOptions &Opts = {});

} // namespace la::solver

#endif // LA_SOLVER_SOLVEFACADE_H
