//===- solver/SolveFacade.cpp - One-call CHC solving façade ---------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/SolveFacade.h"

#include "frontend/Encoder.h"
#include "smtlib2/Parser.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace la;
using namespace la::chc;

const char *solver::toString(SourceFormat F) {
  switch (F) {
  case SourceFormat::Auto:
    return "auto";
  case SourceFormat::SmtLib2:
    return "smt2";
  case SourceFormat::MiniC:
    return "mini-c";
  }
  return "?";
}

std::optional<solver::SourceFormat>
solver::parseSourceFormat(const std::string &Name) {
  if (Name == "auto")
    return SourceFormat::Auto;
  if (Name == "smt2" || Name == "smtlib2" || Name == "horn")
    return SourceFormat::SmtLib2;
  if (Name == "mini-c" || Name == "minic" || Name == "c")
    return SourceFormat::MiniC;
  return std::nullopt;
}

std::string solver::SolveResult::summary() const {
  if (!Ok)
    return "error: " + Error;
  std::string Out = toString(Status);
  Out += " (" + SolverName + ", " + Solver.summary() + ")";
  size_t Inlined = 0, Removed = 0;
  for (const analysis::PassStats &P : AnalysisPasses) {
    Inlined += P.PredicatesInlined;
    Removed += P.ClausesRemoved;
  }
  if (Inlined + Removed > 0)
    Out += " [inlined " + std::to_string(Inlined) + " preds, removed " +
           std::to_string(Removed) + " clauses]";
  // Per-pass wall-clock and the new hot-path counters (transfer cache, LP
  // pivots) so a one-line summary shows where the analysis time went.
  if (!AnalysisPasses.empty()) {
    size_t XferHits = 0, XferMisses = 0;
    unsigned long long Pivots = 0;
    std::string Times;
    for (const analysis::PassStats &P : AnalysisPasses) {
      XferHits += P.XferCacheHits;
      XferMisses += P.XferCacheMisses;
      Pivots += P.LpPivots;
      char Seg[96];
      snprintf(Seg, sizeof(Seg), "%s%s %.0fms", Times.empty() ? "" : "  ",
               P.Name.c_str(), P.Seconds * 1000.0);
      Times += Seg;
    }
    Out += " [" + Times + "]";
    if (XferHits + XferMisses > 0)
      Out += " [xfer-cache " + std::to_string(XferHits) + "/" +
             std::to_string(XferHits + XferMisses) + "]";
    if (Pivots > 0)
      Out += " [lp-pivots " + std::to_string(Pivots) + "]";
  }
  if (SolvedByAnalysis)
    Out += " [solved by pre-analysis]";
  // Per-lane block for portfolio runs. `Engines` is sorted by lane label,
  // so the rendering is deterministic regardless of completion order.
  if (Engines.size() > 1) {
    for (const EngineReport &R : Engines) {
      char Mark = R.Winner ? '*' : R.Crashed ? '!' : R.Cancelled ? '~' : ' ';
      char Line[160];
      snprintf(Line, sizeof(Line), "\n  %c %-12s %-8s %.3fs", Mark,
               R.Lane.c_str(), toString(R.Status), R.Seconds);
      Out += Line;
      if (R.Crashed)
        Out += "  [" + R.Error + "]";
    }
  }
  return Out;
}

solver::SolveResult solver::solveSystem(const ChcSystem &System,
                                        const SolveOptions &Opts) {
  SolveResult Out;
  Out.Clauses = System.clauses().size();
  Out.Predicates = System.predicates().size();
  Out.Recursive = System.isRecursive();

  const SolverRegistry &Registry = SolverRegistry::global();
  EngineOptions EO;
  EO.Limits = Opts.Limits;
  EO.Cancel = Opts.Cancel;
  EO.DataDriven = Opts.Solver;
  // Non-data-driven engines share the data-driven SMT budget by default.
  EO.Smt = Opts.Solver.Smt;

  std::unique_ptr<ChcSolverInterface> Solver;
  if (Opts.Engine == "portfolio") {
    // Build the portfolio directly so custom lanes in `Opts.Portfolio`
    // survive; the registry path would drop them.
    PortfolioOptions PO = Opts.Portfolio;
    PO.Base = EO;
    PO.Limits = PO.Limits.resolvedOver(Opts.Limits);
    Solver = std::make_unique<PortfolioSolver>(std::move(PO));
  } else {
    Solver = Registry.create(Opts.Engine, EO);
    if (!Solver) {
      Out.Error = "unknown engine '" + Opts.Engine + "' (registered:";
      for (const std::string &Id : Registry.ids())
        Out.Error += " " + Id;
      Out.Error += ")";
      return Out;
    }
  }
  Out.Ok = true;
  Out.SolverName = Solver->name();

  ChcSolverResult R = Solver->solve(System);
  Out.Status = R.Status;
  Out.Solver = R.Stats;
  if (R.Status == ChcResult::Sat) {
    Out.Model = R.Interp.toString();
    if (Opts.ValidateModel)
      Out.ModelValidated =
          checkInterpretation(System, R.Interp) == ClauseStatus::Valid;
  }
  if (R.Status == ChcResult::Unsat && R.Cex)
    Out.Cex = R.Cex->toString(System);

  if (auto *Portfolio = dynamic_cast<PortfolioSolver *>(Solver.get())) {
    Out.Engines = Portfolio->reports();
  } else {
    if (auto *DataDriven = dynamic_cast<DataDrivenChcSolver *>(Solver.get())) {
      Out.AnalysisPasses = DataDriven->analysisResult().Passes;
      Out.SolvedByAnalysis = DataDriven->detailedStats().SolvedByAnalysis;
    }
    EngineReport Rep;
    Rep.Lane = Opts.Engine;
    Rep.Engine = Opts.Engine;
    Rep.Name = Out.SolverName;
    Rep.Status = R.Status;
    Rep.Winner = R.Status != ChcResult::Unknown;
    Rep.Seconds = R.Stats.Seconds;
    Rep.Stats = R.Stats;
    Out.Engines.push_back(std::move(Rep));
  }
  return Out;
}

solver::SourceFormat solver::detectFormat(const std::string &Path,
                                          const std::string &Source) {
  // Conclusive extensions first.
  auto EndsWith = [&](const char *Suffix) {
    size_t N = std::string(Suffix).size();
    return Path.size() >= N && Path.compare(Path.size() - N, N, Suffix) == 0;
  };
  if (EndsWith(".smt2") || EndsWith(".sl") || EndsWith(".chc"))
    return SourceFormat::SmtLib2;
  if (EndsWith(".c") || EndsWith(".mc") || EndsWith(".minic"))
    return SourceFormat::MiniC;
  // Content sniff: the first character after whitespace and `;` line
  // comments. SMT-LIB2 scripts open with `(`; mini-C opens with `int`.
  size_t I = 0;
  while (I < Source.size()) {
    char C = Source[I];
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    if (C == ';') {
      while (I < Source.size() && Source[I] != '\n')
        ++I;
      continue;
    }
    break;
  }
  if (I < Source.size() && Source[I] == '(')
    return SourceFormat::SmtLib2;
  return SourceFormat::MiniC;
}

solver::SolveResult solver::solve(const SolveRequest &Request) {
  std::string Source;
  if (!Request.Path.empty()) {
    std::ifstream In(Request.Path);
    if (!In) {
      SolveResult Out;
      Out.Error = "cannot open " + Request.Path;
      return Out;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    Source = Buffer.str();
  } else {
    Source = Request.Source;
  }

  SourceFormat Format = Request.Format;
  if (Format == SourceFormat::Auto)
    Format = detectFormat(Request.Path, Source);

  TermManager TM;
  ChcSystem System(TM);
  if (Format == SourceFormat::SmtLib2) {
    smtlib2::ParseOptions PO;
    PO.Filename = Request.Path;
    smtlib2::ParseResult P = smtlib2::parseSmtLib2(Source, System, PO);
    if (!P.Ok) {
      SolveResult Out;
      Out.Format = Format;
      Out.Error = "parse error: " + P.error(PO);
      return Out;
    }
  } else {
    frontend::EncodeResult E = frontend::encodeMiniC(Source, System);
    if (!E.Ok) {
      SolveResult Out;
      Out.Format = Format;
      Out.Error = "parse error: " + E.Error;
      return Out;
    }
  }
  SolveResult Out = solveSystem(System, Request.Options);
  Out.Format = Format;
  return Out;
}

solver::SolveResult solver::solveChcText(const std::string &Text,
                                         const SolveOptions &Opts) {
  SolveRequest Request;
  Request.Source = Text;
  Request.Format = SourceFormat::SmtLib2;
  Request.Options = Opts;
  return solve(Request);
}

solver::SolveResult solver::solveFile(const std::string &Path,
                                      const SolveOptions &Opts) {
  SolveRequest Request;
  Request.Path = Path;
  Request.Options = Opts;
  return solve(Request);
}
