//===- solver/SolveFacade.cpp - One-call CHC solving façade ---------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/SolveFacade.h"

#include "frontend/Encoder.h"
#include "smtlib2/Parser.h"
#include "smtlib2/Printer.h"
#include "support/FileCache.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace la;
using namespace la::chc;

const char *solver::toString(SourceFormat F) {
  switch (F) {
  case SourceFormat::Auto:
    return "auto";
  case SourceFormat::SmtLib2:
    return "smt2";
  case SourceFormat::MiniC:
    return "mini-c";
  }
  return "?";
}

std::optional<solver::SourceFormat>
solver::parseSourceFormat(const std::string &Name) {
  if (Name == "auto")
    return SourceFormat::Auto;
  if (Name == "smt2" || Name == "smtlib2" || Name == "horn")
    return SourceFormat::SmtLib2;
  if (Name == "mini-c" || Name == "minic" || Name == "c")
    return SourceFormat::MiniC;
  return std::nullopt;
}

std::string solver::SolveResult::summary() const {
  if (!Ok)
    return "error: " + Error;
  std::string Out = toString(Status);
  Out += " (" + SolverName + ", " + Solver.summary() + ")";
  size_t Inlined = 0, Removed = 0;
  for (const analysis::PassStats &P : AnalysisPasses) {
    Inlined += P.PredicatesInlined;
    Removed += P.ClausesRemoved;
  }
  if (Inlined + Removed > 0)
    Out += " [inlined " + std::to_string(Inlined) + " preds, removed " +
           std::to_string(Removed) + " clauses]";
  // Per-pass wall-clock and the new hot-path counters (transfer cache, LP
  // pivots) so a one-line summary shows where the analysis time went.
  if (!AnalysisPasses.empty()) {
    size_t XferHits = 0, XferMisses = 0;
    unsigned long long Pivots = 0;
    std::string Times;
    for (const analysis::PassStats &P : AnalysisPasses) {
      XferHits += P.XferCacheHits;
      XferMisses += P.XferCacheMisses;
      Pivots += P.LpPivots;
      char Seg[96];
      snprintf(Seg, sizeof(Seg), "%s%s %.0fms", Times.empty() ? "" : "  ",
               P.Name.c_str(), P.Seconds * 1000.0);
      Times += Seg;
    }
    Out += " [" + Times + "]";
    if (XferHits + XferMisses > 0)
      Out += " [xfer-cache " + std::to_string(XferHits) + "/" +
             std::to_string(XferHits + XferMisses) + "]";
    if (Pivots > 0)
      Out += " [lp-pivots " + std::to_string(Pivots) + "]";
  }
  if (SolvedByAnalysis)
    Out += " [solved by pre-analysis]";
  if (!Stages.empty()) {
    // Staged run: which rung of the ladder answered ('*'), and whether the
    // escalation race was needed at all.
    Out += " [stages:";
    for (const StageReport &S : Stages) {
      char Seg[96];
      snprintf(Seg, sizeof(Seg), " %s%s %.3fs", S.Stage.c_str(),
               S.Hit ? "*" : "", S.Seconds);
      Out += Seg;
    }
    Out += Escalated ? "; escalated]" : "]";
  }
  if (FromDiskCache)
    Out += " [disk-cache]";
  // Per-lane block for portfolio runs — and for any run with a killed or
  // crashed lane, so isolation events are never silent. `Engines` is sorted
  // by lane label, so the rendering is deterministic regardless of
  // completion order.
  bool AnyAbnormal =
      std::any_of(Engines.begin(), Engines.end(), [](const EngineReport &R) {
        return R.Crashed || R.Outcome != LaneOutcome::Completed;
      });
  if (Engines.size() > 1 || AnyAbnormal) {
    for (const EngineReport &R : Engines) {
      char Mark = R.Winner ? '*' : R.Crashed ? '!' : R.Cancelled ? '~' : ' ';
      char Line[160];
      snprintf(Line, sizeof(Line), "\n  %c %-12s %-8s %.3fs", Mark,
               R.Lane.c_str(), toString(R.Status), R.Seconds);
      Out += Line;
      if (R.Outcome != LaneOutcome::Completed)
        Out += std::string("  [") + la::toString(R.Outcome) + "]";
      if (R.Crashed || !R.Error.empty())
        Out += "  [" + R.Error + "]";
    }
  }
  return Out;
}

namespace {

std::string unknownEngineError(const solver::SolverRegistry &Registry,
                               const solver::EngineId &Id) {
  std::string Error = "unknown engine '" + Id.str() + "' (registered:";
  for (const solver::EngineId &Known : Registry.engineIds())
    Error += " " + Known.str();
  Error += ")";
  return Error;
}

} // namespace

solver::SolveResult solver::solveSystem(const ChcSystem &System,
                                        const SolveOptions &Opts) {
  SolveResult Out;
  Out.Clauses = System.clauses().size();
  Out.Predicates = System.predicates().size();
  Out.Recursive = System.isRecursive();

  const SolverRegistry &Registry = SolverRegistry::global();
  EngineOptions EO;
  EO.Limits = Opts.Limits;
  EO.Cancel = Opts.Cancel;
  EO.DataDriven = Opts.Solver;
  // The persistent clause-verdict tier rides inside the data-driven
  // options, so every lane (and the bare "la"/"analysis" engines) shares
  // one disk cache.
  EO.DataDriven.CheckCache = Opts.DiskCache;
  // Non-data-driven engines share the data-driven SMT budget by default.
  EO.Smt = Opts.Solver.Smt;

  // Resolve the schedule policy first: `auto` means staged when there is a
  // real engine choice to make, the plain race otherwise.
  SchedulePolicy Policy = Opts.Schedule.Policy;
  if (Policy == SchedulePolicy::Auto)
    Policy = Registry.selectable().size() >= 2 ? SchedulePolicy::Staged
                                               : SchedulePolicy::Race;

  std::unique_ptr<ChcSolverInterface> Solver;
  bool SingleLaneWrapper = false;
  if (Policy == SchedulePolicy::Staged) {
    // Built directly (not via the registry "staged" id) so the schedule
    // knobs, custom portfolio settings and isolation mode all survive.
    PortfolioOptions PO = Opts.Portfolio;
    PO.Lanes.clear(); // stages pick their own lanes
    PO.Base = EO;
    PO.Limits = PO.Limits.resolvedOver(Opts.Limits);
    if (Opts.Isolate == Isolation::Process)
      PO.Isolate = Isolation::Process;
    Solver = std::make_unique<StagedSolver>(Opts.Schedule, std::move(PO));
  } else if (Policy == SchedulePolicy::Race ||
             Opts.Engine == EngineId("portfolio")) {
    // Build the portfolio directly so custom lanes in `Opts.Portfolio`
    // survive; the registry path would drop them.
    PortfolioOptions PO = Opts.Portfolio;
    PO.Base = EO;
    PO.Limits = PO.Limits.resolvedOver(Opts.Limits);
    if (Opts.Isolate == Isolation::Process)
      PO.Isolate = Isolation::Process;
    Solver = std::make_unique<PortfolioSolver>(std::move(PO));
  } else if (Opts.Isolate == Isolation::Process) {
    // Single engine under process isolation: a one-lane portfolio gives the
    // fork/rlimit/kill machinery and the report classification for free.
    if (!Registry.contains(Opts.Engine)) {
      Out.Error = unknownEngineError(Registry, Opts.Engine);
      return Out;
    }
    PortfolioOptions PO = Opts.Portfolio;
    PO.Lanes = {{Opts.Engine, Opts.Engine.str(), {}}};
    PO.Isolate = Isolation::Process;
    PO.Base = EO;
    PO.Limits = PO.Limits.resolvedOver(Opts.Limits);
    PO.Name = Opts.Engine.str();
    Solver = std::make_unique<PortfolioSolver>(std::move(PO));
    SingleLaneWrapper = true;
  } else {
    Solver = Registry.create(Opts.Engine, EO);
    if (!Solver) {
      Out.Error = unknownEngineError(Registry, Opts.Engine);
      return Out;
    }
  }
  Out.Ok = true;
  Out.SolverName = Solver->name();

  ChcSolverResult R(System.termManager());
  try {
    R = Solver->solve(System);
  } catch (const std::exception &E) {
    // An engine throw must never escape the façade — in the daemon this is
    // the difference between one failed request and a dead worker. The
    // verdict stays Unknown and the report keeps the engine's own words.
    const char *What = E.what();
    EngineReport Rep;
    Rep.Lane = Opts.Engine.str();
    Rep.Engine = Opts.Engine.str();
    Rep.Name = Out.SolverName;
    Rep.Crashed = true;
    Rep.Outcome = LaneOutcome::Failed;
    Rep.Error = (What != nullptr && *What != '\0')
                    ? What
                    : "engine threw an exception with no message";
    Out.Engines.push_back(std::move(Rep));
    return Out;
  }
  Out.Status = R.Status;
  Out.Solver = R.Stats;
  if (R.Status == ChcResult::Sat) {
    Out.Model = R.Interp.toString();
    if (Opts.ValidateModel)
      Out.ModelValidated =
          checkInterpretation(System, R.Interp) == ClauseStatus::Valid;
  }
  if (R.Status == ChcResult::Unsat && R.Cex)
    Out.Cex = R.Cex->toString(System);

  if (auto *Staged = dynamic_cast<StagedSolver *>(Solver.get())) {
    Out.Engines = Staged->reports();
    Out.Stages = Staged->stages();
    Out.Escalated = Staged->escalated();
    Out.AnalysisPasses = Staged->probeAnalysis().Passes;
    Out.SolvedByAnalysis = Staged->solvedByProbe();
  } else if (auto *Portfolio = dynamic_cast<PortfolioSolver *>(Solver.get())) {
    Out.Engines = Portfolio->reports();
    // The implicit single-lane wrapper should read like the engine it ran:
    // surface the child-reported display name, not the wrapper's.
    if (SingleLaneWrapper && Out.Engines.size() == 1 &&
        !Out.Engines[0].Name.empty())
      Out.SolverName = Out.Engines[0].Name;
  } else {
    if (auto *DataDriven = dynamic_cast<DataDrivenChcSolver *>(Solver.get())) {
      Out.AnalysisPasses = DataDriven->analysisResult().Passes;
      Out.SolvedByAnalysis = DataDriven->detailedStats().SolvedByAnalysis;
    }
    EngineReport Rep;
    Rep.Lane = Opts.Engine.str();
    Rep.Engine = Opts.Engine.str();
    Rep.Name = Out.SolverName;
    Rep.Status = R.Status;
    Rep.Winner = R.Status != ChcResult::Unknown;
    Rep.Seconds = R.Stats.Seconds;
    Rep.Stats = R.Stats;
    Out.Engines.push_back(std::move(Rep));
  }
  return Out;
}

solver::SolveOptionsBuilder::Validated solver::SolveOptionsBuilder::build()
    const {
  Validated V;
  V.Options = Opts;
  const Budget &Limits = Opts.Limits;
  if (!(Limits.WallSeconds >= 0) || std::isinf(Limits.WallSeconds)) {
    V.Error = "wall budget must be a finite non-negative number of seconds";
    return V;
  }
  if (Opts.Schedule.TopK < 1) {
    V.Error = "staged scheduling needs top-k >= 1";
    return V;
  }
  if (Opts.Schedule.ProbeFraction < 0 || Opts.Schedule.ProbeFraction > 1 ||
      Opts.Schedule.StagedFraction < 0 || Opts.Schedule.StagedFraction > 1) {
    V.Error = "probe/staged budget fractions must lie in [0, 1]";
    return V;
  }
  if (CrashEngines && Opts.Isolate != Isolation::Process) {
    V.Error = "crash engines require process isolation "
              "(--isolation process): a thread-mode segfault kills the "
              "whole process";
    return V;
  }
  if (EngineExplicit && ScheduleExplicit &&
      Opts.Schedule.Policy != SchedulePolicy::Single &&
      Opts.Engine != EngineId("portfolio")) {
    V.Error = "an explicit engine ('" + Opts.Engine.str() +
              "') contradicts schedule policy '" +
              toString(Opts.Schedule.Policy) +
              "', which picks engines itself; drop one of the two";
    return V;
  }
  V.Ok = true;
  return V;
}

namespace {

/// Budgets are bucketed by ceil(log2(seconds)) so near-identical budgets
/// share cache records while a much larger budget (which could turn an
/// Unknown into a verdict) gets its own keyspace. -1 = unlimited.
int budgetBucket(double WallSeconds) {
  if (WallSeconds <= 0)
    return -1;
  int B = 0;
  double V = 1;
  while (V < WallSeconds && B < 24) {
    V *= 2;
    ++B;
  }
  return B;
}

std::string verdictCacheKey(const ChcSystem &System,
                            const solver::SolveOptions &Opts) {
  smtlib2::PrintOptions PO;
  PO.ClauseComments = false;
  // The schedule policy (and its top-k width) is part of the key: under
  // `single` the verdict depends on which engine ran, under `staged` on how
  // far the escalation ladder got within the budget.
  std::string Policy = solver::toString(Opts.Schedule.Policy);
  if (Opts.Schedule.Policy == solver::SchedulePolicy::Staged ||
      Opts.Schedule.Policy == solver::SchedulePolicy::Auto)
    Policy += "k" + std::to_string(Opts.Schedule.TopK);
  return "v2|" + FileCache::hashKey(smtlib2::printSmtLib2(System, PO)) + "|" +
         Opts.Engine.str() + "|" + Policy + "|b" +
         std::to_string(budgetBucket(Opts.Limits.WallSeconds)) + "|" +
         (Opts.ValidateModel ? "val" : "noval");
}

void putBlock(std::string &Out, const char *Tag, const std::string &Text) {
  Out += Tag;
  Out += ' ';
  Out += std::to_string(Text.size());
  Out += '\n';
  Out += Text;
  Out += '\n';
}

bool getBlock(std::istream &In, const char *Tag, std::string &Out) {
  std::string Word;
  size_t Len = 0;
  if (!(In >> Word) || Word != Tag || !(In >> Len) || In.get() != '\n')
    return false;
  if (Len > (size_t(1) << 28))
    return false;
  Out.resize(Len);
  if (Len > 0 && !In.read(Out.data(), static_cast<std::streamsize>(Len)))
    return false;
  return In.get() == '\n';
}

void putStats(std::string &Out, const EngineStats &S) {
  const CheckStats &C = S.Check;
  char Buf[512];
  snprintf(Buf, sizeof(Buf),
           "stats %zu %zu %zu %.6f %zu %zu %llu %llu %llu %llu %llu %llu "
           "%llu %llu %llu %llu %llu\n",
           S.SmtQueries, S.Samples, S.Iterations, S.Seconds, S.TemplatesMined,
           S.PolyhedraFacts, static_cast<unsigned long long>(C.ChecksIssued),
           static_cast<unsigned long long>(C.CacheHits),
           static_cast<unsigned long long>(C.CacheMisses),
           static_cast<unsigned long long>(C.CacheEvictions),
           static_cast<unsigned long long>(C.ScopePushes),
           static_cast<unsigned long long>(C.SolverRebuilds),
           static_cast<unsigned long long>(C.RebuildsAvoided),
           static_cast<unsigned long long>(C.ConjunctSplits),
           static_cast<unsigned long long>(C.DiskHits),
           static_cast<unsigned long long>(C.DiskMisses),
           static_cast<unsigned long long>(C.DiskStores));
  Out += Buf;
}

bool getStats(std::istream &In, EngineStats &S) {
  std::string Word;
  CheckStats &C = S.Check;
  return static_cast<bool>(
      (In >> Word) && Word == "stats" &&
      (In >> S.SmtQueries >> S.Samples >> S.Iterations >> S.Seconds >>
       S.TemplatesMined >> S.PolyhedraFacts >> C.ChecksIssued >> C.CacheHits >>
       C.CacheMisses >> C.CacheEvictions >> C.ScopePushes >> C.SolverRebuilds >>
       C.RebuildsAvoided >> C.ConjunctSplits >> C.DiskHits >> C.DiskMisses >>
       C.DiskStores));
}

std::optional<ChcResult> parseStatus(const std::string &Word) {
  if (Word == "sat")
    return ChcResult::Sat;
  if (Word == "unsat")
    return ChcResult::Unsat;
  if (Word == "unknown")
    return ChcResult::Unknown;
  return std::nullopt;
}

} // namespace

std::string solver::serializeResult(const SolveResult &R) {
  // Version 2: the engine line grew the lane index + race-clock offsets,
  // and stage records follow the engine list. Version-1 records simply
  // read as cache misses.
  std::string Out = "la-solve 2\n";
  Out += std::string("status ") + chc::toString(R.Status) + "\n";
  Out += "flags " + std::to_string(R.ModelValidated ? 1 : 0) + ' ' +
         std::to_string(R.Recursive ? 1 : 0) + ' ' +
         std::to_string(R.SolvedByAnalysis ? 1 : 0) + ' ' +
         std::to_string(R.Escalated ? 1 : 0) + '\n';
  Out += "sizes " + std::to_string(R.Clauses) + ' ' +
         std::to_string(R.Predicates) + '\n';
  putBlock(Out, "solver", R.SolverName);
  putBlock(Out, "model", R.Model);
  putBlock(Out, "cex", R.Cex);
  putStats(Out, R.Solver);
  Out += "engines " + std::to_string(R.Engines.size()) + '\n';
  for (const EngineReport &E : R.Engines) {
    char Buf[192];
    snprintf(Buf, sizeof(Buf), "engine %s %d %d %d %d %.6f %zu %.6f %.6f %.6f\n",
             chc::toString(E.Status), E.Winner ? 1 : 0, E.Cancelled ? 1 : 0,
             E.Crashed ? 1 : 0, static_cast<int>(E.Outcome), E.Seconds,
             E.LaneIndex, E.QueuedSeconds, E.StartSeconds, E.StopSeconds);
    Out += Buf;
    putBlock(Out, "lane", E.Lane);
    putBlock(Out, "id", E.Engine);
    putBlock(Out, "name", E.Name);
    putBlock(Out, "error", E.Error);
    putStats(Out, E.Stats);
  }
  Out += "stages " + std::to_string(R.Stages.size()) + '\n';
  for (const StageReport &S : R.Stages) {
    char Buf[128];
    snprintf(Buf, sizeof(Buf), "stage %s %d %.6f %.6f\n",
             chc::toString(S.Status), S.Hit ? 1 : 0, S.BudgetSeconds,
             S.Seconds);
    Out += Buf;
    putBlock(Out, "stage-name", S.Stage);
    Out += "stage-engines " + std::to_string(S.Engines.size()) + '\n';
    for (const std::string &E : S.Engines)
      putBlock(Out, "stage-engine", E);
  }
  Out += "end\n";
  return Out;
}

bool solver::deserializeResult(const std::string &Text, SolveResult &R) {
  std::istringstream In(Text);
  std::string Word;
  int Version = 0;
  if (!(In >> Word >> Version) || Word != "la-solve" || Version != 2)
    return false;
  if (!(In >> Word) || Word != "status" || !(In >> Word))
    return false;
  std::optional<ChcResult> Status = parseStatus(Word);
  if (!Status)
    return false;
  R.Status = *Status;
  int Validated = 0;
  int Recursive = 0;
  int ByAnalysis = 0;
  int Escalated = 0;
  if (!(In >> Word) || Word != "flags" ||
      !(In >> Validated >> Recursive >> ByAnalysis >> Escalated))
    return false;
  R.ModelValidated = Validated != 0;
  R.Recursive = Recursive != 0;
  R.SolvedByAnalysis = ByAnalysis != 0;
  R.Escalated = Escalated != 0;
  if (!(In >> Word) || Word != "sizes" || !(In >> R.Clauses >> R.Predicates))
    return false;
  In.ignore(1, '\n');
  if (!getBlock(In, "solver", R.SolverName) || !getBlock(In, "model", R.Model) ||
      !getBlock(In, "cex", R.Cex) || !getStats(In, R.Solver))
    return false;
  size_t NumEngines = 0;
  if (!(In >> Word) || Word != "engines" || !(In >> NumEngines) ||
      NumEngines > 256)
    return false;
  R.Engines.resize(NumEngines);
  for (EngineReport &E : R.Engines) {
    int Winner = 0;
    int Cancelled = 0;
    int Crashed = 0;
    int Outcome = 0;
    if (!(In >> Word) || Word != "engine" || !(In >> Word))
      return false;
    Status = parseStatus(Word);
    if (!Status || !(In >> Winner >> Cancelled >> Crashed >> Outcome) ||
        !(In >> E.Seconds >> E.LaneIndex >> E.QueuedSeconds >>
          E.StartSeconds >> E.StopSeconds))
      return false;
    E.Status = *Status;
    E.Winner = Winner != 0;
    E.Cancelled = Cancelled != 0;
    E.Crashed = Crashed != 0;
    if (Outcome < 0 || Outcome > static_cast<int>(LaneOutcome::MemoryLimit))
      return false;
    E.Outcome = static_cast<LaneOutcome>(Outcome);
    In.ignore(1, '\n');
    if (!getBlock(In, "lane", E.Lane) || !getBlock(In, "id", E.Engine) ||
        !getBlock(In, "name", E.Name) || !getBlock(In, "error", E.Error) ||
        !getStats(In, E.Stats))
      return false;
  }
  size_t NumStages = 0;
  if (!(In >> Word) || Word != "stages" || !(In >> NumStages) || NumStages > 16)
    return false;
  R.Stages.resize(NumStages);
  for (StageReport &S : R.Stages) {
    int Hit = 0;
    if (!(In >> Word) || Word != "stage" || !(In >> Word))
      return false;
    Status = parseStatus(Word);
    if (!Status || !(In >> Hit >> S.BudgetSeconds >> S.Seconds))
      return false;
    S.Status = *Status;
    S.Hit = Hit != 0;
    In.ignore(1, '\n');
    if (!getBlock(In, "stage-name", S.Stage))
      return false;
    size_t NumLabels = 0;
    if (!(In >> Word) || Word != "stage-engines" || !(In >> NumLabels) ||
        NumLabels > 256)
      return false;
    In.ignore(1, '\n');
    S.Engines.resize(NumLabels);
    for (std::string &L : S.Engines)
      if (!getBlock(In, "stage-engine", L))
        return false;
  }
  if (!(In >> Word) || Word != "end")
    return false;
  R.Ok = true;
  R.Error.clear();
  return true;
}

solver::SourceFormat solver::detectFormat(const std::string &Path,
                                          const std::string &Source) {
  // Conclusive extensions first.
  auto EndsWith = [&](const char *Suffix) {
    size_t N = std::string(Suffix).size();
    return Path.size() >= N && Path.compare(Path.size() - N, N, Suffix) == 0;
  };
  if (EndsWith(".smt2") || EndsWith(".sl") || EndsWith(".chc"))
    return SourceFormat::SmtLib2;
  if (EndsWith(".c") || EndsWith(".mc") || EndsWith(".minic"))
    return SourceFormat::MiniC;
  // Content sniff: the first token after whitespace and `;` line comments.
  // SMT-LIB2 scripts open with `(`; mini-C opens with a declaration or
  // statement keyword. Anything else is inconclusive — returning Auto (not
  // guessing) lets `solve()` run the deterministic two-parser fallback and
  // report a diagnostic naming both rejected interpretations.
  size_t I = 0;
  while (I < Source.size()) {
    char C = Source[I];
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    if (C == ';') {
      while (I < Source.size() && Source[I] != '\n')
        ++I;
      continue;
    }
    break;
  }
  if (I < Source.size() && Source[I] == '(')
    return SourceFormat::SmtLib2;
  size_t End = I;
  while (End < Source.size() &&
         (std::isalpha(static_cast<unsigned char>(Source[End])) != 0 ||
          Source[End] == '_'))
    ++End;
  std::string Word = Source.substr(I, End - I);
  for (const char *Kw : {"int", "assume", "assert", "while", "if", "return"})
    if (Word == Kw)
      return SourceFormat::MiniC;
  return SourceFormat::Auto;
}

solver::SolveResult solver::solve(const SolveRequest &Request) {
  std::string Source;
  if (!Request.Path.empty()) {
    std::ifstream In(Request.Path);
    if (!In) {
      SolveResult Out;
      Out.Error = "cannot open " + Request.Path;
      return Out;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    Source = Buffer.str();
  } else {
    Source = Request.Source;
  }

  SourceFormat Format = Request.Format;
  if (Format == SourceFormat::Auto)
    Format = detectFormat(Request.Path, Source);

  auto TM = std::make_unique<TermManager>();
  auto System = std::make_unique<ChcSystem>(*TM);
  smtlib2::ParseOptions PO;
  PO.Filename = Request.Path;
  if (Format == SourceFormat::SmtLib2) {
    smtlib2::ParseResult P = smtlib2::parseSmtLib2(Source, *System, PO);
    if (!P.Ok) {
      SolveResult Out;
      Out.Format = Format;
      Out.Error = "parse error: " + P.error(PO);
      return Out;
    }
  } else if (Format == SourceFormat::MiniC) {
    frontend::EncodeResult E = frontend::encodeMiniC(Source, *System);
    if (!E.Ok) {
      SolveResult Out;
      Out.Format = Format;
      Out.Error = "parse error: " + E.Error;
      return Out;
    }
  } else {
    // Inconclusive sniff: deterministic fallback order — mini-C first (the
    // paper's native language), then SMT-LIB2. A partially-populated system
    // must be discarded, so each attempt parses into a fresh one.
    frontend::EncodeResult E = frontend::encodeMiniC(Source, *System);
    if (E.Ok) {
      Format = SourceFormat::MiniC;
    } else {
      auto TM2 = std::make_unique<TermManager>();
      auto System2 = std::make_unique<ChcSystem>(*TM2);
      smtlib2::ParseResult P = smtlib2::parseSmtLib2(Source, *System2, PO);
      if (P.Ok) {
        Format = SourceFormat::SmtLib2;
        TM = std::move(TM2);
        System = std::move(System2);
      } else {
        SolveResult Out;
        Out.Error = "cannot determine input format: not mini-C (" + E.Error +
                    "); not SMT-LIB2 (" + P.error(PO) + ")";
        return Out;
      }
    }
  }

  // Persistent verdict tier: the key canonicalises the *parsed* system via
  // the SMT-LIB2 printer, so mini-C and HORN spellings of the same system,
  // or the same script with different comments, share one record.
  std::string CacheKey;
  if (Request.Options.DiskCache) {
    CacheKey = verdictCacheKey(*System, Request.Options);
    std::string Stored;
    SolveResult Cached;
    if (Request.Options.DiskCache->lookup(CacheKey, Stored) &&
        deserializeResult(Stored, Cached)) {
      Cached.FromDiskCache = true;
      Cached.Format = Format;
      return Cached;
    }
  }

  SolveResult Out = solveSystem(*System, Request.Options);
  Out.Format = Format;
  // Only definitive, error-free verdicts are worth persisting: Unknown is
  // budget-dependent and must be retried with the next budget.
  if (Request.Options.DiskCache && Out.Ok &&
      Out.Status != ChcResult::Unknown)
    Request.Options.DiskCache->store(CacheKey, serializeResult(Out));
  return Out;
}

solver::SolveResult solver::solveChcText(const std::string &Text,
                                         const SolveOptions &Opts) {
  SolveRequest Request;
  Request.Source = Text;
  Request.Format = SourceFormat::SmtLib2;
  Request.Options = Opts;
  return solve(Request);
}

solver::SolveResult solver::solveFile(const std::string &Path,
                                      const SolveOptions &Opts) {
  SolveRequest Request;
  Request.Path = Path;
  Request.Options = Opts;
  return solve(Request);
}
