//===- solver/SolveFacade.cpp - One-call CHC solving façade ---------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/SolveFacade.h"

#include "chc/ChcParser.h"

#include <fstream>
#include <sstream>

using namespace la;
using namespace la::chc;

std::string solver::SolveStats::summary() const {
  if (!Ok)
    return "error: " + Error;
  std::string Out = toString(Status);
  Out += " (" + SolverName + ", " + Solver.summary() + ")";
  size_t Inlined = 0, Removed = 0;
  for (const analysis::PassStats &P : AnalysisPasses) {
    Inlined += P.PredicatesInlined;
    Removed += P.ClausesRemoved;
  }
  if (Inlined + Removed > 0)
    Out += " [inlined " + std::to_string(Inlined) + " preds, removed " +
           std::to_string(Removed) + " clauses]";
  if (SolvedByAnalysis)
    Out += " [solved by pre-analysis]";
  return Out;
}

solver::SolveStats solver::solveSystem(const ChcSystem &System,
                               const SolveOptions &Opts) {
  solver::SolveStats Out;
  Out.Ok = true;
  Out.Clauses = System.clauses().size();
  Out.Predicates = System.predicates().size();
  Out.Recursive = System.isRecursive();

  std::unique_ptr<ChcSolverInterface> Solver;
  if (Opts.MakeSolver) {
    Solver = Opts.MakeSolver();
  } else {
    DataDrivenOptions DD = Opts.Solver;
    if (Opts.TimeoutSeconds > 0)
      DD.TimeoutSeconds = Opts.TimeoutSeconds;
    Solver = std::make_unique<DataDrivenChcSolver>(std::move(DD));
  }
  Out.SolverName = Solver->name();

  ChcSolverResult R = Solver->solve(System);
  Out.Status = R.Status;
  Out.Solver = R.Stats;
  if (R.Status == ChcResult::Sat) {
    Out.Model = R.Interp.toString();
    if (Opts.ValidateModel)
      Out.ModelValidated =
          checkInterpretation(System, R.Interp) == ClauseStatus::Valid;
  }
  if (R.Status == ChcResult::Unsat && R.Cex)
    Out.Cex = R.Cex->toString(System);

  if (auto *DataDriven = dynamic_cast<DataDrivenChcSolver *>(Solver.get())) {
    Out.AnalysisPasses = DataDriven->analysisResult().Passes;
    Out.SolvedByAnalysis = DataDriven->detailedStats().SolvedByAnalysis;
  }
  return Out;
}

solver::SolveStats solver::solveChcText(const std::string &Text,
                                const SolveOptions &Opts) {
  TermManager TM;
  ChcSystem System(TM);
  ChcParseResult P = parseChcText(Text, System);
  if (!P.Ok) {
    solver::SolveStats Out;
    Out.Error = "parse error: " + P.Error;
    return Out;
  }
  return solveSystem(System, Opts);
}

solver::SolveStats solver::solveFile(const std::string &Path,
                             const SolveOptions &Opts) {
  std::ifstream In(Path);
  if (!In) {
    solver::SolveStats Out;
    Out.Error = "cannot open " + Path;
    return Out;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return solveChcText(Buffer.str(), Opts);
}
