//===- solver/Scheduler.cpp - Feature-based engine scheduling -------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/Scheduler.h"

#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

using namespace la;
using namespace la::solver;
using namespace la::chc;

const char *solver::toString(SchedulePolicy P) {
  switch (P) {
  case SchedulePolicy::Single:
    return "single";
  case SchedulePolicy::Race:
    return "race";
  case SchedulePolicy::Staged:
    return "staged";
  case SchedulePolicy::Auto:
    return "auto";
  }
  return "single";
}

std::optional<SchedulePolicy>
solver::parseSchedulePolicy(const std::string &Text) {
  if (Text == "single")
    return SchedulePolicy::Single;
  if (Text == "race")
    return SchedulePolicy::Race;
  if (Text == "staged")
    return SchedulePolicy::Staged;
  if (Text == "auto")
    return SchedulePolicy::Auto;
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// ProblemFeatures
//===----------------------------------------------------------------------===//

namespace {

/// Name/member table keeping `names()` and `values()` aligned by
/// construction. The names are the offline-fitting contract: they appear in
/// `BENCH_table1.json` (`program_features`) and in selector-model files.
struct FeatureField {
  const char *Name;
  double ProblemFeatures::*Member;
};

constexpr FeatureField FeatureFields[] = {
    {"predicates", &ProblemFeatures::Predicates},
    {"clauses", &ProblemFeatures::Clauses},
    {"queries", &ProblemFeatures::Queries},
    {"facts", &ProblemFeatures::Facts},
    {"max_arity", &ProblemFeatures::MaxArity},
    {"total_args", &ProblemFeatures::TotalArgs},
    {"max_body_apps", &ProblemFeatures::MaxBodyApps},
    {"nonlinear_clauses", &ProblemFeatures::NonlinearClauses},
    {"recursive", &ProblemFeatures::Recursive},
    {"recursive_preds", &ProblemFeatures::RecursivePreds},
    {"have_analysis", &ProblemFeatures::HaveAnalysis},
    {"predicates_inlined", &ProblemFeatures::PredicatesInlined},
    {"clauses_removed", &ProblemFeatures::ClausesRemoved},
    {"clauses_pruned", &ProblemFeatures::ClausesPruned},
    {"predicates_resolved", &ProblemFeatures::PredicatesResolved},
    {"bounds_found", &ProblemFeatures::BoundsFound},
    {"relational_found", &ProblemFeatures::RelationalFound},
    {"polyhedra_facts", &ProblemFeatures::PolyhedraFacts},
    {"proved_by_analysis", &ProblemFeatures::ProvedByAnalysis},
    {"analysis_timed_out", &ProblemFeatures::AnalysisTimedOut},
};

} // namespace

ProblemFeatures ProblemFeatures::fromSystem(const ChcSystem &System) {
  ProblemFeatures F;
  F.Predicates = static_cast<double>(System.predicates().size());
  F.Clauses = static_cast<double>(System.clauses().size());
  for (const Predicate *P : System.predicates()) {
    F.MaxArity = std::max(F.MaxArity, static_cast<double>(P->arity()));
    F.TotalArgs += static_cast<double>(P->arity());
  }
  for (const HornClause &C : System.clauses()) {
    if (C.isQuery())
      F.Queries += 1;
    if (C.isFact())
      F.Facts += 1;
    F.MaxBodyApps = std::max(F.MaxBodyApps, static_cast<double>(C.Body.size()));
    if (C.Body.size() >= 2)
      F.NonlinearClauses += 1;
  }
  F.Recursive = System.isRecursive() ? 1 : 0;
  F.RecursivePreds = static_cast<double>(System.recursivePredicates().size());
  return F;
}

void ProblemFeatures::addAnalysis(const analysis::AnalysisResult &R) {
  analysis::FeatureCounters C = R.featureCounters();
  HaveAnalysis = 1;
  PredicatesInlined = static_cast<double>(C.PredicatesInlined);
  ClausesRemoved = static_cast<double>(C.ClausesRemoved);
  ClausesPruned = static_cast<double>(C.ClausesPruned);
  PredicatesResolved = static_cast<double>(C.PredicatesResolved);
  BoundsFound = static_cast<double>(C.BoundsFound);
  RelationalFound = static_cast<double>(C.RelationalFound);
  PolyhedraFacts = static_cast<double>(C.PolyhedraFacts);
  ProvedByAnalysis = C.ProvedSat ? 1 : 0;
  AnalysisTimedOut = C.TimedOut ? 1 : 0;
}

const std::vector<std::string> &ProblemFeatures::names() {
  static const std::vector<std::string> Names = [] {
    std::vector<std::string> Out;
    for (const FeatureField &F : FeatureFields)
      Out.push_back(F.Name);
    return Out;
  }();
  return Names;
}

std::vector<double> ProblemFeatures::values() const {
  std::vector<double> Out;
  Out.reserve(std::size(FeatureFields));
  for (const FeatureField &F : FeatureFields)
    Out.push_back(this->*F.Member);
  return Out;
}

std::string ProblemFeatures::toString() const {
  std::string Out;
  for (const FeatureField &F : FeatureFields) {
    double V = this->*F.Member;
    char Buf[96];
    // Every feature is a counter or a flag today, so %.0f is exact; the
    // %g branch keeps future fractional features printable.
    if (V == std::floor(V) && std::fabs(V) < 1e15)
      snprintf(Buf, sizeof(Buf), "%s=%.0f\n", F.Name, V);
    else
      snprintf(Buf, sizeof(Buf), "%s=%g\n", F.Name, V);
    Out += Buf;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// RuleSelector
//===----------------------------------------------------------------------===//

namespace {

double costBaseScore(CostClass C) {
  switch (C) {
  case CostClass::Probe:
  case CostClass::Cheap:
    return 3.0;
  case CostClass::Moderate:
    return 2.0;
  case CostClass::Heavy:
    return 1.0;
  }
  return 2.0;
}

void sortRanked(std::vector<RankedEngine> &Ranked) {
  std::sort(Ranked.begin(), Ranked.end(),
            [](const RankedEngine &A, const RankedEngine &B) {
              if (A.Score != B.Score)
                return A.Score > B.Score;
              return A.Id < B.Id;
            });
}

} // namespace

std::vector<RankedEngine>
RuleSelector::rank(const ProblemFeatures &F,
                   const std::vector<EngineInfo> &Candidates) const {
  // Did the pre-analysis produce anything an analysis-consuming engine can
  // build on?
  bool AnalysisHelped =
      F.HaveAnalysis > 0 &&
      (F.BoundsFound + F.RelationalFound + F.PolyhedraFacts > 0 ||
       F.PredicatesInlined > 0 || F.PredicatesResolved > 0);
  std::vector<RankedEngine> Ranked;
  for (const EngineInfo &E : Candidates) {
    // Hard filter: an engine that cannot express multi-application bodies
    // would only waste its lane on a nonlinear system.
    if (F.NonlinearClauses > 0 && !E.SupportsNonlinear)
      continue;
    double Score = costBaseScore(E.TypicalCost);
    if (E.NeedsAnalysis && AnalysisHelped)
      Score += 1.5;
    // Non-recursive systems usually fall to plain symbolic unwinding; the
    // analysis pipeline has little to find in them.
    if (F.Recursive == 0 && !E.NeedsAnalysis)
      Score += 1.0;
    // Tiny deterministic bias: reproducible verdicts make better cache
    // entries and failure reports.
    if (E.Deterministic)
      Score += 0.1;
    Ranked.push_back({E.Id, Score});
  }
  sortRanked(Ranked);
  return Ranked;
}

//===----------------------------------------------------------------------===//
// TableSelector
//===----------------------------------------------------------------------===//

std::optional<double> TableSelector::score(const EngineId &Id,
                                           const ProblemFeatures &F) const {
  auto It = Models.find(Id);
  if (It == Models.end())
    return std::nullopt;
  // Dot product by feature name: names the model knows but this build does
  // not are ignored, features the model omits weigh zero.
  const std::vector<std::string> &Names = ProblemFeatures::names();
  std::vector<double> Values = F.values();
  double S = It->second.Bias;
  for (const auto &[Name, Weight] : It->second.Weights) {
    auto NameIt = std::find(Names.begin(), Names.end(), Name);
    if (NameIt != Names.end())
      S += Weight * Values[static_cast<size_t>(NameIt - Names.begin())];
  }
  return S;
}

void TableSelector::setModel(const EngineId &Id, Model M) {
  Models[Id] = std::move(M);
}

std::vector<RankedEngine>
TableSelector::rank(const ProblemFeatures &F,
                    const std::vector<EngineInfo> &Candidates) const {
  std::vector<RankedEngine> Ranked;
  std::vector<EngineInfo> Unmodeled;
  for (const EngineInfo &E : Candidates) {
    if (std::optional<double> S = score(E.Id, F))
      Ranked.push_back({E.Id, *S});
    else
      Unmodeled.push_back(E);
  }
  sortRanked(Ranked);
  // Engines the model has never seen rank after every modeled one, kept in
  // rule-baseline order so a partially-fit model still schedules sensibly.
  for (const RankedEngine &R : Fallback.rank(F, Unmodeled))
    Ranked.push_back({R.Id, -1e9 + R.Score});
  return Ranked;
}

bool TableSelector::parse(const std::string &Text, TableSelector &Out,
                          std::string &Error) {
  std::istringstream In(Text);
  std::string Word;
  int Version = 0;
  if (!(In >> Word >> Version) || Word != "selector" || Version != 1) {
    Error = "not a selector model (expected 'selector 1' header)";
    return false;
  }
  size_t NumFeatures = 0;
  if (!(In >> Word) || Word != "features" || !(In >> NumFeatures) ||
      NumFeatures > 4096) {
    Error = "malformed features line";
    return false;
  }
  std::vector<std::string> Names(NumFeatures);
  for (std::string &N : Names)
    if (!(In >> N)) {
      Error = "truncated feature name list";
      return false;
    }
  TableSelector Parsed;
  while (In >> Word) {
    if (Word == "end") {
      Out = std::move(Parsed);
      return true;
    }
    std::string Id;
    Model M;
    if (Word != "engine" || !(In >> Id) || !(In >> M.Bias)) {
      Error = "malformed engine line";
      return false;
    }
    M.Weights.reserve(NumFeatures);
    for (const std::string &N : Names) {
      double W = 0;
      if (!(In >> W)) {
        Error = "truncated weight list for engine '" + Id + "'";
        return false;
      }
      M.Weights.emplace_back(N, W);
    }
    Parsed.setModel(EngineId(Id), std::move(M));
  }
  Error = "missing 'end' terminator";
  return false;
}

std::shared_ptr<TableSelector>
TableSelector::loadFile(const std::string &Path, std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot open selector model '" + Path + "'";
    return nullptr;
  }
  std::ostringstream Text;
  Text << In.rdbuf();
  auto Out = std::make_shared<TableSelector>();
  if (!parse(Text.str(), *Out, Error))
    return nullptr;
  return Out;
}

//===----------------------------------------------------------------------===//
// StagedSolver
//===----------------------------------------------------------------------===//

namespace {

/// Wall budget for the probe / top-k stages when the overall solve is
/// unlimited: stages must still terminate so escalation can happen.
constexpr double UnlimitedStageSeconds = 30.0;

} // namespace

StagedSolver::StagedSolver(ScheduleOptions Schedule, PortfolioOptions Lanes)
    : Schedule(std::move(Schedule)), Opts(std::move(Lanes)) {}

ChcSolverResult StagedSolver::solve(const ChcSystem &System) {
  Timer Total;
  Reports.clear();
  Stages.clear();
  Features = ProblemFeatures::fromSystem(System);
  Probe = analysis::AnalysisResult::allLive(System);
  Escalated = false;
  SolvedByProbe = false;

  const SolverRegistry &Registry =
      Opts.Registry ? *Opts.Registry : SolverRegistry::global();
  Budget Limits = Opts.Limits.resolvedOver(Opts.Base.Limits);
  const double Wall = Limits.WallSeconds;
  auto Remaining = [&] {
    return Wall > 0 ? std::max(0.0, Wall - Total.elapsedSeconds()) : 0.0;
  };
  auto Expired = [&] {
    return (Wall > 0 && Total.elapsedSeconds() >= Wall) ||
           isCancelled(Opts.Base.Cancel);
  };

  ChcSolverResult Final(System.termManager());

  // Stage 1: analysis-only probe. Runs the data-driven engine directly (not
  // through the registry) so the pipeline result is readable afterwards —
  // it both completes the feature vector and may discharge the system.
  {
    double ProbeLo = std::min({Schedule.MinProbeSeconds,
                               Schedule.MaxProbeSeconds, Wall > 0 ? Wall : 1e18});
    double ProbeBudget =
        Wall > 0 ? std::clamp(Schedule.ProbeFraction * Wall, ProbeLo,
                              Schedule.MaxProbeSeconds)
                 : Schedule.MaxProbeSeconds;
    DataDrivenOptions DO = Opts.Base.DataDriven;
    DO.AnalysisOnly = true;
    DO.EnableAnalysis = true;
    DO.Limits.WallSeconds = ProbeBudget;
    DO.Cancel = Opts.Base.Cancel;
    DO.Name = "analysis";

    Timer StageClock;
    DataDrivenChcSolver Prober(DO);
    ChcSolverResult ProbeRes = Prober.solve(System);
    Probe = Prober.analysisResult();
    Features.addAnalysis(Probe);

    EngineReport R;
    R.Lane = "probe:analysis";
    R.Engine = "analysis";
    R.Name = Prober.name();
    R.Status = ProbeRes.Status;
    R.Stats = ProbeRes.Stats;
    R.LaneIndex = 0;
    R.Seconds = StageClock.elapsedSeconds();
    R.StopSeconds = Total.elapsedSeconds();

    StageReport S;
    S.Stage = "probe";
    S.Engines = {R.Lane};
    S.BudgetSeconds = ProbeBudget;
    S.Seconds = StageClock.elapsedSeconds();
    S.Status = ProbeRes.Status;
    S.Hit = ProbeRes.Status != ChcResult::Unknown;

    if (S.Hit) {
      R.Winner = true;
      SolvedByProbe = true;
      Final = std::move(ProbeRes);
    }
    Reports.push_back(std::move(R));
    Stages.push_back(std::move(S));
    if (SolvedByProbe || Expired()) {
      Final.Stats.Seconds = Total.elapsedSeconds();
      return Final;
    }
  }

  // Appends one finished stage's lane reports, shifted onto the staged
  // solve's clock and renumbered into the global start order.
  auto appendStageReports = [&](const PortfolioSolver &P, double StageStart,
                                const std::string &Prefix) {
    size_t Base = Reports.size();
    std::vector<EngineReport> StageReports = P.reports();
    // Portfolio reports are label-sorted; LaneIndex restores start order.
    std::sort(StageReports.begin(), StageReports.end(),
              [](const EngineReport &A, const EngineReport &B) {
                return A.LaneIndex < B.LaneIndex;
              });
    std::vector<std::string> Labels;
    for (EngineReport &R : StageReports) {
      R.Lane = Prefix + R.Lane;
      R.LaneIndex += Base;
      R.QueuedSeconds += StageStart;
      R.StartSeconds += StageStart;
      R.StopSeconds += StageStart;
      Labels.push_back(R.Lane);
      Reports.push_back(std::move(R));
    }
    return Labels;
  };

  // Runs one portfolio stage over \p Lanes under \p StageBudget and records
  // it; returns the stage's result.
  auto runStage = [&](const std::string &StageName, double StageBudget,
                      std::vector<PortfolioLane> Lanes,
                      const std::string &Prefix) {
    PortfolioOptions PO = Opts;
    PO.Name = "staged";
    PO.Lanes = std::move(Lanes);
    PO.Limits = Budget{StageBudget, Limits.MaxIterations};
    // Give each lane the stage budget as its soft engine deadline too, so
    // engines stop on their own instead of waiting for the hard cancel.
    for (PortfolioLane &L : PO.Lanes)
      L.Opts.Limits.WallSeconds = StageBudget;
    PO.Base.Limits.WallSeconds = StageBudget;

    double StageStart = Total.elapsedSeconds();
    Timer StageClock;
    PortfolioSolver P(PO);
    ChcSolverResult Res = P.solve(System);

    StageReport S;
    S.Stage = StageName;
    S.Engines = appendStageReports(P, StageStart, Prefix);
    S.BudgetSeconds = StageBudget;
    S.Seconds = StageClock.elapsedSeconds();
    S.Status = Res.Status;
    S.Hit = Res.Status != ChcResult::Unknown;
    Stages.push_back(std::move(S));
    return Res;
  };

  // Stage 2: the selector's top-k engines under the staged budget slice.
  {
    const EngineSelector *Selector = Schedule.Selector.get();
    RuleSelector Rules;
    if (Selector == nullptr)
      Selector = &Rules;
    std::vector<EngineInfo> Candidates = Registry.selectable();
    // Probe-class engines already ran as stage 1; rerunning the analysis
    // in a lane cannot produce a new answer.
    std::erase_if(Candidates, [](const EngineInfo &E) {
      return E.TypicalCost == CostClass::Probe;
    });
    std::vector<RankedEngine> Ranked = Selector->rank(Features, Candidates);
    if (Ranked.size() > std::max<size_t>(Schedule.TopK, 1))
      Ranked.resize(std::max<size_t>(Schedule.TopK, 1));

    if (!Ranked.empty()) {
      double StageBudget =
          Wall > 0 ? std::min(Schedule.StagedFraction * Wall, Remaining())
                   : UnlimitedStageSeconds;
      std::vector<PortfolioLane> Lanes;
      for (const RankedEngine &R : Ranked)
        Lanes.push_back({R.Id, R.Id.str(), Opts.Base});
      ChcSolverResult Res = runStage("top-k", StageBudget, std::move(Lanes),
                                     "top:");
      if (Res.Status != ChcResult::Unknown) {
        Final = std::move(Res);
        Final.Stats.Seconds = Total.elapsedSeconds();
        return Final;
      }
    }
    if (Expired()) {
      Final.Stats.Seconds = Total.elapsedSeconds();
      return Final;
    }
  }

  // Stage 3: escalate to the full default race with whatever budget
  // remains. This is why staged scheduling can never solve less than the
  // race — only later.
  {
    Escalated = true;
    double StageBudget = Wall > 0 ? Remaining() : 0;
    EngineOptions Base = Opts.Base;
    Base.Limits.WallSeconds = StageBudget;
    std::vector<PortfolioLane> Lanes =
        PortfolioSolver::defaultLanes(Base, Registry);
    ChcSolverResult Res =
        runStage("race", StageBudget, std::move(Lanes), "race:");
    if (Res.Status != ChcResult::Unknown)
      Final = std::move(Res);
  }
  Final.Stats.Seconds = Total.elapsedSeconds();
  return Final;
}
