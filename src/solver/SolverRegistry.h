//===- solver/SolverRegistry.h - Typed CHC engine registry ------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine registry behind the façade, the CLI driver, the benchmark
/// tables, the portfolio and the staged scheduler. An engine is a typed
/// `EngineId` plus an `EngineInfo` capability descriptor plus a factory
/// turning one `EngineOptions` blob into a ready `ChcSolverInterface`.
///
/// The capability descriptor is what replaced the stringly-typed id-only
/// registry: the scheduler ranks engines by what they *can do*
/// (supports-nonlinear, needs-analysis, deterministic, typical cost class)
/// instead of by hard-coded name lists, and meta engines (portfolio,
/// staged) and diagnostic engines (crash-*) declare themselves so no
/// selector ever schedules a race inside a race or a deliberate segfault.
///
/// The baselines register themselves via an explicit
/// `baselines::registerBuiltinEngines()` call (static-initializer
/// registration is unreliable from static libraries: the linker drops
/// unreferenced object files). The data-driven engines ("la", "analysis")
/// and the meta engines ("portfolio", "staged") are always present.
///
/// The string-keyed `add`/`contains`/`create`/`ids`/`description` overloads
/// are deprecated shims kept for exactly one PR; every in-tree caller uses
/// the typed API.
///
//===----------------------------------------------------------------------===//

#ifndef LA_SOLVER_SOLVERREGISTRY_H
#define LA_SOLVER_SOLVERREGISTRY_H

#include "solver/DataDrivenSolver.h"

#include <compare>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace la::solver {

/// Typed engine identifier. Deliberately explicit-from-string: ids enter
/// the program at the CLI/daemon boundary (where the string is validated
/// against the registry) and travel as `EngineId` from there on, so a
/// misspelled literal cannot silently flow into a lane or a cache key.
class EngineId {
public:
  EngineId() = default;
  explicit EngineId(std::string Name) : Name(std::move(Name)) {}

  const std::string &str() const { return Name; }
  bool empty() const { return Name.empty(); }

  friend bool operator==(const EngineId &, const EngineId &) = default;
  friend auto operator<=>(const EngineId &, const EngineId &) = default;

private:
  std::string Name;
};

/// Coarse a-priori cost of one engine run, the scheduler's staging hint.
enum class CostClass {
  Probe,    ///< Sub-second static analysis; runs in the probe stage.
  Cheap,    ///< Typically well under the budget.
  Moderate, ///< The common case; shares the staged budget comfortably.
  Heavy,    ///< Regularly consumes its whole budget.
};

const char *toString(CostClass C);

/// Capability descriptor registered alongside every factory. The scheduler
/// consumes these instead of hard-coded engine-name lists.
struct EngineInfo {
  EngineId Id;
  std::string Description;
  /// Handles clauses with more than one body predicate application.
  bool SupportsNonlinear = true;
  /// Consumes the static pre-analysis (seeded invariants, inlining): worth
  /// boosting when the probe stage found facts, and worth skipping the
  /// analysis for when false.
  bool NeedsAnalysis = false;
  /// Same input + seed => same verdict and witness.
  bool Deterministic = true;
  CostClass TypicalCost = CostClass::Moderate;
  /// Composes other registry engines (portfolio, staged); never a
  /// selector candidate — scheduling a race inside a race only burns cores.
  bool IsMeta = false;
  /// Deliberately misbehaving test engine (crash-*); never selectable.
  bool IsDiagnostic = false;
};

/// The options blob handed to every engine factory. Engines read the
/// caller-level fields (`Limits`, `Cancel`, `Seed`) on top of their own
/// defaults — nonzero caller fields win (`Budget::resolvedOver`).
struct EngineOptions {
  /// Caller-level budget overlaid on the engine's defaults.
  Budget Limits;
  /// Cooperative cancellation token handed through to the engine (and its
  /// SMT checks). The portfolio sets this per lane.
  std::shared_ptr<const CancellationToken> Cancel;
  /// Learner seed override for the data-driven engines (0 = engine
  /// default). Portfolio lanes use distinct seeds to diversify.
  uint64_t Seed = 0;
  /// Base configuration for the data-driven engines ("la", "analysis" and
  /// derived lanes). Other engines ignore it.
  DataDrivenOptions DataDriven;
  /// SMT options for engines that do not embed a `DataDrivenOptions`
  /// (pdr, gpdr, unwind, ...). The "la" family configures its SMT backend
  /// via `DataDriven.Smt` instead.
  smt::SmtSolver::Options Smt;
};

/// Thread-safe map from engine id to capability descriptor + factory. One
/// process-wide instance (`global()`) serves the façade and the CLI; tests
/// may build private registries.
class SolverRegistry {
public:
  using Factory = std::function<std::unique_ptr<chc::ChcSolverInterface>(
      const EngineOptions &)>;

  /// A fresh registry pre-populated with the built-in engines
  /// ("la", "analysis", "portfolio", "staged").
  SolverRegistry();

  /// The process-wide registry used by `solveSystem` / `solveFile`.
  static SolverRegistry &global();

  /// Registers \p Info.Id with its capabilities; returns false (and changes
  /// nothing) when the id is already taken, so repeated registration calls
  /// are idempotent.
  bool add(EngineInfo Info, Factory F);

  /// Registers \p Alias as a second name for the already-registered
  /// \p Target (e.g. "spacer" -> "pdr"). The alias shares the target's
  /// capabilities but is excluded from `selectable()` so a selector never
  /// races an engine against its own alias.
  bool addAlias(const EngineId &Alias, const EngineId &Target);

  bool contains(const EngineId &Id) const;

  /// Instantiates the engine \p Id with \p Opts; null when the id is
  /// unknown.
  std::unique_ptr<chc::ChcSolverInterface>
  create(const EngineId &Id, const EngineOptions &Opts = {}) const;

  /// All registered ids (aliases included), sorted — rendered into the
  /// unknown-engine error message and the CLI usage text.
  std::vector<EngineId> engineIds() const;

  /// Capability descriptor of \p Id (nullopt when unknown).
  std::optional<EngineInfo> info(const EngineId &Id) const;

  /// The selector candidate set: every registered concrete engine —
  /// aliases, meta engines and diagnostic engines excluded — sorted by id.
  std::vector<EngineInfo> selectable() const;

  // --- Deprecated stringly-typed shims (kept for one PR) ----------------

  [[deprecated("use add(EngineInfo, Factory)")]] bool
  add(const std::string &Id, const std::string &Description, Factory F) {
    EngineInfo Info;
    Info.Id = EngineId(Id);
    Info.Description = Description;
    return add(std::move(Info), std::move(F));
  }

  [[deprecated("use addAlias(EngineId, EngineId)")]] bool
  addAlias(const std::string &Alias, const std::string &Target) {
    return addAlias(EngineId(Alias), EngineId(Target));
  }

  [[deprecated("use contains(EngineId)")]] bool
  contains(const std::string &Id) const {
    return contains(EngineId(Id));
  }

  [[deprecated("use create(EngineId, EngineOptions)")]] std::
      unique_ptr<chc::ChcSolverInterface>
      create(const std::string &Id, const EngineOptions &Opts = {}) const {
    return create(EngineId(Id), Opts);
  }

  [[deprecated("use engineIds()")]] std::vector<std::string> ids() const;

  [[deprecated("use info(EngineId)")]] std::string
  description(const std::string &Id) const {
    std::optional<EngineInfo> I = info(EngineId(Id));
    return I ? I->Description : std::string();
  }

private:
  struct Entry {
    EngineInfo Info;
    Factory Make;
    bool IsAlias = false;
  };
  mutable std::mutex Mutex;
  std::map<EngineId, Entry> Entries;
};

} // namespace la::solver

#endif // LA_SOLVER_SOLVERREGISTRY_H
