//===- solver/SolverRegistry.h - Named CHC engine registry ------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The named solver-engine registry behind the façade, the CLI driver, the
/// benchmark tables and the portfolio engine. An engine is a string id
/// ("la", "pdr", "unwind", "portfolio", ...) plus a factory turning one
/// `EngineOptions` blob into a ready `ChcSolverInterface`. This replaced the
/// façade's old std::function factory hook: callers name the
/// engine they want instead of constructing it themselves, so every entry
/// point (façade, CLI, benches, tests, portfolio lanes) builds engines the
/// same way.
///
/// The baselines register themselves via an explicit
/// `baselines::registerBuiltinEngines()` call (static-initializer
/// registration is unreliable from static libraries: the linker drops
/// unreferenced object files). The data-driven engines ("la", "analysis")
/// and the "portfolio" engine are always present.
///
//===----------------------------------------------------------------------===//

#ifndef LA_SOLVER_SOLVERREGISTRY_H
#define LA_SOLVER_SOLVERREGISTRY_H

#include "solver/DataDrivenSolver.h"

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace la::solver {

/// The options blob handed to every engine factory. Engines read the
/// caller-level fields (`Limits`, `Cancel`, `Seed`) on top of their own
/// defaults — nonzero caller fields win (`Budget::resolvedOver`).
struct EngineOptions {
  /// Caller-level budget overlaid on the engine's defaults.
  Budget Limits;
  /// Cooperative cancellation token handed through to the engine (and its
  /// SMT checks). The portfolio sets this per lane.
  std::shared_ptr<const CancellationToken> Cancel;
  /// Learner seed override for the data-driven engines (0 = engine
  /// default). Portfolio lanes use distinct seeds to diversify.
  uint64_t Seed = 0;
  /// Base configuration for the data-driven engines ("la", "analysis" and
  /// derived lanes). Other engines ignore it.
  DataDrivenOptions DataDriven;
  /// SMT options for engines that do not embed a `DataDrivenOptions`
  /// (pdr, gpdr, unwind, ...). The "la" family configures its SMT backend
  /// via `DataDriven.Smt` instead.
  smt::SmtSolver::Options Smt;
};

/// Thread-safe map from engine id to factory. One process-wide instance
/// (`global()`) serves the façade and the CLI; tests may build private
/// registries.
class SolverRegistry {
public:
  using Factory = std::function<std::unique_ptr<chc::ChcSolverInterface>(
      const EngineOptions &)>;

  /// A fresh registry pre-populated with the built-in engines
  /// ("la", "analysis", "portfolio").
  SolverRegistry();

  /// The process-wide registry used by `solveSystem` / `solveFile`.
  static SolverRegistry &global();

  /// Registers \p Id; returns false (and changes nothing) when the id is
  /// already taken, so repeated registration calls are idempotent.
  bool add(const std::string &Id, const std::string &Description, Factory F);

  /// Registers \p Alias as a second name for the already-registered
  /// \p Target (e.g. "spacer" -> "pdr").
  bool addAlias(const std::string &Alias, const std::string &Target);

  bool contains(const std::string &Id) const;

  /// Instantiates the engine \p Id with \p Opts; null when the id is
  /// unknown.
  std::unique_ptr<chc::ChcSolverInterface>
  create(const std::string &Id, const EngineOptions &Opts = {}) const;

  /// All registered ids (aliases included), sorted — rendered into the
  /// unknown-engine error message and the CLI usage text.
  std::vector<std::string> ids() const;

  /// One-line description of \p Id (empty when unknown).
  std::string description(const std::string &Id) const;

private:
  struct Entry {
    std::string Description;
    Factory Make;
  };
  mutable std::mutex Mutex;
  std::map<std::string, Entry> Entries;
};

} // namespace la::solver

#endif // LA_SOLVER_SOLVERREGISTRY_H
