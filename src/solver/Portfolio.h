//===- solver/Portfolio.h - Parallel portfolio CHC engine -------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A parallel portfolio engine racing several registry engines on one CHC
/// system: the first definitive answer (sat or unsat) wins and cancels the
/// remaining lanes through a shared `CancellationToken`.
///
/// Isolation contract, thread mode: `TermManager` hash-conses and is not
/// thread-safe, so every lane runs on a private manager holding a deep
/// clone of the input system (`chc::cloneSystem`). Only after all worker
/// threads have joined does the main thread translate the winner's model or
/// counterexample back into the input manager (`TermManager::import`;
/// predicates map by index, which cloning preserves). A lane that throws is
/// contained: its report carries the error, the race continues. What thread
/// mode can NOT contain is a lane that segfaults, aborts, or exhausts the
/// address space — those take the whole process down.
///
/// Process mode (`Isolation::Process`) closes that gap: each lane forks
/// (`runInChildProcess`) and solves in a child under optional
/// `RLIMIT_AS`/`RLIMIT_CPU` caps; no clone is needed (fork gives the child
/// a private copy-on-write image of the input system). The child ships its
/// verdict, stats, printed model formulas, and counterexample over a pipe;
/// winner selection keeps the same first-winner CAS, and cancellation
/// becomes SIGKILL. The winner's model is rebuilt in the parent by printing
/// → parsing → substituting onto the real predicate parameters.
///
//===----------------------------------------------------------------------===//

#ifndef LA_SOLVER_PORTFOLIO_H
#define LA_SOLVER_PORTFOLIO_H

#include "solver/SolverRegistry.h"
#include "support/ProcessRunner.h"

#include <optional>

namespace la::solver {

/// How portfolio lanes (and façade single-engine solves) are executed.
enum class Isolation {
  /// In-process worker threads; exceptions contained, crashes are not.
  Thread,
  /// Forked child per lane with hard rlimits; survives segfaults, aborts,
  /// runaway allocation, and engines that ignore cancellation.
  Process,
};

const char *toString(Isolation I);
/// Parses "thread" / "process"; nullopt on anything else.
std::optional<Isolation> parseIsolation(const std::string &Text);

/// One competitor in the race: a registry engine id plus its options. The
/// label names the lane in reports and must be unique within a portfolio
/// (two "la" lanes with different seeds get labels "la" and "la-seed2").
struct PortfolioLane {
  EngineId Engine;
  std::string Label;
  EngineOptions Opts;
};

/// Post-race record of one lane, rendered into `SolveResult::summary()`.
/// Reports are sorted by label, not completion order, so output is
/// deterministic across runs; `LaneIndex` and the race-clock offsets
/// preserve the configured start order and the actual lane lifetimes for
/// offline selector fitting.
struct EngineReport {
  std::string Lane;   ///< Lane label.
  std::string Engine; ///< Registry id the lane ran.
  std::string Name;   ///< The instantiated solver's display name.
  chc::ChcResult Status = chc::ChcResult::Unknown;
  bool Winner = false;    ///< This lane's answer was adopted.
  bool Cancelled = false; ///< Stopped by the shared token, not on its own.
  bool Crashed = false;   ///< Threw / died / hit an rlimit; see `Error`.
  /// How the lane ended. Thread-mode lanes only report `Completed` or
  /// `Failed`; process-mode lanes get the full waitpid classification
  /// (Crashed, TimedOut, Cancelled, CpuLimit, MemoryLimit).
  LaneOutcome Outcome = LaneOutcome::Completed;
  std::string Error;
  double Seconds = 0; ///< Lane wall clock (thread start to finish).
  /// Position in the configured lane order — the start order the
  /// label-sorted report list no longer shows.
  size_t LaneIndex = 0;
  /// Race-clock offsets (seconds since the race started): when the lane was
  /// enqueued on the main thread, when its worker began solving, and when
  /// it finished. Staged schedules inherit the stage's clock, so offsets
  /// across stages are comparable.
  double QueuedSeconds = 0;
  double StartSeconds = 0;
  double StopSeconds = 0;
  chc::EngineStats Stats;
};

/// Configuration of the portfolio engine.
struct PortfolioOptions {
  /// The lanes to race; empty means `PortfolioSolver::defaultLanes(Base)`:
  /// two data-driven lanes with distinct seeds, the analysis-only lane, and
  /// — when the baselines are registered — a PDR and an unwinding lane.
  std::vector<PortfolioLane> Lanes;
  /// Global race budget: when the wall clock expires every lane is
  /// cancelled and the portfolio reports Unknown (0 = unlimited).
  Budget Limits;
  /// Optional per-lane wall-clock cap applied to lanes that do not set
  /// their own (0 = global budget only).
  double LaneWallSeconds = 0;
  /// Thread (default) races in-process worker threads; Process forks one
  /// hard-killable child per lane.
  Isolation Isolate = Isolation::Thread;
  /// Process mode only: `RLIMIT_AS` for each lane child, bytes (0 = none).
  size_t LaneMemoryBytes = 0;
  /// Process mode only: `RLIMIT_CPU` for each lane child, seconds
  /// (0 = none). Catches engines that spin without polling cancellation.
  double LaneCpuSeconds = 0;
  std::string Name = "portfolio";
  /// Defaults every lane inherits (budget, base data-driven config,
  /// external cancellation token).
  EngineOptions Base;
  /// Registry the lanes are created from (null = `SolverRegistry::global()`).
  const SolverRegistry *Registry = nullptr;
};

/// The parallel portfolio engine.
class PortfolioSolver : public chc::ChcSolverInterface {
public:
  explicit PortfolioSolver(PortfolioOptions Opts = {})
      : Opts(std::move(Opts)) {}

  chc::ChcSolverResult solve(const chc::ChcSystem &System) override;
  std::string name() const override { return Opts.Name; }

  /// Per-lane records of the last `solve` call, sorted by lane label.
  const std::vector<EngineReport> &reports() const { return Reports; }

  /// The default lane set over \p R: "la" (base seed), "la-seed2",
  /// "analysis", plus "pdr" and "unwind" when registered.
  static std::vector<PortfolioLane> defaultLanes(const EngineOptions &Base,
                                                 const SolverRegistry &R);

private:
  PortfolioOptions Opts;
  std::vector<EngineReport> Reports;
};

} // namespace la::solver

#endif // LA_SOLVER_PORTFOLIO_H
