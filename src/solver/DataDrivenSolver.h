//===- solver/DataDrivenSolver.h - Algorithm 3 of the paper -----*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `CHCSolve` (paper Algorithm 3): the CEGAR loop that samples positive and
/// negative data from counterexamples to clause validity and learns
/// interpretations with the Algorithm 2 toolchain.
///
/// Key mechanics (paper §4.2):
///   * positive samples are *bounded* -- a sample of the head is accepted
///     only when every body sample is already positive, which implicitly
///     unwinds the system and yields a derivation forest;
///   * samples failing that condition become tentative negatives,
///     strengthening body predicates until the clause is inductive;
///   * when a head gains a new positive sample, its negative samples are
///     cleared and its interpretation reset to `true` (weakening), which
///     re-prioritises the clauses producing that head;
///   * a counterexample reaching a known head (assertion) replays the
///     derivation forest into a checkable refutation tree.
///
//===----------------------------------------------------------------------===//

#ifndef LA_SOLVER_DATADRIVENSOLVER_H
#define LA_SOLVER_DATADRIVENSOLVER_H

#include "analysis/PassManager.h"
#include "chc/SolverTypes.h"
#include "ml/Learn.h"
#include "support/Cancellation.h"
#include "support/Timer.h"

#include <functional>
#include <memory>

namespace la {
class FileCache;
}

namespace la::solver {

/// Signature of a pluggable sample-based learner: produces a formula over
/// \p Vars separating the dataset (Lemma 3.1) or fails. The default is the
/// paper's Algorithm 2 toolchain; the PIE-style enumerative and DIG-style
/// template baselines plug in here so that every data-driven solver shares
/// the same CEGAR loop (as in the paper's Fig. 8(a)/(b) comparisons).
using LearnerFn = std::function<ml::LearnResult(
    TermManager &TM, const std::vector<const Term *> &Vars,
    const ml::Dataset &Data, uint64_t Seed)>;

/// Configuration of the data-driven solver.
struct DataDrivenOptions {
  ml::LearnOptions Learn;
  smt::SmtSolver::Options Smt;
  /// Resource budget: wall clock plus a cap on counterexample-handling
  /// iterations (`MaxIterations == 0` means unlimited). Callers that used
  /// to set `TimeoutSeconds` / `MaxIterations` set these two fields now.
  Budget Limits{0, 50000};
  /// Cooperative cancellation, polled at every CEGAR loop head and plumbed
  /// into the clause-check backend and the pre-analysis pipeline.
  std::shared_ptr<const CancellationToken> Cancel;
  /// Stop after the static pre-analysis: report Sat when the verified seed
  /// discharges the system, Unknown otherwise, and never enter the CEGAR
  /// loop. This is the portfolio's cheap "analysis" lane.
  bool AnalysisOnly = false;
  /// Alternative learner; when unset, Algorithm 2 (`ml::learn`) is used
  /// with the `Learn` options above.
  LearnerFn Learner;
  /// Display name override (for benches comparing learners).
  std::string Name = "LinearArbitrary";
  /// Run the static pre-analysis pipeline (`src/analysis`) before the CEGAR
  /// loop: cone-of-influence slicing, fact-reachability resolution, and
  /// verified interval invariants seeding the interpretations.
  bool EnableAnalysis = true;
  analysis::AnalysisOptions Analysis;
  /// Optional persistent tier under the clause-check memo cache: Valid
  /// clause verdicts are stored in this shared on-disk cache keyed by a
  /// canonical system hash, so repeated solves of the same system — across
  /// requests, restarts, and crashes — skip their SMT checks entirely.
  std::shared_ptr<FileCache> CheckCache;
};

/// The LinearArbitrary CHC solver.
class DataDrivenChcSolver : public chc::ChcSolverInterface {
public:
  explicit DataDrivenChcSolver(DataDrivenOptions Opts = {}) : Opts(Opts) {}

  chc::ChcSolverResult solve(const chc::ChcSystem &System) override;
  std::string name() const override { return Opts.Name; }

  /// Extra statistics of the last run, for the paper's tables.
  struct DetailedStats {
    size_t PositiveSamples = 0;
    size_t NegativeSamples = 0;
    size_t LearnCalls = 0;
    size_t Weakenings = 0;
    /// Static pre-analysis impact (see `analysisResult()` for details).
    size_t ClausesPruned = 0;
    size_t PredicatesResolved = 0;
    /// Inline-pass impact: predicates substituted away before the CEGAR
    /// loop and the clauses that went with them (their interpretations are
    /// back-translated into the reported solution).
    size_t PredicatesInlined = 0;
    size_t ClausesRemoved = 0;
    size_t BoundsFound = 0;
    /// Polyhedra-pass impact: mined template rows, verified relational
    /// polyhedral facts (verify pass), and fixpoint runs that stopped at
    /// the `MaxSweeps` safety net.
    size_t TemplatesMined = 0;
    size_t PolyhedraFacts = 0;
    size_t SweepCapHits = 0;
    double AnalysisSeconds = 0;
    bool SolvedByAnalysis = false;
  };
  const DetailedStats &detailedStats() const { return Details; }

  /// Full pre-analysis outcome of the last run (per-pass statistics,
  /// verified invariants, liveness mask). Trivial when analysis is off.
  const analysis::AnalysisResult &analysisResult() const { return Analysis; }

private:
  DataDrivenOptions Opts;
  DetailedStats Details;
  analysis::AnalysisResult Analysis;
};

} // namespace la::solver

#endif // LA_SOLVER_DATADRIVENSOLVER_H
