//===- solver/Scheduler.h - Feature-based engine scheduling -----*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduling layer between the façade / solver service and the
/// portfolio. Racing every registered engine on every request matches the
/// paper's evaluation setup but burns cores linearly in engine count; a
/// CHCVerif-style selection/scheduling layer matches the full-race solve
/// rate at a fraction of the core-seconds:
///
///   * `ProblemFeatures` is a cheap feature vector over the input system —
///     structural counts straight off the clauses, plus the pre-analysis
///     counters the pipeline already computes (`analysis::FeatureCounters`),
///     extracted without re-running any analysis;
///   * `EngineSelector` ranks registry engines for a feature vector.
///     `RuleSelector` is the hand-written baseline over capability
///     descriptors (`EngineInfo`); `TableSelector` is a per-engine linear
///     model fit offline from `BENCH_table1.json` lane reports by
///     `bench/fit_selector.py`;
///   * `StagedSolver` replaces the single shared race budget with a staged
///     schedule: a cheap analysis-only probe first, then the selector's
///     top-k engines under a staggered budget, escalating to the full race
///     only when everything before it answered `unknown`.
///
//===----------------------------------------------------------------------===//

#ifndef LA_SOLVER_SCHEDULER_H
#define LA_SOLVER_SCHEDULER_H

#include "solver/Portfolio.h"

#include <optional>

namespace la::solver {

/// How the façade turns one request into engine runs.
enum class SchedulePolicy {
  Single, ///< Run exactly `SolveOptions::Engine` (the legacy behavior).
  Race,   ///< Full portfolio race, every default lane at once.
  Staged, ///< Probe, then top-k, then escalate to the race on `unknown`.
  Auto,   ///< Staged when >= 2 selectable engines are registered, else Race.
};

const char *toString(SchedulePolicy P);
/// Parses "single" / "race" / "staged" / "auto"; nullopt on anything else.
std::optional<SchedulePolicy> parseSchedulePolicy(const std::string &Text);

/// The feature vector engines are ranked on. All fields are doubles so the
/// table model is a plain dot product; the structural half is filled by
/// `fromSystem` (a single walk over the clauses), the analysis half by
/// `addAnalysis` from a pipeline result that already exists.
struct ProblemFeatures {
  // Structural features (always available).
  double Predicates = 0;
  double Clauses = 0;
  double Queries = 0;        ///< Clauses with a formula head (assertions).
  double Facts = 0;          ///< Clauses with an empty body.
  double MaxArity = 0;
  double TotalArgs = 0;      ///< Sum of predicate arities.
  double MaxBodyApps = 0;    ///< Widest clause body.
  double NonlinearClauses = 0; ///< Clauses with >= 2 body applications.
  double Recursive = 0;      ///< 1 when the dependency graph has a cycle.
  double RecursivePreds = 0;
  // Pre-analysis features (zero until `addAnalysis` runs).
  double HaveAnalysis = 0;
  double PredicatesInlined = 0;
  double ClausesRemoved = 0;
  double ClausesPruned = 0;
  double PredicatesResolved = 0;
  double BoundsFound = 0;
  double RelationalFound = 0;
  double PolyhedraFacts = 0;
  double ProvedByAnalysis = 0;
  double AnalysisTimedOut = 0;

  /// Structural features of \p System, one clause walk, no SMT.
  static ProblemFeatures fromSystem(const chc::ChcSystem &System);

  /// Folds an existing pre-analysis outcome in (sets `HaveAnalysis`).
  void addAnalysis(const analysis::AnalysisResult &R);

  /// Feature names, in `values()` order — the offline fitting contract:
  /// `BENCH_table1.json` and the selector-model file both use these names.
  static const std::vector<std::string> &names();
  std::vector<double> values() const;

  /// "name=value" per line, for golden tests and diagnostics.
  std::string toString() const;
};

/// One ranked candidate: higher scores run earlier.
struct RankedEngine {
  EngineId Id;
  double Score = 0;
};

/// Ranks selectable engines for one feature vector. Engines a selector
/// omits are merely scheduled late — the escalation race still runs the
/// full default lane set, so a bad ranking costs time, never answers.
class EngineSelector {
public:
  virtual ~EngineSelector() = default;
  virtual std::string name() const = 0;
  /// Returns \p Candidates ranked best-first (possibly filtered).
  virtual std::vector<RankedEngine>
  rank(const ProblemFeatures &F,
       const std::vector<EngineInfo> &Candidates) const = 0;
};

/// The hand-written rule baseline. Rules read capabilities, not engine
/// names: filter engines that cannot handle the clause shape, prefer cheap
/// cost classes, boost analysis-consuming engines when the probe found
/// facts, and boost symbolic (non-analysis) engines on non-recursive
/// systems, which typically discharge by plain unwinding.
class RuleSelector : public EngineSelector {
public:
  std::string name() const override { return "rules"; }
  std::vector<RankedEngine>
  rank(const ProblemFeatures &F,
       const std::vector<EngineInfo> &Candidates) const override;
};

/// Table-driven selector: one linear model (bias + weight per feature) per
/// engine id, fit offline by `bench/fit_selector.py` over per-lane
/// `BENCH_table1.json` reports. Candidates without a model rank after every
/// modeled one, ordered by the rule baseline.
class TableSelector : public EngineSelector {
public:
  struct Model {
    double Bias = 0;
    /// Weight per feature name; names unknown to this build are ignored,
    /// features absent from the model weigh zero — both directions stay
    /// compatible across feature-set changes.
    std::vector<std::pair<std::string, double>> Weights;
  };

  std::string name() const override { return "table"; }
  std::vector<RankedEngine>
  rank(const ProblemFeatures &F,
       const std::vector<EngineInfo> &Candidates) const override;

  /// Model score for one engine (nullopt when no model is loaded for it).
  std::optional<double> score(const EngineId &Id,
                              const ProblemFeatures &F) const;

  void setModel(const EngineId &Id, Model M);

  /// Parses the `fit_selector.py` output format:
  ///
  ///   selector 1
  ///   features <n> <name>...
  ///   engine <id> <bias> <weight>...       (one per modeled engine)
  ///   end
  ///
  /// Weights align positionally with the features line. Returns false (and
  /// fills \p Error) on any framing mismatch.
  static bool parse(const std::string &Text, TableSelector &Out,
                    std::string &Error);
  /// `parse` over a file's contents; null + \p Error on I/O or parse
  /// failure.
  static std::shared_ptr<TableSelector> loadFile(const std::string &Path,
                                                 std::string &Error);

private:
  std::map<EngineId, Model> Models;
  RuleSelector Fallback;
};

/// Configuration of the staged schedule.
struct ScheduleOptions {
  SchedulePolicy Policy = SchedulePolicy::Single;
  /// Engines racing in the selected stage.
  size_t TopK = 2;
  /// Share of the wall budget spent on the analysis-only probe, clamped to
  /// [MinProbeSeconds, MaxProbeSeconds]. The probe doubles as feature
  /// extraction: its pipeline result feeds the selector for free.
  double ProbeFraction = 0.15;
  double MinProbeSeconds = 0.5;
  double MaxProbeSeconds = 10;
  /// Share of the wall budget for the top-k stage; whatever remains after
  /// probe + top-k funds the escalation race.
  double StagedFraction = 0.35;
  /// Ranking engine; null means the rule baseline.
  std::shared_ptr<const EngineSelector> Selector;
};

/// Per-stage record of one staged solve, surfaced through
/// `SolveResult::Stages` and the service's stage-hit/escalation metrics.
struct StageReport {
  std::string Stage; ///< "probe", "top-k", "race".
  std::vector<std::string> Engines; ///< Lane labels the stage ran.
  double BudgetSeconds = 0; ///< Wall budget granted (0 = unlimited).
  double Seconds = 0;       ///< Wall clock actually spent.
  chc::ChcResult Status = chc::ChcResult::Unknown;
  bool Hit = false; ///< This stage produced the definitive answer.
};

/// The staged scheduling engine. Runs up to three stages against one
/// deadline:
///
///   1. *probe*: the data-driven engine in analysis-only mode under a small
///      budget slice. A `ProvedSat` discharge ends the solve; either way
///      the pipeline counters complete the feature vector.
///   2. *top-k*: the selector's best k concrete engines race under the
///      staged budget slice (a one-lane "race" for k=1).
///   3. *race*: only on `unknown` — the full default lane set under
///      whatever budget remains, so staged scheduling can never answer less
///      than the race, only later.
///
/// Stage lanes get stage-prefixed labels ("probe:analysis", "top:la",
/// "race:pdr"), and their report timestamps are shifted onto the staged
/// solve's clock, so the merged `reports()` list reads as one timeline.
class StagedSolver : public chc::ChcSolverInterface {
public:
  /// \p Lanes carries the shared base options, limits, isolation mode and
  /// registry (its `Lanes` field is ignored — stages pick their own).
  StagedSolver(ScheduleOptions Schedule, PortfolioOptions Lanes);

  chc::ChcSolverResult solve(const chc::ChcSystem &System) override;
  std::string name() const override { return "staged"; }

  /// Per-lane records across all executed stages (stage-prefixed labels).
  const std::vector<EngineReport> &reports() const { return Reports; }
  /// Per-stage records, in execution order.
  const std::vector<StageReport> &stages() const { return Stages; }
  /// The feature vector the selection ran on.
  const ProblemFeatures &features() const { return Features; }
  /// The probe's pre-analysis outcome (pass stats for the façade).
  const analysis::AnalysisResult &probeAnalysis() const { return Probe; }
  /// True when the escalation race stage was entered.
  bool escalated() const { return Escalated; }
  /// True when the probe alone discharged the system.
  bool solvedByProbe() const { return SolvedByProbe; }

private:
  ScheduleOptions Schedule;
  PortfolioOptions Opts;
  std::vector<EngineReport> Reports;
  std::vector<StageReport> Stages;
  ProblemFeatures Features;
  analysis::AnalysisResult Probe;
  bool Escalated = false;
  bool SolvedByProbe = false;
};

} // namespace la::solver

#endif // LA_SOLVER_SCHEDULER_H
