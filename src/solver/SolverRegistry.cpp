//===- solver/SolverRegistry.cpp - Typed CHC engine registry --------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/SolverRegistry.h"
#include "solver/Portfolio.h"
#include "solver/Scheduler.h"

#include <algorithm>

using namespace la;
using namespace la::solver;

const char *solver::toString(CostClass C) {
  switch (C) {
  case CostClass::Probe:
    return "probe";
  case CostClass::Cheap:
    return "cheap";
  case CostClass::Moderate:
    return "moderate";
  case CostClass::Heavy:
    return "heavy";
  }
  return "?";
}

namespace {

/// Shared option plumbing of the data-driven engines: overlay the
/// caller-level budget, hand through the cancellation token, apply the seed.
DataDrivenOptions dataDrivenFrom(const EngineOptions &EO) {
  DataDrivenOptions Opts = EO.DataDriven;
  Opts.Limits = EO.Limits.resolvedOver(Opts.Limits);
  if (EO.Cancel)
    Opts.Cancel = EO.Cancel;
  if (EO.Seed)
    Opts.Learn.LA.Seed = EO.Seed;
  return Opts;
}

} // namespace

SolverRegistry::SolverRegistry() {
  {
    EngineInfo Info;
    Info.Id = EngineId("la");
    Info.Description = "data-driven CEGAR solver (paper Algorithm 3)";
    Info.NeedsAnalysis = true;
    Info.TypicalCost = CostClass::Moderate;
    add(std::move(Info),
        [](const EngineOptions &EO) -> std::unique_ptr<chc::ChcSolverInterface> {
          return std::make_unique<DataDrivenChcSolver>(dataDrivenFrom(EO));
        });
  }
  {
    EngineInfo Info;
    Info.Id = EngineId("analysis");
    Info.Description = "static pre-analysis only (slicing + abstract domains)";
    Info.NeedsAnalysis = true;
    Info.TypicalCost = CostClass::Probe;
    add(std::move(Info),
        [](const EngineOptions &EO) -> std::unique_ptr<chc::ChcSolverInterface> {
          DataDrivenOptions Opts = dataDrivenFrom(EO);
          Opts.AnalysisOnly = true;
          Opts.Name = "analysis";
          return std::make_unique<DataDrivenChcSolver>(std::move(Opts));
        });
  }
  {
    EngineInfo Info;
    Info.Id = EngineId("portfolio");
    Info.Description =
        "parallel race of the registered engines, first answer wins";
    Info.Deterministic = false; // the winner depends on lane timing
    Info.TypicalCost = CostClass::Heavy;
    Info.IsMeta = true;
    add(std::move(Info),
        [](const EngineOptions &EO) -> std::unique_ptr<chc::ChcSolverInterface> {
          PortfolioOptions Opts;
          Opts.Base = EO;
          Opts.Limits = EO.Limits;
          return std::make_unique<PortfolioSolver>(std::move(Opts));
        });
  }
  {
    EngineInfo Info;
    Info.Id = EngineId("staged");
    Info.Description =
        "staged schedule: analysis probe, then top-k engines, then the race";
    Info.Deterministic = false;
    Info.TypicalCost = CostClass::Moderate;
    Info.IsMeta = true;
    add(std::move(Info),
        [](const EngineOptions &EO) -> std::unique_ptr<chc::ChcSolverInterface> {
          PortfolioOptions PO;
          PO.Base = EO;
          PO.Limits = EO.Limits;
          return std::make_unique<StagedSolver>(ScheduleOptions{},
                                                std::move(PO));
        });
  }
}

SolverRegistry &SolverRegistry::global() {
  static SolverRegistry R;
  return R;
}

bool SolverRegistry::add(EngineInfo Info, Factory F) {
  std::lock_guard<std::mutex> Lock(Mutex);
  EngineId Id = Info.Id;
  return Entries.emplace(std::move(Id), Entry{std::move(Info), std::move(F),
                                              /*IsAlias=*/false})
      .second;
}

bool SolverRegistry::addAlias(const EngineId &Alias, const EngineId &Target) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Target);
  if (It == Entries.end())
    return false;
  EngineInfo Info = It->second.Info;
  Info.Id = Alias;
  Info.Description += " (alias of " + Target.str() + ")";
  return Entries
      .emplace(Alias, Entry{std::move(Info), It->second.Make, /*IsAlias=*/true})
      .second;
}

bool SolverRegistry::contains(const EngineId &Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.count(Id) != 0;
}

std::unique_ptr<chc::ChcSolverInterface>
SolverRegistry::create(const EngineId &Id, const EngineOptions &Opts) const {
  Factory Make;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Entries.find(Id);
    if (It == Entries.end())
      return nullptr;
    Make = It->second.Make;
  }
  // Run the factory outside the lock: the portfolio and staged factories
  // recurse into the registry to build their lanes.
  return Make(Opts);
}

std::vector<EngineId> SolverRegistry::engineIds() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<EngineId> Out;
  Out.reserve(Entries.size());
  for (const auto &KV : Entries)
    Out.push_back(KV.first);
  return Out; // std::map iterates sorted.
}

std::optional<EngineInfo> SolverRegistry::info(const EngineId &Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Id);
  if (It == Entries.end())
    return std::nullopt;
  return It->second.Info;
}

std::vector<EngineInfo> SolverRegistry::selectable() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<EngineInfo> Out;
  for (const auto &KV : Entries) {
    const Entry &E = KV.second;
    if (E.IsAlias || E.Info.IsMeta || E.Info.IsDiagnostic)
      continue;
    Out.push_back(E.Info);
  }
  return Out;
}

std::vector<std::string> SolverRegistry::ids() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<std::string> Out;
  Out.reserve(Entries.size());
  for (const auto &KV : Entries)
    Out.push_back(KV.first.str());
  return Out;
}
