//===- solver/SolverRegistry.cpp - Named CHC engine registry --------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/SolverRegistry.h"
#include "solver/Portfolio.h"

#include <algorithm>

using namespace la;
using namespace la::solver;

namespace {

/// Shared option plumbing of the data-driven engines: overlay the
/// caller-level budget, hand through the cancellation token, apply the seed.
DataDrivenOptions dataDrivenFrom(const EngineOptions &EO) {
  DataDrivenOptions Opts = EO.DataDriven;
  Opts.Limits = EO.Limits.resolvedOver(Opts.Limits);
  if (EO.Cancel)
    Opts.Cancel = EO.Cancel;
  if (EO.Seed)
    Opts.Learn.LA.Seed = EO.Seed;
  return Opts;
}

} // namespace

SolverRegistry::SolverRegistry() {
  add("la", "data-driven CEGAR solver (paper Algorithm 3)",
      [](const EngineOptions &EO) -> std::unique_ptr<chc::ChcSolverInterface> {
        return std::make_unique<DataDrivenChcSolver>(dataDrivenFrom(EO));
      });
  add("analysis", "static pre-analysis only (slicing + abstract domains)",
      [](const EngineOptions &EO) -> std::unique_ptr<chc::ChcSolverInterface> {
        DataDrivenOptions Opts = dataDrivenFrom(EO);
        Opts.AnalysisOnly = true;
        Opts.Name = "analysis";
        return std::make_unique<DataDrivenChcSolver>(std::move(Opts));
      });
  add("portfolio", "parallel race of the registered engines, first answer wins",
      [](const EngineOptions &EO) -> std::unique_ptr<chc::ChcSolverInterface> {
        PortfolioOptions Opts;
        Opts.Base = EO;
        Opts.Limits = EO.Limits;
        return std::make_unique<PortfolioSolver>(std::move(Opts));
      });
}

SolverRegistry &SolverRegistry::global() {
  static SolverRegistry R;
  return R;
}

bool SolverRegistry::add(const std::string &Id, const std::string &Description,
                         Factory F) {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.emplace(Id, Entry{Description, std::move(F)}).second;
}

bool SolverRegistry::addAlias(const std::string &Alias,
                              const std::string &Target) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Target);
  if (It == Entries.end())
    return false;
  return Entries
      .emplace(Alias, Entry{It->second.Description + " (alias of " + Target +
                                ")",
                            It->second.Make})
      .second;
}

bool SolverRegistry::contains(const std::string &Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.count(Id) != 0;
}

std::unique_ptr<chc::ChcSolverInterface>
SolverRegistry::create(const std::string &Id, const EngineOptions &Opts) const {
  Factory Make;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Entries.find(Id);
    if (It == Entries.end())
      return nullptr;
    Make = It->second.Make;
  }
  // Run the factory outside the lock: the portfolio factory may recurse into
  // the registry to build its lanes.
  return Make(Opts);
}

std::vector<std::string> SolverRegistry::ids() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<std::string> Out;
  Out.reserve(Entries.size());
  for (const auto &KV : Entries)
    Out.push_back(KV.first);
  return Out; // std::map iterates sorted.
}

std::string SolverRegistry::description(const std::string &Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Id);
  return It == Entries.end() ? std::string() : It->second.Description;
}
