//===- solver/DataDrivenSolver.cpp - Algorithm 3 of the paper -------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/DataDrivenSolver.h"

#include "analysis/InlinePass.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>

/// Set the LA_TRACE environment variable to get a CEGAR event log on stderr.
static bool traceEnabled() {
  static bool Enabled = std::getenv("LA_TRACE") != nullptr;
  return Enabled;
}
#define LA_TRACE(...)                                                          \
  do {                                                                         \
    if (traceEnabled()) {                                                      \
      fprintf(stderr, "[chc-solve] " __VA_ARGS__);                             \
      fprintf(stderr, "\n");                                                   \
    }                                                                          \
  } while (false)

using namespace la;
using namespace la::solver;
using namespace la::chc;

namespace {

/// A sample with its hash computed once at construction. The dedup indices
/// below are probed several times per CEGAR iteration with the same sample
/// (positivity test, negative-store dedup, derivation lookup), and the old
/// ordered-map indices re-walked the Rational vector lexicographically on
/// every probe; hashing once and comparing only on bucket collisions makes
/// the hot dedup path cheap.
struct HashedSample {
  ml::Sample Values;
  size_t Hash = 0;

  explicit HashedSample(ml::Sample V) : Values(std::move(V)) {
    size_t H = 0x9e3779b97f4a7c15ull;
    for (const Rational &R : Values)
      H = (H ^ R.hash()) * 0x100000001b3ull;
    Hash = H;
  }
  bool operator==(const HashedSample &O) const {
    assert(Values.size() == O.Values.size() &&
           "comparing samples of different arity");
    return Hash == O.Hash && Values == O.Values;
  }
};

struct HashedSampleHasher {
  size_t operator()(const HashedSample &S) const { return S.Hash; }
};

/// Per-predicate sample stores and derivation bookkeeping (s+/s- of Alg. 3).
struct PredState {
  const Predicate *Pred = nullptr;

  std::vector<ml::Sample> Pos;
  std::unordered_map<HashedSample, size_t, HashedSampleHasher> PosIndex;
  /// Derivation record per positive sample: the clause that produced it and
  /// the (predicate, positive-sample-index) pairs explaining it.
  struct Derivation {
    size_t ClauseIndex = 0;
    std::vector<std::pair<size_t, size_t>> Children; ///< (pred idx, pos idx)
  };
  std::vector<Derivation> Derivs;

  std::vector<ml::Sample> Neg;
  std::unordered_map<HashedSample, size_t, HashedSampleHasher> NegIndex;

  bool hasPositive(const HashedSample &S) const { return PosIndex.count(S); }
};

class Algorithm3 {
public:
  Algorithm3(const ChcSystem &System, const DataDrivenOptions &Opts,
             const analysis::AnalysisResult &Analysis,
             DataDrivenChcSolver::DetailedStats &Details)
      : System(System), TM(System.termManager()), Opts(Opts),
        Analysis(Analysis), Details(Details), Clock(Opts.Limits.WallSeconds),
        Result(TM), Checker(System, Opts.Smt, 1 << 14, Opts.CheckCache) {
    for (const Predicate *P : System.predicates()) {
      PredState State;
      State.Pred = P;
      States.push_back(std::move(State));
    }
    // Only clauses surviving the static analysis need CEGAR attention;
    // pruned ones are valid under the seed and any later strengthening.
    for (size_t I = 0; I < System.clauses().size(); ++I)
      if (Analysis.LiveClause[I])
        LiveClauses.push_back(I);
    // Seed the interpretation: statically resolved predicates are final,
    // verified interval invariants lower-bound every later interpretation.
    for (const auto &[P, F] : Analysis.Fixed)
      Result.Interp.set(P, F);
    for (const auto &[P, Inv] : Analysis.Invariants)
      Result.Interp.set(P, Inv);
  }

  ChcSolverResult run() {
    ChcSolverResult R = runLoop();
    R.Stats.Check = Checker.stats();
    return R;
  }

private:
  ChcSolverResult runLoop() {
    Timer Total;
    if (Analysis.ProvedSat) {
      // The verified seed already validates every live clause.
      Details.SolvedByAnalysis = true;
      Result.Status = ChcResult::Sat;
      Result.Stats.Seconds = Total.elapsedSeconds();
      return Result;
    }
    // Line 1-2: A = lambda p: true; empty sample stores.
    for (;;) {
      if (outOfBudget())
        break;
      // Line 3: find an invalid clause under the current interpretation.
      int InvalidIdx = -1;
      ClauseCheckResult Check;
      for (size_t I : LiveClauses) {
        Check = Checker.check(I, Result.Interp);
        ++Result.Stats.SmtQueries;
        if (Check.Status == ClauseStatus::Invalid) {
          InvalidIdx = static_cast<int>(I);
          break;
        }
        if (Check.Status == ClauseStatus::Unknown) {
          LA_TRACE("SMT unknown checking clause '%s'",
                   System.clauses()[I].Name.c_str());
          Result.Status = ChcResult::Unknown;
          Result.Stats.Seconds = Total.elapsedSeconds();
          return Result;
        }
      }
      if (InvalidIdx < 0) {
        // Line 24: every clause is valid.
        Result.Status = ChcResult::Sat;
        Result.Stats.Seconds = Total.elapsedSeconds();
        return Result;
      }

      // Lines 4-22: resolve this clause (or bail to re-prioritise after a
      // weakening, or report unsat).
      switch (resolveClause(static_cast<size_t>(InvalidIdx), Check)) {
      case ResolveOutcome::Resolved:
      case ResolveOutcome::Weakened:
        continue;
      case ResolveOutcome::FoundUnsat:
        Result.Status = ChcResult::Unsat;
        Result.Stats.Seconds = Total.elapsedSeconds();
        return Result;
      case ResolveOutcome::Budget:
        break;
      }
      break;
    }
    Result.Status = ChcResult::Unknown;
    Result.Stats.Seconds = Total.elapsedSeconds();
    return Result;
  }

  enum class ResolveOutcome { Resolved, Weakened, FoundUnsat, Budget };

  bool outOfBudget() {
    return Clock.expired() || isCancelled(Opts.Cancel) ||
           (Opts.Limits.MaxIterations &&
            Result.Stats.Iterations >= Opts.Limits.MaxIterations);
  }

  PredState &stateOf(const Predicate *P) { return States[P->Index]; }

  /// The verified static invariant of \p P (`true` when none was found).
  /// Every interpretation of P stays below it: positive samples are
  /// derivable facts and the invariant is a verified over-approximation of
  /// those, so conjoining it never contradicts the sample stores.
  const Term *invariantOf(const Predicate *P) const {
    auto It = Analysis.Invariants.find(P);
    return It == Analysis.Invariants.end() ? TM.mkTrue() : It->second;
  }

  /// Evaluates the argument terms of an application under a model.
  ml::Sample sampleOf(const PredApp &App,
                      const std::unordered_map<const Term *, Rational> &Model) {
    ml::Sample S;
    S.reserve(App.Args.size());
    for (const Term *Arg : App.Args)
      S.push_back(evalWithDefaults(Arg, Model));
    ++Result.Stats.Samples;
    return S;
  }

  /// The inner do-while loop of Algorithm 3 for one invalid clause.
  ResolveOutcome resolveClause(size_t ClauseIdx, ClauseCheckResult Check) {
    const HornClause &C = System.clauses()[ClauseIdx];
    for (;;) {
      assert(Check.Status == ClauseStatus::Invalid && "resolving valid clause");
      ++Result.Stats.Iterations;
      if (outOfBudget())
        return ResolveOutcome::Budget;

      // Lines 5-8: extract samples from the model (hashed once here; the
      // stores below are probed with them several times).
      std::vector<HashedSample> BodySamples;
      for (const PredApp &App : C.Body)
        BodySamples.emplace_back(sampleOf(App, Check.Model));

      bool AllPositive = true;
      for (size_t I = 0; I < C.Body.size(); ++I)
        AllPositive &= stateOf(C.Body[I].Pred).hasPositive(BodySamples[I]);

      if (AllPositive) {
        // Lines 9-15: the body facts are derivable, so the head sample is a
        // bounded positive sample (or a genuine refutation).
        if (!C.HeadPred)
          return foundCounterexample(ClauseIdx, BodySamples);
        HashedSample HeadSample(sampleOf(*C.HeadPred, Check.Model));
        weakenHead(ClauseIdx, *C.HeadPred, BodySamples, HeadSample);
        return ResolveOutcome::Weakened;
      }

      // Lines 16-21: strengthen the body predicates that are not yet
      // explained; their samples become tentative negatives.
      for (size_t I = 0; I < C.Body.size(); ++I) {
        PredState &State = stateOf(C.Body[I].Pred);
        if (State.hasPositive(BodySamples[I]))
          continue;
        if (!State.NegIndex.count(BodySamples[I])) {
          State.NegIndex.emplace(BodySamples[I], State.Neg.size());
          State.Neg.push_back(BodySamples[I].Values);
          ++Details.NegativeSamples;
        }
        if (!relearn(State)) {
          LA_TRACE("learn failed for %s (|pos|=%zu |neg|=%zu)",
                   State.Pred->Name.c_str(), State.Pos.size(),
                   State.Neg.size());
          return ResolveOutcome::Budget;
        }
      }

      // Line 22: re-check the clause.
      Check = Checker.check(ClauseIdx, Result.Interp);
      ++Result.Stats.SmtQueries;
      if (Check.Status == ClauseStatus::Valid)
        return ResolveOutcome::Resolved;
      if (Check.Status == ClauseStatus::Unknown) {
        LA_TRACE("SMT unknown re-checking clause '%s'", C.Name.c_str());
        return ResolveOutcome::Budget;
      }
    }
  }

  /// Lines 10-13: record a new positive head sample, clear the negatives of
  /// the head and reset its interpretation to true.
  void weakenHead(size_t ClauseIdx, const PredApp &Head,
                  const std::vector<HashedSample> &BodySamples,
                  const HashedSample &HeadSample) {
    PredState &State = stateOf(Head.Pred);
    if (!State.hasPositive(HeadSample)) {
      PredState::Derivation D;
      D.ClauseIndex = ClauseIdx;
      const HornClause &C = System.clauses()[ClauseIdx];
      for (size_t I = 0; I < C.Body.size(); ++I) {
        const PredState &Child = stateOf(C.Body[I].Pred);
        D.Children.emplace_back(C.Body[I].Pred->Index,
                                Child.PosIndex.at(BodySamples[I]));
      }
      State.PosIndex.emplace(HeadSample, State.Pos.size());
      State.Pos.push_back(HeadSample.Values);
      State.Derivs.push_back(std::move(D));
      ++Details.PositiveSamples;
    }
    // A positive sample may shadow an earlier tentative negative; drop all
    // negatives so learning stays contradiction-free (line 12). The reset
    // target is the static invariant, not `true`: it is sound for every
    // derivable fact, so re-weakening below it is never necessary.
    State.Neg.clear();
    State.NegIndex.clear();
    Result.Interp.set(Head.Pred, invariantOf(Head.Pred));
    ++Details.Weakenings;
  }

  /// Line 20: A(p) = Learn(s+(p), s-(p)).
  bool relearn(PredState &State) {
    ml::Dataset Data(State.Pred->arity());
    Data.Pos = State.Pos;
    Data.Neg = State.Neg;
    assert(!Data.hasContradiction() &&
           "positive/negative stores must stay disjoint");
    // Derive a per-call seed so repeated learning explores different random
    // choices deterministically.
    uint64_t Seed = Opts.Learn.LA.Seed * 1000003 + ++Details.LearnCalls * 7919;
    ml::LearnResult R;
    if (Opts.Learner) {
      R = Opts.Learner(TM, State.Pred->Params, Data, Seed);
    } else {
      ml::LearnOptions LearnOpts = Opts.Learn;
      LearnOpts.LA.Seed = Seed;
      // Statically bounded argument positions become candidate attributes
      // for the decision tree: unit directions whose thresholds the tree
      // re-fits from the data.
      auto BI = Analysis.Bounds.find(State.Pred);
      if (BI != Analysis.Bounds.end()) {
        for (const analysis::ArgBounds &B : BI->second) {
          std::vector<Rational> W(State.Pred->arity(), Rational(0));
          W[B.ArgIndex] = Rational(1);
          LearnOpts.ExtraFeatures.push_back(ml::Feature::linear(std::move(W)));
        }
      }
      // Verified polyhedral template rows are relational directions the
      // unit attributes above cannot express (e.g. `x - 2y`); the tree
      // re-fits their thresholds from the data.
      auto PI = Analysis.PolyRows.find(State.Pred);
      if (PI != Analysis.PolyRows.end())
        for (const std::vector<Rational> &Row : PI->second)
          LearnOpts.ExtraFeatures.push_back(ml::Feature::linear(Row));
      R = ml::learn(TM, State.Pred->Params, Data, LearnOpts);
    }
    if (!R.Ok)
      return false;
    const Term *Inv = invariantOf(State.Pred);
    Result.Interp.set(State.Pred,
                      Inv->isTrue() ? R.Formula : TM.mkAnd(Inv, R.Formula));
    return true;
  }

  /// Line 15: replay the derivation forest into a counterexample tree.
  ResolveOutcome
  foundCounterexample(size_t QueryClauseIdx,
                      const std::vector<HashedSample> &BodySamples) {
    Counterexample Cex;
    // Emit the derivation tree rooted at (pred, posIdx) into Cex.Nodes.
    std::map<std::pair<size_t, size_t>, size_t> Emitted;
    std::function<size_t(size_t, size_t)> Emit = [&](size_t PredIdx,
                                                     size_t PosIdx) -> size_t {
      auto Key = std::make_pair(PredIdx, PosIdx);
      auto It = Emitted.find(Key);
      if (It != Emitted.end())
        return It->second;
      const PredState &State = States[PredIdx];
      const PredState::Derivation &D = State.Derivs[PosIdx];
      Counterexample::Node Node;
      Node.Pred = State.Pred;
      Node.Args = State.Pos[PosIdx];
      Node.ClauseIndex = D.ClauseIndex;
      for (const auto &[ChildPred, ChildPos] : D.Children)
        Node.Children.push_back(Emit(ChildPred, ChildPos));
      Cex.Nodes.push_back(std::move(Node));
      size_t Index = Cex.Nodes.size() - 1;
      Emitted.emplace(Key, Index);
      return Index;
    };

    const HornClause &C = System.clauses()[QueryClauseIdx];
    Cex.QueryClauseIndex = QueryClauseIdx;
    for (size_t I = 0; I < C.Body.size(); ++I) {
      const PredState &State = stateOf(C.Body[I].Pred);
      Cex.QueryChildren.push_back(
          Emit(C.Body[I].Pred->Index, State.PosIndex.at(BodySamples[I])));
    }
    Result.Cex = std::move(Cex);
    return ResolveOutcome::FoundUnsat;
  }

  const ChcSystem &System;
  TermManager &TM;
  const DataDrivenOptions &Opts;
  const analysis::AnalysisResult &Analysis;
  DataDrivenChcSolver::DetailedStats &Details;
  Deadline Clock;
  ChcSolverResult Result;
  ClauseCheckContext Checker;
  std::vector<PredState> States;
  std::vector<size_t> LiveClauses;
};

} // namespace

ChcSolverResult DataDrivenChcSolver::solve(const ChcSystem &System) {
  Details = DetailedStats{};
  Timer Total;
  // The cancellation token reaches every SMT check (and through Smt, the
  // analysis pipeline and clause-check backend) without separate plumbing.
  if (Opts.Cancel && !Opts.Smt.Cancel)
    Opts.Smt.Cancel = Opts.Cancel;
  if (Opts.EnableAnalysis) {
    analysis::AnalysisOptions AOpts = Opts.Analysis;
    AOpts.Smt = Opts.Smt;
    // Cap the pipeline at half the solve budget so a pathological system
    // still leaves the CEGAR loop room to run (the analysis-only engine
    // gets the whole budget: there is no loop to save time for).
    if (Opts.Limits.WallSeconds > 0) {
      double Cap =
          Opts.AnalysisOnly ? Opts.Limits.WallSeconds : Opts.Limits.WallSeconds / 2;
      AOpts.TimeoutSeconds =
          AOpts.TimeoutSeconds > 0 ? std::min(AOpts.TimeoutSeconds, Cap) : Cap;
    }
    Analysis = analysis::analyzeSystem(System, AOpts);
  } else {
    Analysis = analysis::AnalysisResult::allLive(System);
  }
  Details.ClausesPruned = Analysis.clausesPruned();
  Details.PredicatesResolved = Analysis.predicatesResolved();
  Details.BoundsFound = Analysis.boundsFound();
  Details.AnalysisSeconds = Analysis.totalSeconds();
  for (const analysis::PassStats &P : Analysis.Passes) {
    Details.PredicatesInlined += P.PredicatesInlined;
    Details.ClausesRemoved += P.ClausesRemoved;
    Details.TemplatesMined += P.TemplatesMined;
    Details.SweepCapHits += P.SweepCapHits;
    // Only the verify pass counts *verified* polyhedral facts; the
    // polyhedra pass counts raw candidates.
    if (P.Name == "verify")
      Details.PolyhedraFacts += P.PolyhedraFacts;
  }
  LA_TRACE("analysis: pruned %zu/%zu clauses, resolved %zu preds, %zu bounds",
           Analysis.clausesPruned(), Analysis.LiveClause.size(),
           Analysis.predicatesResolved(), Analysis.boundsFound());

  // Analysis-only mode: when the verified seed does not already discharge
  // the system, answer Unknown instead of entering the CEGAR loop. (On
  // ProvedSat the loop below exits before its first iteration and the
  // shared witness back-translation applies.)
  if (Opts.AnalysisOnly && !Analysis.ProvedSat) {
    ChcSolverResult Unknown(System.termManager());
    Unknown.Stats.SmtQueries = Analysis.smtChecks();
    Unknown.Stats.TemplatesMined = Details.TemplatesMined;
    Unknown.Stats.PolyhedraFacts = Details.PolyhedraFacts;
    Unknown.Stats.Seconds = Total.elapsedSeconds();
    return Unknown;
  }

  // The CEGAR loop runs over the inlined system when the inline pass fired;
  // witnesses are translated back to the input system below.
  const ChcSystem &SolveSystem =
      Analysis.Transformed ? *Analysis.Transformed : System;
  ChcSolverResult Result = Algorithm3(SolveSystem, Opts, Analysis, Details).run();
  if (Analysis.Transformed) {
    if (Result.Status == ChcResult::Sat) {
      Result.Interp = analysis::backTranslateModel(
          System, *Analysis.Transformed, *Analysis.Inline, Result.Interp);
    } else if (Result.Status == ChcResult::Unsat && Result.Cex) {
      // One SMT model per transformed node hiding an expansion; on failure
      // the unsat verdict stands without a witness tree.
      Result.Cex = analysis::backTranslateCex(System, *Analysis.Transformed,
                                              *Analysis.Inline, *Result.Cex,
                                              Opts.Smt);
    }
  }
  Result.Stats.SmtQueries += Analysis.smtChecks();
  Result.Stats.TemplatesMined = Details.TemplatesMined;
  Result.Stats.PolyhedraFacts = Details.PolyhedraFacts;
  Result.Stats.Seconds = Total.elapsedSeconds();
  return Result;
}
