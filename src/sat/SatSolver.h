//===- sat/SatSolver.h - CDCL SAT solver with theory hook -------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A CDCL SAT solver in the MiniSat tradition: two-watched-literal
/// propagation, first-UIP conflict analysis with clause learning, activity
/// (VSIDS-style) branching and geometric restarts. A TheoryClient hook turns
/// it into the boolean core of a DPLL(T) solver: the theory is notified of
/// assignments, may veto them with conflict clauses, and may inject lemmas
/// (used for branch-and-bound case splits over the integers).
///
//===----------------------------------------------------------------------===//

#ifndef LA_SAT_SATSOLVER_H
#define LA_SAT_SATSOLVER_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace la::sat {

/// Boolean variable index, 0-based.
using Var = int32_t;

/// Literal: variable with polarity, encoded as 2*Var + (negated ? 1 : 0).
using Lit = int32_t;

constexpr Lit NullLit = -1;

inline Lit mkLit(Var V, bool Negated = false) {
  return V * 2 + (Negated ? 1 : 0);
}
inline Lit negate(Lit L) { return L ^ 1; }
inline Var litVar(Lit L) { return L >> 1; }
inline bool litNegated(Lit L) { return L & 1; }

/// Three-valued assignment.
enum class LBool : uint8_t { False, True, Undef };

inline LBool negateLBool(LBool B) {
  if (B == LBool::Undef)
    return B;
  return B == LBool::True ? LBool::False : LBool::True;
}

/// Overall solver verdict.
enum class SatResult { Sat, Unsat, Unknown };

/// Callbacks a theory solver implements to participate in search.
class TheoryClient {
public:
  virtual ~TheoryClient();

  /// Outcome of a theory consistency check.
  struct CheckResult {
    /// False iff the current assignment is theory-inconsistent; then
    /// \c Conflict holds a clause whose literals are all currently false.
    bool Consistent = true;
    std::vector<Lit> Conflict;
    /// Additional lemmas (e.g. branch-and-bound splits). May mention fresh
    /// variables created during the check. When non-empty at a final check,
    /// the solver keeps searching instead of answering SAT.
    std::vector<std::vector<Lit>> Lemmas;
    /// When set the search stops with SatResult::Unknown (budget exhausted).
    bool Abort = false;
  };

  /// Called when \p L becomes true in the boolean assignment.
  virtual void onAssert(Lit L) = 0;
  /// Called when the trail shrinks to \p NewSize entries.
  virtual void onBacktrack(size_t NewSize) = 0;
  /// Consistency check; \p Final is true when every variable is assigned.
  virtual CheckResult check(bool Final) = 0;
};

/// CDCL SAT solver.
class SatSolver {
public:
  explicit SatSolver(TheoryClient *Theory = nullptr) : Theory(Theory) {}

  /// Creates a new variable and returns its index.
  Var newVar();
  int numVars() const { return static_cast<int>(Assigns.size()); }

  /// Adds a clause; returns false if the solver became trivially unsat.
  bool addClause(std::vector<Lit> Lits);

  /// Runs the search. \p MaxConflicts <= 0 means unbounded; the budget is
  /// per call, not cumulative.
  SatResult solve(int64_t MaxConflicts = -1);

  /// Runs the search with \p Assumptions enqueued as the first decisions (in
  /// order). An Unsat answer means "unsat under the assumptions": unless the
  /// conflict is at the root level the solver stays usable, and a later call
  /// with different assumptions may succeed. Learnt clauses are resolvents
  /// of the clause database only (assumptions enter as decisions, never as
  /// clauses), so everything learnt remains globally valid.
  SatResult solveWithAssumptions(const std::vector<Lit> &Assumptions,
                                 int64_t MaxConflicts = -1);

  /// Undoes every decision, restoring the root-level state. Theory clients
  /// observe the shrink through onBacktrack. Required before addClause /
  /// shrinkLearntSuffix once a solve has run.
  void backtrackToRoot();

  /// Number of clauses in the database (problem + learnt).
  size_t numClauses() const { return Clauses.size(); }

  /// Drops every clause with index >= \p Mark; all of them must be learnt
  /// (true for any mark taken at numClauses() before a solve). Root-level
  /// assignments whose reason is dropped are kept — learnt clauses are
  /// implied by the permanent ones — but their dangling reason refs are
  /// cleared. Only legal at the root level.
  void shrinkLearntSuffix(size_t Mark);

  /// True once a root-level conflict proved the clause set unsatisfiable.
  bool inconsistent() const { return Unsatisfiable; }

  LBool value(Var V) const { return Assigns[V]; }
  /// Sets the phase tried first when branching on \p V (phase saving will
  /// overwrite it once the variable has been assigned).
  void setPreferredPolarity(Var V, bool Negated) { Polarity[V] = Negated; }
  LBool valueLit(Lit L) const {
    return litNegated(L) ? negateLBool(Assigns[litVar(L)]) : Assigns[litVar(L)];
  }

  /// Statistics for benchmarking.
  struct Stats {
    uint64_t Conflicts = 0;
    uint64_t Decisions = 0;
    uint64_t Propagations = 0;
    uint64_t Restarts = 0;
    uint64_t TheoryConflicts = 0;
    uint64_t TheoryLemmas = 0;
  };
  const Stats &stats() const { return Statistics; }

private:
  struct Clause {
    std::vector<Lit> Lits;
    bool Learnt = false;
  };
  using ClauseRef = int32_t;
  static constexpr ClauseRef NullClause = -1;

  void enqueue(Lit L, ClauseRef Reason);
  ClauseRef propagate();
  void analyze(ClauseRef Conflict, std::vector<Lit> &Learnt, int &BackLevel);
  void backtrackTo(int Level);
  Lit pickBranchLit();
  void bumpVar(Var V);
  void decayActivities();
  int level(Var V) const { return Levels[V]; }
  /// Installs a clause discovered during search (learnt or theory lemma);
  /// returns false on root-level falsification.
  bool attachInternalClause(std::vector<Lit> Lits, bool Learnt,
                            ClauseRef &RefOut);
  /// Handles a theory check result; returns the conflict clause ref if the
  /// theory reported a conflict (after converting it to a learnt clause).
  bool handleTheoryResult(const TheoryClient::CheckResult &Result,
                          bool &SawLemma, bool &RootConflict);

  TheoryClient *Theory;
  std::deque<Clause> Clauses;
  std::vector<std::vector<ClauseRef>> Watches; // indexed by literal
  std::vector<LBool> Assigns;
  std::vector<int> Levels;
  std::vector<ClauseRef> Reasons;
  std::vector<double> Activities;
  std::vector<char> Seen;
  std::vector<char> Polarity; // phase saving
  std::vector<Lit> Trail;
  std::vector<size_t> TrailLims;
  size_t PropagateHead = 0;
  double ActivityInc = 1.0;
  bool Unsatisfiable = false;
  Stats Statistics;
};

} // namespace la::sat

#endif // LA_SAT_SATSOLVER_H
