//===- sat/SatSolver.cpp - CDCL SAT solver with theory hook ---------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sat/SatSolver.h"

#include <algorithm>
#include <cassert>

using namespace la::sat;

TheoryClient::~TheoryClient() = default;

Var SatSolver::newVar() {
  Var V = static_cast<Var>(Assigns.size());
  Assigns.push_back(LBool::Undef);
  Levels.push_back(-1);
  Reasons.push_back(NullClause);
  Activities.push_back(0.0);
  Seen.push_back(0);
  Polarity.push_back(1); // default to deciding "false" first
  Watches.emplace_back();
  Watches.emplace_back();
  return V;
}

bool SatSolver::addClause(std::vector<Lit> Lits) {
  assert(TrailLims.empty() && "addClause only at the root level");
  if (Unsatisfiable)
    return false;
  // Normalise: sort, dedup, drop root-false literals, detect tautologies.
  std::sort(Lits.begin(), Lits.end());
  Lits.erase(std::unique(Lits.begin(), Lits.end()), Lits.end());
  std::vector<Lit> Kept;
  for (size_t I = 0; I < Lits.size(); ++I) {
    Lit L = Lits[I];
    if (I + 1 < Lits.size() && Lits[I + 1] == negate(L))
      return true; // tautology
    LBool V = valueLit(L);
    if (V == LBool::True)
      return true; // already satisfied at root
    if (V == LBool::False)
      continue; // drop root-false literal
    Kept.push_back(L);
  }
  if (Kept.empty()) {
    Unsatisfiable = true;
    return false;
  }
  if (Kept.size() == 1) {
    enqueue(Kept[0], NullClause);
    if (propagate() != NullClause)
      Unsatisfiable = true;
    return !Unsatisfiable;
  }
  ClauseRef Ref;
  return attachInternalClause(std::move(Kept), /*Learnt=*/false, Ref);
}

bool SatSolver::attachInternalClause(std::vector<Lit> Lits, bool Learnt,
                                     ClauseRef &RefOut) {
  assert(Lits.size() >= 2 && "attachInternalClause needs a real clause");
  // Watch the two literals with the best status: unassigned/true first,
  // then highest decision level, so the watching invariant holds.
  auto Rank = [this](Lit L) {
    LBool V = valueLit(L);
    if (V == LBool::Undef)
      return 1 << 30;
    if (V == LBool::True)
      return (1 << 29) + level(litVar(L));
    return level(litVar(L));
  };
  std::sort(Lits.begin(), Lits.end(),
            [&](Lit A, Lit B) { return Rank(A) > Rank(B); });
  Clauses.push_back(Clause{std::move(Lits), Learnt});
  RefOut = static_cast<ClauseRef>(Clauses.size() - 1);
  const Clause &C = Clauses[RefOut];
  Watches[C.Lits[0]].push_back(RefOut);
  Watches[C.Lits[1]].push_back(RefOut);
  return true;
}

void SatSolver::enqueue(Lit L, ClauseRef Reason) {
  Var V = litVar(L);
  assert(Assigns[V] == LBool::Undef && "enqueue over an assigned variable");
  Assigns[V] = litNegated(L) ? LBool::False : LBool::True;
  Levels[V] = static_cast<int>(TrailLims.size());
  Reasons[V] = Reason;
  Polarity[V] = litNegated(L);
  Trail.push_back(L);
  if (Theory)
    Theory->onAssert(L);
}

SatSolver::ClauseRef SatSolver::propagate() {
  while (PropagateHead < Trail.size()) {
    Lit L = Trail[PropagateHead++];
    ++Statistics.Propagations;
    Lit FalseLit = negate(L);
    std::vector<ClauseRef> &Watchers = Watches[FalseLit];
    size_t Keep = 0;
    for (size_t I = 0; I < Watchers.size(); ++I) {
      ClauseRef Ref = Watchers[I];
      Clause &C = Clauses[Ref];
      // Ensure the false literal is in slot 1.
      if (C.Lits[0] == FalseLit)
        std::swap(C.Lits[0], C.Lits[1]);
      assert(C.Lits[1] == FalseLit && "watch list out of sync");
      if (valueLit(C.Lits[0]) == LBool::True) {
        Watchers[Keep++] = Ref;
        continue;
      }
      // Look for a new literal to watch.
      bool Moved = false;
      for (size_t K = 2; K < C.Lits.size(); ++K) {
        if (valueLit(C.Lits[K]) != LBool::False) {
          std::swap(C.Lits[1], C.Lits[K]);
          Watches[C.Lits[1]].push_back(Ref);
          Moved = true;
          break;
        }
      }
      if (Moved)
        continue;
      // Clause is unit or conflicting.
      Watchers[Keep++] = Ref;
      if (valueLit(C.Lits[0]) == LBool::False) {
        // Conflict: restore untouched watchers and bail out.
        for (size_t K = I + 1; K < Watchers.size(); ++K)
          Watchers[Keep++] = Watchers[K];
        Watchers.resize(Keep);
        PropagateHead = Trail.size();
        return Ref;
      }
      enqueue(C.Lits[0], Ref);
    }
    Watchers.resize(Keep);
  }
  return NullClause;
}

void SatSolver::bumpVar(Var V) {
  Activities[V] += ActivityInc;
  if (Activities[V] > 1e100) {
    for (double &A : Activities)
      A *= 1e-100;
    ActivityInc *= 1e-100;
  }
}

void SatSolver::decayActivities() { ActivityInc *= 1.0 / 0.95; }

void SatSolver::analyze(ClauseRef Conflict, std::vector<Lit> &Learnt,
                        int &BackLevel) {
  Learnt.clear();
  Learnt.push_back(NullLit); // slot for the asserting literal
  int CurrentLevel = static_cast<int>(TrailLims.size());
  int Counter = 0;
  Lit P = NullLit;
  size_t TrailIndex = Trail.size();
  ClauseRef Reason = Conflict;
  std::vector<Var> Touched;

  do {
    assert(Reason != NullClause && "resolution reached a decision unexpectedly");
    const Clause &C = Clauses[Reason];
    for (Lit Q : C.Lits) {
      if (Q == P)
        continue;
      Var V = litVar(Q);
      if (Seen[V] || level(V) == 0)
        continue;
      Seen[V] = 1;
      Touched.push_back(V);
      bumpVar(V);
      if (level(V) >= CurrentLevel)
        ++Counter;
      else
        Learnt.push_back(Q);
    }
    // Find the next seen literal on the trail.
    while (!Seen[litVar(Trail[TrailIndex - 1])])
      --TrailIndex;
    --TrailIndex;
    P = Trail[TrailIndex];
    Seen[litVar(P)] = 0;
    Reason = Reasons[litVar(P)];
    --Counter;
  } while (Counter > 0);
  Learnt[0] = negate(P);

  // Compute the backjump level: highest level among the other literals.
  BackLevel = 0;
  size_t MaxIdx = 1;
  for (size_t I = 1; I < Learnt.size(); ++I) {
    if (level(litVar(Learnt[I])) > BackLevel) {
      BackLevel = level(litVar(Learnt[I]));
      MaxIdx = I;
    }
  }
  if (Learnt.size() > 1)
    std::swap(Learnt[1], Learnt[MaxIdx]);
  for (Var V : Touched)
    Seen[V] = 0;
}

void SatSolver::backtrackTo(int Level) {
  if (static_cast<int>(TrailLims.size()) <= Level)
    return;
  size_t Bound = TrailLims[Level];
  for (size_t I = Trail.size(); I-- > Bound;) {
    Var V = litVar(Trail[I]);
    Assigns[V] = LBool::Undef;
    Reasons[V] = NullClause;
    Levels[V] = -1;
  }
  Trail.resize(Bound);
  TrailLims.resize(Level);
  PropagateHead = Trail.size();
  if (Theory)
    Theory->onBacktrack(Trail.size());
}

Lit SatSolver::pickBranchLit() {
  Var Best = -1;
  double BestActivity = -1.0;
  for (Var V = 0; V < numVars(); ++V) {
    if (Assigns[V] != LBool::Undef)
      continue;
    if (Activities[V] > BestActivity) {
      BestActivity = Activities[V];
      Best = V;
    }
  }
  if (Best < 0)
    return NullLit;
  return mkLit(Best, Polarity[Best]);
}

bool SatSolver::handleTheoryResult(const TheoryClient::CheckResult &Result,
                                   bool &SawLemma, bool &RootConflict) {
  SawLemma = false;
  RootConflict = false;
  for (const std::vector<Lit> &Lemma : Result.Lemmas) {
    ++Statistics.TheoryLemmas;
    SawLemma = true;
    // Lemmas may mention fresh variables; they are expected to be
    // non-falsified when emitted.
    std::vector<Lit> Copy = Lemma;
    if (Copy.size() == 1) {
      if (valueLit(Copy[0]) == LBool::Undef) {
        // Assert at the root on next restart; emulate by learning a binary
        // tautology-free unit via direct enqueue at level 0 when possible.
        if (TrailLims.empty()) {
          enqueue(Copy[0], NullClause);
        } else {
          // Keep it as a pseudo-clause with a duplicate literal slot.
          Copy.push_back(Copy[0]);
          ClauseRef Ref;
          attachInternalClause(std::move(Copy), /*Learnt=*/true, Ref);
        }
      }
      continue;
    }
    ClauseRef Ref;
    attachInternalClause(std::move(Copy), /*Learnt=*/true, Ref);
  }
  return Result.Consistent;
}

void SatSolver::backtrackToRoot() { backtrackTo(0); }

void SatSolver::shrinkLearntSuffix(size_t Mark) {
  assert(TrailLims.empty() && "shrinkLearntSuffix only at the root level");
  if (Clauses.size() <= Mark)
    return;
#ifndef NDEBUG
  for (size_t I = Mark; I < Clauses.size(); ++I)
    assert(Clauses[I].Learnt && "shrinking would drop a problem clause");
#endif
  for (std::vector<ClauseRef> &W : Watches) {
    size_t Keep = 0;
    for (ClauseRef Ref : W)
      if (static_cast<size_t>(Ref) < Mark)
        W[Keep++] = Ref;
    W.resize(Keep);
  }
  // Root assignments stay valid (learnt clauses are implied by the
  // permanent ones) but must not keep pointing at dropped clauses.
  for (Var V = 0; V < numVars(); ++V)
    if (Reasons[V] != NullClause && static_cast<size_t>(Reasons[V]) >= Mark)
      Reasons[V] = NullClause;
  Clauses.resize(Mark);
}

SatResult SatSolver::solve(int64_t MaxConflicts) {
  return solveWithAssumptions({}, MaxConflicts);
}

SatResult SatSolver::solveWithAssumptions(const std::vector<Lit> &Assumptions,
                                          int64_t MaxConflicts) {
  assert(TrailLims.empty() && "solve must start at the root level");
  if (Unsatisfiable)
    return SatResult::Unsat;
  if (propagate() != NullClause) {
    Unsatisfiable = true;
    return SatResult::Unsat;
  }

  const uint64_t StartConflicts = Statistics.Conflicts;
  uint64_t RestartLimit = 100;
  uint64_t ConflictsSinceRestart = 0;

  auto HandleConflictClause = [&](ClauseRef Conflict) -> bool {
    // Returns false when the conflict proves unsatisfiability.
    ++Statistics.Conflicts;
    ++ConflictsSinceRestart;
    if (TrailLims.empty())
      return false;
    std::vector<Lit> Learnt;
    int BackLevel = 0;
    analyze(Conflict, Learnt, BackLevel);
    backtrackTo(BackLevel);
    if (Learnt.size() == 1) {
      enqueue(Learnt[0], NullClause);
    } else {
      ClauseRef Ref;
      attachInternalClause(std::move(Learnt), /*Learnt=*/true, Ref);
      enqueue(Clauses[Ref].Lits[0], Ref);
    }
    decayActivities();
    return true;
  };

  // Converts a theory conflict (all-false clause) into a CDCL conflict.
  auto HandleTheoryConflict = [&](const std::vector<Lit> &Conflict) -> bool {
    ++Statistics.TheoryConflicts;
    if (Conflict.empty())
      return false;
    int MaxLevel = 0;
    for (Lit L : Conflict) {
      assert(valueLit(L) == LBool::False && "theory conflict literal not false");
      MaxLevel = std::max(MaxLevel, level(litVar(L)));
    }
    if (MaxLevel == 0)
      return false;
    backtrackTo(MaxLevel);
    if (Conflict.size() == 1) {
      backtrackTo(MaxLevel - 1);
      enqueue(negate(Conflict[0]), NullClause);
      return true;
    }
    ClauseRef Ref;
    std::vector<Lit> Copy = Conflict;
    attachInternalClause(std::move(Copy), /*Learnt=*/true, Ref);
    return HandleConflictClause(Ref);
  };

  for (;;) {
    if (MaxConflicts > 0 && Statistics.Conflicts - StartConflicts >=
                                static_cast<uint64_t>(MaxConflicts))
      return SatResult::Unknown;

    ClauseRef Conflict = propagate();
    if (Conflict != NullClause) {
      if (!HandleConflictClause(Conflict)) {
        // Root-level conflict: unsatisfiable regardless of assumptions.
        Unsatisfiable = true;
        return SatResult::Unsat;
      }
      continue;
    }

    // (Re-)establish assumptions as the bottom decisions. Backjumps and
    // restarts may have popped some; each gets its own decision level so
    // conflict analysis treats it like any decision.
    if (TrailLims.size() < Assumptions.size()) {
      Lit A = Assumptions[TrailLims.size()];
      LBool V = valueLit(A);
      if (V == LBool::False)
        return SatResult::Unsat; // unsat under assumptions only
      TrailLims.push_back(Trail.size());
      if (V == LBool::Undef) {
        enqueue(A, NullClause);
        continue; // propagate the new assumption
      }
      continue; // already implied: dummy level keeps the indexing aligned
    }

    // Boolean assignment is consistent; consult the theory.
    if (Theory) {
      bool Final = Trail.size() == static_cast<size_t>(numVars());
      TheoryClient::CheckResult Result = Theory->check(Final);
      if (Result.Abort)
        return SatResult::Unknown;
      bool SawLemma = false, RootConflict = false;
      bool Consistent = handleTheoryResult(Result, SawLemma, RootConflict);
      if (!Consistent) {
        if (!HandleTheoryConflict(Result.Conflict)) {
          Unsatisfiable = true;
          return SatResult::Unsat;
        }
        continue;
      }
      if (SawLemma)
        continue; // propagate / branch on the new lemma atoms
      if (Final)
        return SatResult::Sat;
    }

    if (ConflictsSinceRestart >= RestartLimit) {
      ++Statistics.Restarts;
      ConflictsSinceRestart = 0;
      RestartLimit = RestartLimit + RestartLimit / 2;
      backtrackTo(0);
      continue;
    }

    Lit Decision = pickBranchLit();
    if (Decision == NullLit) {
      // All variables assigned and (if present) the theory already agreed.
      return SatResult::Sat;
    }
    ++Statistics.Decisions;
    TrailLims.push_back(Trail.size());
    enqueue(Decision, NullClause);
  }
}
