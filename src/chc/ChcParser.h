//===- chc/ChcParser.h - SMT-LIB2 HORN fragment parser ----------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the SMT-LIB2 HORN fragment (the CHC-COMP / SeaHorn exchange
/// format) restricted to linear integer arithmetic, plus the Z3 fixedpoint
/// `rule`/`query` style. Supported commands:
///
///   (set-logic HORN)  (set-info ...)  (check-sat) (get-model) (exit)
///   (declare-fun p (Int ... Int) Bool)      ; unknown predicate
///   (declare-rel p (Int ... Int))           ; Z3 fixedpoint style
///   (declare-var x Int)
///   (assert (forall ((x Int) ...) (=> body head)))
///   (assert (=> body head)) | (assert head) | (assert (not body))
///   (rule (=> body head)) | (rule head) | (query (p x ...))
///
//===----------------------------------------------------------------------===//

#ifndef LA_CHC_CHCPARSER_H
#define LA_CHC_CHCPARSER_H

#include "chc/Chc.h"

namespace la::chc {

/// Outcome of parsing; on failure Error holds a "line N: ..." diagnostic.
struct ChcParseResult {
  bool Ok = true;
  std::string Error;
};

/// Parses \p Text into \p Out (which must be empty). On error the system may
/// be partially populated and should be discarded.
ChcParseResult parseChcText(const std::string &Text, ChcSystem &Out);

} // namespace la::chc

#endif // LA_CHC_CHCPARSER_H
