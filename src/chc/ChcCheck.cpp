//===- chc/ChcCheck.cpp - Clause validity checking -------------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "chc/ChcCheck.h"

#include <cassert>

using namespace la;
using namespace la::chc;
using smt::SmtResult;
using smt::SmtSolver;

ClauseCheckResult chc::checkClause(const ChcSystem &System,
                                   const HornClause &Clause,
                                   const Interpretation &Interp,
                                   const SmtSolver::Options &Opts) {
  TermManager &TM = System.termManager();
  std::vector<const Term *> Parts{Clause.Constraint};
  for (const PredApp &App : Clause.Body)
    Parts.push_back(Interp.instantiate(App));
  const Term *Head = Clause.HeadPred ? Interp.instantiate(*Clause.HeadPred)
                                     : Clause.HeadFormula;
  Parts.push_back(TM.mkNot(Head));

  SmtSolver Solver(TM, Opts);
  Solver.assertFormula(TM.mkAnd(std::move(Parts)));
  ClauseCheckResult Result;
  switch (Solver.check()) {
  case SmtResult::Unsat:
    Result.Status = ClauseStatus::Valid;
    break;
  case SmtResult::Sat:
    Result.Status = ClauseStatus::Invalid;
    Result.Model = Solver.model();
    break;
  case SmtResult::Unknown:
    Result.Status = ClauseStatus::Unknown;
    break;
  }
  return Result;
}

Rational chc::evalWithDefaults(
    const Term *T, const std::unordered_map<const Term *, Rational> &Model) {
  std::unordered_map<const Term *, Rational> Extended = Model;
  std::vector<const Term *> Stack{T};
  while (!Stack.empty()) {
    const Term *Node = Stack.back();
    Stack.pop_back();
    if (Node->kind() == TermKind::Var && !Extended.count(Node))
      Extended.emplace(Node, Rational(0));
    for (const Term *Op : Node->operands())
      Stack.push_back(Op);
  }
  return evalTerm(T, Extended);
}

ClauseStatus chc::checkInterpretation(const ChcSystem &System,
                                      const Interpretation &Interp,
                                      const SmtSolver::Options &Opts) {
  bool SawUnknown = false;
  for (const HornClause &Clause : System.clauses()) {
    ClauseCheckResult R = checkClause(System, Clause, Interp, Opts);
    if (R.Status == ClauseStatus::Invalid)
      return ClauseStatus::Invalid;
    SawUnknown |= R.Status == ClauseStatus::Unknown;
  }
  return SawUnknown ? ClauseStatus::Unknown : ClauseStatus::Valid;
}

std::string Counterexample::toString(const ChcSystem &System) const {
  (void)System;
  std::string Out = "counterexample derivation (query clause #" +
                    std::to_string(QueryClauseIndex) + "):\n";
  for (size_t I = 0; I < Nodes.size(); ++I) {
    const Node &N = Nodes[I];
    Out += "  [" + std::to_string(I) + "] " + N.Pred->Name + "(";
    for (size_t J = 0; J < N.Args.size(); ++J)
      Out += (J ? ", " : "") + N.Args[J].toString();
    Out += ") via clause #" + std::to_string(N.ClauseIndex);
    if (!N.Children.empty()) {
      Out += " from";
      for (size_t C : N.Children)
        Out += " [" + std::to_string(C) + "]";
    }
    Out += "\n";
  }
  return Out;
}

/// Builds the formula "clause instance matches the given ground facts".
static const Term *
instanceFormula(TermManager &TM, const HornClause &Clause,
                const std::vector<const Counterexample::Node *> &BodyFacts,
                const Counterexample::Node *HeadFact) {
  std::vector<const Term *> Parts{Clause.Constraint};
  assert(BodyFacts.size() == Clause.Body.size() && "body arity mismatch");
  for (size_t I = 0; I < Clause.Body.size(); ++I) {
    const PredApp &App = Clause.Body[I];
    assert(BodyFacts[I]->Pred == App.Pred && "body predicate mismatch");
    for (size_t J = 0; J < App.Args.size(); ++J)
      Parts.push_back(TM.mkEq(
          App.Args[J], TM.mkIntConst(BodyFacts[I]->Args[J])));
  }
  if (HeadFact) {
    assert(Clause.HeadPred && HeadFact->Pred == Clause.HeadPred->Pred &&
           "head predicate mismatch");
    for (size_t J = 0; J < Clause.HeadPred->Args.size(); ++J)
      Parts.push_back(TM.mkEq(Clause.HeadPred->Args[J],
                              TM.mkIntConst(HeadFact->Args[J])));
  }
  return TM.mkAnd(std::move(Parts));
}

bool chc::validateCounterexample(const ChcSystem &System,
                                 const Counterexample &Cex) {
  TermManager &TM = System.termManager();
  auto Satisfiable = [&](const Term *F) {
    SmtSolver Solver(TM);
    Solver.assertFormula(F);
    return Solver.check() == SmtResult::Sat;
  };

  // Each node must be derivable from its children through its clause.
  for (const Counterexample::Node &N : Cex.Nodes) {
    if (N.ClauseIndex >= System.clauses().size())
      return false;
    const HornClause &Clause = System.clauses()[N.ClauseIndex];
    if (!Clause.HeadPred || Clause.HeadPred->Pred != N.Pred)
      return false;
    if (N.Children.size() != Clause.Body.size())
      return false;
    std::vector<const Counterexample::Node *> BodyFacts;
    for (size_t C : N.Children) {
      if (C >= Cex.Nodes.size())
        return false;
      BodyFacts.push_back(&Cex.Nodes[C]);
    }
    if (!Satisfiable(instanceFormula(TM, Clause, BodyFacts, &N)))
      return false;
  }

  // The query clause must be violated by the root facts.
  if (Cex.QueryClauseIndex >= System.clauses().size())
    return false;
  const HornClause &Query = System.clauses()[Cex.QueryClauseIndex];
  if (!Query.isQuery())
    return false;
  if (Cex.QueryChildren.size() != Query.Body.size())
    return false;
  std::vector<const Counterexample::Node *> BodyFacts;
  for (size_t C : Cex.QueryChildren) {
    if (C >= Cex.Nodes.size())
      return false;
    BodyFacts.push_back(&Cex.Nodes[C]);
  }
  const Term *Violation =
      TM.mkAnd(instanceFormula(TM, Query, BodyFacts, nullptr),
               TM.mkNot(Query.HeadFormula));
  return Satisfiable(Violation);
}
