//===- chc/ChcCheck.cpp - Clause validity checking -------------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "chc/ChcCheck.h"

#include "support/FileCache.h"

#include <cassert>
#include <cstdlib>

using namespace la;
using namespace la::chc;
using smt::SmtResult;
using smt::SmtSolver;

ClauseCheckResult chc::checkClause(const ChcSystem &System,
                                   const HornClause &Clause,
                                   const Interpretation &Interp,
                                   const SmtSolver::Options &Opts) {
  TermManager &TM = System.termManager();
  std::vector<const Term *> Parts{Clause.Constraint};
  for (const PredApp &App : Clause.Body)
    Parts.push_back(Interp.instantiate(App));
  const Term *Head = Clause.HeadPred ? Interp.instantiate(*Clause.HeadPred)
                                     : Clause.HeadFormula;
  Parts.push_back(TM.mkNot(Head));

  SmtSolver Solver(TM, Opts);
  Solver.assertFormula(TM.mkAnd(std::move(Parts)));
  ClauseCheckResult Result;
  switch (Solver.check()) {
  case SmtResult::Unsat:
    Result.Status = ClauseStatus::Valid;
    break;
  case SmtResult::Sat:
    Result.Status = ClauseStatus::Invalid;
    Result.Model = Solver.model();
    break;
  case SmtResult::Unknown:
    Result.Status = ClauseStatus::Unknown;
    break;
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// ClauseCheckContext: per-clause solver reuse + system-wide memo cache
//===----------------------------------------------------------------------===//

ClauseCheckContext::ClauseCheckContext(const ChcSystem &System,
                                       SmtSolver::Options Opts,
                                       size_t CacheCapacity,
                                       std::shared_ptr<FileCache> Persistent)
    : System(System), Opts(Opts), CacheCapacity(CacheCapacity),
      CrossCheck(std::getenv("LA_CHECK_INCREMENTAL") != nullptr),
      Persistent(std::move(Persistent)) {
  Solvers.resize(System.clauses().size());
  // The disk key must survive process boundaries, so it hashes the printed
  // system instead of this manager's term ids. Computed once per context.
  if (this->Persistent)
    SystemHash = FileCache::hashKey(System.toString());
}

SmtSolver &ClauseCheckContext::solverFor(size_t ClauseIndex) {
  std::unique_ptr<SmtSolver> &Slot = Solvers[ClauseIndex];
  if (Slot) {
    ++Statistics.RebuildsAvoided;
    return *Slot;
  }
  ++Statistics.SolverRebuilds;
  TermManager &TM = System.termManager();
  const HornClause &Clause = System.clauses()[ClauseIndex];
  Slot = std::make_unique<SmtSolver>(TM, Opts);
  // Scope zero: the interpretation-independent clause skeleton. Asserting
  // the constraint also interns every clause variable, so later scopes hit
  // the existing simplex columns.
  Slot->assertFormula(Clause.Constraint);
  if (!Clause.HeadPred)
    Slot->assertFormula(TM.mkNot(Clause.HeadFormula));
  return *Slot;
}

std::string ClauseCheckContext::cacheKey(size_t ClauseIndex,
                                         const Interpretation &Interp) const {
  // Interpretation formulas are hash-consed, so their term ids identify
  // them; the key lists the interpretation of every predicate occurrence in
  // clause order (body applications, then the head).
  const HornClause &Clause = System.clauses()[ClauseIndex];
  std::string Key = std::to_string(ClauseIndex);
  for (const PredApp &App : Clause.Body)
    Key += ":" + std::to_string(Interp.get(App.Pred)->id());
  if (Clause.HeadPred)
    Key += ">" + std::to_string(Interp.get(Clause.HeadPred->Pred)->id());
  return Key;
}

std::string ClauseCheckContext::diskKey(size_t ClauseIndex,
                                        const Interpretation &Interp) const {
  // Process-independent analogue of cacheKey: term ids are private to one
  // TermManager, so the disk tier hashes the printed interpretation
  // formulas (deterministic rendering) under the canonical system hash.
  const HornClause &Clause = System.clauses()[ClauseIndex];
  std::string Rendered;
  for (const PredApp &App : Clause.Body)
    Rendered += Interp.get(App.Pred)->toString() + "\x1f";
  if (Clause.HeadPred)
    Rendered += ">" + Interp.get(Clause.HeadPred->Pred)->toString();
  return "c1|" + SystemHash + "|" + std::to_string(ClauseIndex) + "|" +
         FileCache::hashKey(Rendered);
}

void ClauseCheckContext::memoize(std::string Key,
                                 const ClauseCheckResult &Result) {
  auto [Slot, Inserted] = Cache.try_emplace(Key);
  if (!Inserted) {
    // Re-insertion of a live key (possible when a crosscheck re-ran the
    // clause): refresh the stored verdict and its recency; this is not an
    // eviction.
    Slot->second.Result = Result;
    LruList.splice(LruList.end(), LruList, Slot->second.LruPos);
    return;
  }
  if (Cache.size() > CacheCapacity && !LruList.empty()) {
    Cache.erase(LruList.front());
    LruList.pop_front();
    ++Statistics.CacheEvictions;
  }
  Slot->second.Result = Result;
  Slot->second.LruPos = LruList.insert(LruList.end(), std::move(Key));
}

void ClauseCheckContext::crossCheckVerdict(
    size_t ClauseIndex, const Interpretation &Interp,
    const ClauseCheckResult &Incremental) const {
  const HornClause &Clause = System.clauses()[ClauseIndex];
  ClauseCheckResult OneShot = checkClause(System, Clause, Interp, Opts);
  // Unknown is budget-dependent, so only definite verdicts must agree.
  if (Incremental.Status == ClauseStatus::Unknown ||
      OneShot.Status == ClauseStatus::Unknown)
    return;
  assert(Incremental.Status == OneShot.Status &&
         "incremental and one-shot clause checks disagree");
  if (Incremental.Status != ClauseStatus::Invalid)
    return;
  // The incremental model must genuinely violate the clause.
  TermManager &TM = System.termManager();
  std::vector<const Term *> Parts{Clause.Constraint};
  for (const PredApp &App : Clause.Body)
    Parts.push_back(Interp.instantiate(App));
  const Term *Head = Clause.HeadPred ? Interp.instantiate(*Clause.HeadPred)
                                     : Clause.HeadFormula;
  Parts.push_back(TM.mkNot(Head));
  const Term *Negation = TM.mkAnd(std::move(Parts));
  std::unordered_map<const Term *, Rational> Extended = Incremental.Model;
  std::vector<const Term *> Stack{Negation};
  while (!Stack.empty()) {
    const Term *Node = Stack.back();
    Stack.pop_back();
    if (Node->kind() == TermKind::Var && !Extended.count(Node))
      Extended.emplace(Node, Rational(0));
    for (const Term *Op : Node->operands())
      Stack.push_back(Op);
  }
  assert(evalFormula(Negation, Extended) &&
         "incremental model does not violate the clause");
  (void)Negation;
}

ClauseCheckResult ClauseCheckContext::check(size_t ClauseIndex,
                                            const Interpretation &Interp) {
  assert(ClauseIndex < System.clauses().size() && "clause index out of range");
  const HornClause &Clause = System.clauses()[ClauseIndex];
  TermManager &TM = System.termManager();

  // Cancellation checkpoint: a cancelled solve must not open new solver
  // scopes or pollute the memo cache; like any Unknown, this verdict is
  // budget-dependent and is never cached.
  if (isCancelled(Opts.Cancel))
    return ClauseCheckResult{};

  std::string Key = cacheKey(ClauseIndex, Interp);
  auto Hit = Cache.find(Key);
  if (Hit != Cache.end()) {
    ++Statistics.CacheHits;
    // Touch-on-hit: move the key to the most-recent end of the LRU list.
    LruList.splice(LruList.end(), LruList, Hit->second.LruPos);
    return Hit->second.Result;
  }
  ++Statistics.CacheMisses;

  // Persistent tier: only Valid verdicts live on disk (they carry no model,
  // so a one-line record fully reproduces the result). A hit is promoted
  // back into the in-memory LRU.
  std::string DKey;
  if (Persistent) {
    DKey = diskKey(ClauseIndex, Interp);
    std::string Stored;
    if (Persistent->lookup(DKey, Stored) && Stored == "valid") {
      ++Statistics.DiskHits;
      ClauseCheckResult FromDisk;
      FromDisk.Status = ClauseStatus::Valid;
      memoize(std::move(Key), FromDisk);
      return FromDisk;
    }
    ++Statistics.DiskMisses;
  }

  SmtSolver &Solver = solverFor(ClauseIndex);
  Solver.push();
  ++Statistics.ScopePushes;
  for (const PredApp &App : Clause.Body)
    Solver.assertFormula(Interp.instantiate(App));

  // Conjunction heads are checked conjunct by conjunct: `body -> /\ c_j` is
  // one obligation per conjunct, and k queries with a single negated atom
  // each are far easier on the solver than one query whose negated head is
  // a k-way disjunction multiplied into a wide clause constraint (the
  // scalability family's branch cascades time out on the monolithic
  // negation but discharge in milliseconds per conjunct). Semantically
  // identical: the negation is satisfiable iff some `body /\ !c_j` is.
  const Term *Head =
      Clause.HeadPred ? Interp.instantiate(*Clause.HeadPred) : nullptr;
  ClauseCheckResult Result;
  if (Head && Head->kind() == TermKind::And) {
    ++Statistics.ConjunctSplits;
    Result.Status = ClauseStatus::Valid;
    for (const Term *Conjunct : Head->operands()) {
      if (isCancelled(Opts.Cancel)) {
        Result = ClauseCheckResult{}; // Unknown: budget expired mid-split
        break;
      }
      Solver.push();
      ++Statistics.ScopePushes;
      Solver.assertFormula(TM.mkNot(Conjunct));
      ++Statistics.ChecksIssued;
      SmtResult R = Solver.check();
      if (R == SmtResult::Sat) {
        Result.Status = ClauseStatus::Invalid;
        Result.Model = Solver.model();
      }
      Solver.pop();
      if (R == SmtResult::Sat)
        break;
      if (R == SmtResult::Unknown) {
        Result.Status = ClauseStatus::Unknown;
        Result.Model.clear();
        break;
      }
      // `body -> Conjunct` just proved valid, so the conjunct is entailed
      // and asserting it positively is sound. It prunes the later (harder)
      // sub-checks: the cheap unary bounds land first and fence the search
      // space of the relational conjuncts rendered after them.
      Solver.assertFormula(Conjunct);
    }
  } else {
    if (Head)
      Solver.assertFormula(TM.mkNot(Head));
    ++Statistics.ChecksIssued;
    switch (Solver.check()) {
    case SmtResult::Unsat:
      Result.Status = ClauseStatus::Valid;
      break;
    case SmtResult::Sat:
      Result.Status = ClauseStatus::Invalid;
      Result.Model = Solver.model();
      break;
    case SmtResult::Unknown:
      Result.Status = ClauseStatus::Unknown;
      break;
    }
  }
  Solver.pop();

  if (CrossCheck)
    crossCheckVerdict(ClauseIndex, Interp, Result);

  if (Result.Status == ClauseStatus::Unknown) {
    // Budget-dependent: never cache, and start the next attempt on this
    // clause from a fresh solver (the failed search may have bloated the
    // clause database with split atoms).
    Solvers[ClauseIndex].reset();
    return Result;
  }

  memoize(std::move(Key), Result);
  if (Persistent && Result.Status == ClauseStatus::Valid) {
    Persistent->store(DKey, "valid");
    ++Statistics.DiskStores;
  }
  return Result;
}

ClauseStatus ClauseCheckContext::checkAll(const Interpretation &Interp) {
  bool SawUnknown = false;
  for (size_t I = 0; I < System.clauses().size(); ++I) {
    ClauseCheckResult R = check(I, Interp);
    if (R.Status == ClauseStatus::Invalid)
      return ClauseStatus::Invalid;
    SawUnknown |= R.Status == ClauseStatus::Unknown;
  }
  return SawUnknown ? ClauseStatus::Unknown : ClauseStatus::Valid;
}

Rational chc::evalWithDefaults(
    const Term *T, const std::unordered_map<const Term *, Rational> &Model) {
  std::unordered_map<const Term *, Rational> Extended = Model;
  std::vector<const Term *> Stack{T};
  while (!Stack.empty()) {
    const Term *Node = Stack.back();
    Stack.pop_back();
    if (Node->kind() == TermKind::Var && !Extended.count(Node))
      Extended.emplace(Node, Rational(0));
    for (const Term *Op : Node->operands())
      Stack.push_back(Op);
  }
  return evalTerm(T, Extended);
}

ClauseStatus chc::checkInterpretation(const ChcSystem &System,
                                      const Interpretation &Interp,
                                      const SmtSolver::Options &Opts) {
  bool SawUnknown = false;
  for (const HornClause &Clause : System.clauses()) {
    ClauseCheckResult R = checkClause(System, Clause, Interp, Opts);
    if (R.Status == ClauseStatus::Invalid)
      return ClauseStatus::Invalid;
    SawUnknown |= R.Status == ClauseStatus::Unknown;
  }
  return SawUnknown ? ClauseStatus::Unknown : ClauseStatus::Valid;
}

std::string Counterexample::toString(const ChcSystem &System) const {
  (void)System;
  std::string Out = "counterexample derivation (query clause #" +
                    std::to_string(QueryClauseIndex) + "):\n";
  for (size_t I = 0; I < Nodes.size(); ++I) {
    const Node &N = Nodes[I];
    Out += "  [" + std::to_string(I) + "] " + N.Pred->Name + "(";
    for (size_t J = 0; J < N.Args.size(); ++J)
      Out += (J ? ", " : "") + N.Args[J].toString();
    Out += ") via clause #" + std::to_string(N.ClauseIndex);
    if (!N.Children.empty()) {
      Out += " from";
      for (size_t C : N.Children)
        Out += " [" + std::to_string(C) + "]";
    }
    Out += "\n";
  }
  return Out;
}

/// Builds the formula "clause instance matches the given ground facts".
static const Term *
instanceFormula(TermManager &TM, const HornClause &Clause,
                const std::vector<const Counterexample::Node *> &BodyFacts,
                const Counterexample::Node *HeadFact) {
  std::vector<const Term *> Parts{Clause.Constraint};
  assert(BodyFacts.size() == Clause.Body.size() && "body arity mismatch");
  for (size_t I = 0; I < Clause.Body.size(); ++I) {
    const PredApp &App = Clause.Body[I];
    assert(BodyFacts[I]->Pred == App.Pred && "body predicate mismatch");
    for (size_t J = 0; J < App.Args.size(); ++J)
      Parts.push_back(TM.mkEq(
          App.Args[J], TM.mkIntConst(BodyFacts[I]->Args[J])));
  }
  if (HeadFact) {
    assert(Clause.HeadPred && HeadFact->Pred == Clause.HeadPred->Pred &&
           "head predicate mismatch");
    for (size_t J = 0; J < Clause.HeadPred->Args.size(); ++J)
      Parts.push_back(TM.mkEq(Clause.HeadPred->Args[J],
                              TM.mkIntConst(HeadFact->Args[J])));
  }
  return TM.mkAnd(std::move(Parts));
}

bool chc::validateCounterexample(const ChcSystem &System,
                                 const Counterexample &Cex) {
  TermManager &TM = System.termManager();
  auto Satisfiable = [&](const Term *F) {
    SmtSolver Solver(TM);
    Solver.assertFormula(F);
    return Solver.check() == SmtResult::Sat;
  };

  // Each node must be derivable from its children through its clause.
  for (const Counterexample::Node &N : Cex.Nodes) {
    if (N.ClauseIndex >= System.clauses().size())
      return false;
    const HornClause &Clause = System.clauses()[N.ClauseIndex];
    if (!Clause.HeadPred || Clause.HeadPred->Pred != N.Pred)
      return false;
    if (N.Children.size() != Clause.Body.size())
      return false;
    std::vector<const Counterexample::Node *> BodyFacts;
    for (size_t C : N.Children) {
      if (C >= Cex.Nodes.size())
        return false;
      BodyFacts.push_back(&Cex.Nodes[C]);
    }
    if (!Satisfiable(instanceFormula(TM, Clause, BodyFacts, &N)))
      return false;
  }

  // The query clause must be violated by the root facts.
  if (Cex.QueryClauseIndex >= System.clauses().size())
    return false;
  const HornClause &Query = System.clauses()[Cex.QueryClauseIndex];
  if (!Query.isQuery())
    return false;
  if (Cex.QueryChildren.size() != Query.Body.size())
    return false;
  std::vector<const Counterexample::Node *> BodyFacts;
  for (size_t C : Cex.QueryChildren) {
    if (C >= Cex.Nodes.size())
      return false;
    BodyFacts.push_back(&Cex.Nodes[C]);
  }
  const Term *Violation =
      TM.mkAnd(instanceFormula(TM, Query, BodyFacts, nullptr),
               TM.mkNot(Query.HeadFormula));
  return Satisfiable(Violation);
}
