//===- chc/Chc.cpp - Constrained Horn clause systems ----------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "chc/Chc.h"

#include <cassert>
#include <functional>

using namespace la;
using namespace la::chc;

const Term *Interpretation::instantiate(const PredApp &App) const {
  const Term *Formula = get(App.Pred);
  std::unordered_map<const Term *, const Term *> Map;
  assert(App.Args.size() == App.Pred->arity() && "arity mismatch");
  for (size_t I = 0; I < App.Args.size(); ++I)
    Map.emplace(App.Pred->Params[I], App.Args[I]);
  return TM->substitute(Formula, Map);
}

std::string Interpretation::toString() const {
  std::string Out;
  for (const auto &[Pred, Formula] : Formulas) {
    Out += Pred->Name + "(";
    for (size_t I = 0; I < Pred->Params.size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += Pred->Params[I]->name();
    }
    Out += ") := " + Formula->toString() + "\n";
  }
  return Out;
}

const Predicate *ChcSystem::addPredicate(const std::string &Name,
                                         size_t Arity) {
  assert(!PredsByName.count(Name) && "duplicate predicate name");
  Preds.emplace_back();
  Predicate &P = Preds.back();
  P.Name = Name;
  P.Index = Preds.size() - 1;
  for (size_t I = 0; I < Arity; ++I)
    P.Params.push_back(TM.mkVar(Name + "#" + std::to_string(I)));
  PredList.push_back(&P);
  PredsByName.emplace(Name, &P);
  return &P;
}

const Predicate *ChcSystem::findPredicate(const std::string &Name) const {
  auto It = PredsByName.find(Name);
  return It == PredsByName.end() ? nullptr : It->second;
}

void ChcSystem::addClause(HornClause Clause) {
  if (!Clause.Constraint)
    Clause.Constraint = TM.mkTrue();
  assert(!TermManager::containsPredApp(Clause.Constraint) &&
         "clause constraint must be predicate-free");
  for ([[maybe_unused]] const PredApp &App : Clause.Body) {
    assert(App.Pred && App.Args.size() == App.Pred->arity() &&
           "malformed body application");
  }
  if (Clause.HeadPred) {
    assert(Clause.HeadPred->Pred &&
           Clause.HeadPred->Args.size() == Clause.HeadPred->Pred->arity() &&
           "malformed head application");
  } else {
    assert(Clause.HeadFormula && "query clause without head formula");
    assert(!TermManager::containsPredApp(Clause.HeadFormula) &&
           "head formula must be predicate-free");
  }
  Clauses.push_back(std::move(Clause));
}

std::vector<size_t> ChcSystem::clausesWithHead(const Predicate *P) const {
  std::vector<size_t> Result;
  for (size_t I = 0; I < Clauses.size(); ++I)
    if (Clauses[I].HeadPred && Clauses[I].HeadPred->Pred == P)
      Result.push_back(I);
  return Result;
}

std::vector<size_t> ChcSystem::clausesUsing(const Predicate *P) const {
  std::vector<size_t> Result;
  for (size_t I = 0; I < Clauses.size(); ++I)
    for (const PredApp &App : Clauses[I].Body)
      if (App.Pred == P) {
        Result.push_back(I);
        break;
      }
  return Result;
}

std::vector<const Predicate *> ChcSystem::recursivePredicates() const {
  // Tarjan SCC over the dependency graph with edges body-pred -> head-pred.
  size_t N = PredList.size();
  std::vector<std::vector<size_t>> Succ(N);
  std::vector<char> SelfLoop(N, 0);
  for (const HornClause &C : Clauses) {
    if (!C.HeadPred)
      continue;
    size_t H = C.HeadPred->Pred->Index;
    for (const PredApp &App : C.Body) {
      size_t B = App.Pred->Index;
      if (B == H)
        SelfLoop[B] = 1;
      Succ[B].push_back(H);
    }
  }

  std::vector<int> Index(N, -1), LowLink(N, 0);
  std::vector<char> OnStack(N, 0);
  std::vector<size_t> Stack;
  std::vector<int> SccOf(N, -1);
  std::vector<size_t> SccSize;
  int NextIndex = 0;

  std::function<void(size_t)> StrongConnect = [&](size_t V) {
    Index[V] = LowLink[V] = NextIndex++;
    Stack.push_back(V);
    OnStack[V] = 1;
    for (size_t W : Succ[V]) {
      if (Index[W] < 0) {
        StrongConnect(W);
        LowLink[V] = std::min(LowLink[V], LowLink[W]);
      } else if (OnStack[W]) {
        LowLink[V] = std::min(LowLink[V], Index[W]);
      }
    }
    if (LowLink[V] == Index[V]) {
      int SccId = static_cast<int>(SccSize.size());
      size_t Size = 0;
      for (;;) {
        size_t W = Stack.back();
        Stack.pop_back();
        OnStack[W] = 0;
        SccOf[W] = SccId;
        ++Size;
        if (W == V)
          break;
      }
      SccSize.push_back(Size);
    }
  };
  for (size_t V = 0; V < N; ++V)
    if (Index[V] < 0)
      StrongConnect(V);

  std::vector<const Predicate *> Result;
  for (size_t V = 0; V < N; ++V)
    if (SelfLoop[V] || SccSize[SccOf[V]] > 1)
      Result.push_back(PredList[V]);
  return Result;
}

bool ChcSystem::isRecursive() const { return !recursivePredicates().empty(); }

std::string ChcSystem::toString() const {
  std::string Out;
  for (const Predicate *P : PredList)
    Out += "pred " + P->Name + "/" + std::to_string(P->arity()) + "\n";
  for (const HornClause &C : Clauses) {
    std::string Body = C.Constraint->toString();
    for (const PredApp &App : C.Body) {
      Body += " /\\ " + App.Pred->Name + "(";
      for (size_t I = 0; I < App.Args.size(); ++I)
        Body += (I ? ", " : "") + App.Args[I]->toString();
      Body += ")";
    }
    std::string Head;
    if (C.HeadPred) {
      Head = C.HeadPred->Pred->Name + "(";
      for (size_t I = 0; I < C.HeadPred->Args.size(); ++I)
        Head += (I ? ", " : "") + C.HeadPred->Args[I]->toString();
      Head += ")";
    } else {
      Head = C.HeadFormula->toString();
    }
    if (!C.Name.empty())
      Out += "[" + C.Name + "] ";
    Out += Body + " -> " + Head + "\n";
  }
  return Out;
}

void la::chc::cloneSystem(const ChcSystem &Src, ChcSystem &Dst) {
  assert(&Src.termManager() != &Dst.termManager() &&
         "clone must target a different term manager");
  assert(Dst.predicates().empty() && Dst.clauses().empty() &&
         "clone target must be empty");
  TermManager &TM = Dst.termManager();
  // Re-declaring in registration order preserves Predicate::Index, so
  // witnesses translate back by index alone. addPredicate re-creates the
  // canonical `<name>#<i>` parameter variables in Dst's manager, and
  // import() maps variables by name, so interpretation formulas over the
  // clone's parameters line up with the originals.
  for (const Predicate *P : Src.predicates())
    Dst.addPredicate(P->Name, P->arity());
  for (const HornClause &C : Src.clauses()) {
    HornClause Out;
    Out.Name = C.Name;
    Out.Constraint = TM.import(C.Constraint);
    for (const PredApp &App : C.Body) {
      PredApp A;
      A.Pred = Dst.predicates()[App.Pred->Index];
      for (const Term *Arg : App.Args)
        A.Args.push_back(TM.import(Arg));
      Out.Body.push_back(std::move(A));
    }
    if (C.HeadPred) {
      PredApp H;
      H.Pred = Dst.predicates()[C.HeadPred->Pred->Index];
      for (const Term *Arg : C.HeadPred->Args)
        H.Args.push_back(TM.import(Arg));
      Out.HeadPred = std::move(H);
    } else {
      Out.HeadFormula = TM.import(C.HeadFormula);
    }
    Dst.addClause(std::move(Out));
  }
}
