//===- chc/Chc.h - Constrained Horn clause systems --------------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Representation of CHC systems (paper §4.1): unknown predicates, Horn
/// clauses `phi /\ p1[T1] /\ ... /\ pk[Tk] -> h[T]`, interpretations, and the
/// dependency analysis that classifies a system as recursive.
///
//===----------------------------------------------------------------------===//

#ifndef LA_CHC_CHC_H
#define LA_CHC_CHC_H

#include "logic/Term.h"

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace la::chc {

/// An unknown predicate symbol with canonical formal parameters.
struct Predicate {
  std::string Name;
  /// Formal parameter variables (Int), one per argument position.
  /// Interpretations are formulas over exactly these variables.
  std::vector<const Term *> Params;
  /// Registration index within the owning system.
  size_t Index = 0;

  size_t arity() const { return Params.size(); }
};

/// An application of an unknown predicate to argument terms.
struct PredApp {
  const Predicate *Pred = nullptr;
  std::vector<const Term *> Args;
};

/// One constrained Horn clause: `Constraint /\ Body -> Head`.
///
/// The head is either an unknown-predicate application (`HeadPred`) or a
/// known formula (`HeadFormula`), e.g. an assertion or `false` for queries.
struct HornClause {
  std::vector<PredApp> Body;
  const Term *Constraint = nullptr;
  std::optional<PredApp> HeadPred;
  const Term *HeadFormula = nullptr; ///< Used when !HeadPred.
  std::string Name;                  ///< Optional diagnostic label.

  bool isQuery() const { return !HeadPred.has_value(); }
  bool isFact() const { return Body.empty() && HeadPred.has_value(); }
};

/// Maps each predicate to its interpretation formula (over Pred->Params).
/// Predicates without an entry are interpreted as `true`.
class Interpretation {
public:
  explicit Interpretation(TermManager &TM) : TM(&TM) {}

  const Term *get(const Predicate *P) const {
    auto It = Formulas.find(P);
    return It == Formulas.end() ? TM->mkTrue() : It->second;
  }
  void set(const Predicate *P, const Term *Formula) { Formulas[P] = Formula; }

  /// Instantiates P's interpretation at the argument terms of \p App.
  const Term *instantiate(const PredApp &App) const;

  std::string toString() const;

private:
  TermManager *TM;
  std::map<const Predicate *, const Term *> Formulas;
};

/// A CHC system: predicates plus clauses, with dependency analysis.
class ChcSystem {
public:
  explicit ChcSystem(TermManager &TM) : TM(TM) {}

  TermManager &termManager() const { return TM; }

  /// Declares a fresh predicate with the given arity. Parameter variables
  /// are created as `<name>#<i>`. Names must be unique.
  const Predicate *addPredicate(const std::string &Name, size_t Arity);
  const Predicate *findPredicate(const std::string &Name) const;
  const std::vector<const Predicate *> &predicates() const { return PredList; }

  /// Appends a clause; every PredApp must reference a declared predicate and
  /// have matching arity (asserted).
  void addClause(HornClause Clause);
  const std::vector<HornClause> &clauses() const { return Clauses; }

  /// True when some predicate transitively depends on itself.
  bool isRecursive() const;
  /// Predicates on a dependency cycle (including self-loops).
  std::vector<const Predicate *> recursivePredicates() const;

  /// Clause indices whose head is the given predicate.
  std::vector<size_t> clausesWithHead(const Predicate *P) const;
  /// Clause indices using the predicate in their body.
  std::vector<size_t> clausesUsing(const Predicate *P) const;

  std::string toString() const;

private:
  TermManager &TM;
  std::deque<Predicate> Preds;
  std::vector<const Predicate *> PredList;
  std::map<std::string, const Predicate *> PredsByName;
  std::vector<HornClause> Clauses;
};

/// Deep-copies \p Src into the empty system \p Dst, whose TermManager must
/// be a *different* manager: predicates are re-declared in order (indices
/// are preserved) and every clause term is rebuilt via
/// `TermManager::import`. This is the isolation boundary of the parallel
/// portfolio engine -- term managers are not thread-safe, so each worker
/// solves a private clone and only the winner's witness is translated back.
void cloneSystem(const ChcSystem &Src, ChcSystem &Dst);

} // namespace la::chc

#endif // LA_CHC_CHC_H
