//===- chc/ChcCheck.h - Clause validity checking ----------------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Discharging interpreted clauses with the SMT solver: the `Z3Check` /
/// `Z3Model` side of Algorithm 3, plus end-to-end witness checking
/// (interpretations and counterexample derivation trees).
///
//===----------------------------------------------------------------------===//

#ifndef LA_CHC_CHCCHECK_H
#define LA_CHC_CHCCHECK_H

#include "chc/Chc.h"
#include "smt/SmtSolver.h"

namespace la::chc {

/// Verdict for one clause under an interpretation.
enum class ClauseStatus { Valid, Invalid, Unknown };

/// Result of checking one clause; on Invalid the model witnesses the
/// violation (an assignment of the clause variables).
struct ClauseCheckResult {
  ClauseStatus Status = ClauseStatus::Unknown;
  std::unordered_map<const Term *, Rational> Model;
};

/// Checks `Constraint /\ /\_i A(p_i)(T_i) -> A(head)` by deciding the
/// satisfiability of its negation.
ClauseCheckResult checkClause(const ChcSystem &System, const HornClause &Clause,
                              const Interpretation &Interp,
                              const smt::SmtSolver::Options &Opts = {});

/// Evaluates \p T under \p Model, defaulting unbound variables to 0 (the SMT
/// solver omits don't-care variables).
Rational evalWithDefaults(const Term *T,
                          const std::unordered_map<const Term *, Rational> &Model);

/// Checks every clause; returns Valid only if all clauses are valid (the
/// full soundness check used by tests and the harness on solver output).
ClauseStatus checkInterpretation(const ChcSystem &System,
                                 const Interpretation &Interp,
                                 const smt::SmtSolver::Options &Opts = {});

/// A counterexample to satisfiability: a derivation tree of ground predicate
/// facts ending in a violated query clause (paper §4.2, line 15).
struct Counterexample {
  struct Node {
    const Predicate *Pred = nullptr;
    std::vector<Rational> Args;
    /// Clause whose instantiation derives this fact; children are the body
    /// predicate applications in order.
    size_t ClauseIndex = 0;
    std::vector<size_t> Children; ///< Indices into Nodes.
  };
  std::vector<Node> Nodes;
  /// The violated query clause and the derivation-node index for each body
  /// application of that clause.
  size_t QueryClauseIndex = 0;
  std::vector<size_t> QueryChildren;

  std::string toString(const ChcSystem &System) const;
};

/// Replays a counterexample: every node's fact must be derivable from its
/// children via its clause, and the query clause must be violated by the
/// root facts. Returns true when the tree is a genuine refutation.
bool validateCounterexample(const ChcSystem &System, const Counterexample &Cex);

} // namespace la::chc

#endif // LA_CHC_CHCCHECK_H
