//===- chc/ChcCheck.h - Clause validity checking ----------------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Discharging interpreted clauses with the SMT solver: the `Z3Check` /
/// `Z3Model` side of Algorithm 3, plus end-to-end witness checking
/// (interpretations and counterexample derivation trees).
///
//===----------------------------------------------------------------------===//

#ifndef LA_CHC_CHCCHECK_H
#define LA_CHC_CHCCHECK_H

#include "chc/Chc.h"
#include "smt/SmtSolver.h"

#include <list>
#include <memory>

namespace la {
class FileCache;
}

namespace la::chc {

/// Verdict for one clause under an interpretation.
enum class ClauseStatus { Valid, Invalid, Unknown };

/// Result of checking one clause; on Invalid the model witnesses the
/// violation (an assignment of the clause variables).
struct ClauseCheckResult {
  ClauseStatus Status = ClauseStatus::Unknown;
  std::unordered_map<const Term *, Rational> Model;
};

/// Checks `Constraint /\ /\_i A(p_i)(T_i) -> A(head)` by deciding the
/// satisfiability of its negation. One-shot reference path: builds a fresh
/// solver per call. Hot callers should use ClauseCheckContext instead.
ClauseCheckResult checkClause(const ChcSystem &System, const HornClause &Clause,
                              const Interpretation &Interp,
                              const smt::SmtSolver::Options &Opts = {});

/// Counters for the incremental clause-check backend, shared by the CEGAR
/// loop, the analysis verify pass and the baselines.
struct CheckStats {
  uint64_t ChecksIssued = 0;    ///< checks actually sent to an SMT solver
  uint64_t CacheHits = 0;       ///< verdicts served from the memo cache
  uint64_t CacheMisses = 0;
  uint64_t CacheEvictions = 0;  ///< LRU evictions at capacity
  uint64_t ScopePushes = 0;     ///< solver scopes opened for checks
  uint64_t SolverRebuilds = 0;  ///< per-clause solver (re)constructions
  uint64_t RebuildsAvoided = 0; ///< checks served by a live per-clause solver
  uint64_t ConjunctSplits = 0;  ///< checks decomposed conjunct-by-conjunct
  uint64_t DiskHits = 0;        ///< verdicts served from the persistent tier
  uint64_t DiskMisses = 0;      ///< persistent-tier lookups that missed
  uint64_t DiskStores = 0;      ///< verdicts written to the persistent tier

  void merge(const CheckStats &O) {
    ChecksIssued += O.ChecksIssued;
    CacheHits += O.CacheHits;
    CacheMisses += O.CacheMisses;
    CacheEvictions += O.CacheEvictions;
    ScopePushes += O.ScopePushes;
    SolverRebuilds += O.SolverRebuilds;
    RebuildsAvoided += O.RebuildsAvoided;
    ConjunctSplits += O.ConjunctSplits;
    DiskHits += O.DiskHits;
    DiskMisses += O.DiskMisses;
    DiskStores += O.DiskStores;
  }
};

/// Incremental clause-check backend (the `Z3Check` of Algorithm 3, made
/// persistent). Keeps one SmtSolver per clause for the lifetime of a solve:
/// the interpretation-independent part of the clause (constraint, and the
/// negated head formula of queries) is asserted once at scope zero; each
/// check then pushes a scope, asserts only the current interpretation's
/// predicate formulas, checks, extracts the model, and pops. A system-wide
/// LRU memo cache keyed by (clause index, hash-consed interpretation term
/// ids) makes repeated candidate interpretations — common across DT/SVM
/// restarts and analysis fixpoints — free; a hit refreshes the entry's
/// recency, so hot keys survive capacity evictions. Unknown verdicts are
/// never cached (they
/// are budget-dependent) and drop the per-clause solver so the next attempt
/// starts fresh.
///
/// With the environment variable LA_CHECK_INCREMENTAL set, every non-cached
/// verdict is replayed on the one-shot path and asserted to agree
/// verdict-for-verdict (and Invalid models are re-evaluated on the clause).
///
/// An optional persistent tier (a shared `FileCache`) sits under the memo
/// cache: Valid verdicts — the only ones that carry no model — are written
/// to disk under a process-independent key (canonical hash of the printed
/// system + clause index + hash of the printed interpretation formulas),
/// so repeated solves of the same system across daemon restarts skip their
/// SMT checks entirely. In-memory misses consult the disk tier before the
/// solver; disk hits are promoted back into the LRU.
class ClauseCheckContext {
public:
  explicit ClauseCheckContext(const ChcSystem &System,
                              smt::SmtSolver::Options Opts = {},
                              size_t CacheCapacity = 1 << 14,
                              std::shared_ptr<FileCache> Persistent = nullptr);

  /// Checks clause \p ClauseIndex of the system under \p Interp.
  ClauseCheckResult check(size_t ClauseIndex, const Interpretation &Interp);

  /// Checks every clause; Valid only when all clauses are valid.
  ClauseStatus checkAll(const Interpretation &Interp);

  const CheckStats &stats() const { return Statistics; }
  const ChcSystem &system() const { return System; }

private:
  smt::SmtSolver &solverFor(size_t ClauseIndex);
  std::string cacheKey(size_t ClauseIndex, const Interpretation &Interp) const;
  std::string diskKey(size_t ClauseIndex, const Interpretation &Interp) const;
  void memoize(std::string Key, const ClauseCheckResult &Result);
  void crossCheckVerdict(size_t ClauseIndex, const Interpretation &Interp,
                         const ClauseCheckResult &Incremental) const;

  const ChcSystem &System;
  smt::SmtSolver::Options Opts;
  size_t CacheCapacity;
  bool CrossCheck; ///< LA_CHECK_INCREMENTAL differential mode
  std::shared_ptr<FileCache> Persistent;
  std::string SystemHash; ///< canonical hash of the printed system
  std::vector<std::unique_ptr<smt::SmtSolver>> Solvers; ///< one per clause

  /// LRU recency list (least recent at the front) and the cache entries
  /// pointing back into it, so a hit can splice its key to the back in O(1).
  struct CacheEntry {
    ClauseCheckResult Result;
    std::list<std::string>::iterator LruPos;
  };
  std::list<std::string> LruList;
  std::unordered_map<std::string, CacheEntry> Cache;
  CheckStats Statistics;
};

/// Evaluates \p T under \p Model, defaulting unbound variables to 0 (the SMT
/// solver omits don't-care variables).
Rational evalWithDefaults(const Term *T,
                          const std::unordered_map<const Term *, Rational> &Model);

/// Checks every clause; returns Valid only if all clauses are valid (the
/// full soundness check used by tests and the harness on solver output).
ClauseStatus checkInterpretation(const ChcSystem &System,
                                 const Interpretation &Interp,
                                 const smt::SmtSolver::Options &Opts = {});

/// A counterexample to satisfiability: a derivation tree of ground predicate
/// facts ending in a violated query clause (paper §4.2, line 15).
struct Counterexample {
  struct Node {
    const Predicate *Pred = nullptr;
    std::vector<Rational> Args;
    /// Clause whose instantiation derives this fact; children are the body
    /// predicate applications in order.
    size_t ClauseIndex = 0;
    std::vector<size_t> Children; ///< Indices into Nodes.
  };
  std::vector<Node> Nodes;
  /// The violated query clause and the derivation-node index for each body
  /// application of that clause.
  size_t QueryClauseIndex = 0;
  std::vector<size_t> QueryChildren;

  std::string toString(const ChcSystem &System) const;
};

/// Replays a counterexample: every node's fact must be derivable from its
/// children via its clause, and the query clause must be violated by the
/// root facts. Returns true when the tree is a genuine refutation.
bool validateCounterexample(const ChcSystem &System, const Counterexample &Cex);

} // namespace la::chc

#endif // LA_CHC_CHCCHECK_H
