//===- chc/ChcParser.cpp - SMT-LIB2 HORN fragment parser ------------------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "chc/ChcParser.h"

#include "logic/SExpr.h"

#include <cassert>
#include <cctype>

using namespace la;
using namespace la::chc;

namespace {

/// Recursive-descent conversion from S-expressions to terms and clauses.
class Parser {
public:
  Parser(ChcSystem &Out) : Out(Out), TM(Out.termManager()) {}

  ChcParseResult run(const std::string &Text) {
    SExprParseResult Parsed = parseSExprs(Text);
    if (!Parsed.Ok)
      return fail(Parsed.Error);
    for (const SExpr &Cmd : Parsed.TopLevel)
      if (!command(Cmd))
        return fail(ErrorMessage);
    return ChcParseResult{};
  }

private:
  ChcParseResult fail(const std::string &Message) {
    ChcParseResult R;
    R.Ok = false;
    R.Error = Message;
    return R;
  }

  bool error(const SExpr &Where, const std::string &Message) {
    ErrorMessage = "line " + std::to_string(Where.Line) + ": " + Message;
    return false;
  }

  bool command(const SExpr &Cmd) {
    if (Cmd.IsAtom)
      return error(Cmd, "expected a command list");
    if (Cmd.Items.empty())
      return error(Cmd, "empty command");
    const std::string &Head = Cmd.Items[0].IsAtom ? Cmd.Items[0].Atom : "";
    if (Head == "set-logic" || Head == "set-info" || Head == "set-option" ||
        Head == "check-sat" || Head == "get-model" || Head == "exit")
      return true;
    if (Head == "declare-fun")
      return declareFun(Cmd);
    if (Head == "declare-rel")
      return declareRel(Cmd);
    if (Head == "declare-var")
      return declareVar(Cmd);
    if (Head == "assert" || Head == "rule") {
      if (Cmd.Items.size() != 2)
        return error(Cmd, Head + " takes exactly one formula");
      return clause(Cmd.Items[1]);
    }
    if (Head == "query") {
      if (Cmd.Items.size() != 2)
        return error(Cmd, "query takes exactly one application");
      return query(Cmd.Items[1]);
    }
    return error(Cmd, "unsupported command '" + Head + "'");
  }

  bool declareFun(const SExpr &Cmd) {
    if (Cmd.Items.size() != 4 || !Cmd.Items[1].IsAtom || Cmd.Items[2].IsAtom ||
        !Cmd.Items[3].isAtom("Bool"))
      return error(Cmd, "expected (declare-fun name (Int...) Bool)");
    for (const SExpr &S : Cmd.Items[2].Items)
      if (!S.isAtom("Int"))
        return error(Cmd, "predicate arguments must have sort Int");
    if (Out.findPredicate(Cmd.Items[1].Atom))
      return error(Cmd, "duplicate predicate '" + Cmd.Items[1].Atom + "'");
    Out.addPredicate(Cmd.Items[1].Atom, Cmd.Items[2].Items.size());
    return true;
  }

  bool declareRel(const SExpr &Cmd) {
    if (Cmd.Items.size() != 3 || !Cmd.Items[1].IsAtom || Cmd.Items[2].IsAtom)
      return error(Cmd, "expected (declare-rel name (Int...))");
    for (const SExpr &S : Cmd.Items[2].Items)
      if (!S.isAtom("Int"))
        return error(Cmd, "predicate arguments must have sort Int");
    if (Out.findPredicate(Cmd.Items[1].Atom))
      return error(Cmd, "duplicate predicate '" + Cmd.Items[1].Atom + "'");
    Out.addPredicate(Cmd.Items[1].Atom, Cmd.Items[2].Items.size());
    return true;
  }

  bool declareVar(const SExpr &Cmd) {
    if (Cmd.Items.size() != 3 || !Cmd.Items[1].IsAtom ||
        !Cmd.Items[2].isAtom("Int"))
      return error(Cmd, "expected (declare-var name Int)");
    TM.mkVar(Cmd.Items[1].Atom);
    return true;
  }

  /// Strips an optional (forall (bindings) body) wrapper.
  const SExpr *stripForall(const SExpr &F) {
    if (!F.isCall("forall") && !F.isCall("exists"))
      return &F;
    if (F.Items.size() != 3 || F.Items[1].IsAtom) {
      error(F, "malformed quantifier");
      return nullptr;
    }
    for (const SExpr &Binding : F.Items[1].Items) {
      if (Binding.IsAtom || Binding.Items.size() != 2 ||
          !Binding.Items[0].IsAtom || !Binding.Items[1].isAtom("Int")) {
        error(F, "quantifier bindings must be ((name Int) ...)");
        return nullptr;
      }
      TM.mkVar(Binding.Items[0].Atom);
    }
    return stripForall(F.Items[2]);
  }

  bool clause(const SExpr &FormulaExpr) {
    const SExpr *Core = stripForall(FormulaExpr);
    if (!Core)
      return false;
    const SExpr *BodyExpr = nullptr;
    const SExpr *HeadExpr = nullptr;
    bool NegatedBody = false;
    if (Core->isCall("=>")) {
      if (Core->Items.size() < 3)
        return error(*Core, "=> needs at least two operands");
      // Right-associate: (=> a b c) == (=> a (=> b c)); fold extra
      // antecedents into the body conjunction.
      BodyExpr = &Core->Items[1];
      HeadExpr = &Core->Items[Core->Items.size() - 1];
      ExtraBody.clear();
      for (size_t I = 2; I + 1 < Core->Items.size(); ++I)
        ExtraBody.push_back(&Core->Items[I]);
    } else if (Core->isCall("not")) {
      if (Core->Items.size() != 2)
        return error(*Core, "not takes one operand");
      BodyExpr = &Core->Items[1];
      NegatedBody = true;
    } else {
      HeadExpr = Core;
    }

    HornClause C;
    std::vector<const Term *> ConstraintParts;
    if (BodyExpr) {
      const Term *Body = nullptr;
      if (!term(*BodyExpr, Body))
        return false;
      for (const SExpr *Extra : ExtraBody) {
        const Term *T = nullptr;
        if (!term(*Extra, T))
          return false;
        Body = TM.mkAnd(Body, T);
      }
      if (!splitBody(*BodyExpr, Body, C.Body, ConstraintParts))
        return false;
    }
    C.Constraint = TM.mkAnd(ConstraintParts);

    if (NegatedBody) {
      C.HeadFormula = TM.mkFalse();
    } else {
      assert(HeadExpr && "clause without a head");
      const Term *Head = nullptr;
      if (!term(*HeadExpr, Head))
        return false;
      if (Head->kind() == TermKind::PredApp) {
        PredApp App;
        if (!resolveApp(*HeadExpr, Head, App))
          return false;
        C.HeadPred = std::move(App);
      } else if (TermManager::containsPredApp(Head)) {
        return error(*HeadExpr, "head mixes predicates with other structure");
      } else {
        C.HeadFormula = Head;
      }
    }
    Out.addClause(std::move(C));
    return true;
  }

  bool query(const SExpr &AppExpr) {
    // (query p) or (query (p x ...)): clause p(...) -> false over fresh vars.
    const Predicate *P = nullptr;
    if (AppExpr.IsAtom) {
      P = Out.findPredicate(AppExpr.Atom);
    } else if (!AppExpr.Items.empty() && AppExpr.Items[0].IsAtom) {
      P = Out.findPredicate(AppExpr.Items[0].Atom);
    }
    if (!P)
      return error(AppExpr, "query of an undeclared predicate");
    HornClause C;
    PredApp App;
    App.Pred = P;
    for (size_t I = 0; I < P->arity(); ++I)
      App.Args.push_back(TM.mkFreshVar("q!" + P->Name));
    C.Body.push_back(std::move(App));
    C.Constraint = TM.mkTrue();
    C.HeadFormula = TM.mkFalse();
    Out.addClause(std::move(C));
    return true;
  }

  /// Splits a parsed clause body into predicate applications and the
  /// predicate-free constraint.
  bool splitBody(const SExpr &Where, const Term *Body,
                 std::vector<PredApp> &Apps,
                 std::vector<const Term *> &ConstraintParts) {
    std::vector<const Term *> Conjuncts;
    if (Body->kind() == TermKind::And)
      Conjuncts.assign(Body->operands().begin(), Body->operands().end());
    else
      Conjuncts.push_back(Body);
    for (const Term *Conj : Conjuncts) {
      if (Conj->kind() == TermKind::PredApp) {
        PredApp App;
        if (!resolveApp(Where, Conj, App))
          return false;
        Apps.push_back(std::move(App));
        continue;
      }
      if (TermManager::containsPredApp(Conj))
        return error(Where,
                     "predicate application under non-conjunctive structure "
                     "(not a Horn clause)");
      ConstraintParts.push_back(Conj);
    }
    return true;
  }

  bool resolveApp(const SExpr &Where, const Term *AppTerm, PredApp &App) {
    const Predicate *P = Out.findPredicate(AppTerm->name());
    if (!P)
      return error(Where, "undeclared predicate '" + AppTerm->name() + "'");
    if (P->arity() != AppTerm->numOperands())
      return error(Where, "arity mismatch for '" + P->Name + "'");
    App.Pred = P;
    App.Args.assign(AppTerm->operands().begin(), AppTerm->operands().end());
    return true;
  }

  /// Parses a term (Int or Bool). Returns false and sets the error on
  /// unsupported syntax.
  bool term(const SExpr &E, const Term *&Result) {
    if (E.IsAtom)
      return atom(E, Result);
    if (E.Items.empty() || !E.Items[0].IsAtom)
      return error(E, "expected an operator application");
    const std::string &Op = E.Items[0].Atom;
    // `(- <numeral>)` denotes one negative literal, not negation applied to
    // a parsed constant: fold the sign into the token before the range
    // check, so `(- 9223372036854775808)` and `-9223372036854775808` agree
    // (INT64_MIN is representable although its magnitude is not).
    if (Op == "-" && E.Items.size() == 2 && E.Items[1].IsAtom &&
        !E.Items[1].Atom.empty() &&
        std::isdigit(static_cast<unsigned char>(E.Items[1].Atom[0])))
      return parseNumeral(E, "-" + E.Items[1].Atom, Result);
    std::vector<const Term *> Args;
    for (size_t I = 1; I < E.Items.size(); ++I) {
      const Term *T = nullptr;
      if (!term(E.Items[I], T))
        return false;
      Args.push_back(T);
    }

    auto Need = [&](size_t N) {
      if (Args.size() == N)
        return true;
      return error(E, "'" + Op + "' expects " + std::to_string(N) +
                          " operands");
    };

    if (Op == "+") {
      Result = TM.mkAdd(Args);
      return true;
    }
    if (Op == "-") {
      if (Args.size() == 1) {
        Result = TM.mkNeg(Args[0]);
        return true;
      }
      if (Args.empty())
        return error(E, "'-' needs operands");
      const Term *Acc = Args[0];
      for (size_t I = 1; I < Args.size(); ++I)
        Acc = TM.mkSub(Acc, Args[I]);
      Result = Acc;
      return true;
    }
    if (Op == "*") {
      // Linear products only: exactly one non-constant factor.
      Rational Factor(1);
      const Term *NonConst = nullptr;
      for (const Term *A : Args) {
        if (A->isIntConst()) {
          Factor *= A->value();
          continue;
        }
        if (NonConst)
          return error(E, "non-linear multiplication is not supported");
        NonConst = A;
      }
      Result = NonConst ? TM.mkMul(Factor, NonConst)
                        : TM.mkIntConst(Factor);
      return true;
    }
    if (Op == "mod") {
      if (!Need(2))
        return false;
      if (!Args[1]->isIntConst() || Args[1]->value().signum() <= 0)
        return error(E, "mod requires a positive constant modulus");
      Result = TM.mkMod(Args[0], Args[1]->value().numerator());
      return true;
    }
    if (Op == "<=" || Op == "<" || Op == ">=" || Op == ">") {
      if (Args.size() < 2)
        return error(E, "comparison needs two operands");
      // Chained comparisons: (< a b c) == a<b and b<c.
      std::vector<const Term *> Parts;
      for (size_t I = 0; I + 1 < Args.size(); ++I) {
        const Term *L = Args[I], *R = Args[I + 1];
        if (Op == "<=")
          Parts.push_back(TM.mkLe(L, R));
        else if (Op == "<")
          Parts.push_back(TM.mkLt(L, R));
        else if (Op == ">=")
          Parts.push_back(TM.mkGe(L, R));
        else
          Parts.push_back(TM.mkGt(L, R));
      }
      Result = TM.mkAnd(std::move(Parts));
      return true;
    }
    if (Op == "=") {
      if (Args.size() < 2)
        return error(E, "= needs two operands");
      std::vector<const Term *> Parts;
      for (size_t I = 0; I + 1 < Args.size(); ++I)
        Parts.push_back(TM.mkEq(Args[I], Args[I + 1]));
      Result = TM.mkAnd(std::move(Parts));
      return true;
    }
    if (Op == "distinct") {
      if (!Need(2))
        return false;
      Result = TM.mkNe(Args[0], Args[1]);
      return true;
    }
    if (Op == "not") {
      if (!Need(1))
        return false;
      Result = TM.mkNot(Args[0]);
      return true;
    }
    if (Op == "and") {
      Result = TM.mkAnd(Args);
      return true;
    }
    if (Op == "or") {
      Result = TM.mkOr(Args);
      return true;
    }
    if (Op == "=>") {
      if (Args.size() < 2)
        return error(E, "=> needs two operands");
      const Term *Acc = Args.back();
      for (size_t I = Args.size() - 1; I-- > 0;)
        Acc = TM.mkImplies(Args[I], Acc);
      Result = Acc;
      return true;
    }
    // Predicate application.
    if (const Predicate *P = Out.findPredicate(Op)) {
      if (P->arity() != Args.size())
        return error(E, "arity mismatch for '" + Op + "'");
      Result = TM.mkPredApp(Op, std::move(Args));
      return true;
    }
    return error(E, "unknown operator or predicate '" + Op + "'");
  }

  /// Parses \p A (which must match `[+-]?[0-9]+`) into an integer constant.
  /// Literals outside the signed 64-bit range are rejected with a clear
  /// parse error: downstream consumers (model extraction, case
  /// enumeration, feature construction) convert constants through
  /// `BigInt::toInt64`, and a literal the back end can never represent is
  /// far more likely a corrupt input than an intentional constant.
  bool parseNumeral(const SExpr &E, const std::string &A,
                    const Term *&Result) {
    std::optional<BigInt> Value =
        BigInt::fromString(A[0] == '+' ? A.substr(1) : A);
    if (!Value)
      return error(E, "malformed numeral '" + A + "'");
    if (!Value->toInt64())
      return error(E, "integer literal '" + A +
                          "' is outside the supported 64-bit range");
    Result = TM.mkIntConst(Rational(*Value));
    return true;
  }

  /// Classifies one atom token as a numeral. Returns 1 when \p E is a
  /// well-formed in-range numeral (\p Result set), 0 when the token is not
  /// numeric at all (the caller treats it as a symbol), and -1 on a
  /// malformed or out-of-range numeral (parse error set). A sign with no
  /// digit after it (`-`, `-foo`) is an ordinary symbol; a digit run with
  /// trailing junk (`12x`, `-1.5`) is a malformed numeral.
  int numeralAtom(const SExpr &E, const Term *&Result) {
    const std::string &A = E.Atom;
    if (A.empty())
      return 0;
    size_t Begin = (A[0] == '-' || A[0] == '+') ? 1 : 0;
    size_t I = Begin;
    while (I < A.size() && std::isdigit(static_cast<unsigned char>(A[I])))
      ++I;
    if (I == Begin)
      return 0;
    if (I != A.size()) {
      error(E, "malformed numeral '" + A + "'");
      return -1;
    }
    return parseNumeral(E, A, Result) ? 1 : -1;
  }

  bool atom(const SExpr &E, const Term *&Result) {
    const std::string &A = E.Atom;
    if (A == "true") {
      Result = TM.mkTrue();
      return true;
    }
    if (A == "false") {
      Result = TM.mkFalse();
      return true;
    }
    if (int Num = numeralAtom(E, Result))
      return Num > 0;
    if (const Predicate *P = Out.findPredicate(A)) {
      if (P->arity() != 0)
        return error(E, "predicate '" + A + "' used without arguments");
      Result = TM.mkPredApp(A, {});
      return true;
    }
    Result = TM.mkVar(A);
    return true;
  }

  ChcSystem &Out;
  TermManager &TM;
  std::string ErrorMessage;
  std::vector<const SExpr *> ExtraBody;
};

} // namespace

ChcParseResult chc::parseChcText(const std::string &Text, ChcSystem &Out) {
  return Parser(Out).run(Text);
}
