//===- chc/SolverTypes.h - Common CHC solver result types -------*- C++ -*-===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Result types shared by every CHC solver in the repository (the
/// data-driven solver and the PDR / unwinding / enumeration / template
/// baselines), so the benchmark harness can drive them uniformly.
///
//===----------------------------------------------------------------------===//

#ifndef LA_CHC_SOLVERTYPES_H
#define LA_CHC_SOLVERTYPES_H

#include "chc/ChcCheck.h"

#include <cstdio>

namespace la::chc {

/// Verdict for a CHC system.
enum class ChcResult {
  Sat,     ///< satisfiable: the program is safe; Interp is a solution
  Unsat,   ///< unsatisfiable: the program is unsafe; Cex refutes it
  Unknown, ///< resource budget exhausted
};

inline const char *toString(ChcResult R) {
  switch (R) {
  case ChcResult::Sat:
    return "sat";
  case ChcResult::Unsat:
    return "unsat";
  case ChcResult::Unknown:
    return "unknown";
  }
  return "?";
}

/// Shared per-engine bookkeeping for the evaluation harness.
struct EngineStats {
  size_t SmtQueries = 0;
  size_t Samples = 0; ///< #S column of the paper's tables
  size_t Iterations = 0;
  double Seconds = 0;
  /// Template rows the analysis front-end mined for the polyhedra pass
  /// (zero for solvers that skip the static analysis).
  size_t TemplatesMined = 0;
  /// Verified relational polyhedral facts the front-end contributed.
  size_t PolyhedraFacts = 0;
  /// Counters of the incremental clause-check backend (zero for solvers
  /// that bypass ClauseCheckContext).
  CheckStats Check;

  /// Compact one-line rendering, incremental-backend counters included.
  std::string summary() const {
    char Buf[320];
    int N = snprintf(
        Buf, sizeof(Buf),
        "queries %zu  samples %zu  iters %zu  checks %llu  pushes %llu  "
        "cache %llu/%llu  reuse %llu  %.3fs",
        SmtQueries, Samples, Iterations,
        static_cast<unsigned long long>(Check.ChecksIssued),
        static_cast<unsigned long long>(Check.ScopePushes),
        static_cast<unsigned long long>(Check.CacheHits),
        static_cast<unsigned long long>(Check.CacheHits + Check.CacheMisses),
        static_cast<unsigned long long>(Check.RebuildsAvoided), Seconds);
    if (TemplatesMined + PolyhedraFacts > 0 && N > 0 &&
        static_cast<size_t>(N) < sizeof(Buf))
      N += snprintf(Buf + N, sizeof(Buf) - N, "  templates %zu  polyfacts %zu",
                    TemplatesMined, PolyhedraFacts);
    if (Check.DiskHits + Check.DiskMisses > 0 && N > 0 &&
        static_cast<size_t>(N) < sizeof(Buf))
      snprintf(Buf + N, sizeof(Buf) - N, "  disk %llu/%llu",
               static_cast<unsigned long long>(Check.DiskHits),
               static_cast<unsigned long long>(Check.DiskHits +
                                               Check.DiskMisses));
    return Buf;
  }
};

/// Uniform result of any CHC solver in this repository.
struct ChcSolverResult {
  explicit ChcSolverResult(TermManager &TM) : Interp(TM) {}

  ChcResult Status = ChcResult::Unknown;
  /// Solution when Status == Sat.
  Interpretation Interp;
  /// Refutation when Status == Unsat (not all baselines produce one).
  std::optional<Counterexample> Cex;
  EngineStats Stats;
};

/// Interface implemented by every solver so benches can swap them.
class ChcSolverInterface {
public:
  virtual ~ChcSolverInterface() = default;
  virtual ChcSolverResult solve(const ChcSystem &System) = 0;
  virtual std::string name() const = 0;
};

} // namespace la::chc

#endif // LA_CHC_SOLVERTYPES_H
