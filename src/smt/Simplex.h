//===- smt/Simplex.h - General simplex for linear real arithmetic -*- C++ -*-=//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An implementation of the "general simplex" decision procedure for
/// quantifier-free linear rational arithmetic in the style of Dutertre and
/// de Moura (CAV'06), the algorithm used inside Z3's arithmetic theory:
/// a tableau of basic-variable definitions plus per-variable bounds, with
/// incremental bound assertion / retraction and Bland-rule pivoting.
///
/// Strict bounds are represented with DeltaRational (`c + k*delta`).
/// Conflicts come with Farkas coefficients, which double as interpolation
/// certificates for the Duality/UAutomizer-style baselines.
///
//===----------------------------------------------------------------------===//

#ifndef LA_SMT_SIMPLEX_H
#define LA_SMT_SIMPLEX_H

#include "support/Cancellation.h"
#include "support/DeltaRational.h"

#include <memory>
#include <optional>
#include <vector>

namespace la::smt {

/// Incremental simplex over delta-rationals.
class Simplex {
public:
  using VarId = int;

  /// Creates a fresh unconstrained variable (initial value 0).
  VarId addVar();

  /// Creates a variable defined as a linear combination of existing
  /// variables; the new variable enters the tableau as a basic variable.
  /// Used for the slack variable of each theory atom.
  VarId addDefinedVar(const std::vector<std::pair<VarId, Rational>> &Expr);

  int numVars() const { return static_cast<int>(Values.size()); }

  /// One asserted bound, tagged with an opaque reason for explanations.
  struct Bound {
    DeltaRational Value;
    int Reason = -1;
    bool Present = false;
  };

  /// Undo record for one assertBound call.
  struct BoundUndo {
    VarId Var = -1;
    bool IsLower = false;
    Bound Previous;
    bool Applied = false; ///< False when the assertion was a no-op.
  };

  /// An infeasibility explanation: reasons of the participating bounds with
  /// positive Farkas coefficients. Summing `Coeff * bound` yields the
  /// contradiction 0 <(=) negative constant.
  struct Conflict {
    std::vector<std::pair<int, Rational>> Reasons;
  };

  /// Asserts `V >= Value` (IsLower) or `V <= Value`. Returns a conflict if
  /// the bound immediately clashes with the opposite bound; in that case the
  /// solver state is unchanged. \p Undo receives the information needed to
  /// retract the assertion.
  std::optional<Conflict> assertBound(VarId V, bool IsLower,
                                      const DeltaRational &Value, int Reason,
                                      BoundUndo &Undo);

  /// Retracts a bound assertion. Must be called in LIFO order.
  void undoBound(const BoundUndo &Undo);

  /// Restores feasibility by pivoting; returns a conflict when the asserted
  /// bounds are infeasible. The solver state remains valid either way (on
  /// conflict, callers are expected to retract bounds before re-checking).
  std::optional<Conflict> check();

  /// Current model value; only meaningful after a successful check().
  const DeltaRational &value(VarId V) const { return Values[V]; }

  /// Outcome of an optimization query.
  enum class OptStatus {
    Optimal,   ///< `Value` holds the exact supremum, attained by the model.
    Unbounded, ///< The objective can grow without bound.
    Cancelled, ///< The cancellation token tripped mid-search; callers must
               ///< treat the objective as unbounded to stay sound.
  };
  struct OptResult {
    OptStatus Status = OptStatus::Optimal;
    DeltaRational Value; ///< Meaningful only when `Status == Optimal`.
  };

  /// Maximizes the variable \p Z subject to every asserted bound: phase-2
  /// primal simplex with Bland's rule on both the entering and the leaving
  /// choice, so it terminates without anti-cycling perturbation. Requires a
  /// feasible tableau (a preceding successful check()); the tableau stays
  /// feasible afterwards, so callers may chain maximize() calls for several
  /// objectives without re-checking. \p Cancel is polled once per pivot.
  OptResult maximize(VarId Z,
                     const std::shared_ptr<const CancellationToken> &Cancel =
                         nullptr);

  const Bound &lowerBound(VarId V) const { return Lower[V]; }
  const Bound &upperBound(VarId V) const { return Upper[V]; }

  /// Statistics for benchmarking.
  struct Stats {
    uint64_t Pivots = 0;
    uint64_t BoundAssertions = 0;
    uint64_t Conflicts = 0;
  };
  const Stats &stats() const { return Statistics; }

  /// Validates the structural invariants of the tableau (see Simplex.cpp for
  /// the list). The full scan is called after every pivot and every
  /// successful check() in debug builds (cheap O(1)/O(row) local checks
  /// guard the hotter mutation sites) and compiled out entirely under
  /// NDEBUG.
#ifndef NDEBUG
  void checkInvariants() const;
#else
  void checkInvariants() const {}
#endif

private:
  struct Row {
    VarId Basic;
    /// Sorted by variable id; never contains the basic variable.
    std::vector<std::pair<VarId, Rational>> Terms;
  };

  /// Sets a nonbasic variable to \p NewValue and propagates into basics.
  void updateNonbasic(VarId V, const DeltaRational &NewValue);
  /// Row-local slice of checkInvariants(): structure and value consistency
  /// of one row. O(row length), cheap enough for per-mutation use.
  /// Variable-local slice: bound ordering and (for nonbasics) the
  /// value-within-bounds invariant. O(1).
#ifndef NDEBUG
  void checkRowInvariants(int RowIdx) const;
  void checkVarInvariants(VarId V) const;
#else
  void checkRowInvariants(int) const {}
  void checkVarInvariants(VarId) const {}
#endif
  /// Pivots basic Xi with nonbasic Xj and moves Xi to \p Target.
  void pivotAndUpdate(int RowIdx, VarId Xj, const DeltaRational &Target);
  /// Builds the conflict explanation for an unbounded-direction row.
  Conflict explainRowConflict(const Row &R, bool NeedIncrease) const;

  std::vector<DeltaRational> Values;
  std::vector<Bound> Lower;
  std::vector<Bound> Upper;
  std::vector<Row> Rows;
  std::vector<int> RowOf; ///< var -> row index or -1 when nonbasic.
  Stats Statistics;
#ifndef NDEBUG
  uint64_t DebugCheckCount = 0; ///< samples the full invariant scan
#endif
};

} // namespace la::smt

#endif // LA_SMT_SIMPLEX_H
