//===- smt/Simplex.cpp - General simplex for linear real arithmetic -------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Simplex.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace la;
using namespace la::smt;

#ifndef NDEBUG
/// The structural invariants of the Dutertre--de Moura tableau:
///   (1) the per-variable arrays (values, bounds, RowOf) stay in sync;
///   (2) RowOf and Rows agree bidirectionally: `RowOf[V] == RI` iff
///       `Rows[RI].Basic == V`;
///   (3) asserted bounds never cross (`lower <= upper`), since assertBound
///       reports a conflict instead of installing a crossing bound;
///   (4) every nonbasic variable sits within its bounds (only basic
///       variables may be out of bounds, and only transiently inside
///       check());
///   (5) row terms are strictly sorted by variable id, have nonzero
///       coefficients, and mention only nonbasic, non-self variables;
///   (6) each basic value equals the weighted sum of its row's terms.
void Simplex::checkVarInvariants(VarId V) const {
  int RI = RowOf[V];
  assert(RI < static_cast<int>(Rows.size()) && "RowOf index out of range");
  assert((RI < 0 || Rows[RI].Basic == V) &&
         "RowOf points to a row with a different basic variable");
  if (Lower[V].Present && Upper[V].Present)
    assert(Lower[V].Value <= Upper[V].Value &&
           "crossed bounds survived assertBound");
  if (RI < 0) {
    assert((!Lower[V].Present || Values[V] >= Lower[V].Value) &&
           "nonbasic variable below its lower bound");
    assert((!Upper[V].Present || Values[V] <= Upper[V].Value) &&
           "nonbasic variable above its upper bound");
  }
}

void Simplex::checkRowInvariants(int RowIdx) const {
  const Row &R = Rows[RowIdx];
  assert(R.Basic >= 0 && R.Basic < numVars() && RowOf[R.Basic] == RowIdx &&
         "basic variable does not map back to its row");
  DeltaRational Sum;
  VarId PrevVar = -1;
  for (const auto &[W, Coeff] : R.Terms) {
    assert(W >= 0 && W < numVars() && "row term over an unknown variable");
    assert(W > PrevVar && "row terms not strictly sorted by variable id");
    PrevVar = W;
    assert(W != R.Basic && "basic variable occurs in its own row");
    assert(RowOf[W] < 0 && "row mentions another basic variable");
    assert(!Coeff.isZero() && "zero coefficient kept in a row");
    Sum += Values[W] * Coeff;
  }
  assert(Values[R.Basic] == Sum && "basic value out of sync with its row");
}

void Simplex::checkInvariants() const {
  assert(Lower.size() == Values.size() && Upper.size() == Values.size() &&
         RowOf.size() == Values.size() && "per-variable arrays out of sync");
  for (VarId V = 0; V < numVars(); ++V)
    checkVarInvariants(V);
  for (int RI = 0; RI < static_cast<int>(Rows.size()); ++RI)
    checkRowInvariants(RI);
}
#endif

Simplex::VarId Simplex::addVar() {
  VarId V = static_cast<VarId>(Values.size());
  Values.emplace_back();
  Lower.emplace_back();
  Upper.emplace_back();
  RowOf.push_back(-1);
  return V;
}

Simplex::VarId Simplex::addDefinedVar(
    const std::vector<std::pair<VarId, Rational>> &Expr) {
  // Express the definition over nonbasic variables only, substituting the
  // rows of any basic variable mentioned.
  std::map<VarId, Rational> Combined;
  DeltaRational NewValue;
  for (const auto &[V, Coeff] : Expr) {
    assert(V >= 0 && V < numVars() && "unknown variable in definition");
    NewValue += Values[V] * Coeff;
    if (RowOf[V] < 0) {
      Combined[V] += Coeff;
      continue;
    }
    for (const auto &[W, WCoeff] : Rows[RowOf[V]].Terms)
      Combined[W] += Coeff * WCoeff;
  }
  VarId S = addVar();
  Values[S] = NewValue;
  Row NewRow;
  NewRow.Basic = S;
  for (const auto &[V, Coeff] : Combined)
    if (!Coeff.isZero())
      NewRow.Terms.emplace_back(V, Coeff);
  RowOf[S] = static_cast<int>(Rows.size());
  Rows.push_back(std::move(NewRow));
  checkRowInvariants(RowOf[S]);
  return S;
}

/// Binary-searches \p Terms (sorted by var) for \p V; returns null if absent.
static const Rational *
findCoeff(const std::vector<std::pair<Simplex::VarId, Rational>> &Terms,
          Simplex::VarId V) {
  auto It = std::lower_bound(
      Terms.begin(), Terms.end(), V,
      [](const auto &Entry, Simplex::VarId Key) { return Entry.first < Key; });
  if (It == Terms.end() || It->first != V)
    return nullptr;
  return &It->second;
}

void Simplex::updateNonbasic(VarId V, const DeltaRational &NewValue) {
  assert(RowOf[V] < 0 && "updateNonbasic on a basic variable");
  DeltaRational Diff = NewValue - Values[V];
  for (Row &R : Rows)
    if (const Rational *Coeff = findCoeff(R.Terms, V))
      Values[R.Basic] += Diff * *Coeff;
  Values[V] = NewValue;
}

std::optional<Simplex::Conflict>
Simplex::assertBound(VarId V, bool IsLower, const DeltaRational &Value,
                     int Reason, BoundUndo &Undo) {
  ++Statistics.BoundAssertions;
  Undo.Var = V;
  Undo.IsLower = IsLower;
  Undo.Applied = false;
  std::vector<Bound> &Same = IsLower ? Lower : Upper;
  const std::vector<Bound> &Opposite = IsLower ? Upper : Lower;

  // No-op when the existing bound is at least as tight.
  if (Same[V].Present &&
      (IsLower ? Same[V].Value >= Value : Same[V].Value <= Value))
    return std::nullopt;

  // Immediate clash with the opposite bound.
  if (Opposite[V].Present &&
      (IsLower ? Value > Opposite[V].Value : Value < Opposite[V].Value)) {
    ++Statistics.Conflicts;
    Conflict C;
    C.Reasons.emplace_back(Opposite[V].Reason, Rational(1));
    C.Reasons.emplace_back(Reason, Rational(1));
    return C;
  }

  Undo.Previous = Same[V];
  Undo.Applied = true;
  Same[V] = Bound{Value, Reason, true};

  if (RowOf[V] < 0) {
    // Keep the nonbasic invariant: value within bounds.
    if (IsLower ? Values[V] < Value : Values[V] > Value)
      updateNonbasic(V, Value);
  }
  checkVarInvariants(V);
  return std::nullopt;
}

void Simplex::undoBound(const BoundUndo &Undo) {
  if (!Undo.Applied)
    return;
#ifndef NDEBUG
  // The restoration path (exercised heavily by SmtSolver scope pops): an
  // applied undo must replace the installed bound with a strictly weaker or
  // absent one, so the variable needs no value repair and no row rebuild.
  const Bound &Installed = (Undo.IsLower ? Lower : Upper)[Undo.Var];
  assert(Installed.Present && "undoing a bound that was never installed");
  assert((!Undo.Previous.Present ||
          (Undo.IsLower ? Undo.Previous.Value <= Installed.Value
                        : Undo.Previous.Value >= Installed.Value)) &&
         "undo must restore a weaker bound");
#endif
  (Undo.IsLower ? Lower : Upper)[Undo.Var] = Undo.Previous;
  // Local slice of checkInvariants(): bound ordering and, for nonbasic
  // variables, value-within-bounds must survive the restoration.
  checkVarInvariants(Undo.Var);
}

void Simplex::pivotAndUpdate(int RowIdx, VarId Xj, const DeltaRational &Target) {
  ++Statistics.Pivots;
  Row &R = Rows[RowIdx];
  VarId Xi = R.Basic;
  const Rational *CoeffPtr = findCoeff(R.Terms, Xj);
  assert(CoeffPtr && "pivot variable not in row");
  Rational A = *CoeffPtr;
  assert(!A.isZero() && "zero pivot coefficient");

  // Value update: move Xi to Target by shifting Xj.
  DeltaRational Theta = (Target - Values[Xi]) * A.inverse();
  Values[Xi] = Target;
  Values[Xj] += Theta;
  for (int RI = 0; RI < static_cast<int>(Rows.size()); ++RI) {
    if (RI == RowIdx)
      continue;
    if (const Rational *C = findCoeff(Rows[RI].Terms, Xj))
      Values[Rows[RI].Basic] += Theta * *C;
  }

  // Representation update: solve the row for Xj.
  //   Xi = a*Xj + sum(ak*xk)  ==>  Xj = (1/a)*Xi - sum(ak/a * xk)
  std::map<VarId, Rational> NewDef;
  Rational InvA = A.inverse();
  NewDef[Xi] = InvA;
  for (const auto &[W, C] : R.Terms)
    if (W != Xj)
      NewDef[W] = C * InvA * Rational(-1);
  std::vector<std::pair<VarId, Rational>> NewTerms;
  for (const auto &[W, C] : NewDef)
    if (!C.isZero())
      NewTerms.emplace_back(W, C);
  R.Basic = Xj;
  R.Terms = NewTerms;
  RowOf[Xj] = RowIdx;
  RowOf[Xi] = -1;

  // Substitute the new definition of Xj into every other row.
  for (int RI = 0; RI < static_cast<int>(Rows.size()); ++RI) {
    if (RI == RowIdx)
      continue;
    Row &Other = Rows[RI];
    const Rational *CPtr = findCoeff(Other.Terms, Xj);
    if (!CPtr)
      continue;
    Rational C = *CPtr;
    std::map<VarId, Rational> Combined;
    for (const auto &[W, WC] : Other.Terms)
      if (W != Xj)
        Combined[W] += WC;
    for (const auto &[W, WC] : NewTerms)
      Combined[W] += C * WC;
    Other.Terms.clear();
    for (const auto &[W, WC] : Combined)
      if (!WC.isZero())
        Other.Terms.emplace_back(W, WC);
  }
  checkRowInvariants(RowIdx);
  checkVarInvariants(Xi);
  checkVarInvariants(Xj);
}

Simplex::Conflict Simplex::explainRowConflict(const Row &R,
                                              bool NeedIncrease) const {
  // The basic variable cannot move toward its violated bound because every
  // term is saturated at the blocking bound; those bounds plus the violated
  // one form an infeasible set with the Farkas coefficients below.
  Conflict C;
  const Bound &Violated = NeedIncrease ? Lower[R.Basic] : Upper[R.Basic];
  assert(Violated.Present && "conflict without a violated bound");
  C.Reasons.emplace_back(Violated.Reason, Rational(1));
  for (const auto &[W, Coeff] : R.Terms) {
    bool UseUpper = NeedIncrease ? Coeff.signum() > 0 : Coeff.signum() < 0;
    const Bound &B = UseUpper ? Upper[W] : Lower[W];
    assert(B.Present && "blocking bound missing in conflict row");
    C.Reasons.emplace_back(B.Reason, Coeff.abs());
  }
  return C;
}

Simplex::OptResult
Simplex::maximize(VarId Z,
                  const std::shared_ptr<const CancellationToken> &Cancel) {
  assert(Z >= 0 && Z < numVars() && "maximize over an unknown variable");
  // Backstop against pathological pivot sequences: Bland's rule rules out
  // classical cycling, but the cap keeps the worst case bounded even so.
  // Hitting it reports Cancelled, which callers must treat as "no finite
  // optimum found" — an over-approximation, never an unsound answer.
  uint64_t PivotBudget =
      1024 + 16ull * static_cast<uint64_t>(numVars()) *
                 static_cast<uint64_t>(Rows.size() + 1);
  for (;;) {
    if (isCancelled(Cancel) || PivotBudget-- == 0)
      return {OptStatus::Cancelled, Values[Z]};
    if (Upper[Z].Present && Values[Z] == Upper[Z].Value)
      return {OptStatus::Optimal, Values[Z]};

    // The entering variable (Bland: smallest id whose feasible movement
    // increases Z) and its direction of travel.
    VarId Mover = -1;
    int Dir = 1;
    if (int ZRow = RowOf[Z]; ZRow >= 0) {
      for (const auto &[W, Coeff] : Rows[ZRow].Terms) {
        bool CanUse = Coeff.signum() > 0
                          ? !Upper[W].Present || Values[W] < Upper[W].Value
                          : !Lower[W].Present || Values[W] > Lower[W].Value;
        if (CanUse) {
          Mover = W;
          Dir = Coeff.signum() > 0 ? 1 : -1;
          break; // terms sorted by id: first hit is Bland's choice
        }
      }
      if (Mover < 0)
        return {OptStatus::Optimal, Values[Z]};
    } else {
      Mover = Z; // move the objective variable itself upward
    }

    // Ratio test: the tightest blocking bound along the move, ties broken
    // toward the smallest leaving-variable id (Bland on the leaving side).
    bool Limited = false;
    DeltaRational Theta;       // step of Mover along Dir, always >= 0
    VarId LeaveVar = -1;
    int LeaveRow = -1;         // -1: Mover's own bound limits the step
    DeltaRational LeaveTarget; // bound value the leaving variable hits
    auto Consider = [&](const DeltaRational &Step, VarId V, int RI,
                        const DeltaRational &Target) {
      if (!Limited || Step < Theta || (Step == Theta && V < LeaveVar)) {
        Limited = true;
        Theta = Step;
        LeaveVar = V;
        LeaveRow = RI;
        LeaveTarget = Target;
      }
    };

    const Bound &Own = Dir > 0 ? Upper[Mover] : Lower[Mover];
    if (Own.Present)
      Consider(Dir > 0 ? Own.Value - Values[Mover]
                       : Values[Mover] - Own.Value,
               Mover, -1, Own.Value);
    for (int RI = 0; RI < static_cast<int>(Rows.size()); ++RI) {
      const Rational *C = findCoeff(Rows[RI].Terms, Mover);
      if (!C)
        continue;
      Rational Slope = Dir > 0 ? *C : -*C; // d(basic)/d(step)
      VarId B = Rows[RI].Basic;
      const Bound &Blocking = Slope.signum() > 0 ? Upper[B] : Lower[B];
      if (!Blocking.Present)
        continue;
      Consider((Blocking.Value - Values[B]) * Slope.inverse(), B, RI,
               Blocking.Value);
    }
    if (!Limited)
      return {OptStatus::Unbounded, Values[Z]};

    if (LeaveRow < 0) {
      // The mover saturates its own bound; the basis is unchanged. The
      // step is strictly positive here (saturated movers are ineligible),
      // so the objective makes real progress.
      updateNonbasic(Mover, LeaveTarget);
      if (Mover == Z)
        return {OptStatus::Optimal, Values[Z]};
    } else {
      pivotAndUpdate(LeaveRow, Mover, LeaveTarget);
    }
  }
}

std::optional<Simplex::Conflict> Simplex::check() {
  for (;;) {
    // Bland's rule: pick the violating basic variable with the smallest id.
    int ViolRow = -1;
    bool NeedIncrease = false;
    for (int RI = 0; RI < static_cast<int>(Rows.size()); ++RI) {
      VarId B = Rows[RI].Basic;
      if (Lower[B].Present && Values[B] < Lower[B].Value) {
        if (ViolRow < 0 || B < Rows[ViolRow].Basic) {
          ViolRow = RI;
          NeedIncrease = true;
        }
      } else if (Upper[B].Present && Values[B] > Upper[B].Value) {
        if (ViolRow < 0 || B < Rows[ViolRow].Basic) {
          ViolRow = RI;
          NeedIncrease = false;
        }
      }
    }
    if (ViolRow < 0) {
#ifndef NDEBUG
      // Amortised: the full O(rows * terms) scan on every feasible exit is
      // measurable in branch-and-bound loops; row-local checks already run
      // at every mutation, so sample the global scan.
      if ((++DebugCheckCount & 63) == 0)
        checkInvariants();
#endif
      return std::nullopt; // feasible
    }

    Row &R = Rows[ViolRow];
    VarId Xi = R.Basic;
    DeltaRational Target =
        NeedIncrease ? Lower[Xi].Value : Upper[Xi].Value;

    // Smallest-id nonbasic variable that can move Xi toward Target.
    VarId Pivot = -1;
    for (const auto &[W, Coeff] : R.Terms) {
      bool CanUse;
      if (NeedIncrease)
        CanUse = Coeff.signum() > 0
                     ? !Upper[W].Present || Values[W] < Upper[W].Value
                     : !Lower[W].Present || Values[W] > Lower[W].Value;
      else
        CanUse = Coeff.signum() > 0
                     ? !Lower[W].Present || Values[W] > Lower[W].Value
                     : !Upper[W].Present || Values[W] < Upper[W].Value;
      if (CanUse) {
        Pivot = W;
        break; // terms are sorted by id, so the first hit is the smallest
      }
    }
    if (Pivot < 0) {
      ++Statistics.Conflicts;
      return explainRowConflict(R, NeedIncrease);
    }
    pivotAndUpdate(ViolRow, Pivot, Target);
  }
}
