//===- smt/LpSolver.cpp - Small LP front end over the exact Simplex -------===//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/LpSolver.h"

#include <cassert>
#include <map>

using namespace la;
using namespace la::smt;

namespace {
thread_local uint64_t LpPivotCounter = 0;
} // namespace

uint64_t smt::takeLpPivots() {
  uint64_t N = LpPivotCounter;
  LpPivotCounter = 0;
  return N;
}

void LpProblem::accountPivots() {
  uint64_t Now = Tableau.stats().Pivots;
  LpPivotCounter += Now - PivotsReported;
  PivotsReported = Now;
}

LinearCombo LpProblem::canonicalize(const LinearCombo &Terms) {
  std::map<int, Rational> Folded;
  for (const auto &[V, C] : Terms)
    Folded[V] += C;
  LinearCombo Out;
  Out.reserve(Folded.size());
  for (const auto &[V, C] : Folded)
    if (!C.isZero())
      Out.emplace_back(V, C);
  return Out;
}

void LpProblem::addConstraint(const LinearCombo &Terms, const Rational &Bound,
                              bool IsUpper, bool Strict) {
  if (KnownInfeasible)
    return;
  ++Constraints;
  Checked = false;
  LinearCombo Canon = canonicalize(Terms);
  if (Canon.empty()) {
    // Constant constraint: 0 <= Bound or 0 >= Bound decides itself.
    bool Holds = IsUpper ? (Strict ? Rational(0) < Bound : Rational(0) <= Bound)
                         : (Strict ? Rational(0) > Bound : Rational(0) >= Bound);
    if (!Holds)
      KnownInfeasible = true;
    return;
  }
  Simplex::VarId Slack;
  if (Canon.size() == 1 && Canon.front().second == Rational(1)) {
    // Bound directly on a variable: no slack row needed.
    Slack = Canon.front().first;
  } else {
    std::vector<std::pair<Simplex::VarId, Rational>> Expr;
    Expr.reserve(Canon.size());
    for (const auto &[V, C] : Canon) {
      assert(V >= 0 && V < Tableau.numVars() && "constraint over unknown var");
      Expr.emplace_back(V, C);
    }
    Slack = Tableau.addDefinedVar(Expr);
  }
  // Strict bounds lean on the delta-rational representation: x < b is
  // x <= b - delta, x > b is x >= b + delta.
  DeltaRational Value =
      Strict ? DeltaRational(Bound, Rational(IsUpper ? -1 : 1))
             : DeltaRational(Bound);
  Simplex::BoundUndo Undo;
  if (Tableau.assertBound(Slack, /*IsLower=*/!IsUpper, Value,
                          static_cast<int>(Constraints), Undo))
    KnownInfeasible = true;
}

bool LpProblem::feasible() {
  if (KnownInfeasible)
    return false;
  if (!Checked) {
    if (Tableau.check())
      KnownInfeasible = true;
    Checked = true;
    accountPivots();
  }
  return !KnownInfeasible;
}

LpProblem::Optimum LpProblem::maximize(const LinearCombo &Objective) {
  if (!feasible())
    return {Status::Infeasible, DeltaRational()};
  LinearCombo Canon = canonicalize(Objective);
  if (Canon.empty())
    return {Status::Optimal, DeltaRational()};
  Simplex::VarId Z;
  if (Canon.size() == 1 && Canon.front().second == Rational(1)) {
    Z = Canon.front().first;
  } else {
    std::vector<std::pair<Simplex::VarId, Rational>> Expr;
    Expr.reserve(Canon.size());
    for (const auto &[V, C] : Canon)
      Expr.emplace_back(V, C);
    Z = Tableau.addDefinedVar(Expr);
  }
  Simplex::OptResult R = Tableau.maximize(Z, Cancel);
  accountPivots();
  switch (R.Status) {
  case Simplex::OptStatus::Optimal:
    return {Status::Optimal, R.Value};
  case Simplex::OptStatus::Unbounded:
    return {Status::Unbounded, DeltaRational()};
  case Simplex::OptStatus::Cancelled:
    break;
  }
  return {Status::Cancelled, DeltaRational()};
}
