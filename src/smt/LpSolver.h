//===- smt/LpSolver.h - Small LP front end over the exact Simplex -*- C++ -*-=//
//
// Part of the LinearArbitrary reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `LpProblem`: build a conjunction of linear constraints over rational
/// variables once, then ask feasibility and repeated exact maximization
/// queries against it. This is the LP entry point used by the template
/// polyhedra domain — closure, entailment and transfer all reduce to
/// "maximize a linear objective subject to a constraint set", and the
/// arithmetic stays on the existing Dutertre--de Moura `Simplex` (exact
/// rationals, no new backend, no rounding).
///
/// Each objective is materialized as one defined variable in the tableau,
/// so a problem queried with k objectives grows by k slack rows. Problems
/// are built per transfer/closure call and discarded, which keeps that
/// growth bounded; callers that loop build a fresh problem per iteration.
///
//===----------------------------------------------------------------------===//

#ifndef LA_SMT_LPSOLVER_H
#define LA_SMT_LPSOLVER_H

#include "smt/Simplex.h"

#include <cstddef>
#include <utility>
#include <vector>

namespace la::smt {

/// A linear objective or constraint left-hand side: sparse (variable,
/// coefficient) pairs. Duplicate variables are summed.
using LinearCombo = std::vector<std::pair<int, Rational>>;

/// One LP: rational variables, `<=` / `=` constraints, exact maximization.
class LpProblem {
public:
  explicit LpProblem(
      std::shared_ptr<const CancellationToken> Cancel = nullptr)
      : Cancel(std::move(Cancel)) {}

  /// Creates a fresh unconstrained variable and returns its index.
  int addVar() { return Tableau.addVar(); }

  int numVars() const { return Tableau.numVars(); }

  /// Adds the constraint `sum Terms <= Bound` (non-strict).
  void addLe(const LinearCombo &Terms, const Rational &Bound) {
    addConstraint(Terms, Bound, /*IsUpper=*/true, /*Strict=*/false);
  }
  /// Adds the strict constraint `sum Terms < Bound` (via an infinitesimal).
  void addLt(const LinearCombo &Terms, const Rational &Bound) {
    addConstraint(Terms, Bound, /*IsUpper=*/true, /*Strict=*/true);
  }
  /// Adds the constraint `sum Terms >= Bound`.
  void addGe(const LinearCombo &Terms, const Rational &Bound) {
    addConstraint(Terms, Bound, /*IsUpper=*/false, /*Strict=*/false);
  }
  /// Adds the constraint `sum Terms = Bound`.
  void addEq(const LinearCombo &Terms, const Rational &Bound) {
    addConstraint(Terms, Bound, /*IsUpper=*/true, /*Strict=*/false);
    addConstraint(Terms, Bound, /*IsUpper=*/false, /*Strict=*/false);
  }

  /// True when the accumulated constraints admit a rational model. The
  /// first call pivots to feasibility; later calls are cached. A problem
  /// that ever reported infeasible stays infeasible (constraints only
  /// accumulate).
  bool feasible();

  /// Outcome of one `maximize` query.
  enum class Status {
    Optimal,    ///< Finite supremum, reported exactly in `Value`.
    Unbounded,  ///< Objective unbounded above over the feasible set.
    Infeasible, ///< The constraint set itself has no model.
    Cancelled,  ///< Cancellation (or the simplex pivot cap) interrupted the
                ///< query; callers must treat the objective as unbounded.
  };
  struct Optimum {
    Status St = Status::Cancelled;
    /// Supremum as a delta-rational (the delta part is nonzero only when a
    /// strict constraint is active at the optimum). Valid iff `Optimal`.
    DeltaRational Value;
  };

  /// Maximizes `sum Objective` subject to every added constraint.
  Optimum maximize(const LinearCombo &Objective);

  /// Number of constraints added so far (for stats/tests).
  size_t constraintCount() const { return Constraints; }

  /// Simplex pivots this problem has spent so far across its feasibility
  /// and maximization queries.
  uint64_t pivots() const { return Tableau.stats().Pivots; }

private:
  void addConstraint(const LinearCombo &Terms, const Rational &Bound,
                     bool IsUpper, bool Strict);
  /// Folds duplicate variables and drops zero coefficients; returns the
  /// constant-only combo as an empty vector.
  static LinearCombo canonicalize(const LinearCombo &Terms);
  /// Publishes pivots spent since the last call into the thread-local
  /// counter behind `takeLpPivots()`. Runs inside the query methods (not a
  /// destructor, so copied problems cannot double-count history).
  void accountPivots();

  Simplex Tableau;
  std::shared_ptr<const CancellationToken> Cancel;
  size_t Constraints = 0;
  bool KnownInfeasible = false;
  bool Checked = false; ///< Tableau pivoted to feasibility since last add.
  uint64_t PivotsReported = 0; ///< Pivots already published (accountPivots).
};

/// Drains the calling thread's accumulated LP pivot counter: every
/// `LpProblem` query on this thread adds its simplex pivots here, so a pass
/// can attribute LP cost by draining the counter around its work.
uint64_t takeLpPivots();

} // namespace la::smt

#endif // LA_SMT_LPSOLVER_H
